// E4 — the initialization protocol (§2.3): virtual time for the
// broadcast-until-ACKNOWLEDGE discovery to build the full channel mesh, as
// a function of the subscriber count and of the broadcast interval, plus
// the dynamic-join latency of a late display.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/cluster.hpp"

using namespace cod;

namespace {

class Lp : public core::LogicalProcess {
 public:
  Lp() : core::LogicalProcess("lp") {}
};

/// Build 1 publisher + n subscribers; return virtual seconds until every
/// subscription is connected.
double meshTime(int subscribers, double broadcastInterval, double lossRate) {
  core::CodCluster::Config cfg;
  cfg.cb.broadcastIntervalSec = broadcastInterval;
  cfg.link.lossRate = lossRate;
  core::CodCluster cluster(cfg);
  auto& cbPub = cluster.addComputer("pub");
  Lp pub;
  cbPub.attach(pub);
  cbPub.publishObjectClass(pub, "init.data");
  std::vector<std::unique_ptr<Lp>> lps;
  std::vector<core::SubscriptionHandle> handles;
  for (int i = 0; i < subscribers; ++i) {
    auto& cb = cluster.addComputer("sub" + std::to_string(i));
    lps.push_back(std::make_unique<Lp>());
    cb.attach(*lps.back());
    handles.push_back(cb.subscribeObjectClass(*lps.back(), "init.data"));
  }
  const double t0 = cluster.now();
  const bool ok = cluster.runUntil(
      [&] {
        for (std::size_t i = 0; i < handles.size(); ++i)
          if (!cluster.cb(i + 1).connected(handles[i])) return false;
        return true;
      },
      60.0);
  return ok ? cluster.now() - t0 : -1.0;
}

}  // namespace

int main() {
  std::printf("E4: initialization protocol — time to full channel mesh\n\n");

  std::printf("(a) subscribers sweep (broadcast interval 50 ms, no loss)\n");
  std::printf("%12s %16s\n", "subscribers", "mesh time (ms)");
  for (const int n : {1, 2, 4, 8, 16}) {
    std::printf("%12d %16.1f\n", n, 1e3 * meshTime(n, 0.05, 0.0));
  }

  std::printf("\n(b) broadcast interval sweep (4 subscribers, 20%% loss —\n"
              "    retransmission makes discovery converge)\n");
  std::printf("%16s %16s\n", "interval (ms)", "mesh time (ms)");
  for (const double iv : {0.01, 0.05, 0.2, 0.5}) {
    std::printf("%16.0f %16.1f\n", 1e3 * iv, 1e3 * meshTime(4, iv, 0.2));
  }

  std::printf("\n(c) dynamic join (§2.3): a display plugged into a running "
              "system\n");
  {
    core::CodCluster cluster;
    auto& cbPub = cluster.addComputer("dynamics");
    Lp pub;
    cbPub.attach(pub);
    const auto h = cbPub.publishObjectClass(pub, "crane.state");
    // Stream updates for a while (the system is "running").
    core::AttributeSet attrs;
    attrs.set("v", 1.0);
    for (int i = 0; i < 100; ++i) {
      cbPub.updateAttributeValues(h, attrs, cluster.now());
      cluster.step(0.02);
    }
    auto& cbNew = cluster.addComputer("extra-display");
    Lp sub;
    cbNew.attach(sub);
    const auto s = cbNew.subscribeObjectClass(sub, "crane.state");
    const double t0 = cluster.now();
    cluster.runUntil([&] { return cbNew.connected(s); }, t0 + 30.0);
    std::printf("  join-to-connected latency: %.1f ms (no restart of the "
                "publisher)\n",
                1e3 * (cluster.now() - t0));
  }
  std::printf("\nshape: mesh time ~ one broadcast interval + protocol RTT;\n"
              "loss stretches it by the retransmission count\n");
  return 0;
}
