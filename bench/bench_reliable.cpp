// Reliable-channel benchmarks: what the NACK/retransmit window costs next
// to the newest-wins path, and what throughput looks like when the LAN
// actually drops packets (0 / 5 / 25% loss).

#include <benchmark/benchmark.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/protocol.hpp"
#include "net/transport.hpp"

namespace {

using namespace cod;

class CountingLp : public core::LogicalProcess {
 public:
  CountingLp() : core::LogicalProcess("lp") {}
  std::uint64_t received = 0;
  void reflectAttributeValues(const std::string&, const core::AttributeSet&,
                              double) override {
    ++received;
  }
};

core::AttributeSet sampleAttrs() {
  core::AttributeSet a;
  a.set("carrierPos", math::Vec3{1, 2, 3});
  a.set("heading", 0.5);
  a.set("speed", 3.2);
  a.set("score", 96.0);
  a.set("phase", std::int64_t{3});
  a.set("alarms", std::int64_t{0});
  return a;
}

/// Stream updates across the simulated LAN at the given loss rate and QoS;
/// the counter shows how much of the stream actually arrived (best effort
/// thins out, reliable keeps everything at the price of retransmits).
void streamOverLossyLan(benchmark::State& state, net::QosClass qos) {
  const double lossRate = static_cast<double>(state.range(0)) / 1000.0;
  core::CodCluster::Config cfg;
  cfg.link.lossRate = lossRate;
  cfg.link.jitterSec = 200e-6;
  core::CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  CountingLp pub, sub;
  cbA.attach(pub);
  cbB.attach(sub);
  const auto h = cbA.publishObjectClass(pub, "bench.reliable");
  const auto s = cbB.subscribeObjectClass(sub, "bench.reliable", qos);
  cluster.runUntil([&] { return cbB.connected(s); }, 30.0);
  const core::AttributeSet attrs = sampleAttrs();
  for (auto _ : state) {
    cbA.updateAttributeValues(h, attrs, cluster.now());
    cluster.step(0.001);
  }
  // Drain the retransmit pipeline so `delivered` reflects the guarantee.
  for (int i = 0; i < 2000 && sub.received < static_cast<std::uint64_t>(
                                  state.iterations());
       ++i)
    cluster.step(0.01);
  state.counters["delivered"] = static_cast<double>(sub.received);
  state.counters["deliveredPct"] =
      100.0 * static_cast<double>(sub.received) /
      static_cast<double>(state.iterations());
  state.counters["retransmits"] =
      static_cast<double>(cbA.stats().reliable.retransmitsSent);
  state.counters["nacks"] = static_cast<double>(cbB.stats().reliable.nacksSent);
}

void BM_StreamBestEffort(benchmark::State& state) {
  streamOverLossyLan(state, net::QosClass::kBestEffort);
}

void BM_StreamReliableOrdered(benchmark::State& state) {
  streamOverLossyLan(state, net::QosClass::kReliableOrdered);
}

/// Transport that discards outbound traffic: isolates the CB send path.
class NullTransport final : public net::Transport {
 public:
  net::NodeAddr localAddress() const override { return {1, 1}; }
  void send(const net::NodeAddr&, std::span<const std::uint8_t> bytes) override {
    bytesSent += bytes.size();
  }
  void broadcast(std::uint16_t, std::span<const std::uint8_t>) override {}
  std::optional<net::Datagram> receive() override {
    if (inbound.empty()) return std::nullopt;
    net::Datagram d = std::move(inbound.front());
    inbound.pop_front();
    return d;
  }
  void inject(const net::NodeAddr& src, std::vector<std::uint8_t> bytes) {
    inbound.push_back(net::Datagram{src, localAddress(), std::move(bytes)});
  }
  std::uint64_t bytesSent = 0;
  std::deque<net::Datagram> inbound;
};

/// Pure send-path overhead of reliable fan-out vs BM_FanOutSendOnly in
/// bench_cb_routing.cpp: same encode-once/patch-channel-id loop plus one
/// window copy per update. Subscriber acks are injected periodically so
/// the window prunes the way it does on a healthy link.
void BM_FanOutSendOnlyReliable(benchmark::State& state) {
  const std::uint32_t fan = static_cast<std::uint32_t>(state.range(0));
  auto transport = std::make_unique<NullTransport>();
  NullTransport* net = transport.get();
  core::CommunicationBackbone cb("pub", std::move(transport));
  CountingLp pub;
  cb.attach(pub);
  const auto h = cb.publishObjectClass(pub, "bench.data");
  for (std::uint32_t i = 0; i < fan; ++i) {
    net->inject({10 + i, 1},
                core::encode(core::ChannelConnectionMsg{
                    100 + i, h, 1 + i, "bench.data",
                    net::QosClass::kReliableOrdered}));
  }
  cb.tick(0.0);
  const core::AttributeSet attrs = sampleAttrs();
  double t = 0.0;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    cb.updateAttributeValues(h, attrs, t);
    ++seq;
    if ((seq & 0xFF) == 0) {
      // Periodic cumulative acks from every subscriber.
      state.PauseTiming();
      for (std::uint32_t i = 0; i < fan; ++i) {
        net->inject({10 + i, 1},
                    core::encode(core::WindowAckMsg{1 + i, seq, false}));
      }
      cb.tick(t);
      state.ResumeTiming();
    }
    t += 1e-6;
  }
  state.counters["fan"] = fan;
  const auto& rs = cb.stats().reliable;
  state.counters["windowResidual"] = static_cast<double>(
      rs.framesBuffered - rs.framesPruned - rs.sendWindowEvictions);
  state.counters["bytes"] =
      benchmark::Counter(static_cast<double>(net->bytesSent),
                         benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_StreamBestEffort)->Arg(0)->Arg(50)->Arg(250);
BENCHMARK(BM_StreamReliableOrdered)->Arg(0)->Arg(50)->Arg(250);
BENCHMARK(BM_FanOutSendOnlyReliable)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
