// E5 — fully distributed vs server/client (§1): the paper chose the fully
// distributed topology for COD. This bench measures what that choice buys:
// a CB virtual channel delivers in one LAN hop; a central broker needs two
// (client → broker → client) and concentrates every update on one host.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/broker.hpp"
#include "core/cluster.hpp"

using namespace cod;

namespace {

class Lp : public core::LogicalProcess {
 public:
  Lp() : core::LogicalProcess("lp") {}
};

/// Virtual latency of one update, CB mesh (publisher → subscriber direct).
double cbLatency(core::CodCluster& cluster, core::CommunicationBackbone& cbA,
                 core::PublicationHandle h, core::CommunicationBackbone& cbB,
                 core::SubscriptionHandle s, int iters) {
  double total = 0.0;
  for (int i = 0; i < iters; ++i) {
    core::AttributeSet a;
    a.set("i", i);
    const double t0 = cluster.now();
    cbA.updateAttributeValues(h, a, t0);
    cluster.runUntil(
        [&] {
          const core::Reflection* r = cbB.latest(s);
          return r != nullptr && r->attrs.getInt("i") == i;
        },
        t0 + 1.0);
    total += cluster.now() - t0;
  }
  return total / iters;
}

}  // namespace

int main() {
  std::printf("E5: fully distributed (CB mesh) vs server/client (broker)\n\n");
  const double fineTick = 0.0001;  // resolve sub-millisecond protocol time

  // --- CB mesh ------------------------------------------------------------
  double meshLatency;
  {
    core::CodCluster::Config cfg;
    cfg.tickIntervalSec = fineTick;
    core::CodCluster cluster(cfg);
    auto& cbA = cluster.addComputer("a");
    auto& cbB = cluster.addComputer("b");
    Lp pub, sub;
    cbA.attach(pub);
    cbB.attach(sub);
    const auto h = cbA.publishObjectClass(pub, "t");
    const auto s = cbB.subscribeObjectClass(sub, "t");
    cluster.runUntil([&] { return cbB.connected(s); }, 5.0);
    meshLatency = cbLatency(cluster, cbA, h, cbB, s, 200);
  }

  // --- Broker -------------------------------------------------------------
  double brokerLatency;
  {
    net::SimNetwork net(5);
    const auto hS = net.addHost("server");
    const auto hP = net.addHost("pub");
    const auto hC = net.addHost("sub");
    core::BrokerServer server(net.bind(hS, 1));
    core::BrokerClient pub(net.bind(hP, 1), {hS, 1});
    core::BrokerClient sub(net.bind(hC, 1), {hS, 1});
    sub.subscribe("t");
    for (int i = 0; i < 100; ++i) {
      net.advance(0.001);
      server.tick(net.now());
      sub.tick(net.now());
    }
    double total = 0.0;
    const int iters = 200;
    for (int i = 0; i < iters; ++i) {
      core::AttributeSet a;
      a.set("i", i);
      const double t0 = net.now();
      pub.update("t", a, t0);
      bool got = false;
      while (!got && net.now() < t0 + 1.0) {
        net.advance(fineTick);
        server.tick(net.now());
        sub.tick(net.now());
        while (auto d = sub.poll()) {
          if (d->attrs.getInt("i") == i) got = true;
        }
      }
      total += net.now() - t0;
    }
    brokerLatency = total / iters;
  }

  std::printf("%24s %16s\n", "topology", "latency (ms)");
  std::printf("%24s %16.3f\n", "CB mesh (1 hop)", 1e3 * meshLatency);
  std::printf("%24s %16.3f\n", "broker (2 hops)", 1e3 * brokerLatency);
  std::printf("\nbroker/mesh latency ratio: %.2fx (expect ~2x: one extra "
              "LAN hop)\n\n",
              brokerLatency / meshLatency);

  // --- Load concentration: packets handled per host, 4 pubs × 4 subs -----
  std::printf("load concentration with 4 publishers x 4 subscribers:\n");
  {
    core::CodCluster cluster;
    std::vector<std::unique_ptr<Lp>> lps;
    std::vector<core::PublicationHandle> pubs;
    std::vector<core::SubscriptionHandle> subHandles;
    for (int i = 0; i < 4; ++i) {
      auto& cb = cluster.addComputer("pub" + std::to_string(i));
      lps.push_back(std::make_unique<Lp>());
      cb.attach(*lps.back());
      pubs.push_back(cb.publishObjectClass(*lps.back(), "load"));
    }
    for (int i = 0; i < 4; ++i) {
      auto& cb = cluster.addComputer("sub" + std::to_string(i));
      lps.push_back(std::make_unique<Lp>());
      cb.attach(*lps.back());
      subHandles.push_back(cb.subscribeObjectClass(*lps.back(), "load"));
    }
    cluster.runUntil(
        [&] {
          for (int i = 0; i < 4; ++i)
            if (cluster.cb(4 + i).sourceCount(subHandles[i]) < 4) return false;
          return true;
        },
        10.0);
    core::AttributeSet a;
    a.set("x", 1.0);
    for (int round = 0; round < 100; ++round) {
      for (int i = 0; i < 4; ++i)
        cluster.cb(i).updateAttributeValues(pubs[i], a, cluster.now());
      cluster.step(0.005);
    }
    std::uint64_t maxSent = 0, totalSent = 0;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      const auto sent = cluster.cb(i).stats().updatesSent;
      maxSent = std::max(maxSent, sent);
      totalSent += sent;
    }
    std::printf("  mesh: %llu updates total, busiest host sent %llu "
                "(%.0f%% of traffic)\n",
                static_cast<unsigned long long>(totalSent),
                static_cast<unsigned long long>(maxSent),
                100.0 * maxSent / totalSent);
    std::printf("  broker: by construction 100%% of relayed traffic passes "
                "the server host\n");
  }
  return 0;
}
