// E10 — the training scenario end to end (Figs. 5, 8, 9): the whole
// 8-computer simulator runs the licensure exam with both trainee profiles
// and prints the instructor's score table plus system-level counters —
// the reproduction of the paper's training/licensing workflow.

#include <chrono>
#include <cstdio>

#include "sim/simulator_app.hpp"

using namespace cod;
using Clock = std::chrono::steady_clock;

namespace {

void runProfile(const char* name, const scenario::OperatorProfile& profile) {
  sim::CraneSimulatorApp::Config cfg;
  cfg.course = scenario::compactCourse();
  cfg.operatorProfile = profile;
  cfg.fbWidth = 48;
  cfg.fbHeight = 36;
  sim::CraneSimulatorApp app(cfg);
  app.waitUntilWired(10.0);

  const auto wall0 = Clock::now();
  const bool finished = app.runExam(600.0);
  const double wallSec =
      std::chrono::duration<double>(Clock::now() - wall0).count();

  const scenario::ScoreSheet& sheet = app.scenario().exam().score();
  std::printf("---- trainee profile: %s ----\n", name);
  std::printf("  result        : %s%s\n", scenario::phaseName(sheet.phase),
              finished ? "" : " (timed out)");
  std::printf("  score         : %.1f / 100\n", sheet.total);
  std::printf("  virtual time  : %.1f s   (wall %.1f s, %.1fx realtime)\n",
              sheet.elapsedSec, wallSec, sheet.elapsedSec / wallSec);
  std::printf("  bar hits      : %llu\n",
              static_cast<unsigned long long>(app.dynamics().barHitsEmitted()));
  std::printf("  deductions    :\n");
  if (sheet.deductions.empty()) std::printf("    (none)\n");
  for (const scenario::Deduction& d : sheet.deductions)
    std::printf("    -%4.1f  t=%6.1fs  %s\n", d.points, d.timeSec,
                d.reason.c_str());
  std::printf("  frames/display: %llu (sync server swaps: %llu)\n",
              static_cast<unsigned long long>(app.display(0).framesRendered()),
              static_cast<unsigned long long>(app.syncServer().swapsIssued()));
  std::printf("  collision sounds played: %llu\n",
              static_cast<unsigned long long>(
                  app.audio().collisionSoundsPlayed()));
  const auto& net = app.cluster().network().stats();
  std::printf("  LAN traffic   : %llu packets, %.1f MB\n",
              static_cast<unsigned long long>(net.packetsSent),
              static_cast<double>(net.bytesSent) / 1e6);
  std::printf("  final status window (Fig. 5):\n%s\n",
              app.instructor().statusWindow().renderText().c_str());
}

}  // namespace

int main() {
  std::printf("E10: licensure exam on the full 8-computer simulator\n\n");
  runProfile("careful", scenario::OperatorProfile::careful());
  runProfile("sloppy", scenario::OperatorProfile::sloppy());
  std::printf("shape: careful passes (score >= 70); sloppy collides with "
              "the bars (-10 each, §3.5) and fails\n");
  return 0;
}
