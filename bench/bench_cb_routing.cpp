// E3 — Communication Backbone routing (Figs. 1 & 2): cost of pushing an
// attribute update through a virtual channel, for the same-computer fast
// path vs the cross-host path, plus codec microbenchmarks.

#include <benchmark/benchmark.h>

#include <deque>
#include <memory>

#include "core/cluster.hpp"
#include "core/protocol.hpp"
#include "net/transport.hpp"

namespace {

using namespace cod;

class NullLp : public core::LogicalProcess {
 public:
  NullLp() : core::LogicalProcess("lp") {}
  std::uint64_t received = 0;
  void reflectAttributeValues(const std::string&, const core::AttributeSet&,
                              double) override {
    ++received;
  }
};

core::AttributeSet sampleAttrs() {
  core::AttributeSet a;
  a.set("carrierPos", math::Vec3{1, 2, 3});
  a.set("heading", 0.5);
  a.set("speed", 3.2);
  a.set("slew", -0.2);
  a.set("boomPitch", 0.8);
  a.set("cableLen", 6.0);
  a.set("engineOn", true);
  a.set("alarms", std::int64_t{0});
  return a;
}

/// Local fast path: publisher and subscriber on one CB.
void BM_LocalFastPathUpdate(benchmark::State& state) {
  core::CodCluster cluster;
  auto& cb = cluster.addComputer("onebox");
  NullLp pub, sub;
  cb.attach(pub);
  cb.attach(sub);
  const auto h = cb.publishObjectClass(pub, "bench.data");
  cb.subscribeObjectClass(sub, "bench.data");
  const core::AttributeSet attrs = sampleAttrs();
  double t = 0.0;
  for (auto _ : state) {
    cb.updateAttributeValues(h, attrs, t);
    cb.tick(t);
    t += 1e-4;
  }
  state.counters["delivered"] = static_cast<double>(sub.received);
}

/// Local fast path with wide registration tables: the per-update
/// publication/subscription lookups are hash-table hits now (they were
/// O(log n) ordered-map walks), so the cost must stay flat as the tables
/// grow to state.range(0) co-registered pub/sub pairs — including the
/// 10k-pair mass-connect scale. state.range(1) is the shard count: the
/// tables partition by class-name hash, and a sharded run must not cost
/// more than one shard (the lookups were already per-class).
void BM_LocalFastPathUpdateWideTables(benchmark::State& state) {
  const int tables = static_cast<int>(state.range(0));
  core::CodCluster::Config ccfg;
  ccfg.cb.shards = static_cast<std::uint32_t>(state.range(1));
  core::CodCluster cluster(ccfg);
  auto& cb = cluster.addComputer("onebox");
  NullLp pub, sub;
  cb.attach(pub);
  cb.attach(sub);
  const auto h = cb.publishObjectClass(pub, "bench.data");
  const auto s = cb.subscribeObjectClass(sub, "bench.data");
  for (int i = 0; i < tables; ++i) {
    const std::string cls = "bench.filler." + std::to_string(i);
    cb.publishObjectClass(pub, cls);
    cb.subscribeObjectClass(sub, cls);
  }
  const core::AttributeSet attrs = sampleAttrs();
  double t = 0.0;
  for (auto _ : state) {
    cb.updateAttributeValues(h, attrs, t);
    benchmark::DoNotOptimize(cb.poll(s));  // pull model: no tick in the loop
    t += 1e-4;
  }
  state.counters["tables"] = tables;
  state.counters["shards"] = static_cast<double>(state.range(1));
}

/// Cross-host path: update serialized, sent over the simulated LAN,
/// decoded and delivered on the far CB.
void BM_CrossHostUpdate(benchmark::State& state) {
  core::CodCluster cluster;
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  NullLp pub, sub;
  cbA.attach(pub);
  cbB.attach(sub);
  const auto h = cbA.publishObjectClass(pub, "bench.data");
  const auto s = cbB.subscribeObjectClass(sub, "bench.data");
  cluster.runUntil([&] { return cbB.connected(s); }, 5.0);
  const core::AttributeSet attrs = sampleAttrs();
  for (auto _ : state) {
    cbA.updateAttributeValues(h, attrs, cluster.now());
    cluster.step(0.001);  // latency 200 us: delivered within one slice
  }
  state.counters["delivered"] = static_cast<double>(sub.received);
}

/// Fan-out: one publisher, N subscribing computers.
void BM_FanOutUpdate(benchmark::State& state) {
  const int fan = static_cast<int>(state.range(0));
  core::CodCluster cluster;
  auto& cbA = cluster.addComputer("pub");
  NullLp pub;
  cbA.attach(pub);
  const auto h = cbA.publishObjectClass(pub, "bench.data");
  std::vector<std::unique_ptr<NullLp>> subs;
  std::vector<core::SubscriptionHandle> handles;
  for (int i = 0; i < fan; ++i) {
    auto& cb = cluster.addComputer("sub" + std::to_string(i));
    subs.push_back(std::make_unique<NullLp>());
    cb.attach(*subs.back());
    handles.push_back(cb.subscribeObjectClass(*subs.back(), "bench.data"));
  }
  cluster.runUntil(
      [&] {
        for (std::size_t i = 0; i < handles.size(); ++i)
          if (!cluster.cb(i + 1).connected(handles[i])) return false;
        return true;
      },
      10.0);
  const core::AttributeSet attrs = sampleAttrs();
  for (auto _ : state) {
    cbA.updateAttributeValues(h, attrs, cluster.now());
    cluster.step(0.001);
  }
  state.counters["fan"] = fan;
}

/// Transport that discards outbound traffic: isolates the CB send path
/// (serialization + per-channel fan-out) from the simulated LAN.
class NullTransport final : public net::Transport {
 public:
  net::NodeAddr localAddress() const override { return {1, 1}; }
  void send(const net::NodeAddr&, std::span<const std::uint8_t> bytes) override {
    bytesSent += bytes.size();
  }
  void broadcast(std::uint16_t, std::span<const std::uint8_t>) override {}
  std::optional<net::Datagram> receive() override {
    if (inbound.empty()) return std::nullopt;
    net::Datagram d = std::move(inbound.front());
    inbound.pop_front();
    return d;
  }
  void inject(const net::NodeAddr& src, std::vector<std::uint8_t> bytes) {
    inbound.push_back(net::Datagram{src, localAddress(), std::move(bytes)});
  }
  std::uint64_t bytesSent = 0;
  std::deque<net::Datagram> inbound;
};

/// Pure update fan-out: updateAttributeValues() against N established
/// channels, no LAN in the way — the path the encode-once/patch-channel-id
/// fast path optimizes. Batching is pinned off: this bench isolates the
/// per-frame serialization cost (a no-op transport makes the staging
/// memcpy look like pure loss); the datagram economics of batching are
/// bench_batching's BM_FrameFlush.
void BM_FanOutSendOnly(benchmark::State& state) {
  const std::uint32_t fan = static_cast<std::uint32_t>(state.range(0));
  auto transport = std::make_unique<NullTransport>();
  NullTransport* net = transport.get();
  core::CommunicationBackbone::Config cfg;
  cfg.batch.enabled = false;
  core::CommunicationBackbone cb("pub", std::move(transport), cfg);
  NullLp pub;
  cb.attach(pub);
  const auto h = cb.publishObjectClass(pub, "bench.data");
  for (std::uint32_t i = 0; i < fan; ++i) {
    net->inject({10 + i, 1},
                core::encode(core::ChannelConnectionMsg{100 + i, h, 1 + i,
                                                        "bench.data"}));
  }
  cb.tick(0.0);
  const core::AttributeSet attrs = sampleAttrs();
  double t = 0.0;
  for (auto _ : state) {
    cb.updateAttributeValues(h, attrs, t);
    t += 1e-6;
  }
  state.counters["fan"] = fan;
  state.counters["bytes"] =
      benchmark::Counter(static_cast<double>(net->bytesSent),
                         benchmark::Counter::kIsRate);
}

void BM_EncodeUpdateMsg(benchmark::State& state) {
  const core::AttributeSet attrs = sampleAttrs();
  core::UpdateMsg msg;
  msg.channelId = 7;
  msg.timestamp = 1.5;
  msg.payload = attrs.encode();
  for (auto _ : state) {
    ++msg.seq;
    benchmark::DoNotOptimize(core::encode(msg));
  }
}

void BM_DecodeUpdateMsg(benchmark::State& state) {
  const core::AttributeSet attrs = sampleAttrs();
  core::UpdateMsg msg;
  msg.channelId = 7;
  msg.seq = 1;
  msg.timestamp = 1.5;
  msg.payload = attrs.encode();
  const auto bytes = core::encode(msg);
  for (auto _ : state) {
    auto decoded = core::decode(bytes);
    benchmark::DoNotOptimize(decoded);
    auto set = core::AttributeSet::decode(decoded->update.payload);
    benchmark::DoNotOptimize(set);
  }
}

}  // namespace

BENCHMARK(BM_LocalFastPathUpdate);
BENCHMARK(BM_LocalFastPathUpdateWideTables)
    ->Args({1, 1})
    ->Args({64, 1})
    ->Args({1024, 1})
    ->Args({10240, 1})
    ->Args({10240, 16});
BENCHMARK(BM_CrossHostUpdate);
BENCHMARK(BM_FanOutUpdate)->Arg(1)->Arg(2)->Arg(4)->Arg(7);
BENCHMARK(BM_FanOutSendOnly)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_EncodeUpdateMsg);
BENCHMARK(BM_DecodeUpdateMsg);
