// bench_async — the async network engine's two performance claims, on
// real loopback sockets:
//
//  (a) syscall batching: sendmmsg/recvmmsg bursts vs the portable
//      one-syscall-per-datagram path, same sockets, same payloads —
//      the engine's datagrams/s lever. The win is the syscall entry
//      cost times the burst size, so the speedup is a HOST property:
//      on kernels with expensive syscall entry (spectre-mitigated
//      metal, ~1-2us/entry) batching 32 datagrams per call doubles
//      throughput and more; on VMs with cheap entry (~100ns measured
//      against a ~2us per-datagram loopback stack cost) it is a few
//      percent. Both are correct measurements of the same mechanism.
//  (b) a saturated 16-peer full-mesh CB cluster, sync vs async engine,
//      measured with the tick-phase profiler: the engine moves socket
//      work off the tick thread, which shows as lower p99 tick time —
//      when there are cores for the engine threads to run on. On a
//      single-core host 32 engine threads compete with the 16 tick
//      loops they serve, so the same bench reports the preemption cost
//      instead.
//
// Gating therefore comes in two tiers:
//   * default (every host, the ctest smoke lane): sanity — the mmsg
//     path must not be slower than the single-syscall path beyond
//     noise, the async mesh must wire up and deliver, and async p99
//     must stay within an order of magnitude of sync.
//   * COD_BENCH_ASYNC_STRICT=1 (CI perf runners with >= 4 cores):
//     the headline claims — >= 2x datagrams/s from batching and
//     strictly lower async p99 tick latency.
//
// Emits a machine-readable `COD_BENCH_SUMMARY {json}` line that
// bench/run_all.sh captures into BENCH_async.json for the CI baseline
// gate. Exits non-zero if the active gate tier fails.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/cb.hpp"
#include "net/engine.hpp"
#include "net/udp.hpp"
#include "telemetry/hist.hpp"

using namespace cod;

namespace {

double wallClock() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---- (a) syscall A/B ----------------------------------------------------

// Push `count` datagrams of `bytes` each from a to b, draining b inline
// (loopback socket buffers are small; send and receive must interleave).
// Returns datagrams per second actually received.
double syscallRate(net::UdpTransport& a, net::UdpTransport& b, bool mmsg,
                   std::size_t count, std::size_t bytes) {
  a.useMmsgSyscalls(mmsg);
  b.useMmsgSyscalls(mmsg);
  const std::vector<std::uint8_t> payload(bytes, 0x5A);
  constexpr std::size_t kBurst = net::UdpTransport::kMmsgBurst;
  std::vector<net::OutDatagram> burst;
  burst.reserve(kBurst);
  for (std::size_t i = 0; i < kBurst; ++i)
    burst.push_back({{1, 0}, payload});
  std::vector<net::Datagram> in(kBurst);

  std::size_t sent = 0;
  std::size_t received = 0;
  const double t0 = wallClock();
  while (sent < count) {
    const std::size_t n = std::min(kBurst, count - sent);
    a.sendMany(std::span<const net::OutDatagram>(burst.data(), n));
    sent += n;
    // Drain whatever already landed; don't insist on every datagram
    // (UDP semantics — the rate counts what arrived).
    for (;;) {
      const std::size_t got = b.receiveBatch(in);
      received += got;
      if (got < in.size()) break;
    }
  }
  // Final drain: the tail of the last burst may still be in flight.
  const double drainDeadline = wallClock() + 0.05;
  while (received < sent && wallClock() < drainDeadline)
    received += b.receiveBatch(in);
  const double dt = wallClock() - t0;
  return dt > 0 ? static_cast<double>(received) / dt : 0.0;
}

// ---- (b) 16-peer mesh ---------------------------------------------------

class NullLp : public core::LogicalProcess {
 public:
  NullLp() : LogicalProcess("bench-lp") {}
  std::uint64_t reflected = 0;
  void reflectAttributeValues(const std::string&, const core::AttributeSet&,
                              double) override {
    ++reflected;
  }
};

struct MeshResult {
  double dps = 0.0;        // datagrams/s summed over the cluster
  double p99TickUs = 0.0;  // p99 tick duration across every peer's ticks
  double pollP99Us = 0.0;  // p99 of the poll/decode phase
  double flushP99Us = 0.0; // p99 of the flush phase
  std::uint64_t reflected = 0;
  bool wired = false;
};

// Merge interval snapshots (cur minus base) across peers into one
// histogram, then read a percentile off it.
struct HistMerge {
  telemetry::HistogramSnapshot sum;
  void add(const telemetry::HistogramSnapshot& cur,
           const telemetry::HistogramSnapshot& base) {
    const auto d = telemetry::LogHistogram::diff(cur, base);
    sum.count += d.count;
    sum.sum += d.sum;
    for (std::size_t i = 0; i < telemetry::kHistBuckets; ++i)
      sum.buckets[i] += d.buckets[i];
  }
  double p99Us(double lowest) const {
    return telemetry::LogHistogram::percentile(sum, 0.99, lowest) * 1e6;
  }
};

MeshResult runMesh(bool asyncNet, int peers, double seconds) {
  net::UdpConfig net;
  net.portsPerHost = 1;
  net.maxHosts = static_cast<std::uint16_t>(peers);
  net.basePort =
      net::pickEphemeralBasePort(static_cast<std::uint16_t>(peers));

  core::CommunicationBackbone::Config cbCfg;
  cbCfg.broadcastIntervalSec = 0.02;
  cbCfg.phaseProfile = true;
  cbCfg.asyncNet = asyncNet;

  std::vector<std::unique_ptr<NullLp>> lps;
  std::vector<std::unique_ptr<core::CommunicationBackbone>> cbs;
  std::vector<core::PublicationHandle> pubs;
  std::vector<std::vector<core::SubscriptionHandle>> subs(peers);
  for (int i = 0; i < peers; ++i) {
    lps.push_back(std::make_unique<NullLp>());
    cbs.push_back(std::make_unique<core::CommunicationBackbone>(
        "mesh-" + std::to_string(i),
        std::make_unique<net::UdpTransport>(net, static_cast<net::HostId>(i),
                                            0),
        cbCfg));
    cbs[i]->attach(*lps[i]);
    pubs.push_back(
        cbs[i]->publishObjectClass(*lps[i], "mesh." + std::to_string(i)));
  }
  for (int i = 0; i < peers; ++i)
    for (int j = 0; j < peers; ++j)
      if (j != i)
        subs[i].push_back(cbs[i]->subscribeObjectClass(
            *lps[i], "mesh." + std::to_string(j)));

  MeshResult r;
  // Wire-up: tick until every subscription has a live source.
  const double wireDeadline = wallClock() + 60.0;
  for (;;) {
    bool all = true;
    for (int i = 0; i < peers && all; ++i)
      for (const auto sh : subs[i])
        if (!cbs[i]->connected(sh)) {
          all = false;
          break;
        }
    if (all) {
      r.wired = true;
      break;
    }
    if (wallClock() > wireDeadline) break;
    for (auto& cb : cbs) cb->tick(wallClock());
  }
  if (!r.wired) return r;

  // Measurement interval: snapshot the cumulative histograms and packet
  // counters, hammer updates, diff.
  constexpr std::size_t kTickIdx = 1;  // CbHistograms order: tickDurationSec
  std::vector<telemetry::HistogramSnapshot> tickBase(peers);
  std::vector<telemetry::HistogramSnapshot> pollBase(peers);
  std::vector<telemetry::HistogramSnapshot> flushBase(peers);
  std::uint64_t packetsBase = 0;
  std::uint64_t reflectedBase = 0;
  for (int i = 0; i < peers; ++i) {
    tickBase[i] = cbs[i]->histograms().at(kTickIdx).snapshot();
    pollBase[i] = cbs[i]
                      ->phaseHistograms()
                      .at(static_cast<std::size_t>(
                          telemetry::TickPhase::kPollDecode))
                      .snapshot();
    flushBase[i] =
        cbs[i]
            ->phaseHistograms()
            .at(static_cast<std::size_t>(telemetry::TickPhase::kFlush))
            .snapshot();
    packetsBase += cbs[i]->transportStats()->packetsSent;
    reflectedBase += lps[i]->reflected;
  }

  const double t0 = wallClock();
  const double tEnd = t0 + seconds;
  std::uint64_t round = 0;
  while (wallClock() < tEnd) {
    core::AttributeSet a;
    a.set("v", static_cast<double>(round));
    a.set("t", wallClock());
    for (int i = 0; i < peers; ++i) {
      cbs[i]->updateAttributeValues(pubs[i], a, wallClock());
      cbs[i]->tick(wallClock());
    }
    ++round;
  }
  const double dt = wallClock() - t0;

  HistMerge tick, poll, flush;
  std::uint64_t packets = 0;
  for (int i = 0; i < peers; ++i) {
    tick.add(cbs[i]->histograms().at(kTickIdx).snapshot(), tickBase[i]);
    poll.add(cbs[i]
                 ->phaseHistograms()
                 .at(static_cast<std::size_t>(
                     telemetry::TickPhase::kPollDecode))
                 .snapshot(),
             pollBase[i]);
    flush.add(cbs[i]
                  ->phaseHistograms()
                  .at(static_cast<std::size_t>(telemetry::TickPhase::kFlush))
                  .snapshot(),
              flushBase[i]);
    packets += cbs[i]->transportStats()->packetsSent;
    r.reflected += lps[i]->reflected;
  }
  r.reflected -= reflectedBase;
  r.dps = dt > 0 ? static_cast<double>(packets - packetsBase) / dt : 0.0;
  r.p99TickUs = tick.p99Us(1e-6);
  r.pollP99Us = poll.p99Us(telemetry::TickPhaseHistograms::kLowest);
  r.flushP99Us = flush.p99Us(telemetry::TickPhaseHistograms::kLowest);
  return r;
}

}  // namespace

int main() {
  std::printf("bench_async: threaded engine + batched syscalls\n\n");

  // ---- (a) syscall batching A/B ----------------------------------------
  net::UdpConfig cfg;
  cfg.portsPerHost = 1;
  cfg.maxHosts = 2;
  cfg.basePort = net::pickEphemeralBasePort(2);
  net::UdpTransport a(cfg, 0, 0);
  net::UdpTransport b(cfg, 1, 0);
  constexpr std::size_t kCount = 200000;
  constexpr std::size_t kBytes = 256;
  // Warm both paths (page faults, buffer allocation) before timing, then
  // interleave three trials per path and keep the best of each — the
  // ratio is what matters and a VM's background noise hits whichever
  // trial it lands on.
  syscallRate(a, b, true, 2000, kBytes);
  syscallRate(a, b, false, 2000, kBytes);
  double singleDps = 0.0;
  double mmsgDps = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    singleDps = std::max(singleDps, syscallRate(a, b, false, kCount, kBytes));
    mmsgDps = std::max(mmsgDps, syscallRate(a, b, true, kCount, kBytes));
  }
  const double speedup = singleDps > 0 ? mmsgDps / singleDps : 0.0;
  std::printf("(a) syscall A/B, %zu x %zu-byte datagrams over loopback\n",
              kCount, kBytes);
  std::printf("    %-22s %14.0f dgrams/s\n", "one syscall each:", singleDps);
  std::printf("    %-22s %14.0f dgrams/s\n", "sendmmsg/recvmmsg:", mmsgDps);
  std::printf("    %-22s %14.2fx\n\n", "batching speedup:", speedup);
  const bool mmsgAvailable = a.mmsgActive();
  if (!mmsgAvailable)
    std::printf("    (mmsg syscalls unavailable on this platform — "
                "A/B gate skipped)\n\n");

  // ---- (b) 16-peer saturated mesh, sync vs async -----------------------
  constexpr int kPeers = 16;
  constexpr double kSeconds = 3.0;
  std::printf("(b) %d-peer full mesh (%d channels), %.0fs saturated "
              "updates, phase-profiled\n",
              kPeers, kPeers * (kPeers - 1), kSeconds);
  const MeshResult sync = runMesh(false, kPeers, kSeconds);
  const MeshResult async = runMesh(true, kPeers, kSeconds);
  if (!sync.wired || !async.wired) {
    std::fprintf(stderr, "error: mesh wire-up did not converge (sync=%d "
                 "async=%d)\n", sync.wired, async.wired);
    return 1;
  }
  std::printf("    %-12s %12s %14s %12s %12s\n", "engine", "dgrams/s",
              "p99 tick us", "p99 poll us", "p99 flush us");
  std::printf("    %-12s %12.0f %14.1f %12.1f %12.1f\n", "sync", sync.dps,
              sync.p99TickUs, sync.pollP99Us, sync.flushP99Us);
  std::printf("    %-12s %12.0f %14.1f %12.1f %12.1f\n", "async", async.dps,
              async.p99TickUs, async.pollP99Us, async.flushP99Us);
  std::printf("    reflected updates: sync %llu, async %llu\n\n",
              static_cast<unsigned long long>(sync.reflected),
              static_cast<unsigned long long>(async.reflected));

  std::printf(
      "COD_BENCH_SUMMARY {\"bench\":\"async\",\"single_dps\":%.0f,"
      "\"mmsg_dps\":%.0f,\"mmsg_speedup\":%.3f,\"mesh_sync_dps\":%.0f,"
      "\"mesh_async_dps\":%.0f,\"mesh_sync_p99_tick_us\":%.1f,"
      "\"mesh_async_p99_tick_us\":%.1f,\"mesh_sync_reflected\":%llu,"
      "\"mesh_async_reflected\":%llu}\n",
      singleDps, mmsgDps, speedup, sync.dps, async.dps, sync.p99TickUs,
      async.p99TickUs, static_cast<unsigned long long>(sync.reflected),
      static_cast<unsigned long long>(async.reflected));

  // Gates (see the file comment for the two tiers).
  const char* strictEnv = std::getenv("COD_BENCH_ASYNC_STRICT");
  const bool strict = strictEnv != nullptr && strictEnv[0] == '1';
  bool ok = true;
  if (strict) {
    if (mmsgAvailable && speedup < 2.0) {
      std::fprintf(stderr, "GATE FAIL: mmsg batching speedup %.2fx < 2x\n",
                   speedup);
      ok = false;
    }
    if (async.p99TickUs >= sync.p99TickUs) {
      std::fprintf(stderr,
                   "GATE FAIL: async p99 tick %.1fus not below sync "
                   "%.1fus\n",
                   async.p99TickUs, sync.p99TickUs);
      ok = false;
    }
  } else {
    if (mmsgAvailable && mmsgDps < singleDps * 0.85) {
      std::fprintf(stderr,
                   "GATE FAIL: mmsg path %.0f dgrams/s regresses the "
                   "single-syscall path %.0f\n",
                   mmsgDps, singleDps);
      ok = false;
    }
    if (async.reflected < sync.reflected / 8) {
      std::fprintf(stderr,
                   "GATE FAIL: async mesh delivered %llu updates vs sync "
                   "%llu — the engine is dropping the cluster's traffic\n",
                   static_cast<unsigned long long>(async.reflected),
                   static_cast<unsigned long long>(sync.reflected));
      ok = false;
    }
    if (async.p99TickUs > sync.p99TickUs * 32.0) {
      std::fprintf(stderr,
                   "GATE FAIL: async p99 tick %.1fus vs sync %.1fus — "
                   "beyond scheduler-contention tolerance\n",
                   async.p99TickUs, sync.p99TickUs);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
