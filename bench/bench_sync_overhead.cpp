// E2 — the synchronization overhead (§4): "Due to the overhead of the
// synchronization among the three graphical computers, the frame rate of
// the surrounded view is 16 frame-per-second."
//
// Two ablations on the full simulator running in virtual time:
//  (a) swap barrier ON vs OFF at the paper's 3 displays;
//  (b) number of display channels 1..5 under the barrier — more channels
//      mean a longer wait for the slowest and more protocol traffic.
// Virtual-time fps isolates the *protocol* cost from this machine's
// rendering speed (bench_framerate covers the wall-clock side).

#include <cstdio>
#include <memory>

#include "core/cluster.hpp"
#include "sim/display_module.hpp"
#include "sim/simulator_app.hpp"

using namespace cod;

namespace {

struct Result {
  double fps = 0.0;
  std::uint64_t swaps = 0;
  std::uint64_t packets = 0;
};

Result run(int displays, bool sync, double seconds) {
  sim::CraneSimulatorApp::Config cfg;
  cfg.course = scenario::compactCourse();
  cfg.displayCount = displays;
  cfg.useSyncServer = sync;
  cfg.fbWidth = 48;
  cfg.fbHeight = 36;
  sim::CraneSimulatorApp app(cfg);
  app.waitUntilWired(10.0);
  const auto framesBefore = app.display(0).framesRendered();
  const auto packetsBefore = app.cluster().network().stats().packetsSent;
  const double t0 = app.now();
  app.step(seconds);
  Result r;
  r.fps = static_cast<double>(app.display(0).framesRendered() - framesBefore) /
          (app.now() - t0);
  r.swaps = app.syncServer().swapsIssued();
  r.packets = app.cluster().network().stats().packetsSent - packetsBefore;
  return r;
}

}  // namespace

int main() {
  std::printf("E2: synchronization overhead (virtual-time protocol cost)\n\n");

  std::printf("(a) barrier ablation at 3 displays, 16 fps target\n");
  std::printf("%10s %10s %12s %14s %12s\n", "barrier", "fps", "swaps",
              "packets", "pkts/swap");
  const Result off = run(3, false, 20.0);
  const Result on = run(3, true, 20.0);
  std::printf("%10s %10.2f %12llu %14llu %12s\n", "off", off.fps,
              static_cast<unsigned long long>(off.swaps),
              static_cast<unsigned long long>(off.packets), "-");
  std::printf("%10s %10.2f %12llu %14llu %12.1f\n", "on", on.fps,
              static_cast<unsigned long long>(on.swaps),
              static_cast<unsigned long long>(on.packets),
              on.swaps == 0 ? 0.0
                            : static_cast<double>(on.packets) /
                                  static_cast<double>(on.swaps));
  std::printf("protocol overhead: %.1f%% fps, %+.0f%% network packets\n"
              "(pkts/swap is the tick-coalescing observable: every CB frame\n"
              " to a peer rides one batch datagram, so fewer packets per\n"
              " barrier round-trip at the same swap count)\n\n",
              100.0 * (1.0 - on.fps / off.fps),
              100.0 * (static_cast<double>(on.packets) / off.packets - 1.0));

  std::printf("(b) heterogeneous displays: the barrier locks the rig to the\n"
              "    slowest channel (display k renders at 16/(1+0.15k) fps)\n");
  std::printf("%10s %16s %16s\n", "displays", "barrier on", "barrier off");
  for (const int n : {1, 2, 3, 4, 5}) {
    double fps[2] = {0, 0};
    for (const int mode : {0, 1}) {
      const bool sync = mode == 0;
      core::CodCluster cluster;
      std::unique_ptr<sim::SyncServerModule> server;
      if (sync) {
        auto& cb = cluster.addComputer("sync");
        server = std::make_unique<sim::SyncServerModule>(n);
        server->bind(cb);
      }
      std::vector<std::unique_ptr<sim::VisualDisplayModule>> displays;
      for (int k = 0; k < n; ++k) {
        // Built with += : gcc 12's -Wrestrict false-fires on
        // operator+(const char*, std::string&&) at -O3 (PR 105651).
        std::string displayName = "d";
        displayName += std::to_string(k);
        auto& cb = cluster.addComputer(displayName);
        sim::VisualDisplayModule::Config dc;
        dc.channel = k;
        dc.fbWidth = 24;
        dc.fbHeight = 18;
        dc.useSyncServer = sync;
        dc.frameIntervalSec = (1.0 / 16.0) * (1.0 + 0.15 * k);
        displays.push_back(std::make_unique<sim::VisualDisplayModule>(
            scenario::compactCourse(), dc));
        displays.back()->bind(cb);
      }
      cluster.step(20.0);
      fps[mode] =
          static_cast<double>(displays[0]->framesRendered()) / 20.0;
    }
    std::printf("%10d %16.2f %16.2f\n", n, fps[0], fps[1]);
  }
  std::printf("\npaper: the barrier held 3 channels at 16 fps, below the\n"
              "18-30 fps band of contemporary simulators; the cost grows\n"
              "with every channel added because the slowest one gates all\n");
  return 0;
}
