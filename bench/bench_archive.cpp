// Flight-data archive overhead: recording must be invisible next to the
// cluster it records.
//
// BM_ArchiveAppend prices one TelemetryArchive::appendSnapshot — a CRC
// over the keyframe, one fwrite, one fflush — which is everything the
// monitor's apply path pays per applied snapshot. BM_ArchiveOverhead
// drives a busy 4-node reliable mesh over real loopback UDP with a
// HealthMonitor + archive attached to one node (the soak rack's
// instructor-as-recorder deployment) and gates the archive's share of
// the run: (records appended per simulated second) x (measured cost per
// append) against one second. The mesh's virtual 60 Hz clock IS the
// deployment clock — a real rack runs it in real time — so this share is
// what the instructor host pays in deployment, while the bench itself
// may step through simulated time faster than wall time. Both factors
// are measured in this process, so the share models the cost actually
// paid rather than a noisy wall-clock A/B. Budget: < 1 % of run time,
// std::exit(1) past it (failing the CTest bench smoke lane).
//
// BM_ArchiveReplay prices the cod_inspect path — read every record back
// and feed a fresh HealthMonitor — so post-mortems stay interactive even
// for long soaks.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/cb.hpp"
#include "core/value.hpp"
#include "net/udp.hpp"
#include "telemetry/archive.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/node_telemetry.hpp"
#include "telemetry/publisher.hpp"

namespace {

using namespace cod;

double nowSec() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// A realistic keyframe: a few dozen live counters and a touched
/// histogram, the shape a busy node actually ships.
std::vector<std::uint8_t> benchKeyframe(const std::string& node,
                                        std::uint64_t seq) {
  telemetry::NodeTelemetry t;
  t.node = node;
  t.seq = seq;
  t.nodeTimeSec = static_cast<double>(seq) * 0.5;
  t.cb.updatesSent = 100 + seq * 17;
  t.cb.updatesDelivered = 300 + seq * 50;
  t.cb.reliable.dataFramesSent = 90 + seq * 15;
  t.cb.reliable.retransmitsSent = seq;
  for (int i = 0; i < 40; ++i)
    t.hists[0].buckets[i % telemetry::kHistBuckets] += i;
  t.hists[0].count = 780;
  t.hists[0].sum = 1.25;
  t.hists[0].max = 0.02;
  return telemetry::encodeTelemetry(t);
}

/// Cost of one appendSnapshot into a warm archive: minimum over several
/// timed passes, so a descheduling burst can only make the modeled share
/// *smaller*, never fail the gate spuriously.
double measurePerAppendSec(const std::vector<std::uint8_t>& keyframe) {
  telemetry::TelemetryArchive::Config cfg;
  cfg.path = "bench_archive_scratch.archive";
  cfg.segmentBytes = 1u << 30;  // no rotation inside the measurement
  constexpr std::uint64_t kPass = 4096;
  constexpr int kPasses = 5;
  double best = 1e300;
  for (int p = 0; p < kPasses; ++p) {
    telemetry::TelemetryArchive ar(cfg);
    const double t0 = nowSec();
    for (std::uint64_t i = 0; i < kPass; ++i)
      ar.appendSnapshot(keyframe, static_cast<double>(i));
    best = std::min(best, (nowSec() - t0) / static_cast<double>(kPass));
    ar.close();
    std::remove(cfg.path.c_str());
  }
  return best;
}

class MeshLp final : public core::LogicalProcess {
 public:
  MeshLp(std::string cls, double intervalSec)
      : core::LogicalProcess("mesh"), cls_(std::move(cls)),
        interval_(intervalSec) {}

  void bind(core::CommunicationBackbone& cb) {
    cb.attach(*this);
    pub_ = cb.publishObjectClass(*this, cls_,
                                 net::QosClass::kReliableOrdered);
  }

  void subscribe(core::CommunicationBackbone& cb, const std::string& cls) {
    cb.subscribeObjectClass(*this, cls, net::QosClass::kReliableOrdered);
  }

  void step(double now) override {
    if (now - last_ < interval_ - 1e-9) return;
    last_ = now;
    core::AttributeSet attrs;
    attrs.set("pos", math::Vec3{now, 1.0, 2.0});
    attrs.set("vel", math::Vec3{0.1, 0.2, 0.3});
    attrs.set("boomAngle", 0.8);
    attrs.set("hoist", 30.0 - now);
    attrs.set("load", 22000.0);
    backbone()->updateAttributeValues(pub_, attrs, now);
  }

 private:
  std::string cls_;
  double interval_;
  double last_ = -1e300;
  core::PublicationHandle pub_ = core::kInvalidHandle;
};

/// The archive's actual deployment: a busy 4-node reliable mesh on real
/// loopback sockets, every node publishing telemetry at 2 Hz, node 0
/// hosting the HealthMonitor with the archive attached.
struct Harness {
  explicit Harness(const std::string& archivePath) {
    net::UdpConfig ucfg;
    ucfg.portsPerHost = 1;
    ucfg.maxHosts = 4;
    ucfg.basePort = net::pickEphemeralBasePort(4);
    const std::string nodeNames[4] = {"n0", "n1", "n2", "n3"};
    const std::string classNames[4] = {"mesh.0", "mesh.1", "mesh.2",
                                       "mesh.3"};
    for (int i = 0; i < 4; ++i)
      cbs.push_back(std::make_unique<core::CommunicationBackbone>(
          nodeNames[i],
          std::make_unique<net::UdpTransport>(
              ucfg, static_cast<net::HostId>(i), 0),
          core::CommunicationBackbone::Config{}));
    for (int i = 0; i < 4; ++i) {
      lps.push_back(std::make_unique<MeshLp>(classNames[i], 1.0 / 60.0));
      lps.back()->bind(*cbs[i]);
      for (int j = 0; j < 4; ++j)
        if (j != i) lps.back()->subscribe(*cbs[i], classNames[j]);
      telemetry::TelemetryConfig tc;
      tc.intervalSec = 0.5;
      tc.keyframeInterval = 2;
      pubs.push_back(std::make_unique<telemetry::TelemetryPublisher>(tc));
      pubs.back()->bind(*cbs[i]);
    }
    telemetry::TelemetryArchive::Config acfg;
    acfg.path = archivePath;
    archive = std::make_unique<telemetry::TelemetryArchive>(acfg);
    monitor = std::make_unique<telemetry::HealthMonitor>();
    monitor->bind(*cbs[0]);
    monitor->attachArchive(archive.get());
    step(3.0);  // wire up before measuring
  }

  // Virtual 60 Hz clock; the loop runs as fast as the sockets allow.
  void step(double seconds) {
    const double until = now_ + seconds;
    while (now_ < until) {
      now_ += 1.0 / 60.0;
      for (auto& cb : cbs) cb->tick(now_);
    }
  }

  std::vector<std::unique_ptr<core::CommunicationBackbone>> cbs;
  std::vector<std::unique_ptr<MeshLp>> lps;
  std::vector<std::unique_ptr<telemetry::TelemetryPublisher>> pubs;
  std::unique_ptr<telemetry::TelemetryArchive> archive;
  std::unique_ptr<telemetry::HealthMonitor> monitor;
  double now_ = 0.0;
};

void BM_ArchiveAppend(benchmark::State& state) {
  const std::vector<std::uint8_t> keyframe = benchKeyframe("bench-0", 7);
  telemetry::TelemetryArchive::Config cfg;
  cfg.path = "bench_archive_scratch.archive";
  cfg.segmentBytes = 1u << 30;
  telemetry::TelemetryArchive ar(cfg);
  std::uint64_t i = 0;
  for (auto _ : state) {
    ar.appendSnapshot(keyframe, static_cast<double>(i));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(ar.bytesWritten()));
  ar.close();
  std::remove(cfg.path.c_str());
}

void BM_ArchiveOverhead(benchmark::State& state) {
  const std::string path = "bench_archive_mesh.archive";
  Harness h(path);
  const std::uint64_t recordsBase = h.archive->recordsWritten();
  double runSec = 0.0;
  double simSec = 0.0;
  for (auto _ : state) {
    const double t0 = nowSec();
    h.step(0.5);
    runSec += nowSec() - t0;
    simSec += 0.5;
  }
  const std::uint64_t records = h.archive->recordsWritten() - recordsBase;
  const double perAppendSec =
      measurePerAppendSec(benchKeyframe("bench-0", 7));
  // Share of a deployed (real-time) second: appends per simulated second
  // times the measured cost of one append.
  const double sharePct =
      simSec <= 0.0
          ? 0.0
          : 100.0 * static_cast<double>(records) * perAppendSec / simSec;
  state.counters["sim_s"] = simSec;
  state.counters["wall_s"] = runSec;
  state.counters["records/sim_s"] =
      simSec > 0 ? static_cast<double>(records) / simSec : 0;
  state.counters["us/append"] = perAppendSec * 1e6;
  state.counters["archive_share_%"] = sharePct;
  h.archive->close();
  std::remove(path.c_str());
  // The budget this PR promises: with the monitor recording every
  // applied snapshot and alarm edge, time spent inside append stays
  // < 1 % of the run. Fail the whole bench (and the CTest bench smoke
  // lane) if it regresses.
  if (sharePct >= 1.0) {
    std::fprintf(stderr,
                 "FAIL: archive share %.3f%% >= 1%% budget "
                 "(%llu records, %.1f us/append)\n",
                 sharePct, static_cast<unsigned long long>(records),
                 perAppendSec * 1e6);
    std::exit(1);
  }
  if (records == 0) {
    std::fprintf(stderr, "FAIL: archived mesh recorded nothing\n");
    std::exit(1);
  }
}

void BM_ArchiveReplay(benchmark::State& state) {
  // A soak-shaped archive: 4 nodes x N snapshots at 2 Hz, with an alarm
  // edge sprinkled every 16 records.
  const std::string path = "bench_archive_replay.archive";
  const std::uint64_t perNode = static_cast<std::uint64_t>(state.range(0));
  {
    telemetry::TelemetryArchive::Config cfg;
    cfg.path = path;
    cfg.segmentBytes = 1u << 30;
    telemetry::TelemetryArchive ar(cfg);
    for (std::uint64_t s = 1; s <= perNode; ++s) {
      for (int n = 0; n < 4; ++n) {
        const double mono = static_cast<double>(s) * 0.5;
        std::string node = "bench-";
        node += std::to_string(n);
        ar.appendSnapshot(benchKeyframe(node, s), mono);
        if ((s * 4 + static_cast<std::uint64_t>(n)) % 16 == 0)
          ar.appendAlarm(2, 1, mono, node, "synthetic edge", mono);
      }
    }
    ar.close();
  }
  std::uint64_t replayed = 0;
  for (auto _ : state) {
    telemetry::ArchiveReader reader(path);
    const std::vector<telemetry::ArchiveRecord> records = reader.readAll();
    telemetry::HealthMonitor mon;
    for (const telemetry::ArchiveRecord& rec : records) {
      mon.step(rec.monoSec);
      if (rec.type == telemetry::ArchiveRecordType::kSnapshot) {
        core::AttributeSet attrs;
        attrs.set(telemetry::kTelemetryAttr,
                  core::AttributeValue(rec.snapshot));
        mon.reflectAttributeValues(telemetry::kTelemetryClass, attrs,
                                   rec.monoSec);
      }
    }
    benchmark::DoNotOptimize(mon.nodeCount());
    replayed += records.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(replayed));
  std::remove(path.c_str());
}

}  // namespace

BENCHMARK(BM_ArchiveAppend);
BENCHMARK(BM_ArchiveOverhead)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ArchiveReplay)->Arg(64)->Arg(512)->ArgNames({"snaps/node"})
    ->Unit(benchmark::kMillisecond);
