#!/usr/bin/env bash
# Run every benchmark binary and drop per-bench baseline files next to the
# build tree: Google-Benchmark binaries emit machine-readable
# BENCH_<name>.json, self-driving scenario benches emit BENCH_<name>.log.
#
#   usage: bench/run_all.sh [build-dir] [output-dir]
#
# Defaults: build-dir=build, output-dir=<build-dir>/bench-baselines.
#
# Every bench runs even if an earlier one fails (a mid-list failure must
# not hide the rest), a pass/fail summary table closes the run so a
# failure cannot be scrolled past, and the script exits non-zero if ANY
# bench failed — CI gates on this exit code.
set -uo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-${BUILD_DIR}/bench-baselines}"
BENCH_DIR="${BUILD_DIR}/bench"

if [[ ! -d "${BENCH_DIR}" ]]; then
  echo "error: ${BENCH_DIR} not found — configure and build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

# Discover built benches instead of duplicating the target lists from
# bench/CMakeLists.txt. Google-Benchmark binaries (identified by their
# libbenchmark link) emit JSON; self-driving main() benches emit logs.
declare -a names statuses
failed=0
found=0
for bin in "${BENCH_DIR}"/bench_*; do
  [[ -f "${bin}" && -x "${bin}" ]] || continue
  found=1
  b="$(basename "${bin}")"
  # No `grep -q`: under pipefail an early grep exit can SIGPIPE ldd and
  # fail the pipeline even though the library was found.
  if ldd "${bin}" 2>/dev/null | grep libbenchmark >/dev/null; then
    out="${OUT_DIR}/BENCH_${b#bench_}.json"
    echo "== ${b} -> ${out}"
    "${bin}" --benchmark_out="${out}" --benchmark_out_format=json >/dev/null
    rc=$?
  else
    out="${OUT_DIR}/BENCH_${b#bench_}.log"
    echo "== ${b} -> ${out}"
    "${bin}" > "${out}"
    rc=$?
    # Scenario benches that print a machine-readable COD_BENCH_SUMMARY
    # {json} line also get a BENCH_<name>.json baseline, same as the
    # Google-Benchmark binaries — CI diffs trajectories off the JSON
    # without parsing the human log.
    summary="$(grep -h '^COD_BENCH_SUMMARY ' "${out}" | tail -n1)"
    if [[ -n "${summary}" ]]; then
      printf '%s\n' "${summary#COD_BENCH_SUMMARY }" \
        > "${OUT_DIR}/BENCH_${b#bench_}.json"
    fi
  fi
  names+=("${b}")
  statuses+=("${rc}")
  # One machine-readable result line per bench, greppable by CI.
  printf 'COD_BENCH_RESULT {"bench":"%s","exit":%d,"baseline":"%s"}\n' \
    "${b}" "${rc}" "${out}"
  if [[ "${rc}" -ne 0 ]]; then
    echo "== ${b} FAILED (exit ${rc})" >&2
    failed=1
  fi
done

if [[ "${found}" -eq 0 ]]; then
  echo "error: no bench_* binaries under ${BENCH_DIR} — build first" >&2
  exit 1
fi

# Baselines regression hunts diff against: the reliable-channel numbers
# (vs best effort), the batching numbers (datagrams/frame batched vs
# unbatched), the telemetry overhead share (bench_telemetry exits
# non-zero past its 2% budget), the CB routing numbers (the wide-table
# lookups must stay flat 1 -> 10k registered pairs at any shard count),
# the flight-recorder numbers (bench_trace exits non-zero past its
# 1% recorder-share budget), the flow-control numbers (budgeted-window
# gate overhead, per-overflow-policy costs, split-window fan-out and the
# best-effort thinning fast path) and the flight-data archive numbers
# (bench_archive exits non-zero past its 1% append-share budget, and
# prices the cod_inspect replay path) and the async-engine numbers
# (bench_async: mmsg-vs-single-syscall datagrams/s and the sync-vs-async
# 16-peer mesh p99 tick latency, gated by COD_BENCH_ASYNC_STRICT tier).
# Warn (stderr) if any was not produced — e.g. Google Benchmark missing,
# so the gbench binaries were never built. Not fatal: the scenario-bench
# .log baselines above are still valid without them. BENCH_async.json
# comes from a self-driving bench (no Google Benchmark needed), so its
# absence means bench_async itself did not run or print its summary —
# that one is fatal.
for required in BENCH_reliable.json BENCH_batching.json BENCH_telemetry.json \
                BENCH_cb_routing.json BENCH_trace.json BENCH_flow.json \
                BENCH_archive.json; do
  if [[ ! -s "${OUT_DIR}/${required}" ]]; then
    bench_bin="bench_${required#BENCH_}"
    bench_bin="${bench_bin%.json}"
    echo "warning: ${required} missing — ${bench_bin} did not run" >&2
    echo "         (is Google Benchmark installed?)" >&2
  fi
done
if [[ ! -s "${OUT_DIR}/BENCH_async.json" ]]; then
  echo "error: BENCH_async.json missing — bench_async did not emit its" >&2
  echo "       COD_BENCH_SUMMARY line" >&2
  failed=1
fi

echo
echo "== bench summary ======================"
for i in "${!names[@]}"; do
  if [[ "${statuses[$i]}" -eq 0 ]]; then
    printf '  %-24s PASS\n' "${names[$i]}"
  else
    printf '  %-24s FAIL (exit %s)\n' "${names[$i]}" "${statuses[$i]}"
  fi
done
echo "======================================="

if [[ "${failed}" -ne 0 ]]; then
  echo "error: at least one bench failed (see summary above)" >&2
  exit 1
fi
echo "baselines written to ${OUT_DIR}/"
