// E8 — motion platform controller (§3.4): inverse-kinematics and motion-
// cueing cost per tick, and the posture-interpolation smoothness that keeps
// the platform in phase with the 16 fps visual display.

#include <benchmark/benchmark.h>

#include "platform/motion_cueing.hpp"
#include "platform/stewart.hpp"

namespace {

using namespace cod;
using platform::Pose;

void BM_InverseKinematics(benchmark::State& state) {
  const platform::StewartPlatform sp;
  Pose p = sp.homePose();
  double phase = 0.0;
  for (auto _ : state) {
    phase += 0.01;
    p.position.z = sp.homePose().position.z + 0.1 * std::sin(phase);
    p.orientation = math::Quat::fromEuler(0.05 * std::sin(phase * 1.3),
                                          0.05 * std::cos(phase), 0.0);
    benchmark::DoNotOptimize(sp.inverseKinematics(p));
  }
}

void BM_ClampToWorkspace(benchmark::State& state) {
  const platform::StewartPlatform sp;
  Pose crazy = sp.homePose();
  crazy.position.z += 2.0;
  crazy.orientation = math::Quat::fromAxisAngle({1, 0, 0}, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sp.clampToWorkspace(crazy));
  }
}

void BM_InterpolatorAdvance(benchmark::State& state) {
  platform::PoseInterpolator interp(Pose::identity());
  Pose target;
  target.position = {0.1, 0.05, 1.7};
  interp.setTarget(target, 1.0 / 16.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.advance(0.005));
  }
}

/// Full controller tick: washout map → clamp → interpolate → IK → vibration.
void BM_FullControllerTick(benchmark::State& state) {
  const platform::StewartPlatform sp;
  platform::WashoutFilter washout;
  platform::PoseInterpolator interp(sp.homePose());
  platform::VibrationGenerator vib(0.004, 14.0, 5);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.005;
    Pose target = washout.map(sp.homePose(), 0.05 * std::sin(t),
                              0.03 * std::cos(t), std::sin(t * 0.3), 0.2,
                              0.005);
    if (!sp.reachable(target)) target = sp.clampToWorkspace(target);
    interp.setTarget(target, 1.0 / 16.0);
    Pose pose = interp.advance(0.005);
    pose.position.z += vib.sample(0.005);
    benchmark::DoNotOptimize(sp.inverseKinematics(pose));
  }
  state.counters["xRealtime"] = benchmark::Counter(
      0.005 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

/// Smoothness (§3.4): worst single-tick leg step while chasing a rough
/// carrier pose at the display frequency. Reported as a counter (metres).
void BM_PostureSmoothness(benchmark::State& state) {
  const double frameInterval = 1.0 / static_cast<double>(state.range(0));
  double worst = 0.0;
  for (auto _ : state) {
    const platform::StewartPlatform sp;
    platform::PoseInterpolator interp(sp.homePose());
    std::array<double, 6> last{};
    bool haveLast = false;
    worst = 0.0;
    double t = 0.0;
    double nextFrame = 0.0;
    for (int i = 0; i < 2000; ++i) {
      t += 0.005;
      if (t >= nextFrame) {
        nextFrame = t + frameInterval;
        Pose target = sp.homePose();
        target.position.z += 0.08 * std::sin(t * 2.0);
        target.orientation =
            math::Quat::fromEuler(0.1 * std::sin(t * 1.7), 0.1 * std::cos(t),
                                  0.0);
        interp.setTarget(target, frameInterval);
      }
      const Pose pose = interp.advance(0.005);
      const auto sol = sp.inverseKinematics(pose);
      if (haveLast) {
        for (int leg = 0; leg < 6; ++leg)
          worst = std::max(worst, std::abs(sol.lengths[leg] - last[leg]));
      }
      last = sol.lengths;
      haveLast = true;
    }
    benchmark::DoNotOptimize(worst);
  }
  state.counters["maxLegStepMm"] = worst * 1e3;
}

}  // namespace

BENCHMARK(BM_InverseKinematics);
BENCHMARK(BM_ClampToWorkspace);
BENCHMARK(BM_InterpolatorAdvance);
BENCHMARK(BM_FullControllerTick);
BENCHMARK(BM_PostureSmoothness)->Arg(8)->Arg(16)->Arg(30);
