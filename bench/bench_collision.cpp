// E6 — multi-level collision detection (§3.6, after Moore & Wilhelms):
// query cost of the three-level pruning pipeline vs the naive all-pairs
// all-triangles baseline, swept over the obstacle count.

#include <benchmark/benchmark.h>

#include "collision/world.hpp"
#include "math/rng.hpp"

namespace {

using namespace cod;
using collision::Shape;
using collision::World;
using math::Mat4;

/// A construction-site-like scene: n objects spread over the ground, a few
/// clusters close enough to collide.
World makeScene(int n, std::uint64_t seed) {
  math::Rng rng(seed);
  World w(8.0);
  for (int i = 0; i < n; ++i) {
    const math::Vec3 pos{rng.uniform(0, 80), rng.uniform(0, 80),
                         rng.uniform(0, 3)};
    const math::Quat q =
        math::Quat::fromAxisAngle({0, 0, 1}, rng.uniform(0, 3.14));
    if (rng.chance(0.3)) {
      w.add("bar", Shape::cylinder(0.06, 4.0, 8), Mat4::rigid(q, pos));
    } else {
      w.add("box",
            Shape::box({rng.uniform(0.5, 2.5), rng.uniform(0.5, 2.5),
                        rng.uniform(0.5, 2.5)}),
            Mat4::rigid(q, pos));
    }
  }
  return w;
}

void BM_MultiLevelQuery(benchmark::State& state) {
  World w = makeScene(static_cast<int>(state.range(0)), 11);
  collision::QueryStats stats;
  for (auto _ : state) {
    stats.reset();
    benchmark::DoNotOptimize(w.query(&stats));
  }
  state.counters["triTests"] = static_cast<double>(stats.triangleTests);
  state.counters["sphereRejects"] = static_cast<double>(stats.sphereRejects);
  state.counters["contacts"] = static_cast<double>(stats.contacts);
}

void BM_NaiveQuery(benchmark::State& state) {
  World w = makeScene(static_cast<int>(state.range(0)), 11);
  collision::QueryStats stats;
  for (auto _ : state) {
    stats.reset();
    benchmark::DoNotOptimize(w.queryNaive(&stats));
  }
  state.counters["triTests"] = static_cast<double>(stats.triangleTests);
  state.counters["contacts"] = static_cast<double>(stats.contacts);
}

/// The simulator's actual per-step query: one moving cargo against the
/// course bars (queryOne), at 50 Hz this must be trivially cheap.
void BM_CargoAgainstBars(benchmark::State& state) {
  World w(8.0);
  for (int i = 0; i < 3; ++i) {
    w.add("bar", Shape::cylinder(0.06, 4.0, 8),
          Mat4::translation({5.0 * i, 0, 1.3}));
  }
  const auto cargo =
      w.add("cargo", Shape::box({1, 1, 1}), Mat4::translation({0, 0, 1.2}));
  double x = 0.0;
  for (auto _ : state) {
    x += 0.01;
    if (x > 10.0) x = 0.0;
    w.setTransform(cargo, Mat4::translation({x, 0, 1.2}));
    benchmark::DoNotOptimize(w.queryOne(cargo));
  }
}

}  // namespace

BENCHMARK(BM_MultiLevelQuery)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_NaiveQuery)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_CargoAgainstBars);
