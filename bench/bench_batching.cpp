// E4 — tick-coalesced update batching: the paper's surround view runs at
// 16 fps with three graphical computers and pushes 3+ attribute sets per
// frame (crane state, platform pose, sync messages). Without coalescing,
// every update costs one datagram per virtual channel; with the CB's
// per-peer send coalescer, a frame's worth of traffic to one peer rides a
// single kBatch container.
//
// BM_FrameFlush measures a simulated frame (3 publications updated, then
// the tick flush) at fan-out 4 and 16, batched vs unbatched. The headline
// counter is pkts/frame: 3*fan un-batched vs fan batched (>= 3x fewer).
// BM_DecodeBatchContainer prices the receive-side unpack.

#include <benchmark/benchmark.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/cb.hpp"
#include "core/protocol.hpp"
#include "net/transport.hpp"

namespace {

using namespace cod;

class NullLp : public core::LogicalProcess {
 public:
  NullLp() : core::LogicalProcess("lp") {}
};

core::AttributeSet sampleAttrs() {
  core::AttributeSet a;
  a.set("carrierPos", math::Vec3{1, 2, 3});
  a.set("heading", 0.5);
  a.set("speed", 3.2);
  a.set("boomPitch", 0.8);
  a.set("cableLen", 6.0);
  a.set("engineOn", true);
  return a;
}

/// Transport that counts outbound datagrams/bytes and replays injected
/// datagrams (for channel setup); the network itself is out of the picture.
class CountingTransport final : public net::Transport {
 public:
  net::NodeAddr localAddress() const override { return {1, 1}; }
  void send(const net::NodeAddr&, std::span<const std::uint8_t> bytes) override {
    ++packets;
    bytesSent += bytes.size();
  }
  void broadcast(std::uint16_t, std::span<const std::uint8_t>) override {}
  std::optional<net::Datagram> receive() override {
    if (inbound.empty()) return std::nullopt;
    net::Datagram d = std::move(inbound.front());
    inbound.pop_front();
    return d;
  }
  void inject(const net::NodeAddr& src, std::vector<std::uint8_t> bytes) {
    inbound.push_back(net::Datagram{src, localAddress(), std::move(bytes)});
  }
  std::uint64_t packets = 0;
  std::uint64_t bytesSent = 0;
  std::deque<net::Datagram> inbound;
};

/// One simulated frame: 3 publications updated, then the tick flush.
/// args: {fan-out, batching on}.
void BM_FrameFlush(benchmark::State& state) {
  const std::uint32_t fan = static_cast<std::uint32_t>(state.range(0));
  core::CommunicationBackbone::Config cfg;
  cfg.batch.enabled = state.range(1) != 0;
  auto transport = std::make_unique<CountingTransport>();
  CountingTransport* net = transport.get();
  core::CommunicationBackbone cb("pub", std::move(transport), cfg);
  NullLp pub;
  cb.attach(pub);
  constexpr int kPubsPerFrame = 3;
  core::PublicationHandle pubs[kPubsPerFrame];
  for (int p = 0; p < kPubsPerFrame; ++p)
    pubs[p] = cb.publishObjectClass(pub, "bench.cls" + std::to_string(p));
  std::uint32_t chan = 1;
  for (std::uint32_t i = 0; i < fan; ++i) {
    for (int p = 0; p < kPubsPerFrame; ++p) {
      net->inject({10 + i, 1},
                  core::encode(core::ChannelConnectionMsg{
                      100 * (i + 1) + static_cast<std::uint32_t>(p), pubs[p],
                      chan++, "bench.cls" + std::to_string(p)}));
    }
  }
  cb.tick(0.0);
  net->packets = 0;
  net->bytesSent = 0;
  const core::AttributeSet attrs = sampleAttrs();
  // Virtual time stays put: the fake subscribers never heartbeat back, so
  // advancing the clock would let the channels time out mid-run (the flush
  // point is per tick, not per second, so the measurement is unaffected).
  const double t = 1e-4;
  std::uint64_t frames = 0;
  for (auto _ : state) {
    for (int p = 0; p < kPubsPerFrame; ++p)
      cb.updateAttributeValues(pubs[p], attrs, t);
    cb.tick(t);
    ++frames;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames) * kPubsPerFrame);
  state.counters["fan"] = fan;
  state.counters["pkts/frame"] =
      static_cast<double>(net->packets) / static_cast<double>(frames);
  state.counters["bytes/pkt"] = net->packets == 0
                                    ? 0.0
                                    : static_cast<double>(net->bytesSent) /
                                          static_cast<double>(net->packets);
}

/// Receive side: unpack-and-decode cost of a 16-update container vs 16
/// bare frames through the generic decoder.
void BM_DecodeBatchContainer(benchmark::State& state) {
  const core::AttributeSet attrs = sampleAttrs();
  core::BatchMsg batch;
  for (std::uint64_t i = 0; i < 16; ++i) {
    core::UpdateMsg u;
    u.channelId = 7;
    u.seq = i + 1;
    u.timestamp = 0.1 * static_cast<double>(i);
    u.payload = attrs.encode();
    batch.frames.push_back(core::encode(u));
  }
  const auto bytes = core::encode(batch);
  for (auto _ : state) {
    auto msg = core::decode(bytes);
    benchmark::DoNotOptimize(msg);
    for (const auto& frame : msg->batch.frames) {
      auto sub = core::decode(frame);
      benchmark::DoNotOptimize(sub);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}

}  // namespace

BENCHMARK(BM_FrameFlush)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->ArgNames({"fan", "batched"});
BENCHMARK(BM_DecodeBatchContainer);
