// E9 — the audio module (§3.7): mixing throughput vs active channel count.
// The 2001 system leaned on DirectSound; the software mixer must hold many
// times realtime so audio never constrains the simulator's frame budget.

#include <benchmark/benchmark.h>

#include <cmath>

#include "audio/mixer.hpp"

namespace {

using namespace cod::audio;

void BM_MixChannels(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  Mixer m(48000);
  auto loop = std::make_shared<PcmBuffer>(makeEngineLoop(48000, 900, 1.0, 2));
  for (int i = 0; i < channels; ++i)
    m.play(loop, 0.5, /*loop=*/true, 1.0 + 0.01 * i);
  std::vector<float> out;
  constexpr std::size_t kFrames = 960;  // 20 ms blocks
  for (auto _ : state) {
    m.mix(out, kFrames);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["xRealtime"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kFrames / 48000.0,
      benchmark::Counter::kIsRate);
}

void BM_EnginePitchTracking(benchmark::State& state) {
  AudioEngine e;
  e.setBackground(true);
  e.setEngine(true, 900.0);
  double rpm = 900.0;
  std::vector<float> out;
  for (auto _ : state) {
    rpm = 900.0 + 800.0 * std::abs(std::sin(rpm));
    e.setEngine(true, rpm);
    out = e.pump(0.02);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_CollisionEventBurst(benchmark::State& state) {
  AudioEngine e;
  for (auto _ : state) {
    e.playEvent("collision", 1.0);
    benchmark::DoNotOptimize(e.pump(0.02));
  }
}

void BM_ProceduralGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(makeCollisionBurst(48000, 0.6, seed++));
  }
}

}  // namespace

BENCHMARK(BM_MixChannels)->Arg(1)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_EnginePitchTracking);
BENCHMARK(BM_CollisionEventBurst);
BENCHMARK(BM_ProceduralGeneration);
