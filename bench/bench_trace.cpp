// Flight-recorder overhead: tracing must be invisible next to the work.
//
// BM_TraceRecord prices one TraceRecorder::record() — a spinlocked ring
// write, the only thing the hot-path hooks do. BM_TraceOverhead drives a
// busy 4-node reliable mesh with the recorder attached and sampling on,
// and gates the recorder's share of the run: (events recorded) x
// (measured cost per record) against the run's wall time. Both factors
// come from this process's own measurements, so the share is a model of
// the cost actually paid inside the run rather than a noisy wall-clock
// A/B of two runs. Budget: < 1 % of run time, std::exit(1) past it
// (failing the CTest bench smoke lane).
//
// BM_TraceDumpJson prices turning a full ring into Chrome trace JSON —
// the alarm-path cost, off the hot path but paid at the worst moment.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/cb.hpp"
#include "net/udp.hpp"
#include "telemetry/hist.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace cod;

class MeshLp final : public core::LogicalProcess {
 public:
  MeshLp(std::string cls, double intervalSec)
      : core::LogicalProcess("mesh"), cls_(std::move(cls)),
        interval_(intervalSec) {}

  void bind(core::CommunicationBackbone& cb) {
    cb.attach(*this);
    pub_ = cb.publishObjectClass(*this, cls_,
                                 net::QosClass::kReliableOrdered);
  }

  void subscribe(core::CommunicationBackbone& cb, const std::string& cls) {
    cb.subscribeObjectClass(*this, cls, net::QosClass::kReliableOrdered);
  }

  void step(double now) override {
    if (now - last_ < interval_ - 1e-9) return;
    last_ = now;
    // A full crane-state update (the paper's dynamics payload), not a toy
    // two-field one: the recorder's share is judged against the work a
    // real update actually costs to encode and deliver.
    core::AttributeSet attrs;
    attrs.set("pos", math::Vec3{now, 1.0, 2.0});
    attrs.set("vel", math::Vec3{0.1, 0.2, 0.3});
    attrs.set("att", math::Vec3{0.01, 0.02, 0.03});
    attrs.set("boomAngle", 0.8);
    attrs.set("trolley", 12.5);
    attrs.set("hoist", 30.0 - now);
    attrs.set("spreaderLock", true);
    attrs.set("load", 22000.0);
    attrs.set("swayX", 0.05);
    attrs.set("swayY", -0.03);
    attrs.set("heading", 0.25);
    attrs.set("speed", 3.5);
    backbone()->updateAttributeValues(pub_, attrs, now);
  }

 private:
  std::string cls_;
  double interval_;
  double last_ = -1e300;
  core::PublicationHandle pub_ = core::kInvalidHandle;
};

/// A busy 4-node full mesh of reliable 60 Hz streams over REAL loopback
/// UDP sockets (the flight recorder's actual deployment — soak nodes and
/// live racks pay syscalls per datagram, and the recorder's share is
/// judged against that work), every CB sharing one flight recorder with
/// 1-in-8 update sampling.
struct Harness {
  Harness() : rec(1 << 14) {
    net::UdpConfig ucfg;
    ucfg.portsPerHost = 1;
    ucfg.maxHosts = 4;
    ucfg.basePort = net::pickEphemeralBasePort(4);
    const std::string nodeNames[4] = {"n0", "n1", "n2", "n3"};
    const std::string classNames[4] = {"mesh.0", "mesh.1", "mesh.2",
                                       "mesh.3"};
    core::CommunicationBackbone::Config cfg;
    cfg.trace = &rec;
    cfg.traceSampleEvery = 8;
    for (int i = 0; i < 4; ++i)
      cbs.push_back(std::make_unique<core::CommunicationBackbone>(
          nodeNames[i],
          std::make_unique<net::UdpTransport>(
              ucfg, static_cast<net::HostId>(i), 0),
          cfg));
    for (int i = 0; i < 4; ++i) {
      lps.push_back(std::make_unique<MeshLp>(classNames[i], 1.0 / 60.0));
      lps.back()->bind(*cbs[i]);
      for (int j = 0; j < 4; ++j)
        if (j != i) lps.back()->subscribe(*cbs[i], classNames[j]);
    }
    step(3.0);  // wire up before measuring
  }

  // Virtual 60 Hz clock; the loop runs as fast as the sockets allow.
  void step(double seconds) {
    const double until = now_ + seconds;
    while (now_ < until) {
      now_ += 1.0 / 60.0;
      for (auto& cb : cbs) cb->tick(now_);
    }
  }

  telemetry::TraceRecorder rec;
  std::vector<std::unique_ptr<core::CommunicationBackbone>> cbs;
  std::vector<std::unique_ptr<MeshLp>> lps;
  double now_ = 0.0;
};

double nowSec() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// Cost of one record() into a warm ring: the minimum over several timed
/// passes, so a descheduling burst can only make the modeled recorder
/// share *smaller*, never fail the gate spuriously.
double measurePerRecordSec() {
  telemetry::TraceRecorder scratch(1 << 14);
  const std::uint16_t lane = scratch.registerLane("price");
  constexpr std::uint64_t kPass = 1 << 18;
  constexpr int kPasses = 5;
  double best = 1e300;
  for (int p = 0; p < kPasses; ++p) {
    const double t0 = nowSec();
    for (std::uint64_t i = 0; i < kPass; ++i)
      scratch.record(telemetry::TraceEventKind::kDatagramSend, lane, 1.0,
                     0.0, i);
    const double perRecord = (nowSec() - t0) / static_cast<double>(kPass);
    best = std::min(best, perRecord);
  }
  return best;
}

void BM_TraceRecord(benchmark::State& state) {
  telemetry::TraceRecorder rec(
      static_cast<std::size_t>(state.range(0)));
  const std::uint16_t lane = rec.registerLane("bench");
  std::uint64_t i = 0;
  for (auto _ : state) {
    rec.record(telemetry::TraceEventKind::kDatagramSend, lane,
               static_cast<double>(i), 0.0, i);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}

void BM_TraceOverhead(benchmark::State& state) {
  Harness h;
  const std::uint64_t eventsBase = h.rec.recorded();
  double runSec = 0.0;
  double simSec = 0.0;
  for (auto _ : state) {
    const double t0 = nowSec();
    h.step(0.5);
    runSec += nowSec() - t0;
    simSec += 0.5;
  }
  const std::uint64_t events = h.rec.recorded() - eventsBase;
  const double perRecordSec = measurePerRecordSec();
  const double sharePct =
      runSec <= 0.0
          ? 0.0
          : 100.0 * static_cast<double>(events) * perRecordSec / runSec;
  state.counters["sim_s"] = simSec;
  state.counters["events/sim_s"] =
      simSec > 0 ? static_cast<double>(events) / simSec : 0;
  state.counters["ns/record"] = perRecordSec * 1e9;
  state.counters["trace_share_%"] = sharePct;
  // The budget this PR promises: with the recorder attached and sampling
  // on, time spent inside record() stays < 1 % of the run. Fail the
  // whole bench (and the CTest bench smoke lane) if it regresses.
  if (sharePct >= 1.0) {
    std::fprintf(stderr,
                 "FAIL: trace recorder share %.3f%% >= 1%% budget "
                 "(%llu events, %.1f ns/record)\n",
                 sharePct, static_cast<unsigned long long>(events),
                 perRecordSec * 1e9);
    std::exit(1);
  }
  if (events == 0) {
    std::fprintf(stderr, "FAIL: traced mesh recorded no events\n");
    std::exit(1);
  }
}

void BM_TraceDumpJson(benchmark::State& state) {
  telemetry::TraceRecorder rec(1 << 14);
  const std::uint16_t lane = rec.registerLane("dump");
  for (std::uint64_t i = 0; i < rec.capacity() + 7; ++i)
    rec.record(i % 5 == 0 ? telemetry::TraceEventKind::kPublisherSpan
                          : telemetry::TraceEventKind::kDatagramSend,
               lane, static_cast<double>(i) * 1e-3, 1e-4, i, i / 2);
  std::uint64_t bytes = 0;
  std::uint64_t dumps = 0;
  for (auto _ : state) {
    const std::string json = rec.dumpJson();
    benchmark::DoNotOptimize(json.data());
    bytes += json.size();
    ++dumps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(dumps));
  state.counters["bytes/dump"] =
      dumps == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(dumps);
}

}  // namespace

BENCHMARK(BM_TraceRecord)->Arg(1 << 10)->Arg(1 << 14)->ArgNames({"ring"});
BENCHMARK(BM_TraceOverhead)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceDumpJson)->Unit(benchmark::kMillisecond);
