// E1 — the paper's headline result (§4): "the frame rate of the surrounded
// view is 16 frame-per-second with totally 3235 polygons inside the virtual
// scene", with three display computers behind a synchronization server.
//
// Reproduction: three software-rasterizer channels render the training scene
// in parallel threads (standing in for the three display PCs). Under the
// swap barrier a frame completes when the *slowest* channel finishes plus
// the FRAME_READY/SWAP exchange; free-running channels present as soon as
// they finish. We sweep the polygon count and report both rates. Absolute
// fps depends on this machine; the paper's shape — sync fps < free fps,
// fps falling as polygons grow — is what must reproduce.

#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "core/cluster.hpp"
#include "render/rasterizer.hpp"
#include "sim/object_classes.hpp"
#include "sim/scene_builder.hpp"

using namespace cod;
using Clock = std::chrono::steady_clock;

namespace {

struct Channel {
  sim::BuiltScene built;
  render::SurroundRig rig;
  render::Rasterizer raster;
  render::Framebuffer fb{640, 480};
  int index = 0;

  explicit Channel(const scenario::Course& course, std::size_t polys, int idx)
      : built(sim::buildTrainingScene(course, polys)), index(idx) {
    rig.setPose({course.craneParkPosition.x, course.craneParkPosition.y, 2.6},
                math::Quat{});
  }

  double renderOnce() {
    const auto t0 = Clock::now();
    fb.clear();
    raster.render(built.scene, rig.channel(static_cast<std::size_t>(index)),
                  fb);
    return std::chrono::duration<double>(Clock::now() - t0).count();
  }
};

/// Virtual-time cost of one FRAME_READY/SWAP barrier exchange, measured on
/// the simulated LAN with a fine tick so protocol latency is not quantized
/// away. This stands in for the 2001 LAN round trip.
double measureBarrierLatency() {
  core::CodCluster::Config cfg;
  cfg.tickIntervalSec = 0.0002;
  core::CodCluster cluster(cfg);
  auto& cbS = cluster.addComputer("sync");
  auto& cbD = cluster.addComputer("display");

  struct ReadyLp : core::LogicalProcess {
    ReadyLp() : core::LogicalProcess("d") {}
  } display;
  struct SyncLp : core::LogicalProcess {
    SyncLp() : core::LogicalProcess("s") {}
    core::CommunicationBackbone* cb = nullptr;
    core::PublicationHandle swapPub = core::kInvalidHandle;
    void reflectAttributeValues(const std::string&, const core::AttributeSet& a,
                                double ts) override {
      cb->updateAttributeValues(swapPub, a, ts);
    }
  } server;

  cbD.attach(display);
  const auto readyPub = cbD.publishObjectClass(display, sim::kClassSyncReady);
  const auto swapSub = cbD.subscribeObjectClass(display, sim::kClassSyncSwap);
  cbS.attach(server);
  server.cb = &cbS;
  server.swapPub = cbS.publishObjectClass(server, sim::kClassSyncSwap);
  cbS.subscribeObjectClass(server, sim::kClassSyncReady);
  cluster.runUntil([&] { return cbD.connected(swapSub); }, 5.0);
  // Measure 100 ready→swap round trips in virtual time.
  double total = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double t0 = cluster.now();
    core::AttributeSet a;
    a.set("frame", i);
    cbD.updateAttributeValues(readyPub, a, t0);
    cluster.runUntil(
        [&] {
          const core::Reflection* r = cbD.latest(swapSub);
          return r != nullptr && r->attrs.getInt("frame") == i;
        },
        t0 + 1.0);
    total += cluster.now() - t0;
  }
  return total / 100.0;
}

}  // namespace

int main() {
  const scenario::Course course = scenario::standardLicensureCourse();
  const double barrierSec = measureBarrierLatency();

  std::printf("E1: surround-view frame rate vs polygon count\n");
  std::printf("(3 channels, 640x480 per channel, swap-barrier latency "
              "%.2f ms)\n\n",
              barrierSec * 1e3);
  std::printf("%10s %14s %14s %14s %10s\n", "polygons", "slowest-ch(ms)",
              "fps(sync)", "fps(free,min)", "overhead");

  for (const std::size_t polys : {500u, 1000u, 2000u, 3235u, 6500u, 13000u}) {
    std::vector<std::unique_ptr<Channel>> channels;
    for (int i = 0; i < 3; ++i)
      channels.push_back(std::make_unique<Channel>(course, polys, i));
    // Warm up, then time 30 frames rendered in parallel (one thread per
    // display computer, as on the real rack).
    for (auto& c : channels) c->renderOnce();
    const int frames = 30;
    double maxChannelTotal = 0.0;   // free-run: slowest channel's own pace
    double barrierTotal = 0.0;      // sync: max over channels per frame
    std::vector<double> channelTotals(channels.size(), 0.0);
    for (int f = 0; f < frames; ++f) {
      std::vector<std::future<double>> futs;
      futs.reserve(channels.size());
      for (auto& c : channels) {
        futs.push_back(std::async(std::launch::async,
                                  [&c] { return c->renderOnce(); }));
      }
      double slowest = 0.0;
      for (std::size_t i = 0; i < futs.size(); ++i) {
        const double t = futs[i].get();
        channelTotals[i] += t;
        slowest = std::max(slowest, t);
      }
      barrierTotal += slowest + barrierSec;
    }
    for (const double t : channelTotals)
      maxChannelTotal = std::max(maxChannelTotal, t);
    const double fpsSync = frames / barrierTotal;
    const double fpsFreeMin = frames / maxChannelTotal;
    std::printf("%10zu %14.2f %14.1f %14.1f %9.1f%%\n", polys,
                1e3 * barrierTotal / frames - 1e3 * barrierSec, fpsSync,
                fpsFreeMin, 100.0 * (1.0 - fpsSync / fpsFreeMin));
  }
  std::printf("\npaper reference: 16 fps at 3235 polygons (TNT2 M64, 2001); "
              "expect the same shape, not the same absolutes\n");
  return 0;
}
