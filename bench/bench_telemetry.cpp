// Telemetry overhead: the cluster-health export must be invisible next to
// the working traffic.
//
// BM_TelemetryOverhead drives two identically-seeded 4-node clusters with
// a busy 16 fps full-mesh state exchange — one with telemetry (1 Hz
// publishers on every node, HealthMonitor on node 0), one without — and
// reports the telemetry share of total datagrams. Because snapshots ride
// the per-peer kBatch coalescer with traffic that was leaving anyway, the
// share stays far below the 2 % budget this bench enforces (the process
// exits non-zero past it, failing the CTest bench smoke lane).
//
// BM_TelemetryEncode prices one snapshot+encode, keyframe vs delta.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/publisher.hpp"
#include "telemetry/registry.hpp"

namespace {

using namespace cod;

class MeshLp final : public core::LogicalProcess {
 public:
  MeshLp(std::string cls, double intervalSec)
      : core::LogicalProcess("mesh"), cls_(std::move(cls)),
        interval_(intervalSec) {}

  void bind(core::CommunicationBackbone& cb) {
    cb.attach(*this);
    pub_ = cb.publishObjectClass(*this, cls_);
  }

  void subscribe(core::CommunicationBackbone& cb, const std::string& cls) {
    cb.subscribeObjectClass(*this, cls);
  }

  void step(double now) override {
    // Epsilon so float accumulation of the tick clock cannot make a 60 Hz
    // stream skip a 60 Hz tick (which would leave peer containers empty
    // exactly where telemetry frames would otherwise coalesce for free).
    if (now - last_ < interval_ - 1e-9) return;
    last_ = now;
    core::AttributeSet attrs;
    attrs.set("pos", math::Vec3{now, 1.0, 2.0});
    attrs.set("heading", 0.25);
    attrs.set("speed", 3.5);
    attrs.set("boom", 0.8);
    backbone()->updateAttributeValues(pub_, attrs, now);
  }

 private:
  std::string cls_;
  double interval_;
  double last_ = -1e300;
  core::PublicationHandle pub_ = core::kInvalidHandle;
};

/// A busy 4-node cluster: a full-mesh state exchange at the paper's 60 Hz
/// dashboard/platform cadence, CBs ticking at the same rate (every tick
/// carries traffic to every peer, which is what "busy" means to the
/// coalescer). Telemetry optional; node 0 carries the HealthMonitor.
struct Harness {
  explicit Harness(bool withTelemetry) {
    core::CodCluster::Config ccfg;
    ccfg.seed = 99;
    ccfg.tickIntervalSec = 1.0 / 60.0;
    cluster = std::make_unique<core::CodCluster>(ccfg);
    const std::string nodeNames[4] = {"n0", "n1", "n2", "n3"};
    const std::string classNames[4] = {"mesh.0", "mesh.1", "mesh.2",
                                       "mesh.3"};
    for (int i = 0; i < 4; ++i)
      cbs.push_back(&cluster->addComputer(nodeNames[i]));
    for (int i = 0; i < 4; ++i) {
      lps.push_back(std::make_unique<MeshLp>(classNames[i], 1.0 / 60.0));
      lps.back()->bind(*cbs[i]);
      for (int j = 0; j < 4; ++j)
        if (j != i) lps.back()->subscribe(*cbs[i], classNames[j]);
    }
    if (withTelemetry) {
      telemetry::TelemetryConfig tcfg;  // 1 Hz
      for (auto* cb : cbs) {
        publishers.push_back(
            std::make_unique<telemetry::TelemetryPublisher>(tcfg));
        publishers.back()->bind(*cb);
      }
      monitor = std::make_unique<telemetry::HealthMonitor>();
      monitor->bind(*cbs[0]);
    }
    cluster->step(3.0);  // wire up before measuring
  }

  std::uint64_t packetsSent() const {
    return cluster->network().stats().packetsSent;
  }

  std::unique_ptr<core::CodCluster> cluster;
  std::vector<core::CommunicationBackbone*> cbs;
  std::vector<std::unique_ptr<MeshLp>> lps;
  std::vector<std::unique_ptr<telemetry::TelemetryPublisher>> publishers;
  std::unique_ptr<telemetry::HealthMonitor> monitor;
};

void BM_TelemetryOverhead(benchmark::State& state) {
  Harness on(true);
  Harness off(false);
  const std::uint64_t onBase = on.packetsSent();
  const std::uint64_t offBase = off.packetsSent();
  double simSeconds = 0.0;
  for (auto _ : state) {
    on.cluster->step(0.5);
    off.cluster->step(0.5);
    simSeconds += 0.5;
  }
  const double pktsOn = static_cast<double>(on.packetsSent() - onBase);
  const double pktsOff = static_cast<double>(off.packetsSent() - offBase);
  const double sharePct =
      pktsOn <= 0.0 ? 0.0 : 100.0 * (pktsOn - pktsOff) / pktsOn;
  state.counters["sim_s"] = simSeconds;
  state.counters["pkts/s_on"] = simSeconds > 0 ? pktsOn / simSeconds : 0;
  state.counters["pkts/s_off"] = simSeconds > 0 ? pktsOff / simSeconds : 0;
  state.counters["tele_share_%"] = sharePct;
  // The budget this PR promises: telemetry at 1 Hz costs < 2 % of the
  // datagrams of a busy cluster. Fail the whole bench (and the CTest
  // bench smoke lane) if it regresses.
  if (sharePct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: telemetry datagram share %.2f%% >= 2%% budget\n",
                 sharePct);
    std::exit(1);
  }
  if (on.monitor->nodeCount() != 4) {
    std::fprintf(stderr, "FAIL: monitor lost nodes (%zu/4)\n",
                 on.monitor->nodeCount());
    std::exit(1);
  }
}

void BM_TelemetryEncode(benchmark::State& state) {
  const bool delta = state.range(0) != 0;
  Harness h(true);
  telemetry::StatRegistry registry(*h.cbs[1]);
  const telemetry::NodeTelemetry base = registry.snapshot(3.0);
  std::uint64_t bytesOut = 0;
  std::uint64_t records = 0;
  for (auto _ : state) {
    telemetry::NodeTelemetry t = registry.snapshot(3.5);
    const auto bytes = delta ? telemetry::encodeTelemetryDelta(t, base)
                             : telemetry::encodeTelemetry(t);
    benchmark::DoNotOptimize(bytes.data());
    bytesOut += bytes.size();
    ++records;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.counters["bytes/record"] =
      records == 0 ? 0.0
                   : static_cast<double>(bytesOut) / static_cast<double>(records);
}

}  // namespace

BENCHMARK(BM_TelemetryOverhead)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TelemetryEncode)->Arg(0)->Arg(1)->ArgNames({"delta"});
