// E7 — the dynamics module (§3.6): step cost of each physical model and of
// the full 50 Hz substep, plus the inertia-oscillation settle time the
// paper describes ("the cable is oscillated until a full stop").

#include <benchmark/benchmark.h>

#include "crane/dynamics.hpp"
#include "crane/safety.hpp"
#include "physics/pendulum.hpp"
#include "physics/terrain.hpp"
#include "physics/vehicle.hpp"

namespace {

using namespace cod;

void BM_PendulumStep(benchmark::State& state) {
  physics::CablePendulum p;
  p.reset({0, 0, 10}, 6.0);
  p.setPivot({0.5, 0, 10});  // keep it swinging
  for (auto _ : state) {
    p.step(0.02);
    benchmark::DoNotOptimize(p.bobPosition());
  }
}

void BM_VehicleStep(benchmark::State& state) {
  physics::Terrain terrain = physics::Terrain::rolling(141, 91, 1.0, 0.4, 3);
  physics::Vehicle v;
  v.setPosition({50, 50}, 0.3);
  physics::VehicleInput in;
  in.throttle = 0.7;
  in.steer = 0.1;
  for (auto _ : state) {
    v.step(in, terrain, 0.02);
    benchmark::DoNotOptimize(v.position3());
  }
}

void BM_TerrainFollow(benchmark::State& state) {
  physics::Terrain terrain = physics::Terrain::rolling(141, 91, 1.0, 0.4, 3);
  double x = 10.0;
  for (auto _ : state) {
    x += 0.01;
    if (x > 120.0) x = 10.0;
    benchmark::DoNotOptimize(terrain.follow({x, 45.0}, 0.3, 4.5, 2.5));
  }
}

void BM_CraneJointStep(benchmark::State& state) {
  crane::CraneJointDynamics dyn;
  crane::CraneState s;
  s.engineOn = true;
  crane::CraneControls c;
  c.joystickSlew = 0.5;
  c.joystickLuff = -0.2;
  c.joystickTelescope = 0.3;
  c.joystickHoist = 0.4;
  for (auto _ : state) {
    dyn.step(s, c, 0.02);
    benchmark::DoNotOptimize(s.slewAngleRad);
  }
}

/// Everything the dynamics module integrates per 20 ms substep.
void BM_FullSubstep(benchmark::State& state) {
  physics::Terrain terrain = physics::Terrain::rolling(141, 91, 1.0, 0.4, 3);
  physics::Vehicle v;
  v.setPosition({50, 50}, 0.0);
  crane::CraneJointDynamics joints;
  crane::EngineModel engine;
  crane::CraneKinematics kin;
  crane::SafetyEnvelope safety;
  physics::CablePendulum pendulum;
  crane::CraneState s;
  crane::CraneControls c;
  c.ignition = true;
  c.throttle = 0.5;
  c.joystickSlew = 0.3;
  pendulum.reset(kin.boomTip(s), s.cableLengthM);
  physics::VehicleInput vin;
  vin.throttle = 0.5;
  for (auto _ : state) {
    engine.step(true, 0.5, 0.02);
    s.engineOn = engine.on();
    v.step(vin, terrain, 0.02);
    s.carrierPosition = v.position3();
    s.carrierHeadingRad = v.heading();
    joints.step(s, c, 0.02);
    pendulum.setPivot(kin.boomTip(s));
    pendulum.setLength(s.cableLengthM);
    pendulum.step(0.02);
    benchmark::DoNotOptimize(safety.assess(s, kin, v.rolloverIndex()));
  }
  // Realtime headroom: substeps of 20 ms simulated per wall second.
  state.counters["xRealtime"] = benchmark::Counter(
      0.02 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

/// Settle time of the inertia oscillation after the boom stops, vs damping.
void BM_OscillationSettle(benchmark::State& state) {
  const double damping = static_cast<double>(state.range(0)) / 100.0;
  double settleSec = 0.0;
  for (auto _ : state) {
    physics::CableParams params;
    params.dampingRate = damping;
    physics::CablePendulum p(params);
    p.reset({0, 0, 10}, 6.0);
    for (int i = 0; i < 100; ++i) {  // boom slews, then stops
      p.setPivot({0.03 * i, 0, 10});
      p.step(0.02);
    }
    int steps = 0;
    while (!p.atRest() && steps < 100000) {
      p.step(0.02);
      ++steps;
    }
    settleSec = steps * 0.02;
    benchmark::DoNotOptimize(settleSec);
  }
  state.counters["settleSec"] = settleSec;
}

}  // namespace

BENCHMARK(BM_PendulumStep);
BENCHMARK(BM_VehicleStep);
BENCHMARK(BM_TerrainFollow);
BENCHMARK(BM_CraneJointStep);
BENCHMARK(BM_FullSubstep);
BENCHMARK(BM_OscillationSettle)->Arg(6)->Arg(12)->Arg(25)->Arg(50);
