// Flow-control benchmarks: what the adaptive machinery added for the
// byte-budgeted send windows costs when armed but idle (the common case —
// a healthy rack never hits its budget), what each overflow policy does
// when a window actually fills, what a split per-channel window adds to
// the fan-out loop, and how cheap the best-effort thinning fast path is.
// BENCH_flow.json is a required baseline in bench/run_all.sh.

#include <benchmark/benchmark.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/cb.hpp"
#include "core/protocol.hpp"
#include "net/transport.hpp"

namespace {

using namespace cod;

class CountingLp : public core::LogicalProcess {
 public:
  CountingLp() : core::LogicalProcess("lp") {}
  std::uint64_t received = 0;
  void reflectAttributeValues(const std::string&, const core::AttributeSet&,
                              double) override {
    ++received;
  }
};

core::AttributeSet sampleAttrs() {
  core::AttributeSet a;
  a.set("carrierPos", math::Vec3{1, 2, 3});
  a.set("heading", 0.5);
  a.set("speed", 3.2);
  a.set("score", 96.0);
  a.set("phase", std::int64_t{3});
  a.set("alarms", std::int64_t{0});
  return a;
}

/// Transport that discards outbound traffic: isolates the CB send path.
class NullTransport final : public net::Transport {
 public:
  net::NodeAddr localAddress() const override { return {1, 1}; }
  void send(const net::NodeAddr&,
            std::span<const std::uint8_t> bytes) override {
    bytesSent += bytes.size();
  }
  void broadcast(std::uint16_t, std::span<const std::uint8_t>) override {}
  std::optional<net::Datagram> receive() override {
    if (inbound.empty()) return std::nullopt;
    net::Datagram d = std::move(inbound.front());
    inbound.pop_front();
    return d;
  }
  void inject(const net::NodeAddr& src, std::vector<std::uint8_t> bytes) {
    inbound.push_back(net::Datagram{src, localAddress(), std::move(bytes)});
  }
  std::uint64_t bytesSent = 0;
  std::deque<net::Datagram> inbound;
};

/// One publisher CB with `fan` connected subscriber channels of `qos`,
/// ready for send-path measurement.
struct FanOutRig {
  FanOutRig(std::uint32_t fan, net::QosClass qos,
            core::CommunicationBackbone::Config cfg = {}) {
    auto transport = std::make_unique<NullTransport>();
    net = transport.get();
    cb = std::make_unique<core::CommunicationBackbone>(
        "pub", std::move(transport), cfg);
    cb->attach(lp);
    h = cb->publishObjectClass(lp, "bench.flow");
    for (std::uint32_t i = 0; i < fan; ++i)
      net->inject({10 + i, 1},
                  core::encode(core::ChannelConnectionMsg{
                      100 + i, h, 1 + i, "bench.flow", qos}));
    cb->tick(0.0);
  }

  void ackAll(std::uint32_t fan, std::uint64_t seq, double now) {
    for (std::uint32_t i = 0; i < fan; ++i)
      net->inject({10 + i, 1},
                  core::encode(core::WindowAckMsg{1 + i, seq, false}));
    cb->tick(now);
  }

  NullTransport* net = nullptr;
  std::unique_ptr<core::CommunicationBackbone> cb;
  CountingLp lp;
  core::PublicationHandle h = core::kInvalidHandle;
};

/// The armed-but-idle case: a byte budget on the shared window that a
/// healthy (regularly acked) stream never reaches. The delta against
/// bench_reliable's BM_FanOutSendOnlyReliable is the whole price of the
/// wouldOverflow gate plus bytes accounting on the hot path.
void BM_FanOutBudgetedIdle(benchmark::State& state) {
  const std::uint32_t fan = static_cast<std::uint32_t>(state.range(0));
  core::CommunicationBackbone::Config cfg;
  cfg.reliable.sendWindowBytes = 1 << 20;
  FanOutRig rig(fan, net::QosClass::kReliableOrdered, cfg);
  const core::AttributeSet attrs = sampleAttrs();
  double t = 0.0;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    rig.cb->updateAttributeValues(rig.h, attrs, t);
    ++seq;
    if ((seq & 0xFF) == 0) {
      state.PauseTiming();
      rig.ackAll(fan, seq, t);
      state.ResumeTiming();
    }
    t += 1e-6;
  }
  state.counters["fan"] = fan;
  state.counters["evictions"] =
      static_cast<double>(rig.cb->stats().reliable.sendWindowEvictions);
}

/// A window pinned at its byte budget with no acks arriving: every update
/// pays the policy. kEvictOldest drops the oldest frame to admit the new
/// one; kDegradeLatestValue additionally advertises the skip so
/// subscribers resync forward; kBlockPublisher refuses the update
/// outright (the cheapest possible outcome — one wouldOverflow check).
void overflowedUpdates(benchmark::State& state, net::OverflowPolicy policy) {
  core::CommunicationBackbone::Config cfg;
  cfg.reliable.sendWindowBytes = 4096;
  FanOutRig rig(1, net::QosClass::kReliableOrdered, cfg);
  rig.cb->setPublicationOverflowPolicy(rig.h, policy);
  const core::AttributeSet attrs = sampleAttrs();
  double t = 0.0;
  std::uint64_t accepted = 0;
  for (auto _ : state) {
    if (rig.cb->updateAttributeValues(rig.h, attrs, t)) ++accepted;
    t += 1e-6;
  }
  const auto& rs = rig.cb->stats().reliable;
  state.counters["accepted"] = static_cast<double>(accepted);
  state.counters["evictions"] = static_cast<double>(rs.sendWindowEvictions);
  state.counters["blocked"] = static_cast<double>(rs.updatesBlocked);
  state.counters["degradeSkips"] = static_cast<double>(rs.degradeSkipsSent);
}

void BM_OverflowEvictOldest(benchmark::State& state) {
  overflowedUpdates(state, net::OverflowPolicy::kEvictOldest);
}
void BM_OverflowDegradeLatest(benchmark::State& state) {
  overflowedUpdates(state, net::OverflowPolicy::kDegradeLatestValue);
}
void BM_OverflowBlockPublisher(benchmark::State& state) {
  overflowedUpdates(state, net::OverflowPolicy::kBlockPublisher);
}

/// Fan-out with one channel split onto its own retransmit window (every
/// other channel acks, channel 0 never does): each update pays one extra
/// frame copy into the split window on top of the shared store.
void BM_FanOutOneSplitChannel(benchmark::State& state) {
  const std::uint32_t fan = static_cast<std::uint32_t>(state.range(0));
  core::CommunicationBackbone::Config cfg;
  cfg.reliable.sendWindowBytes = 1 << 20;
  cfg.reliable.perChannelWindowSplit = true;
  cfg.reliable.splitLagFrames = 8;
  cfg.reliable.splitSustainSec = 0.01;
  FanOutRig rig(fan, net::QosClass::kReliableOrdered, cfg);
  const core::AttributeSet attrs = sampleAttrs();
  // Warm-up: channel 0 falls splitLagFrames behind while the rest keep
  // acking, then the sustain timer trips and the split happens.
  double t = 0.0;
  for (std::uint64_t seq = 1; seq <= 64; ++seq) {
    rig.cb->updateAttributeValues(rig.h, attrs, t);
    for (std::uint32_t i = 1; i < fan; ++i)
      rig.net->inject({10 + i, 1},
                      core::encode(core::WindowAckMsg{1 + i, seq, false}));
    t += 0.01;
    rig.cb->tick(t);
  }
  std::uint64_t seq = 64;
  for (auto _ : state) {
    rig.cb->updateAttributeValues(rig.h, attrs, t);
    ++seq;
    if ((seq & 0xFF) == 0) {
      // Healthy channels ack; the laggard stays split and its own window
      // evicts under the byte budget exactly as a real starved peer's
      // would.
      state.PauseTiming();
      for (std::uint32_t i = 1; i < fan; ++i)
        rig.net->inject({10 + i, 1},
                        core::encode(core::WindowAckMsg{1 + i, seq, false}));
      rig.cb->tick(t);
      state.ResumeTiming();
    }
    t += 1e-6;
  }
  state.counters["fan"] = fan;
  state.counters["splits"] =
      static_cast<double>(rig.cb->stats().reliable.windowSplits);
}

/// Best-effort thinning fast path: with a peer's send factor at 0.25,
/// three of four updates toward it are skipped before encode-adjacent
/// work for that channel happens. The counter confirms the skip rate.
void BM_ThinnedBestEffortFanOut(benchmark::State& state) {
  const std::uint32_t fan = static_cast<std::uint32_t>(state.range(0));
  FanOutRig rig(fan, net::QosClass::kBestEffort);
  for (std::uint32_t i = 0; i < fan; ++i)
    rig.cb->setPeerSendFactor({10 + i, 1}, 0.25);
  const core::AttributeSet attrs = sampleAttrs();
  double t = 0.0;
  for (auto _ : state) {
    rig.cb->updateAttributeValues(rig.h, attrs, t);
    t += 1e-6;
  }
  state.counters["fan"] = fan;
  state.counters["thinned"] =
      static_cast<double>(rig.cb->stats().updatesThinned);
}

/// Adaptive mid-tick flush: staged container bytes crossing the tick
/// budget trigger an immediate flushBatches instead of waiting for the
/// tick boundary. The loop never ticks, so every flush seen is adaptive.
void BM_AdaptiveMidTickFlush(benchmark::State& state) {
  core::CommunicationBackbone::Config cfg;
  cfg.batch.tickFlushByteBudget = static_cast<std::size_t>(state.range(0));
  FanOutRig rig(4, net::QosClass::kBestEffort, cfg);
  const core::AttributeSet attrs = sampleAttrs();
  double t = 0.0;
  for (auto _ : state) {
    rig.cb->updateAttributeValues(rig.h, attrs, t);
    t += 1e-6;
  }
  state.counters["adaptiveFlushes"] =
      static_cast<double>(rig.cb->stats().batch.adaptiveFlushes);
  state.counters["bytes"] =
      benchmark::Counter(static_cast<double>(rig.net->bytesSent),
                         benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_FanOutBudgetedIdle)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_OverflowEvictOldest);
BENCHMARK(BM_OverflowDegradeLatest);
BENCHMARK(BM_OverflowBlockPublisher);
BENCHMARK(BM_FanOutOneSplitChannel)->Arg(2)->Arg(8);
BENCHMARK(BM_ThinnedBestEffortFanOut)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_AdaptiveMidTickFlush)->Arg(4096)->Arg(65536);
