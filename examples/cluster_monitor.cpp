// Cluster monitor: the telemetry subsystem watching a 4-node COD cluster
// under injected loss and a partition.
//
// Four computers exchange 16 fps state traffic over the Communication
// Backbone. Every computer runs a TelemetryPublisher (1 Hz, delta-encoded
// against keyframes, riding the kBatch coalescer); "alpha" also runs the
// HealthMonitor an instructor station would. The run has four acts:
//
//   1. clean LAN            — all nodes OK, rates live;
//   2. 35 % loss to delta   — LOSS_SPIKE alarm;
//   3. charlie partitioned  — NODE_SILENT alarm;
//   4. everything healed    — NODE_RECOVERED, table back to OK.
//
//   $ ./cluster_monitor

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/publisher.hpp"

using namespace cod;

namespace {

class StateLp final : public core::LogicalProcess {
 public:
  StateLp(std::string cls, double intervalSec)
      : core::LogicalProcess("state"), cls_(std::move(cls)),
        interval_(intervalSec) {}

  void bind(core::CommunicationBackbone& cb) {
    cb.attach(*this);
    pub_ = cb.publishObjectClass(*this, cls_);
  }

  void step(double now) override {
    if (now - last_ < interval_) return;
    last_ = now;
    core::AttributeSet attrs;
    attrs.set("pos", math::Vec3{now, 2.0 * now, 0.5});
    attrs.set("heading", now * 0.1);
    attrs.set("speed", 3.2);
    backbone()->updateAttributeValues(pub_, attrs, now);
  }

 private:
  std::string cls_;
  double interval_;
  double last_ = -1e300;
  core::PublicationHandle pub_ = core::kInvalidHandle;
};

class ViewerLp final : public core::LogicalProcess {
 public:
  explicit ViewerLp(std::string cls)
      : core::LogicalProcess("viewer"), cls_(std::move(cls)) {}

  void bind(core::CommunicationBackbone& cb) {
    cb.attach(*this);
    cb.subscribeObjectClass(*this, cls_);
  }

 private:
  std::string cls_;
};

void show(const char* act, const telemetry::HealthMonitor& monitor) {
  std::printf("\n== %s\n%s%s", act, monitor.renderTable().c_str(),
              monitor.renderAlarms().c_str());
}

}  // namespace

int main() {
  std::printf("COD cluster monitor — 4 nodes, telemetry at 1 Hz\n");

  core::CodCluster::Config ccfg;
  ccfg.seed = 42;
  core::CodCluster cluster(ccfg);
  auto& alpha = cluster.addComputer("alpha");
  auto& bravo = cluster.addComputer("bravo");
  auto& charlie = cluster.addComputer("charlie");
  auto& delta = cluster.addComputer("delta");

  // The working traffic: bravo streams crane state to every other node,
  // charlie streams platform poses back to bravo.
  StateLp crane("demo.crane", 1.0 / 16.0);
  StateLp pose("demo.pose", 1.0 / 16.0);
  ViewerLp v1("demo.crane"), v2("demo.crane"), v3("demo.crane");
  ViewerLp v4("demo.pose");
  crane.bind(bravo);
  pose.bind(charlie);
  v1.bind(alpha);
  v2.bind(charlie);
  v3.bind(delta);
  v4.bind(bravo);

  // Telemetry on every computer; the aggregator beside alpha's viewer.
  telemetry::TelemetryConfig tcfg;  // 1 Hz, keyframe every 10th
  std::vector<std::unique_ptr<telemetry::TelemetryPublisher>> publishers;
  for (auto* cb : {&alpha, &bravo, &charlie, &delta}) {
    publishers.push_back(std::make_unique<telemetry::TelemetryPublisher>(tcfg));
    publishers.back()->bind(*cb);
  }
  telemetry::MonitorConfig mcfg;
  telemetry::HealthMonitor monitor(mcfg);
  monitor.bind(alpha);

  // Act 1 — clean LAN.
  cluster.step(6.0);
  show("act 1: clean LAN (6 s)", monitor);

  // Act 2 — inject 35 % loss on delta's links: its inbound frame loss
  // spikes and the monitor flags it.
  net::SimNetwork& net = cluster.network();
  net::LinkModel lossy = net.defaultLink();
  lossy.lossRate = 0.35;
  net.setLink(1, 3, lossy);  // bravo <-> delta carries the state stream
  cluster.step(6.0);
  show("act 2: 35% loss towards delta", monitor);

  // Act 3 — charlie drops off the LAN entirely.
  for (net::HostId other : {0u, 1u, 3u}) net.setPartitioned(2, other, true);
  cluster.step(6.0);
  show("act 3: charlie partitioned", monitor);

  // Act 4 — heal everything; charlie rediscovers and recovers.
  net.setLink(1, 3, net.defaultLink());
  for (net::HostId other : {0u, 1u, 3u}) net.setPartitioned(2, other, false);
  cluster.step(8.0);
  show("act 4: healed", monitor);

  // A headless example still verifies itself.
  bool sawLoss = false, sawSilent = false, sawRecovered = false;
  for (const telemetry::HealthAlarm& a : monitor.alarms()) {
    sawLoss |= a.kind == telemetry::HealthAlarm::Kind::kLossSpike;
    sawSilent |= a.kind == telemetry::HealthAlarm::Kind::kNodeSilent &&
                 a.node == "charlie";
    sawRecovered |= a.kind == telemetry::HealthAlarm::Kind::kNodeRecovered &&
                    a.node == "charlie";
  }
  const telemetry::NodeHealth* charlieHealth = monitor.node("charlie");
  const bool healthy = monitor.nodeCount() == 4 && sawLoss && sawSilent &&
                       sawRecovered && charlieHealth != nullptr &&
                       !charlieHealth->silent;
  std::printf("\n%s: loss spike %s, charlie silent %s, recovered %s\n",
              healthy ? "OK" : "FAILED", sawLoss ? "seen" : "MISSED",
              sawSilent ? "seen" : "MISSED", sawRecovered ? "seen" : "MISSED");
  return healthy ? 0 : 1;
}
