// Surround-view demo (paper §4): three display computers + the sync server
// render the 3235-polygon training scene, once free-running and once under
// the swap barrier, and report the virtual-time frame rates.
//
//   $ ./surround_view [polygons]

#include <cstdio>
#include <cstdlib>

#include "sim/simulator_app.hpp"

using namespace cod;

namespace {

double measureFps(bool useSync, std::size_t polygons, double seconds) {
  sim::CraneSimulatorApp::Config cfg;
  cfg.useSyncServer = useSync;
  cfg.targetPolygons = polygons;
  cfg.fbWidth = 160;
  cfg.fbHeight = 120;
  sim::CraneSimulatorApp app(cfg);
  app.waitUntilWired(10.0);
  const auto before = app.display(0).framesRendered();
  const double t0 = app.now();
  app.step(seconds);
  const auto frames = app.display(0).framesRendered() - before;
  return static_cast<double>(frames) / (app.now() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t polygons =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 3235;

  std::printf("Surround view: 3 channels x 40 deg, %zu polygons\n", polygons);

  const double fpsSync = measureFps(true, polygons, 10.0);
  const double fpsFree = measureFps(false, polygons, 10.0);

  std::printf("  with sync server  : %5.1f fps (paper: 16 fps)\n", fpsSync);
  std::printf("  free-running      : %5.1f fps\n", fpsFree);
  std::printf("  sync overhead     : %4.1f%%\n",
              100.0 * (1.0 - fpsSync / fpsFree));

  // Dump all three channels of one synced frame as PPM screenshots.
  sim::CraneSimulatorApp::Config cfg;
  cfg.targetPolygons = polygons;
  cfg.fbWidth = 320;
  cfg.fbHeight = 240;
  sim::CraneSimulatorApp app(cfg);
  app.waitUntilWired(10.0);
  app.step(1.0);
  const char* names[3] = {"surround_left.ppm", "surround_center.ppm",
                          "surround_right.ppm"};
  for (int i = 0; i < 3; ++i) {
    app.display(i).framebuffer().writePpm(names[i]);
    std::printf("  wrote %s\n", names[i]);
  }
  return 0;
}
