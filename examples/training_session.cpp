// Full training session: the paper's eight-computer crane simulator runs
// the licensure exam (Figs. 8 & 9) end to end with a scripted trainee, and
// prints the instructor's Status window (Fig. 5) as the exam progresses.
//
//   $ ./training_session [careful|sloppy]

#include <cstdio>
#include <cstring>

#include "sim/simulator_app.hpp"

using namespace cod;

int main(int argc, char** argv) {
  const bool sloppy = argc > 1 && std::strcmp(argv[1], "sloppy") == 0;

  sim::CraneSimulatorApp::Config cfg;
  cfg.operatorProfile = sloppy ? scenario::OperatorProfile::sloppy()
                               : scenario::OperatorProfile::careful();
  sim::CraneSimulatorApp app(cfg);

  std::printf("Mobile crane simulator — %d computers on the COD\n",
              app.displayCount() + 5);
  std::printf("Trainee profile: %s\n\n", sloppy ? "sloppy" : "careful");

  app.waitUntilWired(10.0);

  // Step the exam, printing the instructor windows every 60 virtual s.
  double nextPrint = 0.0;
  while (!app.scenario().finished() && app.now() < 900.0) {
    app.step(1.0);
    if (app.now() >= nextPrint) {
      nextPrint = app.now() + 60.0;
      std::printf("t=%.0fs\n%s\n", app.now(),
                  app.instructor().statusWindow().renderText().c_str());
    }
  }

  const scenario::ScoreSheet& sheet = app.scenario().exam().score();
  std::printf("==== FINAL SCORE SHEET ====\n");
  std::printf("result : %s\n", scenario::phaseName(sheet.phase));
  std::printf("score  : %.1f\n", sheet.total);
  std::printf("elapsed: %.1f s (virtual)\n", sheet.elapsedSec);
  for (const scenario::Deduction& d : sheet.deductions)
    std::printf("  -%.1f  t=%6.1fs  %s\n", d.points, d.timeSec,
                d.reason.c_str());
  if (sheet.deductions.empty()) std::printf("  (no deductions)\n");

  std::printf("\nDisplays rendered %llu frames each; sync server issued %llu "
              "swaps; audio played %llu collision sounds\n",
              static_cast<unsigned long long>(app.display(0).framesRendered()),
              static_cast<unsigned long long>(app.syncServer().swapsIssued()),
              static_cast<unsigned long long>(
                  app.audio().collisionSoundsPlayed()));
  // A PPM screenshot of the centre channel for the curious.
  app.display(1).framebuffer().writePpm("training_center_channel.ppm");
  std::printf("centre-channel screenshot: training_center_channel.ppm\n");
  return sheet.finished() ? 0 : 1;
}
