// Windy-day lift: the same licensure exam under increasing site wind.
// Wind drags the hanging cargo off the vertical, making the bars harder to
// clear, and above the work-stop threshold the HIGH WIND alarm costs
// points — training content the 2001 system's dynamics module motivates
// ("wind speed" in the paper's §1 list of simulated quantities).
//
//   $ ./windy_lift

#include <cstdio>

#include "sim/simulator_app.hpp"

using namespace cod;

namespace {

struct Outcome {
  double score = 0.0;
  scenario::ExamPhase phase = scenario::ExamPhase::kFailed;
  std::uint64_t barHits = 0;
  bool highWindAlarm = false;
  double meanSwingDeg = 0.0;  // while carrying the cargo
};

Outcome runAtWind(double windMps) {
  sim::CraneSimulatorApp::Config cfg;
  cfg.course = scenario::compactCourse();
  cfg.fbWidth = 32;
  cfg.fbHeight = 24;
  cfg.wind.meanSpeedMps = windMps;
  cfg.wind.meanDirectionRad = math::deg2rad(45.0);
  cfg.cargoDragAreaM2 = 8.0;  // sheet-like load: a wall panel, not a block
  sim::CraneSimulatorApp app(cfg);
  app.waitUntilWired(10.0);

  Outcome out;
  double swingSum = 0.0;
  int swingSamples = 0;
  while (!app.scenario().finished() && app.now() < 500.0) {
    app.step(0.5);
    if (app.dynamics().cargoAttached()) {
      swingSum += math::rad2deg(app.dynamics().pendulum().swingAngle());
      ++swingSamples;
    }
    out.highWindAlarm =
        out.highWindAlarm ||
        app.instructor().statusWindow().alarms.active(crane::Alarm::kHighWind);
  }
  if (swingSamples > 0) out.meanSwingDeg = swingSum / swingSamples;
  out.score = app.scenario().exam().score().total;
  out.phase = app.scenario().exam().score().phase;
  out.barHits = app.dynamics().barHitsEmitted();
  return out;
}

}  // namespace

int main() {
  std::printf("Licensure exam vs site wind (careful trainee)\n\n");
  std::printf("%10s %8s %10s %9s %10s %12s\n", "wind(m/s)", "score", "result",
              "barHits", "meanSwing", "HIGH WIND");
  for (const double wind : {0.0, 5.0, 9.0, 12.0}) {
    const Outcome o = runAtWind(wind);
    std::printf("%10.0f %8.1f %10s %9llu %9.1f%1s %12s\n", wind, o.score,
                scenario::phaseName(o.phase),
                static_cast<unsigned long long>(o.barHits), o.meanSwingDeg,
                "", o.highWindAlarm ? "yes" : "no");
  }
  std::printf("\nshape: swing grows with wind; above the 10 m/s work-stop\n"
              "threshold the HIGH WIND lamp lights and costs points\n");
  return 0;
}
