// Quickstart: two Logical Processes on two computers of a COD cluster,
// wired transparently by the Communication Backbone.
//
// A "sensor" LP publishes the object class "demo.telemetry"; a "monitor" LP
// on another computer subscribes to it. Neither knows the other exists —
// the CBs discover each other with the broadcast/acknowledge protocol and
// build a virtual channel (paper §2).
//
//   $ ./quickstart

#include <cstdio>

#include "core/cluster.hpp"
#include "core/value.hpp"

using namespace cod;

namespace {

/// Publishes a counter + sine wave every 50 ms of virtual time.
class SensorLp final : public core::LogicalProcess {
 public:
  SensorLp() : core::LogicalProcess("sensor") {}

  void bind(core::CommunicationBackbone& cb) {
    cb.attach(*this);
    pub_ = cb.publishObjectClass(*this, "demo.telemetry");
  }

  void step(double now) override {
    if (now < next_) return;
    next_ = now + 0.05;
    core::AttributeSet attrs;
    attrs.set("count", static_cast<std::int64_t>(count_++));
    attrs.set("wave", std::sin(now));
    backbone()->updateAttributeValues(pub_, attrs, now);
  }

 private:
  core::PublicationHandle pub_ = core::kInvalidHandle;
  double next_ = 0.0;
  std::int64_t count_ = 0;
};

/// Receives telemetry via the push model.
class MonitorLp final : public core::LogicalProcess {
 public:
  MonitorLp() : core::LogicalProcess("monitor") {}

  void bind(core::CommunicationBackbone& cb) {
    cb.attach(*this);
    sub_ = cb.subscribeObjectClass(*this, "demo.telemetry");
  }

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet& attrs,
                              double timestamp) override {
    ++received_;
    if (received_ % 20 == 1) {
      std::printf("  [monitor] %s @t=%.2f  count=%lld wave=%+.3f\n",
                  className.c_str(), timestamp,
                  static_cast<long long>(attrs.getInt("count")),
                  attrs.getDouble("wave"));
    }
  }

  std::uint64_t received() const { return received_; }

 private:
  core::SubscriptionHandle sub_ = core::kInvalidHandle;
  std::uint64_t received_ = 0;
};

}  // namespace

int main() {
  std::printf("COD quickstart: 2 computers, 2 LPs, 1 virtual channel\n");

  core::CodCluster cluster;
  auto& cbA = cluster.addComputer("sensor-pc");
  auto& cbB = cluster.addComputer("monitor-pc");

  SensorLp sensor;
  sensor.bind(cbA);
  MonitorLp monitor;
  monitor.bind(cbB);

  // Run five virtual seconds; the CBs discover each other in the first
  // broadcast interval and the updates flow thereafter.
  cluster.step(5.0);

  std::printf("monitor received %llu updates\n",
              static_cast<unsigned long long>(monitor.received()));
  std::printf("sensor-pc CB: broadcasts=%llu channelsOut=%llu updatesSent=%llu\n",
              static_cast<unsigned long long>(cbA.stats().broadcastsSent),
              static_cast<unsigned long long>(cbA.stats().channelsEstablishedOut),
              static_cast<unsigned long long>(cbA.stats().updatesSent));
  std::printf("monitor-pc CB: channelsIn=%llu updatesDelivered=%llu\n",
              static_cast<unsigned long long>(cbB.stats().channelsEstablishedIn),
              static_cast<unsigned long long>(cbB.stats().updatesDelivered));
  return monitor.received() > 0 ? 0 : 1;
}
