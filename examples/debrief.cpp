// Debrief: record a training session, save the journal, then replay it
// into a cluster that contains only the instructor monitor — no dynamics,
// no trainee. The monitor cannot tell the difference: the replayer
// publishes the same object classes the dynamics module did (§2.1
// transparency).
//
//   $ ./debrief

#include <cstdio>

#include "sim/recorder.hpp"
#include "sim/simulator_app.hpp"

using namespace cod;

int main() {
  const char* journalPath = "training_session.codr";

  // ---- 1. Live session with a recorder riding on the instructor's box.
  std::printf("recording a live session...\n");
  sim::CraneSimulatorApp::Config cfg;
  cfg.course = scenario::compactCourse();
  cfg.fbWidth = 32;
  cfg.fbHeight = 24;
  sim::CraneSimulatorApp app(cfg);
  sim::SessionRecorder recorder(
      {sim::kClassCraneState, sim::kClassScenarioStatus,
       sim::kClassScenarioEvents});
  recorder.bind(app.cluster().cb(7));  // instructor computer
  app.waitUntilWired(10.0);
  app.runExam(400.0);
  const scenario::ScoreSheet& live = app.scenario().exam().score();
  std::printf("  live result: %s, score %.1f, %.1fs, %zu updates journaled\n",
              scenario::phaseName(live.phase), live.total, live.elapsedSec,
              recorder.recording().size());

  sim::Recording journal = recorder.takeRecording();
  if (!journal.save(journalPath)) {
    std::printf("  could not save %s\n", journalPath);
    return 1;
  }
  std::printf("  journal saved to %s (%.1f s of telemetry)\n\n", journalPath,
              journal.durationSec());

  // ---- 2. Debrief: replay into an instructor-only cluster at 8x speed.
  std::printf("replaying at 8x into an instructor-only cluster...\n");
  const auto loaded = sim::Recording::load(journalPath);
  if (!loaded) {
    std::printf("  could not load %s\n", journalPath);
    return 1;
  }
  core::CodCluster debrief;
  auto& cbReplay = debrief.addComputer("replay-station");
  auto& cbMonitor = debrief.addComputer("instructor");
  sim::SessionReplayer replayer(*loaded, /*timeScale=*/8.0);
  replayer.bind(cbReplay);
  sim::InstructorModule monitor;
  monitor.bind(cbMonitor);

  double nextPrint = 0.0;
  while (!replayer.finished() && debrief.now() < 120.0) {
    debrief.step(0.5);
    if (replayer.replayClockSec() >= nextPrint) {
      nextPrint += 30.0;
      std::printf("journal t=%.0fs:\n%s\n", replayer.replayClockSec(),
                  monitor.statusWindow().renderText().c_str());
    }
  }
  std::printf("replay done: monitor saw %llu state updates (live session "
              "produced the journal's %zu records)\n",
              static_cast<unsigned long long>(monitor.stateUpdatesSeen()),
              loaded->size());
  return 0;
}
