// Debrief: record a training session, save the journal, then replay it
// into a cluster that contains only the instructor monitor — no dynamics,
// no trainee. The monitor cannot tell the difference: the replayer
// publishes the same object classes the dynamics module did (§2.1
// transparency).
//
// The debrief LAN is deliberately lossy (25% drop + jitter): replay
// channels are kReliableOrdered, so every journaled record still reaches
// the monitor — the NACK/retransmit layer earns its keep where newest-wins
// would silently thin the evidence.
//
//   $ ./debrief

#include <cstdio>

#include "sim/recorder.hpp"
#include "sim/simulator_app.hpp"

using namespace cod;

int main() {
  const char* journalPath = "training_session.codr";

  // ---- 1. Live session with a recorder riding on the instructor's box.
  std::printf("recording a live session...\n");
  sim::CraneSimulatorApp::Config cfg;
  cfg.course = scenario::compactCourse();
  cfg.fbWidth = 32;
  cfg.fbHeight = 24;
  sim::CraneSimulatorApp app(cfg);
  sim::SessionRecorder recorder(
      {sim::kClassCraneState, sim::kClassScenarioStatus,
       sim::kClassScenarioEvents});
  recorder.bind(app.cluster().cb(7));  // instructor computer
  app.waitUntilWired(10.0);
  app.runExam(400.0);
  const scenario::ScoreSheet& live = app.scenario().exam().score();
  std::printf("  live result: %s, score %.1f, %.1fs, %zu updates journaled\n",
              scenario::phaseName(live.phase), live.total, live.elapsedSec,
              recorder.recording().size());

  sim::Recording journal = recorder.takeRecording();
  if (!journal.save(journalPath)) {
    std::printf("  could not save %s\n", journalPath);
    return 1;
  }
  std::printf("  journal saved to %s (%.1f s of telemetry)\n\n", journalPath,
              journal.durationSec());

  // ---- 2. Debrief: replay into an instructor-only cluster at 8x speed,
  // over a deliberately lossy LAN.
  std::printf("replaying at 8x into an instructor-only cluster "
              "(25%% loss, 0.5 ms jitter)...\n");
  const auto loaded = sim::Recording::load(journalPath);
  if (!loaded) {
    std::printf("  could not load %s\n", journalPath);
    return 1;
  }
  core::CodCluster::Config lossyCfg;
  lossyCfg.link.lossRate = 0.25;
  lossyCfg.link.jitterSec = 500e-6;
  core::CodCluster debrief(lossyCfg);
  auto& cbReplay = debrief.addComputer("replay-station");
  auto& cbMonitor = debrief.addComputer("instructor");
  sim::SessionReplayer replayer(*loaded, /*timeScale=*/8.0);
  replayer.bind(cbReplay);
  sim::InstructorModule monitor;
  monitor.bind(cbMonitor);

  double nextPrint = 0.0;
  while (!replayer.finished() && debrief.now() < 120.0) {
    debrief.step(0.5);
    if (replayer.replayClockSec() >= nextPrint) {
      nextPrint += 30.0;
      std::printf("journal t=%.0fs:\n%s\n", replayer.replayClockSec(),
                  monitor.statusWindow().renderText().c_str());
    }
  }
  // Let the retransmit layer drain the last losses before judging.
  debrief.step(2.0);

  const core::CbStats& pubStats = cbReplay.stats();
  const core::CbStats& subStats = cbMonitor.stats();
  const std::uint64_t published = replayer.published();
  // How many journal records the monitor's subscriptions cover.
  std::uint64_t expectState = 0, expectStatus = 0;
  for (const sim::RecordedUpdate& r : loaded->records()) {
    if (r.className == sim::kClassCraneState) ++expectState;
    if (r.className == sim::kClassScenarioStatus) ++expectStatus;
  }
  std::printf(
      "replay done over the lossy LAN:\n"
      "  journal records replayed : %llu of %zu\n"
      "  updates delivered        : %llu (monitor: %llu state, %llu status)\n"
      "  LAN drops / retransmits  : %llu dropped, %llu frames re-sent,\n"
      "                             %llu NACKs, %llu gaps healed\n"
      "  score stream             : revision %lld, %lld deductions, "
      "%llu regressions\n",
      static_cast<unsigned long long>(published), loaded->size(),
      static_cast<unsigned long long>(subStats.updatesDelivered),
      static_cast<unsigned long long>(monitor.stateUpdatesSeen()),
      static_cast<unsigned long long>(monitor.statusUpdatesSeen()),
      static_cast<unsigned long long>(debrief.network().stats().packetsDropped),
      static_cast<unsigned long long>(pubStats.reliable.retransmitsSent),
      static_cast<unsigned long long>(subStats.reliable.nacksSent),
      static_cast<unsigned long long>(subStats.reliable.gapsHealed),
      static_cast<long long>(monitor.lastScoreRevision()),
      static_cast<long long>(monitor.deductionsSeen()),
      static_cast<unsigned long long>(monitor.revisionRegressions()));

  // Lossless despite the loss model: every journaled record the monitor
  // subscribes to must have arrived, with the score revision monotone.
  if (!replayer.finished() || monitor.stateUpdatesSeen() != expectState ||
      monitor.statusUpdatesSeen() != expectStatus ||
      monitor.revisionRegressions() != 0) {
    std::printf("FAILED: expected %llu state / %llu status records, monitor "
                "saw %llu / %llu (replayer finished: %d)\n",
                static_cast<unsigned long long>(expectState),
                static_cast<unsigned long long>(expectStatus),
                static_cast<unsigned long long>(monitor.stateUpdatesSeen()),
                static_cast<unsigned long long>(monitor.statusUpdatesSeen()),
                replayer.finished() ? 1 : 0);
    return 1;
  }
  std::printf("lossless: the debrief saw the complete journal despite the "
              "lossy LAN\n");
  return 0;
}
