// Dynamic join (paper §2.3): "an LP (an extra display, for example) can be
// dynamically added to the system without restarting the entire system."
//
// The simulator runs with its three displays; two virtual minutes in, a
// fourth display computer is racked in, its CB discovers the dynamics
// module's publication, and frames start flowing to it — nothing else is
// restarted.
//
//   $ ./dynamic_join

#include <cstdio>

#include "sim/display_module.hpp"
#include "sim/simulator_app.hpp"

using namespace cod;

int main() {
  sim::CraneSimulatorApp::Config cfg;
  cfg.useSyncServer = false;  // the newcomer free-runs; sync count is fixed
  sim::CraneSimulatorApp app(cfg);
  app.waitUntilWired(10.0);

  std::printf("running with %d displays...\n", app.displayCount());
  app.step(120.0);
  std::printf("t=%.0fs: display-0 has rendered %llu frames\n", app.now(),
              static_cast<unsigned long long>(
                  app.display(0).framesRendered()));

  // Hot-plug the extra display: a new computer joins the running cluster.
  std::printf("\n>> racking in a 4th display computer at t=%.0fs\n",
              app.now());
  auto& cb = app.cluster().addComputer("display-extra");
  sim::VisualDisplayModule::Config dc;
  dc.channel = 1;  // another centre view (an observer monitor)
  dc.useSyncServer = false;
  dc.fbWidth = cfg.fbWidth;
  dc.fbHeight = cfg.fbHeight;
  sim::VisualDisplayModule extra(app.config().course, dc);
  extra.bind(cb);

  const double joinedAt = app.now();
  app.step(30.0);

  std::printf("t=%.0fs: extra display rendered %llu frames in %.0fs since "
              "joining (no restart of the other %zu computers)\n",
              app.now(),
              static_cast<unsigned long long>(extra.framesRendered()),
              app.now() - joinedAt, app.cluster().size() - 1);
  std::printf("extra display CB: broadcasts=%llu channelsIn=%llu\n",
              static_cast<unsigned long long>(cb.stats().broadcastsSent),
              static_cast<unsigned long long>(
                  cb.stats().channelsEstablishedIn));
  return extra.framesRendered() > 0 ? 0 : 1;
}
