// Rated-capacity (load) chart.
//
// Real mobile cranes ship a chart: maximum load as a function of boom
// length and working radius, separately for "on outriggers" and "on
// rubber" (driving configuration). This module provides a bilinear
// interpolated chart the safety envelope consults instead of a single
// rated-moment constant, plus the crane's outrigger state, which the
// exam's lift phase requires to be deployed.
#pragma once

#include <vector>

#include "math/vec.hpp"

namespace cod::crane {

/// Capacity table: rows indexed by boom length, columns by working radius.
class LoadChart {
 public:
  /// `boomLengths` (m) and `radii` (m) must be strictly increasing;
  /// `capacityKg[i][j]` is the rating at boomLengths[i], radii[j].
  LoadChart(std::vector<double> boomLengths, std::vector<double> radii,
            std::vector<std::vector<double>> capacityKg);

  /// A typical 25 t rough-terrain crane chart (on outriggers).
  static LoadChart typical25t();

  /// Bilinear-interpolated rating; clamped at the chart edges, and 0 when
  /// the radius exceeds the chart (outside the working envelope).
  double capacityKg(double boomLengthM, double radiusM) const;

  /// Utilisation = load / capacity (>= 1 means overload). Infinite when
  /// outside the envelope with a non-zero load.
  double utilisation(double loadKg, double boomLengthM, double radiusM) const;

  double maxRadius() const { return radii_.back(); }

 private:
  std::vector<double> lengths_;
  std::vector<double> radii_;
  std::vector<std::vector<double>> cap_;
};

/// Outrigger beams: extend + set before lifting. Stowed outriggers derate
/// the chart heavily and let the carrier sway; deployed outriggers lock
/// the carrier level and firm.
class Outriggers {
 public:
  enum class State { kStowed, kDeploying, kDeployed, kStowing };

  /// Full deploy/stow cycle duration, seconds.
  explicit Outriggers(double cycleSec = 8.0) : cycleSec_(cycleSec) {}

  void requestDeploy() { target_ = true; }
  void requestStow() { target_ = false; }
  void step(double dt);

  State state() const;
  /// 0 = stowed, 1 = set on all four pads.
  double progress() const { return progress_; }
  bool deployed() const { return progress_ >= 1.0; }
  bool stowed() const { return progress_ <= 0.0; }
  /// Chart derating factor when lifting "on rubber" (stowed): a real crane
  /// keeps only a fraction of its on-outrigger rating.
  double capacityFactor() const { return deployed() ? 1.0 : 0.25; }

 private:
  double cycleSec_;
  double progress_ = 0.0;
  bool target_ = false;
};

}  // namespace cod::crane
