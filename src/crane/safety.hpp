// Safety envelope and alarms (§3.3: "alarm signals ... signal the
// misconduct of the operator", e.g. "if the derrick boom overshoots the
// safety zone, the second alarm will be lighted").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crane/kinematics.hpp"
#include "crane/load_chart.hpp"
#include "crane/state.hpp"

namespace cod::crane {

/// Alarm lamps on the instructor's status window.
enum class Alarm : std::uint8_t {
  kBoomOvershoot = 0,   // luff angle outside the safety zone
  kSlewZone = 1,        // superstructure slewed into the forbidden arc
  kOverload = 2,        // load moment above the rated chart
  kTipover = 3,         // carrier rollover index too high
  kCableOverrun = 4,    // cable at the limit (two-block / slack)
  kOverspeed = 5,       // driving too fast with a suspended load
  kOutriggers = 6,      // lifting without the outriggers set
  kHighWind = 7,        // wind above the work-stop threshold
};

inline constexpr std::size_t kAlarmCount = 8;

const char* alarmName(Alarm a);

/// Bit set of active alarms, cheap to ship in a CB attribute.
class AlarmSet {
 public:
  void raise(Alarm a) { bits_ |= (1u << static_cast<unsigned>(a)); }
  bool active(Alarm a) const {
    return (bits_ & (1u << static_cast<unsigned>(a))) != 0;
  }
  bool any() const { return bits_ != 0; }
  std::size_t count() const;
  std::uint32_t bits() const { return bits_; }
  static AlarmSet fromBits(std::uint32_t bits);
  std::vector<Alarm> list() const;

  bool operator==(const AlarmSet&) const = default;

 private:
  std::uint32_t bits_ = 0;
};

/// Envelope limits + the rated load-moment chart.
struct SafetyLimits {
  double boomPitchSafeMinRad = math::deg2rad(15.0);
  double boomPitchSafeMaxRad = math::deg2rad(78.0);
  /// Forbidden slew arc (e.g. over the cab), symmetric around `slewZoneCenter`.
  double slewZoneCenterRad = math::kPi;  // directly backwards is allowed...
  double slewZoneHalfWidthRad = 0.0;     // ...by default no forbidden arc
  /// Rated moment: maximum load [kg] * working radius [m]. Used only when
  /// no load chart is installed.
  double ratedMomentKgM = 90000.0;  // e.g. 9 t at 10 m
  double rolloverWarnIndex = 0.55;
  double maxSpeedWithLoadMps = 2.0;
  double cableSlackMarginM = 0.2;
  /// Work-stop wind speed (typical site rule: ~10 m/s for crane work).
  double windStopMps = 10.0;
};

/// Evaluates the alarm lamps for a crane state.
class SafetyEnvelope {
 public:
  explicit SafetyEnvelope(SafetyLimits limits = {});

  const SafetyLimits& limits() const { return limits_; }

  /// Install a rated-capacity chart; assessments then use chart
  /// utilisation (with the outrigger derating) instead of the flat moment.
  void setLoadChart(LoadChart chart) { chart_ = std::move(chart); }
  bool hasLoadChart() const { return chart_.has_value(); }

  struct Assessment {
    AlarmSet alarms;
    double loadMomentKgM = 0.0;
    /// Load relative to the rating (chart or flat moment); >1 is overload.
    double momentUtilisation = 0.0;
    double rolloverIndex = 0.0;
  };

  /// Context beyond the crane state the envelope needs.
  struct Environment {
    double rolloverIndex = 0.0;
    double windSpeedMps = 0.0;
    bool outriggersDeployed = true;
  };

  Assessment assess(const CraneState& s, const CraneKinematics& kin,
                    const Environment& env) const;
  /// Convenience for callers without wind/outrigger context.
  Assessment assess(const CraneState& s, const CraneKinematics& kin,
                    double rolloverIndex) const;

 private:
  SafetyLimits limits_;
  std::optional<LoadChart> chart_;
};

}  // namespace cod::crane
