// Forward kinematics of the crane superstructure.
#pragma once

#include "crane/state.hpp"
#include "math/mat.hpp"

namespace cod::crane {

/// Fixed geometry of the crane body.
struct CraneGeometry {
  /// Boom pivot relative to the carrier origin (behind the cab, above deck).
  math::Vec3 boomPivotOffset{-1.0, 0.0, 2.2};
  /// Operator cab eye point relative to the carrier origin.
  math::Vec3 cabEyeOffset{2.2, 0.8, 2.6};
};

class CraneKinematics {
 public:
  explicit CraneKinematics(CraneGeometry geom = {});

  const CraneGeometry& geometry() const { return geom_; }

  /// Carrier-body → world rigid transform.
  math::Mat4 carrierTransform(const CraneState& s) const;

  /// World-space boom pivot.
  math::Vec3 boomPivot(const CraneState& s) const;

  /// World-space boom tip (pivot + slewed/luffed boom of current length).
  math::Vec3 boomTip(const CraneState& s) const;

  /// World-space hook rest position (cable straight down from the tip).
  math::Vec3 hookRestPosition(const CraneState& s) const;

  /// Horizontal working radius: distance from the slew axis to the point
  /// under the boom tip. This is the lever arm of the load moment.
  double workingRadius(const CraneState& s) const;

  /// Eye point for the surround-view rig.
  math::Vec3 cabEye(const CraneState& s) const;

 private:
  CraneGeometry geom_;
};

}  // namespace cod::crane
