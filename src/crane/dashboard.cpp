#include "crane/dashboard.hpp"

#include <cmath>

namespace cod::crane {

const char* meterName(Meter m) {
  switch (m) {
    case Meter::kEngineRpm: return "ENGINE RPM";
    case Meter::kSpeed: return "SPEED";
    case Meter::kFuel: return "FUEL";
    case Meter::kHydraulicPressure: return "HYD PRESSURE";
    case Meter::kLoadMomentPct: return "LOAD MOMENT %";
    case Meter::kCableLength: return "CABLE LENGTH";
  }
  return "?";
}

Dashboard::Dashboard() = default;

void Dashboard::updateInstruments(const CraneState& s, const AlarmSet& alarms,
                                  double momentUtilisation) {
  engineOn_ = s.engineOn;
  values_[static_cast<std::size_t>(Meter::kEngineRpm)] = s.engineRpm;
  values_[static_cast<std::size_t>(Meter::kSpeed)] =
      std::abs(s.carrierSpeedMps) * 3.6;  // km/h needle
  values_[static_cast<std::size_t>(Meter::kFuel)] = fuel01_ * 100.0;
  // Hydraulic pressure rises with actuator demand.
  const double demand =
      std::abs(controls_.joystickSlew) + std::abs(controls_.joystickLuff) +
      std::abs(controls_.joystickTelescope) + std::abs(controls_.joystickHoist);
  values_[static_cast<std::size_t>(Meter::kHydraulicPressure)] =
      s.engineOn ? 60.0 + 35.0 * math::clamp(demand, 0.0, 1.0) : 0.0;
  values_[static_cast<std::size_t>(Meter::kLoadMomentPct)] =
      momentUtilisation * 100.0;
  values_[static_cast<std::size_t>(Meter::kCableLength)] = s.cableLengthM;
  alarms_ = alarms;
}

double Dashboard::meterValue(Meter m) const {
  return values_[static_cast<std::size_t>(m)];
}

double Dashboard::displayedValue(Meter m) const {
  const std::size_t i = static_cast<std::size_t>(m);
  switch (faults_[i]) {
    case MeterFault::kNone: return values_[i];
    case MeterFault::kStuck: return frozen_[i];
    case MeterFault::kDead: return 0.0;
  }
  return values_[i];
}

void Dashboard::injectFault(Meter m, MeterFault f) {
  const std::size_t i = static_cast<std::size_t>(m);
  if (f == MeterFault::kStuck) frozen_[i] = values_[i];
  faults_[i] = f;
}

MeterFault Dashboard::fault(Meter m) const {
  return faults_[static_cast<std::size_t>(m)];
}

void Dashboard::consumeFuel(double dt) {
  if (!engineOn_) return;
  // Roughly 2.5 hours of full-load running on one tank.
  fuel01_ = math::clamp(fuel01_ - dt / 9000.0, 0.0, 1.0);
}

}  // namespace cod::crane
