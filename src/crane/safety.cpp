#include "crane/safety.hpp"

#include <bit>

namespace cod::crane {

const char* alarmName(Alarm a) {
  switch (a) {
    case Alarm::kBoomOvershoot: return "BOOM OVERSHOOT";
    case Alarm::kSlewZone: return "SLEW ZONE";
    case Alarm::kOverload: return "OVERLOAD";
    case Alarm::kTipover: return "TIP-OVER";
    case Alarm::kCableOverrun: return "CABLE OVERRUN";
    case Alarm::kOverspeed: return "OVERSPEED";
    case Alarm::kOutriggers: return "OUTRIGGERS";
    case Alarm::kHighWind: return "HIGH WIND";
  }
  return "?";
}

std::size_t AlarmSet::count() const {
  return static_cast<std::size_t>(std::popcount(bits_));
}

AlarmSet AlarmSet::fromBits(std::uint32_t bits) {
  AlarmSet s;
  s.bits_ = bits & ((1u << kAlarmCount) - 1);
  return s;
}

std::vector<Alarm> AlarmSet::list() const {
  std::vector<Alarm> out;
  for (std::size_t i = 0; i < kAlarmCount; ++i) {
    const Alarm a = static_cast<Alarm>(i);
    if (active(a)) out.push_back(a);
  }
  return out;
}

SafetyEnvelope::SafetyEnvelope(SafetyLimits limits) : limits_(limits) {}

SafetyEnvelope::Assessment SafetyEnvelope::assess(
    const CraneState& s, const CraneKinematics& kin,
    double rolloverIndex) const {
  Environment env;
  env.rolloverIndex = rolloverIndex;
  return assess(s, kin, env);
}

SafetyEnvelope::Assessment SafetyEnvelope::assess(
    const CraneState& s, const CraneKinematics& kin,
    const Environment& env) const {
  Assessment a;
  a.rolloverIndex = env.rolloverIndex;

  if (s.boomPitchRad < limits_.boomPitchSafeMinRad ||
      s.boomPitchRad > limits_.boomPitchSafeMaxRad) {
    a.alarms.raise(Alarm::kBoomOvershoot);
  }
  if (limits_.slewZoneHalfWidthRad > 0.0) {
    const double off =
        std::abs(math::angleDiff(s.slewAngleRad, limits_.slewZoneCenterRad));
    if (off <= limits_.slewZoneHalfWidthRad) a.alarms.raise(Alarm::kSlewZone);
  }
  a.loadMomentKgM = s.hookLoadKg * kin.workingRadius(s);
  if (chart_) {
    // Chart rating, derated when lifting on rubber (outriggers stowed).
    const double factor = env.outriggersDeployed ? 1.0 : 0.25;
    const double cap =
        factor * chart_->capacityKg(s.boomLengthM, kin.workingRadius(s));
    a.momentUtilisation = cap > 0.0 ? s.hookLoadKg / cap
                          : (s.hookLoadKg > 0.0 ? 2.0 : 0.0);
  } else {
    a.momentUtilisation =
        limits_.ratedMomentKgM > 0 ? a.loadMomentKgM / limits_.ratedMomentKgM
                                   : 0.0;
  }
  if (a.momentUtilisation > 1.0) a.alarms.raise(Alarm::kOverload);
  if (env.rolloverIndex > limits_.rolloverWarnIndex)
    a.alarms.raise(Alarm::kTipover);
  if (s.cargoAttached && !env.outriggersDeployed)
    a.alarms.raise(Alarm::kOutriggers);
  if (env.windSpeedMps > limits_.windStopMps)
    a.alarms.raise(Alarm::kHighWind);
  if (s.cargoAttached &&
      std::abs(s.carrierSpeedMps) > limits_.maxSpeedWithLoadMps) {
    a.alarms.raise(Alarm::kOverspeed);
  }
  // Cable near its winch limits (two-blocking at the top, slack at bottom).
  // The CraneLimits clamp the state; flag when within the margin.
  if (s.cableLengthM <= limits_.cableSlackMarginM + 0.5)
    a.alarms.raise(Alarm::kCableOverrun);
  return a;
}

}  // namespace cod::crane
