#include "crane/dynamics.hpp"

#include <algorithm>
#include <cmath>

namespace cod::crane {

CraneJointDynamics::CraneJointDynamics(CraneLimits limits) : limits_(limits) {}

namespace {

/// First-order approach of `rate` toward `target` with time constant tau.
double relax(double rate, double target, double tau, double dt) {
  const double alpha = 1.0 - std::exp(-dt / tau);
  return rate + alpha * (target - rate);
}

/// Integrate a joint with range clamping; zero the rate at the stops.
void integrateClamped(double& pos, double& rate, double lo, double hi,
                      double dt) {
  pos += rate * dt;
  if (pos <= lo) {
    pos = lo;
    rate = std::max(0.0, rate);
  } else if (pos >= hi) {
    pos = hi;
    rate = std::min(0.0, rate);
  }
}

}  // namespace

void CraneJointDynamics::step(CraneState& s, const CraneControls& c,
                              double dt) const {
  if (dt <= 0.0) return;
  // Hydraulic actuators only answer when the engine runs.
  const double power = s.engineOn ? 1.0 : 0.0;
  const double tau = limits_.actuatorTau;

  const double slewTarget =
      power * math::clamp(c.joystickSlew, -1.0, 1.0) * limits_.maxSlewRateRad;
  s.slewRateRad = relax(s.slewRateRad, slewTarget, tau, dt);
  s.slewAngleRad = math::wrapAngle(s.slewAngleRad + s.slewRateRad * dt);

  const double luffTarget =
      power * math::clamp(c.joystickLuff, -1.0, 1.0) * limits_.maxLuffRateRad;
  s.boomPitchRate = relax(s.boomPitchRate, luffTarget, tau, dt);
  integrateClamped(s.boomPitchRad, s.boomPitchRate, limits_.boomPitchMinRad,
                   limits_.boomPitchMaxRad, dt);

  const double teleTarget = power *
                            math::clamp(c.joystickTelescope, -1.0, 1.0) *
                            limits_.maxTelescopeRate;
  s.boomLengthRate = relax(s.boomLengthRate, teleTarget, tau, dt);
  integrateClamped(s.boomLengthM, s.boomLengthRate, limits_.boomLengthMinM,
                   limits_.boomLengthMaxM, dt);

  // Hoist: positive joystick pays cable out (hook descends).
  const double hoistTarget = power * math::clamp(c.joystickHoist, -1.0, 1.0) *
                             limits_.maxHoistRate;
  s.cableRate = relax(s.cableRate, hoistTarget, tau, dt);
  integrateClamped(s.cableLengthM, s.cableRate, limits_.cableMinM,
                   limits_.cableMaxM, dt);
}

void EngineModel::step(bool ignition, double demand01, double dt) {
  on_ = ignition;
  const double target =
      on_ ? 800.0 + 1400.0 * math::clamp(demand01, 0.0, 1.0) : 0.0;
  const double tau = on_ ? 0.8 : 1.6;  // spools up faster than it dies
  rpm_ += (1.0 - std::exp(-dt / tau)) * (target - rpm_);
  if (!on_ && rpm_ < 1.0) rpm_ = 0.0;
}

}  // namespace cod::crane
