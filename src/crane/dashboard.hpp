// Dashboard instrument model (§3.2).
//
// The dashboard module is the signal half of the I/O device simulator: it
// reads the operator's input devices (wheel, pedals, two joysticks, ignition
// and hook-latch switches) and drives the output instruments (meters and
// indicator lamps). The instructor can inject instrument faults for
// trouble-shooting training (§3.3) — a faulted meter freezes or reads zero
// regardless of the true signal.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "crane/safety.hpp"
#include "crane/state.hpp"

namespace cod::crane {

/// Output instruments on the panel.
enum class Meter : std::uint8_t {
  kEngineRpm = 0,
  kSpeed = 1,
  kFuel = 2,
  kHydraulicPressure = 3,
  kLoadMomentPct = 4,
  kCableLength = 5,
};
inline constexpr std::size_t kMeterCount = 6;

const char* meterName(Meter m);

/// Fault kinds the instructor can inject per meter.
enum class MeterFault : std::uint8_t {
  kNone = 0,
  kStuck = 1,   // holds the value it had when the fault was injected
  kDead = 2,    // reads zero
};

/// The dashboard: input signals in, meter needles and lamps out.
class Dashboard {
 public:
  Dashboard();

  /// Set the raw operator inputs (normally from the hardware; in this
  /// reproduction from a scripted operator or a test).
  void setControls(const CraneControls& c) { controls_ = c; }
  const CraneControls& controls() const { return controls_; }

  /// Update output instruments from the authoritative crane state.
  void updateInstruments(const CraneState& s, const AlarmSet& alarms,
                         double momentUtilisation);

  double meterValue(Meter m) const;
  /// The physically displayed value (after any injected fault).
  double displayedValue(Meter m) const;

  bool lampActive(Alarm a) const { return alarms_.active(a); }
  const AlarmSet& lamps() const { return alarms_; }

  /// Instructor fault injection (§3.3 troubleshooting training).
  void injectFault(Meter m, MeterFault f);
  MeterFault fault(Meter m) const;

  /// Fuel burns while the engine runs; refillable for long sessions.
  void consumeFuel(double dt);
  void refuel() { fuel01_ = 1.0; }
  double fuel() const { return fuel01_; }

 private:
  CraneControls controls_;
  std::array<double, kMeterCount> values_{};
  std::array<double, kMeterCount> frozen_{};
  std::array<MeterFault, kMeterCount> faults_{};
  AlarmSet alarms_;
  double fuel01_ = 1.0;
  bool engineOn_ = false;
};

}  // namespace cod::crane
