#include "crane/load_chart.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cod::crane {

LoadChart::LoadChart(std::vector<double> boomLengths, std::vector<double> radii,
                     std::vector<std::vector<double>> capacityKg)
    : lengths_(std::move(boomLengths)),
      radii_(std::move(radii)),
      cap_(std::move(capacityKg)) {
  if (lengths_.size() < 2 || radii_.size() < 2)
    throw std::invalid_argument("LoadChart: need at least a 2x2 table");
  if (!std::is_sorted(lengths_.begin(), lengths_.end()) ||
      !std::is_sorted(radii_.begin(), radii_.end()))
    throw std::invalid_argument("LoadChart: axes must be increasing");
  if (cap_.size() != lengths_.size())
    throw std::invalid_argument("LoadChart: row count mismatch");
  for (const auto& row : cap_)
    if (row.size() != radii_.size())
      throw std::invalid_argument("LoadChart: column count mismatch");
}

LoadChart LoadChart::typical25t() {
  // Ratings (kg) by boom length (rows) x working radius (columns);
  // shaped after published rough-terrain charts: capacity falls sharply
  // with radius, and long booms trade capacity for reach.
  return LoadChart(
      {9.0, 14.0, 20.0, 26.0},             // boom lengths, m
      {3.0, 5.0, 8.0, 12.0, 16.0, 20.0},   // working radii, m
      {
          {25000, 16000, 8500, 4200, 0, 0},      // 9 m boom
          {21000, 14500, 8000, 4600, 2600, 0},   // 14 m
          {15000, 12000, 7200, 4300, 2700, 1700},  // 20 m
          {11000, 9500, 6300, 3900, 2500, 1600},   // 26 m
      });
}

double LoadChart::capacityKg(double boomLengthM, double radiusM) const {
  if (radiusM > radii_.back()) return 0.0;  // outside the envelope
  const double len = math::clamp(boomLengthM, lengths_.front(), lengths_.back());
  const double rad = math::clamp(radiusM, radii_.front(), radii_.back());
  const auto hiL = std::upper_bound(lengths_.begin(), lengths_.end(), len);
  const std::size_t i1 = std::min<std::size_t>(
      lengths_.size() - 1,
      static_cast<std::size_t>(std::max<long>(1, hiL - lengths_.begin())));
  const std::size_t i0 = i1 - 1;
  const auto hiR = std::upper_bound(radii_.begin(), radii_.end(), rad);
  const std::size_t j1 = std::min<std::size_t>(
      radii_.size() - 1,
      static_cast<std::size_t>(std::max<long>(1, hiR - radii_.begin())));
  const std::size_t j0 = j1 - 1;
  const double u = (len - lengths_[i0]) /
                   std::max(1e-12, lengths_[i1] - lengths_[i0]);
  const double v =
      (rad - radii_[j0]) / std::max(1e-12, radii_[j1] - radii_[j0]);
  return math::lerp(math::lerp(cap_[i0][j0], cap_[i0][j1], v),
                    math::lerp(cap_[i1][j0], cap_[i1][j1], v), u);
}

double LoadChart::utilisation(double loadKg, double boomLengthM,
                              double radiusM) const {
  if (loadKg <= 0.0) return 0.0;
  const double cap = capacityKg(boomLengthM, radiusM);
  if (cap <= 0.0) return std::numeric_limits<double>::infinity();
  return loadKg / cap;
}

void Outriggers::step(double dt) {
  if (dt <= 0.0 || cycleSec_ <= 0.0) return;
  const double rate = dt / cycleSec_;
  progress_ = math::clamp(progress_ + (target_ ? rate : -rate), 0.0, 1.0);
}

Outriggers::State Outriggers::state() const {
  if (progress_ <= 0.0) return State::kStowed;
  if (progress_ >= 1.0) return State::kDeployed;
  return target_ ? State::kDeploying : State::kStowing;
}

}  // namespace cod::crane
