// Joint-space dynamics of the crane superstructure: joystick commands →
// rate-limited, first-order actuator responses, integrated into joint
// positions with range clamping.
#pragma once

#include "crane/state.hpp"

namespace cod::crane {

class CraneJointDynamics {
 public:
  explicit CraneJointDynamics(CraneLimits limits = {});

  const CraneLimits& limits() const { return limits_; }

  /// Advance the superstructure joints by dt under the given controls.
  void step(CraneState& s, const CraneControls& c, double dt) const;

 private:
  CraneLimits limits_;
};

/// Engine model shared by dashboard RPM gauge and audio pitch: idle +
/// demand-dependent rise with first-order lag.
class EngineModel {
 public:
  void step(bool ignition, double demand01, double dt);
  bool on() const { return on_; }
  double rpm() const { return rpm_; }

 private:
  bool on_ = false;
  double rpm_ = 0.0;
};

}  // namespace cod::crane
