// Crane joint state and operator control inputs.
//
// The paper's mockup has a steering wheel, gas pedal, brake and two
// joysticks: one for the derrick boom (slew + luff) and one for the boom
// telescope and the plumb (hoist) cable (§3.2).
#pragma once

#include "math/quat.hpp"
#include "math/vec.hpp"

namespace cod::crane {

/// Joint-space state of the crane superstructure.
struct CraneState {
  // Slew: rotation of the superstructure about the carrier's vertical axis.
  double slewAngleRad = 0.0;
  double slewRateRad = 0.0;
  // Luff ("raising degree of the derrick boom").
  double boomPitchRad = math::deg2rad(45.0);
  double boomPitchRate = 0.0;
  // Telescope ("elongated length of the derrick boom").
  double boomLengthM = 10.0;
  double boomLengthRate = 0.0;
  // Plumb cable ("current length of the plumb cable").
  double cableLengthM = 6.0;
  double cableRate = 0.0;

  double hookLoadKg = 0.0;  // cargo currently on the hook
  bool cargoAttached = false;

  bool engineOn = false;
  double engineRpm = 0.0;

  // Carrier pose (filled from the vehicle model).
  math::Vec3 carrierPosition;
  double carrierHeadingRad = 0.0;
  double carrierPitchRad = 0.0;
  double carrierRollRad = 0.0;
  double carrierSpeedMps = 0.0;

  math::Quat carrierOrientation() const {
    return math::Quat::fromEuler(carrierRollRad, -carrierPitchRad,
                                 carrierHeadingRad);
  }
};

/// Normalised operator inputs, as read off the dashboard instruments.
struct CraneControls {
  // Driving.
  double steering = 0.0;  // [-1, 1]
  double throttle = 0.0;  // [0, 1]
  double brake = 0.0;     // [0, 1]
  bool reverse = false;
  bool ignition = false;
  // Boom joystick: x = slew, y = luff.
  double joystickSlew = 0.0;  // [-1, 1]
  double joystickLuff = 0.0;  // [-1, 1]
  // Telescope/cable joystick: x = telescope, y = hoist.
  double joystickTelescope = 0.0;  // [-1, 1]
  double joystickHoist = 0.0;      // [-1, 1]
  // Hook latch (grab / release cargo).
  bool hookLatch = false;
  // Outrigger master switch (deploy when true, stow when false).
  bool outriggersDeploy = false;
};

/// Joint rate/range limits of the crane superstructure.
struct CraneLimits {
  double maxSlewRateRad = math::deg2rad(12.0);
  double maxLuffRateRad = math::deg2rad(8.0);
  double maxTelescopeRate = 0.8;   // m/s
  double maxHoistRate = 1.2;       // m/s
  double boomPitchMinRad = math::deg2rad(5.0);
  double boomPitchMaxRad = math::deg2rad(80.0);
  double boomLengthMinM = 9.0;
  double boomLengthMaxM = 26.0;
  double cableMinM = 0.5;
  double cableMaxM = 30.0;
  /// First-order response time of each actuator (s).
  double actuatorTau = 0.35;
};

}  // namespace cod::crane
