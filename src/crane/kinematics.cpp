#include "crane/kinematics.hpp"

#include <cmath>

namespace cod::crane {

using math::Mat4;
using math::Quat;
using math::Vec3;

CraneKinematics::CraneKinematics(CraneGeometry geom) : geom_(geom) {}

Mat4 CraneKinematics::carrierTransform(const CraneState& s) const {
  return Mat4::rigid(s.carrierOrientation(), s.carrierPosition);
}

Vec3 CraneKinematics::boomPivot(const CraneState& s) const {
  return carrierTransform(s).transformPoint(geom_.boomPivotOffset);
}

Vec3 CraneKinematics::boomTip(const CraneState& s) const {
  // Boom direction in the superstructure frame: slew about body z, then
  // luff up from the deck plane.
  const Quat slew = Quat::fromAxisAngle({0, 0, 1}, s.slewAngleRad);
  const Vec3 boomDirBody =
      slew.rotate({std::cos(s.boomPitchRad), 0.0, std::sin(s.boomPitchRad)});
  const Vec3 boomDirWorld = s.carrierOrientation().rotate(boomDirBody);
  return boomPivot(s) + boomDirWorld * s.boomLengthM;
}

Vec3 CraneKinematics::hookRestPosition(const CraneState& s) const {
  return boomTip(s) - Vec3{0, 0, s.cableLengthM};
}

double CraneKinematics::workingRadius(const CraneState& s) const {
  const Vec3 tip = boomTip(s);
  const Vec3 axis = carrierTransform(s).transformPoint(
      {geom_.boomPivotOffset.x, geom_.boomPivotOffset.y, 0.0});
  const double dx = tip.x - axis.x;
  const double dy = tip.y - axis.y;
  return std::sqrt(dx * dx + dy * dy);
}

Vec3 CraneKinematics::cabEye(const CraneState& s) const {
  return carrierTransform(s).transformPoint(geom_.cabEyeOffset);
}

}  // namespace cod::crane
