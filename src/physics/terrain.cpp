#include "physics/terrain.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/rng.hpp"

namespace cod::physics {

using math::Vec2;
using math::Vec3;

Terrain::Terrain(int nx, int ny, double cellSize)
    : nx_(nx), ny_(ny), cell_(cellSize) {
  if (nx < 2 || ny < 2 || cellSize <= 0.0)
    throw std::invalid_argument("Terrain: need >=2x2 cells, positive size");
  h_.assign(static_cast<std::size_t>(nx) * ny, 0.0);
}

Terrain Terrain::rolling(int nx, int ny, double cellSize, double amplitude,
                         std::uint64_t seed) {
  Terrain t(nx, ny, cellSize);
  math::Rng rng(seed);
  // Coarse lattice of random control heights, upsampled with cosine
  // interpolation; three octaves.
  for (int octave = 0; octave < 3; ++octave) {
    const int step = std::max(2, 16 >> octave);
    const double amp = amplitude / (1 << octave);
    const int gx = nx / step + 2;
    const int gy = ny / step + 2;
    std::vector<double> ctrl(static_cast<std::size_t>(gx) * gy);
    for (double& c : ctrl) c = rng.uniform(-amp, amp);
    auto at = [&](int i, int j) {
      return ctrl[static_cast<std::size_t>(j) * gx + i];
    };
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const double fx = static_cast<double>(i) / step;
        const double fy = static_cast<double>(j) / step;
        const int i0 = static_cast<int>(fx);
        const int j0 = static_cast<int>(fy);
        auto smooth = [](double u) { return (1 - std::cos(u * math::kPi)) / 2; };
        const double u = smooth(fx - i0);
        const double v = smooth(fy - j0);
        const double hv =
            math::lerp(math::lerp(at(i0, j0), at(i0 + 1, j0), u),
                       math::lerp(at(i0, j0 + 1), at(i0 + 1, j0 + 1), u), v);
        t.h_[static_cast<std::size_t>(j) * nx + i] += hv;
      }
    }
  }
  return t;
}

double Terrain::heightAt(int i, int j) const {
  i = std::clamp(i, 0, nx_ - 1);
  j = std::clamp(j, 0, ny_ - 1);
  return h_[static_cast<std::size_t>(j) * nx_ + i];
}

void Terrain::setHeightAt(int i, int j, double h) {
  if (i < 0 || i >= nx_ || j < 0 || j >= ny_)
    throw std::out_of_range("Terrain::setHeightAt");
  h_[static_cast<std::size_t>(j) * nx_ + i] = h;
}

double Terrain::height(double x, double y) const {
  const double fx = std::clamp(x / cell_, 0.0, static_cast<double>(nx_ - 1));
  const double fy = std::clamp(y / cell_, 0.0, static_cast<double>(ny_ - 1));
  const int i0 = std::min(static_cast<int>(fx), nx_ - 2);
  const int j0 = std::min(static_cast<int>(fy), ny_ - 2);
  const double u = fx - i0;
  const double v = fy - j0;
  return math::lerp(
      math::lerp(heightAt(i0, j0), heightAt(i0 + 1, j0), u),
      math::lerp(heightAt(i0, j0 + 1), heightAt(i0 + 1, j0 + 1), u), v);
}

Vec3 Terrain::normal(double x, double y) const {
  const double e = cell_ * 0.5;
  const double dzdx = (height(x + e, y) - height(x - e, y)) / (2 * e);
  const double dzdy = (height(x, y + e) - height(x, y - e)) / (2 * e);
  return Vec3{-dzdx, -dzdy, 1.0}.normalized();
}

double Terrain::slopeDeg(double x, double y) const {
  const Vec3 n = normal(x, y);
  return math::rad2deg(std::acos(math::clamp(n.z, -1.0, 1.0)));
}

Terrain::FootprintPose Terrain::follow(const Vec2& pos, double heading,
                                       double wheelbase, double track) const {
  const Vec2 fwd{std::cos(heading), std::sin(heading)};
  const Vec2 right{std::sin(heading), -std::cos(heading)};
  const double hw = wheelbase * 0.5;
  const double ht = track * 0.5;
  // Wheel contact points: front-left, front-right, rear-left, rear-right.
  const Vec2 fl = pos + fwd * hw - right * ht;
  const Vec2 fr = pos + fwd * hw + right * ht;
  const Vec2 rl = pos - fwd * hw - right * ht;
  const Vec2 rr = pos - fwd * hw + right * ht;
  const double zfl = height(fl.x, fl.y);
  const double zfr = height(fr.x, fr.y);
  const double zrl = height(rl.x, rl.y);
  const double zrr = height(rr.x, rr.y);
  FootprintPose p;
  p.z = (zfl + zfr + zrl + zrr) / 4.0;
  const double zFront = (zfl + zfr) / 2.0;
  const double zRear = (zrl + zrr) / 2.0;
  const double zLeft = (zfl + zrl) / 2.0;
  const double zRight = (zfr + zrr) / 2.0;
  p.pitch = std::atan2(zFront - zRear, wheelbase);
  p.roll = std::atan2(zRight - zLeft, track);
  return p;
}

}  // namespace cod::physics
