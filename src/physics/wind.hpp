// Wind field for the training site.
//
// Wind is the classic crane-operation hazard the paper's flight-simulator
// analogy lists ("wind speed" among the quantities a high-fidelity
// simulator must recalculate). The model: a slowly veering mean wind plus
// band-limited gusts (one-pole filtered noise), deterministic in its seed.
// The dynamics module applies the resulting drag force to the suspended
// cargo; the safety envelope raises an alarm above the work-stop threshold.
#pragma once

#include "math/rng.hpp"
#include "math/vec.hpp"

namespace cod::physics {

struct WindParams {
  double meanSpeedMps = 0.0;      // calm by default
  double meanDirectionRad = 0.0;  // blowing toward +X at 0
  double gustIntensity = 0.3;     // gust stddev as a fraction of the mean
  double gustCutoffHz = 0.08;     // slow gust spectrum
  double veerRateRadPerS = 0.01;  // random walk of the mean direction
};

class Wind {
 public:
  explicit Wind(WindParams params = WindParams{}, std::uint64_t seed = 41);

  void setMean(double speedMps, double directionRad);
  const WindParams& params() const { return params_; }

  /// Advance the gust/veer processes.
  void step(double dt);

  /// Instantaneous wind velocity (z component is always 0).
  math::Vec3 velocity() const;
  double speed() const { return velocity().norm(); }
  double directionRad() const { return direction_; }

  /// Drag force on a suspended body: F = 1/2 rho Cd A |v| v.
  math::Vec3 dragForce(double dragArea, double dragCoef = 1.1) const;

 private:
  WindParams params_;
  math::Rng rng_;
  double direction_ = 0.0;
  double gustAlong_ = 0.0;   // filtered noise, along-wind
  double gustAcross_ = 0.0;  // filtered noise, cross-wind
};

}  // namespace cod::physics
