// Longitudinal + kinematic-steering model of the mobile crane carrier.
//
// The paper's flight-simulator analogy (§1) — "when a user pushes the pedal,
// the simulator must recalculate the new position according to its current
// position, velocity, acceleration, ... and gravity" — is exactly this
// module's job for the crane truck: pedal and wheel signals in, a physically
// plausible carrier pose out, including grade resistance from the terrain
// and a rollover index driven by the crane's high centre of gravity.
#pragma once

#include "math/quat.hpp"
#include "math/vec.hpp"
#include "physics/terrain.hpp"

namespace cod::physics {

struct VehicleParams {
  double massKg = 24000.0;         // typical 25 t rough-terrain crane
  double engineForceMaxN = 90e3;   // peak tractive force
  double brakeForceMaxN = 180e3;
  double dragCoef = 5.0;           // aero drag, N per (m/s)^2
  double rollingCoef = 0.015;      // rolling resistance fraction of weight
  double wheelbaseM = 4.5;
  double trackM = 2.5;
  double cgHeightM = 1.8;          // high CG: the crane's hazard (§3.6)
  double maxSteerRad = 0.55;
  double maxSpeedMps = 8.3;        // ~30 km/h site limit
  double reverseSpeedMps = 2.5;
};

/// Normalised driver inputs (dashboard signals).
struct VehicleInput {
  double throttle = 0.0;  // [0, 1]
  double brake = 0.0;     // [0, 1]
  double steer = 0.0;     // [-1, 1], positive steers left (CCW)
  bool reverse = false;
};

class Vehicle {
 public:
  explicit Vehicle(VehicleParams params = {});

  void setPosition(const math::Vec2& p, double heading);

  /// One fixed step of the carrier dynamics over `terrain`.
  void step(const VehicleInput& in, const Terrain& terrain, double dt);

  const math::Vec2& position() const { return pos_; }
  double heading() const { return heading_; }
  double speed() const { return speed_; }

  /// Full 3-D pose from the latest terrain-following solve.
  math::Vec3 position3() const { return {pos_.x, pos_.y, z_}; }
  double pitch() const { return pitch_; }
  double roll() const { return roll_; }
  math::Quat orientation() const {
    return math::Quat::fromEuler(roll_, -pitch_, heading_);
  }

  /// Lateral acceleration of the last step (m/s^2).
  double lateralAccel() const { return latAccel_; }
  /// Static-stability rollover index: |a_lat| * h_cg / (g * track/2).
  /// >= 1 means the quasi-static tipping threshold is crossed.
  double rolloverIndex() const;

  const VehicleParams& params() const { return params_; }

 private:
  VehicleParams params_;
  math::Vec2 pos_;
  double heading_ = 0.0;
  double speed_ = 0.0;  // signed: negative in reverse
  double z_ = 0.0;
  double pitch_ = 0.0;
  double roll_ = 0.0;
  double latAccel_ = 0.0;
};

}  // namespace cod::physics
