#include "physics/vehicle.hpp"

#include <algorithm>
#include <cmath>

namespace cod::physics {

namespace {
constexpr double kGravity = 9.80665;
}

Vehicle::Vehicle(VehicleParams params) : params_(params) {}

void Vehicle::setPosition(const math::Vec2& p, double heading) {
  pos_ = p;
  heading_ = math::wrapAngle(heading);
}

void Vehicle::step(const VehicleInput& in, const Terrain& terrain, double dt) {
  const double throttle = math::clamp(in.throttle, 0.0, 1.0);
  const double brake = math::clamp(in.brake, 0.0, 1.0);
  const double steer = math::clamp(in.steer, -1.0, 1.0);

  // Longitudinal forces.
  const double dir = in.reverse ? -1.0 : 1.0;
  double force = dir * throttle * params_.engineForceMaxN;
  // Grade resistance: component of gravity along the heading.
  const double eps = 0.5;
  const double hAhead = terrain.height(pos_.x + eps * std::cos(heading_),
                                       pos_.y + eps * std::sin(heading_));
  const double hBehind = terrain.height(pos_.x - eps * std::cos(heading_),
                                        pos_.y - eps * std::sin(heading_));
  const double grade = (hAhead - hBehind) / (2 * eps);  // rise over run
  force -= params_.massKg * kGravity * grade /
           std::sqrt(1.0 + grade * grade);
  // Rolling resistance and drag oppose motion.
  if (std::abs(speed_) > 1e-6) {
    const double sgn = speed_ > 0 ? 1.0 : -1.0;
    force -= sgn * params_.rollingCoef * params_.massKg * kGravity;
    force -= sgn * params_.dragCoef * speed_ * speed_;
  }
  // Brakes oppose motion and can hold the vehicle still on a grade.
  const double brakeForce = brake * params_.brakeForceMaxN;
  double accel = force / params_.massKg;
  if (std::abs(speed_) > 1e-6) {
    const double sgn = speed_ > 0 ? 1.0 : -1.0;
    accel -= sgn * brakeForce / params_.massKg;
  } else if (brake > 0.05 && std::abs(accel) * params_.massKg <= brakeForce) {
    accel = 0.0;  // parked: brake holds against grade + engine
  }

  double newSpeed = speed_ + accel * dt;
  // Brakes never reverse the direction of travel.
  if (brake > 0.0 && speed_ != 0.0 && newSpeed * speed_ < 0.0) newSpeed = 0.0;
  const double cap = in.reverse ? params_.reverseSpeedMps : params_.maxSpeedMps;
  newSpeed = math::clamp(newSpeed, -cap, cap);
  speed_ = newSpeed;

  // Kinematic bicycle steering.
  const double steerAngle = steer * params_.maxSteerRad;
  double yawRate = 0.0;
  if (std::abs(steerAngle) > 1e-9 && std::abs(speed_) > 1e-9) {
    const double turnRadius = params_.wheelbaseM / std::tan(steerAngle);
    yawRate = speed_ / turnRadius;
  }
  heading_ = math::wrapAngle(heading_ + yawRate * dt);
  pos_.x += speed_ * std::cos(heading_) * dt;
  pos_.y += speed_ * std::sin(heading_) * dt;
  latAccel_ = speed_ * yawRate;  // v^2 / r

  // Terrain following (§3.6): pose the chassis on the ground.
  const Terrain::FootprintPose fp =
      terrain.follow(pos_, heading_, params_.wheelbaseM, params_.trackM);
  z_ = fp.z;
  pitch_ = fp.pitch;
  roll_ = fp.roll;
}

double Vehicle::rolloverIndex() const {
  // Quasi-static tip threshold about the outer wheel line, worsened by the
  // terrain roll angle the crane currently sits at.
  const double halfTrack = params_.trackM * 0.5;
  const double tilt = std::abs(roll_);
  const double lateral = std::abs(latAccel_) + kGravity * std::sin(tilt);
  return lateral * params_.cgHeightM / (kGravity * halfTrack);
}

}  // namespace cod::physics
