#include "physics/wind.hpp"

#include <cmath>

namespace cod::physics {

Wind::Wind(WindParams params, std::uint64_t seed)
    : params_(params), rng_(seed), direction_(params.meanDirectionRad) {}

void Wind::setMean(double speedMps, double directionRad) {
  params_.meanSpeedMps = speedMps;
  params_.meanDirectionRad = directionRad;
  direction_ = directionRad;
}

void Wind::step(double dt) {
  if (dt <= 0.0) return;
  // Gusts: one-pole low-pass of white noise in both axes.
  const double alpha =
      1.0 - std::exp(-2.0 * math::kPi * params_.gustCutoffHz * dt);
  gustAlong_ += alpha * (rng_.normal() - gustAlong_);
  gustAcross_ += alpha * (rng_.normal() - gustAcross_);
  // Mean direction veers as a bounded random walk around the configured
  // heading.
  direction_ += params_.veerRateRadPerS * rng_.normal() * std::sqrt(dt);
  const double pull =
      math::angleDiff(params_.meanDirectionRad, direction_);
  direction_ = math::wrapAngle(direction_ + 0.1 * pull * dt);
}

math::Vec3 Wind::velocity() const {
  const double gustScale = params_.meanSpeedMps * params_.gustIntensity;
  const double along = params_.meanSpeedMps + gustScale * gustAlong_;
  const double across = gustScale * gustAcross_;
  const double c = std::cos(direction_);
  const double s = std::sin(direction_);
  return {along * c - across * s, along * s + across * c, 0.0};
}

math::Vec3 Wind::dragForce(double dragArea, double dragCoef) const {
  constexpr double kAirDensity = 1.225;  // kg/m^3 at sea level
  const math::Vec3 v = velocity();
  return v * (0.5 * kAirDensity * dragCoef * dragArea * v.norm());
}

}  // namespace cod::physics
