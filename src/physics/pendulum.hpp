// Inertia oscillation of the lift hook (§3.6).
//
// "When the derrick boom is moving, the dynamic module computes the inertia
// of the lift hook acting on the cable ...; when the boom stops, the cable
// oscillates until a full stop." The hook + cargo are modelled as a point
// mass on an inextensible cable hung from a moving pivot (the boom tip),
// integrated with a position-based constraint projection that is
// unconditionally stable under pivot motion and cable-length changes
// (hoisting), with viscous damping that brings the oscillation to rest.
#pragma once

#include "math/vec.hpp"

namespace cod::physics {

struct CableParams {
  double cargoMassKg = 1000.0;
  /// Viscous damping rate (1/s): v *= exp(-damping * dt) each step.
  double dampingRate = 0.12;
  /// Gravity (z-up world).
  math::Vec3 gravity{0.0, 0.0, -9.80665};
};

class CablePendulum {
 public:
  explicit CablePendulum(CableParams params = {});

  /// Reset the bob hanging straight down from `pivot` at `length`, at rest.
  void reset(const math::Vec3& pivot, double length);

  /// Move the pivot (boom tip) for this step; the constraint projection
  /// converts pivot motion into hook swing — the "inertia" of the paper.
  void setPivot(const math::Vec3& pivot) { pivot_ = pivot; }
  /// Change cable length (hoisting); clamped positive.
  void setLength(double length);

  /// Accumulate an external force on the bob (e.g. wind drag on the
  /// cargo) for the next step; cleared after each step.
  void applyForce(const math::Vec3& force) { externalForce_ += force; }

  void step(double dt);

  const math::Vec3& pivot() const { return pivot_; }
  double length() const { return length_; }
  const math::Vec3& bobPosition() const { return pos_; }
  const math::Vec3& bobVelocity() const { return vel_; }

  /// Swing angle from the vertical, radians in [0, pi].
  double swingAngle() const;

  /// Mechanical energy relative to the straight-down rest pose (J >= 0).
  double energy() const;

  /// True when the hook has effectively stopped swinging.
  bool atRest(double angleTolRad = 0.005, double speedTol = 0.02) const;

  const CableParams& params() const { return params_; }
  void setParams(const CableParams& p) { params_ = p; }

 private:
  CableParams params_;
  math::Vec3 pivot_;
  math::Vec3 pos_{0, 0, -1};
  math::Vec3 vel_;
  math::Vec3 externalForce_;
  double length_ = 1.0;
};

}  // namespace cod::physics
