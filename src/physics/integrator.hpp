// Fixed-step ODE integrators used by the dynamics module.
//
// `State` must support state + state, state * double (scalar on the right).
// `f(t, state)` returns the derivative as another State.
#pragma once

#include <concepts>

namespace cod::physics {

template <typename S>
concept StateVector = requires(S a, S b, double k) {
  { a + b } -> std::convertible_to<S>;
  { a * k } -> std::convertible_to<S>;
};

/// Explicit (forward) Euler. First order; kept as a baseline.
template <StateVector S, typename F>
S eulerStep(const S& s, double t, double dt, F&& f) {
  return s + f(t, s) * dt;
}

/// Classic fourth-order Runge-Kutta.
template <StateVector S, typename F>
S rk4Step(const S& s, double t, double dt, F&& f) {
  const S k1 = f(t, s);
  const S k2 = f(t + dt * 0.5, s + k1 * (dt * 0.5));
  const S k3 = f(t + dt * 0.5, s + k2 * (dt * 0.5));
  const S k4 = f(t + dt, s + k3 * dt);
  return s + (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (dt / 6.0);
}

}  // namespace cod::physics
