// Heightmap terrain and the paper's terrain-following mechanism (§3.6).
//
// The mobile crane's centre of gravity is higher than an ordinary vehicle's,
// so driving over uneven ground is itself a training hazard; the dynamics
// module samples this terrain every step to pose the carrier (z, pitch,
// roll) and to feed grade resistance into the longitudinal model.
#pragma once

#include <cstdint>
#include <vector>

#include "math/vec.hpp"

namespace cod::physics {

class Terrain {
 public:
  /// Flat ground of nx × ny cells of `cellSize` metres.
  Terrain(int nx, int ny, double cellSize);

  /// Procedurally rolling ground: several octaves of smoothed value noise,
  /// deterministic in `seed`. `amplitude` is the peak-to-mean height.
  static Terrain rolling(int nx, int ny, double cellSize, double amplitude,
                         std::uint64_t seed);

  int cellsX() const { return nx_; }
  int cellsY() const { return ny_; }
  double cellSize() const { return cell_; }
  /// Extent in metres along X / Y.
  double width() const { return (nx_ - 1) * cell_; }
  double depth() const { return (ny_ - 1) * cell_; }

  double heightAt(int i, int j) const;
  void setHeightAt(int i, int j, double h);

  /// Bilinear height at world (x, y); clamped at the borders.
  double height(double x, double y) const;
  /// Surface normal by central differences (unit, z-up).
  math::Vec3 normal(double x, double y) const;
  /// Steepest slope at (x, y), degrees.
  double slopeDeg(double x, double y) const;

  /// Terrain following for a rectangular wheel footprint centred at `pos`
  /// with the given heading (radians, CCW from +X).
  struct FootprintPose {
    double z = 0.0;      // chassis height (mean of wheel contacts)
    double pitch = 0.0;  // nose-up positive, radians
    double roll = 0.0;   // right-side-down positive, radians
  };
  FootprintPose follow(const math::Vec2& pos, double heading, double wheelbase,
                       double track) const;

 private:
  int nx_;
  int ny_;
  double cell_;
  std::vector<double> h_;  // row-major [j * nx + i]
};

}  // namespace cod::physics
