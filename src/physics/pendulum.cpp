#include "physics/pendulum.hpp"

#include <algorithm>
#include <cmath>

namespace cod::physics {

using math::Vec3;

CablePendulum::CablePendulum(CableParams params) : params_(params) {
  reset({0, 0, 0}, 1.0);
}

void CablePendulum::reset(const Vec3& pivot, double length) {
  pivot_ = pivot;
  length_ = std::max(0.01, length);
  const Vec3 down = params_.gravity.norm() > 0 ? params_.gravity.normalized()
                                               : Vec3{0, 0, -1};
  pos_ = pivot_ + down * length_;
  vel_ = {};
  externalForce_ = {};
}

void CablePendulum::setLength(double length) {
  length_ = std::max(0.01, length);
}

void CablePendulum::step(double dt) {
  if (dt <= 0.0) return;
  // Semi-implicit integration of the free particle...
  vel_ += params_.gravity * dt;
  if (params_.cargoMassKg > 0.0)
    vel_ += externalForce_ * (dt / params_.cargoMassKg);
  externalForce_ = {};
  vel_ *= std::exp(-params_.dampingRate * dt);
  Vec3 candidate = pos_ + vel_ * dt;
  // ...then project back onto the cable sphere around the (already moved)
  // pivot. The projection is what transfers pivot inertia into swing.
  Vec3 radial = candidate - pivot_;
  const double r = radial.norm();
  if (r < 1e-9) {
    // Degenerate: bob at the pivot; re-hang straight down.
    const Vec3 down = params_.gravity.norm() > 0 ? params_.gravity.normalized()
                                                 : Vec3{0, 0, -1};
    radial = down;
    candidate = pivot_ + down * length_;
  } else {
    radial = radial / r;
    candidate = pivot_ + radial * length_;
  }
  // Velocity from corrected positions keeps the pair consistent; remove the
  // radial component (the cable is inextensible, taut-side only).
  vel_ = (candidate - pos_) * (1.0 / dt);
  const double radialSpeed = vel_.dot(radial);
  if (radialSpeed > 0.0) vel_ -= radial * radialSpeed;  // cable cannot push
  pos_ = candidate;
}

double CablePendulum::swingAngle() const {
  const Vec3 down = params_.gravity.norm() > 0 ? params_.gravity.normalized()
                                               : Vec3{0, 0, -1};
  const Vec3 dir = (pos_ - pivot_).normalized();
  return std::acos(math::clamp(dir.dot(down), -1.0, 1.0));
}

double CablePendulum::energy() const {
  const double g = params_.gravity.norm();
  const double m = params_.cargoMassKg;
  // Height above the straight-down rest point.
  const double restZ = -length_;
  const Vec3 rel = pos_ - pivot_;
  const Vec3 down = g > 0 ? params_.gravity.normalized() : Vec3{0, 0, -1};
  const double along = rel.dot(down);  // distance below pivot
  const double h = (-restZ) - along;   // = length - along >= 0
  const double kinetic = 0.5 * m * vel_.norm2();
  return kinetic + m * g * std::max(0.0, h);
}

bool CablePendulum::atRest(double angleTolRad, double speedTol) const {
  return swingAngle() <= angleTolRad && vel_.norm() <= speedTol;
}

}  // namespace cod::physics
