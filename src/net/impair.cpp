#include "net/impair.hpp"

#include <chrono>
#include <utility>

namespace cod::net {

namespace {

double steadySeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

ImpairedTransport::ImpairedTransport(std::unique_ptr<Transport> inner,
                                     ImpairmentConfig cfg, Clock clock)
    : inner_(std::move(inner)),
      cfg_(cfg),
      clock_(clock ? std::move(clock) : Clock(&steadySeconds)),
      rng_(cfg.seed) {}

void ImpairedTransport::send(const NodeAddr& dst,
                             std::span<const std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  pumpLocked();
  offer(/*isBroadcast=*/false, dst, 0, bytes);
}

void ImpairedTransport::broadcast(std::uint16_t port,
                                  std::span<const std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  pumpLocked();
  offer(/*isBroadcast=*/true, NodeAddr{}, port, bytes);
}

std::optional<Datagram> ImpairedTransport::receive() {
  std::lock_guard<std::mutex> lock(mu_);
  pumpLocked();
  if (!cfg_.impairReceive) return inner_->receive();
  // Duplex mode: drain the socket fully through the inbound model —
  // losses vanish here, survivors wait out their delay in a release
  // queue. Draining everything available keeps the kernel buffer from
  // backing up while held datagrams age.
  while (std::optional<Datagram> d = inner_->receive()) {
    ++stats_.offeredRx;
    if (rng_.chance(cfg_.lossPct / 100.0)) {
      ++stats_.droppedRx;
      continue;
    }
    double delay = cfg_.delayMinSec;
    if (cfg_.delayMaxSec > cfg_.delayMinSec)
      delay = rng_.uniform(cfg_.delayMinSec, cfg_.delayMaxSec);
    rxQueue_.push(HeldRx{clock_() + delay, nextOrder_++, std::move(*d)});
  }
  if (rxQueue_.empty() || rxQueue_.top().dueSec > clock_())
    return std::nullopt;
  Datagram out = std::move(const_cast<HeldRx&>(rxQueue_.top()).dgram);
  rxQueue_.pop();
  return out;
}

void ImpairedTransport::offer(bool isBroadcast, const NodeAddr& dst,
                              std::uint16_t port,
                              std::span<const std::uint8_t> bytes) {
  ++stats_.offered;
  if (rng_.chance(cfg_.lossPct / 100.0)) {
    ++stats_.dropped;
    return;
  }
  const double now = clock_();
  double delay = cfg_.delayMinSec;
  if (cfg_.delayMaxSec > cfg_.delayMinSec)
    delay = rng_.uniform(cfg_.delayMinSec, cfg_.delayMaxSec);
  if (rng_.chance(cfg_.reorderPct / 100.0)) {
    ++stats_.reordered;
    delay += cfg_.reorderHoldSec;
  }
  if (rng_.chance(cfg_.duplicatePct / 100.0)) {
    // The copy trails the original so the receiver's dedup sees it as a
    // late duplicate, the common real-network shape.
    ++stats_.duplicated;
    hold(isBroadcast, dst, port, bytes, now + delay + cfg_.reorderHoldSec);
  }
  if (delay <= 0.0) {
    // Undelayed datagrams forward straight through — no copy, no queue.
    if (isBroadcast) {
      inner_->broadcast(port, bytes);
    } else {
      inner_->send(dst, bytes);
    }
    return;
  }
  hold(isBroadcast, dst, port, bytes, now + delay);
}

void ImpairedTransport::hold(bool isBroadcast, const NodeAddr& dst,
                             std::uint16_t port,
                             std::span<const std::uint8_t> bytes,
                             double dueSec) {
  ++stats_.delayed;
  queue_.push(Held{dueSec, nextOrder_++, isBroadcast, dst, port,
                  {bytes.begin(), bytes.end()}});
}

void ImpairedTransport::forward(const Held& h) {
  if (h.isBroadcast) {
    inner_->broadcast(h.port, h.bytes);
  } else {
    inner_->send(h.dst, h.bytes);
  }
}

void ImpairedTransport::pump() {
  std::lock_guard<std::mutex> lock(mu_);
  pumpLocked();
}

void ImpairedTransport::pumpLocked() {
  if (queue_.empty()) return;
  const double now = clock_();
  while (!queue_.empty() && queue_.top().dueSec <= now) {
    const Held h = queue_.top();
    queue_.pop();
    forward(h);
  }
}

}  // namespace cod::net
