#include "net/simnet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cod::net {

SimNetwork::SimNetwork(std::uint64_t seed) : rng_(seed) {}

SimNetwork::~SimNetwork() {
  // Endpoints must not outlive the network; detach any stragglers so their
  // destructors become no-ops instead of touching freed memory.
  for (auto& [addr, ep] : endpoints_) ep->net_ = nullptr;
}

HostId SimNetwork::addHost(std::string name) {
  hosts_.push_back(std::move(name));
  return static_cast<HostId>(hosts_.size() - 1);
}

const std::string& SimNetwork::hostName(HostId h) const {
  return hosts_.at(h);
}

std::unique_ptr<SimTransport> SimNetwork::bind(HostId host,
                                               std::uint16_t port) {
  if (host >= hosts_.size()) throw std::out_of_range("SimNetwork::bind: bad host");
  const NodeAddr addr{host, port};
  if (endpoints_.contains(addr))
    throw std::runtime_error("SimNetwork::bind: address in use");
  auto t = std::unique_ptr<SimTransport>(new SimTransport(this, addr));
  endpoints_[addr] = t.get();
  return t;
}

void SimNetwork::setLink(HostId a, HostId b, const LinkModel& link) {
  links_[std::minmax(a, b)] = link;
}

void SimNetwork::setPartitioned(HostId a, HostId b, bool blocked) {
  if (blocked) {
    partitions_.insert(std::minmax(a, b));
  } else {
    partitions_.erase(std::minmax(a, b));
  }
}

const LinkModel& SimNetwork::linkFor(HostId a, HostId b) const {
  const auto it = links_.find(std::minmax(a, b));
  return it != links_.end() ? it->second : defaultLink_;
}

bool SimNetwork::partitioned(HostId a, HostId b) const {
  return partitions_.contains(std::minmax(a, b));
}

void SimNetwork::dropTowards(const NodeAddr& dst, std::uint32_t frames) {
  // A dropped kBatch container is N lost frames, not one — soak suites and
  // telemetry want true frame loss. The drop is also attributed to the
  // destination endpoint (if still bound): the sim is omniscient, and
  // per-node inbound loss is exactly what the health monitor needs.
  ++stats_.packetsDropped;
  stats_.framesDropped += frames;
  const auto it = endpoints_.find(dst);
  if (it != endpoints_.end()) {
    ++it->second->stats_.packetsDropped;
    it->second->stats_.framesDropped += frames;
  }
}

void SimNetwork::enqueue(const NodeAddr& src, const NodeAddr& dst,
                         std::span<const std::uint8_t> bytes) {
  const LinkModel& link = linkFor(src.host, dst.host);
  if (link.lossRate > 0.0 && rng_.chance(link.lossRate)) {
    dropTowards(dst, framesInDatagram(bytes));
    return;
  }
  // NIC serialization: the sender's egress line is busy for size/bandwidth.
  double txStart = now_;
  if (src.host != dst.host && link.bandwidthBytesPerSec > 0.0) {
    double& freeAt = egressFreeAt_[src.host];
    txStart = std::max(now_, freeAt);
    freeAt = txStart + static_cast<double>(bytes.size()) / link.bandwidthBytesPerSec;
    txStart = freeAt;  // packet leaves once fully serialized
  }
  double latency = src.host == dst.host ? 0.0 : link.latencySec;
  if (src.host != dst.host && link.jitterSec > 0.0)
    latency += std::abs(rng_.normal(0.0, link.jitterSec));
  InFlight pkt;
  pkt.deliverAt = txStart + latency;
  pkt.seq = seq_++;
  pkt.dgram.src = src;
  pkt.dgram.dst = dst;
  pkt.dgram.payload.assign(bytes.begin(), bytes.end());
  queue_.push(std::move(pkt));
}

void SimNetwork::submit(const NodeAddr& src, const NodeAddr& dst,
                        std::span<const std::uint8_t> bytes) {
  const std::uint32_t frames = framesInDatagram(bytes);
  ++stats_.packetsSent;
  stats_.bytesSent += bytes.size();
  stats_.framesSent += frames;
  if (partitioned(src.host, dst.host)) {
    dropTowards(dst, frames);
    return;
  }
  if (!endpoints_.contains(dst)) {
    // No socket bound there: the LAN silently eats it, like real UDP
    // (dropTowards charges only the global stats — no endpoint to bill).
    dropTowards(dst, frames);
    return;
  }
  enqueue(src, dst, bytes);
}

void SimNetwork::submitBroadcast(const NodeAddr& src, std::uint16_t port,
                                 std::span<const std::uint8_t> bytes) {
  const std::uint32_t frames = framesInDatagram(bytes);
  ++stats_.packetsSent;
  stats_.bytesSent += bytes.size();
  for (const auto& [addr, ep] : endpoints_) {
    if (addr.port != port) continue;
    if (addr == src) continue;  // a socket does not hear its own broadcast
    // Frame accounting is per delivered copy (unlike packetsSent, which
    // counts the one send() call): drops and receipts are charged per
    // receiver below, so counting sends the same way keeps
    // framesDropped <= framesSent and the loss ratio meaningful even for
    // discovery-broadcast-heavy traffic.
    stats_.framesSent += frames;
    if (partitioned(src.host, addr.host)) {
      dropTowards(addr, frames);
      continue;
    }
    enqueue(src, addr, bytes);
  }
}

void SimNetwork::unbind(const NodeAddr& addr) { endpoints_.erase(addr); }

void SimNetwork::deliver(InFlight&& pkt) {
  const std::uint32_t frames = framesInDatagram(pkt.dgram.payload);
  const auto it = endpoints_.find(pkt.dgram.dst);
  if (it == endpoints_.end()) {
    // Socket closed while the packet was in flight.
    dropTowards(pkt.dgram.dst, frames);
    return;
  }
  SimTransport* ep = it->second;
  if (ep->inbox_.size() >= ep->inboxLimit_) {
    dropTowards(pkt.dgram.dst, frames);
    return;
  }
  stats_.bytesReceived += pkt.dgram.payload.size();
  ++stats_.packetsReceived;
  stats_.framesReceived += frames;
  ++ep->stats_.packetsReceived;
  ep->stats_.bytesReceived += pkt.dgram.payload.size();
  ep->stats_.framesReceived += frames;
  ep->inbox_.push_back(std::move(pkt.dgram));
}

void SimNetwork::advance(double dt) {
  const double target = now_ + dt;
  while (!queue_.empty() && queue_.top().deliverAt <= target) {
    InFlight pkt = queue_.top();
    queue_.pop();
    now_ = std::max(now_, pkt.deliverAt);
    deliver(std::move(pkt));
  }
  now_ = target;
}

bool SimNetwork::step() {
  if (queue_.empty()) return false;
  InFlight pkt = queue_.top();
  queue_.pop();
  now_ = std::max(now_, pkt.deliverAt);
  deliver(std::move(pkt));
  return true;
}

void SimNetwork::runUntilIdle(double maxTime) {
  while (!queue_.empty() && queue_.top().deliverAt <= maxTime) step();
}

SimTransport::~SimTransport() {
  if (net_ != nullptr) net_->unbind(addr_);
}

void SimTransport::send(const NodeAddr& dst,
                        std::span<const std::uint8_t> bytes) {
  ++stats_.packetsSent;
  stats_.bytesSent += bytes.size();
  stats_.framesSent += framesInDatagram(bytes);
  if (net_ != nullptr) net_->submit(addr_, dst, bytes);
}

void SimTransport::broadcast(std::uint16_t port,
                             std::span<const std::uint8_t> bytes) {
  ++stats_.packetsSent;
  stats_.bytesSent += bytes.size();
  stats_.framesSent += framesInDatagram(bytes);
  if (net_ != nullptr) net_->submitBroadcast(addr_, port, bytes);
}

std::optional<Datagram> SimTransport::receive() {
  if (inbox_.empty()) return std::nullopt;
  Datagram d = std::move(inbox_.front());
  inbox_.pop_front();
  return d;
}

}  // namespace cod::net
