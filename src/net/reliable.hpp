// Per-channel reliable delivery over unreliable datagrams.
//
// The CB's virtual channels are newest-wins by default (kBestEffort): a
// lost UPDATE is simply superseded by the next one, which is the right
// trade for 16 fps surround-view state. Exam scoring and instructor
// control traffic must never drop, so a channel can instead be opened as
// kReliableOrdered: the sender keeps a bounded window of already-encoded
// frames for retransmission, the receiver detects sequence gaps, NACKs
// the missing frames, buffers out-of-order arrivals, and releases them
// strictly in order.
//
// This header is transport-level machinery only — it moves opaque frames
// and sequence numbers and knows nothing about the CB message vocabulary.
// The CB owns the wire messages (kNack / kWindowAck in core/protocol.hpp)
// and drives these two classes from its datagram handlers and timers:
//
//   sender (one window per publication, frames shared across channels):
//     store() every reliable UPDATE frame once; NACKs and the
//     retransmit timeout (takeTailRetransmits) re-send from the window;
//     cumulative WindowAcks prune it.
//   receiver (one queue per reliable in-channel):
//     offer() each arriving frame; in-order frames come back immediately,
//     out-of-order frames are buffered until the gap heals;
//     collectNacks()/collectAck() tell the CB when to emit control
//     messages.
//
// Loss of the *last* frame of a burst produces no observable gap at the
// receiver, so NACKs alone cannot guarantee delivery; the sender-side
// retransmit timeout covers the tail.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "telemetry/hist.hpp"  // std-only header; no layering cycle

namespace cod::net {

/// Delivery guarantee of one virtual channel.
enum class QosClass : std::uint8_t {
  kBestEffort = 0,       // newest-wins; lost updates are superseded
  kReliableOrdered = 1,  // every update delivered, in publication order
};

const char* qosName(QosClass q);

/// What a byte-budgeted send window does when storing one more frame
/// would overrun its budget.
enum class OverflowPolicy : std::uint8_t {
  /// Evict the oldest buffered frame (the seed behavior): receivers that
  /// still miss it are told to skip, so overflow degrades to counted
  /// loss instead of livelock.
  kEvictOldest = 0,
  /// Refuse the update: updateAttributeValues returns false and the
  /// publisher must retry later. Nothing is ever dropped, at the price
  /// of head-of-line blocking the publisher itself.
  kBlockPublisher = 1,
  /// Evict the oldest frame AND proactively advertise the skip to every
  /// subscriber (publisher-side WINDOW_ACK), without waiting for a NACK
  /// round trip — the right trade for latest-value-semantics classes
  /// where a stale update is worthless the moment a newer one exists.
  kDegradeLatestValue = 2,
};

const char* overflowPolicyName(OverflowPolicy p);

/// Tunables of the reliable layer (CB config embeds one).
struct ReliableConfig {
  /// How long a gap must persist before the receiver NACKs it, and the
  /// minimum spacing between NACKs for the same channel. Should exceed
  /// typical jitter so plain reordering heals itself without traffic.
  double nackIntervalSec = 0.05;
  /// Sender-side retransmit timeout: an unacknowledged frame older than
  /// this is re-sent unprompted (covers tail loss, where the receiver
  /// never learns a gap exists).
  double retxTimeoutSec = 0.25;
  /// Cadence of cumulative WindowAcks from the receiver.
  double ackIntervalSec = 0.1;
  /// Retransmit buffer cap, frames per publication. Overflow evicts the
  /// oldest frame — receivers that still miss it are told to skip, so a
  /// too-small window degrades to counted loss instead of livelock.
  std::size_t sendWindowFrames = 512;
  /// Retransmit buffer cap in payload BYTES per window (0 = no byte
  /// budget, the seed behavior). Frame counts are a poor proxy for memory
  /// and for how long a laggard can pin the window when update sizes vary
  /// by 100x across classes; the byte budget bounds the real cost. What
  /// happens at the budget is overflowPolicy's call.
  std::size_t sendWindowBytes = 0;
  /// Policy applied when a store would overrun sendWindowFrames /
  /// sendWindowBytes. Per-publication overrides go through
  /// ReliableSendWindow::setOverflowPolicy.
  OverflowPolicy overflowPolicy = OverflowPolicy::kEvictOldest;
  /// Per-channel window split: a subscriber whose cumulative ack lags the
  /// shared window by splitLagFrames for splitSustainSec gets its own
  /// private send window, so it stops pinning the frames every healthy
  /// peer already acked. It re-merges after mergeSustainSec of staying
  /// caught up. Off (false) is wire- and behavior-identical to the seed.
  bool perChannelWindowSplit = false;
  std::size_t splitLagFrames = 64;
  double splitSustainSec = 0.5;
  double mergeSustainSec = 1.0;
  /// Receiver reorder buffer cap, frames per channel.
  std::size_t reorderLimit = 1024;
  /// Missing sequence numbers listed per NACK message.
  std::size_t maxNacksPerMessage = 64;
  /// Frames re-sent per retransmit-timeout sweep per publication.
  std::size_t maxRetransmitPerSweep = 32;
};

/// Counters for tests, benches and the instructor monitor.
struct ReliableStats {
  std::uint64_t framesBuffered = 0;      // sender: frames stored
  std::uint64_t framesPruned = 0;        // sender: acked and released
  std::uint64_t sendWindowEvictions = 0; // sender: overflow evictions
  /// Sender: frame re-sends, one per channel per re-send (NACK-driven via
  /// markSent; tail-RTO counted by the CB as it stages each channel).
  std::uint64_t retransmitsSent = 0;
  /// Sender: original (first-attempt) data frames staged on reliable
  /// channels, one per channel per update. With retransmitsSent this
  /// yields a loss estimate that needs no network omniscience: every
  /// lost attempt is eventually re-sent exactly once per loss, so
  /// retransmitsSent / (dataFramesSent + retransmitsSent) converges on
  /// the path's datagram loss rate — the only loss observable a real
  /// socket deployment has (transport.hpp: framesDropped stays 0 there).
  std::uint64_t dataFramesSent = 0;
  std::uint64_t nacksReceived = 0;       // sender side
  std::uint64_t windowAcksReceived = 0;  // sender side
  std::uint64_t nacksSent = 0;           // receiver side
  std::uint64_t windowAcksSent = 0;      // receiver side
  std::uint64_t outOfOrderBuffered = 0;  // receiver: held for a gap
  std::uint64_t gapsHealed = 0;          // receiver: released from buffer
  std::uint64_t duplicatesDropped = 0;   // receiver: seq already delivered
  std::uint64_t reorderOverflows = 0;    // receiver: buffer cap hit
  std::uint64_t gapsAbandoned = 0;       // receiver: skipped on sender's order
  /// Sender: updates refused under OverflowPolicy::kBlockPublisher (the
  /// publisher saw updateAttributeValues return false).
  std::uint64_t updatesBlocked = 0;
  /// Sender: proactive skip advertisements staged by the
  /// kDegradeLatestValue eviction path (one per channel per advance).
  std::uint64_t degradeSkipsSent = 0;
  /// Sender: per-channel window splits and re-merges.
  std::uint64_t windowSplits = 0;
  std::uint64_t windowMerges = 0;
  /// Sender: duplicates subscribers reported back via WINDOW_ACK dup
  /// blocks — retransmits that arrived after the original made it. The
  /// loss estimate subtracts them: a delivered-twice frame was never a
  /// network loss, just an ack that lost the race with the tail RTO.
  std::uint64_t peerDuplicatesReported = 0;
};

/// One data frame as the reliable layer sees it: an opaque payload with
/// the publication-global sequence number and sender timestamp.
struct ReliableFrame {
  std::uint64_t seq = 0;
  double timestamp = 0.0;
  std::vector<std::uint8_t> payload;
  /// End-to-end latency sampling (core/protocol.hpp trace tag): set when
  /// the UPDATE carried a tag. `tagSec` is the publisher-clock publish
  /// time (echoed back verbatim, never interpreted here); `arrivalSec` is
  /// the receiver-clock arrival time, so release minus arrival is the
  /// reorder-buffer hold.
  bool traced = false;
  double tagSec = 0.0;
  double arrivalSec = 0.0;
};

/// Sender half: a bounded window of already-encoded UPDATE frames, keyed
/// by sequence number. One window serves every reliable channel of a
/// publication — frames differ between channels only in the 4-byte
/// channel id, which the CB patches at (re)send time, so buffering stays
/// one copy per update, not one per channel.
class ReliableSendWindow {
 public:
  ReliableSendWindow(const ReliableConfig& cfg, ReliableStats& stats)
      : cfg_(&cfg), stats_(&stats), policy_(cfg.overflowPolicy) {}

  /// Buffer one encoded frame (copies; the live frame buffer is reused by
  /// the caller). Evicts the oldest frames beyond the frame cap and, when
  /// a byte budget is configured, beyond the byte budget.
  void store(std::uint64_t seq, std::vector<std::uint8_t> frame, double now);

  /// Would storing a frame of `frameBytes` overrun the window's frame cap
  /// or byte budget? The kBlockPublisher policy asks this BEFORE encoding
  /// and consuming a sequence number; the evicting policies never ask.
  bool wouldOverflow(std::size_t frameBytes) const;

  /// Per-window policy override (publications can choose; the config
  /// default applies until this is called).
  void setOverflowPolicy(OverflowPolicy p) { policy_ = p; }
  OverflowPolicy overflowPolicy() const { return policy_; }

  /// The stored frame for `seq`, or null if never stored / already
  /// pruned / evicted. Mutable so the caller can patch the channel id in
  /// place before re-sending.
  std::vector<std::uint8_t>* frame(std::uint64_t seq);

  /// Note that `seq` was just re-sent — restarts its retransmit timeout
  /// and counts one retransmit.
  void markSent(std::uint64_t seq, double now);

  /// Observe the delay between successive (re)transmissions of each frame
  /// in `hist` (telemetry's reliable.retxDelaySec). Not owned; null (the
  /// default) disables the observation.
  void attachRetransmitDelayHistogram(telemetry::LogHistogram* hist) {
    retxDelayHist_ = hist;
  }

  /// Restart `seq`'s retransmit timeout WITHOUT counting a retransmit:
  /// the first transmission of a frame that was window-buffered while its
  /// channel's QoS was unconfirmed goes through the retransmit plumbing
  /// but is data, not a re-send — counting it as one would bias the
  /// reliable-layer loss estimate.
  void touchSent(std::uint64_t seq, double now);

  /// Drop every frame with seq <= `throughSeq` (cumulatively acked by all
  /// reliable channels).
  void pruneThrough(std::uint64_t throughSeq);

  /// Frames unacked beyond the retransmit timeout, oldest first, capped
  /// at maxRetransmitPerSweep. `minUnacked` is the smallest sequence any
  /// live channel still waits for. Marks the returned frames sent.
  std::vector<std::uint64_t> takeTailRetransmits(std::uint64_t minUnacked,
                                                 double now);

  /// Highest sequence ever evicted by overflow (0 if none): receivers
  /// NACKing at or below it must be told to skip.
  std::uint64_t highestEvicted() const { return highestEvicted_; }
  std::uint64_t highestStored() const { return highestStored_; }
  /// Oldest sequence still buffered (0 when empty) — the split path's
  /// merge precondition: a laggard may rejoin the shared window only if
  /// everything it might still NACK is retained there.
  std::uint64_t lowestStored() const {
    return frames_.empty() ? 0 : frames_.begin()->first;
  }
  /// Stored sequences strictly above `afterSeq`, ascending — the split
  /// path seeds a laggard's private window from the shared one.
  std::vector<std::uint64_t> storedSeqsAbove(std::uint64_t afterSeq) const;
  std::size_t size() const { return frames_.size(); }
  std::size_t bytesBuffered() const { return bytesBuffered_; }
  bool empty() const { return frames_.empty(); }
  void clear() {
    frames_.clear();
    bytesBuffered_ = 0;
  }

 private:
  struct Entry {
    std::vector<std::uint8_t> frame;
    double lastSentSec = 0.0;
  };

  void evictOldest();

  const ReliableConfig* cfg_;
  ReliableStats* stats_;
  telemetry::LogHistogram* retxDelayHist_ = nullptr;
  std::map<std::uint64_t, Entry> frames_;
  std::uint64_t highestEvicted_ = 0;
  std::uint64_t highestStored_ = 0;
  std::size_t bytesBuffered_ = 0;
  OverflowPolicy policy_ = OverflowPolicy::kEvictOldest;
};

/// Receiver half: gap detection, NACK scheduling and in-order release for
/// one reliable in-channel.
///
/// Sequence numbers are publication-global, so a channel opened mid-stream
/// must learn its base — the first sequence it is owed — from the
/// publisher's CHANNEL_ACK. Frames arriving before the base is known are
/// buffered, never delivered or NACKed (their gaps cannot be told from
/// history that predates the channel).
class ReliableReceiveQueue {
 public:
  ReliableReceiveQueue(const ReliableConfig& cfg, ReliableStats& stats)
      : cfg_(&cfg), stats_(&stats) {}

  /// Learn the channel's base sequence (idempotent; only the first call
  /// takes effect). Frames already buffered at or above the base become
  /// releasable and are appended to `ready` in order.
  void setBase(std::uint64_t firstSeq, std::vector<ReliableFrame>& ready);
  bool baseKnown() const { return baseKnown_; }

  enum class Offer : std::uint8_t {
    kDelivered,  // appended to `ready` (possibly with healed successors)
    kBuffered,   // out of order or pre-base; held
    kDuplicate,  // already delivered
    kOverflow,   // reorder buffer full; frame dropped (will be NACKed)
  };

  /// Feed one arriving frame; releasable frames (this one and any healed
  /// successors) are appended to `ready` strictly in sequence order.
  Offer offer(ReliableFrame frame, std::vector<ReliableFrame>& ready);

  /// Sender declared frames <= `throughSeq` unrecoverable (evicted from
  /// its window): skip them so the stream can resume. Releasable buffered
  /// frames are appended to `ready`. Returns how many sequences were
  /// abandoned.
  std::uint64_t abandonThrough(std::uint64_t throughSeq,
                               std::vector<ReliableFrame>& ready);

  /// Missing sequence numbers to NACK now (empty if no gap has persisted
  /// for nackIntervalSec or a NACK went out more recently than that).
  /// Each hole is aged individually, so a fresh hole opened while an
  /// older gap is outstanding still gets its full jitter-healing grace
  /// before it is NACKed. Caps at maxNacksPerMessage.
  std::vector<std::uint64_t> collectNacks(double now);

  /// Cumulative sequence to acknowledge now, if an ack is due (progress
  /// was made, or duplicates suggest the sender missed the last ack).
  std::optional<std::uint64_t> collectAck(double now);

  /// Cumulative sequence to piggyback on a keep-alive that is leaving
  /// anyway (the CB batches it into the same heartbeat datagram). Unlike
  /// collectAck it ignores the pacing interval and the progress flag — the
  /// marginal cost of riding along is a few bytes — and it stamps the
  /// pacing clock, so the separate ack that would have followed is
  /// absorbed. nullopt until the base is known.
  std::optional<std::uint64_t> piggybackAck(double now);

  /// Next sequence owed to the subscriber (0 while the base is unknown).
  std::uint64_t nextExpected() const { return nextExpected_; }
  std::uint64_t maxSeen() const { return maxSeen_; }
  std::size_t buffered() const { return buffer_.size(); }
  /// Cumulative duplicates dropped on THIS channel — reported back to the
  /// publisher in WINDOW_ACK dup blocks so its loss estimate can subtract
  /// retransmits that were delivered twice rather than lost.
  std::uint64_t duplicatesDropped() const { return duplicatesDropped_; }

 private:
  void release(std::vector<ReliableFrame>& ready);

  const ReliableConfig* cfg_;
  ReliableStats* stats_;
  std::map<std::uint64_t, ReliableFrame> buffer_;
  /// When each currently-missing sequence was first observed missing,
  /// maintained lazily by collectNacks (healed holes are dropped).
  std::map<std::uint64_t, double> missingSince_;
  bool baseKnown_ = false;
  std::uint64_t nextExpected_ = 0;
  std::uint64_t maxSeen_ = 0;
  std::uint64_t duplicatesDropped_ = 0;
  double lastNackSec_ = -1e300;
  double lastAckSec_ = -1e300;
  bool ackDue_ = false;
};

}  // namespace cod::net
