#include "net/wire.hpp"

namespace cod::net {

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(std::string_view s) {
  const std::size_t n = s.size() > 0xFFFF ? 0xFFFF : s.size();
  u16(static_cast<std::uint16_t>(n));
  buf_.insert(buf_.end(), s.begin(), s.begin() + static_cast<long>(n));
}

void WireWriter::blob(std::span<const std::uint8_t> bytes) {
  u32(static_cast<std::uint32_t>(bytes.size()));
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void WireWriter::raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::size_t WireWriter::beginBlob() {
  const std::size_t blobStart = buf_.size();
  u32(0);  // placeholder; endBlob backpatches the real length
  return blobStart;
}

void WireWriter::endBlob(std::size_t blobStart) {
  const std::size_t contentLen = buf_.size() - blobStart - 4;
  const std::uint32_t n = static_cast<std::uint32_t>(contentLen);
  for (int i = 0; i < 4; ++i)
    buf_[blobStart + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((n >> (8 * i)) & 0xFF);
}

bool WireReader::take(std::size_t n, const std::uint8_t** out) {
  if (!ok_ || pos_ + n > buf_.size()) {
    ok_ = false;
    return false;
  }
  *out = buf_.data() + pos_;
  pos_ += n;
  return true;
}

std::optional<std::uint8_t> WireReader::u8() {
  const std::uint8_t* p = nullptr;
  if (!take(1, &p)) return std::nullopt;
  return *p;
}

std::optional<std::uint16_t> WireReader::u16() {
  const std::uint8_t* p = nullptr;
  if (!take(2, &p)) return std::nullopt;
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::optional<std::uint32_t> WireReader::u32() {
  const std::uint8_t* p = nullptr;
  if (!take(4, &p)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::optional<std::uint64_t> WireReader::u64() {
  const std::uint8_t* p = nullptr;
  if (!take(8, &p)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::optional<std::int32_t> WireReader::i32() {
  auto v = u32();
  if (!v) return std::nullopt;
  return static_cast<std::int32_t>(*v);
}

std::optional<std::int64_t> WireReader::i64() {
  auto v = u64();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<double> WireReader::f64() {
  auto bits = u64();
  if (!bits) return std::nullopt;
  double v;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

std::optional<bool> WireReader::boolean() {
  auto v = u8();
  if (!v) return std::nullopt;
  return *v != 0;
}

std::optional<std::string> WireReader::str() {
  auto n = u16();
  if (!n) return std::nullopt;
  const std::uint8_t* p = nullptr;
  if (!take(*n, &p)) return std::nullopt;
  return std::string(reinterpret_cast<const char*>(p), *n);
}

std::optional<std::vector<std::uint8_t>> WireReader::blob() {
  auto s = blobSpan();
  if (!s) return std::nullopt;
  return std::vector<std::uint8_t>(s->begin(), s->end());
}

std::optional<std::span<const std::uint8_t>> WireReader::blobSpan() {
  auto n = u32();
  if (!n) return std::nullopt;
  if (*n > remaining()) {
    ok_ = false;
    return std::nullopt;
  }
  const std::uint8_t* p = nullptr;
  if (!take(*n, &p)) return std::nullopt;
  return std::span<const std::uint8_t>(p, *n);
}

}  // namespace cod::net
