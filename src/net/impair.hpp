// Userspace network impairment on real sockets.
//
// CI cannot `tc netem` the loopback interface, so the multi-process soak
// harness injects loss, duplication, reordering and delay itself:
// ImpairedTransport decorates any Transport (in practice UdpTransport) and
// applies a seeded impairment model on the *send* side, before bytes reach
// the real socket. Everything above it — CB, reliable layer, telemetry —
// sees a genuinely lossy network with none of the omniscience SimNetwork
// has: a dropped datagram is simply never sent, the transport's stats
// cannot attribute it, and loss is observable only through the reliable
// layer's NACK/retransmit counters (exactly the real-deployment contract
// that transport.hpp documents for framesDropped).
//
// Delayed and reordered datagrams are parked in a release-time queue that
// is pumped on every send/receive call — the CB polls receive() at least
// once per tick, which bounds the added release jitter by the tick period.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "math/rng.hpp"
#include "net/transport.hpp"

namespace cod::net {

/// Impairment model, applied per outbound datagram. Percentages are
/// 0..100 (not 0..1) so command-line flags read naturally.
struct ImpairmentConfig {
  /// Probability a datagram is silently dropped, %.
  double lossPct = 0.0;
  /// Probability a datagram is sent twice (second copy after
  /// `reorderHoldSec`), %.
  double duplicatePct = 0.0;
  /// Probability a datagram is held back `reorderHoldSec` so datagrams
  /// sent after it overtake it on the wire, %.
  double reorderPct = 0.0;
  /// Fixed extra one-way latency applied to every datagram, seconds.
  /// 0 sends immediately (plus any reorder hold).
  double delayMinSec = 0.0;
  /// Upper bound of uniform extra jitter on top of delayMinSec, seconds.
  double delayMaxSec = 0.0;
  /// How long a reordered (or duplicated) datagram is held, seconds.
  double reorderHoldSec = 0.02;
  /// Also apply loss and delay (not reordering/duplication) to INBOUND
  /// datagrams, making the impairment duplex. Send-side-only models a
  /// congested uplink; duplex models a node whose whole link is bad —
  /// the starved-node soak drill. An inbound drop is as invisible to the
  /// layers above as real network loss: the datagram simply never
  /// arrives.
  bool impairReceive = false;
  std::uint64_t seed = 1;
};

/// Ground truth of what the impairment layer did — the soak driver's
/// reference when it checks that protocol-derived loss estimates track
/// the injected rate. Deliberately NOT part of TransportStats: nothing
/// above the transport may read these to "attribute" loss.
struct ImpairmentStats {
  std::uint64_t offered = 0;     // datagrams entering the layer
  std::uint64_t dropped = 0;     // never sent
  std::uint64_t duplicated = 0;  // extra copies enqueued
  std::uint64_t reordered = 0;   // held for overtaking
  std::uint64_t delayed = 0;     // entered the release queue at all
  std::uint64_t offeredRx = 0;   // inbound datagrams (impairReceive only)
  std::uint64_t droppedRx = 0;   // inbound datagrams never delivered up
  double injectedLossPct() const {
    return offered == 0
               ? 0.0
               : 100.0 * static_cast<double>(dropped) /
                     static_cast<double>(offered);
  }
};

class ImpairedTransport final : public Transport {
 public:
  /// Monotonic seconds; injectable so unit tests control time. Defaults
  /// to std::chrono::steady_clock (the soak harness runs on wall clock).
  using Clock = std::function<double()>;

  ImpairedTransport(std::unique_ptr<Transport> inner, ImpairmentConfig cfg,
                    Clock clock = {});

  NodeAddr localAddress() const override { return inner_->localAddress(); }
  void send(const NodeAddr& dst, std::span<const std::uint8_t> bytes) override;
  /// Broadcast is impaired as one event (one loss roll for the whole
  /// fan-out): discovery broadcasts are retried on a timer anyway, and a
  /// per-receiver roll would need the address plan this decorator does
  /// not know.
  void broadcast(std::uint16_t port,
                 std::span<const std::uint8_t> bytes) override;
  std::optional<Datagram> receive() override;

  /// The inner transport's counters — the impairment layer adds none of
  /// its own here (see ImpairmentStats).
  const TransportStats* stats() const override { return inner_->stats(); }

  /// Forwarded so the async engine's recv thread can park on the real
  /// socket underneath the impairment layer.
  int pollableFd() const override { return inner_->pollableFd(); }

  /// Snapshot by value: the engine threads mutate these under mu_ while
  /// the tick thread reads them.
  ImpairmentStats impairmentStats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  Transport& inner() { return *inner_; }

  /// Release every held datagram whose time has come. Called internally
  /// by send/receive; exposed for tests and drain-at-shutdown.
  void pump();
  /// Held datagrams not yet released (outbound and delayed inbound).
  std::size_t heldCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size() + rxQueue_.size();
  }

 private:
  struct Held {
    double dueSec = 0.0;
    std::uint64_t order = 0;  // FIFO tie-break for equal due times
    bool isBroadcast = false;
    NodeAddr dst;
    std::uint16_t port = 0;
    std::vector<std::uint8_t> bytes;
    bool operator>(const Held& o) const {
      if (dueSec != o.dueSec) return dueSec > o.dueSec;
      return order > o.order;
    }
  };

  /// Roll the model for one datagram; forwards now or enqueues copies.
  void offer(bool isBroadcast, const NodeAddr& dst, std::uint16_t port,
             std::span<const std::uint8_t> bytes);
  void forward(const Held& h);
  void hold(bool isBroadcast, const NodeAddr& dst, std::uint16_t port,
            std::span<const std::uint8_t> bytes, double dueSec);
  /// pump() body without the lock, for internal callers already holding
  /// mu_ (the public pump() would self-deadlock).
  void pumpLocked();

  /// A delayed inbound datagram waiting out its extra latency.
  struct HeldRx {
    double dueSec = 0.0;
    std::uint64_t order = 0;
    Datagram dgram;
    bool operator>(const HeldRx& o) const {
      if (dueSec != o.dueSec) return dueSec > o.dueSec;
      return order > o.order;
    }
  };

  std::unique_ptr<Transport> inner_;
  ImpairmentConfig cfg_;
  Clock clock_;
  /// Serializes the whole decorator — release queues, the shared Rng,
  /// and (because calls into inner_ happen under it) the inner socket's
  /// stats counters. The async engine's recv and send threads both go
  /// through this transport concurrently; without the lock the seeded
  /// impairment model would be racy and nondeterministic.
  mutable std::mutex mu_;
  math::Rng rng_;
  ImpairmentStats stats_;
  std::priority_queue<Held, std::vector<Held>, std::greater<Held>> queue_;
  std::priority_queue<HeldRx, std::vector<HeldRx>, std::greater<HeldRx>>
      rxQueue_;
  std::uint64_t nextOrder_ = 0;
};

}  // namespace cod::net
