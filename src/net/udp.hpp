// Real-socket transport: UDP over loopback (or a real LAN).
//
// The COD address space (HostId, port) is mapped onto real UDP ports:
//   udpPort = basePort + host * portsPerHost + port
// so a whole simulated "rack" of computers can run as one or many OS
// processes on 127.0.0.1. LAN broadcast is emulated by unicasting to every
// host slot, which preserves the CB discovery protocol's semantics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/transport.hpp"

namespace cod::net {

/// Address-mapping scheme shared by all endpoints of one deployment.
struct UdpConfig {
  std::string bindIp = "127.0.0.1";
  std::uint16_t basePort = 47000;
  std::uint16_t portsPerHost = 32;
  std::uint16_t maxHosts = 16;
  /// Optional per-host interface map: host h binds and is reached at
  /// hostIps[h] when h < hostIps.size(), falling back to bindIp. One
  /// address plan can then span several loopback aliases (127.0.0.1 /
  /// 127.0.0.2) or real interfaces. UDP ports stay globally unique
  /// across the plan (basePort + host*portsPerHost + port regardless of
  /// IP), so the source port alone still identifies the sender.
  std::vector<std::string> hostIps;
};

/// Reserve a collision-free base port for a `slots`-wide address plan by
/// binding port 0 and reading back the kernel-assigned port — never by
/// picking a constant. Fixed base ports collide the moment two test lanes
/// (or a test and a soak run) share a machine; the kernel's ephemeral
/// allocator hands out a port that is free *now*, and the remaining
/// `slots - 1` ports of the plan are probe-bound before the base is
/// accepted, so the whole range was observably free at once. Retries with
/// a fresh kernel port when the range is torn; throws std::system_error
/// after `attempts` failures.
std::uint16_t pickEphemeralBasePort(std::uint16_t slots,
                                    const std::string& bindIp = "127.0.0.1",
                                    int attempts = 16);

/// A non-blocking UDP socket implementing the Transport interface.
class UdpTransport final : public Transport {
 public:
  /// Binds immediately; throws std::system_error on failure.
  UdpTransport(const UdpConfig& cfg, HostId host, std::uint16_t port);
  ~UdpTransport() override;

  NodeAddr localAddress() const override { return addr_; }
  void send(const NodeAddr& dst, std::span<const std::uint8_t> bytes) override;
  void broadcast(std::uint16_t port, std::span<const std::uint8_t> bytes) override;
  std::optional<Datagram> receive() override;

  /// Native scatter-gather: one sendmsg(2) with an iovec per part — the
  /// batch flush's container header and staged frame spans go to the
  /// kernel without being linearized first.
  void sendv(const NodeAddr& dst, std::span<const ByteSpan> parts) override;
  /// One sendmmsg(2) syscall per burst of up to kMmsgBurst datagrams
  /// (plain send() loop when mmsg is unavailable or disabled).
  void sendMany(std::span<const OutDatagram> dgrams) override;
  /// One recvmmsg(2) syscall per burst (single-recv loop fallback).
  /// Delivery order is identical either way — pinned by the mmsg
  /// equivalence test in tests/test_net_engine.cpp.
  std::size_t receiveBatch(std::span<Datagram> out) override;
  int pollableFd() const override { return fd_; }

  const TransportStats* stats() const override { return &stats_; }

  /// Runtime switch for the recvmmsg/sendmmsg fast paths (default on
  /// where the platform has them). Off forces the portable
  /// one-syscall-per-datagram paths; the equivalence test runs both and
  /// requires identical frame sequences.
  void useMmsgSyscalls(bool on) { useMmsg_ = on; }
  bool mmsgActive() const;

  /// The UDP port this socket is actually bound to, read back from the
  /// kernel (getsockname) rather than recomputed from the address plan.
  std::uint16_t boundUdpPort() const;

  /// Datagrams per mmsg syscall burst.
  static constexpr std::size_t kMmsgBurst = 32;

 private:
  std::uint16_t udpPortFor(const NodeAddr& a) const;
  std::optional<NodeAddr> addrForUdpPort(std::uint16_t udpPort) const;
  const std::string& ipForHost(HostId h) const;
  void toSockaddr(const NodeAddr& a, void* sa) const;
  void countSent(std::size_t bytes, std::uint32_t frames);

  UdpConfig cfg_;
  NodeAddr addr_;
  int fd_ = -1;
  bool useMmsg_ = true;
  TransportStats stats_;
  /// recvmmsg burst buffers, kMmsgBurst x 64 KiB, allocated on first
  /// receiveBatch() so synchronous-only users never pay for them.
  std::vector<std::uint8_t> recvBufs_;
};

}  // namespace cod::net
