// Real-socket transport: UDP over loopback (or a real LAN).
//
// The COD address space (HostId, port) is mapped onto real UDP ports:
//   udpPort = basePort + host * portsPerHost + port
// so a whole simulated "rack" of computers can run as one or many OS
// processes on 127.0.0.1. LAN broadcast is emulated by unicasting to every
// host slot, which preserves the CB discovery protocol's semantics.
#pragma once

#include <memory>
#include <string>

#include "net/transport.hpp"

namespace cod::net {

/// Address-mapping scheme shared by all endpoints of one deployment.
struct UdpConfig {
  std::string bindIp = "127.0.0.1";
  std::uint16_t basePort = 47000;
  std::uint16_t portsPerHost = 32;
  std::uint16_t maxHosts = 16;
};

/// A non-blocking UDP socket implementing the Transport interface.
class UdpTransport final : public Transport {
 public:
  /// Binds immediately; throws std::system_error on failure.
  UdpTransport(const UdpConfig& cfg, HostId host, std::uint16_t port);
  ~UdpTransport() override;

  NodeAddr localAddress() const override { return addr_; }
  void send(const NodeAddr& dst, std::span<const std::uint8_t> bytes) override;
  void broadcast(std::uint16_t port, std::span<const std::uint8_t> bytes) override;
  std::optional<Datagram> receive() override;

  const TransportStats* stats() const override { return &stats_; }

 private:
  std::uint16_t udpPortFor(const NodeAddr& a) const;
  std::optional<NodeAddr> addrForUdpPort(std::uint16_t udpPort) const;

  UdpConfig cfg_;
  NodeAddr addr_;
  int fd_ = -1;
  TransportStats stats_;
};

}  // namespace cod::net
