// Byte-order-safe wire serialization.
//
// Every CB protocol message and attribute value crosses host boundaries in
// the COD cluster, so encoding is explicit little-endian regardless of the
// host architecture.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cod::net {

/// Append-only encoder producing a byte buffer.
class WireWriter {
 public:
  WireWriter() = default;
  /// Write into `reuse`'s storage: the vector is cleared but keeps its
  /// capacity, so per-frame heap churn vanishes on encode-heavy paths.
  explicit WireWriter(std::vector<std::uint8_t>&& reuse)
      : buf_(std::move(reuse)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed UTF-8 string (u16 length).
  void str(std::string_view s);
  /// Length-prefixed opaque blob (u32 length).
  void blob(std::span<const std::uint8_t> bytes);
  /// Raw bytes, no length prefix.
  void raw(std::span<const std::uint8_t> bytes);

  /// Start a length-prefixed blob whose content is written in place (no
  /// intermediate buffer): reserves the u32 length slot and returns its
  /// offset. Write the content with ordinary writer calls, then call
  /// endBlob() with the returned offset to backpatch the length. Produces
  /// bytes identical to blob() over the same content.
  std::size_t beginBlob();
  void endBlob(std::size_t blobStart);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Checked decoder over a byte span. All reads return nullopt once the
/// buffer is exhausted or malformed; `ok()` stays false thereafter.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : buf_(bytes) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int32_t> i32();
  std::optional<std::int64_t> i64();
  std::optional<double> f64();
  std::optional<bool> boolean();
  std::optional<std::string> str();
  std::optional<std::vector<std::uint8_t>> blob();
  /// Like blob(), but returns a view into the underlying buffer instead of
  /// copying — the receive path of container datagrams (kBatch) walks its
  /// length-prefixed sub-frames with this, decoding each in place.
  std::optional<std::span<const std::uint8_t>> blobSpan();

  bool ok() const { return ok_; }
  std::size_t remaining() const { return buf_.size() - pos_; }
  bool atEnd() const { return pos_ == buf_.size(); }

 private:
  bool take(std::size_t n, const std::uint8_t** out);

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace cod::net
