#include "net/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <vector>

namespace cod::net {

namespace {

/// Bind one probe socket on `ip`:`port` (0 = kernel-assigned). Returns the
/// fd (caller closes) and writes the bound port back, or -1 on failure.
int bindProbe(const std::string& ip, std::uint16_t port,
              std::uint16_t& boundPort) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, ip.c_str(), &sa.sin_addr) != 1 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    return -1;
  }
  boundPort = ntohs(bound.sin_port);
  return fd;
}

}  // namespace

std::uint16_t pickEphemeralBasePort(std::uint16_t slots,
                                    const std::string& bindIp, int attempts) {
  for (int attempt = 0; attempt < attempts; ++attempt) {
    std::uint16_t base = 0;
    const int baseFd = bindProbe(bindIp, 0, base);
    if (baseFd < 0)
      throw std::system_error(errno, std::generic_category(),
                              "pickEphemeralBasePort: probe bind");
    std::vector<int> probes{baseFd};
    bool rangeFree = base != 0 && 65535 - base >= slots - 1;
    for (std::uint16_t i = 1; rangeFree && i < slots; ++i) {
      std::uint16_t got = 0;
      const int fd =
          bindProbe(bindIp, static_cast<std::uint16_t>(base + i), got);
      if (fd < 0) {
        rangeFree = false;
      } else {
        probes.push_back(fd);
      }
    }
    for (const int fd : probes) ::close(fd);
    if (rangeFree) return base;
  }
  throw std::system_error(EADDRINUSE, std::generic_category(),
                          "pickEphemeralBasePort: no free port range");
}

UdpTransport::UdpTransport(const UdpConfig& cfg, HostId host,
                           std::uint16_t port)
    : cfg_(cfg), addr_{host, port} {
  if (host >= cfg.maxHosts)
    throw std::out_of_range("UdpTransport: host id exceeds maxHosts");
  if (port >= cfg.portsPerHost)
    throw std::out_of_range("UdpTransport: port exceeds portsPerHost");

  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::system_error(errno, std::generic_category(), "socket");

  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(udpPortFor(addr_));
  if (::inet_pton(AF_INET, ipForHost(host).c_str(), &sa.sin_addr) != 1) {
    ::close(fd_);
    throw std::invalid_argument("UdpTransport: bad bind IP");
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    const int err = errno;
    ::close(fd_);
    throw std::system_error(err, std::generic_category(), "bind");
  }
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint16_t UdpTransport::boundUdpPort() const {
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0)
    return 0;
  return ntohs(bound.sin_port);
}

std::uint16_t UdpTransport::udpPortFor(const NodeAddr& a) const {
  return static_cast<std::uint16_t>(cfg_.basePort + a.host * cfg_.portsPerHost +
                                    a.port);
}

const std::string& UdpTransport::ipForHost(HostId h) const {
  return h < cfg_.hostIps.size() ? cfg_.hostIps[h] : cfg_.bindIp;
}

std::optional<NodeAddr> UdpTransport::addrForUdpPort(
    std::uint16_t udpPort) const {
  if (udpPort < cfg_.basePort) return std::nullopt;
  const std::uint16_t off = static_cast<std::uint16_t>(udpPort - cfg_.basePort);
  const NodeAddr a{static_cast<HostId>(off / cfg_.portsPerHost),
                   static_cast<std::uint16_t>(off % cfg_.portsPerHost)};
  if (a.host >= cfg_.maxHosts) return std::nullopt;
  return a;
}

void UdpTransport::send(const NodeAddr& dst,
                        std::span<const std::uint8_t> bytes) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(udpPortFor(dst));
  ::inet_pton(AF_INET, ipForHost(dst.host).c_str(), &sa.sin_addr);
  const ssize_t n =
      ::sendto(fd_, bytes.data(), bytes.size(), 0,
               reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (n >= 0) {
    ++stats_.packetsSent;
    stats_.bytesSent += bytes.size();
    stats_.framesSent += framesInDatagram(bytes);
  } else {
    // Local sendto() failure (e.g. ENOBUFS). Not framesDropped: that
    // counter means *inbound* loss to the telemetry monitor, and a real
    // socket cannot attribute network loss at all (transport.hpp).
    ++stats_.packetsDropped;
  }
}

void UdpTransport::broadcast(std::uint16_t port,
                             std::span<const std::uint8_t> bytes) {
  // Emulated LAN broadcast: unicast to the same CB port on every host slot.
  for (HostId h = 0; h < cfg_.maxHosts; ++h) {
    const NodeAddr dst{h, port};
    if (dst == addr_) continue;
    send(dst, bytes);
  }
}

std::optional<Datagram> UdpTransport::receive() {
  std::uint8_t buf[65536];
  sockaddr_in from{};
  socklen_t fromLen = sizeof(from);
  const ssize_t n = ::recvfrom(fd_, buf, sizeof(buf), 0,
                               reinterpret_cast<sockaddr*>(&from), &fromLen);
  if (n < 0) return std::nullopt;  // EWOULDBLOCK or transient error: no data
  const auto src = addrForUdpPort(ntohs(from.sin_port));
  if (!src) return std::nullopt;  // datagram from outside our address plan
  Datagram d;
  d.src = *src;
  d.dst = addr_;
  d.payload.assign(buf, buf + n);
  ++stats_.packetsReceived;
  stats_.bytesReceived += d.payload.size();
  stats_.framesReceived += framesInDatagram(d.payload);
  return d;
}

}  // namespace cod::net
