#include "net/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <vector>

namespace cod::net {

namespace {

/// Bind one probe socket on `ip`:`port` (0 = kernel-assigned). Returns the
/// fd (caller closes) and writes the bound port back, or -1 on failure.
int bindProbe(const std::string& ip, std::uint16_t port,
              std::uint16_t& boundPort) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, ip.c_str(), &sa.sin_addr) != 1 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    return -1;
  }
  boundPort = ntohs(bound.sin_port);
  return fd;
}

}  // namespace

std::uint16_t pickEphemeralBasePort(std::uint16_t slots,
                                    const std::string& bindIp, int attempts) {
  for (int attempt = 0; attempt < attempts; ++attempt) {
    std::uint16_t base = 0;
    const int baseFd = bindProbe(bindIp, 0, base);
    if (baseFd < 0)
      throw std::system_error(errno, std::generic_category(),
                              "pickEphemeralBasePort: probe bind");
    std::vector<int> probes{baseFd};
    bool rangeFree = base != 0 && 65535 - base >= slots - 1;
    for (std::uint16_t i = 1; rangeFree && i < slots; ++i) {
      std::uint16_t got = 0;
      const int fd =
          bindProbe(bindIp, static_cast<std::uint16_t>(base + i), got);
      if (fd < 0) {
        rangeFree = false;
      } else {
        probes.push_back(fd);
      }
    }
    for (const int fd : probes) ::close(fd);
    if (rangeFree) return base;
  }
  throw std::system_error(EADDRINUSE, std::generic_category(),
                          "pickEphemeralBasePort: no free port range");
}

UdpTransport::UdpTransport(const UdpConfig& cfg, HostId host,
                           std::uint16_t port)
    : cfg_(cfg), addr_{host, port} {
  if (host >= cfg.maxHosts)
    throw std::out_of_range("UdpTransport: host id exceeds maxHosts");
  if (port >= cfg.portsPerHost)
    throw std::out_of_range("UdpTransport: port exceeds portsPerHost");

  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::system_error(errno, std::generic_category(), "socket");

  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(udpPortFor(addr_));
  if (::inet_pton(AF_INET, ipForHost(host).c_str(), &sa.sin_addr) != 1) {
    ::close(fd_);
    throw std::invalid_argument("UdpTransport: bad bind IP");
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    const int err = errno;
    ::close(fd_);
    throw std::system_error(err, std::generic_category(), "bind");
  }
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint16_t UdpTransport::boundUdpPort() const {
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0)
    return 0;
  return ntohs(bound.sin_port);
}

std::uint16_t UdpTransport::udpPortFor(const NodeAddr& a) const {
  return static_cast<std::uint16_t>(cfg_.basePort + a.host * cfg_.portsPerHost +
                                    a.port);
}

const std::string& UdpTransport::ipForHost(HostId h) const {
  return h < cfg_.hostIps.size() ? cfg_.hostIps[h] : cfg_.bindIp;
}

std::optional<NodeAddr> UdpTransport::addrForUdpPort(
    std::uint16_t udpPort) const {
  if (udpPort < cfg_.basePort) return std::nullopt;
  const std::uint16_t off = static_cast<std::uint16_t>(udpPort - cfg_.basePort);
  const NodeAddr a{static_cast<HostId>(off / cfg_.portsPerHost),
                   static_cast<std::uint16_t>(off % cfg_.portsPerHost)};
  if (a.host >= cfg_.maxHosts) return std::nullopt;
  return a;
}

void UdpTransport::toSockaddr(const NodeAddr& a, void* out) const {
  auto* sa = static_cast<sockaddr_in*>(out);
  std::memset(sa, 0, sizeof(*sa));
  sa->sin_family = AF_INET;
  sa->sin_port = htons(udpPortFor(a));
  ::inet_pton(AF_INET, ipForHost(a.host).c_str(), &sa->sin_addr);
}

void UdpTransport::countSent(std::size_t bytes, std::uint32_t frames) {
  ++stats_.packetsSent;
  stats_.bytesSent += bytes;
  stats_.framesSent += frames;
}

void UdpTransport::send(const NodeAddr& dst,
                        std::span<const std::uint8_t> bytes) {
  sockaddr_in sa;
  toSockaddr(dst, &sa);
  const ssize_t n =
      ::sendto(fd_, bytes.data(), bytes.size(), 0,
               reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (n >= 0) {
    countSent(bytes.size(), framesInDatagram(bytes));
  } else {
    // Local sendto() failure (e.g. ENOBUFS). Not framesDropped: that
    // counter means *inbound* loss to the telemetry monitor, and a real
    // socket cannot attribute network loss at all (transport.hpp).
    ++stats_.packetsDropped;
  }
}

void UdpTransport::sendv(const NodeAddr& dst,
                         std::span<const ByteSpan> parts) {
  constexpr std::size_t kMaxIov = 64;
  if (parts.size() > kMaxIov) {
    // A container with hundreds of spans exceeds the stack iovec array;
    // fall back to the gather-copy path rather than chase IOV_MAX.
    Transport::sendv(dst, parts);
    return;
  }
  iovec iov[kMaxIov];
  std::size_t total = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    iov[i].iov_base = const_cast<std::uint8_t*>(parts[i].data());
    iov[i].iov_len = parts[i].size();
    total += parts[i].size();
  }
  sockaddr_in sa;
  toSockaddr(dst, &sa);
  msghdr msg{};
  msg.msg_name = &sa;
  msg.msg_namelen = sizeof(sa);
  msg.msg_iov = iov;
  msg.msg_iovlen = parts.size();
  const ssize_t n = ::sendmsg(fd_, &msg, 0);
  if (n >= 0) {
    // frames: peek the first 3 bytes across parts (the container header
    // span is at least that long in practice; runts count as one frame).
    std::uint8_t head[3];
    std::size_t got = 0;
    for (const ByteSpan p : parts) {
      for (std::size_t i = 0; i < p.size() && got < 3; ++i) head[got++] = p[i];
      if (got == 3) break;
    }
    countSent(total, framesInDatagram({head, got}));
  } else {
    ++stats_.packetsDropped;
  }
}

bool UdpTransport::mmsgActive() const {
#ifdef __linux__
  return useMmsg_;
#else
  return false;
#endif
}

void UdpTransport::sendMany(std::span<const OutDatagram> dgrams) {
#ifdef __linux__
  if (useMmsg_) {
    std::size_t done = 0;
    while (done < dgrams.size()) {
      const std::size_t n = std::min(kMmsgBurst, dgrams.size() - done);
      mmsghdr msgs[kMmsgBurst];
      iovec iov[kMmsgBurst];
      sockaddr_in sas[kMmsgBurst];
      std::memset(msgs, 0, n * sizeof(mmsghdr));
      for (std::size_t i = 0; i < n; ++i) {
        const OutDatagram& d = dgrams[done + i];
        iov[i].iov_base = const_cast<std::uint8_t*>(d.bytes.data());
        iov[i].iov_len = d.bytes.size();
        toSockaddr(d.dst, &sas[i]);
        msgs[i].msg_hdr.msg_name = &sas[i];
        msgs[i].msg_hdr.msg_namelen = sizeof(sas[i]);
        msgs[i].msg_hdr.msg_iov = &iov[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
      }
      const int sent =
          ::sendmmsg(fd_, msgs, static_cast<unsigned int>(n), 0);
      if (sent <= 0) {
        // First pending datagram failed (ENOBUFS and kin): count it
        // dropped — datagrams are independent, exactly as in send() —
        // and keep going with the rest of the burst.
        ++stats_.packetsDropped;
        ++done;
        continue;
      }
      for (int i = 0; i < sent; ++i) {
        const OutDatagram& d = dgrams[done + i];
        countSent(d.bytes.size(), framesInDatagram(d.bytes));
      }
      done += static_cast<std::size_t>(sent);
      if (static_cast<std::size_t>(sent) < n) {
        // sendmmsg stopped early: the next datagram errored. Skip it like
        // send() would and resume behind it.
        ++stats_.packetsDropped;
        ++done;
      }
    }
    return;
  }
#endif
  Transport::sendMany(dgrams);
}

std::size_t UdpTransport::receiveBatch(std::span<Datagram> out) {
#ifdef __linux__
  if (useMmsg_) {
    constexpr std::size_t kBufBytes = 65536;
    if (recvBufs_.empty()) recvBufs_.resize(kMmsgBurst * kBufBytes);
    std::size_t total = 0;
    while (total < out.size()) {
      const std::size_t n = std::min(kMmsgBurst, out.size() - total);
      mmsghdr msgs[kMmsgBurst];
      iovec iov[kMmsgBurst];
      sockaddr_in froms[kMmsgBurst];
      std::memset(msgs, 0, n * sizeof(mmsghdr));
      for (std::size_t i = 0; i < n; ++i) {
        iov[i].iov_base = recvBufs_.data() + i * kBufBytes;
        iov[i].iov_len = kBufBytes;
        msgs[i].msg_hdr.msg_name = &froms[i];
        msgs[i].msg_hdr.msg_namelen = sizeof(froms[i]);
        msgs[i].msg_hdr.msg_iov = &iov[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
      }
      const int got =
          ::recvmmsg(fd_, msgs, static_cast<unsigned int>(n), 0, nullptr);
      if (got <= 0) break;  // EWOULDBLOCK: burst drained the socket
      for (int i = 0; i < got; ++i) {
        const auto src = addrForUdpPort(ntohs(froms[i].sin_port));
        if (!src) continue;  // outside our address plan, as in receive()
        Datagram& d = out[total++];
        d.src = *src;
        d.dst = addr_;
        const std::uint8_t* base = recvBufs_.data() + i * kBufBytes;
        d.payload.assign(base, base + msgs[i].msg_len);
        ++stats_.packetsReceived;
        stats_.bytesReceived += d.payload.size();
        stats_.framesReceived += framesInDatagram(d.payload);
      }
      if (static_cast<std::size_t>(got) < n) break;  // socket drained
    }
    return total;
  }
#endif
  return Transport::receiveBatch(out);
}

void UdpTransport::broadcast(std::uint16_t port,
                             std::span<const std::uint8_t> bytes) {
  // Emulated LAN broadcast: unicast to the same CB port on every host slot.
  for (HostId h = 0; h < cfg_.maxHosts; ++h) {
    const NodeAddr dst{h, port};
    if (dst == addr_) continue;
    send(dst, bytes);
  }
}

std::optional<Datagram> UdpTransport::receive() {
  std::uint8_t buf[65536];
  sockaddr_in from{};
  socklen_t fromLen = sizeof(from);
  const ssize_t n = ::recvfrom(fd_, buf, sizeof(buf), 0,
                               reinterpret_cast<sockaddr*>(&from), &fromLen);
  if (n < 0) return std::nullopt;  // EWOULDBLOCK or transient error: no data
  const auto src = addrForUdpPort(ntohs(from.sin_port));
  if (!src) return std::nullopt;  // datagram from outside our address plan
  Datagram d;
  d.src = *src;
  d.dst = addr_;
  d.payload.assign(buf, buf + n);
  ++stats_.packetsReceived;
  stats_.bytesReceived += d.payload.size();
  stats_.framesReceived += framesInDatagram(d.payload);
  return d;
}

}  // namespace cod::net
