#include "net/engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#ifdef __linux__
#include <poll.h>
#endif

namespace cod::net {

namespace {

double steadySeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

constexpr std::size_t kRecvBurst = 32;
constexpr std::size_t kSendBurst = 32;

constexpr const char* kEngineCounterNames[kEngineCounterCount] = {
    "engine.recvDatagrams",  "engine.recvBatches", "engine.recvRingDrops",
    "engine.recvRingPeak",   "engine.sendDatagrams", "engine.sendBatches",
    "engine.sendRingStalls", "engine.sendRingDrops", "engine.sendRingPeak",
};

}  // namespace

const char* engineCounterName(std::size_t i) {
  return i < kEngineCounterCount ? kEngineCounterNames[i] : nullptr;
}

std::uint64_t engineCounterValue(const AsyncEngineStats& s, std::size_t i) {
  switch (i) {
    case 0: return s.recvDatagrams;
    case 1: return s.recvBatches;
    case 2: return s.recvRingDrops;
    case 3: return s.recvRingPeak;
    case 4: return s.sendDatagrams;
    case 5: return s.sendBatches;
    case 6: return s.sendRingStalls;
    case 7: return s.sendRingDrops;
    case 8: return s.sendRingPeak;
    default: return 0;
  }
}

void setEngineCounterValue(AsyncEngineStats& s, std::size_t i,
                           std::uint64_t v) {
  switch (i) {
    case 0: s.recvDatagrams = v; break;
    case 1: s.recvBatches = v; break;
    case 2: s.recvRingDrops = v; break;
    case 3: s.recvRingPeak = v; break;
    case 4: s.sendDatagrams = v; break;
    case 5: s.sendBatches = v; break;
    case 6: s.sendRingStalls = v; break;
    case 7: s.sendRingDrops = v; break;
    case 8: s.sendRingPeak = v; break;
    default: break;
  }
}

AsyncTransport::AsyncTransport(std::unique_ptr<Transport> inner,
                               AsyncNetConfig cfg)
    : inner_(std::move(inner)),
      cfg_(std::move(cfg)),
      addr_(inner_->localAddress()),
      clock_(cfg_.clock ? cfg_.clock : std::function<double()>(&steadySeconds)),
      recvRing_(cfg_.recvRingCapacity),
      sendRing_(cfg_.sendRingCapacity) {
  if (cfg_.trace != nullptr) {
    recvLane_ = cfg_.trace->registerLane(cfg_.laneName + "/recv");
    sendLane_ = cfg_.trace->registerLane(cfg_.laneName + "/send");
  }
  recvThread_ = std::thread(&AsyncTransport::recvLoop, this);
  sendThread_ = std::thread(&AsyncTransport::sendLoop, this);
}

AsyncTransport::~AsyncTransport() {
  stop_.store(true, std::memory_order_release);
  if (recvThread_.joinable()) recvThread_.join();
  // The send thread drains the ring empty before honoring stop_, so
  // everything staged before this destructor ran (including the CB's
  // farewell flush) still reaches the wire.
  if (sendThread_.joinable()) sendThread_.join();
}

// ---------------------------------------------------------------- tick side

AsyncTransport::SendSlot* AsyncTransport::acquireSendSlot() {
  SendSlot* s = sendRing_.beginPush();
  if (s != nullptr) return s;
  // Full ring: the send thread is behind. Yield it the core a bounded
  // number of times — on a loaded box this is normally enough — then
  // drop, because blocking the tick would defeat the whole engine.
  engine_.sendRingStalls.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < cfg_.sendStallSpins; ++i) {
    std::this_thread::yield();
    s = sendRing_.beginPush();
    if (s != nullptr) return s;
  }
  engine_.sendRingDrops.fetch_add(1, std::memory_order_relaxed);
  counters_.packetsDropped.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void AsyncTransport::finishPush(std::size_t payloadBytes) {
  sendRing_.commitPush();
  counters_.packetsSent.fetch_add(1, std::memory_order_relaxed);
  counters_.bytesSent.fetch_add(payloadBytes, std::memory_order_relaxed);
  const std::size_t depth = sendRing_.approxSize();
  if (depth > engine_.sendRingPeak.load(std::memory_order_relaxed))
    engine_.sendRingPeak.store(depth, std::memory_order_relaxed);
}

void AsyncTransport::send(const NodeAddr& dst,
                          std::span<const std::uint8_t> bytes) {
  SendSlot* s = acquireSendSlot();
  if (s == nullptr) return;
  s->isBroadcast = false;
  s->dst = dst;
  s->bytes.assign(bytes.begin(), bytes.end());
  counters_.framesSent.fetch_add(framesInDatagram(bytes),
                                 std::memory_order_relaxed);
  finishPush(bytes.size());
}

void AsyncTransport::sendv(const NodeAddr& dst,
                           std::span<const ByteSpan> parts) {
  SendSlot* s = acquireSendSlot();
  if (s == nullptr) return;
  s->isBroadcast = false;
  s->dst = dst;
  s->bytes.clear();
  std::size_t total = 0;
  for (const ByteSpan p : parts) total += p.size();
  s->bytes.reserve(total);
  for (const ByteSpan p : parts)
    s->bytes.insert(s->bytes.end(), p.begin(), p.end());
  counters_.framesSent.fetch_add(framesInDatagram(s->bytes),
                                 std::memory_order_relaxed);
  finishPush(total);
}

void AsyncTransport::broadcast(std::uint16_t port,
                               std::span<const std::uint8_t> bytes) {
  SendSlot* s = acquireSendSlot();
  if (s == nullptr) return;
  s->isBroadcast = true;
  s->port = port;
  s->bytes.assign(bytes.begin(), bytes.end());
  counters_.framesSent.fetch_add(framesInDatagram(bytes),
                                 std::memory_order_relaxed);
  finishPush(bytes.size());
}

std::optional<Datagram> AsyncTransport::receive() {
  Datagram* slot = recvRing_.front();
  if (slot == nullptr) return std::nullopt;
  Datagram out = std::move(*slot);
  recvRing_.pop();
  return out;
}

const TransportStats* AsyncTransport::stats() const {
  statsSnapshot_.packetsSent =
      counters_.packetsSent.load(std::memory_order_relaxed);
  statsSnapshot_.bytesSent =
      counters_.bytesSent.load(std::memory_order_relaxed);
  statsSnapshot_.framesSent =
      counters_.framesSent.load(std::memory_order_relaxed);
  statsSnapshot_.packetsReceived =
      counters_.packetsReceived.load(std::memory_order_relaxed);
  statsSnapshot_.bytesReceived =
      counters_.bytesReceived.load(std::memory_order_relaxed);
  statsSnapshot_.framesReceived =
      counters_.framesReceived.load(std::memory_order_relaxed);
  statsSnapshot_.packetsDropped =
      counters_.packetsDropped.load(std::memory_order_relaxed);
  statsSnapshot_.framesDropped = 0;
  return &statsSnapshot_;
}

AsyncEngineStats AsyncTransport::engineStats() const {
  AsyncEngineStats s;
  s.recvDatagrams = engine_.recvDatagrams.load(std::memory_order_relaxed);
  s.recvBatches = engine_.recvBatches.load(std::memory_order_relaxed);
  s.recvRingDrops = engine_.recvRingDrops.load(std::memory_order_relaxed);
  s.recvRingPeak = engine_.recvRingPeak.load(std::memory_order_relaxed);
  s.sendDatagrams = engine_.sendDatagrams.load(std::memory_order_relaxed);
  s.sendBatches = engine_.sendBatches.load(std::memory_order_relaxed);
  s.sendRingStalls = engine_.sendRingStalls.load(std::memory_order_relaxed);
  s.sendRingDrops = engine_.sendRingDrops.load(std::memory_order_relaxed);
  s.sendRingPeak = engine_.sendRingPeak.load(std::memory_order_relaxed);
  return s;
}

// ------------------------------------------------------------- recv thread

void AsyncTransport::recvLoop() {
  std::vector<Datagram> burst(kRecvBurst);
  const int fd = inner_->pollableFd();
  while (!stop_.load(std::memory_order_acquire)) {
    const std::size_t n = inner_->receiveBatch({burst.data(), burst.size()});
    if (n == 0) {
#ifdef __linux__
      if (fd >= 0) {
        pollfd pfd{fd, POLLIN, 0};
        ::poll(&pfd, 1, 1);  // 1 ms: bounds both latency and shutdown lag
        continue;
      }
#endif
      std::this_thread::sleep_for(std::chrono::microseconds(cfg_.idleSleepUsec));
      continue;
    }
    engine_.recvBatches.fetch_add(1, std::memory_order_relaxed);
    engine_.recvDatagrams.fetch_add(n, std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      Datagram* slot = recvRing_.beginPush();
      if (slot == nullptr) {
        // Tick thread is behind; shed load here exactly like a full
        // kernel socket buffer would.
        engine_.recvRingDrops.fetch_add(n - i, std::memory_order_relaxed);
        counters_.packetsDropped.fetch_add(n - i, std::memory_order_relaxed);
        break;
      }
      counters_.packetsReceived.fetch_add(1, std::memory_order_relaxed);
      counters_.bytesReceived.fetch_add(burst[i].payload.size(),
                                        std::memory_order_relaxed);
      counters_.framesReceived.fetch_add(framesInDatagram(burst[i].payload),
                                         std::memory_order_relaxed);
      // Swap, don't assign: the slot's old vector becomes burst[i]'s
      // buffer for the next receiveBatch — capacity circulates instead
      // of being reallocated.
      slot->src = burst[i].src;
      slot->dst = burst[i].dst;
      std::swap(slot->payload, burst[i].payload);
      recvRing_.commitPush();
    }
    const std::size_t depth = recvRing_.approxSize();
    if (depth > engine_.recvRingPeak.load(std::memory_order_relaxed))
      engine_.recvRingPeak.store(depth, std::memory_order_relaxed);
    if (cfg_.trace != nullptr)
      cfg_.trace->record(telemetry::TraceEventKind::kDatagramRecv, recvLane_,
                         clock_(), 0.0, n, depth);
  }
}

// ------------------------------------------------------------- send thread

void AsyncTransport::sendLoop() {
  std::vector<OutDatagram> run;
  run.reserve(kSendBurst);
  while (true) {
    SendSlot* head = sendRing_.front();
    if (head == nullptr) {
      // Drain-then-exit: stop_ is only honored on an empty ring, so the
      // CB's farewell frames (staged in ~CB, before ~AsyncTransport)
      // still go out.
      if (stop_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(std::chrono::microseconds(cfg_.idleSleepUsec));
      continue;
    }
    if (head->isBroadcast) {
      inner_->broadcast(head->port, head->bytes);
      engine_.sendDatagrams.fetch_add(1, std::memory_order_relaxed);
      sendRing_.pop();
      continue;
    }
    // Build a run of consecutive unicast datagrams and hand them to the
    // inner transport as one sendMany burst (one sendmmsg on UDP). The
    // spans point into ring slots, which stay untouched by the producer
    // until pop() — so no copy crosses this hop.
    run.clear();
    std::size_t count = 0;
    while (count < kSendBurst) {
      SendSlot* s = count == 0 ? head : sendRing_.peek(count);
      if (s == nullptr || s->isBroadcast) break;
      run.push_back(OutDatagram{s->dst, s->bytes});
      ++count;
    }
    inner_->sendMany(run);
    engine_.sendBatches.fetch_add(1, std::memory_order_relaxed);
    engine_.sendDatagrams.fetch_add(count, std::memory_order_relaxed);
    if (cfg_.trace != nullptr)
      cfg_.trace->record(telemetry::TraceEventKind::kDatagramSend, sendLane_,
                         clock_(), 0.0, count, sendRing_.approxSize());
    sendRing_.pop(count);
  }
}

}  // namespace cod::net
