#include "net/transport.hpp"

namespace cod::net {

std::uint32_t framesInDatagram(std::span<const std::uint8_t> bytes) {
  // kBatch container header (core/protocol.hpp): [u8 10][u16 count LE].
  // Anything else — bare frame, runt, garbage — is one frame: the loss
  // accounting should never report less than one loss per lost datagram.
  constexpr std::uint8_t kBatchType = 10;
  if (bytes.size() < 3 || bytes[0] != kBatchType) return 1;
  const std::uint32_t count =
      static_cast<std::uint32_t>(bytes[1]) |
      (static_cast<std::uint32_t>(bytes[2]) << 8);
  return count == 0 ? 1 : count;
}

}  // namespace cod::net
