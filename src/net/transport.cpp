#include "net/transport.hpp"

namespace cod::net {

std::uint32_t framesInDatagram(std::span<const std::uint8_t> bytes) {
  // kBatch container header (core/protocol.hpp): [u8 10][u16 count LE].
  // Anything else — bare frame, runt, garbage — is one frame: the loss
  // accounting should never report less than one loss per lost datagram.
  constexpr std::uint8_t kBatchType = 10;
  if (bytes.size() < 3 || bytes[0] != kBatchType) return 1;
  const std::uint32_t count =
      static_cast<std::uint32_t>(bytes[1]) |
      (static_cast<std::uint32_t>(bytes[2]) << 8);
  return count == 0 ? 1 : count;
}

void Transport::sendv(const NodeAddr& dst, std::span<const ByteSpan> parts) {
  // Gather fallback: linearize into a reused scratch and take the plain
  // path. thread_local because the async engine may call this from its
  // send thread while a second (synchronous) transport sends from the
  // tick thread.
  thread_local std::vector<std::uint8_t> scratch;
  scratch.clear();
  std::size_t total = 0;
  for (const ByteSpan p : parts) total += p.size();
  scratch.reserve(total);
  for (const ByteSpan p : parts)
    scratch.insert(scratch.end(), p.begin(), p.end());
  send(dst, scratch);
}

void Transport::sendMany(std::span<const OutDatagram> dgrams) {
  for (const OutDatagram& d : dgrams) send(d.dst, d.bytes);
}

std::size_t Transport::receiveBatch(std::span<Datagram> out) {
  std::size_t n = 0;
  while (n < out.size()) {
    auto d = receive();
    if (!d) break;
    out[n++] = std::move(*d);
  }
  return n;
}

}  // namespace cod::net
