#include "net/reliable.hpp"

#include <algorithm>

namespace cod::net {

const char* qosName(QosClass q) {
  switch (q) {
    case QosClass::kBestEffort: return "best-effort";
    case QosClass::kReliableOrdered: return "reliable-ordered";
  }
  return "?";
}

const char* overflowPolicyName(OverflowPolicy p) {
  switch (p) {
    case OverflowPolicy::kEvictOldest: return "evict-oldest";
    case OverflowPolicy::kBlockPublisher: return "block-publisher";
    case OverflowPolicy::kDegradeLatestValue: return "degrade-latest-value";
  }
  return "?";
}

// ---- ReliableSendWindow -------------------------------------------------

bool ReliableSendWindow::wouldOverflow(std::size_t frameBytes) const {
  if (frames_.size() + 1 > cfg_->sendWindowFrames) return true;
  return cfg_->sendWindowBytes != 0 &&
         bytesBuffered_ + frameBytes > cfg_->sendWindowBytes;
}

void ReliableSendWindow::evictOldest() {
  highestEvicted_ = std::max(highestEvicted_, frames_.begin()->first);
  bytesBuffered_ -= frames_.begin()->second.frame.size();
  frames_.erase(frames_.begin());
  ++stats_->sendWindowEvictions;
}

void ReliableSendWindow::store(std::uint64_t seq,
                               std::vector<std::uint8_t> frame, double now) {
  Entry e;
  e.frame = std::move(frame);
  e.lastSentSec = now;  // storing happens at first send
  bytesBuffered_ += e.frame.size();
  frames_[seq] = std::move(e);
  highestStored_ = std::max(highestStored_, seq);
  ++stats_->framesBuffered;
  // Both evicting policies trim here; kBlockPublisher never reaches an
  // over-budget store (the caller gates on wouldOverflow), but trimming
  // unconditionally keeps the invariant even if it does.
  while (frames_.size() > cfg_->sendWindowFrames) evictOldest();
  if (cfg_->sendWindowBytes != 0) {
    // Never evict down to nothing: the newest frame stays even when it is
    // alone bigger than the budget, so the stream always makes progress.
    while (frames_.size() > 1 && bytesBuffered_ > cfg_->sendWindowBytes)
      evictOldest();
  }
}

std::vector<std::uint64_t> ReliableSendWindow::storedSeqsAbove(
    std::uint64_t afterSeq) const {
  std::vector<std::uint64_t> seqs;
  for (auto it = frames_.upper_bound(afterSeq); it != frames_.end(); ++it)
    seqs.push_back(it->first);
  return seqs;
}

std::vector<std::uint8_t>* ReliableSendWindow::frame(std::uint64_t seq) {
  const auto it = frames_.find(seq);
  return it != frames_.end() ? &it->second.frame : nullptr;
}

void ReliableSendWindow::markSent(std::uint64_t seq, double now) {
  const auto it = frames_.find(seq);
  if (it == frames_.end()) return;
  if (retxDelayHist_ != nullptr)
    retxDelayHist_->record(now - it->second.lastSentSec);
  it->second.lastSentSec = now;
  ++stats_->retransmitsSent;
}

void ReliableSendWindow::touchSent(std::uint64_t seq, double now) {
  const auto it = frames_.find(seq);
  if (it == frames_.end()) return;
  it->second.lastSentSec = now;
}

void ReliableSendWindow::pruneThrough(std::uint64_t throughSeq) {
  while (!frames_.empty() && frames_.begin()->first <= throughSeq) {
    bytesBuffered_ -= frames_.begin()->second.frame.size();
    frames_.erase(frames_.begin());
    ++stats_->framesPruned;
  }
}

std::vector<std::uint64_t> ReliableSendWindow::takeTailRetransmits(
    std::uint64_t minUnacked, double now) {
  std::vector<std::uint64_t> due;
  for (auto it = frames_.lower_bound(minUnacked); it != frames_.end(); ++it) {
    if (now - it->second.lastSentSec < cfg_->retxTimeoutSec) continue;
    if (retxDelayHist_ != nullptr)
      retxDelayHist_->record(now - it->second.lastSentSec);
    it->second.lastSentSec = now;
    // retransmitsSent is NOT counted here: the caller re-sends each due
    // frame on zero or more channels and counts one retransmit per
    // channel actually staged — the same per-channel unit markSent (the
    // NACK path) and dataFramesSent use, which the reliable-layer loss
    // estimate divides against.
    due.push_back(it->first);
    if (due.size() >= cfg_->maxRetransmitPerSweep) break;
  }
  return due;
}

// ---- ReliableReceiveQueue -----------------------------------------------

void ReliableReceiveQueue::setBase(std::uint64_t firstSeq,
                                   std::vector<ReliableFrame>& ready) {
  if (baseKnown_) {
    // A repeated CHANNEL_ACK means the sender has not heard from us:
    // re-announce our position.
    ackDue_ = true;
    return;
  }
  baseKnown_ = true;
  nextExpected_ = firstSeq;
  // Frames below the base predate this channel and are not owed to it.
  buffer_.erase(buffer_.begin(), buffer_.lower_bound(firstSeq));
  release(ready);
  ackDue_ = true;  // announce our position to the sender
}

void ReliableReceiveQueue::release(std::vector<ReliableFrame>& ready) {
  auto it = buffer_.find(nextExpected_);
  while (it != buffer_.end()) {
    ready.push_back(std::move(it->second));
    buffer_.erase(it);
    ++nextExpected_;
    ++stats_->gapsHealed;
    it = buffer_.find(nextExpected_);
  }
}

ReliableReceiveQueue::Offer ReliableReceiveQueue::offer(
    ReliableFrame frame, std::vector<ReliableFrame>& ready) {
  maxSeen_ = std::max(maxSeen_, frame.seq);
  if (baseKnown_) {
    if (frame.seq < nextExpected_) {
      ++stats_->duplicatesDropped;
      ++duplicatesDropped_;
      ackDue_ = true;  // the sender evidently missed our last ack
      return Offer::kDuplicate;
    }
    if (frame.seq == nextExpected_) {
      ready.push_back(std::move(frame));
      ++nextExpected_;
      release(ready);
      ackDue_ = true;
      return Offer::kDelivered;
    }
  }
  // Out of order, or the base is still unknown: hold the frame.
  if (buffer_.contains(frame.seq)) {
    ++stats_->duplicatesDropped;
    ++duplicatesDropped_;
    return Offer::kDuplicate;
  }
  if (buffer_.size() >= cfg_->reorderLimit) {
    ++stats_->reorderOverflows;
    return Offer::kOverflow;  // stays missing; a NACK will re-fetch it
  }
  buffer_.emplace(frame.seq, std::move(frame));
  ++stats_->outOfOrderBuffered;
  return Offer::kBuffered;
}

std::uint64_t ReliableReceiveQueue::abandonThrough(
    std::uint64_t throughSeq, std::vector<ReliableFrame>& ready) {
  if (!baseKnown_ || throughSeq < nextExpected_) return 0;
  // Buffered frames inside the abandoned range are still deliverable; only
  // the true holes are lost.
  std::uint64_t range = throughSeq - nextExpected_ + 1;
  for (auto it = buffer_.begin();
       it != buffer_.end() && it->first <= throughSeq;) {
    ready.push_back(std::move(it->second));
    it = buffer_.erase(it);
    --range;
  }
  nextExpected_ = throughSeq + 1;
  release(ready);
  stats_->gapsAbandoned += range;
  ackDue_ = true;
  return range;
}

std::vector<std::uint64_t> ReliableReceiveQueue::collectNacks(double now) {
  if (!baseKnown_ || buffer_.empty()) {
    missingSince_.clear();
    return {};
  }
  // Enumerate the holes below the buffered frames. Track more than one
  // NACK's worth so later holes age while earlier ones are in repair.
  const std::size_t trackCap = 4 * cfg_->maxNacksPerMessage;
  std::vector<std::uint64_t> current;
  std::uint64_t seq = nextExpected_;
  for (const auto& [held, f] : buffer_) {
    for (; seq < held && current.size() < trackCap; ++seq)
      current.push_back(seq);
    if (current.size() >= trackCap) break;
    seq = held + 1;
  }
  // Age each hole individually: drop the healed, stamp the new.
  for (auto it = missingSince_.begin(); it != missingSince_.end();) {
    if (std::binary_search(current.begin(), current.end(), it->first)) {
      ++it;
    } else {
      it = missingSince_.erase(it);
    }
  }
  for (const std::uint64_t s : current) missingSince_.emplace(s, now);
  if (now - lastNackSec_ < cfg_->nackIntervalSec) return {};
  // Only holes that outlived the jitter-healing grace are NACKed; a
  // frame that is merely reordered arrives before its hole comes of age.
  std::vector<std::uint64_t> due;
  for (const auto& [s, since] : missingSince_) {
    if (now - since < cfg_->nackIntervalSec) continue;
    due.push_back(s);
    if (due.size() >= cfg_->maxNacksPerMessage) break;
  }
  if (due.empty()) return {};
  lastNackSec_ = now;
  ++stats_->nacksSent;
  return due;
}

std::optional<std::uint64_t> ReliableReceiveQueue::collectAck(double now) {
  if (!baseKnown_ || !ackDue_) return std::nullopt;
  if (now - lastAckSec_ < cfg_->ackIntervalSec) return std::nullopt;
  lastAckSec_ = now;
  ackDue_ = false;
  ++stats_->windowAcksSent;
  return nextExpected_ == 0 ? 0 : nextExpected_ - 1;
}

std::optional<std::uint64_t> ReliableReceiveQueue::piggybackAck(double now) {
  if (!baseKnown_) return std::nullopt;
  lastAckSec_ = now;
  ackDue_ = false;
  ++stats_->windowAcksSent;
  return nextExpected_ == 0 ? 0 : nextExpected_ - 1;
}

}  // namespace cod::net
