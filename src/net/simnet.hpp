// Deterministic simulated LAN.
//
// The paper's COD is eight desktop PCs on a 2001-era local area network.
// That hardware is replaced here by SimNetwork: a virtual-time Ethernet
// segment with a configurable link model (propagation latency, jitter,
// random loss, NIC serialization bandwidth), true broadcast semantics, and
// failure injection (partitions). Every stochastic decision draws from a
// seeded RNG, so a run is exactly reproducible.
//
// SimNetwork is single-threaded by design: hosts are stepped cooperatively
// under one virtual clock, which is what makes protocol tests and benches
// deterministic. (Real-socket deployments use UdpTransport instead.)
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "math/rng.hpp"
#include "net/transport.hpp"

namespace cod::net {

/// Per-link characteristics of the simulated LAN.
struct LinkModel {
  /// One-way propagation + switching latency, seconds.
  double latencySec = 200e-6;
  /// Gaussian jitter (standard deviation, seconds); sampled per packet.
  double jitterSec = 0.0;
  /// Probability a packet is silently dropped.
  double lossRate = 0.0;
  /// NIC serialization rate; 100 Mbit/s Ethernet by default.
  double bandwidthBytesPerSec = 12.5e6;
};

class SimTransport;

/// The virtual Ethernet segment all SimTransports attach to.
class SimNetwork {
 public:
  explicit SimNetwork(std::uint64_t seed = 1);
  ~SimNetwork();
  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Register a computer; returns its id. Names are for diagnostics.
  HostId addHost(std::string name);
  std::size_t hostCount() const { return hosts_.size(); }
  const std::string& hostName(HostId h) const;

  /// Bind an endpoint (socket) on `host`:`port`. The returned transport
  /// unbinds itself on destruction. Binding the same address twice throws.
  std::unique_ptr<SimTransport> bind(HostId host, std::uint16_t port);

  void setDefaultLink(const LinkModel& link) { defaultLink_ = link; }
  const LinkModel& defaultLink() const { return defaultLink_; }
  /// Override the link between two hosts (applies in both directions).
  void setLink(HostId a, HostId b, const LinkModel& link);

  /// Block / unblock traffic between two hosts (failure injection).
  void setPartitioned(HostId a, HostId b, bool blocked);

  /// Current virtual time, seconds.
  double now() const { return now_; }

  /// Advance virtual time by dt, delivering every packet due in the window.
  void advance(double dt);

  /// Deliver the single next in-flight packet, jumping the clock to its
  /// delivery time. Returns false if nothing is in flight.
  bool step();

  /// Deliver until no packets remain in flight or `maxTime` is reached.
  void runUntilIdle(double maxTime = 1e9);

  std::size_t inFlight() const { return queue_.size(); }
  const TransportStats& stats() const { return stats_; }

 private:
  friend class SimTransport;

  struct InFlight {
    double deliverAt = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break for equal timestamps
    Datagram dgram;
  };
  struct InFlightLater {
    bool operator()(const InFlight& a, const InFlight& b) const {
      if (a.deliverAt != b.deliverAt) return a.deliverAt > b.deliverAt;
      return a.seq > b.seq;
    }
  };

  void submit(const NodeAddr& src, const NodeAddr& dst,
              std::span<const std::uint8_t> bytes);
  void submitBroadcast(const NodeAddr& src, std::uint16_t port,
                       std::span<const std::uint8_t> bytes);
  void unbind(const NodeAddr& addr);
  const LinkModel& linkFor(HostId a, HostId b) const;
  bool partitioned(HostId a, HostId b) const;
  void enqueue(const NodeAddr& src, const NodeAddr& dst,
               std::span<const std::uint8_t> bytes);
  void deliver(InFlight&& pkt);
  /// Count one dropped packet of `frames` CB frames, attributing it to the
  /// endpoint it was headed for (if still bound) as inbound loss.
  void dropTowards(const NodeAddr& dst, std::uint32_t frames);

  std::vector<std::string> hosts_;
  std::map<NodeAddr, SimTransport*> endpoints_;
  std::map<std::pair<HostId, HostId>, LinkModel> links_;  // key: minmax pair
  std::set<std::pair<HostId, HostId>> partitions_;
  LinkModel defaultLink_;
  std::priority_queue<InFlight, std::vector<InFlight>, InFlightLater> queue_;
  std::map<HostId, double> egressFreeAt_;  // NIC serialization model
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  math::Rng rng_;
  TransportStats stats_;
};

/// A socket bound to one (host, port) of a SimNetwork.
class SimTransport final : public Transport {
 public:
  ~SimTransport() override;

  NodeAddr localAddress() const override { return addr_; }
  void send(const NodeAddr& dst, std::span<const std::uint8_t> bytes) override;
  void broadcast(std::uint16_t port, std::span<const std::uint8_t> bytes) override;
  std::optional<Datagram> receive() override;

  /// Per-endpoint counters: this socket's own traffic view, plus — the
  /// simulated LAN being omniscient — framesDropped for traffic that was
  /// lost on its way *to* this endpoint (loss model, partition, inbox
  /// overflow). A real socket cannot know the latter; telemetry consumers
  /// treat it as the sim's ground truth for per-node inbound loss.
  const TransportStats* stats() const override { return &stats_; }

  std::size_t pending() const { return inbox_.size(); }
  /// Inbound queue capacity; packets beyond it are dropped (buffer overflow).
  void setInboxLimit(std::size_t limit) { inboxLimit_ = limit; }

 private:
  friend class SimNetwork;
  SimTransport(SimNetwork* net, NodeAddr addr) : net_(net), addr_(addr) {}

  SimNetwork* net_;
  NodeAddr addr_;
  std::deque<Datagram> inbox_;
  std::size_t inboxLimit_ = 65536;
  TransportStats stats_;
};

}  // namespace cod::net
