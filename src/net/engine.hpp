// Async threaded network engine: recv/send threads + lock-free rings.
//
// AsyncTransport decorates any Transport and moves its socket work off the
// tick thread onto two dedicated threads:
//
//   recv thread:  inner->receiveBatch() (recvmmsg bursts on UDP) ──▶ recv ring
//   tick thread:  receive() pops the recv ring; send()/sendv() push the
//                 send ring (the CB's batch flush gathers its iovec spans
//                 straight into a ring slot — no intermediate datagram copy
//                 beyond the one that crosses the thread boundary)
//   send thread:  send ring ──▶ inner->sendMany() (sendmmsg bursts on UDP)
//
// The rings are single-producer/single-consumer, preallocated, power-of-two
// sized, and wait-free on both ends (bounded-spin-then-drop when the send
// ring is full, drop-and-count when the recv ring is full — UDP semantics
// all the way up, never blocking the tick).
//
// Threading contract:
//   - The tick thread is the only caller of send/sendv/sendMany/broadcast/
//     receive/receiveBatch/stats/engineStats.
//   - The recv thread is the only caller of inner->receiveBatch(); the
//     send thread is the only caller of inner->send/sendv/sendMany/
//     broadcast. A transport sandwiched between AsyncTransport and the
//     socket (ImpairedTransport) therefore sees two concurrent callers
//     and must lock internally — ImpairedTransport does.
//   - Because inner's TransportStats are written by both engine threads,
//     AsyncTransport keeps its own counters (per-field atomics) and
//     serves those from stats(); inner->stats() must not be read while
//     the engine runs.
//   - Shutdown: stop flag → recv thread exits promptly; send thread
//     drains the ring empty, then exits; both are joined before the
//     inner transport is destroyed. Frames staged during ~CB() (the BYE
//     flush) are therefore still delivered.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "telemetry/trace.hpp"

namespace cod::net {

/// Fixed-capacity single-producer/single-consumer ring over preallocated
/// slots. Producer: beginPush() → fill the slot in place → commitPush().
/// Consumer: front() → drain the slot → pop(). Slot objects are never
/// destroyed between pushes, so vectors inside them keep their heap
/// capacity across laps — the steady-state hot path does not allocate.
template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer: slot to fill, or nullptr when the ring is full.
  T* beginPush() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - cachedTail_ > mask_) {
      cachedTail_ = tail_.load(std::memory_order_acquire);
      if (head - cachedTail_ > mask_) return nullptr;
    }
    return &slots_[head & mask_];
  }
  /// Producer: publish the slot returned by the last beginPush().
  void commitPush() {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  /// Consumer: oldest slot, or nullptr when the ring is empty.
  T* front() { return peek(0); }
  /// Consumer: slot at offset `i` from the oldest (for run-building
  /// without popping — the send thread batches this way), or nullptr
  /// when fewer than i+1 entries are available.
  T* peek(std::size_t i) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (cachedHead_ - tail <= i) {
      cachedHead_ = head_.load(std::memory_order_acquire);
      if (cachedHead_ - tail <= i) return nullptr;
    }
    return &slots_[(tail + i) & mask_];
  }
  /// Consumer: release the oldest `n` slots back to the producer.
  void pop(std::size_t n = 1) {
    tail_.store(tail_.load(std::memory_order_relaxed) + n,
                std::memory_order_release);
  }

  /// Either thread: entry count at some recent instant (racy by nature).
  std::size_t approxSize() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return head - tail;
  }
  bool empty() const { return approxSize() == 0; }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  /// Producer-owned cursor + its cached view of the consumer cursor, on
  /// their own cache line so producer writes don't bounce the consumer's.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t cachedTail_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t cachedHead_ = 0;
};

/// Engine health counters, snapshotted into telemetry wire v6 records.
/// Append-only — the order here is the wire order (node_telemetry.cpp).
struct AsyncEngineStats {
  std::uint64_t recvDatagrams = 0;   // pulled off the socket
  std::uint64_t recvBatches = 0;     // receiveBatch calls that returned >0
  std::uint64_t recvRingDrops = 0;   // datagrams lost to a full recv ring
  std::uint64_t recvRingPeak = 0;    // high-water recv ring depth
  std::uint64_t sendDatagrams = 0;   // handed to the inner transport
  std::uint64_t sendBatches = 0;     // sendMany bursts issued
  std::uint64_t sendRingStalls = 0;  // pushes that had to spin on a full ring
  std::uint64_t sendRingDrops = 0;   // datagrams dropped after the spin budget
  std::uint64_t sendRingPeak = 0;    // high-water send ring depth
};

inline constexpr std::size_t kEngineCounterCount = 9;
/// Stable telemetry names for the wire-v6 engine block, in wire order.
/// Null if out of range.
const char* engineCounterName(std::size_t i);
std::uint64_t engineCounterValue(const AsyncEngineStats& s, std::size_t i);
void setEngineCounterValue(AsyncEngineStats& s, std::size_t i,
                           std::uint64_t v);

struct AsyncNetConfig {
  /// Ring capacities (rounded up to powers of two). Sized so a saturated
  /// tick's worth of datagrams fits with headroom.
  std::size_t recvRingCapacity = 1024;
  std::size_t sendRingCapacity = 1024;
  /// How many yields a full-send-ring push spins before dropping.
  int sendStallSpins = 64;
  /// recv thread park time when the socket is idle and there is no
  /// pollable fd (simulated inner transports), microseconds.
  int idleSleepUsec = 200;
  /// Optional trace wiring: lanes "<laneName>/recv" and "<laneName>/send"
  /// are registered and each syscall burst is recorded (a = datagrams in
  /// the burst, b = ring depth after).
  telemetry::TraceRecorder* trace = nullptr;
  std::string laneName = "async";
  /// Timestamp source for trace events; defaults to steady-clock seconds.
  std::function<double()> clock;
};

/// The async engine. See the file comment for the threading contract.
class AsyncTransport final : public Transport {
 public:
  explicit AsyncTransport(std::unique_ptr<Transport> inner,
                          AsyncNetConfig cfg = {});
  ~AsyncTransport() override;

  NodeAddr localAddress() const override { return addr_; }
  void send(const NodeAddr& dst, std::span<const std::uint8_t> bytes) override;
  void broadcast(std::uint16_t port,
                 std::span<const std::uint8_t> bytes) override;
  std::optional<Datagram> receive() override;
  /// The CB flush path: gathers `parts` into a send-ring slot (one copy,
  /// into preallocated slot storage) — never linearizes into a temporary.
  void sendv(const NodeAddr& dst, std::span<const ByteSpan> parts) override;
  /// No readiness fd: datagrams surface through the recv ring, which
  /// receive() polls without a syscall.
  int pollableFd() const override { return -1; }

  /// This engine's own traffic counters (see the threading contract —
  /// inner->stats() is off-limits while the engine runs).
  const TransportStats* stats() const override;
  AsyncEngineStats engineStats() const;

  Transport& inner() { return *inner_; }

 private:
  /// One outbound datagram crossing the tick→send-thread boundary.
  struct SendSlot {
    bool isBroadcast = false;
    NodeAddr dst;
    std::uint16_t port = 0;
    std::vector<std::uint8_t> bytes;
  };

  void recvLoop();
  void sendLoop();
  /// Acquire a send slot, spinning up to cfg_.sendStallSpins yields on a
  /// full ring; nullptr = give up (caller counts the drop).
  SendSlot* acquireSendSlot();
  void finishPush(std::size_t payloadBytes);

  std::unique_ptr<Transport> inner_;
  AsyncNetConfig cfg_;
  NodeAddr addr_;
  std::function<double()> clock_;

  SpscRing<Datagram> recvRing_;
  SpscRing<SendSlot> sendRing_;

  std::atomic<bool> stop_{false};

  /// Mirrored TransportStats, split by writer thread. Loads/stores are
  /// relaxed: each field has exactly one writer and the reader only needs
  /// eventually-consistent counters.
  struct {
    std::atomic<std::uint64_t> packetsSent{0}, bytesSent{0}, framesSent{0};
    std::atomic<std::uint64_t> packetsReceived{0}, bytesReceived{0},
        framesReceived{0};
    std::atomic<std::uint64_t> packetsDropped{0};
  } counters_;
  struct {
    std::atomic<std::uint64_t> recvDatagrams{0}, recvBatches{0},
        recvRingDrops{0}, recvRingPeak{0};
    std::atomic<std::uint64_t> sendDatagrams{0}, sendBatches{0},
        sendRingStalls{0}, sendRingDrops{0}, sendRingPeak{0};
  } engine_;
  mutable TransportStats statsSnapshot_;

  std::uint16_t recvLane_ = 0;
  std::uint16_t sendLane_ = 0;

  std::thread recvThread_;
  std::thread sendThread_;
};

}  // namespace cod::net
