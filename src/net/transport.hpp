// Transport abstraction the Communication Backbone rides on.
//
// The CB protocol (discovery broadcast, channel connection, update routing)
// is written against this interface only, so the same CB runs unchanged on
// the deterministic simulated LAN (SimNetwork), on plain in-memory queues,
// or on real UDP sockets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace cod::net {

/// Identifies a computer on the (possibly simulated) LAN.
using HostId = std::uint32_t;

inline constexpr HostId kInvalidHost = 0xFFFFFFFFu;

/// A (host, port) endpoint.
struct NodeAddr {
  HostId host = kInvalidHost;
  std::uint16_t port = 0;

  constexpr bool operator==(const NodeAddr&) const = default;
  constexpr auto operator<=>(const NodeAddr&) const = default;
  constexpr bool valid() const { return host != kInvalidHost; }
};

/// One received datagram.
struct Datagram {
  NodeAddr src;
  NodeAddr dst;
  std::vector<std::uint8_t> payload;
};

/// Simple traffic counters, kept by the transports that support them.
///
/// Packets are datagrams on the wire; frames are the CB messages they
/// carry. The two differ because the CB's send coalescer packs a whole
/// tick's frames for one peer into a single kBatch container datagram —
/// so one lost packet can mean many lost frames, and loss accounting that
/// only counted packets would understate what the protocol actually lost.
struct TransportStats {
  std::uint64_t packetsSent = 0;
  std::uint64_t bytesSent = 0;
  std::uint64_t packetsReceived = 0;
  std::uint64_t bytesReceived = 0;
  std::uint64_t packetsDropped = 0;  // loss model or full queues
  std::uint64_t framesSent = 0;      // CB frames inside sent packets
  std::uint64_t framesReceived = 0;  // CB frames inside delivered packets
  /// CB frames inside dropped packets. Only an omniscient transport (the
  /// simulated LAN) can attribute these to the endpoint that would have
  /// received them; on real UDP this stays 0 and loss shows up indirectly
  /// through the reliable layer's NACK/retransmit counters instead.
  std::uint64_t framesDropped = 0;
};

/// Number of CB frames a datagram carries: N for a kBatch container, 1 for
/// any bare frame (including malformed bytes — one datagram, one loss).
/// Mirrors the container header [u8 type=10][u16 count] defined in
/// core/protocol.hpp: net must not depend on core, so the three header
/// bytes are duplicated here and a protocol test pins the two together.
std::uint32_t framesInDatagram(std::span<const std::uint8_t> bytes);

/// One scatter-gather fragment of an outbound datagram (iovec-shaped).
using ByteSpan = std::span<const std::uint8_t>;

/// One datagram of a sendMany() burst. `bytes` must stay valid for the
/// duration of the call only — implementations either copy or hand the
/// span straight to the kernel before returning.
struct OutDatagram {
  NodeAddr dst;
  ByteSpan bytes;
};

/// Unreliable datagram transport endpoint (one "socket").
///
/// All operations are non-blocking; `receive` polls the inbound queue.
class Transport {
 public:
  virtual ~Transport() = default;
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Address this endpoint is bound to.
  virtual NodeAddr localAddress() const = 0;

  /// Send a datagram to a specific endpoint.
  virtual void send(const NodeAddr& dst, std::span<const std::uint8_t> bytes) = 0;

  /// LAN broadcast to every endpoint bound to `port` (except this one).
  /// This is the primitive the CB initialization protocol uses for
  /// subscription discovery.
  virtual void broadcast(std::uint16_t port, std::span<const std::uint8_t> bytes) = 0;

  /// Poll one inbound datagram; nullopt when the queue is empty.
  virtual std::optional<Datagram> receive() = 0;

  /// Scatter-gather send: the datagram is the concatenation of `parts`.
  /// The CB's batch flush uses this so a kBatch container leaves as iovec
  /// spans over the staging arena instead of being linearized per flush.
  /// The default implementation gathers into a reused scratch buffer and
  /// calls send(); transports with a native scatter-gather syscall
  /// (UdpTransport, via sendmsg) override it.
  virtual void sendv(const NodeAddr& dst, std::span<const ByteSpan> parts);

  /// Batched send: one call, many datagrams. The default loops send();
  /// UdpTransport overrides with one sendmmsg syscall per burst — the
  /// async engine's send thread drains its ring through this.
  virtual void sendMany(std::span<const OutDatagram> dgrams);

  /// Batched receive: fill up to out.size() datagrams, return how many.
  /// The default polls receive() in a loop; UdpTransport overrides with
  /// one recvmmsg syscall per burst (identical delivery order — pinned by
  /// an equivalence test). Never blocks.
  virtual std::size_t receiveBatch(std::span<Datagram> out);

  /// A poll(2)-able readiness fd for the receive side, or -1 when the
  /// transport has none (simulated/in-memory transports). The async
  /// engine's recv thread parks on this instead of spinning.
  virtual int pollableFd() const { return -1; }

  /// Per-endpoint traffic counters, null if this transport keeps none.
  /// The telemetry subsystem snapshots these into NodeTelemetry records.
  virtual const TransportStats* stats() const { return nullptr; }
};

}  // namespace cod::net
