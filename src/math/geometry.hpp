// Geometric primitives and intersection kernels shared by the collision
// subsystem, the renderer and the scenario course description.
#pragma once

#include <span>
#include <vector>

#include "math/vec.hpp"

namespace cod::math {

/// Axis-aligned bounding box.
struct Aabb {
  Vec3 lo{1e300, 1e300, 1e300};
  Vec3 hi{-1e300, -1e300, -1e300};

  static Aabb fromPoints(std::span<const Vec3> pts);

  bool valid() const { return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z; }
  Vec3 center() const { return (lo + hi) * 0.5; }
  Vec3 extent() const { return (hi - lo) * 0.5; }
  double volume() const {
    if (!valid()) return 0.0;
    const Vec3 d = hi - lo;
    return d.x * d.y * d.z;
  }
  void expand(const Vec3& p) {
    lo = lo.cwiseMin(p);
    hi = hi.cwiseMax(p);
  }
  void expand(const Aabb& o) {
    lo = lo.cwiseMin(o.lo);
    hi = hi.cwiseMax(o.hi);
  }
  /// Grow the box by `margin` on all sides.
  Aabb inflated(double margin) const {
    return {lo - Vec3{margin, margin, margin}, hi + Vec3{margin, margin, margin}};
  }
  bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }
  bool overlaps(const Aabb& o) const {
    return lo.x <= o.hi.x && hi.x >= o.lo.x && lo.y <= o.hi.y &&
           hi.y >= o.lo.y && lo.z <= o.hi.z && hi.z >= o.lo.z;
  }
};

/// Bounding sphere.
struct Sphere {
  Vec3 center;
  double radius = 0.0;

  static Sphere fromPoints(std::span<const Vec3> pts);

  bool overlaps(const Sphere& o) const {
    const double r = radius + o.radius;
    return (center - o.center).norm2() <= r * r;
  }
  bool overlaps(const Aabb& box) const;
  bool contains(const Vec3& p) const {
    return (p - center).norm2() <= radius * radius;
  }
};

/// A triangle in 3-D.
struct Triangle {
  Vec3 a, b, c;

  Vec3 normal() const { return (b - a).cross(c - a).normalized(); }
  Vec3 centroid() const { return (a + b + c) / 3.0; }
  double area() const { return 0.5 * (b - a).cross(c - a).norm(); }
  Aabb bounds() const {
    Aabb box;
    box.expand(a);
    box.expand(b);
    box.expand(c);
    return box;
  }
};

/// Plane in Hessian normal form: dot(n, p) + d = 0.
struct Plane {
  Vec3 n{0, 0, 1};
  double d = 0.0;

  static Plane fromPointNormal(const Vec3& p, const Vec3& normal) {
    const Vec3 u = normal.normalized();
    return {u, -u.dot(p)};
  }
  double signedDistance(const Vec3& p) const { return n.dot(p) + d; }
};

/// Parametric ray: origin + t * dir, t >= 0.
struct Ray {
  Vec3 origin;
  Vec3 dir{0, 0, -1};
};

/// Exact triangle–triangle intersection test (Moller 1997 interval method).
bool triTriIntersect(const Triangle& t1, const Triangle& t2);

/// Ray–triangle intersection (Moller–Trumbore); on hit, writes distance t.
bool rayTriIntersect(const Ray& ray, const Triangle& tri, double* tOut);

/// Ray–AABB slab test; returns true if the ray hits the box for some t >= 0.
bool rayAabbIntersect(const Ray& ray, const Aabb& box, double* tNearOut);

/// Closest point on a segment [a, b] to point p.
Vec3 closestPointOnSegment(const Vec3& a, const Vec3& b, const Vec3& p);

/// Minimum distance between two segments [p1,q1] and [p2,q2].
double segmentSegmentDistance(const Vec3& p1, const Vec3& q1, const Vec3& p2,
                              const Vec3& q2);

/// 2-D point-in-polygon test (winding, closed polygon, XY plane).
bool pointInPolygon2D(const Vec2& p, std::span<const Vec2> poly);

}  // namespace cod::math
