// 3x3 and 4x4 matrices, row-major, used by the renderer and platform IK.
#pragma once

#include "math/quat.hpp"
#include "math/vec.hpp"

namespace cod::math {

/// Row-major 3x3 matrix.
struct Mat3 {
  double m[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};

  static Mat3 identity() { return {}; }
  static Mat3 fromQuat(const Quat& q);

  Vec3 operator*(const Vec3& v) const {
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
  }
  Mat3 operator*(const Mat3& o) const;
  Mat3 transposed() const;
  double determinant() const;
};

/// Row-major 4x4 homogeneous transform / projection matrix.
struct Mat4 {
  double m[4][4] = {{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}};

  static Mat4 identity() { return {}; }
  static Mat4 translation(const Vec3& t);
  static Mat4 scale(const Vec3& s);
  static Mat4 rotation(const Quat& q);
  /// Rigid transform: rotate by q then translate by t.
  static Mat4 rigid(const Quat& q, const Vec3& t);
  /// Right-handed look-at view matrix (camera at eye, looking at target).
  static Mat4 lookAt(const Vec3& eye, const Vec3& target, const Vec3& up);
  /// Right-handed perspective projection; fovY in radians, maps to clip
  /// space with z in [-w, w].
  static Mat4 perspective(double fovY, double aspect, double zNear,
                          double zFar);

  Mat4 operator*(const Mat4& o) const;
  Vec4 operator*(const Vec4& v) const;
  /// Transform a point (w = 1) and drop back to 3-D (no perspective divide).
  Vec3 transformPoint(const Vec3& p) const;
  /// Transform a direction (w = 0).
  Vec3 transformDir(const Vec3& d) const;
  Mat4 transposed() const;
  /// Inverse of a rigid transform (rotation + translation only).
  Mat4 rigidInverse() const;
};

}  // namespace cod::math
