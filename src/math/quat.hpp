// Unit quaternions for 3-D orientation (motion platform, crane pose,
// camera rig). Convention: q = w + xi + yj + zk, Hamilton product,
// right-handed coordinate frames.
#pragma once

#include "math/vec.hpp"

namespace cod::math {

struct Quat {
  double w = 1.0;
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Quat() = default;
  constexpr Quat(double w_, double x_, double y_, double z_)
      : w(w_), x(x_), y(y_), z(z_) {}

  /// Quaternion for a rotation of `angle` radians about unit `axis`.
  static Quat fromAxisAngle(const Vec3& axis, double angle);

  /// Z-Y-X (yaw, pitch, roll) Euler composition: R = Rz(yaw)Ry(pitch)Rx(roll).
  static Quat fromEuler(double roll, double pitch, double yaw);

  /// Hamilton product; composition satisfies
  /// (a*b).rotate(v) == a.rotate(b.rotate(v)).
  Quat operator*(const Quat& o) const {
    return {w * o.w - x * o.x - y * o.y - z * o.z,
            w * o.x + x * o.w + y * o.z - z * o.y,
            w * o.y - x * o.z + y * o.w + z * o.x,
            w * o.z + x * o.y - y * o.x + z * o.w};
  }

  constexpr Quat conjugate() const { return {w, -x, -y, -z}; }
  double norm() const { return std::sqrt(w * w + x * x + y * y + z * z); }
  Quat normalized() const;

  /// Rotate a vector by this (assumed unit) quaternion.
  Vec3 rotate(const Vec3& v) const;

  /// Extract (roll, pitch, yaw) matching fromEuler.
  Vec3 toEuler() const;

  /// Angle of the rotation this quaternion represents, in [0, pi].
  double angle() const;

  constexpr bool operator==(const Quat&) const = default;
};

/// Normalized linear interpolation (cheap, adequate for small steps).
Quat nlerp(const Quat& a, const Quat& b, double t);

/// Spherical linear interpolation (constant angular velocity).
Quat slerp(const Quat& a, const Quat& b, double t);

/// Geodesic angular distance between two unit quaternions, in [0, pi].
double angularDistance(const Quat& a, const Quat& b);

}  // namespace cod::math
