#include "math/vec.hpp"

#include <ostream>

namespace cod::math {

double wrapAngle(double rad) noexcept {
  double a = std::fmod(rad + kPi, kTwoPi);
  if (a <= 0.0) a += kTwoPi;
  return a - kPi;
}

double angleDiff(double a, double b) noexcept { return wrapAngle(a - b); }

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace cod::math
