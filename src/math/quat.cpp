#include "math/quat.hpp"

#include <algorithm>

namespace cod::math {

Quat Quat::fromAxisAngle(const Vec3& axis, double angle) {
  const Vec3 u = axis.normalized();
  const double h = angle * 0.5;
  const double s = std::sin(h);
  return {std::cos(h), u.x * s, u.y * s, u.z * s};
}

Quat Quat::fromEuler(double roll, double pitch, double yaw) {
  const Quat rz = fromAxisAngle({0, 0, 1}, yaw);
  const Quat ry = fromAxisAngle({0, 1, 0}, pitch);
  const Quat rx = fromAxisAngle({1, 0, 0}, roll);
  return rz * ry * rx;
}

Quat Quat::normalized() const {
  const double n = norm();
  if (n <= 0.0) return Quat{};
  return {w / n, x / n, y / n, z / n};
}

Vec3 Quat::rotate(const Vec3& v) const {
  // v' = v + 2 q_v x (q_v x v + w v)
  const Vec3 qv{x, y, z};
  const Vec3 t = qv.cross(v) * 2.0;
  return v + t * w + qv.cross(t);
}

Vec3 Quat::toEuler() const {
  // Inverse of fromEuler (Z-Y-X intrinsic / yaw-pitch-roll).
  const double sinp = 2.0 * (w * y - z * x);
  double pitch;
  if (std::abs(sinp) >= 1.0) {
    pitch = std::copysign(kPi / 2.0, sinp);  // gimbal lock
  } else {
    pitch = std::asin(sinp);
  }
  const double roll =
      std::atan2(2.0 * (w * x + y * z), 1.0 - 2.0 * (x * x + y * y));
  const double yaw =
      std::atan2(2.0 * (w * z + x * y), 1.0 - 2.0 * (y * y + z * z));
  return {roll, pitch, yaw};
}

double Quat::angle() const {
  const double c = clamp(std::abs(w) / std::max(norm(), 1e-300), 0.0, 1.0);
  return 2.0 * std::acos(c);
}

Quat nlerp(const Quat& a, const Quat& b, double t) {
  // Take the short arc.
  const double d = a.w * b.w + a.x * b.x + a.y * b.y + a.z * b.z;
  const double s = d < 0.0 ? -1.0 : 1.0;
  Quat r{lerp(a.w, s * b.w, t), lerp(a.x, s * b.x, t), lerp(a.y, s * b.y, t),
         lerp(a.z, s * b.z, t)};
  return r.normalized();
}

Quat slerp(const Quat& a, const Quat& b, double t) {
  double d = a.w * b.w + a.x * b.x + a.y * b.y + a.z * b.z;
  Quat bb = b;
  if (d < 0.0) {
    d = -d;
    bb = {-b.w, -b.x, -b.y, -b.z};
  }
  if (d > 0.9995) return nlerp(a, bb, t);  // nearly parallel: avoid 1/sin(0)
  const double theta = std::acos(clamp(d, -1.0, 1.0));
  const double sa = std::sin((1.0 - t) * theta) / std::sin(theta);
  const double sb = std::sin(t * theta) / std::sin(theta);
  Quat r{a.w * sa + bb.w * sb, a.x * sa + bb.x * sb, a.y * sa + bb.y * sb,
         a.z * sa + bb.z * sb};
  return r.normalized();
}

double angularDistance(const Quat& a, const Quat& b) {
  return (a.conjugate() * b).angle();
}

}  // namespace cod::math
