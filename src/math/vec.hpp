// Small fixed-size vector types used across the simulator.
//
// These are deliberately simple value types (Core Guidelines C.10: prefer
// concrete types). All operations are constexpr-friendly and allocation-free.
#pragma once

#include <cmath>
#include <cstddef>
#include <iosfwd>

namespace cod::math {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Degrees → radians.
constexpr double deg2rad(double deg) noexcept { return deg * kPi / 180.0; }
/// Radians → degrees.
constexpr double rad2deg(double rad) noexcept { return rad * 180.0 / kPi; }

/// 2-component double vector (screen coordinates, course maps).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  Vec2& operator+=(const Vec2& o) { x += o.x; y += o.y; return *this; }
  Vec2& operator-=(const Vec2& o) { x -= o.x; y -= o.y; return *this; }
  Vec2& operator*=(double s) { x *= s; y *= s; return *this; }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// 2-D cross product (z of the implied 3-D cross).
  constexpr double cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm2() const { return dot(*this); }
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

/// 3-component double vector; the workhorse type of the simulator.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }
  Vec3& operator/=(double s) { x /= s; y /= s; z /= s; return *this; }
  constexpr bool operator==(const Vec3&) const = default;

  constexpr double operator[](std::size_t i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm2() const { return dot(*this); }
  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
  /// Component-wise min.
  Vec3 cwiseMin(const Vec3& o) const {
    return {std::fmin(x, o.x), std::fmin(y, o.y), std::fmin(z, o.z)};
  }
  /// Component-wise max.
  Vec3 cwiseMax(const Vec3& o) const {
    return {std::fmax(x, o.x), std::fmax(y, o.y), std::fmax(z, o.z)};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

/// 4-component vector (homogeneous coordinates in the rasterizer).
struct Vec4 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
  double w = 0.0;

  constexpr Vec4() = default;
  constexpr Vec4(double x_, double y_, double z_, double w_)
      : x(x_), y(y_), z(z_), w(w_) {}
  constexpr Vec4(const Vec3& v, double w_) : x(v.x), y(v.y), z(v.z), w(w_) {}

  constexpr Vec4 operator+(const Vec4& o) const {
    return {x + o.x, y + o.y, z + o.z, w + o.w};
  }
  constexpr Vec4 operator-(const Vec4& o) const {
    return {x - o.x, y - o.y, z - o.z, w - o.w};
  }
  constexpr Vec4 operator*(double s) const {
    return {x * s, y * s, z * s, w * s};
  }
  constexpr bool operator==(const Vec4&) const = default;

  constexpr double dot(const Vec4& o) const {
    return x * o.x + y * o.y + z * o.z + w * o.w;
  }
  constexpr Vec3 xyz() const { return {x, y, z}; }
};

/// Linear interpolation.
constexpr double lerp(double a, double b, double t) { return a + (b - a) * t; }
constexpr Vec2 lerp(const Vec2& a, const Vec2& b, double t) {
  return a + (b - a) * t;
}
constexpr Vec3 lerp(const Vec3& a, const Vec3& b, double t) {
  return a + (b - a) * t;
}

/// Clamp helper (double).
constexpr double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Wrap an angle to (-pi, pi].
double wrapAngle(double rad) noexcept;

/// Shortest signed angular difference a-b wrapped to (-pi, pi].
double angleDiff(double a, double b) noexcept;

std::ostream& operator<<(std::ostream& os, const Vec2& v);
std::ostream& operator<<(std::ostream& os, const Vec3& v);

}  // namespace cod::math
