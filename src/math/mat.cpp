#include "math/mat.hpp"

namespace cod::math {

Mat3 Mat3::fromQuat(const Quat& q) {
  const double w = q.w, x = q.x, y = q.y, z = q.z;
  Mat3 r;
  r.m[0][0] = 1 - 2 * (y * y + z * z);
  r.m[0][1] = 2 * (x * y - w * z);
  r.m[0][2] = 2 * (x * z + w * y);
  r.m[1][0] = 2 * (x * y + w * z);
  r.m[1][1] = 1 - 2 * (x * x + z * z);
  r.m[1][2] = 2 * (y * z - w * x);
  r.m[2][0] = 2 * (x * z - w * y);
  r.m[2][1] = 2 * (y * z + w * x);
  r.m[2][2] = 1 - 2 * (x * x + y * y);
  return r;
}

Mat3 Mat3::operator*(const Mat3& o) const {
  Mat3 r;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      double s = 0;
      for (int k = 0; k < 3; ++k) s += m[i][k] * o.m[k][j];
      r.m[i][j] = s;
    }
  return r;
}

Mat3 Mat3::transposed() const {
  Mat3 r;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) r.m[i][j] = m[j][i];
  return r;
}

double Mat3::determinant() const {
  return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
         m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
         m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
}

Mat4 Mat4::translation(const Vec3& t) {
  Mat4 r;
  r.m[0][3] = t.x;
  r.m[1][3] = t.y;
  r.m[2][3] = t.z;
  return r;
}

Mat4 Mat4::scale(const Vec3& s) {
  Mat4 r;
  r.m[0][0] = s.x;
  r.m[1][1] = s.y;
  r.m[2][2] = s.z;
  return r;
}

Mat4 Mat4::rotation(const Quat& q) {
  const Mat3 r3 = Mat3::fromQuat(q.normalized());
  Mat4 r;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) r.m[i][j] = r3.m[i][j];
  return r;
}

Mat4 Mat4::rigid(const Quat& q, const Vec3& t) {
  Mat4 r = rotation(q);
  r.m[0][3] = t.x;
  r.m[1][3] = t.y;
  r.m[2][3] = t.z;
  return r;
}

Mat4 Mat4::lookAt(const Vec3& eye, const Vec3& target, const Vec3& up) {
  const Vec3 f = (target - eye).normalized();   // forward
  const Vec3 s = f.cross(up).normalized();      // right
  const Vec3 u = s.cross(f);                    // true up
  Mat4 r;
  r.m[0][0] = s.x; r.m[0][1] = s.y; r.m[0][2] = s.z; r.m[0][3] = -s.dot(eye);
  r.m[1][0] = u.x; r.m[1][1] = u.y; r.m[1][2] = u.z; r.m[1][3] = -u.dot(eye);
  r.m[2][0] = -f.x; r.m[2][1] = -f.y; r.m[2][2] = -f.z; r.m[2][3] = f.dot(eye);
  return r;
}

Mat4 Mat4::perspective(double fovY, double aspect, double zNear, double zFar) {
  const double t = 1.0 / std::tan(fovY * 0.5);
  Mat4 r;
  r.m[0][0] = t / aspect;
  r.m[1][1] = t;
  r.m[2][2] = (zFar + zNear) / (zNear - zFar);
  r.m[2][3] = 2.0 * zFar * zNear / (zNear - zFar);
  r.m[3][2] = -1.0;
  r.m[3][3] = 0.0;
  return r;
}

Mat4 Mat4::operator*(const Mat4& o) const {
  Mat4 r;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      double s = 0;
      for (int k = 0; k < 4; ++k) s += m[i][k] * o.m[k][j];
      r.m[i][j] = s;
    }
  return r;
}

Vec4 Mat4::operator*(const Vec4& v) const {
  return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z + m[0][3] * v.w,
          m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z + m[1][3] * v.w,
          m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z + m[2][3] * v.w,
          m[3][0] * v.x + m[3][1] * v.y + m[3][2] * v.z + m[3][3] * v.w};
}

Vec3 Mat4::transformPoint(const Vec3& p) const {
  const Vec4 r = (*this) * Vec4{p, 1.0};
  return r.xyz();
}

Vec3 Mat4::transformDir(const Vec3& d) const {
  const Vec4 r = (*this) * Vec4{d, 0.0};
  return r.xyz();
}

Mat4 Mat4::transposed() const {
  Mat4 r;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) r.m[i][j] = m[j][i];
  return r;
}

Mat4 Mat4::rigidInverse() const {
  // [R t; 0 1]^-1 = [R' -R't; 0 1]
  Mat4 r;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) r.m[i][j] = m[j][i];
  const Vec3 t{m[0][3], m[1][3], m[2][3]};
  r.m[0][3] = -(r.m[0][0] * t.x + r.m[0][1] * t.y + r.m[0][2] * t.z);
  r.m[1][3] = -(r.m[1][0] * t.x + r.m[1][1] * t.y + r.m[1][2] * t.z);
  r.m[2][3] = -(r.m[2][0] * t.x + r.m[2][1] * t.y + r.m[2][2] * t.z);
  return r;
}

}  // namespace cod::math
