// Deterministic, seedable random number generation.
//
// The simulator must be reproducible across runs (tests, benches and the
// simulated LAN all depend on it), so every stochastic component takes an
// explicit Rng instead of touching global state.
#pragma once

#include <cstdint>

namespace cod::math {

/// xoshiro256** with a splitmix64 seeder — fast, high quality, and
/// deterministic for a given seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (one value per call, cached pair).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Fork a statistically independent stream (for per-node RNGs).
  Rng split();

 private:
  std::uint64_t s_[4] = {};
  bool hasCachedNormal_ = false;
  double cachedNormal_ = 0.0;
};

}  // namespace cod::math
