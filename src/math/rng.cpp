#include "math/rng.hpp"

#include <cmath>

namespace cod::math {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  hasCachedNormal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::normal() {
  if (hasCachedNormal_) {
    hasCachedNormal_ = false;
    return cachedNormal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cachedNormal_ = r * std::sin(theta);
  hasCachedNormal_ = true;
  return r * std::cos(theta);
}

Rng Rng::split() {
  Rng child(next() ^ 0xA5A5A5A5A5A5A5A5ull);
  return child;
}

}  // namespace cod::math
