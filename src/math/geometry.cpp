#include "math/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace cod::math {

Aabb Aabb::fromPoints(std::span<const Vec3> pts) {
  Aabb box;
  for (const Vec3& p : pts) box.expand(p);
  return box;
}

Sphere Sphere::fromPoints(std::span<const Vec3> pts) {
  // Ritter-style: bound the AABB centre; exact enough for bounding volumes.
  if (pts.empty()) return {};
  const Aabb box = Aabb::fromPoints(pts);
  Sphere s{box.center(), 0.0};
  double r2 = 0.0;
  for (const Vec3& p : pts) r2 = std::max(r2, (p - s.center).norm2());
  s.radius = std::sqrt(r2);
  return s;
}

bool Sphere::overlaps(const Aabb& box) const {
  // Distance from the centre to the box, squared.
  double d2 = 0.0;
  const double cs[3] = {center.x, center.y, center.z};
  const double lo[3] = {box.lo.x, box.lo.y, box.lo.z};
  const double hi[3] = {box.hi.x, box.hi.y, box.hi.z};
  for (int i = 0; i < 3; ++i) {
    if (cs[i] < lo[i]) {
      const double d = lo[i] - cs[i];
      d2 += d * d;
    } else if (cs[i] > hi[i]) {
      const double d = cs[i] - hi[i];
      d2 += d * d;
    }
  }
  return d2 <= radius * radius;
}

namespace {

// Project triangle onto axis; returns [min, max].
void projectTri(const Triangle& t, const Vec3& axis, double& mn, double& mx) {
  const double a = axis.dot(t.a);
  const double b = axis.dot(t.b);
  const double c = axis.dot(t.c);
  mn = std::min({a, b, c});
  mx = std::max({a, b, c});
}

bool axisSeparates(const Triangle& t1, const Triangle& t2, const Vec3& axis) {
  if (axis.norm2() < 1e-24) return false;  // degenerate axis: no information
  double mn1, mx1, mn2, mx2;
  projectTri(t1, axis, mn1, mx1);
  projectTri(t2, axis, mn2, mx2);
  // Require a gap clearly above rounding noise: coplanar triangles project
  // onto (near-)normal axes with ~1e-17 artificial gaps that would
  // otherwise report touching geometry as separated.
  const double eps =
      1e-10 * (std::abs(mn1) + std::abs(mx1) + std::abs(mn2) + std::abs(mx2));
  return mx1 < mn2 - eps || mx2 < mn1 - eps;
}

}  // namespace

bool triTriIntersect(const Triangle& t1, const Triangle& t2) {
  // Separating axis test: 2 face normals + 9 edge-edge cross products +
  // 6 in-plane edge normals. The last group is what separates *coplanar*
  // pairs, where every edge-edge cross product degenerates to the shared
  // face normal and cannot discriminate.
  const Vec3 e1[3] = {t1.b - t1.a, t1.c - t1.b, t1.a - t1.c};
  const Vec3 e2[3] = {t2.b - t2.a, t2.c - t2.b, t2.a - t2.c};
  const Vec3 n1 = e1[0].cross(e1[1]);
  const Vec3 n2 = e2[0].cross(e2[1]);
  if (axisSeparates(t1, t2, n1)) return false;
  if (axisSeparates(t1, t2, n2)) return false;
  for (const auto& a : e1)
    for (const auto& b : e2)
      if (axisSeparates(t1, t2, a.cross(b))) return false;
  for (const auto& a : e1)
    if (axisSeparates(t1, t2, n1.cross(a))) return false;
  for (const auto& b : e2)
    if (axisSeparates(t1, t2, n2.cross(b))) return false;
  return true;
}

bool rayTriIntersect(const Ray& ray, const Triangle& tri, double* tOut) {
  constexpr double kEps = 1e-12;
  const Vec3 e1 = tri.b - tri.a;
  const Vec3 e2 = tri.c - tri.a;
  const Vec3 p = ray.dir.cross(e2);
  const double det = e1.dot(p);
  if (std::abs(det) < kEps) return false;  // parallel
  const double inv = 1.0 / det;
  const Vec3 s = ray.origin - tri.a;
  const double u = s.dot(p) * inv;
  if (u < 0.0 || u > 1.0) return false;
  const Vec3 q = s.cross(e1);
  const double v = ray.dir.dot(q) * inv;
  if (v < 0.0 || u + v > 1.0) return false;
  const double t = e2.dot(q) * inv;
  if (t < 0.0) return false;
  if (tOut != nullptr) *tOut = t;
  return true;
}

bool rayAabbIntersect(const Ray& ray, const Aabb& box, double* tNearOut) {
  double tNear = 0.0;
  double tFar = 1e300;
  const double o[3] = {ray.origin.x, ray.origin.y, ray.origin.z};
  const double d[3] = {ray.dir.x, ray.dir.y, ray.dir.z};
  const double lo[3] = {box.lo.x, box.lo.y, box.lo.z};
  const double hi[3] = {box.hi.x, box.hi.y, box.hi.z};
  for (int i = 0; i < 3; ++i) {
    if (std::abs(d[i]) < 1e-15) {
      if (o[i] < lo[i] || o[i] > hi[i]) return false;
      continue;
    }
    double t1 = (lo[i] - o[i]) / d[i];
    double t2 = (hi[i] - o[i]) / d[i];
    if (t1 > t2) std::swap(t1, t2);
    tNear = std::max(tNear, t1);
    tFar = std::min(tFar, t2);
    if (tNear > tFar) return false;
  }
  if (tNearOut != nullptr) *tNearOut = tNear;
  return true;
}

Vec3 closestPointOnSegment(const Vec3& a, const Vec3& b, const Vec3& p) {
  const Vec3 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 < 1e-24) return a;
  const double t = clamp((p - a).dot(ab) / len2, 0.0, 1.0);
  return a + ab * t;
}

double segmentSegmentDistance(const Vec3& p1, const Vec3& q1, const Vec3& p2,
                              const Vec3& q2) {
  // Ericson, Real-Time Collision Detection, closest-point-of-segments.
  const Vec3 d1 = q1 - p1;
  const Vec3 d2 = q2 - p2;
  const Vec3 r = p1 - p2;
  const double a = d1.norm2();
  const double e = d2.norm2();
  const double f = d2.dot(r);
  double s, t;
  constexpr double kEps = 1e-15;
  if (a <= kEps && e <= kEps) return r.norm();
  if (a <= kEps) {
    s = 0.0;
    t = clamp(f / e, 0.0, 1.0);
  } else {
    const double c = d1.dot(r);
    if (e <= kEps) {
      t = 0.0;
      s = clamp(-c / a, 0.0, 1.0);
    } else {
      const double b = d1.dot(d2);
      const double denom = a * e - b * b;
      s = denom > kEps ? clamp((b * f - c * e) / denom, 0.0, 1.0) : 0.0;
      t = (b * s + f) / e;
      if (t < 0.0) {
        t = 0.0;
        s = clamp(-c / a, 0.0, 1.0);
      } else if (t > 1.0) {
        t = 1.0;
        s = clamp((b - c) / a, 0.0, 1.0);
      }
    }
  }
  const Vec3 c1 = p1 + d1 * s;
  const Vec3 c2 = p2 + d2 * t;
  return (c1 - c2).norm();
}

bool pointInPolygon2D(const Vec2& p, std::span<const Vec2> poly) {
  bool inside = false;
  const std::size_t n = poly.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2& a = poly[i];
    const Vec2& b = poly[j];
    if (((a.y > p.y) != (b.y > p.y)) &&
        (p.x < (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x)) {
      inside = !inside;
    }
  }
  return inside;
}

}  // namespace cod::math
