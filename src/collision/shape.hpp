// Triangle-mesh collision shapes and world-space collision objects.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "math/geometry.hpp"
#include "math/mat.hpp"

namespace cod::collision {

/// An immutable triangle mesh in local space, with precomputed local
/// bounding volumes (the first two levels of the multi-level test).
class Shape {
 public:
  Shape(std::vector<math::Vec3> vertices,
        std::vector<std::array<std::uint32_t, 3>> triangles);

  /// Axis-aligned box of full extents `size` centred at the origin.
  static std::shared_ptr<Shape> box(const math::Vec3& size);
  /// Upright cylinder (z axis), radius/height, `segments` sides — the
  /// course "bars" and cargo drum.
  static std::shared_ptr<Shape> cylinder(double radius, double height,
                                         int segments = 12);

  const std::vector<math::Vec3>& vertices() const { return verts_; }
  const std::vector<std::array<std::uint32_t, 3>>& triangles() const {
    return tris_;
  }
  std::size_t triangleCount() const { return tris_.size(); }
  math::Triangle triangle(std::size_t i) const;

  const math::Sphere& localSphere() const { return sphere_; }
  const math::Aabb& localAabb() const { return aabb_; }

 private:
  std::vector<math::Vec3> verts_;
  std::vector<std::array<std::uint32_t, 3>> tris_;
  math::Sphere sphere_;
  math::Aabb aabb_;
};

/// A shape instanced into the world at a rigid pose.
class Object {
 public:
  Object(std::uint32_t id, std::string name, std::shared_ptr<Shape> shape,
         const math::Mat4& transform);

  std::uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  const Shape& shape() const { return *shape_; }

  void setTransform(const math::Mat4& t);
  const math::Mat4& transform() const { return transform_; }

  /// World-space bounding volumes (levels 1 and 2).
  const math::Sphere& worldSphere() const { return worldSphere_; }
  const math::Aabb& worldAabb() const { return worldAabb_; }

  /// World-space triangles, recomputed lazily after transform changes.
  const std::vector<math::Triangle>& worldTriangles() const;

 private:
  std::uint32_t id_;
  std::string name_;
  std::shared_ptr<Shape> shape_;
  math::Mat4 transform_;
  math::Sphere worldSphere_;
  math::Aabb worldAabb_;
  mutable std::vector<math::Triangle> worldTris_;
  mutable bool trisDirty_ = true;
};

}  // namespace cod::collision
