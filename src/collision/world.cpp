#include "collision/world.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace cod::collision {

World::World(double broadphaseCellSize) : cellSize_(broadphaseCellSize) {}

std::uint32_t World::add(const std::string& name, std::shared_ptr<Shape> shape,
                         const math::Mat4& transform) {
  const std::uint32_t id = nextId_++;
  objects_.push_back(
      std::make_unique<Object>(id, name, std::move(shape), transform));
  return id;
}

void World::remove(std::uint32_t id) {
  objects_.erase(std::remove_if(objects_.begin(), objects_.end(),
                                [&](const auto& o) { return o->id() == id; }),
                 objects_.end());
}

void World::setTransform(std::uint32_t id, const math::Mat4& t) {
  if (Object* o = find(id)) o->setTransform(t);
}

Object* World::find(std::uint32_t id) {
  for (auto& o : objects_)
    if (o->id() == id) return o.get();
  return nullptr;
}

const Object* World::find(std::uint32_t id) const {
  for (const auto& o : objects_)
    if (o->id() == id) return o.get();
  return nullptr;
}

std::optional<Contact> World::testPair(const Object& a, const Object& b,
                                       QueryStats* stats) {
  QueryStats local;
  QueryStats& s = stats != nullptr ? *stats : local;
  ++s.pairsConsidered;
  // Level 1: bounding spheres.
  ++s.sphereTests;
  if (!a.worldSphere().overlaps(b.worldSphere())) {
    ++s.sphereRejects;
    return std::nullopt;
  }
  // Level 2: world AABBs.
  ++s.aabbTests;
  if (!a.worldAabb().overlaps(b.worldAabb())) {
    ++s.aabbRejects;
    return std::nullopt;
  }
  // Level 3: exact triangle pairs (prefiltered by triangle AABB overlap of
  // the pair's intersection volume).
  math::Aabb overlap;
  overlap.lo = a.worldAabb().lo.cwiseMax(b.worldAabb().lo);
  overlap.hi = a.worldAabb().hi.cwiseMin(b.worldAabb().hi);
  for (const math::Triangle& ta : a.worldTriangles()) {
    if (!ta.bounds().overlaps(overlap)) continue;
    for (const math::Triangle& tb : b.worldTriangles()) {
      if (!tb.bounds().overlaps(overlap)) continue;
      ++s.triangleTests;
      if (math::triTriIntersect(ta, tb)) {
        ++s.contacts;
        return Contact{a.id(), b.id(),
                       (ta.centroid() + tb.centroid()) * 0.5};
      }
    }
  }
  return std::nullopt;
}

std::vector<std::pair<std::size_t, std::size_t>> World::broadphasePairs()
    const {
  // Uniform grid over world AABBs: objects sharing a cell become candidate
  // pairs. Deduplicated via a set (object counts here are hundreds, not
  // millions).
  std::map<std::tuple<int, int, int>, std::vector<std::size_t>> grid;
  const double inv = 1.0 / cellSize_;
  for (std::size_t idx = 0; idx < objects_.size(); ++idx) {
    const math::Aabb& box = objects_[idx]->worldAabb();
    const int x0 = static_cast<int>(std::floor(box.lo.x * inv));
    const int x1 = static_cast<int>(std::floor(box.hi.x * inv));
    const int y0 = static_cast<int>(std::floor(box.lo.y * inv));
    const int y1 = static_cast<int>(std::floor(box.hi.y * inv));
    const int z0 = static_cast<int>(std::floor(box.lo.z * inv));
    const int z1 = static_cast<int>(std::floor(box.hi.z * inv));
    for (int x = x0; x <= x1; ++x)
      for (int y = y0; y <= y1; ++y)
        for (int z = z0; z <= z1; ++z) grid[{x, y, z}].push_back(idx);
  }
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& [cell, members] : grid) {
    for (std::size_t i = 0; i < members.size(); ++i)
      for (std::size_t j = i + 1; j < members.size(); ++j)
        pairs.insert(std::minmax(members[i], members[j]));
  }
  return {pairs.begin(), pairs.end()};
}

std::vector<Contact> World::query(QueryStats* stats) const {
  std::vector<Contact> contacts;
  for (const auto& [i, j] : broadphasePairs()) {
    if (auto c = testPair(*objects_[i], *objects_[j], stats))
      contacts.push_back(*c);
  }
  return contacts;
}

std::vector<Contact> World::queryOne(std::uint32_t id,
                                     QueryStats* stats) const {
  std::vector<Contact> contacts;
  const Object* target = find(id);
  if (target == nullptr) return contacts;
  for (const auto& o : objects_) {
    if (o->id() == id) continue;
    if (auto c = testPair(*target, *o, stats)) contacts.push_back(*c);
  }
  return contacts;
}

std::vector<Contact> World::queryNaive(QueryStats* stats) const {
  // Baseline: no broadphase, no bounding volumes — every triangle of every
  // pair (still skipping triangles with disjoint boxes would be a pruning
  // level, so the baseline does not do it).
  QueryStats local;
  QueryStats& s = stats != nullptr ? *stats : local;
  std::vector<Contact> contacts;
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    for (std::size_t j = i + 1; j < objects_.size(); ++j) {
      ++s.pairsConsidered;
      const Object& a = *objects_[i];
      const Object& b = *objects_[j];
      bool hit = false;
      for (const math::Triangle& ta : a.worldTriangles()) {
        for (const math::Triangle& tb : b.worldTriangles()) {
          ++s.triangleTests;
          if (math::triTriIntersect(ta, tb)) {
            ++s.contacts;
            contacts.push_back(Contact{
                a.id(), b.id(), (ta.centroid() + tb.centroid()) * 0.5});
            hit = true;
            break;
          }
        }
        if (hit) break;
      }
    }
  }
  return contacts;
}

}  // namespace cod::collision
