#include "collision/shape.hpp"

#include <cmath>
#include <stdexcept>

namespace cod::collision {

using math::Vec3;

Shape::Shape(std::vector<Vec3> vertices,
             std::vector<std::array<std::uint32_t, 3>> triangles)
    : verts_(std::move(vertices)), tris_(std::move(triangles)) {
  if (verts_.empty() || tris_.empty())
    throw std::invalid_argument("Shape: empty mesh");
  for (const auto& t : tris_)
    for (const std::uint32_t i : t)
      if (i >= verts_.size()) throw std::out_of_range("Shape: bad index");
  sphere_ = math::Sphere::fromPoints(verts_);
  aabb_ = math::Aabb::fromPoints(verts_);
}

std::shared_ptr<Shape> Shape::box(const Vec3& size) {
  const Vec3 h = size * 0.5;
  std::vector<Vec3> v = {
      {-h.x, -h.y, -h.z}, {h.x, -h.y, -h.z}, {h.x, h.y, -h.z},
      {-h.x, h.y, -h.z},  {-h.x, -h.y, h.z}, {h.x, -h.y, h.z},
      {h.x, h.y, h.z},    {-h.x, h.y, h.z}};
  std::vector<std::array<std::uint32_t, 3>> t = {
      {0, 2, 1}, {0, 3, 2},  // bottom
      {4, 5, 6}, {4, 6, 7},  // top
      {0, 1, 5}, {0, 5, 4},  // -y
      {2, 3, 7}, {2, 7, 6},  // +y
      {1, 2, 6}, {1, 6, 5},  // +x
      {3, 0, 4}, {3, 4, 7},  // -x
  };
  return std::make_shared<Shape>(std::move(v), std::move(t));
}

std::shared_ptr<Shape> Shape::cylinder(double radius, double height,
                                       int segments) {
  if (segments < 3) throw std::invalid_argument("Shape::cylinder: segments<3");
  std::vector<Vec3> v;
  const double h = height * 0.5;
  for (int i = 0; i < segments; ++i) {
    const double a = 2.0 * math::kPi * i / segments;
    v.push_back({radius * std::cos(a), radius * std::sin(a), -h});
    v.push_back({radius * std::cos(a), radius * std::sin(a), h});
  }
  const std::uint32_t bottomCenter = static_cast<std::uint32_t>(v.size());
  v.push_back({0, 0, -h});
  const std::uint32_t topCenter = static_cast<std::uint32_t>(v.size());
  v.push_back({0, 0, h});
  std::vector<std::array<std::uint32_t, 3>> t;
  for (int i = 0; i < segments; ++i) {
    const std::uint32_t b0 = static_cast<std::uint32_t>(2 * i);
    const std::uint32_t t0 = b0 + 1;
    const std::uint32_t b1 =
        static_cast<std::uint32_t>(2 * ((i + 1) % segments));
    const std::uint32_t t1 = b1 + 1;
    t.push_back({b0, b1, t1});  // side
    t.push_back({b0, t1, t0});
    t.push_back({bottomCenter, b1, b0});  // bottom cap
    t.push_back({topCenter, t0, t1});     // top cap
  }
  return std::make_shared<Shape>(std::move(v), std::move(t));
}

math::Triangle Shape::triangle(std::size_t i) const {
  const auto& t = tris_.at(i);
  return {verts_[t[0]], verts_[t[1]], verts_[t[2]]};
}

Object::Object(std::uint32_t id, std::string name, std::shared_ptr<Shape> shape,
               const math::Mat4& transform)
    : id_(id), name_(std::move(name)), shape_(std::move(shape)) {
  if (!shape_) throw std::invalid_argument("Object: null shape");
  setTransform(transform);
}

void Object::setTransform(const math::Mat4& t) {
  transform_ = t;
  trisDirty_ = true;
  // Level-1 volume: transform the local sphere centre; a rigid transform
  // preserves the radius.
  worldSphere_.center = t.transformPoint(shape_->localSphere().center);
  worldSphere_.radius = shape_->localSphere().radius;
  // Level-2 volume: world AABB of the transformed local AABB corners.
  const math::Aabb& lb = shape_->localAabb();
  worldAabb_ = {};
  for (int cx = 0; cx < 2; ++cx)
    for (int cy = 0; cy < 2; ++cy)
      for (int cz = 0; cz < 2; ++cz) {
        const math::Vec3 corner{cx != 0 ? lb.hi.x : lb.lo.x,
                                cy != 0 ? lb.hi.y : lb.lo.y,
                                cz != 0 ? lb.hi.z : lb.lo.z};
        worldAabb_.expand(t.transformPoint(corner));
      }
}

const std::vector<math::Triangle>& Object::worldTriangles() const {
  if (trisDirty_) {
    worldTris_.clear();
    worldTris_.reserve(shape_->triangleCount());
    for (std::size_t i = 0; i < shape_->triangleCount(); ++i) {
      const math::Triangle local = shape_->triangle(i);
      worldTris_.push_back({transform_.transformPoint(local.a),
                            transform_.transformPoint(local.b),
                            transform_.transformPoint(local.c)});
    }
    trisDirty_ = false;
  }
  return worldTris_;
}

}  // namespace cod::collision
