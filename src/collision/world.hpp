// Multi-level collision detection (paper §3.6, after Moore & Wilhelms [10]).
//
// A pair of objects is tested through three pruning levels:
//   level 1 — bounding spheres (one distance test),
//   level 2 — world AABBs (six comparisons),
//   level 3 — exact triangle/triangle intersection.
// A uniform-grid broadphase limits which pairs are considered at all. The
// same world also exposes a deliberately naive all-pairs, all-triangles
// query as the baseline bench E6 compares against.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "collision/shape.hpp"

namespace cod::collision {

/// One detected contact.
struct Contact {
  std::uint32_t idA = 0;
  std::uint32_t idB = 0;
  /// Representative point (centroid of the first intersecting triangle pair).
  math::Vec3 point;
};

/// Work counters: how much each level actually did (bench E6 reports them).
struct QueryStats {
  std::uint64_t pairsConsidered = 0;
  std::uint64_t sphereTests = 0;
  std::uint64_t sphereRejects = 0;
  std::uint64_t aabbTests = 0;
  std::uint64_t aabbRejects = 0;
  std::uint64_t triangleTests = 0;
  std::uint64_t contacts = 0;

  void reset() { *this = {}; }
};

class World {
 public:
  explicit World(double broadphaseCellSize = 8.0);

  /// Add an object; returns its id. Objects are owned by the world.
  std::uint32_t add(const std::string& name, std::shared_ptr<Shape> shape,
                    const math::Mat4& transform);
  void remove(std::uint32_t id);
  void setTransform(std::uint32_t id, const math::Mat4& t);
  Object* find(std::uint32_t id);
  const Object* find(std::uint32_t id) const;
  std::size_t size() const { return objects_.size(); }

  /// Multi-level query over all pairs (grid broadphase + 3 levels).
  std::vector<Contact> query(QueryStats* stats = nullptr) const;

  /// Multi-level test of one object against all others.
  std::vector<Contact> queryOne(std::uint32_t id,
                                QueryStats* stats = nullptr) const;

  /// Baseline: every pair, straight to exact triangle tests.
  std::vector<Contact> queryNaive(QueryStats* stats = nullptr) const;

  /// Exact multi-level test of a single pair.
  static std::optional<Contact> testPair(const Object& a, const Object& b,
                                         QueryStats* stats = nullptr);

 private:
  std::vector<std::pair<std::size_t, std::size_t>> broadphasePairs() const;

  double cellSize_;
  std::vector<std::unique_ptr<Object>> objects_;
  std::uint32_t nextId_ = 1;
};

}  // namespace cod::collision
