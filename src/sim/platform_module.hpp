// The motion platform controller (§3.4) as a Logical Process.
//
// Subscribes to crane.state, maps the carrier motion through the washout
// filter into the Stewart platform's workspace, interpolates the posture at
// the display frequency (so vision and motion stay in phase), adds the
// engine vibration, solves the inverse kinematics, and publishes the six
// leg lengths as platform.pose.
#pragma once

#include <optional>

#include "core/cb.hpp"
#include "platform/motion_cueing.hpp"
#include "platform/stewart.hpp"
#include "sim/object_classes.hpp"

namespace cod::sim {

class PlatformModule : public core::LogicalProcess {
 public:
  struct Config {
    double frameIntervalSec = 1.0 / 16.0;  // synchronized with the displays
    double vibrationAmplitudeM = 0.004;
    double vibrationCutoffHz = 14.0;
    std::uint64_t vibrationSeed = 23;
  };

  PlatformModule();
  explicit PlatformModule(Config cfg);

  void bind(core::CommunicationBackbone& cb);

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet& attrs,
                              double timestamp) override;
  void step(double now) override;

  const platform::StewartPlatform& stewart() const { return stewart_; }
  const platform::Pose& currentPose() const { return interp_.current(); }
  const PlatformPoseMsg& lastPublished() const { return lastMsg_; }
  std::uint64_t posesPublished() const { return posesPublished_; }
  /// Largest single-tick leg-length change seen (smoothness metric, m).
  double maxLegStepM() const { return maxLegStep_; }
  std::uint64_t unreachableTargets() const { return unreachableTargets_; }

 private:
  Config cfg_;
  platform::StewartPlatform stewart_;
  platform::WashoutFilter washout_;
  platform::PoseInterpolator interp_;
  platform::VibrationGenerator vibration_;

  std::optional<CraneStateMsg> latestState_;
  double lastSpeed_ = 0.0;
  double lastStateTime_ = 0.0;
  std::array<double, 6> lastLegs_{};
  bool haveLegs_ = false;
  double maxLegStep_ = 0.0;
  std::uint64_t unreachableTargets_ = 0;

  core::CommunicationBackbone* cb_ = nullptr;
  core::PublicationHandle posePub_ = core::kInvalidHandle;
  core::SubscriptionHandle stateSub_ = core::kInvalidHandle;
  double nextFrame_ = 0.0;
  double lastTick_ = 0.0;
  PlatformPoseMsg lastMsg_;
  std::uint64_t posesPublished_ = 0;
};

}  // namespace cod::sim
