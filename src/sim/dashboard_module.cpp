#include "sim/dashboard_module.hpp"

namespace cod::sim {

DashboardModule::DashboardModule() : DashboardModule(Config{}) {}

DashboardModule::DashboardModule(Config cfg)
    : core::LogicalProcess("dashboard"), cfg_(cfg) {}

DashboardModule::DashboardModule(scenario::Course course,
                                 scenario::OperatorProfile profile)
    : DashboardModule(std::move(course), profile, Config{}) {}

DashboardModule::DashboardModule(scenario::Course course,
                                 scenario::OperatorProfile profile, Config cfg)
    : core::LogicalProcess("dashboard"),
      cfg_(cfg),
      operator_(std::make_unique<scenario::ScriptedOperator>(std::move(course),
                                                             profile)) {}

void DashboardModule::bind(core::CommunicationBackbone& cb) {
  cb_ = &cb;
  cb.attach(*this);
  controlsPub_ = cb.publishObjectClass(*this, kClassCraneControls);
  stateSub_ = cb.subscribeObjectClass(*this, kClassCraneState);
  statusSub_ = cb.subscribeObjectClass(*this, kClassScenarioStatus);
  // A dropped fault injection would silently change what the trainee is
  // being tested on: instructor commands ride a reliable channel.
  commandSub_ = cb.subscribeObjectClass(*this, kClassInstructorCommands,
                                        net::QosClass::kReliableOrdered);
}

void DashboardModule::reflectAttributeValues(const std::string& className,
                                             const core::AttributeSet& attrs,
                                             double /*timestamp*/) {
  if (className == kClassCraneState) {
    const CraneStateMsg m = decodeCraneState(attrs);
    const double dt = std::max(0.0, m.simTimeSec - lastStateTime_);
    lastStateTime_ = m.simTimeSec;
    latestState_ = m;
    dash_.updateInstruments(m.state, crane::AlarmSet::fromBits(m.alarmBits),
                            m.momentUtilisation);
    dash_.consumeFuel(dt);
  } else if (className == kClassScenarioStatus) {
    latestStatus_ = decodeScenarioStatus(attrs);
  } else if (className == kClassInstructorCommands) {
    const InstructorCommandMsg cmd = decodeInstructorCommand(attrs);
    if (cmd.command == "injectFault") {
      dash_.injectFault(static_cast<crane::Meter>(cmd.meter),
                        static_cast<crane::MeterFault>(cmd.fault));
    } else if (cmd.command == "refuel") {
      dash_.refuel();
    }
  }
}

scenario::OperatorObservation DashboardModule::buildObservation() const {
  scenario::OperatorObservation obs;
  obs.phase = static_cast<scenario::ExamPhase>(latestStatus_.phase);
  obs.nextWaypoint = static_cast<std::size_t>(latestStatus_.nextWaypoint);
  obs.timeSec = lastStateTime_;
  if (latestState_) {
    const CraneStateMsg& m = *latestState_;
    obs.carrierPosition = {m.state.carrierPosition.x,
                           m.state.carrierPosition.y};
    obs.carrierHeadingRad = m.state.carrierHeadingRad;
    obs.carrierSpeedMps = m.state.carrierSpeedMps;
    obs.slewAngleRad = m.state.slewAngleRad;
    obs.boomPitchRad = m.state.boomPitchRad;
    obs.boomLengthM = m.state.boomLengthM;
    obs.cableLengthM = m.state.cableLengthM;
    obs.workingRadiusM = m.workingRadiusM;
    obs.hookPosition = m.hookPosition;
    obs.cargoPosition = m.cargoPosition;
    obs.cargoAttached = m.state.cargoAttached;
    obs.boomTip = m.boomTip;
    obs.outriggersDeployed = m.outriggerProgress >= 1.0;
  }
  return obs;
}

void DashboardModule::step(double now) {
  if (cb_ == nullptr || now < nextSend_) return;
  nextSend_ = now + cfg_.controlsIntervalSec;
  crane::CraneControls out = manual_;
  if (operator_ && latestState_) out = operator_->decide(buildObservation());
  dash_.setControls(out);
  cb_->updateAttributeValues(controlsPub_, encodeControls(out), now);
  ++framesSent_;
}

}  // namespace cod::sim
