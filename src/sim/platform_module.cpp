#include "sim/platform_module.hpp"

#include <algorithm>
#include <cmath>

namespace cod::sim {

PlatformModule::PlatformModule() : PlatformModule(Config{}) {}

PlatformModule::PlatformModule(Config cfg)
    : core::LogicalProcess("motion-platform"),
      cfg_(cfg),
      interp_(platform::StewartPlatform().homePose()),
      vibration_(cfg.vibrationAmplitudeM, cfg.vibrationCutoffHz,
                 cfg.vibrationSeed) {}

void PlatformModule::bind(core::CommunicationBackbone& cb) {
  cb_ = &cb;
  cb.attach(*this);
  posePub_ = cb.publishObjectClass(*this, kClassPlatformPose);
  stateSub_ = cb.subscribeObjectClass(*this, kClassCraneState);
}

void PlatformModule::reflectAttributeValues(const std::string& className,
                                            const core::AttributeSet& attrs,
                                            double /*timestamp*/) {
  if (className != kClassCraneState) return;
  latestState_ = decodeCraneState(attrs);
}

void PlatformModule::step(double now) {
  const double dt = std::max(0.0, now - lastTick_);
  lastTick_ = now;

  // New posture target once per display frame (§3.4: the interpolation
  // frequency is synchronized with the visual display).
  if (now >= nextFrame_ && latestState_) {
    nextFrame_ = now + cfg_.frameIntervalSec;
    const CraneStateMsg& m = *latestState_;
    const double stateDt = std::max(1e-3, m.simTimeSec - lastStateTime_);
    const double longAccel =
        (m.state.carrierSpeedMps - lastSpeed_) / stateDt;
    lastSpeed_ = m.state.carrierSpeedMps;
    lastStateTime_ = m.simTimeSec;
    platform::Pose target = washout_.map(
        stewart_.homePose(), m.state.carrierPitchRad, m.state.carrierRollRad,
        longAccel, /*lateralAccel=*/m.rolloverIndex * 2.0,
        cfg_.frameIntervalSec);
    vibration_.setEnabled(m.state.engineOn);
    if (!stewart_.reachable(target)) {
      ++unreachableTargets_;
      target = stewart_.clampToWorkspace(target);
    }
    interp_.setTarget(target, cfg_.frameIntervalSec);
  }

  if (dt <= 0.0) return;
  platform::Pose pose = interp_.advance(dt);
  const double vib = vibration_.sample(dt);
  pose.position.z += vib;

  const platform::LegSolution sol = stewart_.inverseKinematics(pose);
  if (haveLegs_) {
    for (int i = 0; i < 6; ++i)
      maxLegStep_ =
          std::max(maxLegStep_, std::abs(sol.lengths[i] - lastLegs_[i]));
  }
  lastLegs_ = sol.lengths;
  haveLegs_ = true;

  if (cb_ != nullptr) {
    PlatformPoseMsg msg;
    msg.position = pose.position;
    msg.qw = pose.orientation.w;
    msg.qx = pose.orientation.x;
    msg.qy = pose.orientation.y;
    msg.qz = pose.orientation.z;
    for (int i = 0; i < 6; ++i) msg.legs[i] = sol.lengths[i];
    msg.vibrationM = vib;
    msg.reachable = sol.reachable;
    lastMsg_ = msg;
    cb_->updateAttributeValues(posePub_, encodePlatformPose(msg), now);
    ++posesPublished_;
  }
}

}  // namespace cod::sim
