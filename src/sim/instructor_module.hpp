// The instructor monitor (§3.3) as a Logical Process.
//
// Two windows: the Status window (Fig. 5) — swing angle, boom raise
// degrees, plumb-cable length, boom elongation, alarm lamps and the running
// exam score — and the Dashboard window (Fig. 6), a pictorial duplication
// of the mockup's panel. The instructor can click an indicator to inject a
// fault into the real dashboard (trouble-shooting training).
#pragma once

#include <array>
#include <optional>
#include <string>

#include "core/cb.hpp"
#include "crane/dashboard.hpp"
#include "sim/object_classes.hpp"
#include "telemetry/monitor.hpp"

namespace cod::sim {

/// The data behind the Status window (Fig. 5).
struct StatusWindow {
  double swingAngleDeg = 0.0;     // current swinging angle of the boom
  double boomRaiseDeg = 0.0;      // raising degrees of the derrick boom
  double cableLengthM = 0.0;      // current length of the plumb cable
  double boomElongationM = 0.0;   // elongated length of the derrick boom
  crane::AlarmSet alarms;
  double score = 100.0;
  std::string phase = "DRIVE TO SITE";
  double elapsedSec = 0.0;
  std::string lastDeduction;

  /// ASCII rendering of the window (sub-windows + dialogue boxes + lamps).
  std::string renderText() const;
};

/// The Dashboard window (Fig. 6): the instructor's mirror of the panel.
struct DashboardWindow {
  std::array<double, crane::kMeterCount> meters{};
  std::array<crane::MeterFault, crane::kMeterCount> injectedFaults{};
  crane::CraneControls controls;  // echo of the trainee's inputs

  std::string renderText() const;
};

class InstructorModule : public core::LogicalProcess {
 public:
  InstructorModule();

  void bind(core::CommunicationBackbone& cb);

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet& attrs,
                              double timestamp) override;

  const StatusWindow& statusWindow() const { return status_; }
  const DashboardWindow& dashboardWindow() const { return dashWindow_; }

  /// Wire the station's third window to a telemetry HealthMonitor (an LP
  /// on the instructor's computer). The monitor must outlive this module.
  void attachClusterMonitor(const telemetry::HealthMonitor* monitor) {
    clusterMonitor_ = monitor;
  }
  const telemetry::HealthMonitor* clusterMonitor() const {
    return clusterMonitor_;
  }
  /// The Cluster Health window: live per-node health table plus the alarm
  /// feed. Empty-frame text when no monitor is attached (telemetry off).
  std::string renderClusterText() const;

  /// "Click" an indicator on the dashboard window: inject a fault into the
  /// trainee's physical panel (via instructor.commands).
  void injectFault(crane::Meter meter, crane::MeterFault fault);
  void refuel();

  std::uint64_t stateUpdatesSeen() const { return stateUpdates_; }
  /// Score-stream accounting: the scenario.status subscription rides a
  /// reliable-ordered channel, so every published status must arrive and
  /// the revision counter can never regress.
  std::uint64_t statusUpdatesSeen() const { return statusUpdates_; }
  std::int64_t lastScoreRevision() const { return lastRevision_; }
  std::int64_t deductionsSeen() const { return deductionsSeen_; }
  std::uint64_t revisionRegressions() const { return revisionRegressions_; }

 private:
  StatusWindow status_;
  DashboardWindow dashWindow_;

  core::CommunicationBackbone* cb_ = nullptr;
  const telemetry::HealthMonitor* clusterMonitor_ = nullptr;
  core::PublicationHandle commandPub_ = core::kInvalidHandle;
  core::SubscriptionHandle stateSub_ = core::kInvalidHandle;
  core::SubscriptionHandle statusSub_ = core::kInvalidHandle;
  core::SubscriptionHandle controlsSub_ = core::kInvalidHandle;
  std::uint64_t stateUpdates_ = 0;
  std::uint64_t statusUpdates_ = 0;
  std::int64_t lastRevision_ = 0;
  std::int64_t deductionsSeen_ = 0;
  std::uint64_t revisionRegressions_ = 0;
  double now_ = 0.0;
};

}  // namespace cod::sim
