#include "sim/scenario_module.hpp"

#include <cstdio>

namespace cod::sim {

ScenarioModule::ScenarioModule(scenario::Course course,
                               scenario::ScoringRules rules)
    : core::LogicalProcess("scenario"), exam_(std::move(course), rules) {}

void ScenarioModule::bind(core::CommunicationBackbone& cb) {
  cb_ = &cb;
  cb.attach(*this);
  // The score stream must never drop a deduction, whatever QoS a monitor
  // asked for: mandate reliable delivery at the publication.
  statusPub_ = cb.publishObjectClass(*this, kClassScenarioStatus,
                                     net::QosClass::kReliableOrdered);
  stateSub_ = cb.subscribeObjectClass(*this, kClassCraneState);
  eventSub_ = cb.subscribeObjectClass(*this, kClassScenarioEvents);
}

void ScenarioModule::reflectAttributeValues(const std::string& className,
                                            const core::AttributeSet& attrs,
                                            double /*timestamp*/) {
  if (className == kClassScenarioEvents) {
    const ScenarioEventMsg ev = decodeScenarioEvent(attrs);
    if (ev.kind == "barHit" && ev.index >= 0)
      pendingBarHits_.push_back(static_cast<std::size_t>(ev.index));
    return;
  }
  if (className != kClassCraneState) return;
  const CraneStateMsg m = decodeCraneState(attrs);
  latestState_ = m;

  scenario::ExamObservation obs;
  obs.timeSec = m.simTimeSec;
  obs.carrierPosition = {m.state.carrierPosition.x, m.state.carrierPosition.y};
  obs.carrierSpeedMps = m.state.carrierSpeedMps;
  obs.hookPosition = m.hookPosition;
  obs.cargoPosition = m.cargoPosition;
  obs.cargoAttached = m.state.cargoAttached;
  obs.alarmBits = m.alarmBits;
  obs.barHits = std::move(pendingBarHits_);
  pendingBarHits_.clear();
  exam_.observe(obs);
}

void ScenarioModule::step(double now) {
  recordClusterAnnotations(now);
  // 10 Hz status stream is plenty for the instructor display, but scoring
  // events publish immediately: each revision reaches the wire in the
  // tick it happened, and the reliable channel takes it from there.
  if (now - lastPublish_ >= 0.1 ||
      exam_.revision() != lastPublishedRevision_) {
    publishStatus(now);
    lastPublish_ = now;
  }
}

void ScenarioModule::recordClusterAnnotations(double now) {
  if (clusterMonitor_ == nullptr) return;
  // Drain the append-only alarm feed into the debrief one note per tick:
  // each annotation bumps the exam revision, so each gets its own status
  // publish and the wire stream carries every note's text, not just the
  // newest of a same-tick burst.
  const auto& alarms = clusterMonitor_->alarms();
  if (alarmsRecorded_ < alarms.size()) {
    const telemetry::HealthAlarm& a = alarms[alarmsRecorded_++];
    exam_.annotate(now, std::string("cluster: ") +
                            telemetry::alarmKindName(a.kind) + " " + a.node +
                            " — " + a.detail);
  }
  // One closing note when the exam ends: the worst loss any node saw
  // between two telemetry snapshots over the whole run.
  if (!peakLossAnnotated_ && exam_.score().finished()) {
    peakLossAnnotated_ = true;
    if (clusterMonitor_->peakLossPct() > 0.0) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "cluster: peak inbound loss %.1f%% (%s)",
                    clusterMonitor_->peakLossPct(),
                    clusterMonitor_->peakLossNode().c_str());
      exam_.annotate(now, buf);
    }
  }
}

void ScenarioModule::publishStatus(double time) {
  if (cb_ == nullptr) return;
  const scenario::ScoreSheet& sheet = exam_.score();
  ScenarioStatusMsg m;
  m.phase = static_cast<std::int64_t>(sheet.phase);
  m.score = sheet.total;
  m.elapsedSec = sheet.elapsedSec;
  m.nextWaypoint = static_cast<std::int64_t>(exam_.nextWaypoint());
  if (!sheet.deductions.empty()) m.lastDeduction = sheet.deductions.back().reason;
  m.finished = sheet.finished();
  m.revision = static_cast<std::int64_t>(exam_.revision());
  m.deductionCount = static_cast<std::int64_t>(sheet.deductions.size());
  if (!sheet.annotations.empty())
    m.lastAnnotation = sheet.annotations.back().note;
  m.annotationCount = static_cast<std::int64_t>(sheet.annotations.size());
  cb_->updateAttributeValues(statusPub_, encodeScenarioStatus(m), time);
  lastPublishedRevision_ = exam_.revision();
  ++statusPublishes_;
}

}  // namespace cod::sim
