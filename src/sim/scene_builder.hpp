// Builds the visual scene and the collision world for a training course.
//
// The visual side can be padded with decoration to hit a requested polygon
// budget (the paper's scene holds 3235 polygons); the collision side holds
// only what the dynamics module tests: the bars and the cargo.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "collision/world.hpp"
#include "physics/terrain.hpp"
#include "render/scene.hpp"
#include "scenario/course.hpp"

namespace cod::sim {

/// Scene-object ids the simulator updates every frame.
struct DynamicSceneIds {
  std::uint32_t carrier = 0;
  std::uint32_t boom = 0;
  std::uint32_t cargo = 0;
  std::uint32_t hook = 0;
};

struct BuiltScene {
  render::Scene scene;
  DynamicSceneIds ids;
};

/// Visual scene: terrain patch, route markers, zones, bars, crane, cargo,
/// plus procedural "site clutter" boxes until ~`targetPolygons` triangles.
BuiltScene buildTrainingScene(const scenario::Course& course,
                              std::size_t targetPolygons = 3235,
                              std::uint64_t seed = 7);

/// Collision world: one object per bar (beam + posts as one shape is
/// overkill; the beam cylinder is what the cargo can hit) and the cargo box.
/// Returns bar object ids in course order plus the cargo id.
struct BuiltCollision {
  collision::World world{8.0};
  std::vector<std::uint32_t> barIds;
  std::uint32_t cargoId = 0;
};

std::unique_ptr<BuiltCollision> buildCollisionWorld(
    const scenario::Course& course);

/// Rigid transform placing a bar's beam (a z-axis cylinder of length
/// `bar.lengthM`) horizontally at its position/heading/height.
math::Mat4 barBeamTransform(const scenario::Bar& bar);

}  // namespace cod::sim
