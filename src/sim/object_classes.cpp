#include "sim/object_classes.hpp"

namespace cod::sim {

using core::AttributeSet;

AttributeSet encodeControls(const crane::CraneControls& c) {
  AttributeSet a;
  a.set("steering", c.steering);
  a.set("throttle", c.throttle);
  a.set("brake", c.brake);
  a.set("reverse", c.reverse);
  a.set("ignition", c.ignition);
  a.set("joySlew", c.joystickSlew);
  a.set("joyLuff", c.joystickLuff);
  a.set("joyTele", c.joystickTelescope);
  a.set("joyHoist", c.joystickHoist);
  a.set("hookLatch", c.hookLatch);
  a.set("outriggers", c.outriggersDeploy);
  return a;
}

crane::CraneControls decodeControls(const AttributeSet& a) {
  crane::CraneControls c;
  c.steering = a.getDouble("steering");
  c.throttle = a.getDouble("throttle");
  c.brake = a.getDouble("brake");
  c.reverse = a.getBool("reverse");
  c.ignition = a.getBool("ignition");
  c.joystickSlew = a.getDouble("joySlew");
  c.joystickLuff = a.getDouble("joyLuff");
  c.joystickTelescope = a.getDouble("joyTele");
  c.joystickHoist = a.getDouble("joyHoist");
  c.hookLatch = a.getBool("hookLatch");
  c.outriggersDeploy = a.getBool("outriggers");
  return c;
}

AttributeSet encodeCraneState(const CraneStateMsg& m) {
  AttributeSet a;
  const crane::CraneState& s = m.state;
  a.set("carrierPos", s.carrierPosition);
  a.set("heading", s.carrierHeadingRad);
  a.set("pitch", s.carrierPitchRad);
  a.set("roll", s.carrierRollRad);
  a.set("speed", s.carrierSpeedMps);
  a.set("slew", s.slewAngleRad);
  a.set("boomPitch", s.boomPitchRad);
  a.set("boomLen", s.boomLengthM);
  a.set("cableLen", s.cableLengthM);
  a.set("hookLoad", s.hookLoadKg);
  a.set("cargoAttached", s.cargoAttached);
  a.set("engineOn", s.engineOn);
  a.set("engineRpm", s.engineRpm);
  a.set("boomTip", m.boomTip);
  a.set("hookPos", m.hookPosition);
  a.set("cargoPos", m.cargoPosition);
  a.set("workRadius", m.workingRadiusM);
  a.set("momentUtil", m.momentUtilisation);
  a.set("rollover", m.rolloverIndex);
  a.set("alarms", static_cast<std::int64_t>(m.alarmBits));
  a.set("simTime", m.simTimeSec);
  a.set("wind", m.windSpeedMps);
  a.set("outriggerProg", m.outriggerProgress);
  return a;
}

CraneStateMsg decodeCraneState(const AttributeSet& a) {
  CraneStateMsg m;
  crane::CraneState& s = m.state;
  s.carrierPosition = a.getVec3("carrierPos");
  s.carrierHeadingRad = a.getDouble("heading");
  s.carrierPitchRad = a.getDouble("pitch");
  s.carrierRollRad = a.getDouble("roll");
  s.carrierSpeedMps = a.getDouble("speed");
  s.slewAngleRad = a.getDouble("slew");
  s.boomPitchRad = a.getDouble("boomPitch");
  s.boomLengthM = a.getDouble("boomLen");
  s.cableLengthM = a.getDouble("cableLen");
  s.hookLoadKg = a.getDouble("hookLoad");
  s.cargoAttached = a.getBool("cargoAttached");
  s.engineOn = a.getBool("engineOn");
  s.engineRpm = a.getDouble("engineRpm");
  m.boomTip = a.getVec3("boomTip");
  m.hookPosition = a.getVec3("hookPos");
  m.cargoPosition = a.getVec3("cargoPos");
  m.workingRadiusM = a.getDouble("workRadius");
  m.momentUtilisation = a.getDouble("momentUtil");
  m.rolloverIndex = a.getDouble("rollover");
  m.alarmBits = static_cast<std::uint32_t>(a.getInt("alarms"));
  m.simTimeSec = a.getDouble("simTime");
  m.windSpeedMps = a.getDouble("wind");
  m.outriggerProgress = a.getDouble("outriggerProg");
  return m;
}

AttributeSet encodeScenarioEvent(const ScenarioEventMsg& m) {
  AttributeSet a;
  a.set("kind", m.kind);
  a.set("index", m.index);
  a.set("pos", m.position);
  a.set("time", m.simTimeSec);
  return a;
}

ScenarioEventMsg decodeScenarioEvent(const AttributeSet& a) {
  ScenarioEventMsg m;
  m.kind = a.getString("kind");
  m.index = a.getInt("index", -1);
  m.position = a.getVec3("pos");
  m.simTimeSec = a.getDouble("time");
  return m;
}

AttributeSet encodeScenarioStatus(const ScenarioStatusMsg& m) {
  AttributeSet a;
  a.set("phase", m.phase);
  a.set("score", m.score);
  a.set("elapsed", m.elapsedSec);
  a.set("nextWaypoint", m.nextWaypoint);
  a.set("lastDeduction", m.lastDeduction);
  a.set("finished", m.finished);
  a.set("revision", m.revision);
  a.set("deductions", m.deductionCount);
  a.set("lastAnnotation", m.lastAnnotation);
  a.set("annotations", m.annotationCount);
  return a;
}

ScenarioStatusMsg decodeScenarioStatus(const AttributeSet& a) {
  ScenarioStatusMsg m;
  m.phase = a.getInt("phase");
  m.score = a.getDouble("score", 100.0);
  m.elapsedSec = a.getDouble("elapsed");
  m.nextWaypoint = a.getInt("nextWaypoint");
  m.lastDeduction = a.getString("lastDeduction");
  m.finished = a.getBool("finished");
  m.revision = a.getInt("revision");
  m.deductionCount = a.getInt("deductions");
  m.lastAnnotation = a.getString("lastAnnotation");
  m.annotationCount = a.getInt("annotations");
  return m;
}

AttributeSet encodeInstructorCommand(const InstructorCommandMsg& m) {
  AttributeSet a;
  a.set("command", m.command);
  a.set("meter", m.meter);
  a.set("fault", m.fault);
  return a;
}

InstructorCommandMsg decodeInstructorCommand(const AttributeSet& a) {
  InstructorCommandMsg m;
  m.command = a.getString("command");
  m.meter = a.getInt("meter");
  m.fault = a.getInt("fault");
  return m;
}

AttributeSet encodePlatformPose(const PlatformPoseMsg& m) {
  AttributeSet a;
  a.set("pos", m.position);
  a.set("qw", m.qw);
  a.set("qx", m.qx);
  a.set("qy", m.qy);
  a.set("qz", m.qz);
  for (int i = 0; i < 6; ++i)
    a.set("leg" + std::to_string(i), m.legs[i]);
  a.set("vibration", m.vibrationM);
  a.set("reachable", m.reachable);
  return a;
}

PlatformPoseMsg decodePlatformPose(const AttributeSet& a) {
  PlatformPoseMsg m;
  m.position = a.getVec3("pos");
  m.qw = a.getDouble("qw", 1.0);
  m.qx = a.getDouble("qx");
  m.qy = a.getDouble("qy");
  m.qz = a.getDouble("qz");
  for (int i = 0; i < 6; ++i)
    m.legs[i] = a.getDouble("leg" + std::to_string(i));
  m.vibrationM = a.getDouble("vibration");
  m.reachable = a.getBool("reachable", true);
  return m;
}

AttributeSet encodeSyncReady(const SyncReadyMsg& m) {
  AttributeSet a;
  a.set("channel", m.channel);
  a.set("frame", m.frame);
  return a;
}

SyncReadyMsg decodeSyncReady(const AttributeSet& a) {
  return {a.getInt("channel"), a.getInt("frame")};
}

AttributeSet encodeSyncSwap(const SyncSwapMsg& m) {
  AttributeSet a;
  a.set("frame", m.frame);
  return a;
}

SyncSwapMsg decodeSyncSwap(const AttributeSet& a) {
  return {a.getInt("frame")};
}

}  // namespace cod::sim
