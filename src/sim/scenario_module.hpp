// The scenario control module (§3.5) as a Logical Process: consumes
// crane.state and scenario.events, advances the exam state machine, and
// publishes scenario.status (phase + running score) for the instructor
// monitor and the dashboard module's scripted operator.
//
// Optionally watches a co-located telemetry HealthMonitor: cluster-health
// alarms become exam annotations as they fire, and the run's peak inbound
// loss is annotated when the exam finishes — so a debrief shows whether a
// bad score coincided with a sick network.
#pragma once

#include "core/cb.hpp"
#include "scenario/exam.hpp"
#include "sim/object_classes.hpp"
#include "telemetry/monitor.hpp"

namespace cod::sim {

class ScenarioModule : public core::LogicalProcess {
 public:
  ScenarioModule(scenario::Course course, scenario::ScoringRules rules = {});

  void bind(core::CommunicationBackbone& cb);

  /// Watch a HealthMonitor (an LP on this module's computer) and record
  /// its alarm feed into the exam's debrief annotations. The monitor must
  /// outlive this module; pass null to stop watching.
  void attachClusterMonitor(const telemetry::HealthMonitor* monitor) {
    clusterMonitor_ = monitor;
  }

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet& attrs,
                              double timestamp) override;
  void step(double now) override;

  const scenario::Exam& exam() const { return exam_; }
  bool finished() const { return exam_.score().finished(); }
  /// Status updates pushed so far (10 Hz cadence + one per scoring event).
  std::uint64_t statusPublishes() const { return statusPublishes_; }

 private:
  void publishStatus(double time);
  void recordClusterAnnotations(double now);

  scenario::Exam exam_;
  std::vector<std::size_t> pendingBarHits_;
  std::optional<CraneStateMsg> latestState_;

  core::CommunicationBackbone* cb_ = nullptr;
  core::PublicationHandle statusPub_ = core::kInvalidHandle;
  core::SubscriptionHandle stateSub_ = core::kInvalidHandle;
  core::SubscriptionHandle eventSub_ = core::kInvalidHandle;
  const telemetry::HealthMonitor* clusterMonitor_ = nullptr;
  std::size_t alarmsRecorded_ = 0;
  bool peakLossAnnotated_ = false;
  double lastPublish_ = -1.0;
  std::uint64_t lastPublishedRevision_ = 0;
  std::uint64_t statusPublishes_ = 0;
};

}  // namespace cod::sim
