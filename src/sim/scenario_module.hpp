// The scenario control module (§3.5) as a Logical Process: consumes
// crane.state and scenario.events, advances the exam state machine, and
// publishes scenario.status (phase + running score) for the instructor
// monitor and the dashboard module's scripted operator.
#pragma once

#include "core/cb.hpp"
#include "scenario/exam.hpp"
#include "sim/object_classes.hpp"

namespace cod::sim {

class ScenarioModule : public core::LogicalProcess {
 public:
  ScenarioModule(scenario::Course course, scenario::ScoringRules rules = {});

  void bind(core::CommunicationBackbone& cb);

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet& attrs,
                              double timestamp) override;
  void step(double now) override;

  const scenario::Exam& exam() const { return exam_; }
  bool finished() const { return exam_.score().finished(); }
  /// Status updates pushed so far (10 Hz cadence + one per scoring event).
  std::uint64_t statusPublishes() const { return statusPublishes_; }

 private:
  void publishStatus(double time);

  scenario::Exam exam_;
  std::vector<std::size_t> pendingBarHits_;
  std::optional<CraneStateMsg> latestState_;

  core::CommunicationBackbone* cb_ = nullptr;
  core::PublicationHandle statusPub_ = core::kInvalidHandle;
  core::SubscriptionHandle stateSub_ = core::kInvalidHandle;
  core::SubscriptionHandle eventSub_ = core::kInvalidHandle;
  double lastPublish_ = -1.0;
  std::uint64_t lastPublishedRevision_ = 0;
  std::uint64_t statusPublishes_ = 0;
};

}  // namespace cod::sim
