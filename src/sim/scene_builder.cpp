#include "sim/scene_builder.hpp"

#include "math/rng.hpp"

namespace cod::sim {

using math::Mat4;
using math::Quat;
using math::Vec3;
using render::Color;
using render::Mesh;

math::Mat4 barBeamTransform(const scenario::Bar& bar) {
  // The beam mesh is a z-axis cylinder; lay it flat along the heading.
  const Quat lay = Quat::fromAxisAngle({0, 1, 0}, math::kPi / 2.0);
  const Quat yaw = Quat::fromAxisAngle({0, 0, 1}, bar.headingRad);
  return Mat4::rigid(yaw * lay,
                     {bar.position.x, bar.position.y, bar.heightM});
}

BuiltScene buildTrainingScene(const scenario::Course& course,
                              std::size_t targetPolygons, std::uint64_t seed) {
  BuiltScene built;
  render::Scene& scene = built.scene;

  // Ground: coarse plane; its subdivision is adjusted last to close in on
  // the polygon budget.
  const Color ground{95, 120, 70};
  const Color mark{230, 230, 230};

  // Zones: flat rings (squashed cylinders) marking pick/drop circles.
  for (const scenario::CargoZone& z :
       {course.pickZone, course.dropZone}) {
    scene.add("zone",
              Mesh::cylinder(z.radiusM, 0.02, 18, mark),
              Mat4::translation({z.center.x, z.center.y, 0.02}));
  }
  // Route markers: small posts at each waypoint.
  for (const scenario::Waypoint& w : course.driveRoute) {
    scene.add("marker", Mesh::cylinder(0.12, 1.0, 6, {220, 60, 60}),
              Mat4::translation({w.position.x, w.position.y, 0.5}));
  }
  // Bars: beam + two posts each.
  for (const scenario::Bar& bar : course.bars) {
    scene.add("bar.beam",
              Mesh::cylinder(bar.barRadiusM, bar.lengthM, 8, {240, 200, 40}),
              barBeamTransform(bar));
    const Vec3 along{std::cos(bar.headingRad), std::sin(bar.headingRad), 0};
    for (const double s : {-0.5, 0.5}) {
      const Vec3 foot = Vec3{bar.position.x, bar.position.y, 0} +
                        along * (s * bar.lengthM);
      scene.add("bar.post",
                Mesh::cylinder(0.05, bar.heightM, 6, {180, 180, 180}),
                Mat4::translation({foot.x, foot.y, bar.heightM / 2}));
    }
  }

  // The crane itself: carrier box + boom box + hook + cargo (dynamic).
  built.ids.carrier = scene.add(
      "crane.carrier", Mesh::box({6.5, 2.5, 2.0}, {210, 160, 30}),
      Mat4::translation({course.startPosition.x, course.startPosition.y, 1.0}));
  built.ids.boom =
      scene.add("crane.boom", Mesh::box({1.0, 0.5, 0.5}, {200, 60, 30}),
                Mat4::translation({0, 0, -100}));  // placed by the display LP
  built.ids.hook = scene.add("crane.hook", Mesh::box({0.3, 0.3, 0.3}, {40, 40, 40}),
                             Mat4::translation({0, 0, -100}));
  built.ids.cargo = scene.add(
      "cargo", Mesh::box({1.0, 1.0, 1.0}, {60, 90, 200}),
      Mat4::translation({course.pickZone.center.x, course.pickZone.center.y,
                         0.5}));

  // Site clutter (stacked materials, sheds) until close to the budget,
  // then the ground plane soaks up the remainder.
  math::Rng rng(seed);
  constexpr std::size_t kGroundReserve = 200;  // triangles left for terrain
  while (scene.polygonCount() + 12 + kGroundReserve <= targetPolygons) {
    const double x = rng.uniform(0.0, 130.0);
    const double y = rng.uniform(0.0, 80.0);
    const double s = rng.uniform(0.8, 3.0);
    scene.add("clutter", Mesh::box({s, s * rng.uniform(0.6, 1.4), s},
                                   {static_cast<std::uint8_t>(rng.uniformInt(90, 200)),
                                    static_cast<std::uint8_t>(rng.uniformInt(90, 200)),
                                    static_cast<std::uint8_t>(rng.uniformInt(90, 200))}),
              Mat4::translation({x, y, s / 2}));
  }
  // Ground: pick a subdivision whose 2*n^2 triangles land near the target.
  const std::size_t remaining =
      targetPolygons > scene.polygonCount() ? targetPolygons - scene.polygonCount()
                                            : 2;
  int subdiv = 1;
  while (static_cast<std::size_t>(2 * (subdiv + 1) * (subdiv + 1)) <= remaining)
    ++subdiv;
  scene.add("ground", Mesh::plane(140.0, 90.0, subdiv, ground),
            Mat4::translation({65.0, 40.0, 0.0}));
  return built;
}

std::unique_ptr<BuiltCollision> buildCollisionWorld(
    const scenario::Course& course) {
  auto built = std::make_unique<BuiltCollision>();
  for (const scenario::Bar& bar : course.bars) {
    built->barIds.push_back(built->world.add(
        "bar", collision::Shape::cylinder(bar.barRadiusM, bar.lengthM, 8),
        barBeamTransform(bar)));
  }
  built->cargoId = built->world.add(
      "cargo", collision::Shape::box({1.0, 1.0, 1.0}),
      Mat4::translation(
          {course.pickZone.center.x, course.pickZone.center.y, 0.5}));
  return built;
}

}  // namespace cod::sim
