// The dynamics module (§3.6) as a Logical Process.
//
// The authoritative world model: consumes dashboard control signals,
// integrates the carrier (terrain following), the crane joints, and the
// lift-hook inertia oscillation; runs multi-level collision detection of
// the cargo against the course bars; evaluates the safety envelope; and
// publishes the crane.state snapshot plus scenario.events.
#pragma once

#include <memory>
#include <optional>

#include "core/cb.hpp"
#include "crane/dynamics.hpp"
#include "crane/kinematics.hpp"
#include "crane/safety.hpp"
#include "crane/load_chart.hpp"
#include "physics/pendulum.hpp"
#include "physics/terrain.hpp"
#include "physics/vehicle.hpp"
#include "physics/wind.hpp"
#include "scenario/course.hpp"
#include "sim/object_classes.hpp"
#include "sim/scene_builder.hpp"

namespace cod::sim {

class DynamicsModule : public core::LogicalProcess {
 public:
  struct Config {
    scenario::Course course;
    double fixedDtSec = 0.02;       // 50 Hz internal integration
    double terrainAmplitudeM = 0.35;
    std::uint64_t terrainSeed = 11;
    double hookCaptureRadiusM = 0.9;
    double barHitCooldownSec = 1.0;
    /// Site wind (calm by default; examples/benches raise it).
    physics::WindParams wind;
    std::uint64_t windSeed = 41;
    /// Frontal drag area of the hanging cargo, m^2.
    double cargoDragAreaM2 = 1.2;
    /// Consult the rated-capacity chart instead of the flat moment limit.
    bool useLoadChart = true;
  };

  explicit DynamicsModule(Config cfg);

  /// Attach to the resident CB and register publications/subscriptions.
  void bind(core::CommunicationBackbone& cb);

  void step(double now) override;

  // ---- Introspection (tests, examples) ----------------------------------
  const crane::CraneState& craneState() const { return state_; }
  const physics::Vehicle& vehicle() const { return vehicle_; }
  const physics::Terrain& terrain() const { return terrain_; }
  const physics::CablePendulum& pendulum() const { return pendulum_; }
  const crane::CraneKinematics& kinematics() const { return kin_; }
  math::Vec3 hookPosition() const { return pendulum_.bobPosition(); }
  math::Vec3 cargoPosition() const { return cargoPos_; }
  bool cargoAttached() const { return state_.cargoAttached; }
  double simTime() const { return simTime_; }
  std::uint64_t barHitsEmitted() const { return barHitsEmitted_; }
  const collision::QueryStats& collisionStats() const { return collStats_; }
  const physics::Wind& wind() const { return wind_; }
  physics::Wind& wind() { return wind_; }
  const crane::Outriggers& outriggers() const { return outriggers_; }

  /// Latest controls seen (for the instructor's dashboard mirror in tests).
  const crane::CraneControls& controls() const { return controls_; }

 private:
  void substep(double dt);
  void publishState();
  void emitEvent(const std::string& kind, std::int64_t index,
                 const math::Vec3& pos);

  Config cfg_;
  physics::Terrain terrain_;
  physics::Vehicle vehicle_;
  crane::CraneJointDynamics joints_;
  crane::EngineModel engine_;
  crane::CraneKinematics kin_;
  crane::SafetyEnvelope safety_;
  physics::CablePendulum pendulum_;
  physics::Wind wind_;
  crane::Outriggers outriggers_;
  std::unique_ptr<BuiltCollision> collisionWorld_;

  crane::CraneState state_;
  crane::CraneControls controls_;
  math::Vec3 cargoPos_;
  crane::SafetyEnvelope::Assessment lastAssessment_;
  std::vector<double> barHitCooldown_;
  collision::QueryStats collStats_;

  core::CommunicationBackbone* cb_ = nullptr;
  core::PublicationHandle statePub_ = core::kInvalidHandle;
  core::PublicationHandle eventPub_ = core::kInvalidHandle;
  core::SubscriptionHandle controlsSub_ = core::kInvalidHandle;

  double simTime_ = 0.0;
  std::optional<double> lastNow_;
  std::uint64_t barHitsEmitted_ = 0;
};

}  // namespace cod::sim
