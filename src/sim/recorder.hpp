// Session recording and replay.
//
// A training device wants debriefing: the instructor replays the trainee's
// run after the fact. The recorder is just another LP — it subscribes to
// the streams of interest and journals every reflection with its
// timestamp; the replayer is a publisher LP that feeds a journal back into
// a (possibly display-only) cluster at original speed, which also shows off
// the COD property that modules never know who produces their data.
#pragma once

#include <string>
#include <vector>

#include "core/cb.hpp"

namespace cod::sim {

/// One journaled update.
struct RecordedUpdate {
  double timeSec = 0.0;  // publisher timestamp
  std::string className;
  core::AttributeSet attrs;
};

/// An in-memory journal with binary (de)serialization.
class Recording {
 public:
  void append(RecordedUpdate r) { records_.push_back(std::move(r)); }
  const std::vector<RecordedUpdate>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  double durationSec() const {
    return records_.empty() ? 0.0 : records_.back().timeSec;
  }

  /// Serialize to bytes (versioned container).
  std::vector<std::uint8_t> serialize() const;
  static std::optional<Recording> deserialize(
      std::span<const std::uint8_t> bytes);

  bool save(const std::string& path) const;
  static std::optional<Recording> load(const std::string& path);

 private:
  std::vector<RecordedUpdate> records_;
};

/// LP that journals every update of the given object classes.
class SessionRecorder : public core::LogicalProcess {
 public:
  explicit SessionRecorder(std::vector<std::string> classNames);

  void bind(core::CommunicationBackbone& cb);

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet& attrs,
                              double timestamp) override;

  const Recording& recording() const { return recording_; }
  Recording takeRecording() { return std::move(recording_); }

 private:
  std::vector<std::string> classNames_;
  Recording recording_;
};

/// LP that republishes a journal in original time order. Publication
/// classes are registered from the distinct class names in the journal;
/// subscribers (displays, instructor monitor) connect as usual.
class SessionReplayer : public core::LogicalProcess {
 public:
  /// `timeScale` > 1 replays faster than real time.
  explicit SessionReplayer(Recording recording, double timeScale = 1.0);

  /// How long to hold the first record while discovery wires the viewers
  /// up (replay starts early if a channel connects sooner).
  void setStartGraceSec(double sec) { graceSec_ = sec; }

  void bind(core::CommunicationBackbone& cb);

  void step(double now) override;

  bool finished() const { return cursor_ >= recording_.size(); }
  std::size_t published() const { return cursor_; }
  double replayClockSec() const { return replayClock_; }

 private:
  Recording recording_;
  double timeScale_;
  double graceSec_ = 1.0;
  std::size_t cursor_ = 0;
  double replayClock_ = 0.0;
  std::optional<double> firstStep_;
  std::optional<double> startNow_;
  std::map<std::string, core::PublicationHandle> pubs_;
  core::CommunicationBackbone* cb_ = nullptr;
};

}  // namespace cod::sim
