#include "sim/recorder.hpp"

#include <fstream>

#include "net/wire.hpp"

namespace cod::sim {

namespace {
constexpr std::uint32_t kMagic = 0x434F4452;  // "CODR"
constexpr std::uint16_t kVersion = 1;
}  // namespace

std::vector<std::uint8_t> Recording::serialize() const {
  net::WireWriter w;
  w.u32(kMagic);
  w.u16(kVersion);
  w.u32(static_cast<std::uint32_t>(records_.size()));
  for (const RecordedUpdate& r : records_) {
    w.f64(r.timeSec);
    w.str(r.className);
    w.blob(r.attrs.encode());
  }
  return w.take();
}

std::optional<Recording> Recording::deserialize(
    std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  if (r.u32() != kMagic) return std::nullopt;
  const auto version = r.u16();
  if (!version || *version != kVersion) return std::nullopt;
  const auto count = r.u32();
  if (!count) return std::nullopt;
  Recording rec;
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto t = r.f64();
    auto cls = r.str();
    const auto blob = r.blob();
    if (!t || !cls || !blob) return std::nullopt;
    auto attrs = core::AttributeSet::decode(*blob);
    if (!attrs) return std::nullopt;
    rec.append({*t, std::move(*cls), std::move(*attrs)});
  }
  return rec;
}

bool Recording::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const auto bytes = serialize();
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(f);
}

std::optional<Recording> Recording::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  return deserialize(bytes);
}

SessionRecorder::SessionRecorder(std::vector<std::string> classNames)
    : core::LogicalProcess("recorder"), classNames_(std::move(classNames)) {}

void SessionRecorder::bind(core::CommunicationBackbone& cb) {
  cb.attach(*this);
  for (const std::string& cls : classNames_) cb.subscribeObjectClass(*this, cls);
}

void SessionRecorder::reflectAttributeValues(const std::string& className,
                                             const core::AttributeSet& attrs,
                                             double timestamp) {
  recording_.append({timestamp, className, attrs});
}

SessionReplayer::SessionReplayer(Recording recording, double timeScale)
    : core::LogicalProcess("replayer"),
      recording_(std::move(recording)),
      timeScale_(timeScale > 0.0 ? timeScale : 1.0) {}

void SessionReplayer::bind(core::CommunicationBackbone& cb) {
  cb_ = &cb;
  cb.attach(*this);
  for (const RecordedUpdate& r : recording_.records()) {
    // A journal replay is evidence for the debrief: every record must
    // reach the viewers even over a lossy LAN, so replay channels are
    // reliable regardless of what the viewer asked for.
    if (!pubs_.contains(r.className))
      pubs_[r.className] = cb.publishObjectClass(
          *this, r.className, net::QosClass::kReliableOrdered);
  }
}

void SessionReplayer::step(double now) {
  if (cb_ == nullptr || finished()) return;
  if (!startNow_) {
    // Hold the journal until EVERY replayed class has a viewer channel,
    // or the grace period runs out (maybe nobody subscribes to some
    // classes). Starting on the first channel would be premature: a
    // reliable channel is only owed records from its creation onwards, so
    // records replayed before a slow class finishes its handshake would
    // be legitimately — and permanently — missed by that viewer.
    if (!firstStep_) firstStep_ = now;
    bool allConnected = !pubs_.empty();
    for (const auto& [cls, h] : pubs_)
      allConnected = allConnected && cb_->channelCount(h) > 0;
    if (!allConnected && now - *firstStep_ < graceSec_) return;
    startNow_ = now;
  }
  // Map cluster time to journal time (records may not start at zero).
  const double t0 = recording_.records().front().timeSec;
  replayClock_ = t0 + (now - *startNow_) * timeScale_;
  while (cursor_ < recording_.size() &&
         recording_.records()[cursor_].timeSec <= replayClock_) {
    const RecordedUpdate& r = recording_.records()[cursor_];
    cb_->updateAttributeValues(pubs_.at(r.className), r.attrs, r.timeSec);
    ++cursor_;
  }
}

}  // namespace cod::sim
