// CraneSimulatorApp — the whole rack of Figure 11 in one object.
//
// Eight simulated computers on the COD, exactly as the paper deploys them:
//   computers 1-3 : visual display channels (left / centre / right)
//   computer  4   : synchronization server
//   computer  5   : dashboard module (+ scripted trainee)
//   computer  6   : motion platform controller
//   computer  7   : dynamics module + scenario module (two LPs, one box)
//   computer  8   : instructor monitor + audio module (two LPs, one box)
#pragma once

#include <memory>

#include "core/cluster.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/publisher.hpp"
#include "sim/audio_module.hpp"
#include "sim/dashboard_module.hpp"
#include "sim/display_module.hpp"
#include "sim/dynamics_module.hpp"
#include "sim/instructor_module.hpp"
#include "sim/platform_module.hpp"
#include "sim/scenario_module.hpp"

namespace cod::sim {

class CraneSimulatorApp {
 public:
  struct Config {
    scenario::Course course = scenario::standardLicensureCourse();
    scenario::OperatorProfile operatorProfile =
        scenario::OperatorProfile::careful();
    int displayCount = 3;
    int fbWidth = 96;   // small offscreen targets keep full-system runs fast
    int fbHeight = 72;
    double frameIntervalSec = 1.0 / 16.0;
    bool useSyncServer = true;
    std::size_t targetPolygons = 3235;
    /// Site wind and the cargo's frontal drag area (m^2) — a dense block
    /// barely feels wind; a sheet-like load weathervanes.
    physics::WindParams wind;
    double cargoDragAreaM2 = 1.2;
    core::CodCluster::Config cluster;
    /// Cluster-health export: every computer runs a TelemetryPublisher,
    /// the instructor station aggregates with a HealthMonitor (Cluster
    /// Health window), and the scenario computer runs a second monitor
    /// that annotates the exam debrief. telemetry.enabled = false builds
    /// none of it — wire traffic is byte-identical to a telemetry-free
    /// simulator.
    telemetry::TelemetryConfig telemetry;
    telemetry::MonitorConfig telemetryMonitor;
  };

  CraneSimulatorApp();
  explicit CraneSimulatorApp(Config cfg);

  /// Wait (in virtual time) until every subscription found its publisher.
  bool waitUntilWired(double maxTimeSec = 10.0);

  /// Advance the whole simulator by dt seconds of virtual time.
  void step(double dt) { cluster_.step(dt); }

  /// Run until the exam finishes or `maxTime` virtual seconds elapse.
  /// Returns true if the exam finished.
  bool runExam(double maxTimeSec);

  /// Teardown telemetry: every computer flushes one final KEYFRAME so any
  /// monitor's last view of the rack is the closing counters, decodable
  /// without a delta base. Call before discarding the app (exam debrief,
  /// rack shutdown); no-op when telemetry is disabled.
  void publishFinalTelemetry();

  double now() const { return cluster_.now(); }
  core::CodCluster& cluster() { return cluster_; }

  DynamicsModule& dynamics() { return *dynamics_; }
  ScenarioModule& scenario() { return *scenario_; }
  DashboardModule& dashboard() { return *dashboard_; }
  InstructorModule& instructor() { return *instructor_; }
  PlatformModule& platform() { return *platform_; }
  AudioModule& audio() { return *audio_; }
  VisualDisplayModule& display(int i) { return *displays_.at(i); }
  SyncServerModule& syncServer() { return *sync_; }
  int displayCount() const { return static_cast<int>(displays_.size()); }

  /// The instructor station's cluster-health aggregator; null when
  /// telemetry is disabled.
  telemetry::HealthMonitor* clusterMonitor() { return instructorMonitor_.get(); }
  std::size_t telemetryPublisherCount() const { return telemetry_.size(); }

  const Config& config() const { return cfg_; }

 private:
  /// Start a telemetry publisher on `cb` (no-op when telemetry is off).
  void addTelemetry(core::CommunicationBackbone& cb);

  Config cfg_;
  core::CodCluster cluster_;
  std::vector<std::unique_ptr<VisualDisplayModule>> displays_;
  std::unique_ptr<SyncServerModule> sync_;
  std::unique_ptr<DashboardModule> dashboard_;
  std::unique_ptr<PlatformModule> platform_;
  std::unique_ptr<DynamicsModule> dynamics_;
  std::unique_ptr<ScenarioModule> scenario_;
  std::unique_ptr<InstructorModule> instructor_;
  std::unique_ptr<AudioModule> audio_;
  std::vector<std::unique_ptr<telemetry::TelemetryPublisher>> telemetry_;
  std::unique_ptr<telemetry::HealthMonitor> instructorMonitor_;
  std::unique_ptr<telemetry::HealthMonitor> scenarioMonitor_;
};

}  // namespace cod::sim
