#include "sim/display_module.hpp"

#include <set>

namespace cod::sim {

using math::Mat4;
using math::Quat;
using math::Vec3;

VisualDisplayModule::VisualDisplayModule(const scenario::Course& course,
                                         Config cfg)
    : core::LogicalProcess("display-" + std::to_string(cfg.channel)),
      cfg_(cfg),
      course_(course),
      built_(buildTrainingScene(course, cfg.targetPolygons)),
      fb_(cfg.fbWidth, cfg.fbHeight) {}

void VisualDisplayModule::bind(core::CommunicationBackbone& cb) {
  cb_ = &cb;
  cb.attach(*this);
  stateSub_ = cb.subscribeObjectClass(*this, kClassCraneState);
  if (cfg_.useSyncServer) {
    readyPub_ = cb.publishObjectClass(*this, kClassSyncReady);
    swapSub_ = cb.subscribeObjectClass(*this, kClassSyncSwap);
  }
}

void VisualDisplayModule::reflectAttributeValues(
    const std::string& className, const core::AttributeSet& attrs,
    double /*timestamp*/) {
  if (className == kClassCraneState) {
    latestState_ = decodeCraneState(attrs);
  } else if (className == kClassSyncSwap) {
    const SyncSwapMsg m = decodeSyncSwap(attrs);
    if (waitingSwap_ && m.frame >= frame_) {
      waitingSwap_ = false;
      ++swapsReceived_;
      ++frame_;
    }
  }
}

void VisualDisplayModule::updateDynamicObjects(const CraneStateMsg& m) {
  const crane::CraneState& s = m.state;
  render::Scene& scene = built_.scene;
  // Carrier box sits on the wheels.
  scene.setTransform(built_.ids.carrier,
                     Mat4::rigid(s.carrierOrientation(),
                                 s.carrierPosition + Vec3{0, 0, 1.0}));
  // Boom: unit box stretched from pivot to tip.
  const Vec3 pivot = kin_.boomPivot(s);
  const Quat boomQ = s.carrierOrientation() *
                     Quat::fromAxisAngle({0, 0, 1}, s.slewAngleRad) *
                     Quat::fromAxisAngle({0, -1, 0}, s.boomPitchRad);
  scene.setTransform(built_.ids.boom,
                     Mat4::rigid(boomQ, pivot) *
                         Mat4::scale({s.boomLengthM, 1.0, 1.0}) *
                         Mat4::translation({0.5, 0.0, 0.0}));
  scene.setTransform(built_.ids.hook, Mat4::translation(m.hookPosition));
  scene.setTransform(built_.ids.cargo, Mat4::translation(m.cargoPosition));
}

void VisualDisplayModule::renderFrame() {
  if (latestState_) {
    updateDynamicObjects(*latestState_);
    const crane::CraneState& s = latestState_->state;
    rig_.setPose(kin_.cabEye(s), s.carrierOrientation());
  }
  fb_.clear();
  // Channels beyond the three-monitor rig mirror an existing view (extra
  // observer displays, as in the dynamic-join scenario).
  const std::size_t rigChannel =
      static_cast<std::size_t>(cfg_.channel) % rig_.channels();
  raster_.render(built_.scene, rig_.channel(rigChannel), fb_);
  ++framesRendered_;
}

void VisualDisplayModule::step(double now) {
  if (waitingSwap_) {
    // FRAME_READY may have been sent before the virtual channel to the
    // sync server existed (or been lost); re-announce until the swap comes.
    if (now >= readyResendDue_ && cb_ != nullptr) {
      cb_->updateAttributeValues(readyPub_,
                                 encodeSyncReady({cfg_.channel, frame_}), now);
      readyResendDue_ = now + cfg_.frameIntervalSec;
    }
    return;
  }
  if (now < nextFrameDue_) return;
  nextFrameDue_ = now + cfg_.frameIntervalSec;
  renderFrame();
  if (cfg_.useSyncServer && cb_ != nullptr) {
    const SyncReadyMsg ready{cfg_.channel, frame_};
    cb_->updateAttributeValues(readyPub_, encodeSyncReady(ready), now);
    readyResendDue_ = now + cfg_.frameIntervalSec;
    waitingSwap_ = true;
  } else {
    ++frame_;
  }
}

SyncServerModule::SyncServerModule(int displayCount)
    : core::LogicalProcess("sync-server"), displayCount_(displayCount) {}

void SyncServerModule::bind(core::CommunicationBackbone& cb) {
  cb_ = &cb;
  cb.attach(*this);
  swapPub_ = cb.publishObjectClass(*this, kClassSyncSwap);
  readySub_ = cb.subscribeObjectClass(*this, kClassSyncReady);
}

void SyncServerModule::reflectAttributeValues(const std::string& className,
                                              const core::AttributeSet& attrs,
                                              double timestamp) {
  now_ = std::max(now_, timestamp);
  if (className != kClassSyncReady) return;
  const SyncReadyMsg m = decodeSyncReady(attrs);
  if (m.frame <= lastSwappedFrame_) {
    // Stale ready: the SWAP was lost or raced the channel setup — repeat it.
    cb_->updateAttributeValues(swapPub_, encodeSyncSwap({m.frame}), now_);
    return;
  }
  auto& channels = ready_[m.frame];
  channels.insert(m.channel);
  if (static_cast<int>(channels.size()) >= displayCount_) {
    cb_->updateAttributeValues(swapPub_, encodeSyncSwap({m.frame}), now_);
    ++swapsIssued_;
    lastSwappedFrame_ = std::max(lastSwappedFrame_, m.frame);
    // Drop bookkeeping for this and any older frame.
    ready_.erase(ready_.begin(), ready_.upper_bound(m.frame));
  }
}

}  // namespace cod::sim
