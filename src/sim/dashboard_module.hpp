// The dashboard module (§3.2) as a Logical Process.
//
// Input half: reads operator inputs (here: a scripted trainee, or values a
// test sets directly) and publishes crane.controls at the control rate.
// Output half: receives crane.state and drives the panel meters and lamps;
// accepts instructor.commands to inject instrument faults (§3.3) or drive
// the panel remotely.
#pragma once

#include <memory>
#include <optional>

#include "core/cb.hpp"
#include "crane/dashboard.hpp"
#include "scenario/operator.hpp"
#include "sim/object_classes.hpp"

namespace cod::sim {

class DashboardModule : public core::LogicalProcess {
 public:
  struct Config {
    double controlsIntervalSec = 0.02;  // 50 Hz signal scan
  };

  /// Manual mode: a test (or example) calls setManualControls().
  DashboardModule();
  explicit DashboardModule(Config cfg);
  /// Trainee mode: a scripted operator closes the loop.
  DashboardModule(scenario::Course course, scenario::OperatorProfile profile);
  DashboardModule(scenario::Course course, scenario::OperatorProfile profile,
                  Config cfg);

  void bind(core::CommunicationBackbone& cb);

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet& attrs,
                              double timestamp) override;
  void step(double now) override;

  /// Manual-control hook (ignored when a scripted operator is installed).
  void setManualControls(const crane::CraneControls& c) { manual_ = c; }

  const crane::Dashboard& dashboard() const { return dash_; }
  crane::Dashboard& dashboard() { return dash_; }
  std::uint64_t controlFramesSent() const { return framesSent_; }

 private:
  scenario::OperatorObservation buildObservation() const;

  Config cfg_;
  crane::Dashboard dash_;
  std::unique_ptr<scenario::ScriptedOperator> operator_;
  crane::CraneControls manual_;
  std::optional<CraneStateMsg> latestState_;
  ScenarioStatusMsg latestStatus_;
  double lastStateTime_ = 0.0;

  core::CommunicationBackbone* cb_ = nullptr;
  core::PublicationHandle controlsPub_ = core::kInvalidHandle;
  core::SubscriptionHandle stateSub_ = core::kInvalidHandle;
  core::SubscriptionHandle statusSub_ = core::kInvalidHandle;
  core::SubscriptionHandle commandSub_ = core::kInvalidHandle;
  double nextSend_ = 0.0;
  std::uint64_t framesSent_ = 0;
};

}  // namespace cod::sim
