#include "sim/audio_module.hpp"

#include <cmath>

namespace cod::sim {

AudioModule::AudioModule() : AudioModule(Config{}) {}

AudioModule::AudioModule(Config cfg)
    : core::LogicalProcess("audio"),
      cfg_(cfg),
      engine_(cfg.sampleRate, cfg.seed) {}

void AudioModule::bind(core::CommunicationBackbone& cb) {
  cb_ = &cb;
  cb.attach(*this);
  stateSub_ = cb.subscribeObjectClass(*this, kClassCraneState);
  eventSub_ = cb.subscribeObjectClass(*this, kClassScenarioEvents);
  engine_.setBackground(true);
}

void AudioModule::reflectAttributeValues(const std::string& className,
                                         const core::AttributeSet& attrs,
                                         double /*timestamp*/) {
  if (className == kClassCraneState) {
    const CraneStateMsg m = decodeCraneState(attrs);
    engine_.setEngine(m.state.engineOn, m.state.engineRpm);
    // New alarm lamps chime once.
    const std::uint32_t fresh = m.alarmBits & ~lastAlarmBits_;
    if (fresh != 0) engine_.playEvent("alarm", 0.7);
    lastAlarmBits_ = m.alarmBits;
  } else if (className == kClassScenarioEvents) {
    const ScenarioEventMsg ev = decodeScenarioEvent(attrs);
    if (ev.kind == "barHit" || ev.kind == "collision") {
      engine_.playEvent("collision", 1.0);
      ++collisionSounds_;
    }
  }
}

void AudioModule::step(double now) {
  if (!started_) {
    started_ = true;
    audioClock_ = now;
    return;
  }
  // Pump whole chunks up to the current time.
  while (audioClock_ + cfg_.chunkSec <= now) {
    const std::vector<float> chunk = engine_.pump(cfg_.chunkSec);
    double acc = 0.0;
    for (const float s : chunk) acc += static_cast<double>(s) * s;
    lastRms_ = chunk.empty() ? 0.0 : std::sqrt(acc / chunk.size());
    audioClock_ += cfg_.chunkSec;
  }
}

}  // namespace cod::sim
