// The simulator's Federation Object Model: the object classes exchanged
// over the Communication Backbone, and typed encode/decode helpers.
//
// Class names and attribute keys are the contract between the seven
// modules; everything else about a module is private to it (§2.1: each LP
// "only needs to convey its event message ... without knowing the existence
// of other processes").
#pragma once

#include <string>

#include "core/value.hpp"
#include "crane/state.hpp"

namespace cod::sim {

// ---- Object class names -------------------------------------------------
inline const std::string kClassCraneControls = "crane.controls";
inline const std::string kClassCraneState = "crane.state";
inline const std::string kClassScenarioEvents = "scenario.events";
inline const std::string kClassScenarioStatus = "scenario.status";
inline const std::string kClassInstructorCommands = "instructor.commands";
inline const std::string kClassPlatformPose = "platform.pose";
inline const std::string kClassSyncReady = "sync.ready";
inline const std::string kClassSyncSwap = "sync.swap";

// ---- crane.controls -----------------------------------------------------
core::AttributeSet encodeControls(const crane::CraneControls& c);
crane::CraneControls decodeControls(const core::AttributeSet& a);

// ---- crane.state --------------------------------------------------------
/// The authoritative world snapshot published by the dynamics module.
struct CraneStateMsg {
  crane::CraneState state;
  math::Vec3 boomTip;
  math::Vec3 hookPosition;
  math::Vec3 cargoPosition;
  double workingRadiusM = 0.0;
  double momentUtilisation = 0.0;
  double rolloverIndex = 0.0;
  std::uint32_t alarmBits = 0;
  double simTimeSec = 0.0;
  double windSpeedMps = 0.0;
  double outriggerProgress = 0.0;  // 0 stowed .. 1 deployed
};

core::AttributeSet encodeCraneState(const CraneStateMsg& m);
CraneStateMsg decodeCraneState(const core::AttributeSet& a);

// ---- scenario.events ----------------------------------------------------
struct ScenarioEventMsg {
  std::string kind;        // "barHit", "collision", "cargoDropped", ...
  std::int64_t index = -1; // bar index for barHit
  math::Vec3 position;
  double simTimeSec = 0.0;
};

core::AttributeSet encodeScenarioEvent(const ScenarioEventMsg& m);
ScenarioEventMsg decodeScenarioEvent(const core::AttributeSet& a);

// ---- scenario.status ----------------------------------------------------
struct ScenarioStatusMsg {
  std::int64_t phase = 0;  // scenario::ExamPhase
  double score = 100.0;
  double elapsedSec = 0.0;
  std::int64_t nextWaypoint = 0;
  std::string lastDeduction;
  bool finished = false;
  /// Exam::revision() at publish time — monotone; the instructor monitor
  /// checks it never regresses on its reliable score channel.
  std::int64_t revision = 0;
  std::int64_t deductionCount = 0;
  /// Debrief annotations (telemetry alarms, peak loss): the newest note
  /// plus the running count. The scenario module publishes one status per
  /// annotation over the reliable channel, so a recorder that journals
  /// the stream reconstructs the full feed; `annotationCount` lets any
  /// consumer detect notes published before it subscribed.
  std::string lastAnnotation;
  std::int64_t annotationCount = 0;
};

core::AttributeSet encodeScenarioStatus(const ScenarioStatusMsg& m);
ScenarioStatusMsg decodeScenarioStatus(const core::AttributeSet& a);

// ---- instructor.commands ------------------------------------------------
struct InstructorCommandMsg {
  std::string command;     // "injectFault", "refuel", ...
  std::int64_t meter = 0;  // crane::Meter
  std::int64_t fault = 0;  // crane::MeterFault
};

core::AttributeSet encodeInstructorCommand(const InstructorCommandMsg& m);
InstructorCommandMsg decodeInstructorCommand(const core::AttributeSet& a);

// ---- platform.pose ------------------------------------------------------
struct PlatformPoseMsg {
  math::Vec3 position;
  double qw = 1.0, qx = 0.0, qy = 0.0, qz = 0.0;
  double legs[6] = {};
  double vibrationM = 0.0;
  bool reachable = true;
};

core::AttributeSet encodePlatformPose(const PlatformPoseMsg& m);
PlatformPoseMsg decodePlatformPose(const core::AttributeSet& a);

// ---- sync.ready / sync.swap ----------------------------------------------
struct SyncReadyMsg {
  std::int64_t channel = 0;
  std::int64_t frame = 0;
};
struct SyncSwapMsg {
  std::int64_t frame = 0;
};

core::AttributeSet encodeSyncReady(const SyncReadyMsg& m);
SyncReadyMsg decodeSyncReady(const core::AttributeSet& a);
core::AttributeSet encodeSyncSwap(const SyncSwapMsg& m);
SyncSwapMsg decodeSyncSwap(const core::AttributeSet& a);

}  // namespace cod::sim
