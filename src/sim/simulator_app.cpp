#include "sim/simulator_app.hpp"

namespace cod::sim {

CraneSimulatorApp::CraneSimulatorApp() : CraneSimulatorApp(Config{}) {}

void CraneSimulatorApp::addTelemetry(core::CommunicationBackbone& cb) {
  if (!cfg_.telemetry.enabled) return;
  telemetry_.push_back(
      std::make_unique<telemetry::TelemetryPublisher>(cfg_.telemetry));
  telemetry_.back()->bind(cb);
}

CraneSimulatorApp::CraneSimulatorApp(Config cfg)
    : cfg_(std::move(cfg)), cluster_(cfg_.cluster) {
  // Computers 1..3: displays.
  for (int i = 0; i < cfg_.displayCount; ++i) {
    auto& cb = cluster_.addComputer("display-" + std::to_string(i));
    VisualDisplayModule::Config dc;
    dc.channel = i;
    dc.fbWidth = cfg_.fbWidth;
    dc.fbHeight = cfg_.fbHeight;
    dc.frameIntervalSec = cfg_.frameIntervalSec;
    dc.useSyncServer = cfg_.useSyncServer;
    dc.targetPolygons = cfg_.targetPolygons;
    displays_.push_back(
        std::make_unique<VisualDisplayModule>(cfg_.course, dc));
    displays_.back()->bind(cb);
    addTelemetry(cb);
  }
  // Computer 4: the synchronization server.
  {
    auto& cb = cluster_.addComputer("sync-server");
    sync_ = std::make_unique<SyncServerModule>(cfg_.displayCount);
    sync_->bind(cb);
    addTelemetry(cb);
  }
  // Computer 5: dashboard (with the scripted trainee in the seat).
  {
    auto& cb = cluster_.addComputer("dashboard");
    dashboard_ = std::make_unique<DashboardModule>(cfg_.course,
                                                   cfg_.operatorProfile);
    dashboard_->bind(cb);
    addTelemetry(cb);
  }
  // Computer 6: motion platform controller.
  {
    auto& cb = cluster_.addComputer("motion-platform");
    PlatformModule::Config pc;
    pc.frameIntervalSec = cfg_.frameIntervalSec;
    platform_ = std::make_unique<PlatformModule>(pc);
    platform_->bind(cb);
    addTelemetry(cb);
  }
  // Computer 7: dynamics + scenario (two LPs on one box, §2.1). With
  // telemetry on, a third LP — a HealthMonitor — feeds cluster alarms and
  // the run's peak loss into the exam debrief.
  {
    auto& cb = cluster_.addComputer("dynamics");
    DynamicsModule::Config dc;
    dc.course = cfg_.course;
    dc.wind = cfg_.wind;
    dc.cargoDragAreaM2 = cfg_.cargoDragAreaM2;
    dynamics_ = std::make_unique<DynamicsModule>(dc);
    dynamics_->bind(cb);
    scenario_ = std::make_unique<ScenarioModule>(cfg_.course);
    scenario_->bind(cb);
    addTelemetry(cb);
    if (cfg_.telemetry.enabled) {
      scenarioMonitor_ =
          std::make_unique<telemetry::HealthMonitor>(cfg_.telemetryMonitor);
      scenarioMonitor_->bind(cb);
      scenario_->attachClusterMonitor(scenarioMonitor_.get());
    }
  }
  // Computer 8: instructor monitor + audio (two LPs on one box). With
  // telemetry on, the station's HealthMonitor aggregates every node's
  // export into the Cluster Health window.
  {
    auto& cb = cluster_.addComputer("instructor");
    instructor_ = std::make_unique<InstructorModule>();
    instructor_->bind(cb);
    audio_ = std::make_unique<AudioModule>();
    audio_->bind(cb);
    addTelemetry(cb);
    if (cfg_.telemetry.enabled) {
      instructorMonitor_ =
          std::make_unique<telemetry::HealthMonitor>(cfg_.telemetryMonitor);
      instructorMonitor_->bind(cb);
      instructor_->attachClusterMonitor(instructorMonitor_.get());
    }
  }
}

bool CraneSimulatorApp::waitUntilWired(double maxTimeSec) {
  const double deadline = cluster_.now() + maxTimeSec;
  return cluster_.runUntil(
      [&] {
        // Every display has seen at least one crane.state and the dashboard
        // controls have reached the dynamics module.
        if (dynamics_->craneState().engineOn) return true;  // already live
        for (const auto& d : displays_)
          if (d->framesRendered() == 0) return false;
        return instructor_->stateUpdatesSeen() > 0 &&
               dashboard_->controlFramesSent() > 0;
      },
      deadline);
}

void CraneSimulatorApp::publishFinalTelemetry() {
  for (const auto& t : telemetry_) t->publishFinal(cluster_.now());
}

bool CraneSimulatorApp::runExam(double maxTimeSec) {
  const double deadline = cluster_.now() + maxTimeSec;
  while (cluster_.now() < deadline) {
    if (scenario_->finished()) return true;
    cluster_.step(0.1);
  }
  return scenario_->finished();
}

}  // namespace cod::sim
