// The visual display modules (§3.7, §4) as Logical Processes.
//
// Three VisualDisplayModules render the left/centre/right channels of the
// ~120° surround view; the SyncServerModule is the paper's fourth computer:
// it waits for FRAME_READY (sync.ready) from all channels and answers with
// a SWAP (sync.swap), forming the swap barrier whose overhead caps the
// paper's frame rate at 16 fps. Displays can also free-run (barrier off)
// for the E2 ablation.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "core/cb.hpp"
#include "crane/kinematics.hpp"
#include "render/camera.hpp"
#include "render/framebuffer.hpp"
#include "render/rasterizer.hpp"
#include "scenario/course.hpp"
#include "sim/object_classes.hpp"
#include "sim/scene_builder.hpp"

namespace cod::sim {

class VisualDisplayModule : public core::LogicalProcess {
 public:
  struct Config {
    int channel = 1;             // 0 = left, 1 = centre, 2 = right
    int fbWidth = 160;
    int fbHeight = 120;
    double frameIntervalSec = 1.0 / 16.0;
    bool useSyncServer = true;
    std::size_t targetPolygons = 3235;
  };

  VisualDisplayModule(const scenario::Course& course, Config cfg);

  void bind(core::CommunicationBackbone& cb);

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet& attrs,
                              double timestamp) override;
  void step(double now) override;

  std::uint64_t framesRendered() const { return framesRendered_; }
  std::uint64_t swapsReceived() const { return swapsReceived_; }
  const render::Framebuffer& framebuffer() const { return fb_; }
  const render::RenderStats& renderStats() const { return raster_.stats(); }
  const render::Scene& scene() const { return built_.scene; }
  bool waitingForSwap() const { return waitingSwap_; }
  std::int64_t currentFrame() const { return frame_; }

 private:
  void renderFrame();
  void updateDynamicObjects(const CraneStateMsg& m);

  Config cfg_;
  scenario::Course course_;
  BuiltScene built_;
  render::SurroundRig rig_;
  render::Rasterizer raster_;
  render::Framebuffer fb_;
  crane::CraneKinematics kin_;
  std::optional<CraneStateMsg> latestState_;

  core::CommunicationBackbone* cb_ = nullptr;
  core::PublicationHandle readyPub_ = core::kInvalidHandle;
  core::SubscriptionHandle stateSub_ = core::kInvalidHandle;
  core::SubscriptionHandle swapSub_ = core::kInvalidHandle;
  double nextFrameDue_ = 0.0;
  double readyResendDue_ = 0.0;
  std::int64_t frame_ = 0;
  bool waitingSwap_ = false;
  std::uint64_t framesRendered_ = 0;
  std::uint64_t swapsReceived_ = 0;
};

/// The synchronization server (the paper's fourth rack computer).
class SyncServerModule : public core::LogicalProcess {
 public:
  explicit SyncServerModule(int displayCount);

  void bind(core::CommunicationBackbone& cb);

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet& attrs,
                              double timestamp) override;

  std::uint64_t swapsIssued() const { return swapsIssued_; }

 private:
  int displayCount_;
  std::map<std::int64_t, std::set<std::int64_t>> ready_;  // frame → channels
  std::int64_t lastSwappedFrame_ = -1;
  core::CommunicationBackbone* cb_ = nullptr;
  core::PublicationHandle swapPub_ = core::kInvalidHandle;
  core::SubscriptionHandle readySub_ = core::kInvalidHandle;
  std::uint64_t swapsIssued_ = 0;
  double now_ = 0.0;
};

}  // namespace cod::sim
