#include "sim/instructor_module.hpp"

#include <cstdio>

#include "scenario/exam.hpp"

namespace cod::sim {

namespace {

std::string formatLine(const char* label, double value, const char* unit) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "| %-22s %9.2f %-5s |\n", label, value,
                unit);
  return buf;
}

}  // namespace

std::string StatusWindow::renderText() const {
  std::string out;
  out += "+--------- STATUS WINDOW ---------------+\n";
  out += formatLine("SWING ANGLE", swingAngleDeg, "deg");
  out += formatLine("BOOM RAISE", boomRaiseDeg, "deg");
  out += formatLine("CABLE LENGTH", cableLengthM, "m");
  out += formatLine("BOOM ELONGATION", boomElongationM, "m");
  out += formatLine("SCORE", score, "pts");
  out += formatLine("ELAPSED", elapsedSec, "s");
  char buf[80];
  std::snprintf(buf, sizeof(buf), "| PHASE: %-30s |\n", phase.c_str());
  out += buf;
  out += "| ALARMS:";
  bool anyLamp = false;
  for (std::size_t i = 0; i < crane::kAlarmCount; ++i) {
    const crane::Alarm a = static_cast<crane::Alarm>(i);
    if (alarms.active(a)) {
      out += " [";
      out += crane::alarmName(a);
      out += "]";
      anyLamp = true;
    }
  }
  if (!anyLamp) out += " (none)";
  out += "\n";
  if (!lastDeduction.empty()) {
    std::snprintf(buf, sizeof(buf), "| LAST DEDUCTION: %-21s |\n",
                  lastDeduction.c_str());
    out += buf;
  }
  out += "+---------------------------------------+\n";
  return out;
}

std::string DashboardWindow::renderText() const {
  std::string out;
  out += "+-------- DASHBOARD WINDOW -------------+\n";
  char buf[96];
  for (std::size_t i = 0; i < crane::kMeterCount; ++i) {
    const crane::Meter m = static_cast<crane::Meter>(i);
    const char* faultTag =
        injectedFaults[i] == crane::MeterFault::kStuck  ? " (STUCK)"
        : injectedFaults[i] == crane::MeterFault::kDead ? " (DEAD)"
                                                        : "";
    std::snprintf(buf, sizeof(buf), "| %-14s %9.2f%-8s          |\n",
                  crane::meterName(m), meters[i], faultTag);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "| wheel %+5.2f  throttle %4.2f  brake %4.2f  |\n",
                controls.steering, controls.throttle, controls.brake);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "| joy1 (%+4.2f,%+4.2f)  joy2 (%+4.2f,%+4.2f)   |\n",
                controls.joystickSlew, controls.joystickLuff,
                controls.joystickTelescope, controls.joystickHoist);
  out += buf;
  out += "+---------------------------------------+\n";
  return out;
}

InstructorModule::InstructorModule() : core::LogicalProcess("instructor") {}

std::string InstructorModule::renderClusterText() const {
  if (clusterMonitor_ == nullptr)
    return "+------ CLUSTER HEALTH (telemetry off) ------+\n";
  return clusterMonitor_->renderTable() + clusterMonitor_->renderAlarms();
}

void InstructorModule::bind(core::CommunicationBackbone& cb) {
  cb_ = &cb;
  cb.attach(*this);
  // Fault injections and the exam score must never drop; the 16 fps crane
  // state and control echoes stay newest-wins (a lost frame is superseded
  // anyway).
  commandPub_ = cb.publishObjectClass(*this, kClassInstructorCommands,
                                      net::QosClass::kReliableOrdered);
  stateSub_ = cb.subscribeObjectClass(*this, kClassCraneState);
  statusSub_ = cb.subscribeObjectClass(*this, kClassScenarioStatus,
                                       net::QosClass::kReliableOrdered);
  controlsSub_ = cb.subscribeObjectClass(*this, kClassCraneControls);
}

void InstructorModule::reflectAttributeValues(const std::string& className,
                                              const core::AttributeSet& attrs,
                                              double timestamp) {
  now_ = std::max(now_, timestamp);
  if (className == kClassCraneState) {
    const CraneStateMsg m = decodeCraneState(attrs);
    ++stateUpdates_;
    status_.swingAngleDeg = math::rad2deg(m.state.slewAngleRad);
    status_.boomRaiseDeg = math::rad2deg(m.state.boomPitchRad);
    status_.cableLengthM = m.state.cableLengthM;
    status_.boomElongationM = m.state.boomLengthM;
    status_.alarms = crane::AlarmSet::fromBits(m.alarmBits);
    // The dashboard window mirrors the panel: recompute the meter values
    // the same way the dashboard module does, then overlay the faults this
    // instructor has injected (it knows what it clicked).
    dashWindow_.meters[static_cast<std::size_t>(crane::Meter::kEngineRpm)] =
        m.state.engineRpm;
    dashWindow_.meters[static_cast<std::size_t>(crane::Meter::kSpeed)] =
        std::abs(m.state.carrierSpeedMps) * 3.6;
    dashWindow_.meters[static_cast<std::size_t>(
        crane::Meter::kLoadMomentPct)] = m.momentUtilisation * 100.0;
    dashWindow_.meters[static_cast<std::size_t>(crane::Meter::kCableLength)] =
        m.state.cableLengthM;
  } else if (className == kClassScenarioStatus) {
    const ScenarioStatusMsg m = decodeScenarioStatus(attrs);
    ++statusUpdates_;
    // The score channel is reliable-ordered: the revision counter must
    // never step backwards. A regression here means the transport QoS was
    // violated (or misconfigured), which the status window should expose.
    if (m.revision < lastRevision_) ++revisionRegressions_;
    lastRevision_ = m.revision;
    deductionsSeen_ = std::max(deductionsSeen_, m.deductionCount);
    status_.score = m.score;
    status_.elapsedSec = m.elapsedSec;
    status_.phase =
        scenario::phaseName(static_cast<scenario::ExamPhase>(m.phase));
    status_.lastDeduction = m.lastDeduction;
  } else if (className == kClassCraneControls) {
    dashWindow_.controls = decodeControls(attrs);
  }
}

void InstructorModule::injectFault(crane::Meter meter,
                                   crane::MeterFault fault) {
  dashWindow_.injectedFaults[static_cast<std::size_t>(meter)] = fault;
  if (cb_ == nullptr) return;
  InstructorCommandMsg cmd{"injectFault", static_cast<std::int64_t>(meter),
                           static_cast<std::int64_t>(fault)};
  cb_->updateAttributeValues(commandPub_, encodeInstructorCommand(cmd), now_);
}

void InstructorModule::refuel() {
  if (cb_ == nullptr) return;
  InstructorCommandMsg cmd{"refuel", 0, 0};
  cb_->updateAttributeValues(commandPub_, encodeInstructorCommand(cmd), now_);
}

}  // namespace cod::sim
