#include "sim/dynamics_module.hpp"

#include <algorithm>
#include <cmath>

namespace cod::sim {

using math::Vec3;

namespace {
constexpr double kCargoHalf = 0.5;  // cargo is a 1 m cube
}

DynamicsModule::DynamicsModule(Config cfg)
    : core::LogicalProcess("dynamics"),
      cfg_(std::move(cfg)),
      terrain_(physics::Terrain::rolling(141, 91, 1.0, cfg_.terrainAmplitudeM,
                                         cfg_.terrainSeed)),
      wind_(cfg_.wind, cfg_.windSeed),
      collisionWorld_(buildCollisionWorld(cfg_.course)) {
  if (cfg_.useLoadChart) safety_.setLoadChart(crane::LoadChart::typical25t());
  vehicle_.setPosition(cfg_.course.startPosition, cfg_.course.startHeadingRad);
  state_.carrierPosition = {cfg_.course.startPosition.x,
                            cfg_.course.startPosition.y, 0.0};
  state_.carrierHeadingRad = cfg_.course.startHeadingRad;
  cargoPos_ = {cfg_.course.pickZone.center.x, cfg_.course.pickZone.center.y,
               terrain_.height(cfg_.course.pickZone.center.x,
                               cfg_.course.pickZone.center.y) +
                   kCargoHalf};
  pendulum_.reset(kin_.boomTip(state_), state_.cableLengthM);
  barHitCooldown_.assign(cfg_.course.bars.size(), 0.0);
}

void DynamicsModule::bind(core::CommunicationBackbone& cb) {
  cb_ = &cb;
  cb.attach(*this);
  statePub_ = cb.publishObjectClass(*this, kClassCraneState);
  eventPub_ = cb.publishObjectClass(*this, kClassScenarioEvents);
  controlsSub_ = cb.subscribeObjectClass(*this, kClassCraneControls);
}

void DynamicsModule::step(double now) {
  if (!lastNow_) {
    lastNow_ = now;
    publishState();
    return;
  }
  // Catch the integrator up to the cluster clock in fixed steps.
  while (simTime_ + cfg_.fixedDtSec <= now) {
    if (cb_ != nullptr) {
      if (const core::Reflection* r = cb_->latest(controlsSub_))
        controls_ = decodeControls(r->attrs);
    }
    substep(cfg_.fixedDtSec);
    publishState();
  }
  lastNow_ = now;
}

void DynamicsModule::substep(double dt) {
  simTime_ += dt;

  // Engine: demanded by pedal or any hydraulic lever.
  const double demand = std::max(
      {controls_.throttle, std::abs(controls_.joystickSlew),
       std::abs(controls_.joystickLuff), std::abs(controls_.joystickTelescope),
       std::abs(controls_.joystickHoist)});
  engine_.step(controls_.ignition, demand, dt);
  state_.engineOn = engine_.on();
  state_.engineRpm = engine_.rpm();

  // Outriggers: deploy/stow per the dashboard switch; the carrier cannot
  // drive while the pads are (even partially) down.
  if (controls_.outriggersDeploy) {
    outriggers_.requestDeploy();
  } else {
    outriggers_.requestStow();
  }
  outriggers_.step(dt);

  // Site wind.
  wind_.step(dt);

  // Carrier over the terrain.
  physics::VehicleInput vin;
  vin.throttle = state_.engineOn && outriggers_.stowed() ? controls_.throttle : 0.0;
  vin.brake = controls_.brake;
  vin.steer = controls_.steering;
  vin.reverse = controls_.reverse;
  vehicle_.step(vin, terrain_, dt);
  state_.carrierPosition = vehicle_.position3();
  state_.carrierHeadingRad = vehicle_.heading();
  state_.carrierPitchRad = vehicle_.pitch();
  state_.carrierRollRad = vehicle_.roll();
  state_.carrierSpeedMps = vehicle_.speed();

  // Crane joints.
  joints_.step(state_, controls_, dt);

  // Lift-hook inertia oscillation: pivot follows the boom tip; wind drags
  // the hanging cargo.
  pendulum_.setPivot(kin_.boomTip(state_));
  pendulum_.setLength(state_.cableLengthM);
  if (state_.cargoAttached)
    pendulum_.applyForce(wind_.dragForce(cfg_.cargoDragAreaM2));
  pendulum_.step(dt);
  const Vec3 hook = pendulum_.bobPosition();

  // Cargo latch / release.
  if (controls_.hookLatch && !state_.cargoAttached) {
    const Vec3 cargoTop = cargoPos_ + Vec3{0, 0, kCargoHalf};
    if ((hook - cargoTop).norm() <= cfg_.hookCaptureRadiusM) {
      state_.cargoAttached = true;
      state_.hookLoadKg = cfg_.course.cargoMassKg;
      emitEvent("cargoAttached", -1, cargoPos_);
    }
  } else if (!controls_.hookLatch && state_.cargoAttached) {
    state_.cargoAttached = false;
    state_.hookLoadKg = 0.0;
    // The cargo settles onto the ground where it was released.
    cargoPos_.z = terrain_.height(cargoPos_.x, cargoPos_.y) + kCargoHalf;
    emitEvent("cargoDropped", -1, cargoPos_);
  }
  if (state_.cargoAttached) {
    cargoPos_ = hook - Vec3{0, 0, kCargoHalf + 0.15};
  }

  // Multi-level collision detection of the cargo against the bars (§3.6).
  collisionWorld_->world.setTransform(
      collisionWorld_->cargoId,
      math::Mat4::translation(cargoPos_));
  for (double& c : barHitCooldown_) c = std::max(0.0, c - dt);
  const auto contacts =
      collisionWorld_->world.queryOne(collisionWorld_->cargoId, &collStats_);
  for (const collision::Contact& c : contacts) {
    const std::uint32_t other =
        c.idA == collisionWorld_->cargoId ? c.idB : c.idA;
    const auto it = std::find(collisionWorld_->barIds.begin(),
                              collisionWorld_->barIds.end(), other);
    if (it == collisionWorld_->barIds.end()) continue;
    const std::size_t barIdx =
        static_cast<std::size_t>(it - collisionWorld_->barIds.begin());
    if (barHitCooldown_[barIdx] > 0.0) continue;
    barHitCooldown_[barIdx] = cfg_.barHitCooldownSec;
    ++barHitsEmitted_;
    emitEvent("barHit", static_cast<std::int64_t>(barIdx), c.point);
  }

  // Safety envelope.
  crane::SafetyEnvelope::Environment env;
  env.rolloverIndex = vehicle_.rolloverIndex();
  env.windSpeedMps = wind_.speed();
  env.outriggersDeployed = outriggers_.deployed();
  lastAssessment_ = safety_.assess(state_, kin_, env);
}

void DynamicsModule::publishState() {
  if (cb_ == nullptr) return;
  CraneStateMsg m;
  m.state = state_;
  m.boomTip = kin_.boomTip(state_);
  m.hookPosition = pendulum_.bobPosition();
  m.cargoPosition = cargoPos_;
  m.workingRadiusM = kin_.workingRadius(state_);
  m.momentUtilisation = lastAssessment_.momentUtilisation;
  m.rolloverIndex = lastAssessment_.rolloverIndex;
  m.alarmBits = lastAssessment_.alarms.bits();
  m.simTimeSec = simTime_;
  m.windSpeedMps = wind_.speed();
  m.outriggerProgress = outriggers_.progress();
  cb_->updateAttributeValues(statePub_, encodeCraneState(m), simTime_);
}

void DynamicsModule::emitEvent(const std::string& kind, std::int64_t index,
                               const Vec3& pos) {
  if (cb_ == nullptr) return;
  ScenarioEventMsg ev{kind, index, pos, simTime_};
  cb_->updateAttributeValues(eventPub_, encodeScenarioEvent(ev), simTime_);
}

}  // namespace cod::sim
