// The audio module (§3.7) as a Logical Process: static background bed,
// engine loop pitched by RPM, and dynamic one-shot effects fired by
// scenario events (collision sounds) and alarms.
#pragma once

#include "audio/mixer.hpp"
#include "core/cb.hpp"
#include "sim/object_classes.hpp"

namespace cod::sim {

class AudioModule : public core::LogicalProcess {
 public:
  struct Config {
    int sampleRate = 48000;
    double chunkSec = 0.05;  // mixer pump granularity
    std::uint64_t seed = 99;
  };

  AudioModule();
  explicit AudioModule(Config cfg);

  void bind(core::CommunicationBackbone& cb);

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet& attrs,
                              double timestamp) override;
  void step(double now) override;

  const audio::AudioEngine& engine() const { return engine_; }
  audio::AudioEngine& engine() { return engine_; }
  std::uint64_t collisionSoundsPlayed() const { return collisionSounds_; }
  /// RMS of the most recent mixed chunk (tests assert sound is produced).
  double lastChunkRms() const { return lastRms_; }

 private:
  Config cfg_;
  audio::AudioEngine engine_;
  std::uint32_t lastAlarmBits_ = 0;

  core::CommunicationBackbone* cb_ = nullptr;
  core::SubscriptionHandle stateSub_ = core::kInvalidHandle;
  core::SubscriptionHandle eventSub_ = core::kInvalidHandle;
  double audioClock_ = 0.0;
  bool started_ = false;
  std::uint64_t collisionSounds_ = 0;
  double lastRms_ = 0.0;
};

}  // namespace cod::sim
