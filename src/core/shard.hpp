// One routing shard of the Communication Backbone.
//
// The CB partitions its routing core — publication/subscription tables,
// discovery handling and virtual-channel bookkeeping — across CbShard
// units keyed by classNameHash(className) % shards. Every entry for a
// given object class lives on exactly one shard on every node (the hash
// is cross-process stable), so a decoded discovery message routes
// straight to its owning shard and matching is O(entries of that class),
// never O(all tables). Publisher↔subscriber state of one class is
// therefore always intra-shard: local fast-path links, ACK matching and
// reliable delivery never cross a shard boundary.
//
// What a shard does NOT own stays in the CommunicationBackbone facade:
// the transport, the per-peer send coalescer (peers are shared by
// channels of many classes), handle/channel-id allocation (ids must stay
// globally unique and creation-ordered), the shared stats block, and —
// critically — *ordering*. Every wire-order-sensitive walk (discovery
// broadcasts, heartbeats, ACK emission, mailbox delivery, channelHealth)
// is orchestrated by the facade over a globally sorted snapshot of
// handles/channel ids and dispatched per entry into the owning shard, so
// any shard count produces byte-identical wire traffic to shards=1.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/protocol.hpp"
#include "core/value.hpp"
#include "net/reliable.hpp"
#include "net/transport.hpp"

namespace cod::core {

class CommunicationBackbone;

using LpId = std::uint32_t;
using PublicationHandle = std::uint32_t;
using SubscriptionHandle = std::uint32_t;

inline constexpr std::uint32_t kInvalidHandle = 0;

/// Sentinel for "staging slot not resolved yet" in the channel structs
/// (the slot index caches into the facade's per-peer batch table).
inline constexpr std::uint32_t kNoBatchSlot = 0xFFFFFFFFu;

/// One delivered attribute update, as seen by a subscriber.
struct Reflection {
  std::string className;
  AttributeSet attrs;
  double timestamp = 0.0;
  std::uint64_t seq = 0;
};

/// Publisher side of one virtual channel.
struct OutChannel {
  std::uint32_t remoteChannelId = 0;
  net::NodeAddr remote;
  /// Cached index into the facade's peer-batch table for this channel's
  /// endpoint, so the per-update fan-out stages without an address lookup.
  std::uint32_t batchSlot = kNoBatchSlot;
  double lastSentSec = 0.0;   // last update/heartbeat we sent
  double lastHeardSec = 0.0;  // last heartbeat from the subscriber
  net::QosClass qos = net::QosClass::kBestEffort;
  /// Reliable channels: first sequence owed to this channel (fixed at
  /// creation; re-ACKs repeat it so a lost CHANNEL_ACK cannot shift the
  /// base) and the highest sequence the subscriber has cumulatively
  /// acknowledged.
  std::uint64_t firstSeq = 0;
  std::uint64_t cumAcked = 0;
  /// Reliable channels re-send CHANNEL_ACK until the first WINDOW_ACK
  /// proves the subscriber knows the channel's QoS and base — without
  /// this, a lost ack on a publisher-upgraded channel would leave the
  /// subscriber in newest-wins mode forever (inbound data stops its own
  /// connection retries).
  bool windowAckSeen = false;
  double lastAckResendSec = 0.0;
  /// True once the subscriber provably knows this channel's QoS: from
  /// creation when it requested it, else from its first WINDOW_ACK.
  /// Until then a publisher-upgraded channel carries no data — a
  /// QoS-blind subscriber would consume it newest-wins and permanently
  /// skip whatever was lost. Frames are window-buffered meanwhile and
  /// recovered through the normal retransmit path once confirmed.
  bool qosConfirmed = true;
  /// Frames re-sent on this channel (NACK-driven + tail timeout), for
  /// the per-channel health export.
  std::uint64_t retransmits = 0;
  /// Highest sequence ever transmitted on this channel (0 = none).
  /// Frames withheld while !qosConfirmed make their *first* trip
  /// through the retransmit machinery after confirmation; this high
  /// water mark lets those be counted as first transmissions
  /// (dataFramesSent) instead of retransmits, keeping the
  /// reliable-layer loss estimate unbiased under channel upgrades.
  std::uint64_t maxSentSeq = 0;
  /// Private send window (flow control, ReliableConfig::
  /// perChannelWindowSplit): allocated when this channel's cumulative
  /// ack lags the shared window by splitLagFrames for splitSustainSec,
  /// so a laggard stops pinning frames every healthy peer already
  /// acked. Null = serving from the publication's shared window (the
  /// only state when the feature is off).
  std::unique_ptr<net::ReliableSendWindow> splitRetx;
  /// Edge timers of the split/merge decision (-1 = condition not
  /// currently observed).
  double lagSinceSec = -1.0;
  double caughtUpSinceSec = -1.0;
  /// Telemetry-closed backpressure: fraction of best-effort updates
  /// actually sent to this peer (1 = all). Reliable channels are never
  /// thinned — their ordering contract is protected by the overflow
  /// policy and the window split instead. `thinDebt` accumulates
  /// (1 - sendFactor) per update and skips one when it reaches 1, so
  /// any factor thins evenly rather than in bursts.
  double sendFactor = 1.0;
  double thinDebt = 0.0;
  /// Cumulative duplicate count last reported by this subscriber in a
  /// WINDOW_ACK dup block (high-water mark; reports are cumulative so
  /// a lost one heals on the next).
  std::uint64_t dupReported = 0;
  /// Highest publisher-side skip already advertised to this channel by
  /// the kDegradeLatestValue eviction path (avoids re-advertising the
  /// same skip every update).
  std::uint64_t lastSkipAdvertised = 0;
};

/// One publication-table entry.
struct PublicationEntry {
  PublicationHandle id = 0;
  LpId lp = 0;
  std::string className;
  net::QosClass qos = net::QosClass::kBestEffort;  // channel QoS floor
  std::uint64_t nextSeq = 1;
  std::vector<OutChannel> channels;
  std::vector<SubscriptionHandle> localSubscribers;  // fast path links
  /// Retransmit window, shared by every reliable channel of this
  /// publication (frames differ only in the patched channel id).
  /// Allocated on the first reliable channel.
  std::unique_ptr<net::ReliableSendWindow> retx;
  /// Per-publication overflow-policy override
  /// (CommunicationBackbone::setPublicationOverflowPolicy); unset means
  /// Config::reliable.overflowPolicy. Remembered here so a window
  /// allocated after the override call still honors it.
  std::optional<net::OverflowPolicy> overflowPolicy;
  /// Exempt from per-peer backpressure thinning
  /// (CommunicationBackbone::setPublicationThinningExempt). Control-plane
  /// streams — telemetry above all — must keep flowing to a struggling
  /// peer: they are how its struggle is observed and how its recovery is
  /// detected, so thinning them would sever the very loop that thins.
  bool thinExempt = false;
};

/// Delivery timing of the most recent sampled (trace-tagged) update
/// released in order on a channel, waiting to be echoed to the publisher
/// on the next WINDOW_ACK. One slot suffices: sampling is sparse (1-in-N)
/// and a newer sample superseding an un-echoed older one just thins the
/// sample stream, never biases it.
struct PendingTraceEcho {
  std::uint64_t seq = 0;
  double tagSec = 0.0;      // publisher clock, echoed verbatim
  double releaseSec = 0.0;  // our clock at in-order release
};

/// Subscriber side of one virtual channel.
struct InChannel {
  std::uint32_t channelId = 0;
  SubscriptionHandle subscription = 0;
  net::NodeAddr remote;
  std::uint32_t batchSlot = kNoBatchSlot;  // see OutChannel::batchSlot
  std::uint32_t remotePublicationId = 0;
  bool live = false;          // CHANNEL_ACK received
  double lastConnectSent = 0.0;
  double lastActivity = 0.0;       // last traffic from the publisher
  double lastHeartbeatSent = 0.0;  // our own keep-alives to the publisher
  std::uint64_t lastSeq = 0;       // newest-wins cursor (best effort)
  net::QosClass qos = net::QosClass::kBestEffort;
  /// Present iff the channel is reliable: gap detection, NACK pacing
  /// and in-order release.
  std::unique_ptr<net::ReliableReceiveQueue> rq;
  /// Sampled-update delivery timing owed to the publisher (see
  /// PendingTraceEcho); rides out on the next WINDOW_ACK.
  std::optional<PendingTraceEcho> pendingEcho;
};

/// One subscription-table entry.
struct SubscriptionEntry {
  SubscriptionHandle id = 0;
  LpId lp = 0;
  std::string className;
  net::QosClass qos = net::QosClass::kBestEffort;  // requested per channel
  bool everAcknowledged = false;
  double nextBroadcast = 0.0;
  std::deque<Reflection> mailbox;
  std::optional<Reflection> latest;
};

/// Live shard sizes, for tests and the soak harness's balance checks.
struct CbShardLoad {
  std::size_t publications = 0;
  std::size_t subscriptions = 0;
  std::size_t inChannels = 0;
  std::size_t outChannels = 0;
};

/// One routing shard: the tables for every class whose hash maps here,
/// plus the protocol logic that reads and mutates them. Handlers and
/// timers are invoked by the facade, which owns inbound routing and
/// global wire ordering; sends go back out through the facade's
/// coalescer. Not part of the public API — reach it through
/// CommunicationBackbone.
class CbShard {
 public:
  CbShard(CommunicationBackbone& cb, std::uint32_t index);
  CbShard(const CbShard&) = delete;
  CbShard& operator=(const CbShard&) = delete;

  // --- registration (facade assigns the shard, we own the entry) ---
  void addPublication(PublicationEntry e);
  void addSubscription(SubscriptionEntry e);
  void unpublish(PublicationHandle h);
  void unsubscribe(SubscriptionHandle h);

  // --- lookups ---
  PublicationEntry* publication(PublicationHandle h);
  const PublicationEntry* publication(PublicationHandle h) const;
  SubscriptionEntry* subscription(SubscriptionHandle h);
  const SubscriptionEntry* subscription(SubscriptionHandle h) const;
  const InChannel* inChannel(std::uint32_t channelId) const;
  std::size_t sourceCount(SubscriptionHandle h) const;
  CbShardLoad load() const;

  // --- message handlers (routed here by the facade) ---
  void handleSubscription(const SubscriptionMsg& m, const net::NodeAddr& src,
                          double now);
  void handleAcknowledge(const AcknowledgeMsg& m, const net::NodeAddr& src,
                         double now);
  void handleChannelConnection(const ChannelConnectionMsg& m,
                               const net::NodeAddr& src, double now);
  void handleChannelAck(const ChannelAckMsg& m, const net::NodeAddr& src,
                        double now);
  void handleUpdate(UpdateMsg& m, const net::NodeAddr& src, double now);
  /// Publisher keep-alive → refresh our inbound channel.
  void handlePublisherHeartbeat(const HeartbeatMsg& m,
                                const net::NodeAddr& src, double now);
  /// Subscriber keep-alive → refresh our outgoing channel on `pub` (the
  /// facade resolved (src, channelId) → publication via its index).
  void handleSubscriberHeartbeat(PublicationHandle pub, const HeartbeatMsg& m,
                                 const net::NodeAddr& src, double now);
  void handlePublisherBye(const ByeMsg& m, const net::NodeAddr& src);
  void handleSubscriberBye(PublicationHandle pub, const ByeMsg& m,
                           const net::NodeAddr& src);
  void handleNack(PublicationHandle pub, const NackMsg& m,
                  const net::NodeAddr& src, double now);
  void handlePublisherWindowAck(const WindowAckMsg& m,
                                const net::NodeAddr& src, double now);
  void handleSubscriberWindowAck(PublicationHandle pub, const WindowAckMsg& m,
                                 const net::NodeAddr& src, double now);

  // --- timers (facade drives these in globally sorted handle order) ---
  void subscriptionTimer(SubscriptionHandle h, double now);
  /// Connection retries, NACK/ack emission and keep-alive for one inbound
  /// channel; returns true if the channel has timed out and should drop
  /// after the sweep. `subHeartbeat` is the tick-shared keep-alive frame
  /// scratch (encoded lazily at most once per tick, re-patched per
  /// channel).
  bool inChannelTimer(std::uint32_t channelId, double now,
                      std::vector<std::uint8_t>& subHeartbeat);
  void dropTimedOutInChannel(std::uint32_t channelId, double now);
  /// ACK re-sends, keep-alives, the reliable tail-retransmit sweep and
  /// dead-subscriber timeout for one publication.
  void publicationTimer(PublicationHandle h, double now,
                        std::vector<std::uint8_t>& pubHeartbeat);

  // --- data plane ---
  /// Returns false iff the update was refused by the shared send
  /// window's OverflowPolicy::kBlockPublisher gate (nothing was sent,
  /// delivered or sequenced; the caller may retry later). Every other
  /// policy always returns true.
  bool update(PublicationEntry& pub, const AttributeSet& attrs,
              double timestamp);

  /// Backpressure hook: set the best-effort thinning factor for every
  /// outgoing channel of this shard whose endpoint is `peer` (clamped
  /// to [0, 1]; 1 restores full rate and clears the thinning debt).
  void setPeerSendFactor(const net::NodeAddr& peer, double factor);

  void removeInChannel(std::uint32_t channelId, bool sendBye);

 private:
  friend class CommunicationBackbone;

  void matchLocal(PublicationEntry& pub);
  void enqueueReflection(SubscriptionEntry& sub, Reflection r);
  /// Decode and enqueue frames the reliable queue released in order.
  /// Non-const: a released trace-tagged frame parks its delivery timing
  /// in `ch.pendingEcho` for the next WINDOW_ACK.
  void deliverReliableReady(InChannel& ch,
                            std::vector<net::ReliableFrame>& ready);
  /// Move `ch.pendingEcho` (if any) onto an outgoing WINDOW_ACK.
  void attachTraceEcho(InChannel& ch, WindowAckMsg& ack, double now);
  /// Attach this channel's cumulative duplicate count to an outgoing
  /// WINDOW_ACK (dup block) when any duplicates have been dropped.
  static void attachDupReport(const InChannel& ch, WindowAckMsg& ack);
  /// The send window serving `ch`: its private split window if one
  /// exists, else the publication's shared window.
  static net::ReliableSendWindow* windowFor(PublicationEntry& pub,
                                            OutChannel& ch);
  /// Split `ch` onto a private send window seeded from the shared one
  /// (everything above its cumulative ack), then re-compact the shared
  /// window the laggard no longer pins.
  void splitChannelWindow(PublicationEntry& pub, OutChannel& ch, double now);
  /// Drop `ch`'s private window and rejoin the shared one (caller has
  /// verified the shared window retains everything still NACKable).
  void mergeChannelWindow(OutChannel& ch);
  /// The split/merge decision for every reliable channel of `pub`
  /// (ReliableConfig::perChannelWindowSplit; no-op when off).
  void runWindowSplitTimer(PublicationEntry& pub, double now);
  /// kDegradeLatestValue: proactively advertise publisher-side skips to
  /// channels whose serving window evicted past their cumulative ack,
  /// without waiting for a NACK round trip.
  void advertiseDegradeSkips(PublicationEntry& pub);
  /// Prune (or drop) a publication's retransmit window after acks or
  /// channel departures.
  void compactSendWindow(PublicationEntry& pub);
  /// The outgoing channel `(src, remoteChannelId)` within `pub`; null if
  /// unknown.
  OutChannel* findOutChannelIn(PublicationEntry& pub, const net::NodeAddr& src,
                               std::uint32_t remoteChannelId);
  static void eraseFromIndex(
      std::unordered_map<std::string, std::vector<std::uint32_t>>& index,
      const std::string& className, std::uint32_t handle);

  CommunicationBackbone& cb_;
  std::uint32_t index_;

  /// Hash tables, not ordered maps: updateAttributeValues and the
  /// reflection paths look these up per update, and nothing needs key
  /// order (iteration-order-sensitive work runs off the facade's sorted
  /// snapshots).
  std::unordered_map<PublicationHandle, PublicationEntry> publications_;
  std::unordered_map<SubscriptionHandle, SubscriptionEntry> subscriptions_;
  std::map<std::uint32_t, InChannel> inChannels_;  // keyed by channelId

  /// Per-class handle lists (creation order — handles ascend), so
  /// discovery matching is O(entries of the class). Every class maps to
  /// exactly one shard, so these never miss an intra-class match.
  std::unordered_map<std::string, std::vector<PublicationHandle>> pubsByClass_;
  std::unordered_map<std::string, std::vector<SubscriptionHandle>> subsByClass_;
};

}  // namespace cod::core
