// CodCluster — a whole simulated rack in one object.
//
// Builds the paper's Figure 1: N desktop computers on one (simulated) LAN,
// each executing a Communication Backbone. Computers can be added while the
// cluster runs (dynamic join, §2.3). Time is virtual and fully
// deterministic: step() advances the LAN and ticks every CB in lockstep
// sub-intervals, which is the cooperative equivalent of "each computer
// executes at its own pace" for a single-process reproduction.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/cb.hpp"
#include "net/simnet.hpp"

namespace cod::core {

class CodCluster {
 public:
  struct Config {
    net::LinkModel link;                  // LAN characteristics
    CommunicationBackbone::Config cb;     // shared CB configuration
    std::uint16_t cbPort = 1;             // discovery port bound by every CB
    std::uint64_t seed = 1;               // network RNG seed
    double tickIntervalSec = 0.005;       // CB tick cadence inside step()
  };

  explicit CodCluster(Config cfg);
  CodCluster();

  /// Add a computer executing a CB; usable at any time (dynamic join).
  CommunicationBackbone& addComputer(const std::string& name);

  std::size_t size() const { return cbs_.size(); }
  CommunicationBackbone& cb(std::size_t i) { return *cbs_.at(i); }
  const CommunicationBackbone& cb(std::size_t i) const { return *cbs_.at(i); }
  net::SimNetwork& network() { return net_; }
  double now() const { return net_.now(); }

  /// Advance the whole cluster by dt seconds of virtual time.
  void step(double dt);

  /// Step until `pred()` holds; returns false if `maxTime` elapsed first.
  bool runUntil(const std::function<bool()>& pred, double maxTime);

 private:
  Config cfg_;
  net::SimNetwork net_;
  std::vector<std::unique_ptr<CommunicationBackbone>> cbs_;
};

}  // namespace cod::core
