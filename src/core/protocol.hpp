// The CB wire protocol (paper §2.3).
//
// Control messages implement the initialization protocol — a subscriber CB
// broadcasts SUBSCRIPTION at a constant interval until ACKNOWLEDGE arrives;
// it then sends CHANNEL_CONNECTION to the acknowledging publisher CB, which
// answers with a second ACKNOWLEDGE (CHANNEL_ACK here, to make the two
// acknowledge phases explicit on the wire). Data messages (UPDATE) flow over
// the established virtual channel. HEARTBEAT keeps channels alive and BYE
// tears them down when an LP resigns.
//
// Channels carry a QoS class (net::QosClass). kBestEffort channels are the
// paper's newest-wins path and their data-plane frames (UPDATE, HEARTBEAT,
// BYE) are wire-identical to the pre-QoS protocol. kReliableOrdered
// channels add two control messages: NACK (receiver lists missing
// sequences) and WINDOW_ACK (cumulative progress from the receiver, or a
// skip order from a sender whose retransmit window no longer holds the
// requested frames).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/reliable.hpp"
#include "net/wire.hpp"

namespace cod::core {

/// Stable 32-bit FNV-1a hash of an object-class name — the CB's shard
/// key. Deliberately not std::hash: the value must be identical on every
/// node of the cluster regardless of platform or libstdc++ version,
/// because both ends of a discovery exchange derive the owning shard
/// from it independently.
std::uint32_t classNameHash(std::string_view name);

/// Message discriminator, first byte of every CB datagram.
enum class MsgType : std::uint8_t {
  kSubscription = 1,      // broadcast: "who publishes class X?"
  kAcknowledge = 2,       // publisher → subscriber: "I do"
  kChannelConnection = 3, // subscriber → publisher: "open channel N"
  kChannelAck = 4,        // publisher → subscriber: "channel N is live"
  kUpdate = 5,            // publisher → subscriber: attribute update
  kHeartbeat = 6,         // either direction: liveness
  kBye = 7,               // either direction: tear down a channel
  kNack = 8,              // subscriber → publisher: missing sequences
  kWindowAck = 9,         // cumulative ack (subscriber) / skip (publisher)
  kBatch = 10,            // container: several CB messages, one datagram
};

/// Broadcast by the subscriber's CB until acknowledged (§2.3).
struct SubscriptionMsg {
  std::uint32_t subscriptionId = 0;  // unique within the issuing CB
  std::string className;
  /// classNameHash(className), stamped by decode(). Derived, never
  /// serialized — the wire is unchanged — but it lets the receiving CB
  /// route a discovery message straight to the shard that owns the class
  /// instead of scanning every table.
  std::uint32_t classHash = 0;
};

/// Publisher's answer to a SUBSCRIPTION it can serve.
struct AcknowledgeMsg {
  std::uint32_t subscriptionId = 0;  // echoed from the SUBSCRIPTION
  std::uint32_t publicationId = 0;   // publisher-side table entry
  std::string className;
  /// Derived shard key; see SubscriptionMsg::classHash.
  std::uint32_t classHash = 0;
};

/// Subscriber asks the publisher to link its publication entry to the
/// subscriber's table entry — this mapping *is* the virtual channel (§2.2).
struct ChannelConnectionMsg {
  std::uint32_t subscriptionId = 0;
  std::uint32_t publicationId = 0;
  std::uint32_t channelId = 0;  // chosen by the subscriber CB
  std::string className;
  /// QoS the subscriber requests for this channel.
  net::QosClass qos = net::QosClass::kBestEffort;
  /// Derived shard key; see SubscriptionMsg::classHash.
  std::uint32_t classHash = 0;
};

/// Publisher confirms the channel (the paper's second ACKNOWLEDGE).
struct ChannelAckMsg {
  std::uint32_t channelId = 0;
  std::uint32_t publicationId = 0;
  /// Effective QoS: the stronger of what the subscriber requested and
  /// what the publication mandates.
  net::QosClass qos = net::QosClass::kBestEffort;
  /// For reliable channels: the first update sequence this channel is
  /// owed (the publication's next sequence when the channel was opened).
  /// Sequence numbers are publication-global, so a mid-stream joiner must
  /// learn its base here rather than guessing from arrival order.
  std::uint64_t firstSeq = 0;
};

/// Subscriber reports sequences missing on a reliable channel; the
/// publisher re-sends them from its retransmit window.
struct NackMsg {
  std::uint32_t channelId = 0;
  std::vector<std::uint64_t> missingSeqs;
};

/// From the subscriber (fromPublisher=false): everything through
/// `cumulativeSeq` has been delivered in order — the publisher may prune
/// its window. From the publisher (fromPublisher=true): frames through
/// `cumulativeSeq` are no longer retransmittable — the subscriber must
/// skip past them (counted as abandoned, never silent).
struct WindowAckMsg {
  std::uint32_t channelId = 0;
  std::uint64_t cumulativeSeq = 0;
  bool fromPublisher = false;
  /// Optional delivery-timing echo for the end-to-end latency sampler
  /// (subscriber -> publisher only). When a sampled (trace-tagged) UPDATE
  /// was released in order, the next WINDOW_ACK echoes the tag back:
  /// `echoTagSec` verbatim (publisher clock — the subscriber never
  /// interprets it) plus `echoHoldSec`, the subscriber-clock delay between
  /// the in-order release and this ack leaving. The publisher computes
  /// latency = now - echoTagSec - echoHoldSec with no clock sync; the
  /// residual return-path transit is a documented overestimate.
  ///
  /// On the wire the echo is a trailing block after the v1 body, so an
  /// un-echoing encoder is byte-identical to the pre-trace protocol and
  /// decoders that predate it simply ignore the tail.
  bool echoed = false;
  std::uint64_t echoSeq = 0;
  double echoTagSec = 0.0;
  double echoHoldSec = 0.0;
  /// Optional duplicate report (subscriber -> publisher only): the
  /// cumulative count of duplicate frames this channel's receive queue
  /// has dropped — retransmits that arrived after the original already
  /// made it. The publisher subtracts them from its loss estimate (a
  /// frame delivered twice was never lost; its ack just lost the race
  /// with the tail RTO, which dominates on low-rate streams). Cumulative
  /// so a lost report is healed by the next one.
  ///
  /// Like the echo, a trailing block after the v1 body: absent (wire
  /// byte-identical) while the count is zero, ignored by decoders that
  /// predate it.
  bool dupReported = false;
  std::uint64_t dupCount = 0;
};

/// One attribute update pushed through a virtual channel.
struct UpdateMsg {
  std::uint32_t channelId = 0;
  std::uint64_t seq = 0;       // per-channel sequence number
  double timestamp = 0.0;      // sender simulation time
  std::vector<std::uint8_t> payload;  // encoded AttributeSet
  /// End-to-end latency sampling: 1-in-N reliable updates carry a trace
  /// tag — `pubWallSec`, the publisher's clock at publish — appended
  /// after the payload blob. The subscriber echoes it on its next
  /// WINDOW_ACK (see WindowAckMsg). Untagged frames are byte-identical
  /// to the pre-trace protocol; decoders without the tag reader ignore
  /// the trailing bytes.
  bool traced = false;
  double pubWallSec = 0.0;
};

struct HeartbeatMsg {
  std::uint32_t channelId = 0;
  double timestamp = 0.0;
  /// Channel ids are allocated by the subscriber, so a CB that both
  /// publishes and subscribes can know the same id in both roles. The
  /// direction flag says which role the sender is speaking in.
  bool fromPublisher = false;
};

struct ByeMsg {
  std::uint32_t channelId = 0;
  bool fromPublisher = false;
};

/// Container datagram produced by the CB's per-peer send coalescer: every
/// frame staged for one destination during a tick rides out as one kBatch
/// datagram instead of one datagram each. Sub-frames are existing wire
/// messages, byte-for-byte unchanged, so a batched sender interoperates
/// with an un-batched receiver's vocabulary (and vice versa: bare frames
/// are still accepted everywhere).
///
/// Layout: [u8 10][u16 count][(u32 len)(frame bytes) × count]
///
/// A batch never nests another batch, never carries an empty sub-frame,
/// and must consume the datagram exactly — anything else is rejected as
/// malformed (a real socket daemon drops, never trusts, a corrupt
/// container).
struct BatchMsg {
  std::vector<std::vector<std::uint8_t>> frames;
};

/// Incremental kBatch assembly for the send coalescer: sub-frames are
/// appended straight into the container buffer (no per-frame allocation),
/// and the count is backpatched when the datagram is taken. The buffer's
/// capacity survives clear(), so a steady-state flush cycle is
/// allocation-free.
class BatchBuilder {
 public:
  /// Append one already-encoded wire message as a sub-frame.
  void append(std::span<const std::uint8_t> frame);

  std::size_t frameCount() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Container size on the wire if `frameSize` more bytes were appended.
  std::size_t sizeWith(std::size_t frameSize) const;

  /// The finished container (backpatches the count). Valid only while at
  /// least one frame is staged.
  std::span<const std::uint8_t> bytes();
  /// When exactly one frame is staged the container is pure overhead: this
  /// is that frame's bytes, unwrapped — byte-identical to an un-batched
  /// send of the same message.
  std::span<const std::uint8_t> soloFrame() const;

  /// Drop the staged frames but keep the buffer's capacity.
  void clear();

 private:
  std::vector<std::uint8_t> buf_;
  std::uint16_t count_ = 0;
};

/// kBatch container framing constants: [u8 type][u16 count] header, then a
/// u32 length prefix before each sub-frame.
inline constexpr std::size_t kBatchHeaderBytes = 3;
inline constexpr std::size_t kBatchFramePrefixBytes = 4;
inline constexpr std::size_t kBatchMaxFrames = 0xFFFF;

/// Validate a kBatch container body (everything after the type byte)
/// against the framing rules: count > 0, every sub-frame non-empty and
/// not a nested container, and the body consumed exactly. Returns the
/// frame count, nullopt if malformed. The single definition of the
/// container contract — decode() and the CB's zero-copy receive path
/// both defer to it, so the two cannot drift apart.
std::optional<std::uint16_t> validateBatchBody(
    std::span<const std::uint8_t> body);

/// A decoded CB datagram.
struct CbMessage {
  MsgType type = MsgType::kHeartbeat;
  SubscriptionMsg subscription;
  AcknowledgeMsg acknowledge;
  ChannelConnectionMsg channelConnection;
  ChannelAckMsg channelAck;
  UpdateMsg update;
  HeartbeatMsg heartbeat;
  ByeMsg bye;
  NackMsg nack;
  WindowAckMsg windowAck;
  BatchMsg batch;
};

std::vector<std::uint8_t> encode(const SubscriptionMsg& m);
std::vector<std::uint8_t> encode(const AcknowledgeMsg& m);
std::vector<std::uint8_t> encode(const ChannelConnectionMsg& m);
std::vector<std::uint8_t> encode(const ChannelAckMsg& m);
std::vector<std::uint8_t> encode(const UpdateMsg& m);
std::vector<std::uint8_t> encode(const HeartbeatMsg& m);
std::vector<std::uint8_t> encode(const ByeMsg& m);
std::vector<std::uint8_t> encode(const NackMsg& m);
std::vector<std::uint8_t> encode(const WindowAckMsg& m);
std::vector<std::uint8_t> encode(const BatchMsg& m);

/// Encode an UPDATE into `out`, reusing its capacity. `out` is cleared
/// first. The fan-out hot path encodes one frame per update this way and
/// re-targets it per channel with patchChannelId().
void encodeInto(const UpdateMsg& m, std::vector<std::uint8_t>& out);

/// The single definition of the UPDATE frame layout, exposed so the CB
/// can stream a payload into the frame with no intermediate buffer:
/// writes [type][channelId=0][seq][timestamp] and opens the payload blob.
/// Write the payload through `w`, then close it with
/// `w.endBlob(returned offset)`; re-target with patchChannelId().
std::size_t beginUpdateFrame(net::WireWriter& w, std::uint64_t seq,
                             double timestamp);

/// UPDATE, HEARTBEAT, BYE, NACK and WINDOW_ACK frames all start
/// [u8 type][u32 channelId], so a frame encoded once can be re-targeted at
/// another virtual channel by rewriting 4 bytes instead of re-serializing
/// the whole payload.
inline constexpr std::size_t kChannelIdOffset = 1;

/// First byte of the optional trailing trace blocks on UPDATE
/// ([marker][f64 pubWallSec]) and WINDOW_ACK
/// ([marker][u64 echoSeq][f64 echoTagSec][f64 echoHoldSec]). Chosen so a
/// truncated or foreign tail is overwhelmingly unlikely to alias as a tag.
inline constexpr std::uint8_t kTraceTagMarker = 0x54;  // 'T'

/// First byte of the optional trailing duplicate-report block on
/// WINDOW_ACK ([marker][u64 dupCount]). Distinct from the trace marker so
/// the two trailing blocks compose in either's absence.
inline constexpr std::uint8_t kDupReportMarker = 0x44;  // 'D'

/// Append the sampled-update trace tag to an UPDATE frame under
/// construction (call after endBlob(), before take()). The tag rides
/// inside the retransmit-window copy, so a retransmitted sampled frame
/// measures retransmit-inclusive latency.
void appendUpdateTraceTag(net::WireWriter& w, double pubWallSec);

/// Rewrite the channel id of an encoded UPDATE/HEARTBEAT/BYE frame in
/// place. Precondition: `frame` holds one of those message types (at least
/// kChannelIdOffset + 4 bytes); byte-identical to re-encoding the message
/// with `channelId` substituted.
void patchChannelId(std::span<std::uint8_t> frame, std::uint32_t channelId);

/// Decode any CB datagram; nullopt on malformed input (which the CB drops,
/// as a real socket daemon must).
std::optional<CbMessage> decode(std::span<const std::uint8_t> bytes);

const char* msgTypeName(MsgType t);

}  // namespace cod::core
