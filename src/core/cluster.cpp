#include "core/cluster.hpp"

#include <algorithm>

namespace cod::core {

CodCluster::CodCluster(Config cfg) : cfg_(cfg), net_(cfg.seed) {
  net_.setDefaultLink(cfg_.link);
}

CodCluster::CodCluster() : CodCluster(Config{}) {}

CommunicationBackbone& CodCluster::addComputer(const std::string& name) {
  const net::HostId host = net_.addHost(name);
  auto transport = net_.bind(host, cfg_.cbPort);
  cbs_.push_back(std::make_unique<CommunicationBackbone>(
      name, std::move(transport), cfg_.cb));
  // Let the newcomer observe the current clock immediately so its timers
  // are phased off "now", not zero.
  cbs_.back()->tick(net_.now());
  return *cbs_.back();
}

void CodCluster::step(double dt) {
  const double target = net_.now() + dt;
  while (net_.now() < target) {
    const double slice = std::min(cfg_.tickIntervalSec, target - net_.now());
    net_.advance(slice);
    for (auto& cb : cbs_) cb->tick(net_.now());
  }
}

bool CodCluster::runUntil(const std::function<bool()>& pred, double maxTime) {
  while (net_.now() < maxTime) {
    if (pred()) return true;
    step(cfg_.tickIntervalSec);
  }
  return pred();
}

}  // namespace cod::core
