#include "core/protocol.hpp"

#include <cassert>

namespace cod::core {

namespace {

net::WireWriter header(MsgType t) {
  net::WireWriter w;
  w.u8(static_cast<std::uint8_t>(t));
  return w;
}

}  // namespace

std::uint32_t classNameHash(std::string_view name) {
  // FNV-1a, 32-bit. Chosen for cross-process stability, not speed: it is
  // computed once per decoded discovery message and once per
  // publish/subscribe call, never on the data plane.
  std::uint32_t h = 2166136261u;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

std::vector<std::uint8_t> encode(const SubscriptionMsg& m) {
  net::WireWriter w = header(MsgType::kSubscription);
  w.u32(m.subscriptionId);
  w.str(m.className);
  return w.take();
}

std::vector<std::uint8_t> encode(const AcknowledgeMsg& m) {
  net::WireWriter w = header(MsgType::kAcknowledge);
  w.u32(m.subscriptionId);
  w.u32(m.publicationId);
  w.str(m.className);
  return w.take();
}

std::vector<std::uint8_t> encode(const ChannelConnectionMsg& m) {
  net::WireWriter w = header(MsgType::kChannelConnection);
  w.u32(m.subscriptionId);
  w.u32(m.publicationId);
  w.u32(m.channelId);
  w.str(m.className);
  w.u8(static_cast<std::uint8_t>(m.qos));
  return w.take();
}

std::vector<std::uint8_t> encode(const ChannelAckMsg& m) {
  net::WireWriter w = header(MsgType::kChannelAck);
  w.u32(m.channelId);
  w.u32(m.publicationId);
  w.u8(static_cast<std::uint8_t>(m.qos));
  w.u64(m.firstSeq);
  return w.take();
}

std::vector<std::uint8_t> encode(const UpdateMsg& m) {
  std::vector<std::uint8_t> out;
  encodeInto(m, out);
  return out;
}

void encodeInto(const UpdateMsg& m, std::vector<std::uint8_t>& out) {
  net::WireWriter w(std::move(out));
  const std::size_t blobStart = beginUpdateFrame(w, m.seq, m.timestamp);
  w.raw(m.payload);
  w.endBlob(blobStart);
  if (m.traced) appendUpdateTraceTag(w, m.pubWallSec);
  out = w.take();
  patchChannelId(out, m.channelId);
}

void appendUpdateTraceTag(net::WireWriter& w, double pubWallSec) {
  w.u8(kTraceTagMarker);
  w.f64(pubWallSec);
}

std::size_t beginUpdateFrame(net::WireWriter& w, std::uint64_t seq,
                             double timestamp) {
  w.u8(static_cast<std::uint8_t>(MsgType::kUpdate));
  w.u32(0);  // channel id, patched per channel
  w.u64(seq);
  w.f64(timestamp);
  return w.beginBlob();
}

void patchChannelId(std::span<std::uint8_t> frame, std::uint32_t channelId) {
  assert(frame.size() >= kChannelIdOffset + sizeof(std::uint32_t));
  for (std::size_t i = 0; i < sizeof(std::uint32_t); ++i)
    frame[kChannelIdOffset + i] =
        static_cast<std::uint8_t>((channelId >> (8 * i)) & 0xFF);
}

std::vector<std::uint8_t> encode(const HeartbeatMsg& m) {
  net::WireWriter w = header(MsgType::kHeartbeat);
  w.u32(m.channelId);
  w.f64(m.timestamp);
  w.boolean(m.fromPublisher);
  return w.take();
}

std::vector<std::uint8_t> encode(const ByeMsg& m) {
  net::WireWriter w = header(MsgType::kBye);
  w.u32(m.channelId);
  w.boolean(m.fromPublisher);
  return w.take();
}

std::vector<std::uint8_t> encode(const NackMsg& m) {
  net::WireWriter w = header(MsgType::kNack);
  w.u32(m.channelId);
  w.u16(static_cast<std::uint16_t>(
      std::min<std::size_t>(m.missingSeqs.size(), 0xFFFF)));
  for (std::size_t i = 0; i < m.missingSeqs.size() && i < 0xFFFF; ++i)
    w.u64(m.missingSeqs[i]);
  return w.take();
}

std::vector<std::uint8_t> encode(const WindowAckMsg& m) {
  net::WireWriter w = header(MsgType::kWindowAck);
  w.u32(m.channelId);
  w.u64(m.cumulativeSeq);
  w.boolean(m.fromPublisher);
  if (m.echoed) {
    // Trailing delivery-timing echo; absent (byte-identical to the
    // pre-trace message) unless a sampled update is being reported.
    w.u8(kTraceTagMarker);
    w.u64(m.echoSeq);
    w.f64(m.echoTagSec);
    w.f64(m.echoHoldSec);
  }
  if (m.dupReported) {
    // Trailing duplicate report, always after the echo when both ride;
    // absent (byte-identical) while the channel has dropped no duplicate.
    w.u8(kDupReportMarker);
    w.u64(m.dupCount);
  }
  return w.take();
}

void BatchBuilder::append(std::span<const std::uint8_t> frame) {
  assert(!frame.empty());
  assert(count_ < kBatchMaxFrames);
  if (buf_.empty()) {
    buf_.push_back(static_cast<std::uint8_t>(MsgType::kBatch));
    buf_.push_back(0);  // u16 count, backpatched by bytes()
    buf_.push_back(0);
  }
  const std::uint32_t n = static_cast<std::uint32_t>(frame.size());
  for (std::size_t i = 0; i < kBatchFramePrefixBytes; ++i)
    buf_.push_back(static_cast<std::uint8_t>((n >> (8 * i)) & 0xFF));
  buf_.insert(buf_.end(), frame.begin(), frame.end());
  ++count_;
}

std::size_t BatchBuilder::sizeWith(std::size_t frameSize) const {
  const std::size_t current = empty() ? kBatchHeaderBytes : buf_.size();
  return current + kBatchFramePrefixBytes + frameSize;
}

std::span<const std::uint8_t> BatchBuilder::bytes() {
  buf_[1] = static_cast<std::uint8_t>(count_ & 0xFF);
  buf_[2] = static_cast<std::uint8_t>(count_ >> 8);
  return buf_;
}

std::span<const std::uint8_t> BatchBuilder::soloFrame() const {
  assert(count_ == 1);
  return std::span<const std::uint8_t>(buf_).subspan(kBatchHeaderBytes +
                                                     kBatchFramePrefixBytes);
}

void BatchBuilder::clear() {
  buf_.clear();
  count_ = 0;
}

std::optional<std::uint16_t> validateBatchBody(
    std::span<const std::uint8_t> body) {
  net::WireReader r(body);
  const auto count = r.u16();
  // The coalescer never emits an empty container, so count == 0 is as
  // malformed as a truncated header.
  if (!count || *count == 0) return std::nullopt;
  for (std::uint16_t i = 0; i < *count; ++i) {
    const auto frame = r.blobSpan();
    // A sub-frame must be a plausible CB message: non-empty and never a
    // nested container (the coalescer flattens; a nested batch on the
    // wire is corruption or an amplification attempt).
    if (!frame || frame->empty() ||
        frame->front() == static_cast<std::uint8_t>(MsgType::kBatch))
      return std::nullopt;
  }
  // The count must account for the whole datagram; trailing bytes mean
  // the container was corrupted in flight.
  if (!r.atEnd()) return std::nullopt;
  return count;
}

std::vector<std::uint8_t> encode(const BatchMsg& m) {
  BatchBuilder b;
  for (const auto& frame : m.frames) b.append(frame);
  if (b.empty()) {
    // The coalescer never produces an empty container and decode()
    // rejects one; the generic encoder still emits the canonical header
    // so round-trip tests can probe that rejection.
    return {static_cast<std::uint8_t>(MsgType::kBatch), 0, 0};
  }
  const auto bytes = b.bytes();
  return std::vector<std::uint8_t>(bytes.begin(), bytes.end());
}

std::optional<CbMessage> decode(std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  const auto t = r.u8();
  if (!t) return std::nullopt;
  CbMessage msg;
  msg.type = static_cast<MsgType>(*t);
  switch (msg.type) {
    case MsgType::kSubscription: {
      const auto id = r.u32();
      auto cls = r.str();
      if (!id || !cls) return std::nullopt;
      msg.subscription = {*id, std::move(*cls)};
      msg.subscription.classHash = classNameHash(msg.subscription.className);
      break;
    }
    case MsgType::kAcknowledge: {
      const auto sid = r.u32();
      const auto pid = r.u32();
      auto cls = r.str();
      if (!sid || !pid || !cls) return std::nullopt;
      msg.acknowledge = {*sid, *pid, std::move(*cls)};
      msg.acknowledge.classHash = classNameHash(msg.acknowledge.className);
      break;
    }
    case MsgType::kChannelConnection: {
      const auto sid = r.u32();
      const auto pid = r.u32();
      const auto ch = r.u32();
      auto cls = r.str();
      const auto qos = r.u8();
      if (!sid || !pid || !ch || !cls || !qos) return std::nullopt;
      if (*qos > static_cast<std::uint8_t>(net::QosClass::kReliableOrdered))
        return std::nullopt;
      msg.channelConnection = {*sid, *pid, *ch, std::move(*cls),
                               static_cast<net::QosClass>(*qos)};
      msg.channelConnection.classHash =
          classNameHash(msg.channelConnection.className);
      break;
    }
    case MsgType::kChannelAck: {
      const auto ch = r.u32();
      const auto pid = r.u32();
      const auto qos = r.u8();
      const auto firstSeq = r.u64();
      if (!ch || !pid || !qos || !firstSeq) return std::nullopt;
      if (*qos > static_cast<std::uint8_t>(net::QosClass::kReliableOrdered))
        return std::nullopt;
      msg.channelAck = {*ch, *pid, static_cast<net::QosClass>(*qos),
                        *firstSeq};
      break;
    }
    case MsgType::kUpdate: {
      const auto ch = r.u32();
      const auto seq = r.u64();
      const auto ts = r.f64();
      auto payload = r.blob();
      if (!ch || !seq || !ts || !payload) return std::nullopt;
      msg.update = {*ch, *seq, *ts, std::move(*payload)};
      // Optional trailing trace tag: [marker][f64 pubWallSec]. Anything
      // else trailing is ignored, exactly as it was pre-trace (forward
      // compatibility relies on it).
      if (r.remaining() == 1 + sizeof(double)) {
        const auto marker = r.u8();
        const auto tag = r.f64();
        if (marker && *marker == kTraceTagMarker && tag) {
          msg.update.traced = true;
          msg.update.pubWallSec = *tag;
        }
      }
      break;
    }
    case MsgType::kHeartbeat: {
      const auto ch = r.u32();
      const auto ts = r.f64();
      const auto fromPub = r.boolean();
      if (!ch || !ts || !fromPub) return std::nullopt;
      msg.heartbeat = {*ch, *ts, *fromPub};
      break;
    }
    case MsgType::kBye: {
      const auto ch = r.u32();
      const auto fromPub = r.boolean();
      if (!ch || !fromPub) return std::nullopt;
      msg.bye = {*ch, *fromPub};
      break;
    }
    case MsgType::kNack: {
      const auto ch = r.u32();
      const auto count = r.u16();
      if (!ch || !count) return std::nullopt;
      NackMsg nack;
      nack.channelId = *ch;
      nack.missingSeqs.reserve(*count);
      for (std::uint16_t i = 0; i < *count; ++i) {
        const auto seq = r.u64();
        if (!seq) return std::nullopt;
        nack.missingSeqs.push_back(*seq);
      }
      msg.nack = std::move(nack);
      break;
    }
    case MsgType::kWindowAck: {
      const auto ch = r.u32();
      const auto cum = r.u64();
      const auto fromPub = r.boolean();
      if (!ch || !cum || !fromPub) return std::nullopt;
      msg.windowAck = {*ch, *cum, *fromPub};
      // Optional trailing blocks, echo before dup report when both ride:
      //   echo: [0x54][u64 echoSeq][f64 echoTagSec][f64 echoHoldSec] (25)
      //   dup:  [0x44][u64 dupCount]                                  (9)
      // Only the exact lengths are parsed; any other tail is ignored
      // wholesale, exactly as it was pre-trace (forward compatibility
      // relies on it).
      constexpr std::size_t kEchoLen =
          1 + sizeof(std::uint64_t) + 2 * sizeof(double);
      constexpr std::size_t kDupLen = 1 + sizeof(std::uint64_t);
      const std::size_t tail = r.remaining();
      if (tail == kEchoLen || tail == kEchoLen + kDupLen) {
        const auto marker = r.u8();
        const auto eseq = r.u64();
        const auto etag = r.f64();
        const auto ehold = r.f64();
        if (marker && *marker == kTraceTagMarker && eseq && etag && ehold) {
          msg.windowAck.echoed = true;
          msg.windowAck.echoSeq = *eseq;
          msg.windowAck.echoTagSec = *etag;
          msg.windowAck.echoHoldSec = *ehold;
        }
      }
      if (r.remaining() == kDupLen &&
          (tail == kDupLen || msg.windowAck.echoed)) {
        const auto marker = r.u8();
        const auto dups = r.u64();
        if (marker && *marker == kDupReportMarker && dups) {
          msg.windowAck.dupReported = true;
          msg.windowAck.dupCount = *dups;
        }
      }
      break;
    }
    case MsgType::kBatch: {
      const auto count = validateBatchBody(bytes.subspan(1));
      if (!count) return std::nullopt;
      r.u16();  // count, validated above
      BatchMsg batch;
      batch.frames.reserve(*count);
      for (std::uint16_t i = 0; i < *count; ++i) {
        const auto frame = r.blobSpan();  // validated above
        batch.frames.emplace_back(frame->begin(), frame->end());
      }
      msg.batch = std::move(batch);
      break;
    }
    default:
      return std::nullopt;
  }
  return msg;
}

const char* msgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kSubscription: return "SUBSCRIPTION";
    case MsgType::kAcknowledge: return "ACKNOWLEDGE";
    case MsgType::kChannelConnection: return "CHANNEL_CONNECTION";
    case MsgType::kChannelAck: return "CHANNEL_ACK";
    case MsgType::kUpdate: return "UPDATE";
    case MsgType::kHeartbeat: return "HEARTBEAT";
    case MsgType::kBye: return "BYE";
    case MsgType::kNack: return "NACK";
    case MsgType::kWindowAck: return "WINDOW_ACK";
    case MsgType::kBatch: return "BATCH";
  }
  return "UNKNOWN";
}

}  // namespace cod::core
