#include "core/protocol.hpp"

#include <cassert>

namespace cod::core {

namespace {

net::WireWriter header(MsgType t) {
  net::WireWriter w;
  w.u8(static_cast<std::uint8_t>(t));
  return w;
}

}  // namespace

std::vector<std::uint8_t> encode(const SubscriptionMsg& m) {
  net::WireWriter w = header(MsgType::kSubscription);
  w.u32(m.subscriptionId);
  w.str(m.className);
  return w.take();
}

std::vector<std::uint8_t> encode(const AcknowledgeMsg& m) {
  net::WireWriter w = header(MsgType::kAcknowledge);
  w.u32(m.subscriptionId);
  w.u32(m.publicationId);
  w.str(m.className);
  return w.take();
}

std::vector<std::uint8_t> encode(const ChannelConnectionMsg& m) {
  net::WireWriter w = header(MsgType::kChannelConnection);
  w.u32(m.subscriptionId);
  w.u32(m.publicationId);
  w.u32(m.channelId);
  w.str(m.className);
  w.u8(static_cast<std::uint8_t>(m.qos));
  return w.take();
}

std::vector<std::uint8_t> encode(const ChannelAckMsg& m) {
  net::WireWriter w = header(MsgType::kChannelAck);
  w.u32(m.channelId);
  w.u32(m.publicationId);
  w.u8(static_cast<std::uint8_t>(m.qos));
  w.u64(m.firstSeq);
  return w.take();
}

std::vector<std::uint8_t> encode(const UpdateMsg& m) {
  std::vector<std::uint8_t> out;
  encodeInto(m, out);
  return out;
}

void encodeInto(const UpdateMsg& m, std::vector<std::uint8_t>& out) {
  net::WireWriter w(std::move(out));
  const std::size_t blobStart = beginUpdateFrame(w, m.seq, m.timestamp);
  w.raw(m.payload);
  w.endBlob(blobStart);
  out = w.take();
  patchChannelId(out, m.channelId);
}

std::size_t beginUpdateFrame(net::WireWriter& w, std::uint64_t seq,
                             double timestamp) {
  w.u8(static_cast<std::uint8_t>(MsgType::kUpdate));
  w.u32(0);  // channel id, patched per channel
  w.u64(seq);
  w.f64(timestamp);
  return w.beginBlob();
}

void patchChannelId(std::span<std::uint8_t> frame, std::uint32_t channelId) {
  assert(frame.size() >= kChannelIdOffset + sizeof(std::uint32_t));
  for (std::size_t i = 0; i < sizeof(std::uint32_t); ++i)
    frame[kChannelIdOffset + i] =
        static_cast<std::uint8_t>((channelId >> (8 * i)) & 0xFF);
}

std::vector<std::uint8_t> encode(const HeartbeatMsg& m) {
  net::WireWriter w = header(MsgType::kHeartbeat);
  w.u32(m.channelId);
  w.f64(m.timestamp);
  w.boolean(m.fromPublisher);
  return w.take();
}

std::vector<std::uint8_t> encode(const ByeMsg& m) {
  net::WireWriter w = header(MsgType::kBye);
  w.u32(m.channelId);
  w.boolean(m.fromPublisher);
  return w.take();
}

std::vector<std::uint8_t> encode(const NackMsg& m) {
  net::WireWriter w = header(MsgType::kNack);
  w.u32(m.channelId);
  w.u16(static_cast<std::uint16_t>(
      std::min<std::size_t>(m.missingSeqs.size(), 0xFFFF)));
  for (std::size_t i = 0; i < m.missingSeqs.size() && i < 0xFFFF; ++i)
    w.u64(m.missingSeqs[i]);
  return w.take();
}

std::vector<std::uint8_t> encode(const WindowAckMsg& m) {
  net::WireWriter w = header(MsgType::kWindowAck);
  w.u32(m.channelId);
  w.u64(m.cumulativeSeq);
  w.boolean(m.fromPublisher);
  return w.take();
}

std::optional<CbMessage> decode(std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  const auto t = r.u8();
  if (!t) return std::nullopt;
  CbMessage msg;
  msg.type = static_cast<MsgType>(*t);
  switch (msg.type) {
    case MsgType::kSubscription: {
      const auto id = r.u32();
      auto cls = r.str();
      if (!id || !cls) return std::nullopt;
      msg.subscription = {*id, std::move(*cls)};
      break;
    }
    case MsgType::kAcknowledge: {
      const auto sid = r.u32();
      const auto pid = r.u32();
      auto cls = r.str();
      if (!sid || !pid || !cls) return std::nullopt;
      msg.acknowledge = {*sid, *pid, std::move(*cls)};
      break;
    }
    case MsgType::kChannelConnection: {
      const auto sid = r.u32();
      const auto pid = r.u32();
      const auto ch = r.u32();
      auto cls = r.str();
      const auto qos = r.u8();
      if (!sid || !pid || !ch || !cls || !qos) return std::nullopt;
      if (*qos > static_cast<std::uint8_t>(net::QosClass::kReliableOrdered))
        return std::nullopt;
      msg.channelConnection = {*sid, *pid, *ch, std::move(*cls),
                               static_cast<net::QosClass>(*qos)};
      break;
    }
    case MsgType::kChannelAck: {
      const auto ch = r.u32();
      const auto pid = r.u32();
      const auto qos = r.u8();
      const auto firstSeq = r.u64();
      if (!ch || !pid || !qos || !firstSeq) return std::nullopt;
      if (*qos > static_cast<std::uint8_t>(net::QosClass::kReliableOrdered))
        return std::nullopt;
      msg.channelAck = {*ch, *pid, static_cast<net::QosClass>(*qos),
                        *firstSeq};
      break;
    }
    case MsgType::kUpdate: {
      const auto ch = r.u32();
      const auto seq = r.u64();
      const auto ts = r.f64();
      auto payload = r.blob();
      if (!ch || !seq || !ts || !payload) return std::nullopt;
      msg.update = {*ch, *seq, *ts, std::move(*payload)};
      break;
    }
    case MsgType::kHeartbeat: {
      const auto ch = r.u32();
      const auto ts = r.f64();
      const auto fromPub = r.boolean();
      if (!ch || !ts || !fromPub) return std::nullopt;
      msg.heartbeat = {*ch, *ts, *fromPub};
      break;
    }
    case MsgType::kBye: {
      const auto ch = r.u32();
      const auto fromPub = r.boolean();
      if (!ch || !fromPub) return std::nullopt;
      msg.bye = {*ch, *fromPub};
      break;
    }
    case MsgType::kNack: {
      const auto ch = r.u32();
      const auto count = r.u16();
      if (!ch || !count) return std::nullopt;
      NackMsg nack;
      nack.channelId = *ch;
      nack.missingSeqs.reserve(*count);
      for (std::uint16_t i = 0; i < *count; ++i) {
        const auto seq = r.u64();
        if (!seq) return std::nullopt;
        nack.missingSeqs.push_back(*seq);
      }
      msg.nack = std::move(nack);
      break;
    }
    case MsgType::kWindowAck: {
      const auto ch = r.u32();
      const auto cum = r.u64();
      const auto fromPub = r.boolean();
      if (!ch || !cum || !fromPub) return std::nullopt;
      msg.windowAck = {*ch, *cum, *fromPub};
      break;
    }
    default:
      return std::nullopt;
  }
  return msg;
}

const char* msgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kSubscription: return "SUBSCRIPTION";
    case MsgType::kAcknowledge: return "ACKNOWLEDGE";
    case MsgType::kChannelConnection: return "CHANNEL_CONNECTION";
    case MsgType::kChannelAck: return "CHANNEL_ACK";
    case MsgType::kUpdate: return "UPDATE";
    case MsgType::kHeartbeat: return "HEARTBEAT";
    case MsgType::kBye: return "BYE";
    case MsgType::kNack: return "NACK";
    case MsgType::kWindowAck: return "WINDOW_ACK";
  }
  return "UNKNOWN";
}

}  // namespace cod::core
