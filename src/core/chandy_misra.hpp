// Conservative asynchronous distributed simulation after Chandy & Misra
// (CACM 1981) — the message-scheduling reference the paper leans on for its
// server-less COD environment ([7] in the paper).
//
// Nodes exchange timestamped events over directed FIFO channels. A node may
// process the event with the smallest timestamp among its input heads only
// when *every* input channel guarantees it will never deliver anything
// earlier; empty channels advance their guarantee via null messages carrying
// clock-only timestamps (local clock + lookahead). With positive lookahead
// this is deadlock-free even on cyclic topologies.
//
// The kernel is single-threaded and deterministic; it models the distributed
// algorithm exactly (each node sees only its own channels).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace cod::core::cm {

using NodeId = std::uint32_t;

/// One timestamped event. `payload` is domain-defined.
struct Event {
  double time = 0.0;
  std::int64_t payload = 0;
};

class Kernel;

/// A logical process of the conservative simulation.
class Node {
 public:
  /// `lookahead` is the node's promise: any event it emits in reaction to
  /// an input at time t has timestamp >= t + lookahead. Must be > 0 for
  /// cyclic topologies.
  Node(std::string name, double lookahead)
      : name_(std::move(name)), lookahead_(lookahead) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }
  double lookahead() const { return lookahead_; }
  NodeId id() const { return id_; }
  /// Local virtual time: timestamp of the last processed event.
  double localClock() const { return clock_; }

  /// React to one input event; may call send() with delay >= lookahead.
  virtual void onEvent(const Event& ev, NodeId from) = 0;

 protected:
  /// Emit an event on the output channel to `to`, at time ev.time + delay.
  /// Only valid inside onEvent; delay must be >= lookahead.
  void send(NodeId to, std::int64_t payload, double delay);

 private:
  friend class Kernel;
  std::string name_;
  double lookahead_ = 0.0;
  NodeId id_ = 0;
  double clock_ = 0.0;
  Kernel* kernel_ = nullptr;
  double currentEventTime_ = 0.0;
};

/// The conservative scheduler.
class Kernel {
 public:
  /// Register a node (not owned; must outlive the kernel).
  NodeId add(Node& n);

  /// Create the directed FIFO channel from → to.
  void connect(NodeId from, NodeId to);

  /// Inject an external (environment) event destined for `to`.
  /// External events must be posted in nondecreasing time order per node.
  void post(NodeId to, const Event& ev);

  /// Declare that no further external events will be posted; environment
  /// channels then stop constraining node safe-times.
  void sealEnvironment();

  /// Run until no event with time <= untilTime can be processed.
  /// Returns the number of (non-null) events processed.
  /// Throws std::runtime_error on conservative deadlock (zero lookahead in
  /// a dependency cycle) or livelock (`maxEvents` exceeded — unbounded
  /// same-timestamp cycling, which positive lookahead prevents).
  std::size_t run(double untilTime, std::size_t maxEvents = 50'000'000);

  std::size_t nullMessagesSent() const { return nullsSent_; }
  std::size_t eventsProcessed() const { return eventsProcessed_; }

 private:
  friend class Node;

  struct ChannelMsg {
    double time = 0.0;
    std::int64_t payload = 0;
    bool isNull = false;
  };
  struct Channel {
    NodeId from = 0;
    NodeId to = 0;
    std::deque<ChannelMsg> queue;
    double clock = 0.0;  // guarantee: nothing earlier will ever arrive
  };
  struct NodeSlot {
    Node* node = nullptr;
    std::vector<std::size_t> inputs;   // channel indices
    std::vector<std::size_t> outputs;  // channel indices
    Channel env;                       // external stimulus channel
    bool envSealed = false;
  };

  void sendFrom(Node& n, NodeId to, std::int64_t payload, double delay);
  /// Guarantee of a channel: head timestamp if any, else channel clock.
  static double guarantee(const Channel& c) {
    return c.queue.empty() ? c.clock : c.queue.front().time;
  }
  /// Stalled: push null messages carrying each node's earliest-possible
  /// output time downstream until a fixpoint. Returns true if any channel
  /// guarantee advanced (progress is again possible).
  bool propagateGuarantees(double horizon);

  std::vector<NodeSlot> nodes_;
  std::vector<Channel> channels_;
  std::size_t nullsSent_ = 0;
  std::size_t eventsProcessed_ = 0;
};

}  // namespace cod::core::cm
