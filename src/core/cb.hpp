// The Communication Backbone (CB) — the paper's primary contribution (§2).
//
// One CB runs on every computer of the COD cluster as a transparent
// communication layer. Logical Processes (LPs) attach to their resident CB
// and use HLA-style service calls (publishObjectClass, subscribeObjectClass,
// updateAttributeValues) without knowing where — or whether — matching LPs
// exist. The CB performs:
//
//  * the broadcast-until-ACKNOWLEDGE initialization protocol that discovers
//    publishers for each subscription and builds *virtual channels*
//    (publication-table entry linked to a remote subscription-table entry);
//  * push/pull update routing over those channels, with a same-computer
//    fast path when publisher and subscriber share a CB;
//  * dynamic join: a publisher CB keeps listening while it executes, so a
//    new LP (e.g. an extra display) can be plugged in without restarting
//    the system;
//  * liveness (heartbeats, channel timeout) and teardown (BYE);
//  * per-channel QoS: kBestEffort channels are the paper's newest-wins
//    path; kReliableOrdered channels add a NACK/retransmit window and
//    in-order delivery (net/reliable.hpp) for traffic that must not drop,
//    such as exam scoring and instructor commands;
//  * tick-coalesced sending: outbound frames (updates, heartbeats, acks,
//    NACKs, retransmits) are staged per destination and leave as one
//    kBatch container datagram per peer per flush — the paper's 16 fps
//    surround view pushes 3+ attribute sets per frame, and without
//    coalescing each one costs a datagram per channel.
//
// Internally the routing core is partitioned into CbShard units keyed by
// classNameHash(className) % Config::shards (src/core/shard.hpp): table
// lookups and discovery matching touch only the shard that owns a class,
// while this facade keeps the public API, the transport, the coalescer,
// id allocation, the stats block and — via globally sorted handle
// snapshots — wire ordering, so every shard count is wire-byte-identical
// to shards=1.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/protocol.hpp"
#include "core/shard.hpp"
#include "core/value.hpp"
#include "net/reliable.hpp"
#include "net/transport.hpp"
#include "telemetry/hist.hpp"
#include "telemetry/trace.hpp"

namespace cod::net {
class AsyncTransport;
}  // namespace cod::net

namespace cod::core {

/// Base class for the paper's Logical Processes. Derive, override
/// reflectAttributeValues() (push model) and/or poll the CB (pull model),
/// and attach to the resident CB.
class LogicalProcess {
 public:
  explicit LogicalProcess(std::string name) : name_(std::move(name)) {}
  virtual ~LogicalProcess();
  LogicalProcess(const LogicalProcess&) = delete;
  LogicalProcess& operator=(const LogicalProcess&) = delete;

  const std::string& name() const { return name_; }
  LpId id() const { return id_; }
  /// The CB this LP is attached to, or null.
  CommunicationBackbone* backbone() const { return cb_; }

  /// Push-model delivery of one subscribed update (HLA "reflect attribute
  /// values"). Default does nothing — pull-model LPs poll instead.
  virtual void reflectAttributeValues(const std::string& className,
                                      const AttributeSet& attrs,
                                      double timestamp) {
    (void)className;
    (void)attrs;
    (void)timestamp;
  }

  /// Called once per CB tick after deliveries; the LP's own work.
  virtual void step(double now) { (void)now; }

 private:
  friend class CommunicationBackbone;
  std::string name_;
  LpId id_ = 0;
  CommunicationBackbone* cb_ = nullptr;
};

/// Counters of the per-peer send coalescer (both directions).
struct CbBatchStats {
  std::uint64_t datagramsCoalesced = 0;  // kBatch containers emitted
  std::uint64_t framesCoalesced = 0;     // sub-frames that rode in them
  std::uint64_t soloFlushes = 0;         // one-frame flushes, sent bare
  std::uint64_t oversizeSends = 0;       // frames beyond the byte budget
  std::uint64_t budgetFlushes = 0;       // early flushes forced by budget
  std::uint64_t containerBytesSent = 0;  // bytes across all containers
  std::uint64_t datagramsUnpacked = 0;   // containers received
  std::uint64_t framesUnpacked = 0;      // sub-frames dispatched from them
  std::uint64_t peerSlotsReclaimed = 0;  // staging slots freed on teardown
  /// Mid-tick flushes forced by Config::Batch::tickFlushByteBudget: the
  /// bytes staged across all peers this tick crossed the budget, so
  /// everything left early instead of pooling into one end-of-tick burst.
  std::uint64_t adaptiveFlushes = 0;
  /// Mean container size; with framesCoalesced/datagramsCoalesced this is
  /// the observable the batching bench tracks (bytes per datagram).
  double bytesPerDatagram() const {
    return datagramsCoalesced == 0
               ? 0.0
               : static_cast<double>(containerBytesSent) /
                     static_cast<double>(datagramsCoalesced);
  }
};

/// Live-health snapshot of one virtual channel, as exported to the
/// telemetry subsystem (src/telemetry/): enough to spot a stalled peer, a
/// retransmit storm, or a filling window without knowing CB internals.
struct CbChannelHealth {
  std::uint32_t channelId = 0;  // subscriber-allocated, both directions
  std::string className;
  bool outbound = false;  // true: publisher side of the channel
  net::QosClass qos = net::QosClass::kBestEffort;
  bool live = false;      // inbound: CHANNEL_ACK seen; outbound: always
  /// Seconds since the peer was last heard from on this channel.
  double ageSec = 0.0;
  /// Reliable channels: outbound, frames parked in the publication's
  /// retransmit window; inbound, frames held in the reorder buffer.
  std::uint64_t windowFrames = 0;
  /// Outbound reliable channels: frames re-sent on this channel so far.
  std::uint64_t retransmits = 0;
  /// Outbound: subscriber's cumulative ack; inbound: last in-order
  /// (reliable) or newest-wins (best effort) sequence delivered.
  std::uint64_t cumAcked = 0;
};

/// Counters exposed for tests, benches and the instructor monitor.
struct CbStats {
  std::uint64_t broadcastsSent = 0;
  std::uint64_t acknowledgesSent = 0;
  std::uint64_t channelsEstablishedOut = 0;  // as publisher
  std::uint64_t channelsEstablishedIn = 0;   // as subscriber
  std::uint64_t updatesSent = 0;
  std::uint64_t updatesDelivered = 0;
  std::uint64_t updatesLocalFastPath = 0;
  std::uint64_t duplicatesDropped = 0;
  std::uint64_t unknownChannelDrops = 0;
  std::uint64_t malformedDrops = 0;
  std::uint64_t channelsTimedOut = 0;
  std::uint64_t mailboxOverflows = 0;
  /// Best-effort updates skipped by backpressure thinning
  /// (setPeerSendFactor < 1 on the peer's channels).
  std::uint64_t updatesThinned = 0;
  /// Counters of the reliable-delivery layer (both roles).
  net::ReliableStats reliable;
  /// Counters of the send coalescer.
  CbBatchStats batch;
};

/// The Communication Backbone.
class CommunicationBackbone {
 public:
  struct Config {
    /// §2.3: the "constant time interval" between SUBSCRIPTION broadcasts
    /// while a subscription is still unacknowledged.
    double broadcastIntervalSec = 0.05;
    /// Slow re-broadcast after a subscription has at least one channel, so
    /// publishers that join late are still discovered. 0 disables it,
    /// which is the paper's literal stop-after-first-ACK behaviour.
    double refreshIntervalSec = 1.0;
    /// Retransmit CHANNEL_CONNECTION if the CHANNEL_ACK is lost.
    double connectRetrySec = 0.2;
    /// Keep-alive cadence on live channels.
    double heartbeatIntervalSec = 0.5;
    /// A channel with no traffic or heartbeat for this long is dropped and
    /// (on the subscriber side) rediscovery resumes.
    double channelTimeoutSec = 3.0;
    /// Same-CB publisher→subscriber delivery without touching the network.
    bool localFastPath = true;
    /// Per-subscription mailbox capacity; oldest entries drop on overflow.
    std::size_t mailboxLimit = 1024;
    /// Push reflections to LogicalProcess::reflectAttributeValues on tick.
    /// (Pull via poll()/latest() works in either mode.)
    bool pushDelivery = true;
    /// Routing shards: publication/subscription tables and discovery
    /// matching are partitioned by classNameHash(className) % shards, so
    /// a node carrying thousands of registrations pays per-class — not
    /// per-table — lookup costs. Any value is wire-byte-identical to 1
    /// (ordering is orchestrated globally); size it roughly to
    /// expected distinct classes / 64. 0 is clamped to 1.
    std::uint32_t shards = 1;
    /// Tunables of the kReliableOrdered channel machinery.
    net::ReliableConfig reliable;
    /// Tunables of the per-peer send coalescer.
    struct Batch {
      /// Stage outbound frames per destination and flush them as one
      /// kBatch container per peer per tick. Off restores the one-
      /// datagram-per-frame wire behaviour exactly.
      bool enabled = true;
      /// Container size cap, bytes — keep one flush under the path MTU so
      /// the LAN never fragments it. A staged batch that a new frame
      /// would push past this flushes early; a single frame larger than
      /// the budget bypasses the container and is sent bare.
      std::size_t byteBudget = 1200;
      /// Latency escape hatch: flush a publication's peers immediately
      /// after updateAttributeValues on any reliable channel, instead of
      /// waiting for the end-of-tick flush. Costs the coalescing win on
      /// those peers; meant for latency-critical command streams.
      bool flushReliableUpdates = false;
      /// Adaptive mid-tick flush: once the bytes staged across ALL peers
      /// since the last flush exceed this, everything leaves immediately
      /// instead of pooling until end of tick. Bounds the burst a heavy
      /// tick (mass fan-out, retransmit storm) otherwise fires into the
      /// NIC in one go — which is exactly when drops compound. 0 (the
      /// default) disables it: wire timing is then identical to the
      /// seed's end-of-tick-only flush.
      std::size_t tickFlushByteBudget = 0;
    };
    Batch batch;
    /// Optional flight recorder (telemetry/trace.hpp). Not owned; may be
    /// shared by several CBs (each registers its own lane). Hot paths
    /// record into it only while it exists and is enabled, so a null
    /// pointer costs one branch per site.
    telemetry::TraceRecorder* trace = nullptr;
    /// End-to-end latency sampling: every Nth update of each publication
    /// with reliable channels carries a trace tag whose WINDOW_ACK echo
    /// yields publish -> in-order-release latency (histograms() /
    /// telemetry record). 0 disables sampling — the wire is then
    /// byte-identical to a trace-free build.
    std::uint32_t traceSampleEvery = 0;
    /// Tick-phase profiler: time each tick's poll/decode, route, timer,
    /// stage and flush phases into phaseHistograms(), shipped as
    /// telemetry wire v5. Off (the default) costs nothing — no clock
    /// reads — and keeps the telemetry record on the v4 layout,
    /// byte-identical to an unprofiled build.
    bool phaseProfile = false;
    /// Async threaded network engine (net/engine.hpp): wrap the transport
    /// in an AsyncTransport so socket recv/send run on dedicated threads
    /// with lock-free rings to/from the tick thread, and syscalls batch
    /// (recvmmsg/sendmmsg on UDP). Off (the default) keeps the seed's
    /// single-threaded transport path, byte-identical on the wire; on,
    /// datagram CONTENT is identical but ordering across peers can
    /// interleave with tick boundaries. Engine health counters ship as
    /// telemetry wire v6.
    bool asyncNet = false;
  };

  /// `transport` is this computer's socket; by convention every CB of a
  /// cluster binds the same port so discovery broadcasts reach all of them.
  CommunicationBackbone(std::string name,
                        std::unique_ptr<net::Transport> transport,
                        Config cfg);
  CommunicationBackbone(std::string name,
                        std::unique_ptr<net::Transport> transport);
  ~CommunicationBackbone();
  CommunicationBackbone(const CommunicationBackbone&) = delete;
  CommunicationBackbone& operator=(const CommunicationBackbone&) = delete;

  const std::string& name() const { return name_; }
  net::NodeAddr address() const { return transport_->localAddress(); }
  const Config& config() const { return cfg_; }

  /// Attach an LP to this CB (the paper's "register to its resident CB").
  /// The CB does not own the LP; the LP must outlive its registrations or
  /// detach first (its destructor detaches automatically).
  LpId attach(LogicalProcess& lp);
  void detach(LogicalProcess& lp);

  /// HLA service: declare that `lp` produces `className`. `qos` is the
  /// publication's floor: every channel opened to it is at least that
  /// strong, even if the subscriber asked for best effort (used by e.g.
  /// the scenario module so no monitor can accidentally sample the score
  /// stream lossily).
  PublicationHandle publishObjectClass(
      LogicalProcess& lp, const std::string& className,
      net::QosClass qos = net::QosClass::kBestEffort);
  /// HLA service: declare interest in `className`; starts discovery.
  /// `qos` is requested per channel during connection; the effective
  /// class is the stronger of this and the publication's floor.
  SubscriptionHandle subscribeObjectClass(
      LogicalProcess& lp, const std::string& className,
      net::QosClass qos = net::QosClass::kBestEffort);
  void unpublish(PublicationHandle h);
  void unsubscribe(SubscriptionHandle h);

  /// HLA service: push one update through every virtual channel linked to
  /// this publication (plus the local fast path). Returns false iff the
  /// publication's send window is byte-budgeted with
  /// OverflowPolicy::kBlockPublisher and full — nothing was sent or
  /// delivered and the caller should retry later. Every other
  /// configuration always returns true (callers that predate the flow
  /// control may ignore the result).
  bool updateAttributeValues(PublicationHandle h, const AttributeSet& attrs,
                             double timestamp);

  /// Override the overflow policy for one publication's send window
  /// (applies to its shared window and any split per-channel windows;
  /// Config::reliable.overflowPolicy is the default).
  void setPublicationOverflowPolicy(PublicationHandle h,
                                    net::OverflowPolicy policy);

  /// Telemetry-closed backpressure hook: thin best-effort updates toward
  /// `peer` to `factor` (fraction actually sent, clamped to [0, 1]; 1
  /// restores full rate). Reliable channels are never thinned. Applies
  /// to every current outgoing channel whose endpoint is `peer`;
  /// channels established later start at full rate.
  void setPeerSendFactor(const net::NodeAddr& peer, double factor);

  /// Exempt one publication from per-peer thinning. Control-plane
  /// streams (the telemetry export above all) must keep flowing to a
  /// struggling peer: they are how its struggle is observed and how its
  /// recovery is detected, so thinning them would sever the very
  /// feedback loop that thins. TelemetryPublisher::bind sets this on its
  /// own publication.
  void setPublicationThinningExempt(PublicationHandle h, bool exempt);

  /// Pull model: take the next queued reflection for a subscription.
  std::optional<Reflection> poll(SubscriptionHandle h);
  /// Pull model: latest reflection seen on a subscription (null if none).
  const Reflection* latest(SubscriptionHandle h) const;
  /// Queued reflections not yet pulled/pushed.
  std::size_t pending(SubscriptionHandle h) const;

  /// Number of live virtual channels attached to a publication.
  std::size_t channelCount(PublicationHandle h) const;
  /// Number of live inbound channels feeding a subscription.
  std::size_t sourceCount(SubscriptionHandle h) const;
  /// True once a subscription has at least one live channel.
  bool connected(SubscriptionHandle h) const { return sourceCount(h) > 0; }

  /// Process inbound traffic, run protocol timers, deliver mailboxes and
  /// step attached LPs. Call regularly with a monotonically increasing
  /// clock (virtual or wall).
  void tick(double now);

  /// Emit every staged outbound frame now, one kBatch datagram per peer
  /// (the coalescer's escape hatch — tick() calls this at its end, so
  /// only latency-critical callers between ticks ever need it).
  void flushBatches();

  const CbStats& stats() const { return stats_; }
  /// Per-endpoint counters of the transport under this CB (null if the
  /// transport keeps none).
  const net::TransportStats* transportStats() const {
    return transport_->stats();
  }
  /// Health snapshot of every live virtual channel, publisher side first
  /// (publication-id order), then subscriber side (channel-id order) —
  /// deterministic so telemetry records diff cleanly across snapshots.
  std::vector<CbChannelHealth> channelHealth() const;
  std::size_t lpCount() const { return lps_.size(); }
  /// Peer staging slots currently in use / ever allocated. The coalescer
  /// reclaims slots on channel teardown, so `peerSlotCount` tracks live
  /// peers while `peerSlotCapacity` is bounded by the peak concurrent peer
  /// count, not lifetime peer churn.
  std::size_t peerSlotCount() const { return batchSlots_.size(); }
  std::size_t peerSlotCapacity() const { return peerBatches_.size(); }

  /// Routing shards in this CB (>= 1; Config::shards clamped).
  std::size_t shardCount() const { return shards_.size(); }
  /// The shard index that owns `className` (same formula every node
  /// applies to decoded discovery messages).
  std::uint32_t shardOf(std::string_view className) const {
    return classNameHash(className) %
           static_cast<std::uint32_t>(shards_.size());
  }
  /// Table sizes of one shard, for balance checks in tests and tooling.
  CbShardLoad shardLoad(std::uint32_t shard) const;

  /// Latency/size histograms this CB maintains (telemetry record v3):
  /// delivery latency of sampled reliable updates, tick duration, flush
  /// sizes and retransmit delay.
  const telemetry::CbHistograms& histograms() const { return hists_; }

  /// Per-phase tick histograms (telemetry record v5). All-zero unless
  /// Config::phaseProfile.
  const telemetry::TickPhaseHistograms& phaseHistograms() const {
    return phaseHists_;
  }

 private:
  friend class CbShard;

  /// True while hot paths should pay for trace records.
  bool tracing() const {
    return cfg_.trace != nullptr && cfg_.trace->enabled();
  }
  /// Record one flight-recorder event on this CB's lane. Call only under
  /// a tracing() guard (keeps the disabled cost to one branch).
  void traceEvent(telemetry::TraceEventKind kind, double tsSec,
                  double durSec = 0.0, std::uint64_t a = 0,
                  std::uint64_t b = 0) {
    cfg_.trace->record(kind, traceLane_, tsSec, durSec, a, b);
  }

  void handleDatagram(const net::Datagram& d, double now);
  /// Route one decoded message to the shard that owns it (sub-frames of a
  /// kBatch container go through here individually). Discovery messages
  /// route by their stamped class hash; channel-scoped messages through
  /// the channel-id / (peer, channel-id) indexes.
  void dispatchMessage(CbMessage& msg, const net::NodeAddr& src, double now);

  void runTimers(double now);
  void deliverMailboxes();

  CbShard& shardForHash(std::uint32_t classHash) {
    return *shards_[classHash % static_cast<std::uint32_t>(shards_.size())];
  }
  /// Entry lookups across shards via the handle→shard indexes (null if
  /// unknown). The non-const forms are what the public accessors use.
  PublicationEntry* findPublication(PublicationHandle h);
  const PublicationEntry* findPublication(PublicationHandle h) const;
  SubscriptionEntry* findSubscription(SubscriptionHandle h);
  const SubscriptionEntry* findSubscription(SubscriptionHandle h) const;

  /// Shard-side bookkeeping hooks: every inbound channel and every
  /// outgoing channel endpoint is registered here so inbound traffic
  /// routes O(log n) to its shard instead of scanning all tables.
  void registerInChannel(std::uint32_t channelId, std::uint32_t shard);
  void unregisterInChannel(std::uint32_t channelId);
  void registerOutChannel(const net::NodeAddr& remote,
                          std::uint32_t remoteChannelId, std::uint32_t shard,
                          PublicationHandle pub);
  void unregisterOutChannel(const net::NodeAddr& remote,
                            std::uint32_t remoteChannelId,
                            PublicationHandle pub);

  /// One frame staged for a peer, as a descriptor into the shared staging
  /// arena (`stageArena_`) rather than bytes of its own. The arena entry
  /// is `[u32 len LE][frame bytes]` at `off` — already in kBatch
  /// sub-frame framing, so an unpatched frame flushes as ONE iovec span
  /// with no per-frame staging copy. A `patched` entry is the update
  /// fan-out's zero-copy channel-id rewrite: the frame bytes are shared
  /// by every channel of the fan-out and `chanLe` overrides the 4 id
  /// bytes at frame offset 1 at flush time (three spans: length prefix +
  /// type byte, the id, the rest).
  struct StagedFrame {
    std::uint32_t off = 0;  // arena offset of [u32 len][frame]
    std::uint32_t len = 0;  // frame bytes (excluding the u32 prefix)
    std::uint8_t chanLe[4] = {0, 0, 0, 0};
    bool patched = false;
  };

  /// One staging buffer per live remote endpoint. A slot stays pinned
  /// while any channel caches its index (`channelRefs`); channel teardown
  /// releases the pin and an unpinned slot is reclaimed to a free list
  /// once its staged frames have flushed, so the table tracks live peers
  /// instead of growing with lifetime peer churn (ephemeral-address
  /// dynamic join). Reclaim happens only at zero refs, so a cached index
  /// can never watch its slot be re-issued to a different peer.
  struct PeerBatch {
    net::NodeAddr addr;
    std::vector<StagedFrame> frames;
    /// Container size if flushed now: kBatchHeaderBytes + Σ(4 + len).
    /// 0 when empty (mirrors BatchBuilder::sizeWith's accounting).
    std::size_t stagedBytes = 0;
    std::uint32_t channelRefs = 0;  // live channels caching this index
    bool active = false;            // false: parked on the free list

    bool empty() const { return frames.empty(); }
    std::size_t sizeWith(std::size_t frameSize) const {
      return (frames.empty() ? kBatchHeaderBytes : stagedBytes) +
             kBatchFramePrefixBytes + frameSize;
    }
  };

  /// Resolve (or create) the staging slot for `dst`. Slots created here
  /// are unpinned; transient destinations (discovery replies) give theirs
  /// back at the next flush.
  std::uint32_t batchSlotFor(const net::NodeAddr& dst);
  /// Resolve the slot for a channel's endpoint and pin it until
  /// releaseBatchSlot.
  std::uint32_t acquireBatchSlot(const net::NodeAddr& dst);
  /// Unpin a channel's cached slot at teardown (no-op on kNoBatchSlot).
  void releaseBatchSlot(std::uint32_t slot);
  /// Park an unpinned, empty, active slot on the free list.
  void reclaimSlotIfIdle(std::uint32_t slot);
  /// Stage one encoded frame for `dst`; with batching disabled this is a
  /// plain transport send. May flush early on the byte budget.
  void stageSend(const net::NodeAddr& dst, std::span<const std::uint8_t> frame);
  void stageSend(std::uint32_t slot, std::span<const std::uint8_t> frame);
  /// Stage through a channel's cached slot (resolving and pinning it on
  /// first use) — the form every per-channel send path uses.
  template <typename Channel>
  void stageToChannel(Channel& ch, std::span<const std::uint8_t> frame) {
    if (ch.batchSlot == kNoBatchSlot)
      ch.batchSlot = acquireBatchSlot(ch.remote);
    stageSend(ch.batchSlot, frame);
  }
  /// Append `[u32 len][frame]` to the staging arena, returning its offset
  /// (offsets stay valid across arena growth; the arena is recycled only
  /// when nothing staged references it anymore).
  std::uint32_t arenaAppend(std::span<const std::uint8_t> frame);
  /// Stage a frame already in the arena with its channel-id bytes
  /// rewritten to `channelId` at flush time — the update fan-out's
  /// zero-copy per-channel path. Same flush decisions as stageSend.
  void stagePatched(std::uint32_t slot, std::uint32_t off, std::uint32_t len,
                    std::uint32_t channelId);
  template <typename Channel>
  void stagePatchedToChannel(Channel& ch, std::uint32_t off,
                             std::uint32_t len) {
    if (ch.batchSlot == kNoBatchSlot)
      ch.batchSlot = acquireBatchSlot(ch.remote);
    stagePatched(ch.batchSlot, off, len, ch.remoteChannelId);
  }
  /// Shared tail of the two staging paths: append the descriptor, grow
  /// the budget accounting, arm the adaptive mid-tick flush.
  void appendStaged(PeerBatch& b, const StagedFrame& f);
  /// Send an arena frame bare with its channel id patched (three spans).
  void sendPatchedBare(const net::NodeAddr& addr, std::uint32_t off,
                       std::uint32_t len, const std::uint8_t* chanLe);
  void flushSlot(PeerBatch& b);

  std::string name_;
  std::unique_ptr<net::Transport> transport_;
  Config cfg_;
  double now_ = 0.0;

  std::map<LpId, LogicalProcess*> lps_;

  /// The routing shards (fixed at construction, >= 1) and the global
  /// handle→shard / channel→shard indexes the dispatcher routes through.
  /// Index keys double as the sorted-snapshot source for every
  /// wire-order-sensitive walk, so ordering never depends on shard count.
  std::vector<std::unique_ptr<CbShard>> shards_;
  std::unordered_map<PublicationHandle, std::uint32_t> pubShard_;
  std::unordered_map<SubscriptionHandle, std::uint32_t> subShard_;
  std::unordered_map<std::uint32_t, std::uint32_t> inChannelShard_;
  /// (subscriber endpoint, subscriber-allocated channel id) → owning
  /// shard + publication: the publisher-side route for heartbeats, BYEs,
  /// NACKs and window acks, replacing the old all-tables scan.
  std::map<std::pair<net::NodeAddr, std::uint32_t>,
           std::pair<std::uint32_t, PublicationHandle>>
      outChannelIndex_;

  std::vector<PeerBatch> peerBatches_;
  std::map<net::NodeAddr, std::uint32_t> batchSlots_;  // active slots only
  /// FIFO, not LIFO: flushBatches walks slots in index order, so reusing
  /// the oldest freed index first keeps per-peer flush order tracking
  /// channel-creation order instead of recent-teardown order.
  std::deque<std::uint32_t> freeBatchSlots_;

  std::uint32_t nextLpId_ = 1;
  std::uint32_t nextHandle_ = 1;
  std::uint32_t nextChannelId_ = 1;
  CbStats stats_;
  telemetry::CbHistograms hists_;
  telemetry::TickPhaseHistograms phaseHists_;
  /// Route time this tick: dispatchMessage accumulates here (it runs
  /// interleaved with the receive loop, so it cannot be bracketed as one
  /// span); tick() subtracts it from the receive-loop wall time to get
  /// the poll/decode phase. Only maintained under Config::phaseProfile.
  double phaseRouteAccumSec_ = 0.0;
  std::uint16_t traceLane_ = 0;  // our lane in cfg_.trace (if attached)
  std::uint64_t tickOrdinal_ = 0;
  /// Bytes staged across all peers since the last flush, for the
  /// adaptive mid-tick flush (Config::Batch::tickFlushByteBudget).
  std::size_t stagedTickBytes_ = 0;
  /// Reusable UPDATE frame for updateAttributeValues: encoded once per
  /// update, channel id patched per channel, capacity kept across calls.
  std::vector<std::uint8_t> updateFrame_;
  /// Shared staging arena: every staged frame's bytes live here as
  /// `[u32 len][frame]` chunks; PeerBatch slots hold descriptors only.
  /// Cleared lazily — only when a new chunk is appended while NOTHING is
  /// staged (stagedFrameCount_ == 0) — so a mid-fan-out adaptive flush
  /// can empty the slots without invalidating the fan-out's shared chunk
  /// that later channels still reference. Offsets, not pointers, so
  /// growth reallocation is harmless.
  std::vector<std::uint8_t> stageArena_;
  /// Descriptors currently staged across ALL peer slots (arena-recycling
  /// guard, see stageArena_).
  std::size_t stagedFrameCount_ = 0;
  /// Reusable span list for scatter-gather flushes.
  std::vector<net::ByteSpan> iovScratch_;
  /// The async engine when Config::asyncNet (owned via transport_; this
  /// is a borrowed view for engine-stat snapshots). Null when sync.
  net::AsyncTransport* asyncEngine_ = nullptr;

 public:
  /// Engine view for telemetry (null unless Config::asyncNet).
  net::AsyncTransport* asyncEngine() const { return asyncEngine_; }
};

}  // namespace cod::core
