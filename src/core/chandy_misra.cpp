#include "core/chandy_misra.hpp"

#include <algorithm>
#include <stdexcept>

namespace cod::core::cm {

void Node::send(NodeId to, std::int64_t payload, double delay) {
  if (kernel_ == nullptr)
    throw std::logic_error("Node::send outside a kernel run");
  if (delay < lookahead_)
    throw std::logic_error("Node '" + name_ +
                           "': send delay violates declared lookahead");
  kernel_->sendFrom(*this, to, payload, delay);
}

NodeId Kernel::add(Node& n) {
  n.id_ = static_cast<NodeId>(nodes_.size());
  n.kernel_ = this;
  NodeSlot slot;
  slot.node = &n;
  nodes_.push_back(std::move(slot));
  return n.id_;
}

void Kernel::connect(NodeId from, NodeId to) {
  Channel c;
  c.from = from;
  c.to = to;
  channels_.push_back(std::move(c));
  const std::size_t idx = channels_.size() - 1;
  nodes_.at(from).outputs.push_back(idx);
  nodes_.at(to).inputs.push_back(idx);
}

void Kernel::post(NodeId to, const Event& ev) {
  NodeSlot& slot = nodes_.at(to);
  if (slot.envSealed)
    throw std::logic_error("Kernel::post after sealEnvironment");
  if (!slot.env.queue.empty() && ev.time < slot.env.queue.back().time)
    throw std::logic_error("Kernel::post: external events must be ordered");
  slot.env.queue.push_back({ev.time, ev.payload, /*isNull=*/false});
  slot.env.clock = ev.time;
}

void Kernel::sealEnvironment() {
  for (NodeSlot& slot : nodes_) {
    slot.envSealed = true;
    slot.env.clock = std::numeric_limits<double>::infinity();
  }
}

void Kernel::sendFrom(Node& n, NodeId to, std::int64_t payload, double delay) {
  const double t = n.currentEventTime_ + delay;
  for (const std::size_t ci : nodes_.at(n.id_).outputs) {
    Channel& c = channels_[ci];
    if (c.to != to) continue;
    if (!c.queue.empty() && t < c.queue.back().time)
      throw std::logic_error("Node '" + n.name_ +
                             "': out-of-order send on a FIFO channel");
    c.queue.push_back({t, payload, /*isNull=*/false});
    return;
  }
  throw std::logic_error("Node '" + n.name_ + "': no channel to target node");
}

bool Kernel::propagateGuarantees(double horizon) {
  // A node can never emit earlier than (min over its inputs' guarantees) +
  // its lookahead; announce that bound on every output whose current
  // guarantee is worse. Iterate to a fixpoint (cycles converge because
  // positive lookahead strictly advances the bound each lap).
  bool advancedAny = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeSlot& slot : nodes_) {
      double bound = guarantee(slot.env);
      for (const std::size_t ci : slot.inputs)
        bound = std::min(bound, guarantee(channels_[ci]));
      bound = std::max(bound, slot.node->localClock());
      // Nothing beyond the horizon needs a guarantee; capping keeps the
      // fixpoint finite on cyclic topologies.
      const double promise =
          std::min(bound + slot.node->lookahead(), horizon);
      for (const std::size_t ci : slot.outputs) {
        Channel& c = channels_[ci];
        const double already = c.queue.empty() ? c.clock : c.queue.back().time;
        if (promise > already) {
          c.queue.push_back({promise, 0, /*isNull=*/true});
          ++nullsSent_;
          changed = true;
          advancedAny = true;
        }
      }
    }
  }
  return advancedAny;
}

std::size_t Kernel::run(double untilTime, std::size_t maxEvents) {
  const std::size_t processedBefore = eventsProcessed_;
  std::size_t popped = 0;
  for (;;) {
    if (++popped > maxEvents)
      throw std::runtime_error(
          "Chandy-Misra livelock: maxEvents exceeded (zero-lookahead cycle?)");
    // Pick the globally earliest safely-processable head message.
    double bestTime = std::numeric_limits<double>::infinity();
    std::size_t bestNode = nodes_.size();
    Channel* bestChannel = nullptr;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      NodeSlot& slot = nodes_[i];
      // Gather this node's input channels: real ones + environment.
      auto guaranteeOf = [&](const Channel& c) { return guarantee(c); };
      // Find the earliest head among nonempty inputs.
      Channel* headChannel = nullptr;
      double headTime = std::numeric_limits<double>::infinity();
      auto consider = [&](Channel& c) {
        if (c.queue.empty()) return;
        if (c.queue.front().time < headTime) {
          headTime = c.queue.front().time;
          headChannel = &c;
        }
      };
      for (const std::size_t ci : slot.inputs) consider(channels_[ci]);
      consider(slot.env);
      if (headChannel == nullptr) continue;
      if (headTime > untilTime) continue;
      // Conservative condition: every *other* input guarantees nothing
      // earlier than headTime.
      bool safe = true;
      for (const std::size_t ci : slot.inputs) {
        Channel& c = channels_[ci];
        if (&c != headChannel && guaranteeOf(c) < headTime) {
          safe = false;
          break;
        }
      }
      if (safe && &slot.env != headChannel && guaranteeOf(slot.env) < headTime)
        safe = false;
      if (!safe) continue;
      if (headTime < bestTime) {
        bestTime = headTime;
        bestNode = i;
        bestChannel = headChannel;
      }
    }

    if (bestChannel == nullptr) {
      // Nothing processable: try to unblock by propagating guarantees
      // (termination nulls — idle upstream nodes announce their bounds).
      if (propagateGuarantees(untilTime + 1e-9)) continue;
      // If a real event remains within the horizon despite the fixpoint,
      // the conservative condition can never be met: deadlock.
      for (const Channel& c : channels_) {
        for (const ChannelMsg& m : c.queue) {
          if (!m.isNull && m.time <= untilTime)
            throw std::runtime_error(
                "Chandy-Misra deadlock: cycle with insufficient lookahead");
        }
      }
      for (const NodeSlot& slot : nodes_) {
        for (const ChannelMsg& m : slot.env.queue) {
          if (!m.isNull && m.time <= untilTime && slot.envSealed)
            throw std::runtime_error(
                "Chandy-Misra deadlock: unreachable environment event");
        }
      }
      break;
    }

    NodeSlot& slot = nodes_[bestNode];
    Node& node = *slot.node;
    const ChannelMsg msg = bestChannel->queue.front();
    bestChannel->queue.pop_front();
    bestChannel->clock = msg.time;
    // A sealed environment channel that has just drained guarantees that
    // nothing more will ever arrive on it.
    if (bestChannel == &slot.env && slot.envSealed && slot.env.queue.empty())
      slot.env.clock = std::numeric_limits<double>::infinity();
    node.clock_ = std::max(node.clock_, msg.time);
    if (!msg.isNull) {
      node.currentEventTime_ = msg.time;
      const NodeId from =
          bestChannel == &slot.env ? node.id() : bestChannel->from;
      node.onEvent(Event{msg.time, msg.payload}, from);
      ++eventsProcessed_;
    }
    // Advance downstream guarantees: null messages at clock + lookahead.
    const double promise = node.clock_ + node.lookahead();
    for (const std::size_t ci : slot.outputs) {
      Channel& c = channels_[ci];
      const double already =
          c.queue.empty() ? c.clock : c.queue.back().time;
      if (promise > already) {
        c.queue.push_back({promise, 0, /*isNull=*/true});
        ++nullsSent_;
      }
    }
  }
  return eventsProcessed_ - processedBefore;
}

}  // namespace cod::core::cm
