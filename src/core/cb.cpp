#include "core/cb.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "net/engine.hpp"

namespace cod::core {

namespace {

/// Sorted snapshot of an index's keys — the facade's ordering primitive:
/// handles and channel ids ascend in creation order, so a sorted key walk
/// reproduces the pre-shard wire order whatever the shard count.
template <typename Map>
std::vector<typename Map::key_type> sortedKeys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

LogicalProcess::~LogicalProcess() {
  if (cb_ != nullptr) cb_->detach(*this);
}

CommunicationBackbone::CommunicationBackbone(
    std::string name, std::unique_ptr<net::Transport> transport, Config cfg)
    : name_(std::move(name)), transport_(std::move(transport)), cfg_(cfg) {
  if (!transport_)
    throw std::invalid_argument("CommunicationBackbone: null transport");
  if (cfg_.asyncNet) {
    // Interpose the async engine between the CB and whatever transport
    // the caller handed us: recv/send move to dedicated threads, the
    // tick thread talks to lock-free rings. Everything below (stageSend,
    // flushSlot) is oblivious — it just calls Transport as before.
    net::AsyncNetConfig acfg;
    acfg.trace = cfg_.trace;
    acfg.laneName = name_;
    auto eng =
        std::make_unique<net::AsyncTransport>(std::move(transport_), acfg);
    asyncEngine_ = eng.get();
    transport_ = std::move(eng);
  }
  const std::uint32_t n = std::max<std::uint32_t>(1, cfg_.shards);
  shards_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<CbShard>(*this, i));
  if (cfg_.trace != nullptr) traceLane_ = cfg_.trace->registerLane(name_);
}

CommunicationBackbone::CommunicationBackbone(
    std::string name, std::unique_ptr<net::Transport> transport)
    : CommunicationBackbone(std::move(name), std::move(transport), Config{}) {}

CommunicationBackbone::~CommunicationBackbone() {
  // Anything staged since the last tick still leaves (best effort — the
  // transport may already be beyond caring, but a BYE or final update
  // deserves the attempt).
  flushBatches();
  // Detach surviving LPs so their destructors do not dangle into us.
  for (auto& [id, lp] : lps_) {
    lp->cb_ = nullptr;
    lp->id_ = 0;
  }
}

std::uint32_t CommunicationBackbone::batchSlotFor(const net::NodeAddr& dst) {
  const auto it = batchSlots_.find(dst);
  if (it != batchSlots_.end()) return it->second;
  std::uint32_t slot;
  if (!freeBatchSlots_.empty()) {
    slot = freeBatchSlots_.front();
    freeBatchSlots_.pop_front();
    peerBatches_[slot].addr = dst;
  } else {
    slot = static_cast<std::uint32_t>(peerBatches_.size());
    peerBatches_.emplace_back();
    peerBatches_[slot].addr = dst;
  }
  peerBatches_[slot].active = true;
  batchSlots_.emplace(dst, slot);
  return slot;
}

std::uint32_t CommunicationBackbone::acquireBatchSlot(const net::NodeAddr& dst) {
  const std::uint32_t slot = batchSlotFor(dst);
  ++peerBatches_[slot].channelRefs;
  return slot;
}

void CommunicationBackbone::releaseBatchSlot(std::uint32_t slot) {
  if (slot == kNoBatchSlot) return;
  PeerBatch& b = peerBatches_[slot];
  if (b.channelRefs > 0) --b.channelRefs;
  // Staged frames (a BYE, say) must still leave; if the slot is not
  // empty yet, the flush that empties it completes the reclaim.
  reclaimSlotIfIdle(slot);
}

void CommunicationBackbone::reclaimSlotIfIdle(std::uint32_t slot) {
  PeerBatch& b = peerBatches_[slot];
  if (!b.active || b.channelRefs > 0 || !b.empty()) return;
  batchSlots_.erase(b.addr);
  b.active = false;
  freeBatchSlots_.push_back(slot);
  ++stats_.batch.peerSlotsReclaimed;
}

void CommunicationBackbone::stageSend(const net::NodeAddr& dst,
                                      std::span<const std::uint8_t> frame) {
  stageSend(batchSlotFor(dst), frame);
}

std::uint32_t CommunicationBackbone::arenaAppend(
    std::span<const std::uint8_t> frame) {
  // Recycle only when no staged descriptor references the arena anymore:
  // a mid-fan-out adaptive flush may have emptied every slot while the
  // fan-out's shared chunk is still about to be staged to more channels,
  // and THAT is guarded by the fan-out not appending between channels.
  if (stagedFrameCount_ == 0) stageArena_.clear();
  const std::uint32_t off = static_cast<std::uint32_t>(stageArena_.size());
  const std::uint32_t len = static_cast<std::uint32_t>(frame.size());
  stageArena_.push_back(static_cast<std::uint8_t>(len & 0xFF));
  stageArena_.push_back(static_cast<std::uint8_t>((len >> 8) & 0xFF));
  stageArena_.push_back(static_cast<std::uint8_t>((len >> 16) & 0xFF));
  stageArena_.push_back(static_cast<std::uint8_t>((len >> 24) & 0xFF));
  stageArena_.insert(stageArena_.end(), frame.begin(), frame.end());
  return off;
}

void CommunicationBackbone::appendStaged(PeerBatch& b, const StagedFrame& f) {
  b.stagedBytes = (b.frames.empty() ? kBatchHeaderBytes : b.stagedBytes) +
                  kBatchFramePrefixBytes + f.len;
  b.frames.push_back(f);
  ++stagedFrameCount_;
  stagedTickBytes_ += f.len;
  if (cfg_.batch.tickFlushByteBudget != 0 &&
      stagedTickBytes_ >= cfg_.batch.tickFlushByteBudget) {
    // Adaptive mid-tick flush: the tick has staged enough across all
    // peers to overrun the budget — drain now instead of pooling it all
    // into one end-of-tick burst. Only budget-counted (container) bytes
    // arm this; bare sends left immediately anyway.
    ++stats_.batch.adaptiveFlushes;
    flushBatches();
  }
}

void CommunicationBackbone::sendPatchedBare(const net::NodeAddr& addr,
                                            std::uint32_t off,
                                            std::uint32_t len,
                                            const std::uint8_t* chanLe) {
  // [type u8][channel id u32 @1][rest]: three spans swap in the id
  // without touching the shared frame bytes. sendv consumes the spans
  // before returning, so arena growth afterwards is harmless.
  const std::uint8_t* base = stageArena_.data() + off + kBatchFramePrefixBytes;
  const net::ByteSpan parts[3] = {
      {base, 1}, {chanLe, 4}, {base + 5, len - 5}};
  transport_->sendv(addr, parts);
}

void CommunicationBackbone::stageSend(std::uint32_t slot,
                                      std::span<const std::uint8_t> frame) {
  // Staging itself is not recorded per frame — the flush event carries
  // the frame count, and a per-frame instant here would be the single
  // largest event source in a busy mesh (3+ per tick).
  PeerBatch& b = peerBatches_[slot];
  if (!cfg_.batch.enabled) {
    transport_->send(b.addr, frame);
    hists_.flushBytes.record(static_cast<double>(frame.size()));
    if (tracing())
      traceEvent(telemetry::TraceEventKind::kDatagramSend, now_, 0.0,
                 frame.size());
    return;
  }
  if (!b.empty() && (b.sizeWith(frame.size()) > cfg_.batch.byteBudget ||
                     b.frames.size() >= kBatchMaxFrames)) {
    ++stats_.batch.budgetFlushes;
    flushSlot(b);
  }
  if (b.empty() && b.sizeWith(frame.size()) > cfg_.batch.byteBudget) {
    // Even alone this frame busts the budget: bypass the container (the
    // bare frame is wire-compatible; the transport fragments if it must).
    transport_->send(b.addr, frame);
    ++stats_.batch.oversizeSends;
    hists_.flushBytes.record(static_cast<double>(frame.size()));
    if (tracing())
      traceEvent(telemetry::TraceEventKind::kDatagramSend, now_, 0.0,
                 frame.size());
    return;
  }
  StagedFrame f;
  f.off = arenaAppend(frame);
  f.len = static_cast<std::uint32_t>(frame.size());
  appendStaged(b, f);
}

void CommunicationBackbone::stagePatched(std::uint32_t slot, std::uint32_t off,
                                         std::uint32_t len,
                                         std::uint32_t channelId) {
  // The update fan-out's per-channel path: same decision tree as
  // stageSend, but the frame bytes are already in the arena (appended
  // once for the whole fan-out) and only the 4 channel-id bytes differ —
  // staging a channel costs a 16-byte descriptor, not a frame copy.
  PeerBatch& b = peerBatches_[slot];
  StagedFrame f;
  f.off = off;
  f.len = len;
  f.chanLe[0] = static_cast<std::uint8_t>(channelId & 0xFF);
  f.chanLe[1] = static_cast<std::uint8_t>((channelId >> 8) & 0xFF);
  f.chanLe[2] = static_cast<std::uint8_t>((channelId >> 16) & 0xFF);
  f.chanLe[3] = static_cast<std::uint8_t>((channelId >> 24) & 0xFF);
  f.patched = true;
  if (!cfg_.batch.enabled) {
    sendPatchedBare(b.addr, off, len, f.chanLe);
    hists_.flushBytes.record(static_cast<double>(len));
    if (tracing())
      traceEvent(telemetry::TraceEventKind::kDatagramSend, now_, 0.0, len);
    return;
  }
  if (!b.empty() && (b.sizeWith(len) > cfg_.batch.byteBudget ||
                     b.frames.size() >= kBatchMaxFrames)) {
    ++stats_.batch.budgetFlushes;
    flushSlot(b);
  }
  if (b.empty() && b.sizeWith(len) > cfg_.batch.byteBudget) {
    sendPatchedBare(b.addr, off, len, f.chanLe);
    ++stats_.batch.oversizeSends;
    hists_.flushBytes.record(static_cast<double>(len));
    if (tracing())
      traceEvent(telemetry::TraceEventKind::kDatagramSend, now_, 0.0, len);
    return;
  }
  appendStaged(b, f);
}

void CommunicationBackbone::flushSlot(PeerBatch& b) {
  if (b.empty()) return;
  const std::size_t frames = b.frames.size();
  const std::uint8_t* arena = stageArena_.data();
  std::size_t sentBytes;
  if (frames == 1) {
    // A one-frame container is pure overhead — and stripping it keeps a
    // lone message byte-identical to the un-batched protocol.
    const StagedFrame& f = b.frames.front();
    if (!f.patched) {
      transport_->send(
          b.addr, {arena + f.off + kBatchFramePrefixBytes, f.len});
    } else {
      sendPatchedBare(b.addr, f.off, f.len, f.chanLe);
    }
    ++stats_.batch.soloFlushes;
    sentBytes = f.len;
  } else {
    // Scatter-gather container: stack header + one span per unpatched
    // frame ([len][frame] is already contiguous in the arena), three per
    // patched frame. No staging copy happens on this path at all — the
    // bytes go from the arena to the transport.
    const std::uint8_t hdr[kBatchHeaderBytes] = {
        static_cast<std::uint8_t>(MsgType::kBatch),
        static_cast<std::uint8_t>(frames & 0xFF),
        static_cast<std::uint8_t>((frames >> 8) & 0xFF)};
    iovScratch_.clear();
    iovScratch_.emplace_back(hdr, kBatchHeaderBytes);
    std::size_t size = kBatchHeaderBytes;
    for (const StagedFrame& f : b.frames) {
      if (!f.patched) {
        iovScratch_.emplace_back(arena + f.off,
                                 kBatchFramePrefixBytes + f.len);
      } else {
        iovScratch_.emplace_back(arena + f.off, kBatchFramePrefixBytes + 1);
        iovScratch_.emplace_back(f.chanLe, 4);
        iovScratch_.emplace_back(arena + f.off + kBatchFramePrefixBytes + 5,
                                 f.len - 5);
      }
      size += kBatchFramePrefixBytes + f.len;
    }
    transport_->sendv(b.addr, iovScratch_);
    ++stats_.batch.datagramsCoalesced;
    stats_.batch.framesCoalesced += frames;
    stats_.batch.containerBytesSent += size;
    sentBytes = size;
  }
  hists_.flushBytes.record(static_cast<double>(sentBytes));
  // One event per container: the flush IS the datagram send (bytes +
  // frame count); a paired kDatagramSend would double the volume.
  if (tracing())
    traceEvent(telemetry::TraceEventKind::kBatchFlush, now_, 0.0, sentBytes,
               frames);
  stagedFrameCount_ -= frames;
  b.frames.clear();
  b.stagedBytes = 0;
}

void CommunicationBackbone::flushBatches() {
  stagedTickBytes_ = 0;
  for (std::uint32_t i = 0; i < peerBatches_.size(); ++i) {
    PeerBatch& b = peerBatches_[i];
    if (!b.active) continue;
    flushSlot(b);
    // Transient destinations (discovery replies, peers mid-teardown) hold
    // no channel pins: give their slots back once drained.
    if (b.channelRefs == 0) reclaimSlotIfIdle(i);
  }
}

LpId CommunicationBackbone::attach(LogicalProcess& lp) {
  if (lp.cb_ == this) return lp.id_;
  if (lp.cb_ != nullptr)
    throw std::logic_error("LP '" + lp.name() + "' already attached elsewhere");
  lp.id_ = nextLpId_++;
  lp.cb_ = this;
  lps_[lp.id_] = &lp;
  return lp.id_;
}

void CommunicationBackbone::detach(LogicalProcess& lp) {
  if (lp.cb_ != this) return;
  // Resign every registration owned by this LP.
  std::vector<PublicationHandle> pubs;
  for (const auto& [h, s] : pubShard_)
    if (shards_[s]->publication(h)->lp == lp.id_) pubs.push_back(h);
  std::sort(pubs.begin(), pubs.end());
  for (const PublicationHandle h : pubs) unpublish(h);
  std::vector<SubscriptionHandle> subs;
  for (const auto& [h, s] : subShard_)
    if (shards_[s]->subscription(h)->lp == lp.id_) subs.push_back(h);
  std::sort(subs.begin(), subs.end());
  for (const SubscriptionHandle h : subs) unsubscribe(h);
  lps_.erase(lp.id_);
  lp.cb_ = nullptr;
  lp.id_ = 0;
}

PublicationEntry* CommunicationBackbone::findPublication(PublicationHandle h) {
  const auto it = pubShard_.find(h);
  return it == pubShard_.end() ? nullptr : shards_[it->second]->publication(h);
}

const PublicationEntry* CommunicationBackbone::findPublication(
    PublicationHandle h) const {
  const auto it = pubShard_.find(h);
  return it == pubShard_.end() ? nullptr : shards_[it->second]->publication(h);
}

SubscriptionEntry* CommunicationBackbone::findSubscription(
    SubscriptionHandle h) {
  const auto it = subShard_.find(h);
  return it == subShard_.end() ? nullptr : shards_[it->second]->subscription(h);
}

const SubscriptionEntry* CommunicationBackbone::findSubscription(
    SubscriptionHandle h) const {
  const auto it = subShard_.find(h);
  return it == subShard_.end() ? nullptr : shards_[it->second]->subscription(h);
}

void CommunicationBackbone::registerInChannel(std::uint32_t channelId,
                                              std::uint32_t shard) {
  inChannelShard_[channelId] = shard;
}

void CommunicationBackbone::unregisterInChannel(std::uint32_t channelId) {
  inChannelShard_.erase(channelId);
}

void CommunicationBackbone::registerOutChannel(const net::NodeAddr& remote,
                                               std::uint32_t remoteChannelId,
                                               std::uint32_t shard,
                                               PublicationHandle pub) {
  // Assignment, not emplace: a restarted subscriber may reuse a channel
  // id against a different publication while the stale channel rides out
  // its timeout — the newest registration wins the route.
  outChannelIndex_[{remote, remoteChannelId}] = {shard, pub};
}

void CommunicationBackbone::unregisterOutChannel(const net::NodeAddr& remote,
                                                 std::uint32_t remoteChannelId,
                                                 PublicationHandle pub) {
  const auto it = outChannelIndex_.find({remote, remoteChannelId});
  // Guarded erase: if the id was re-registered to a newer publication
  // (see registerOutChannel), the stale channel's teardown must not drop
  // the live route.
  if (it != outChannelIndex_.end() && it->second.second == pub)
    outChannelIndex_.erase(it);
}

PublicationHandle CommunicationBackbone::publishObjectClass(
    LogicalProcess& lp, const std::string& className, net::QosClass qos) {
  if (lp.cb_ != this) attach(lp);
  PublicationEntry e;
  e.id = nextHandle_++;
  e.lp = lp.id_;
  e.className = className;
  e.qos = qos;
  const PublicationHandle h = e.id;
  const std::uint32_t s = shardOf(className);
  pubShard_.emplace(h, s);
  shards_[s]->addPublication(std::move(e));
  return h;
}

SubscriptionHandle CommunicationBackbone::subscribeObjectClass(
    LogicalProcess& lp, const std::string& className, net::QosClass qos) {
  if (lp.cb_ != this) attach(lp);
  SubscriptionEntry e;
  e.id = nextHandle_++;
  e.lp = lp.id_;
  e.className = className;
  e.qos = qos;
  e.nextBroadcast = now_;  // start discovery on the next tick
  const SubscriptionHandle h = e.id;
  const std::uint32_t s = shardOf(className);
  subShard_.emplace(h, s);
  shards_[s]->addSubscription(std::move(e));
  return h;
}

void CommunicationBackbone::unpublish(PublicationHandle h) {
  const auto it = pubShard_.find(h);
  if (it == pubShard_.end()) return;
  shards_[it->second]->unpublish(h);
  pubShard_.erase(it);
}

void CommunicationBackbone::unsubscribe(SubscriptionHandle h) {
  const auto it = subShard_.find(h);
  if (it == subShard_.end()) return;
  shards_[it->second]->unsubscribe(h);
  subShard_.erase(it);
}

bool CommunicationBackbone::updateAttributeValues(PublicationHandle h,
                                                  const AttributeSet& attrs,
                                                  double timestamp) {
  const auto it = pubShard_.find(h);
  if (it == pubShard_.end())
    throw std::invalid_argument("updateAttributeValues: unknown publication");
  CbShard& shard = *shards_[it->second];
  return shard.update(*shard.publication(h), attrs, timestamp);
}

void CommunicationBackbone::setPublicationOverflowPolicy(
    PublicationHandle h, net::OverflowPolicy policy) {
  PublicationEntry* pub = findPublication(h);
  if (pub == nullptr)
    throw std::invalid_argument("setPublicationOverflowPolicy: unknown handle");
  pub->overflowPolicy = policy;
  if (pub->retx) pub->retx->setOverflowPolicy(policy);
  for (OutChannel& ch : pub->channels)
    if (ch.splitRetx) ch.splitRetx->setOverflowPolicy(policy);
}

void CommunicationBackbone::setPublicationThinningExempt(PublicationHandle h,
                                                         bool exempt) {
  PublicationEntry* pub = findPublication(h);
  if (pub == nullptr)
    throw std::invalid_argument(
        "setPublicationThinningExempt: unknown handle");
  pub->thinExempt = exempt;
}

void CommunicationBackbone::setPeerSendFactor(const net::NodeAddr& peer,
                                              double factor) {
  for (auto& shard : shards_) shard->setPeerSendFactor(peer, factor);
}

std::optional<Reflection> CommunicationBackbone::poll(SubscriptionHandle h) {
  SubscriptionEntry* sub = findSubscription(h);
  if (sub == nullptr || sub->mailbox.empty()) return std::nullopt;
  Reflection r = std::move(sub->mailbox.front());
  sub->mailbox.pop_front();
  return r;
}

const Reflection* CommunicationBackbone::latest(SubscriptionHandle h) const {
  const SubscriptionEntry* sub = findSubscription(h);
  if (sub == nullptr || !sub->latest) return nullptr;
  return &*sub->latest;
}

std::size_t CommunicationBackbone::pending(SubscriptionHandle h) const {
  const SubscriptionEntry* sub = findSubscription(h);
  return sub != nullptr ? sub->mailbox.size() : 0;
}

std::size_t CommunicationBackbone::channelCount(PublicationHandle h) const {
  const PublicationEntry* pub = findPublication(h);
  if (pub == nullptr) return 0;
  return pub->channels.size() + pub->localSubscribers.size();
}

std::vector<CbChannelHealth> CommunicationBackbone::channelHealth() const {
  std::vector<CbChannelHealth> out;
  // Publisher side in publication-id (creation) order: the tables hash,
  // but telemetry snapshots should diff stably between intervals.
  for (const PublicationHandle h : sortedKeys(pubShard_)) {
    const PublicationEntry& pub = *findPublication(h);
    for (const OutChannel& ch : pub.channels) {
      CbChannelHealth hh;
      hh.channelId = ch.remoteChannelId;
      hh.className = pub.className;
      hh.outbound = true;
      hh.qos = ch.qos;
      hh.live = true;  // an OutChannel exists only once connected
      hh.ageSec = now_ - ch.lastHeardSec;
      // A split channel reports its private window — that is the buffer
      // whose occupancy tells the monitor whether THIS peer is pinned.
      hh.windowFrames = ch.splitRetx ? ch.splitRetx->size()
                                     : (pub.retx ? pub.retx->size() : 0);
      hh.retransmits = ch.retransmits;
      hh.cumAcked = ch.cumAcked;
      out.push_back(std::move(hh));
    }
  }
  for (const std::uint32_t cid : sortedKeys(inChannelShard_)) {
    const CbShard& shard = *shards_[inChannelShard_.find(cid)->second];
    const InChannel& ch = *shard.inChannel(cid);
    CbChannelHealth hh;
    hh.channelId = cid;
    const SubscriptionEntry* sub = shard.subscription(ch.subscription);
    if (sub != nullptr) hh.className = sub->className;
    hh.outbound = false;
    hh.qos = ch.qos;
    hh.live = ch.live;
    hh.ageSec = now_ - ch.lastActivity;
    hh.windowFrames = ch.rq ? ch.rq->buffered() : 0;
    hh.cumAcked = ch.rq ? (ch.rq->nextExpected() > 0 ? ch.rq->nextExpected() - 1
                                                     : 0)
                        : ch.lastSeq;
    out.push_back(std::move(hh));
  }
  return out;
}

std::size_t CommunicationBackbone::sourceCount(SubscriptionHandle h) const {
  const auto it = subShard_.find(h);
  if (it == subShard_.end()) return 0;
  return shards_[it->second]->sourceCount(h);
}

CbShardLoad CommunicationBackbone::shardLoad(std::uint32_t shard) const {
  if (shard >= shards_.size())
    throw std::out_of_range("shardLoad: no such shard");
  return shards_[shard]->load();
}

void CommunicationBackbone::tick(double now) {
  using Clock = std::chrono::steady_clock;
  const bool prof = cfg_.phaseProfile;
  const auto wall0 = Clock::now();
  const std::uint64_t ordinal = tickOrdinal_++;
  // No kTickBegin event: the kTickEnd span already carries the tick's
  // start time and duration, and the hot path budgets every record().
  now_ = now;
  // The receive loop interleaves socket polling/decoding with routing
  // (dispatchMessage), so the route phase cannot be bracketed as one
  // span: dispatchMessage accumulates its own time and pollDecode is the
  // loop's wall time minus that. Adaptive mid-tick flushes triggered
  // inside a phase are charged to that phase — the flush phase is the
  // end-of-tick flush only.
  phaseRouteAccumSec_ = 0.0;
  while (auto d = transport_->receive()) handleDatagram(*d, now);
  const auto tRecv = prof ? Clock::now() : Clock::time_point{};
  runTimers(now);
  const auto tTimers = prof ? Clock::now() : Clock::time_point{};
  if (cfg_.pushDelivery) deliverMailboxes();
  // Step LPs by id snapshot: an LP may attach/detach others in step().
  std::vector<LpId> ids;
  ids.reserve(lps_.size());
  for (const auto& [id, lp] : lps_) ids.push_back(id);
  for (const LpId id : ids) {
    const auto it = lps_.find(id);
    if (it != lps_.end()) it->second->step(now);
  }
  const auto tStage = prof ? Clock::now() : Clock::time_point{};
  // The flush point: everything staged this tick — handler replies, timer
  // traffic, LP-step updates — leaves as one datagram per peer.
  flushBatches();
  const auto wall1 = Clock::now();
  const double wallDur = std::chrono::duration<double>(wall1 - wall0).count();
  hists_.tickDurationSec.record(wallDur);
  if (prof) {
    const double recvSec =
        std::chrono::duration<double>(tRecv - wall0).count();
    phaseHists_.pollDecodeSec.record(
        std::max(0.0, recvSec - phaseRouteAccumSec_));
    phaseHists_.routeSec.record(phaseRouteAccumSec_);
    phaseHists_.timersSec.record(
        std::chrono::duration<double>(tTimers - tRecv).count());
    phaseHists_.stageSec.record(
        std::chrono::duration<double>(tStage - tTimers).count());
    phaseHists_.flushSec.record(
        std::chrono::duration<double>(wall1 - tStage).count());
  }
  if (tracing())
    traceEvent(telemetry::TraceEventKind::kTickEnd, now, wallDur, ordinal);
}

void CommunicationBackbone::handleDatagram(const net::Datagram& d, double now) {
  if (tracing())
    traceEvent(telemetry::TraceEventKind::kDatagramRecv, now, 0.0,
               d.payload.size());
  if (!d.payload.empty() &&
      d.payload.front() == static_cast<std::uint8_t>(MsgType::kBatch)) {
    // Container from a batching sender: walk the length-prefixed
    // sub-frames as views (no copies) and dispatch each as if it had
    // arrived alone. Interop is symmetric — bare frames from un-batched
    // senders take the plain path below unchanged.
    //
    // The framing is validated in full BEFORE anything is dispatched: a
    // corrupt container must have no side effects, exactly like decode()
    // rejecting it wholesale (a half-applied datagram would be a state
    // the un-batched protocol can never produce). validateBatchBody is
    // the same contract decode() enforces.
    const auto body = std::span<const std::uint8_t>(d.payload).subspan(1);
    const auto count = validateBatchBody(body);
    if (!count) {
      ++stats_.malformedDrops;
      return;
    }
    ++stats_.batch.datagramsUnpacked;
    net::WireReader r(body);
    r.u16();  // count, validated above
    for (std::uint16_t i = 0; i < *count; ++i) {
      auto msg = decode(*r.blobSpan());
      if (!msg) {
        // Valid framing, undecodable message inside: dropped exactly as
        // the same bytes would be had they arrived bare.
        ++stats_.malformedDrops;
        continue;
      }
      ++stats_.batch.framesUnpacked;
      dispatchMessage(*msg, d.src, now);
    }
    return;
  }
  auto msg = decode(d.payload);
  if (!msg) {
    ++stats_.malformedDrops;
    return;
  }
  dispatchMessage(*msg, d.src, now);
}

void CommunicationBackbone::dispatchMessage(CbMessage& msg,
                                            const net::NodeAddr& src,
                                            double now) {
  using Clock = std::chrono::steady_clock;
  const auto routeStart =
      cfg_.phaseProfile ? Clock::now() : Clock::time_point{};
  switch (msg.type) {
    // Discovery messages route by the class hash decode() stamped on
    // them: the owning shard is a modulo away, no table scan. A message
    // whose hash routes to a shard that does not hold the named entry is
    // dropped there — the same fate the pre-shard CB gave mismatched
    // class names.
    case MsgType::kSubscription:
      shardForHash(msg.subscription.classHash)
          .handleSubscription(msg.subscription, src, now);
      break;
    case MsgType::kAcknowledge:
      shardForHash(msg.acknowledge.classHash)
          .handleAcknowledge(msg.acknowledge, src, now);
      break;
    case MsgType::kChannelConnection:
      shardForHash(msg.channelConnection.classHash)
          .handleChannelConnection(msg.channelConnection, src, now);
      break;
    // Subscriber-side channel messages route by channel id.
    case MsgType::kChannelAck: {
      const auto it = inChannelShard_.find(msg.channelAck.channelId);
      if (it != inChannelShard_.end())
        shards_[it->second]->handleChannelAck(msg.channelAck, src, now);
      break;
    }
    case MsgType::kUpdate: {
      const auto it = inChannelShard_.find(msg.update.channelId);
      if (it == inChannelShard_.end()) {
        ++stats_.unknownChannelDrops;
        break;
      }
      shards_[it->second]->handleUpdate(msg.update, src, now);
      break;
    }
    // Messages that may target either role route by the direction flag:
    // publisher-sent ones through the channel-id index, subscriber-sent
    // ones through the (peer, channel id) → publication index.
    case MsgType::kHeartbeat:
      if (msg.heartbeat.fromPublisher) {
        const auto it = inChannelShard_.find(msg.heartbeat.channelId);
        if (it != inChannelShard_.end())
          shards_[it->second]->handlePublisherHeartbeat(msg.heartbeat, src,
                                                        now);
      } else {
        const auto it = outChannelIndex_.find({src, msg.heartbeat.channelId});
        if (it != outChannelIndex_.end())
          shards_[it->second.first]->handleSubscriberHeartbeat(
              it->second.second, msg.heartbeat, src, now);
      }
      break;
    case MsgType::kBye:
      if (msg.bye.fromPublisher) {
        const auto it = inChannelShard_.find(msg.bye.channelId);
        if (it != inChannelShard_.end())
          shards_[it->second]->handlePublisherBye(msg.bye, src);
      } else {
        const auto it = outChannelIndex_.find({src, msg.bye.channelId});
        if (it != outChannelIndex_.end())
          shards_[it->second.first]->handleSubscriberBye(it->second.second,
                                                         msg.bye, src);
      }
      break;
    case MsgType::kNack: {
      const auto it = outChannelIndex_.find({src, msg.nack.channelId});
      if (it != outChannelIndex_.end())
        shards_[it->second.first]->handleNack(it->second.second, msg.nack, src,
                                              now);
      break;
    }
    case MsgType::kWindowAck:
      if (msg.windowAck.fromPublisher) {
        const auto it = inChannelShard_.find(msg.windowAck.channelId);
        if (it != inChannelShard_.end())
          shards_[it->second]->handlePublisherWindowAck(msg.windowAck, src,
                                                        now);
      } else {
        const auto it = outChannelIndex_.find({src, msg.windowAck.channelId});
        if (it != outChannelIndex_.end())
          shards_[it->second.first]->handleSubscriberWindowAck(
              it->second.second, msg.windowAck, src, now);
      }
      break;
    case MsgType::kBatch:
      // Containers are unpacked in handleDatagram and never nest; one
      // reaching here means a decoder bug upstream — drop it.
      ++stats_.malformedDrops;
      break;
  }
  if (cfg_.phaseProfile)
    phaseRouteAccumSec_ +=
        std::chrono::duration<double>(Clock::now() - routeStart).count();
}

void CommunicationBackbone::runTimers(double now) {
  // Every phase walks a globally sorted handle snapshot and dispatches
  // per entry into the owning shard: creation order on the wire, exactly
  // as the pre-shard CB emitted it, whatever Config::shards says.

  // Subscription discovery broadcasts (§2.3).
  for (const SubscriptionHandle h : sortedKeys(subShard_))
    shards_[subShard_.find(h)->second]->subscriptionTimer(h, now);

  // Retransmit CHANNEL_CONNECTION for channels still awaiting their ack,
  // and time out dead inbound channels. Keep-alive frames in one pass
  // differ only in channel id, so the tick encodes at most one frame
  // (shared across shards) and re-targets it per channel.
  std::vector<std::uint8_t> subHeartbeat;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> toDrop;  // cid, shard
  for (const std::uint32_t cid : sortedKeys(inChannelShard_)) {
    const std::uint32_t s = inChannelShard_.find(cid)->second;
    if (shards_[s]->inChannelTimer(cid, now, subHeartbeat))
      toDrop.emplace_back(cid, s);
  }
  for (const auto& [cid, s] : toDrop)
    shards_[s]->dropTimedOutInChannel(cid, now);

  // Publisher keep-alives on idle channels, the reliable tail-retransmit
  // sweep, and timeout of dead subscribers.
  std::vector<std::uint8_t> pubHeartbeat;
  for (const PublicationHandle h : sortedKeys(pubShard_))
    shards_[pubShard_.find(h)->second]->publicationTimer(h, now, pubHeartbeat);
}

void CommunicationBackbone::deliverMailboxes() {
  // Subscription-id order == creation order: push delivery across LPs
  // must not depend on hash-table layout (or shard layout).
  for (const SubscriptionHandle h : sortedKeys(subShard_)) {
    // Re-find each time: reflect callbacks may (un)subscribe re-entrantly.
    SubscriptionEntry* sub = findSubscription(h);
    if (sub == nullptr) continue;
    while (!sub->mailbox.empty()) {
      Reflection r = std::move(sub->mailbox.front());
      sub->mailbox.pop_front();
      const auto lpIt = lps_.find(sub->lp);
      if (lpIt != lps_.end())
        lpIt->second->reflectAttributeValues(r.className, r.attrs, r.timestamp);
      sub = findSubscription(h);
      if (sub == nullptr) break;
    }
  }
}

}  // namespace cod::core
