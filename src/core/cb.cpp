#include "core/cb.hpp"

#include <algorithm>
#include <stdexcept>

namespace cod::core {

LogicalProcess::~LogicalProcess() {
  if (cb_ != nullptr) cb_->detach(*this);
}

CommunicationBackbone::CommunicationBackbone(
    std::string name, std::unique_ptr<net::Transport> transport, Config cfg)
    : name_(std::move(name)), transport_(std::move(transport)), cfg_(cfg) {
  if (!transport_)
    throw std::invalid_argument("CommunicationBackbone: null transport");
}

CommunicationBackbone::CommunicationBackbone(
    std::string name, std::unique_ptr<net::Transport> transport)
    : CommunicationBackbone(std::move(name), std::move(transport), Config{}) {}

CommunicationBackbone::~CommunicationBackbone() {
  // Detach surviving LPs so their destructors do not dangle into us.
  for (auto& [id, lp] : lps_) {
    lp->cb_ = nullptr;
    lp->id_ = 0;
  }
}

LpId CommunicationBackbone::attach(LogicalProcess& lp) {
  if (lp.cb_ == this) return lp.id_;
  if (lp.cb_ != nullptr)
    throw std::logic_error("LP '" + lp.name() + "' already attached elsewhere");
  lp.id_ = nextLpId_++;
  lp.cb_ = this;
  lps_[lp.id_] = &lp;
  return lp.id_;
}

void CommunicationBackbone::detach(LogicalProcess& lp) {
  if (lp.cb_ != this) return;
  // Resign every registration owned by this LP.
  std::vector<PublicationHandle> pubs;
  for (const auto& [h, e] : publications_)
    if (e.lp == lp.id_) pubs.push_back(h);
  for (const PublicationHandle h : pubs) unpublish(h);
  std::vector<SubscriptionHandle> subs;
  for (const auto& [h, e] : subscriptions_)
    if (e.lp == lp.id_) subs.push_back(h);
  for (const SubscriptionHandle h : subs) unsubscribe(h);
  lps_.erase(lp.id_);
  lp.cb_ = nullptr;
  lp.id_ = 0;
}

PublicationHandle CommunicationBackbone::publishObjectClass(
    LogicalProcess& lp, const std::string& className) {
  if (lp.cb_ != this) attach(lp);
  PublicationEntry e;
  e.id = nextHandle_++;
  e.lp = lp.id_;
  e.className = className;
  auto [it, _] = publications_.emplace(e.id, std::move(e));
  if (cfg_.localFastPath) matchLocal(it->second);
  return it->first;
}

SubscriptionHandle CommunicationBackbone::subscribeObjectClass(
    LogicalProcess& lp, const std::string& className) {
  if (lp.cb_ != this) attach(lp);
  SubscriptionEntry e;
  e.id = nextHandle_++;
  e.lp = lp.id_;
  e.className = className;
  e.nextBroadcast = now_;  // start discovery on the next tick
  auto [it, _] = subscriptions_.emplace(e.id, std::move(e));
  if (cfg_.localFastPath) {
    for (auto& [h, pub] : publications_) {
      if (pub.className == className &&
          std::find(pub.localSubscribers.begin(), pub.localSubscribers.end(),
                    it->first) == pub.localSubscribers.end()) {
        pub.localSubscribers.push_back(it->first);
      }
    }
  }
  return it->first;
}

void CommunicationBackbone::matchLocal(PublicationEntry& pub) {
  for (const auto& [h, sub] : subscriptions_) {
    if (sub.className == pub.className &&
        std::find(pub.localSubscribers.begin(), pub.localSubscribers.end(),
                  h) == pub.localSubscribers.end()) {
      pub.localSubscribers.push_back(h);
    }
  }
}

void CommunicationBackbone::unpublish(PublicationHandle h) {
  const auto it = publications_.find(h);
  if (it == publications_.end()) return;
  if (!it->second.channels.empty()) {
    auto bye = encode(ByeMsg{0, /*fromPublisher=*/true});
    for (const OutChannel& ch : it->second.channels) {
      patchChannelId(bye, ch.remoteChannelId);
      transport_->send(ch.remote, bye);
    }
  }
  publications_.erase(it);
}

void CommunicationBackbone::unsubscribe(SubscriptionHandle h) {
  const auto it = subscriptions_.find(h);
  if (it == subscriptions_.end()) return;
  std::vector<std::uint32_t> channels;
  for (const auto& [cid, ch] : inChannels_)
    if (ch.subscription == h) channels.push_back(cid);
  for (const std::uint32_t cid : channels) removeInChannel(cid, /*sendBye=*/true);
  for (auto& [ph, pub] : publications_) {
    auto& ls = pub.localSubscribers;
    ls.erase(std::remove(ls.begin(), ls.end(), h), ls.end());
  }
  subscriptions_.erase(it);
}

void CommunicationBackbone::removeInChannel(std::uint32_t channelId,
                                            bool sendBye) {
  const auto it = inChannels_.find(channelId);
  if (it == inChannels_.end()) return;
  if (sendBye) {
    // Tell the publisher so its outgoing entry does not linger until the
    // heartbeat timeout.
    const auto bytes =
        encode(ByeMsg{channelId, /*fromPublisher=*/false});
    transport_->send(it->second.remote, bytes);
  }
  inChannels_.erase(it);
}

void CommunicationBackbone::updateAttributeValues(PublicationHandle h,
                                                  const AttributeSet& attrs,
                                                  double timestamp) {
  const auto it = publications_.find(h);
  if (it == publications_.end())
    throw std::invalid_argument("updateAttributeValues: unknown publication");
  PublicationEntry& pub = it->second;
  const std::uint64_t seq = pub.nextSeq++;

  // Local fast path: same-computer subscribers get the update without the
  // network round trip (§2.1 — one or many LPs can run on a computer).
  // Handles whose subscription has been resigned are erased eagerly so the
  // table cannot accumulate dead links (and channelCount stays truthful).
  auto& locals = pub.localSubscribers;
  std::size_t kept = 0;
  for (const SubscriptionHandle sh : locals) {
    const auto sit = subscriptions_.find(sh);
    if (sit == subscriptions_.end()) continue;  // stale: dropped below
    locals[kept++] = sh;
    Reflection r{pub.className, attrs, timestamp, seq};
    enqueueReflection(sit->second, std::move(r));
    ++stats_.updatesLocalFastPath;
  }
  locals.resize(kept);

  if (!pub.channels.empty()) {
    // Serialize the frame once; only the 4-byte channel id differs between
    // channels, so fan-out patches it in place instead of re-encoding the
    // whole payload per channel. updateFrame_ keeps its capacity across
    // calls, making the steady-state hot path allocation-free apart from
    // the AttributeSet encoding itself.
    UpdateMsg msg;
    msg.seq = seq;
    msg.timestamp = timestamp;
    msg.payload = attrs.encode();
    encodeInto(msg, updateFrame_);
    for (OutChannel& ch : pub.channels) {
      patchChannelId(updateFrame_, ch.remoteChannelId);
      transport_->send(ch.remote, updateFrame_);
      ch.lastSentSec = now_;
      ++stats_.updatesSent;
    }
  }
}

std::optional<Reflection> CommunicationBackbone::poll(SubscriptionHandle h) {
  const auto it = subscriptions_.find(h);
  if (it == subscriptions_.end() || it->second.mailbox.empty())
    return std::nullopt;
  Reflection r = std::move(it->second.mailbox.front());
  it->second.mailbox.pop_front();
  return r;
}

const Reflection* CommunicationBackbone::latest(SubscriptionHandle h) const {
  const auto it = subscriptions_.find(h);
  if (it == subscriptions_.end() || !it->second.latest) return nullptr;
  return &*it->second.latest;
}

std::size_t CommunicationBackbone::pending(SubscriptionHandle h) const {
  const auto it = subscriptions_.find(h);
  return it != subscriptions_.end() ? it->second.mailbox.size() : 0;
}

std::size_t CommunicationBackbone::channelCount(PublicationHandle h) const {
  const auto it = publications_.find(h);
  if (it == publications_.end()) return 0;
  return it->second.channels.size() + it->second.localSubscribers.size();
}

std::size_t CommunicationBackbone::sourceCount(SubscriptionHandle h) const {
  const auto it = subscriptions_.find(h);
  if (it == subscriptions_.end()) return 0;
  std::size_t n = 0;
  for (const auto& [cid, ch] : inChannels_)
    if (ch.subscription == h && ch.live) ++n;
  for (const auto& [ph, pub] : publications_) {
    if (std::find(pub.localSubscribers.begin(), pub.localSubscribers.end(),
                  h) != pub.localSubscribers.end())
      ++n;
  }
  return n;
}

void CommunicationBackbone::enqueueReflection(SubscriptionEntry& sub,
                                              Reflection r) {
  sub.latest = r;
  if (sub.mailbox.size() >= cfg_.mailboxLimit) {
    sub.mailbox.pop_front();
    ++stats_.mailboxOverflows;
  }
  sub.mailbox.push_back(std::move(r));
  ++stats_.updatesDelivered;
}

void CommunicationBackbone::tick(double now) {
  now_ = now;
  while (auto d = transport_->receive()) handleDatagram(*d, now);
  runTimers(now);
  if (cfg_.pushDelivery) deliverMailboxes();
  // Step LPs by id snapshot: an LP may attach/detach others in step().
  std::vector<LpId> ids;
  ids.reserve(lps_.size());
  for (const auto& [id, lp] : lps_) ids.push_back(id);
  for (const LpId id : ids) {
    const auto it = lps_.find(id);
    if (it != lps_.end()) it->second->step(now);
  }
}

void CommunicationBackbone::handleDatagram(const net::Datagram& d, double now) {
  const auto msg = decode(d.payload);
  if (!msg) {
    ++stats_.malformedDrops;
    return;
  }
  switch (msg->type) {
    case MsgType::kSubscription:
      handleSubscription(msg->subscription, d.src, now);
      break;
    case MsgType::kAcknowledge:
      handleAcknowledge(msg->acknowledge, d.src, now);
      break;
    case MsgType::kChannelConnection:
      handleChannelConnection(msg->channelConnection, d.src, now);
      break;
    case MsgType::kChannelAck:
      handleChannelAck(msg->channelAck, d.src, now);
      break;
    case MsgType::kUpdate:
      handleUpdate(msg->update, d.src, now);
      break;
    case MsgType::kHeartbeat:
      handleHeartbeat(msg->heartbeat, d.src, now);
      break;
    case MsgType::kBye:
      handleBye(msg->bye, d.src);
      break;
  }
}

void CommunicationBackbone::handleSubscription(const SubscriptionMsg& m,
                                               const net::NodeAddr& src,
                                               double /*now*/) {
  // §2.3: the publisher CB checks whether one of its LPs produces the
  // requested class; if so it acknowledges. It keeps listening while it
  // executes, which is what makes dynamic join possible.
  for (const auto& [h, pub] : publications_) {
    if (pub.className != m.className) continue;
    const AcknowledgeMsg ack{m.subscriptionId, pub.id, pub.className};
    transport_->send(src, encode(ack));
    ++stats_.acknowledgesSent;
  }
}

void CommunicationBackbone::handleAcknowledge(const AcknowledgeMsg& m,
                                              const net::NodeAddr& src,
                                              double now) {
  const auto it = subscriptions_.find(m.subscriptionId);
  if (it == subscriptions_.end()) return;  // stale: subscription resigned
  SubscriptionEntry& sub = it->second;
  if (sub.className != m.className) return;
  // Dedup: one channel per (publisher endpoint, publication entry).
  for (const auto& [cid, ch] : inChannels_) {
    if (ch.subscription == sub.id && ch.remote == src &&
        ch.remotePublicationId == m.publicationId)
      return;
  }
  InChannel ch;
  ch.channelId = nextChannelId_++;
  ch.subscription = sub.id;
  ch.remote = src;
  ch.remotePublicationId = m.publicationId;
  ch.lastConnectSent = now;
  ch.lastActivity = now;
  ch.lastHeartbeatSent = now;
  const ChannelConnectionMsg connect{sub.id, m.publicationId, ch.channelId,
                                     sub.className};
  inChannels_.emplace(ch.channelId, ch);
  sub.everAcknowledged = true;
  transport_->send(src, encode(connect));
}

void CommunicationBackbone::handleChannelConnection(
    const ChannelConnectionMsg& m, const net::NodeAddr& src, double now) {
  const auto it = publications_.find(m.publicationId);
  if (it == publications_.end()) return;
  PublicationEntry& pub = it->second;
  if (pub.className != m.className) return;
  const auto existing =
      std::find_if(pub.channels.begin(), pub.channels.end(),
                   [&](const OutChannel& ch) {
                     return ch.remote == src && ch.remoteChannelId == m.channelId;
                   });
  if (existing == pub.channels.end()) {
    OutChannel ch;
    ch.remoteChannelId = m.channelId;
    ch.remote = src;
    ch.lastSentSec = now;
    ch.lastHeardSec = now;
    pub.channels.push_back(ch);
    ++stats_.channelsEstablishedOut;
  }
  // Idempotent confirm (the paper's second ACKNOWLEDGE).
  const ChannelAckMsg ack{m.channelId, pub.id};
  transport_->send(src, encode(ack));
}

void CommunicationBackbone::handleChannelAck(const ChannelAckMsg& m,
                                             const net::NodeAddr& /*src*/,
                                             double now) {
  const auto it = inChannels_.find(m.channelId);
  if (it == inChannels_.end()) return;
  if (!it->second.live) {
    it->second.live = true;
    ++stats_.channelsEstablishedIn;
  }
  it->second.lastActivity = now;
}

void CommunicationBackbone::handleUpdate(const UpdateMsg& m,
                                         const net::NodeAddr& /*src*/,
                                         double now) {
  const auto it = inChannels_.find(m.channelId);
  if (it == inChannels_.end()) {
    ++stats_.unknownChannelDrops;
    return;
  }
  InChannel& ch = it->second;
  if (!ch.live) {
    // The CHANNEL_ACK was lost but data is flowing: the channel is live.
    ch.live = true;
    ++stats_.channelsEstablishedIn;
  }
  ch.lastActivity = now;
  if (m.seq <= ch.lastSeq) {
    ++stats_.duplicatesDropped;
    return;
  }
  ch.lastSeq = m.seq;
  auto attrs = AttributeSet::decode(m.payload);
  if (!attrs) {
    ++stats_.malformedDrops;
    return;
  }
  const auto sit = subscriptions_.find(ch.subscription);
  if (sit == subscriptions_.end()) return;
  Reflection r{sit->second.className, std::move(*attrs), m.timestamp, m.seq};
  enqueueReflection(sit->second, std::move(r));
}

void CommunicationBackbone::handleHeartbeat(const HeartbeatMsg& m,
                                            const net::NodeAddr& src,
                                            double now) {
  if (m.fromPublisher) {
    // Subscriber side: a publisher keep-alive refreshes the inbound channel.
    const auto it = inChannels_.find(m.channelId);
    if (it != inChannels_.end() && it->second.remote == src)
      it->second.lastActivity = now;
    return;
  }
  // Publisher side: a subscriber keep-alive refreshes the outgoing channel.
  for (auto& [h, pub] : publications_) {
    for (OutChannel& ch : pub.channels) {
      if (ch.remote == src && ch.remoteChannelId == m.channelId)
        ch.lastHeardSec = now;
    }
  }
}

void CommunicationBackbone::handleBye(const ByeMsg& m,
                                      const net::NodeAddr& src) {
  if (m.fromPublisher) {
    // A publisher resigned: drop the inbound channel (no BYE back).
    const auto it = inChannels_.find(m.channelId);
    if (it != inChannels_.end() && it->second.remote == src)
      removeInChannel(m.channelId, /*sendBye=*/false);
    return;
  }
  // A subscriber resigned: drop the matching outgoing channel.
  for (auto& [h, pub] : publications_) {
    auto& chans = pub.channels;
    chans.erase(std::remove_if(chans.begin(), chans.end(),
                               [&](const OutChannel& ch) {
                                 return ch.remote == src &&
                                        ch.remoteChannelId == m.channelId;
                               }),
                chans.end());
  }
}

void CommunicationBackbone::runTimers(double now) {
  // Subscription discovery broadcasts (§2.3).
  for (auto& [h, sub] : subscriptions_) {
    if (now < sub.nextBroadcast) continue;
    const bool hasLive = sourceCount(h) > 0;
    if (hasLive && cfg_.refreshIntervalSec <= 0.0) {
      sub.nextBroadcast = 1e300;  // paper-literal: stop once acknowledged
      continue;
    }
    const SubscriptionMsg msg{sub.id, sub.className};
    const auto bytes = encode(msg);
    transport_->broadcast(address().port, bytes);
    ++stats_.broadcastsSent;
    if (!cfg_.localFastPath) {
      // A socket does not hear its own broadcast; feed it back so two LPs
      // on one computer still connect when the fast path is disabled.
      handleSubscription(msg, address(), now);
    }
    sub.nextBroadcast =
        now + (hasLive ? cfg_.refreshIntervalSec : cfg_.broadcastIntervalSec);
  }

  // Retransmit CHANNEL_CONNECTION for channels still awaiting their ack,
  // and time out dead inbound channels. Keep-alive frames in one pass
  // differ only in channel id, so each loop encodes at most one frame and
  // re-targets it per channel.
  std::vector<std::uint8_t> subHeartbeat;
  std::vector<std::uint32_t> toDrop;
  for (auto& [cid, ch] : inChannels_) {
    if (!ch.live && now - ch.lastConnectSent >= cfg_.connectRetrySec) {
      const auto sit = subscriptions_.find(ch.subscription);
      if (sit != subscriptions_.end()) {
        const ChannelConnectionMsg connect{ch.subscription,
                                           ch.remotePublicationId, ch.channelId,
                                           sit->second.className};
        transport_->send(ch.remote, encode(connect));
        ch.lastConnectSent = now;
      }
    }
    if (ch.live && now - ch.lastHeartbeatSent >= cfg_.heartbeatIntervalSec) {
      // Subscriber keep-alive so the publisher can garbage-collect dead
      // channels (we may never send anything else on this direction).
      if (subHeartbeat.empty())
        subHeartbeat = encode(HeartbeatMsg{0, now, /*fromPublisher=*/false});
      patchChannelId(subHeartbeat, ch.channelId);
      transport_->send(ch.remote, subHeartbeat);
      ch.lastHeartbeatSent = now;
    }
    if (now - ch.lastActivity > cfg_.channelTimeoutSec) toDrop.push_back(cid);
  }
  for (const std::uint32_t cid : toDrop) {
    const auto it = inChannels_.find(cid);
    if (it == inChannels_.end()) continue;
    const SubscriptionHandle sh = it->second.subscription;
    removeInChannel(cid, /*sendBye=*/false);
    ++stats_.channelsTimedOut;
    // Resume fast discovery for the orphaned subscription.
    const auto sit = subscriptions_.find(sh);
    if (sit != subscriptions_.end()) sit->second.nextBroadcast = now;
  }

  // Publisher keep-alives on idle channels + timeout of dead subscribers.
  std::vector<std::uint8_t> pubHeartbeat;
  for (auto& [h, pub] : publications_) {
    auto& chans = pub.channels;
    for (OutChannel& ch : chans) {
      if (now - ch.lastSentSec >= cfg_.heartbeatIntervalSec) {
        if (pubHeartbeat.empty())
          pubHeartbeat = encode(HeartbeatMsg{0, now, /*fromPublisher=*/true});
        patchChannelId(pubHeartbeat, ch.remoteChannelId);
        transport_->send(ch.remote, pubHeartbeat);
        ch.lastSentSec = now;
      }
    }
    const std::size_t before = chans.size();
    chans.erase(std::remove_if(chans.begin(), chans.end(),
                               [&](const OutChannel& ch) {
                                 return now - ch.lastHeardSec >
                                        cfg_.channelTimeoutSec;
                               }),
                chans.end());
    stats_.channelsTimedOut += before - chans.size();
  }
}

void CommunicationBackbone::deliverMailboxes() {
  std::vector<SubscriptionHandle> ids;
  ids.reserve(subscriptions_.size());
  for (const auto& [h, sub] : subscriptions_) ids.push_back(h);
  for (const SubscriptionHandle h : ids) {
    // Re-find each time: reflect callbacks may (un)subscribe re-entrantly.
    auto it = subscriptions_.find(h);
    if (it == subscriptions_.end()) continue;
    while (!it->second.mailbox.empty()) {
      Reflection r = std::move(it->second.mailbox.front());
      it->second.mailbox.pop_front();
      const auto lpIt = lps_.find(it->second.lp);
      if (lpIt != lps_.end())
        lpIt->second->reflectAttributeValues(r.className, r.attrs, r.timestamp);
      it = subscriptions_.find(h);
      if (it == subscriptions_.end()) break;
    }
  }
}

}  // namespace cod::core
