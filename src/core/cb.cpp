#include "core/cb.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cod::core {

LogicalProcess::~LogicalProcess() {
  if (cb_ != nullptr) cb_->detach(*this);
}

CommunicationBackbone::CommunicationBackbone(
    std::string name, std::unique_ptr<net::Transport> transport, Config cfg)
    : name_(std::move(name)), transport_(std::move(transport)), cfg_(cfg) {
  if (!transport_)
    throw std::invalid_argument("CommunicationBackbone: null transport");
}

CommunicationBackbone::CommunicationBackbone(
    std::string name, std::unique_ptr<net::Transport> transport)
    : CommunicationBackbone(std::move(name), std::move(transport), Config{}) {}

CommunicationBackbone::~CommunicationBackbone() {
  // Anything staged since the last tick still leaves (best effort — the
  // transport may already be beyond caring, but a BYE or final update
  // deserves the attempt).
  flushBatches();
  // Detach surviving LPs so their destructors do not dangle into us.
  for (auto& [id, lp] : lps_) {
    lp->cb_ = nullptr;
    lp->id_ = 0;
  }
}

std::uint32_t CommunicationBackbone::batchSlotFor(const net::NodeAddr& dst) {
  const auto it = batchSlots_.find(dst);
  if (it != batchSlots_.end()) return it->second;
  std::uint32_t slot;
  if (!freeBatchSlots_.empty()) {
    slot = freeBatchSlots_.front();
    freeBatchSlots_.pop_front();
    peerBatches_[slot].addr = dst;
  } else {
    slot = static_cast<std::uint32_t>(peerBatches_.size());
    peerBatches_.push_back(PeerBatch{dst, {}, 0, false});
  }
  peerBatches_[slot].active = true;
  batchSlots_.emplace(dst, slot);
  return slot;
}

std::uint32_t CommunicationBackbone::acquireBatchSlot(const net::NodeAddr& dst) {
  const std::uint32_t slot = batchSlotFor(dst);
  ++peerBatches_[slot].channelRefs;
  return slot;
}

void CommunicationBackbone::releaseBatchSlot(std::uint32_t slot) {
  if (slot == kNoBatchSlot) return;
  PeerBatch& b = peerBatches_[slot];
  if (b.channelRefs > 0) --b.channelRefs;
  // Staged frames (a BYE, say) must still leave; if the builder is not
  // empty yet, the flush that empties it completes the reclaim.
  reclaimSlotIfIdle(slot);
}

void CommunicationBackbone::reclaimSlotIfIdle(std::uint32_t slot) {
  PeerBatch& b = peerBatches_[slot];
  if (!b.active || b.channelRefs > 0 || !b.builder.empty()) return;
  batchSlots_.erase(b.addr);
  b.active = false;
  freeBatchSlots_.push_back(slot);
  ++stats_.batch.peerSlotsReclaimed;
}

void CommunicationBackbone::stageSend(const net::NodeAddr& dst,
                                      std::span<const std::uint8_t> frame) {
  stageSend(batchSlotFor(dst), frame);
}

void CommunicationBackbone::stageSend(std::uint32_t slot,
                                      std::span<const std::uint8_t> frame) {
  PeerBatch& b = peerBatches_[slot];
  if (!cfg_.batch.enabled) {
    transport_->send(b.addr, frame);
    return;
  }
  if (!b.builder.empty() &&
      (b.builder.sizeWith(frame.size()) > cfg_.batch.byteBudget ||
       b.builder.frameCount() >= kBatchMaxFrames)) {
    ++stats_.batch.budgetFlushes;
    flushSlot(b);
  }
  if (b.builder.empty() &&
      b.builder.sizeWith(frame.size()) > cfg_.batch.byteBudget) {
    // Even alone this frame busts the budget: bypass the container (the
    // bare frame is wire-compatible; the transport fragments if it must).
    transport_->send(b.addr, frame);
    ++stats_.batch.oversizeSends;
    return;
  }
  b.builder.append(frame);
}

void CommunicationBackbone::flushSlot(PeerBatch& b) {
  if (b.builder.empty()) return;
  if (b.builder.frameCount() == 1) {
    // A one-frame container is pure overhead — and stripping it keeps a
    // lone message byte-identical to the un-batched protocol.
    transport_->send(b.addr, b.builder.soloFrame());
    ++stats_.batch.soloFlushes;
  } else {
    const auto bytes = b.builder.bytes();
    transport_->send(b.addr, bytes);
    ++stats_.batch.datagramsCoalesced;
    stats_.batch.framesCoalesced += b.builder.frameCount();
    stats_.batch.containerBytesSent += bytes.size();
  }
  b.builder.clear();
}

void CommunicationBackbone::flushBatches() {
  for (std::uint32_t i = 0; i < peerBatches_.size(); ++i) {
    PeerBatch& b = peerBatches_[i];
    if (!b.active) continue;
    flushSlot(b);
    // Transient destinations (discovery replies, peers mid-teardown) hold
    // no channel pins: give their slots back once drained.
    if (b.channelRefs == 0) reclaimSlotIfIdle(i);
  }
}

LpId CommunicationBackbone::attach(LogicalProcess& lp) {
  if (lp.cb_ == this) return lp.id_;
  if (lp.cb_ != nullptr)
    throw std::logic_error("LP '" + lp.name() + "' already attached elsewhere");
  lp.id_ = nextLpId_++;
  lp.cb_ = this;
  lps_[lp.id_] = &lp;
  return lp.id_;
}

void CommunicationBackbone::detach(LogicalProcess& lp) {
  if (lp.cb_ != this) return;
  // Resign every registration owned by this LP.
  std::vector<PublicationHandle> pubs;
  for (const auto& [h, e] : publications_)
    if (e.lp == lp.id_) pubs.push_back(h);
  std::sort(pubs.begin(), pubs.end());
  for (const PublicationHandle h : pubs) unpublish(h);
  std::vector<SubscriptionHandle> subs;
  for (const auto& [h, e] : subscriptions_)
    if (e.lp == lp.id_) subs.push_back(h);
  std::sort(subs.begin(), subs.end());
  for (const SubscriptionHandle h : subs) unsubscribe(h);
  lps_.erase(lp.id_);
  lp.cb_ = nullptr;
  lp.id_ = 0;
}

PublicationHandle CommunicationBackbone::publishObjectClass(
    LogicalProcess& lp, const std::string& className, net::QosClass qos) {
  if (lp.cb_ != this) attach(lp);
  PublicationEntry e;
  e.id = nextHandle_++;
  e.lp = lp.id_;
  e.className = className;
  e.qos = qos;
  auto [it, _] = publications_.emplace(e.id, std::move(e));
  if (cfg_.localFastPath) matchLocal(it->second);
  return it->first;
}

SubscriptionHandle CommunicationBackbone::subscribeObjectClass(
    LogicalProcess& lp, const std::string& className, net::QosClass qos) {
  if (lp.cb_ != this) attach(lp);
  SubscriptionEntry e;
  e.id = nextHandle_++;
  e.lp = lp.id_;
  e.className = className;
  e.qos = qos;
  e.nextBroadcast = now_;  // start discovery on the next tick
  auto [it, _] = subscriptions_.emplace(e.id, std::move(e));
  if (cfg_.localFastPath) {
    for (auto& [h, pub] : publications_) {
      if (pub.className == className &&
          std::find(pub.localSubscribers.begin(), pub.localSubscribers.end(),
                    it->first) == pub.localSubscribers.end()) {
        pub.localSubscribers.push_back(it->first);
      }
    }
  }
  return it->first;
}

void CommunicationBackbone::matchLocal(PublicationEntry& pub) {
  std::vector<SubscriptionHandle> matched;
  for (const auto& [h, sub] : subscriptions_) {
    if (sub.className == pub.className &&
        std::find(pub.localSubscribers.begin(), pub.localSubscribers.end(),
                  h) == pub.localSubscribers.end()) {
      matched.push_back(h);
    }
  }
  // Creation order, not hash order: fast-path delivery order is observable.
  std::sort(matched.begin(), matched.end());
  pub.localSubscribers.insert(pub.localSubscribers.end(), matched.begin(),
                              matched.end());
}

void CommunicationBackbone::unpublish(PublicationHandle h) {
  const auto it = publications_.find(h);
  if (it == publications_.end()) return;
  if (!it->second.channels.empty()) {
    auto bye = encode(ByeMsg{0, /*fromPublisher=*/true});
    for (OutChannel& ch : it->second.channels) {
      patchChannelId(bye, ch.remoteChannelId);
      stageToChannel(ch, bye);
    }
    // Resignation must not wait for the next tick (the subscriber would
    // keep trusting a dead channel until its heartbeat timeout). Only the
    // BYE'd peers flush — unrelated peers keep coalescing.
    for (const OutChannel& ch : it->second.channels)
      flushSlot(peerBatches_[ch.batchSlot]);
    for (const OutChannel& ch : it->second.channels)
      releaseBatchSlot(ch.batchSlot);
  }
  publications_.erase(it);
}

void CommunicationBackbone::unsubscribe(SubscriptionHandle h) {
  const auto it = subscriptions_.find(h);
  if (it == subscriptions_.end()) return;
  std::vector<std::uint32_t> channels;
  for (const auto& [cid, ch] : inChannels_)
    if (ch.subscription == h) channels.push_back(cid);
  for (const std::uint32_t cid : channels) removeInChannel(cid, /*sendBye=*/true);
  for (auto& [ph, pub] : publications_) {
    auto& ls = pub.localSubscribers;
    ls.erase(std::remove(ls.begin(), ls.end(), h), ls.end());
  }
  subscriptions_.erase(it);
}

void CommunicationBackbone::removeInChannel(std::uint32_t channelId,
                                            bool sendBye) {
  const auto it = inChannels_.find(channelId);
  if (it == inChannels_.end()) return;
  if (sendBye) {
    // Tell the publisher so its outgoing entry does not linger until the
    // heartbeat timeout; flush that peer (only) immediately for the same
    // reason.
    const auto bytes =
        encode(ByeMsg{channelId, /*fromPublisher=*/false});
    stageToChannel(it->second, bytes);
    flushSlot(peerBatches_[it->second.batchSlot]);
  }
  releaseBatchSlot(it->second.batchSlot);
  inChannels_.erase(it);
}

void CommunicationBackbone::updateAttributeValues(PublicationHandle h,
                                                  const AttributeSet& attrs,
                                                  double timestamp) {
  const auto it = publications_.find(h);
  if (it == publications_.end())
    throw std::invalid_argument("updateAttributeValues: unknown publication");
  PublicationEntry& pub = it->second;
  const std::uint64_t seq = pub.nextSeq++;

  // Local fast path: same-computer subscribers get the update without the
  // network round trip (§2.1 — one or many LPs can run on a computer).
  // Handles whose subscription has been resigned are erased eagerly so the
  // table cannot accumulate dead links (and channelCount stays truthful).
  auto& locals = pub.localSubscribers;
  std::size_t kept = 0;
  for (const SubscriptionHandle sh : locals) {
    const auto sit = subscriptions_.find(sh);
    if (sit == subscriptions_.end()) continue;  // stale: dropped below
    locals[kept++] = sh;
    Reflection r{pub.className, attrs, timestamp, seq};
    enqueueReflection(sit->second, std::move(r));
    ++stats_.updatesLocalFastPath;
  }
  locals.resize(kept);

  if (!pub.channels.empty()) {
    // Serialize the frame once; only the 4-byte channel id differs between
    // channels, so fan-out patches it in place instead of re-encoding the
    // whole payload per channel. The attribute set is encoded straight
    // into the reusable frame (no intermediate payload vector), so the
    // steady-state hot path is allocation-free.
    net::WireWriter w(std::move(updateFrame_));
    const std::size_t blobStart = beginUpdateFrame(w, seq, timestamp);
    attrs.encodeInto(w);
    w.endBlob(blobStart);
    updateFrame_ = w.take();
    bool buffered = false;
    for (OutChannel& ch : pub.channels) {
      if (ch.qos == net::QosClass::kReliableOrdered && !buffered) {
        // One buffered copy serves every reliable channel; the channel id
        // is re-patched at retransmit time.
        if (pub.retx) pub.retx->store(seq, updateFrame_, now_);
        buffered = true;
      }
      if (!ch.qosConfirmed) continue;  // held back until the upgrade lands
      patchChannelId(updateFrame_, ch.remoteChannelId);
      stageToChannel(ch, updateFrame_);
      ch.lastSentSec = now_;
      ++stats_.updatesSent;
      if (ch.qos == net::QosClass::kReliableOrdered) {
        ++stats_.reliable.dataFramesSent;
        ch.maxSentSeq = seq;
      }
    }
    if (cfg_.batch.flushReliableUpdates && pub.retx) {
      // Latency escape hatch: reliable command streams leave now rather
      // than riding the end-of-tick flush.
      for (const OutChannel& ch : pub.channels) {
        if (ch.qos == net::QosClass::kReliableOrdered &&
            ch.batchSlot != kNoBatchSlot)
          flushSlot(peerBatches_[ch.batchSlot]);
      }
    }
  }
}

std::optional<Reflection> CommunicationBackbone::poll(SubscriptionHandle h) {
  const auto it = subscriptions_.find(h);
  if (it == subscriptions_.end() || it->second.mailbox.empty())
    return std::nullopt;
  Reflection r = std::move(it->second.mailbox.front());
  it->second.mailbox.pop_front();
  return r;
}

const Reflection* CommunicationBackbone::latest(SubscriptionHandle h) const {
  const auto it = subscriptions_.find(h);
  if (it == subscriptions_.end() || !it->second.latest) return nullptr;
  return &*it->second.latest;
}

std::size_t CommunicationBackbone::pending(SubscriptionHandle h) const {
  const auto it = subscriptions_.find(h);
  return it != subscriptions_.end() ? it->second.mailbox.size() : 0;
}

std::size_t CommunicationBackbone::channelCount(PublicationHandle h) const {
  const auto it = publications_.find(h);
  if (it == publications_.end()) return 0;
  return it->second.channels.size() + it->second.localSubscribers.size();
}

std::vector<CbChannelHealth> CommunicationBackbone::channelHealth() const {
  std::vector<CbChannelHealth> out;
  // Publisher side in publication-id (creation) order: the tables hash,
  // but telemetry snapshots should diff stably between intervals.
  std::vector<PublicationHandle> pubIds;
  pubIds.reserve(publications_.size());
  for (const auto& [h, e] : publications_) pubIds.push_back(h);
  std::sort(pubIds.begin(), pubIds.end());
  for (const PublicationHandle h : pubIds) {
    const PublicationEntry& pub = publications_.find(h)->second;
    for (const OutChannel& ch : pub.channels) {
      CbChannelHealth hh;
      hh.channelId = ch.remoteChannelId;
      hh.className = pub.className;
      hh.outbound = true;
      hh.qos = ch.qos;
      hh.live = true;  // an OutChannel exists only once connected
      hh.ageSec = now_ - ch.lastHeardSec;
      hh.windowFrames = pub.retx ? pub.retx->size() : 0;
      hh.retransmits = ch.retransmits;
      hh.cumAcked = ch.cumAcked;
      out.push_back(std::move(hh));
    }
  }
  for (const auto& [cid, ch] : inChannels_) {  // channel-id order (std::map)
    CbChannelHealth hh;
    hh.channelId = cid;
    const auto sit = subscriptions_.find(ch.subscription);
    if (sit != subscriptions_.end()) hh.className = sit->second.className;
    hh.outbound = false;
    hh.qos = ch.qos;
    hh.live = ch.live;
    hh.ageSec = now_ - ch.lastActivity;
    hh.windowFrames = ch.rq ? ch.rq->buffered() : 0;
    hh.cumAcked = ch.rq ? (ch.rq->nextExpected() > 0 ? ch.rq->nextExpected() - 1
                                                     : 0)
                        : ch.lastSeq;
    out.push_back(std::move(hh));
  }
  return out;
}

std::size_t CommunicationBackbone::sourceCount(SubscriptionHandle h) const {
  const auto it = subscriptions_.find(h);
  if (it == subscriptions_.end()) return 0;
  std::size_t n = 0;
  for (const auto& [cid, ch] : inChannels_)
    if (ch.subscription == h && ch.live) ++n;
  for (const auto& [ph, pub] : publications_) {
    if (std::find(pub.localSubscribers.begin(), pub.localSubscribers.end(),
                  h) != pub.localSubscribers.end())
      ++n;
  }
  return n;
}

void CommunicationBackbone::enqueueReflection(SubscriptionEntry& sub,
                                              Reflection r) {
  sub.latest = r;
  if (sub.mailbox.size() >= cfg_.mailboxLimit) {
    sub.mailbox.pop_front();
    ++stats_.mailboxOverflows;
  }
  sub.mailbox.push_back(std::move(r));
  ++stats_.updatesDelivered;
}

void CommunicationBackbone::tick(double now) {
  now_ = now;
  while (auto d = transport_->receive()) handleDatagram(*d, now);
  runTimers(now);
  if (cfg_.pushDelivery) deliverMailboxes();
  // Step LPs by id snapshot: an LP may attach/detach others in step().
  std::vector<LpId> ids;
  ids.reserve(lps_.size());
  for (const auto& [id, lp] : lps_) ids.push_back(id);
  for (const LpId id : ids) {
    const auto it = lps_.find(id);
    if (it != lps_.end()) it->second->step(now);
  }
  // The flush point: everything staged this tick — handler replies, timer
  // traffic, LP-step updates — leaves as one datagram per peer.
  flushBatches();
}

void CommunicationBackbone::handleDatagram(const net::Datagram& d, double now) {
  if (!d.payload.empty() &&
      d.payload.front() == static_cast<std::uint8_t>(MsgType::kBatch)) {
    // Container from a batching sender: walk the length-prefixed
    // sub-frames as views (no copies) and dispatch each as if it had
    // arrived alone. Interop is symmetric — bare frames from un-batched
    // senders take the plain path below unchanged.
    //
    // The framing is validated in full BEFORE anything is dispatched: a
    // corrupt container must have no side effects, exactly like decode()
    // rejecting it wholesale (a half-applied datagram would be a state
    // the un-batched protocol can never produce). validateBatchBody is
    // the same contract decode() enforces.
    const auto body = std::span<const std::uint8_t>(d.payload).subspan(1);
    const auto count = validateBatchBody(body);
    if (!count) {
      ++stats_.malformedDrops;
      return;
    }
    ++stats_.batch.datagramsUnpacked;
    net::WireReader r(body);
    r.u16();  // count, validated above
    for (std::uint16_t i = 0; i < *count; ++i) {
      auto msg = decode(*r.blobSpan());
      if (!msg) {
        // Valid framing, undecodable message inside: dropped exactly as
        // the same bytes would be had they arrived bare.
        ++stats_.malformedDrops;
        continue;
      }
      ++stats_.batch.framesUnpacked;
      dispatchMessage(*msg, d.src, now);
    }
    return;
  }
  auto msg = decode(d.payload);
  if (!msg) {
    ++stats_.malformedDrops;
    return;
  }
  dispatchMessage(*msg, d.src, now);
}

void CommunicationBackbone::dispatchMessage(CbMessage& msg,
                                            const net::NodeAddr& src,
                                            double now) {
  switch (msg.type) {
    case MsgType::kSubscription:
      handleSubscription(msg.subscription, src, now);
      break;
    case MsgType::kAcknowledge:
      handleAcknowledge(msg.acknowledge, src, now);
      break;
    case MsgType::kChannelConnection:
      handleChannelConnection(msg.channelConnection, src, now);
      break;
    case MsgType::kChannelAck:
      handleChannelAck(msg.channelAck, src, now);
      break;
    case MsgType::kUpdate:
      handleUpdate(msg.update, src, now);
      break;
    case MsgType::kHeartbeat:
      handleHeartbeat(msg.heartbeat, src, now);
      break;
    case MsgType::kBye:
      handleBye(msg.bye, src);
      break;
    case MsgType::kNack:
      handleNack(msg.nack, src, now);
      break;
    case MsgType::kWindowAck:
      handleWindowAck(msg.windowAck, src, now);
      break;
    case MsgType::kBatch:
      // Containers are unpacked in handleDatagram and never nest; one
      // reaching here means a decoder bug upstream — drop it.
      ++stats_.malformedDrops;
      break;
  }
}

void CommunicationBackbone::handleSubscription(const SubscriptionMsg& m,
                                               const net::NodeAddr& src,
                                               double /*now*/) {
  // §2.3: the publisher CB checks whether one of its LPs produces the
  // requested class; if so it acknowledges. It keeps listening while it
  // executes, which is what makes dynamic join possible. ACKs go out in
  // publication-id (creation) order — the table hashes, the wire must not.
  std::vector<PublicationHandle> matches;
  for (const auto& [h, pub] : publications_)
    if (pub.className == m.className) matches.push_back(h);
  std::sort(matches.begin(), matches.end());
  for (const PublicationHandle h : matches) {
    const AcknowledgeMsg ack{m.subscriptionId, h, m.className};
    stageSend(src, encode(ack));
    ++stats_.acknowledgesSent;
  }
}

void CommunicationBackbone::handleAcknowledge(const AcknowledgeMsg& m,
                                              const net::NodeAddr& src,
                                              double now) {
  const auto it = subscriptions_.find(m.subscriptionId);
  if (it == subscriptions_.end()) return;  // stale: subscription resigned
  SubscriptionEntry& sub = it->second;
  if (sub.className != m.className) return;
  // Dedup: one channel per (publisher endpoint, publication entry).
  for (const auto& [cid, ch] : inChannels_) {
    if (ch.subscription == sub.id && ch.remote == src &&
        ch.remotePublicationId == m.publicationId)
      return;
  }
  InChannel ch;
  ch.channelId = nextChannelId_++;
  ch.subscription = sub.id;
  ch.remote = src;
  ch.remotePublicationId = m.publicationId;
  ch.lastConnectSent = now;
  ch.lastActivity = now;
  ch.lastHeartbeatSent = now;
  ch.qos = sub.qos;
  if (ch.qos == net::QosClass::kReliableOrdered) {
    // The base sequence arrives with the CHANNEL_ACK; frames that beat it
    // are buffered in the queue until then.
    ch.rq = std::make_unique<net::ReliableReceiveQueue>(cfg_.reliable,
                                                        stats_.reliable);
  }
  const ChannelConnectionMsg connect{sub.id, m.publicationId, ch.channelId,
                                     sub.className, sub.qos};
  const std::uint32_t channelId = ch.channelId;
  inChannels_.emplace(channelId, std::move(ch));
  sub.everAcknowledged = true;
  stageSend(src, encode(connect));
}

void CommunicationBackbone::handleChannelConnection(
    const ChannelConnectionMsg& m, const net::NodeAddr& src, double now) {
  const auto it = publications_.find(m.publicationId);
  if (it == publications_.end()) return;
  PublicationEntry& pub = it->second;
  if (pub.className != m.className) return;
  auto existing =
      std::find_if(pub.channels.begin(), pub.channels.end(),
                   [&](const OutChannel& ch) {
                     return ch.remote == src && ch.remoteChannelId == m.channelId;
                   });
  if (existing == pub.channels.end()) {
    OutChannel ch;
    ch.remoteChannelId = m.channelId;
    ch.remote = src;
    ch.lastSentSec = now;
    ch.lastHeardSec = now;
    // Effective QoS: the stronger of the subscriber's request and the
    // publication's floor.
    ch.qos = (m.qos == net::QosClass::kReliableOrdered ||
              pub.qos == net::QosClass::kReliableOrdered)
                 ? net::QosClass::kReliableOrdered
                 : net::QosClass::kBestEffort;
    ch.firstSeq = pub.nextSeq;
    ch.cumAcked = pub.nextSeq - 1;  // owes nothing from before it existed
    ch.lastAckResendSec = now;      // the ack below counts as the first
    ch.qosConfirmed = m.qos == ch.qos;  // false iff upgraded by our floor
    if (ch.qos == net::QosClass::kReliableOrdered && !pub.retx) {
      pub.retx = std::make_unique<net::ReliableSendWindow>(cfg_.reliable,
                                                           stats_.reliable);
    }
    pub.channels.push_back(std::move(ch));
    existing = std::prev(pub.channels.end());
    ++stats_.channelsEstablishedOut;
  }
  // Idempotent confirm (the paper's second ACKNOWLEDGE). Re-ACKs repeat
  // the channel's original QoS and base sequence: a retransmitted
  // CHANNEL_CONNECTION must not shift the base the subscriber will trust.
  const ChannelAckMsg ack{m.channelId, pub.id, existing->qos,
                          existing->firstSeq};
  stageSend(src, encode(ack));
}

void CommunicationBackbone::handleChannelAck(const ChannelAckMsg& m,
                                             const net::NodeAddr& /*src*/,
                                             double now) {
  const auto it = inChannels_.find(m.channelId);
  if (it == inChannels_.end()) return;
  InChannel& ch = it->second;
  if (!ch.live) {
    ch.live = true;
    ++stats_.channelsEstablishedIn;
  }
  ch.lastActivity = now;
  if (m.qos == net::QosClass::kReliableOrdered) {
    if (!ch.rq) {
      // The publication mandates reliability although this subscriber
      // only asked for best effort: upgrade the channel.
      ch.qos = net::QosClass::kReliableOrdered;
      ch.rq = std::make_unique<net::ReliableReceiveQueue>(cfg_.reliable,
                                                          stats_.reliable);
    }
    // Updates may have been delivered newest-wins before this ACK landed
    // (upgrade path); never re-deliver below them.
    std::vector<net::ReliableFrame> ready;
    ch.rq->setBase(std::max(m.firstSeq, ch.lastSeq + 1), ready);
    deliverReliableReady(ch, ready);
  }
}

void CommunicationBackbone::handleUpdate(UpdateMsg& m,
                                         const net::NodeAddr& /*src*/,
                                         double now) {
  const auto it = inChannels_.find(m.channelId);
  if (it == inChannels_.end()) {
    ++stats_.unknownChannelDrops;
    return;
  }
  InChannel& ch = it->second;
  if (!ch.live) {
    // The CHANNEL_ACK was lost but data is flowing: the channel is live.
    ch.live = true;
    ++stats_.channelsEstablishedIn;
  }
  ch.lastActivity = now;
  if (ch.rq) {
    // Reliable path: the queue owns ordering, duplicates and gap healing.
    // Retransmits legitimately arrive with old sequence numbers, so the
    // newest-wins cursor does not apply.
    std::vector<net::ReliableFrame> ready;
    ch.rq->offer(net::ReliableFrame{m.seq, m.timestamp, std::move(m.payload)},
                 ready);
    deliverReliableReady(ch, ready);
    return;
  }
  if (m.seq <= ch.lastSeq) {
    ++stats_.duplicatesDropped;
    return;
  }
  ch.lastSeq = m.seq;
  auto attrs = AttributeSet::decode(m.payload);
  if (!attrs) {
    ++stats_.malformedDrops;
    return;
  }
  const auto sit = subscriptions_.find(ch.subscription);
  if (sit == subscriptions_.end()) return;
  Reflection r{sit->second.className, std::move(*attrs), m.timestamp, m.seq};
  enqueueReflection(sit->second, std::move(r));
}

void CommunicationBackbone::handleHeartbeat(const HeartbeatMsg& m,
                                            const net::NodeAddr& src,
                                            double now) {
  if (m.fromPublisher) {
    // Subscriber side: a publisher keep-alive refreshes the inbound channel.
    const auto it = inChannels_.find(m.channelId);
    if (it != inChannels_.end() && it->second.remote == src)
      it->second.lastActivity = now;
    return;
  }
  // Publisher side: a subscriber keep-alive refreshes the outgoing channel.
  for (auto& [h, pub] : publications_) {
    for (OutChannel& ch : pub.channels) {
      if (ch.remote == src && ch.remoteChannelId == m.channelId)
        ch.lastHeardSec = now;
    }
  }
}

void CommunicationBackbone::handleBye(const ByeMsg& m,
                                      const net::NodeAddr& src) {
  if (m.fromPublisher) {
    // A publisher resigned: drop the inbound channel (no BYE back).
    const auto it = inChannels_.find(m.channelId);
    if (it != inChannels_.end() && it->second.remote == src)
      removeInChannel(m.channelId, /*sendBye=*/false);
    return;
  }
  // A subscriber resigned: drop the matching outgoing channel.
  for (auto& [h, pub] : publications_) {
    auto& chans = pub.channels;
    const std::size_t before = chans.size();
    chans.erase(std::remove_if(chans.begin(), chans.end(),
                               [&](const OutChannel& ch) {
                                 if (ch.remote != src ||
                                     ch.remoteChannelId != m.channelId)
                                   return false;
                                 releaseBatchSlot(ch.batchSlot);
                                 return true;
                               }),
                chans.end());
    if (chans.size() != before) compactSendWindow(pub);
  }
}

std::pair<CommunicationBackbone::PublicationEntry*,
          CommunicationBackbone::OutChannel*>
CommunicationBackbone::findOutChannel(const net::NodeAddr& src,
                                      std::uint32_t remoteChannelId) {
  for (auto& [h, pub] : publications_) {
    for (OutChannel& ch : pub.channels) {
      if (ch.remote == src && ch.remoteChannelId == remoteChannelId)
        return {&pub, &ch};
    }
  }
  return {nullptr, nullptr};
}

void CommunicationBackbone::compactSendWindow(PublicationEntry& pub) {
  if (!pub.retx) return;
  std::uint64_t minAcked = std::numeric_limits<std::uint64_t>::max();
  bool anyReliable = false;
  for (const OutChannel& ch : pub.channels) {
    if (ch.qos != net::QosClass::kReliableOrdered) continue;
    anyReliable = true;
    minAcked = std::min(minAcked, ch.cumAcked);
  }
  if (!anyReliable) {
    pub.retx->clear();
    return;
  }
  pub.retx->pruneThrough(minAcked);
}

void CommunicationBackbone::deliverReliableReady(
    const InChannel& ch, std::vector<net::ReliableFrame>& ready) {
  if (ready.empty()) return;
  const auto sit = subscriptions_.find(ch.subscription);
  if (sit == subscriptions_.end()) return;
  for (net::ReliableFrame& f : ready) {
    auto attrs = AttributeSet::decode(f.payload);
    if (!attrs) {
      ++stats_.malformedDrops;
      continue;
    }
    enqueueReflection(sit->second, Reflection{sit->second.className,
                                              std::move(*attrs), f.timestamp,
                                              f.seq});
  }
}

void CommunicationBackbone::handleNack(const NackMsg& m,
                                       const net::NodeAddr& src, double now) {
  const auto [pub, ch] = findOutChannel(src, m.channelId);
  if (pub == nullptr || ch->qos != net::QosClass::kReliableOrdered ||
      !pub->retx)
    return;
  ++stats_.reliable.nacksReceived;
  // A NACK is the subscriber speaking: refresh liveness so the tail-RTO
  // sweep's stalled-channel guard never pauses a peer that is actively
  // asking for frames (its heartbeats/acks may all be getting lost).
  ch->lastHeardSec = now;
  std::uint64_t skipThrough = 0;
  for (const std::uint64_t seq : m.missingSeqs) {
    if (seq < ch->firstSeq || seq >= pub->nextSeq) continue;  // never owed
    if (std::vector<std::uint8_t>* frame = pub->retx->frame(seq)) {
      patchChannelId(*frame, ch->remoteChannelId);
      stageToChannel(*ch, *frame);
      if (seq > ch->maxSentSeq) {
        // First trip on this channel (withheld while the QoS upgrade was
        // unconfirmed): data, not a re-send.
        ch->maxSentSeq = seq;
        pub->retx->touchSent(seq, now);
        ++stats_.reliable.dataFramesSent;
      } else {
        pub->retx->markSent(seq, now);
        ++ch->retransmits;
      }
      ch->lastSentSec = now;
    } else if (seq <= pub->retx->highestEvicted()) {
      // Evicted by window overflow: the subscriber must skip, or it will
      // NACK this hole forever.
      skipThrough = std::max(skipThrough, pub->retx->highestEvicted());
    }
    // Otherwise the frame was pruned because this subscriber already
    // acked it — a stale NACK that crossed our prune in flight; ignore.
  }
  if (skipThrough > 0) {
    stageToChannel(*ch, encode(WindowAckMsg{ch->remoteChannelId, skipThrough,
                                            /*fromPublisher=*/true}));
  }
}

void CommunicationBackbone::handleWindowAck(const WindowAckMsg& m,
                                            const net::NodeAddr& src,
                                            double now) {
  if (m.fromPublisher) {
    // Subscriber side: the publisher cannot retransmit through
    // cumulativeSeq any more — skip the hole instead of waiting forever.
    const auto it = inChannels_.find(m.channelId);
    if (it == inChannels_.end() || it->second.remote != src ||
        !it->second.rq)
      return;
    InChannel& ch = it->second;
    ch.lastActivity = now;
    std::vector<net::ReliableFrame> ready;
    ch.rq->abandonThrough(m.cumulativeSeq, ready);
    deliverReliableReady(ch, ready);
    return;
  }
  // Publisher side: cumulative delivery progress from the subscriber.
  const auto [pub, ch] = findOutChannel(src, m.channelId);
  if (pub == nullptr || ch->qos != net::QosClass::kReliableOrdered) return;
  ++stats_.reliable.windowAcksReceived;
  ch->windowAckSeen = true;
  const bool wasConfirmed = ch->qosConfirmed;
  ch->qosConfirmed = true;
  ch->cumAcked = std::max(ch->cumAcked, m.cumulativeSeq);
  ch->lastHeardSec = now;
  if (!wasConfirmed && pub->retx) {
    // The QoS upgrade just landed: every frame withheld while the
    // subscriber was QoS-blind leaves NOW, as one burst, instead of
    // dribbling out of the tail-RTO sweep at maxRetransmitPerSweep per
    // timeout. These are first transmissions on this channel — counted
    // as data and excluded from the retransmit tally, or the
    // reliable-layer loss estimate would see a flurry of "re-sends" that
    // were never lost at every publisher-upgraded channel establishment.
    for (std::uint64_t seq = std::max(ch->firstSeq, ch->cumAcked + 1);
         seq < pub->nextSeq; ++seq) {
      std::vector<std::uint8_t>* frame = pub->retx->frame(seq);
      if (frame == nullptr) continue;  // pruned or evicted
      patchChannelId(*frame, ch->remoteChannelId);
      stageToChannel(*ch, *frame);
      pub->retx->touchSent(seq, now);
      ch->maxSentSeq = std::max(ch->maxSentSeq, seq);
      ++stats_.reliable.dataFramesSent;
      ch->lastSentSec = now;
    }
  }
  compactSendWindow(*pub);
}

void CommunicationBackbone::runTimers(double now) {
  // Subscription discovery broadcasts (§2.3). Handles are snapshotted and
  // sorted: the table is a hash map now, and broadcast order should stay
  // creation order on every platform.
  std::vector<SubscriptionHandle> subIds;
  subIds.reserve(subscriptions_.size());
  for (const auto& [h, e] : subscriptions_) subIds.push_back(h);
  std::sort(subIds.begin(), subIds.end());
  for (const SubscriptionHandle h : subIds) {
    SubscriptionEntry& sub = subscriptions_.find(h)->second;
    if (now < sub.nextBroadcast) continue;
    const bool hasLive = sourceCount(h) > 0;
    if (hasLive && cfg_.refreshIntervalSec <= 0.0) {
      sub.nextBroadcast = 1e300;  // paper-literal: stop once acknowledged
      continue;
    }
    const SubscriptionMsg msg{sub.id, sub.className};
    const auto bytes = encode(msg);
    transport_->broadcast(address().port, bytes);
    ++stats_.broadcastsSent;
    if (!cfg_.localFastPath) {
      // A socket does not hear its own broadcast; feed it back so two LPs
      // on one computer still connect when the fast path is disabled.
      handleSubscription(msg, address(), now);
    }
    sub.nextBroadcast =
        now + (hasLive ? cfg_.refreshIntervalSec : cfg_.broadcastIntervalSec);
  }

  // Retransmit CHANNEL_CONNECTION for channels still awaiting their ack,
  // and time out dead inbound channels. Keep-alive frames in one pass
  // differ only in channel id, so each loop encodes at most one frame and
  // re-targets it per channel.
  std::vector<std::uint8_t> subHeartbeat;
  std::vector<std::uint32_t> toDrop;
  for (auto& [cid, ch] : inChannels_) {
    // A reliable channel needs the CHANNEL_ACK itself (it carries the base
    // sequence), so inbound data marking the channel live is not enough to
    // stop the connection retries.
    const bool needsAck = !ch.live || (ch.rq && !ch.rq->baseKnown());
    if (needsAck && now - ch.lastConnectSent >= cfg_.connectRetrySec) {
      const auto sit = subscriptions_.find(ch.subscription);
      if (sit != subscriptions_.end()) {
        const ChannelConnectionMsg connect{ch.subscription,
                                           ch.remotePublicationId, ch.channelId,
                                           sit->second.className,
                                           sit->second.qos};
        stageSend(ch.remote, encode(connect));
        ch.lastConnectSent = now;
      }
    }
    if (ch.rq) {
      // Receiver half of the reliable layer: NACK persistent gaps and
      // acknowledge cumulative progress. Both coalesce with whatever else
      // this tick owes the publisher (heartbeats included).
      const auto missing = ch.rq->collectNacks(now);
      if (!missing.empty())
        stageToChannel(ch, encode(NackMsg{ch.channelId, missing}));
      if (const auto cum = ch.rq->collectAck(now)) {
        stageToChannel(ch, encode(WindowAckMsg{ch.channelId, *cum,
                                               /*fromPublisher=*/false}));
        // The ack doubles as a keep-alive on this direction.
        ch.lastHeartbeatSent = now;
      }
    }
    if (ch.live && now - ch.lastHeartbeatSent >= cfg_.heartbeatIntervalSec) {
      // Subscriber keep-alive so the publisher can garbage-collect dead
      // channels (we may never send anything else on this direction).
      if (subHeartbeat.empty())
        subHeartbeat = encode(HeartbeatMsg{0, now, /*fromPublisher=*/false});
      patchChannelId(subHeartbeat, ch.channelId);
      stageToChannel(ch, subHeartbeat);
      ch.lastHeartbeatSent = now;
      if (cfg_.batch.enabled && ch.rq) {
        // Piggyback the cumulative ack on the keep-alive that is leaving
        // anyway: a quiet reliable link keeps the publisher's window
        // pruned without ever paying a separate control datagram.
        if (const auto cum = ch.rq->piggybackAck(now))
          stageToChannel(ch, encode(WindowAckMsg{ch.channelId, *cum,
                                                 /*fromPublisher=*/false}));
      }
    }
    if (now - ch.lastActivity > cfg_.channelTimeoutSec) toDrop.push_back(cid);
  }
  for (const std::uint32_t cid : toDrop) {
    const auto it = inChannels_.find(cid);
    if (it == inChannels_.end()) continue;
    const SubscriptionHandle sh = it->second.subscription;
    removeInChannel(cid, /*sendBye=*/false);
    ++stats_.channelsTimedOut;
    // Resume fast discovery for the orphaned subscription.
    const auto sit = subscriptions_.find(sh);
    if (sit != subscriptions_.end()) sit->second.nextBroadcast = now;
  }

  // Publisher keep-alives on idle channels, the reliable tail-retransmit
  // sweep, and timeout of dead subscribers (sorted snapshot again: the
  // publication table hashes, but wire order should not).
  std::vector<std::uint8_t> pubHeartbeat;
  std::vector<PublicationHandle> pubIds;
  pubIds.reserve(publications_.size());
  for (const auto& [h, e] : publications_) pubIds.push_back(h);
  std::sort(pubIds.begin(), pubIds.end());
  for (const PublicationHandle h : pubIds) {
    PublicationEntry& pub = publications_.find(h)->second;
    auto& chans = pub.channels;
    for (OutChannel& ch : chans) {
      if (ch.qos == net::QosClass::kReliableOrdered && !ch.windowAckSeen &&
          now - ch.lastAckResendSec >= cfg_.connectRetrySec) {
        // Until the first WINDOW_ACK arrives the subscriber may not know
        // this channel is reliable (its CHANNEL_ACK can be lost while
        // data keeps it live): repeat the ack with the original base.
        stageToChannel(ch, encode(ChannelAckMsg{ch.remoteChannelId, pub.id,
                                                ch.qos, ch.firstSeq}));
        ch.lastAckResendSec = now;
      }
      if (now - ch.lastSentSec >= cfg_.heartbeatIntervalSec) {
        if (pubHeartbeat.empty())
          pubHeartbeat = encode(HeartbeatMsg{0, now, /*fromPublisher=*/true});
        patchChannelId(pubHeartbeat, ch.remoteChannelId);
        stageToChannel(ch, pubHeartbeat);
        ch.lastSentSec = now;
      }
    }
    if (pub.retx && !pub.retx->empty()) {
      // Unprompted retransmit of frames unacked beyond the timeout: loss
      // of the last frame of a burst leaves no gap for the receiver to
      // NACK, so the sender must cover the tail.
      //
      // The sweep skips *stalled* channels — no heartbeat or ack from the
      // subscriber for two keep-alive intervals. Such a peer is either
      // dead (its channel is riding out channelTimeoutSec) or cut off,
      // and resending every unacked frame to it each RTO would both waste
      // datagrams and poison the reliable-layer loss estimate with
      // "retransmits" that were never actually lost — the multi-process
      // UDP soak's ±5pp loss-tracking check caught exactly this during a
      // kill/restart window. Nothing is given up: the frames stay in the
      // window, and the moment the peer speaks again lastHeardSec
      // refreshes and the sweep resumes where it left off.
      const double stalledAfterSec = 2.0 * cfg_.heartbeatIntervalSec;
      const auto stalled = [&](const OutChannel& ch) {
        return now - ch.lastHeardSec > stalledAfterSec;
      };
      std::uint64_t minUnacked = std::numeric_limits<std::uint64_t>::max();
      for (const OutChannel& ch : chans) {
        // Unconfirmed channels receive nothing yet, so sweeping for them
        // would only churn the frame timers.
        if (ch.qos == net::QosClass::kReliableOrdered && ch.qosConfirmed &&
            !stalled(ch))
          minUnacked = std::min(minUnacked, ch.cumAcked + 1);
      }
      for (const std::uint64_t seq :
           pub.retx->takeTailRetransmits(minUnacked, now)) {
        std::vector<std::uint8_t>* frame = pub.retx->frame(seq);
        if (frame == nullptr) continue;
        for (OutChannel& ch : chans) {
          if (ch.qos != net::QosClass::kReliableOrdered ||
              !ch.qosConfirmed || ch.cumAcked >= seq || seq < ch.firstSeq ||
              stalled(ch))
            continue;
          patchChannelId(*frame, ch.remoteChannelId);
          stageToChannel(ch, *frame);
          ch.lastSentSec = now;
          if (seq > ch.maxSentSeq) {
            // First transmission on this channel: frames window-buffered
            // while the QoS upgrade was unconfirmed leave through this
            // sweep, and counting them as retransmits would inflate the
            // loss estimate with re-sends that were never lost.
            ch.maxSentSeq = seq;
            ++stats_.reliable.dataFramesSent;
          } else {
            ++ch.retransmits;
            // Per channel staged, matching dataFramesSent's unit (the
            // NACK path counts the same way through markSent).
            ++stats_.reliable.retransmitsSent;
          }
        }
      }
    }
    const std::size_t before = chans.size();
    chans.erase(std::remove_if(chans.begin(), chans.end(),
                               [&](const OutChannel& ch) {
                                 if (now - ch.lastHeardSec <=
                                     cfg_.channelTimeoutSec)
                                   return false;
                                 releaseBatchSlot(ch.batchSlot);
                                 return true;
                               }),
                chans.end());
    if (chans.size() != before) {
      stats_.channelsTimedOut += before - chans.size();
      compactSendWindow(pub);
    }
  }
}

void CommunicationBackbone::deliverMailboxes() {
  std::vector<SubscriptionHandle> ids;
  ids.reserve(subscriptions_.size());
  for (const auto& [h, sub] : subscriptions_) ids.push_back(h);
  // Subscription-id order == creation order: push delivery across LPs
  // must not depend on hash-table layout.
  std::sort(ids.begin(), ids.end());
  for (const SubscriptionHandle h : ids) {
    // Re-find each time: reflect callbacks may (un)subscribe re-entrantly.
    auto it = subscriptions_.find(h);
    if (it == subscriptions_.end()) continue;
    while (!it->second.mailbox.empty()) {
      Reflection r = std::move(it->second.mailbox.front());
      it->second.mailbox.pop_front();
      const auto lpIt = lps_.find(it->second.lp);
      if (lpIt != lps_.end())
        lpIt->second->reflectAttributeValues(r.className, r.attrs, r.timestamp);
      it = subscriptions_.find(h);
      if (it == subscriptions_.end()) break;
    }
  }
}

}  // namespace cod::core
