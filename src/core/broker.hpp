// Client/server (broker) topology baseline.
//
// §1 of the paper contrasts two network-parallel topologies: server/client
// and fully distributed, and chooses the latter for COD. This module
// implements the road not taken — a central broker that owns the
// subscription table and relays every update — so the trade-off can be
// measured (bench E5): the broker adds a second network hop to every update
// and concentrates all traffic on one host.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/value.hpp"
#include "net/transport.hpp"

namespace cod::core {

/// Broker wire protocol (distinct from the CB protocol on purpose: the two
/// stacks share nothing but the transport).
enum class BrokerMsgType : std::uint8_t {
  kSubscribe = 1,   // client → server: interest in a class
  kPublishDecl = 2, // client → server: will send updates for a class
  kUpdate = 3,      // client → server: attribute update
  kForward = 4,     // server → client: relayed update
};

/// The central message broker. Runs on one host; every client update makes
/// two hops (client → broker → subscribers).
class BrokerServer {
 public:
  explicit BrokerServer(std::unique_ptr<net::Transport> transport);

  void tick(double now);

  std::uint64_t updatesRelayed() const { return updatesRelayed_; }
  std::size_t subscriberCount(const std::string& className) const;

 private:
  std::unique_ptr<net::Transport> transport_;
  std::map<std::string, std::vector<net::NodeAddr>> subscribers_;
  std::uint64_t updatesRelayed_ = 0;
};

/// A broker client with a publish/subscribe API mirroring the CB's.
class BrokerClient {
 public:
  BrokerClient(std::unique_ptr<net::Transport> transport,
               net::NodeAddr serverAddr);

  /// A delivered update (kept distinct from core::Reflection to emphasise
  /// that the stacks are independent).
  struct Delivery {
    std::string className;
    AttributeSet attrs;
    double timestamp = 0.0;
  };

  void subscribe(const std::string& className);
  void declarePublish(const std::string& className);
  void update(const std::string& className, const AttributeSet& attrs,
              double timestamp);

  /// Drain inbound forwards into the mailbox.
  void tick(double now);

  std::optional<Delivery> poll();
  std::size_t pending() const { return mailbox_.size(); }

 private:
  std::unique_ptr<net::Transport> transport_;
  net::NodeAddr server_;
  std::deque<Delivery> mailbox_;
};

}  // namespace cod::core
