// CbShard: the moved routing core of the CommunicationBackbone. The
// protocol behaviour here is the pre-shard CB's, verbatim — only the
// table scope changed (one class family per shard) and full-table scans
// became class-index or facade-index lookups. Anything order-sensitive
// on the wire is driven by the facade in globally sorted handle order;
// a shard never iterates its own hash tables to send.
#include "core/shard.hpp"

#include <algorithm>
#include <limits>

#include "core/cb.hpp"

namespace cod::core {

CbShard::CbShard(CommunicationBackbone& cb, std::uint32_t index)
    : cb_(cb), index_(index) {}

void CbShard::eraseFromIndex(
    std::unordered_map<std::string, std::vector<std::uint32_t>>& index,
    const std::string& className, std::uint32_t handle) {
  const auto it = index.find(className);
  if (it == index.end()) return;
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), handle), v.end());
  if (v.empty()) index.erase(it);
}

void CbShard::addPublication(PublicationEntry e) {
  const std::string className = e.className;
  auto [it, _] = publications_.emplace(e.id, std::move(e));
  pubsByClass_[className].push_back(it->first);
  if (cb_.cfg_.localFastPath) matchLocal(it->second);
}

void CbShard::addSubscription(SubscriptionEntry e) {
  const std::string className = e.className;
  auto [it, _] = subscriptions_.emplace(e.id, std::move(e));
  subsByClass_[className].push_back(it->first);
  if (cb_.cfg_.localFastPath) {
    // Same class → same shard, so the local-fast-path reverse links never
    // cross a shard boundary.
    const auto ci = pubsByClass_.find(className);
    if (ci != pubsByClass_.end()) {
      for (const PublicationHandle ph : ci->second) {
        PublicationEntry& pub = publications_.find(ph)->second;
        if (std::find(pub.localSubscribers.begin(), pub.localSubscribers.end(),
                      it->first) == pub.localSubscribers.end()) {
          pub.localSubscribers.push_back(it->first);
        }
      }
    }
  }
}

void CbShard::matchLocal(PublicationEntry& pub) {
  const auto ci = subsByClass_.find(pub.className);
  if (ci == subsByClass_.end()) return;
  // The class index is in creation order (handles ascend), so fast-path
  // delivery order stays creation order — it is observable.
  for (const SubscriptionHandle h : ci->second) {
    if (std::find(pub.localSubscribers.begin(), pub.localSubscribers.end(),
                  h) == pub.localSubscribers.end()) {
      pub.localSubscribers.push_back(h);
    }
  }
}

void CbShard::unpublish(PublicationHandle h) {
  const auto it = publications_.find(h);
  if (it == publications_.end()) return;
  if (!it->second.channels.empty()) {
    auto bye = encode(ByeMsg{0, /*fromPublisher=*/true});
    for (OutChannel& ch : it->second.channels) {
      patchChannelId(bye, ch.remoteChannelId);
      cb_.stageToChannel(ch, bye);
    }
    // Resignation must not wait for the next tick (the subscriber would
    // keep trusting a dead channel until its heartbeat timeout). Only the
    // BYE'd peers flush — unrelated peers keep coalescing.
    for (const OutChannel& ch : it->second.channels)
      cb_.flushSlot(cb_.peerBatches_[ch.batchSlot]);
    for (const OutChannel& ch : it->second.channels) {
      cb_.releaseBatchSlot(ch.batchSlot);
      cb_.unregisterOutChannel(ch.remote, ch.remoteChannelId, h);
    }
  }
  eraseFromIndex(pubsByClass_, it->second.className, h);
  publications_.erase(it);
}

void CbShard::unsubscribe(SubscriptionHandle h) {
  const auto it = subscriptions_.find(h);
  if (it == subscriptions_.end()) return;
  std::vector<std::uint32_t> channels;
  for (const auto& [cid, ch] : inChannels_)
    if (ch.subscription == h) channels.push_back(cid);
  for (const std::uint32_t cid : channels)
    removeInChannel(cid, /*sendBye=*/true);
  // Only same-class publications can hold a fast-path link to this
  // subscription, and those are all on this shard.
  const auto ci = pubsByClass_.find(it->second.className);
  if (ci != pubsByClass_.end()) {
    for (const PublicationHandle ph : ci->second) {
      auto& ls = publications_.find(ph)->second.localSubscribers;
      ls.erase(std::remove(ls.begin(), ls.end(), h), ls.end());
    }
  }
  eraseFromIndex(subsByClass_, it->second.className, h);
  subscriptions_.erase(it);
}

PublicationEntry* CbShard::publication(PublicationHandle h) {
  const auto it = publications_.find(h);
  return it == publications_.end() ? nullptr : &it->second;
}

const PublicationEntry* CbShard::publication(PublicationHandle h) const {
  const auto it = publications_.find(h);
  return it == publications_.end() ? nullptr : &it->second;
}

SubscriptionEntry* CbShard::subscription(SubscriptionHandle h) {
  const auto it = subscriptions_.find(h);
  return it == subscriptions_.end() ? nullptr : &it->second;
}

const SubscriptionEntry* CbShard::subscription(SubscriptionHandle h) const {
  const auto it = subscriptions_.find(h);
  return it == subscriptions_.end() ? nullptr : &it->second;
}

const InChannel* CbShard::inChannel(std::uint32_t channelId) const {
  const auto it = inChannels_.find(channelId);
  return it == inChannels_.end() ? nullptr : &it->second;
}

std::size_t CbShard::sourceCount(SubscriptionHandle h) const {
  const auto it = subscriptions_.find(h);
  if (it == subscriptions_.end()) return 0;
  std::size_t n = 0;
  for (const auto& [cid, ch] : inChannels_)
    if (ch.subscription == h && ch.live) ++n;
  const auto ci = pubsByClass_.find(it->second.className);
  if (ci != pubsByClass_.end()) {
    for (const PublicationHandle ph : ci->second) {
      const auto& ls = publications_.find(ph)->second.localSubscribers;
      if (std::find(ls.begin(), ls.end(), h) != ls.end()) ++n;
    }
  }
  return n;
}

CbShardLoad CbShard::load() const {
  CbShardLoad l;
  l.publications = publications_.size();
  l.subscriptions = subscriptions_.size();
  l.inChannels = inChannels_.size();
  for (const auto& [h, pub] : publications_)
    l.outChannels += pub.channels.size();
  return l;
}

void CbShard::enqueueReflection(SubscriptionEntry& sub, Reflection r) {
  sub.latest = r;
  if (sub.mailbox.size() >= cb_.cfg_.mailboxLimit) {
    sub.mailbox.pop_front();
    ++cb_.stats_.mailboxOverflows;
  }
  sub.mailbox.push_back(std::move(r));
  ++cb_.stats_.updatesDelivered;
}

void CbShard::handleSubscription(const SubscriptionMsg& m,
                                 const net::NodeAddr& src, double /*now*/) {
  // §2.3: the publisher CB checks whether one of its LPs produces the
  // requested class; if so it acknowledges. It keeps listening while it
  // executes, which is what makes dynamic join possible. ACKs go out in
  // publication-id (creation) order — the class index keeps that order,
  // so no sort is needed here.
  const auto ci = pubsByClass_.find(m.className);
  if (ci == pubsByClass_.end()) return;
  for (const PublicationHandle h : ci->second) {
    const AcknowledgeMsg ack{m.subscriptionId, h, m.className};
    cb_.stageSend(src, encode(ack));
    ++cb_.stats_.acknowledgesSent;
  }
}

void CbShard::handleAcknowledge(const AcknowledgeMsg& m,
                                const net::NodeAddr& src, double now) {
  const auto it = subscriptions_.find(m.subscriptionId);
  if (it == subscriptions_.end()) return;  // stale: subscription resigned
  SubscriptionEntry& sub = it->second;
  if (sub.className != m.className) return;
  // Dedup: one channel per (publisher endpoint, publication entry).
  for (const auto& [cid, ch] : inChannels_) {
    if (ch.subscription == sub.id && ch.remote == src &&
        ch.remotePublicationId == m.publicationId)
      return;
  }
  InChannel ch;
  ch.channelId = cb_.nextChannelId_++;
  ch.subscription = sub.id;
  ch.remote = src;
  ch.remotePublicationId = m.publicationId;
  ch.lastConnectSent = now;
  ch.lastActivity = now;
  ch.lastHeartbeatSent = now;
  ch.qos = sub.qos;
  if (ch.qos == net::QosClass::kReliableOrdered) {
    // The base sequence arrives with the CHANNEL_ACK; frames that beat it
    // are buffered in the queue until then.
    ch.rq = std::make_unique<net::ReliableReceiveQueue>(cb_.cfg_.reliable,
                                                        cb_.stats_.reliable);
  }
  const ChannelConnectionMsg connect{sub.id, m.publicationId, ch.channelId,
                                     sub.className, sub.qos};
  const std::uint32_t channelId = ch.channelId;
  inChannels_.emplace(channelId, std::move(ch));
  cb_.registerInChannel(channelId, index_);
  sub.everAcknowledged = true;
  cb_.stageSend(src, encode(connect));
}

void CbShard::handleChannelConnection(const ChannelConnectionMsg& m,
                                      const net::NodeAddr& src, double now) {
  const auto it = publications_.find(m.publicationId);
  if (it == publications_.end()) return;
  PublicationEntry& pub = it->second;
  if (pub.className != m.className) return;
  auto existing = std::find_if(
      pub.channels.begin(), pub.channels.end(), [&](const OutChannel& ch) {
        return ch.remote == src && ch.remoteChannelId == m.channelId;
      });
  if (existing == pub.channels.end()) {
    OutChannel ch;
    ch.remoteChannelId = m.channelId;
    ch.remote = src;
    ch.lastSentSec = now;
    ch.lastHeardSec = now;
    // Effective QoS: the stronger of the subscriber's request and the
    // publication's floor.
    ch.qos = (m.qos == net::QosClass::kReliableOrdered ||
              pub.qos == net::QosClass::kReliableOrdered)
                 ? net::QosClass::kReliableOrdered
                 : net::QosClass::kBestEffort;
    ch.firstSeq = pub.nextSeq;
    ch.cumAcked = pub.nextSeq - 1;  // owes nothing from before it existed
    ch.lastAckResendSec = now;      // the ack below counts as the first
    ch.qosConfirmed = m.qos == ch.qos;  // false iff upgraded by our floor
    if (ch.qos == net::QosClass::kReliableOrdered && !pub.retx) {
      pub.retx = std::make_unique<net::ReliableSendWindow>(
          cb_.cfg_.reliable, cb_.stats_.reliable);
      pub.retx->attachRetransmitDelayHistogram(
          &cb_.hists_.retransmitDelaySec);
      if (pub.overflowPolicy)
        pub.retx->setOverflowPolicy(*pub.overflowPolicy);
    }
    pub.channels.push_back(std::move(ch));
    existing = std::prev(pub.channels.end());
    cb_.registerOutChannel(src, m.channelId, index_, pub.id);
    ++cb_.stats_.channelsEstablishedOut;
  }
  // Idempotent confirm (the paper's second ACKNOWLEDGE). Re-ACKs repeat
  // the channel's original QoS and base sequence: a retransmitted
  // CHANNEL_CONNECTION must not shift the base the subscriber will trust.
  const ChannelAckMsg ack{m.channelId, pub.id, existing->qos,
                          existing->firstSeq};
  cb_.stageSend(src, encode(ack));
}

void CbShard::handleChannelAck(const ChannelAckMsg& m,
                               const net::NodeAddr& /*src*/, double now) {
  const auto it = inChannels_.find(m.channelId);
  if (it == inChannels_.end()) return;
  InChannel& ch = it->second;
  if (!ch.live) {
    ch.live = true;
    ++cb_.stats_.channelsEstablishedIn;
  }
  ch.lastActivity = now;
  if (m.qos == net::QosClass::kReliableOrdered) {
    if (!ch.rq) {
      // The publication mandates reliability although this subscriber
      // only asked for best effort: upgrade the channel.
      ch.qos = net::QosClass::kReliableOrdered;
      ch.rq = std::make_unique<net::ReliableReceiveQueue>(cb_.cfg_.reliable,
                                                          cb_.stats_.reliable);
    }
    // Updates may have been delivered newest-wins before this ACK landed
    // (upgrade path); never re-deliver below them.
    std::vector<net::ReliableFrame> ready;
    ch.rq->setBase(std::max(m.firstSeq, ch.lastSeq + 1), ready);
    deliverReliableReady(ch, ready);
  }
}

void CbShard::handleUpdate(UpdateMsg& m, const net::NodeAddr& /*src*/,
                           double now) {
  const auto it = inChannels_.find(m.channelId);
  if (it == inChannels_.end()) {
    ++cb_.stats_.unknownChannelDrops;
    return;
  }
  InChannel& ch = it->second;
  if (!ch.live) {
    // The CHANNEL_ACK was lost but data is flowing: the channel is live.
    ch.live = true;
    ++cb_.stats_.channelsEstablishedIn;
  }
  ch.lastActivity = now;
  if (ch.rq) {
    // Reliable path: the queue owns ordering, duplicates and gap healing.
    // Retransmits legitimately arrive with old sequence numbers, so the
    // newest-wins cursor does not apply.
    std::vector<net::ReliableFrame> ready;
    ch.rq->offer(net::ReliableFrame{m.seq, m.timestamp, std::move(m.payload),
                                    m.traced, m.pubWallSec, now},
                 ready);
    deliverReliableReady(ch, ready);
    return;
  }
  if (m.seq <= ch.lastSeq) {
    ++cb_.stats_.duplicatesDropped;
    return;
  }
  ch.lastSeq = m.seq;
  auto attrs = AttributeSet::decode(m.payload);
  if (!attrs) {
    ++cb_.stats_.malformedDrops;
    return;
  }
  const auto sit = subscriptions_.find(ch.subscription);
  if (sit == subscriptions_.end()) return;
  Reflection r{sit->second.className, std::move(*attrs), m.timestamp, m.seq};
  enqueueReflection(sit->second, std::move(r));
}

void CbShard::handlePublisherHeartbeat(const HeartbeatMsg& m,
                                       const net::NodeAddr& src, double now) {
  // Subscriber side: a publisher keep-alive refreshes the inbound channel.
  const auto it = inChannels_.find(m.channelId);
  if (it != inChannels_.end() && it->second.remote == src)
    it->second.lastActivity = now;
}

void CbShard::handleSubscriberHeartbeat(PublicationHandle pub,
                                        const HeartbeatMsg& m,
                                        const net::NodeAddr& src, double now) {
  // Publisher side: a subscriber keep-alive refreshes the outgoing channel.
  const auto it = publications_.find(pub);
  if (it == publications_.end()) return;
  for (OutChannel& ch : it->second.channels) {
    if (ch.remote == src && ch.remoteChannelId == m.channelId)
      ch.lastHeardSec = now;
  }
}

void CbShard::handlePublisherBye(const ByeMsg& m, const net::NodeAddr& src) {
  // A publisher resigned: drop the inbound channel (no BYE back).
  const auto it = inChannels_.find(m.channelId);
  if (it != inChannels_.end() && it->second.remote == src)
    removeInChannel(m.channelId, /*sendBye=*/false);
}

void CbShard::handleSubscriberBye(PublicationHandle pub, const ByeMsg& m,
                                  const net::NodeAddr& src) {
  // A subscriber resigned: drop the matching outgoing channel.
  const auto it = publications_.find(pub);
  if (it == publications_.end()) return;
  auto& chans = it->second.channels;
  const std::size_t before = chans.size();
  chans.erase(std::remove_if(chans.begin(), chans.end(),
                             [&](const OutChannel& ch) {
                               if (ch.remote != src ||
                                   ch.remoteChannelId != m.channelId)
                                 return false;
                               cb_.releaseBatchSlot(ch.batchSlot);
                               cb_.unregisterOutChannel(
                                   ch.remote, ch.remoteChannelId, pub);
                               return true;
                             }),
              chans.end());
  if (chans.size() != before) compactSendWindow(it->second);
}

OutChannel* CbShard::findOutChannelIn(PublicationEntry& pub,
                                      const net::NodeAddr& src,
                                      std::uint32_t remoteChannelId) {
  for (OutChannel& ch : pub.channels) {
    if (ch.remote == src && ch.remoteChannelId == remoteChannelId) return &ch;
  }
  return nullptr;
}

void CbShard::compactSendWindow(PublicationEntry& pub) {
  if (!pub.retx) return;
  std::uint64_t minAcked = std::numeric_limits<std::uint64_t>::max();
  bool anyReliable = false;
  for (const OutChannel& ch : pub.channels) {
    if (ch.qos != net::QosClass::kReliableOrdered) continue;
    anyReliable = true;
    // A split channel is served from its private window, so its lag no
    // longer pins the shared one — that is the whole point of the split.
    if (ch.splitRetx) continue;
    minAcked = std::min(minAcked, ch.cumAcked);
  }
  if (!anyReliable) {
    pub.retx->clear();
    return;
  }
  pub.retx->pruneThrough(minAcked);
}

net::ReliableSendWindow* CbShard::windowFor(PublicationEntry& pub,
                                            OutChannel& ch) {
  return ch.splitRetx ? ch.splitRetx.get() : pub.retx.get();
}

void CbShard::splitChannelWindow(PublicationEntry& pub, OutChannel& ch,
                                 double now) {
  ch.splitRetx = std::make_unique<net::ReliableSendWindow>(
      cb_.cfg_.reliable, cb_.stats_.reliable);
  ch.splitRetx->setOverflowPolicy(pub.retx->overflowPolicy());
  // Seed with everything the laggard might still need. Seeding stamps
  // lastSentSec = now, which defers each frame's next tail-RTO by one
  // timeout — cheaper than carrying per-frame timers across, and the
  // NACK path is unaffected.
  for (const std::uint64_t seq : pub.retx->storedSeqsAbove(ch.cumAcked)) {
    if (std::vector<std::uint8_t>* f = pub.retx->frame(seq))
      ch.splitRetx->store(seq, *f, now);
  }
  ch.lagSinceSec = -1.0;
  ch.caughtUpSinceSec = -1.0;
  ++cb_.stats_.reliable.windowSplits;
  compactSendWindow(pub);  // the laggard no longer pins the shared window
}

void CbShard::mergeChannelWindow(OutChannel& ch) {
  ch.splitRetx.reset();
  ch.lagSinceSec = -1.0;
  ch.caughtUpSinceSec = -1.0;
  ++cb_.stats_.reliable.windowMerges;
}

void CbShard::runWindowSplitTimer(PublicationEntry& pub, double now) {
  const net::ReliableConfig& rc = cb_.cfg_.reliable;
  if (!rc.perChannelWindowSplit || !pub.retx) return;
  for (OutChannel& ch : pub.channels) {
    if (ch.qos != net::QosClass::kReliableOrdered || !ch.qosConfirmed)
      continue;
    if (!ch.splitRetx) {
      const bool lagging =
          !pub.retx->empty() &&
          pub.retx->highestStored() > ch.cumAcked + rc.splitLagFrames;
      if (!lagging) {
        ch.lagSinceSec = -1.0;
      } else if (ch.lagSinceSec < 0.0) {
        ch.lagSinceSec = now;
      } else if (now - ch.lagSinceSec >= rc.splitSustainSec) {
        splitChannelWindow(pub, ch, now);
      }
      continue;
    }
    // Merge precondition: the channel has recovered (lag under half the
    // split threshold, hysteresis) AND the shared window still retains
    // everything it might NACK — seq > cumAcked implies seq >= the
    // shared window's lowest stored frame.
    const std::uint64_t sharedLowest =
        pub.retx->empty() ? pub.nextSeq : pub.retx->lowestStored();
    const bool caughtUp =
        (pub.retx->empty() ||
         pub.retx->highestStored() <= ch.cumAcked + rc.splitLagFrames / 2) &&
        ch.cumAcked + 1 >= sharedLowest;
    if (!caughtUp) {
      ch.caughtUpSinceSec = -1.0;
    } else if (ch.caughtUpSinceSec < 0.0) {
      ch.caughtUpSinceSec = now;
    } else if (now - ch.caughtUpSinceSec >= rc.mergeSustainSec) {
      mergeChannelWindow(ch);
    }
  }
}

void CbShard::advertiseDegradeSkips(PublicationEntry& pub) {
  for (OutChannel& ch : pub.channels) {
    if (ch.qos != net::QosClass::kReliableOrdered || !ch.qosConfirmed)
      continue;
    net::ReliableSendWindow* w = windowFor(pub, ch);
    if (w == nullptr || w->overflowPolicy() !=
                            net::OverflowPolicy::kDegradeLatestValue)
      continue;
    const std::uint64_t evicted = w->highestEvicted();
    if (evicted <= ch.cumAcked || evicted <= ch.lastSkipAdvertised) continue;
    cb_.stageToChannel(ch, encode(WindowAckMsg{ch.remoteChannelId, evicted,
                                               /*fromPublisher=*/true}));
    ch.lastSkipAdvertised = evicted;
    ++cb_.stats_.reliable.degradeSkipsSent;
  }
}

void CbShard::deliverReliableReady(InChannel& ch,
                                   std::vector<net::ReliableFrame>& ready) {
  if (ready.empty()) return;
  const auto sit = subscriptions_.find(ch.subscription);
  if (sit == subscriptions_.end()) return;
  const bool tracing = cb_.tracing();
  for (net::ReliableFrame& f : ready) {
    if (f.traced) {
      // Latency sampling: remember the newest released sample so the next
      // WINDOW_ACK can echo it back to the publisher. One slot suffices —
      // a newer sample simply supersedes an un-echoed older one, which
      // thins the sample stream but never biases it.
      ch.pendingEcho = PendingTraceEcho{f.seq, f.tagSec, cb_.now_};
      if (tracing) {
        cb_.traceEvent(telemetry::TraceEventKind::kSubscriberSpan,
                       f.arrivalSec, cb_.now_ - f.arrivalSec, f.seq,
                       ch.channelId);
      }
    }
    // Record the releases worth replaying: frames that waited in the
    // window (a repair or reorder just resolved) and sampled frames. The
    // steady state — released the tick it arrived — would otherwise be
    // the ring's biggest noise source and evict exactly those.
    if (tracing && (f.traced || cb_.now_ > f.arrivalSec))
      cb_.traceEvent(telemetry::TraceEventKind::kInOrderRelease, cb_.now_, 0.0,
                     f.seq, ch.channelId);
    auto attrs = AttributeSet::decode(f.payload);
    if (!attrs) {
      ++cb_.stats_.malformedDrops;
      continue;
    }
    enqueueReflection(sit->second,
                      Reflection{sit->second.className, std::move(*attrs),
                                 f.timestamp, f.seq});
  }
}

void CbShard::attachTraceEcho(InChannel& ch, WindowAckMsg& ack, double now) {
  if (!ch.pendingEcho) return;
  // Hold time is measured entirely on the subscriber clock, so the
  // publisher can subtract it from the round trip without clock sync.
  ack.echoed = true;
  ack.echoSeq = ch.pendingEcho->seq;
  ack.echoTagSec = ch.pendingEcho->tagSec;
  ack.echoHoldSec = now - ch.pendingEcho->releaseSec;
  ch.pendingEcho.reset();
}

void CbShard::attachDupReport(const InChannel& ch, WindowAckMsg& ack) {
  // Cumulative, not interval: a report lost on the wire is healed by the
  // next one. Zero duplicates appends no dup block, so a loss-free
  // channel's acks stay byte-identical to the pre-dup-report wire.
  const std::uint64_t dups = ch.rq->duplicatesDropped();
  if (dups == 0) return;
  ack.dupReported = true;
  ack.dupCount = dups;
}

void CbShard::handleNack(PublicationHandle pub, const NackMsg& m,
                         const net::NodeAddr& src, double now) {
  const auto it = publications_.find(pub);
  if (it == publications_.end()) return;
  PublicationEntry& p = it->second;
  OutChannel* ch = findOutChannelIn(p, src, m.channelId);
  if (ch == nullptr || ch->qos != net::QosClass::kReliableOrdered || !p.retx)
    return;
  ++cb_.stats_.reliable.nacksReceived;
  if (cb_.tracing())
    cb_.traceEvent(telemetry::TraceEventKind::kNackReceived, now, 0.0,
                   m.missingSeqs.size(), ch->remoteChannelId);
  // A NACK is the subscriber speaking: refresh liveness so the tail-RTO
  // sweep's stalled-channel guard never pauses a peer that is actively
  // asking for frames (its heartbeats/acks may all be getting lost).
  ch->lastHeardSec = now;
  // A split channel is served from its private window (same shape, its
  // own eviction horizon).
  net::ReliableSendWindow* w = windowFor(p, *ch);
  std::uint64_t skipThrough = 0;
  for (const std::uint64_t seq : m.missingSeqs) {
    if (seq < ch->firstSeq || seq >= p.nextSeq) continue;  // never owed
    if (std::vector<std::uint8_t>* frame = w->frame(seq)) {
      patchChannelId(*frame, ch->remoteChannelId);
      cb_.stageToChannel(*ch, *frame);
      if (seq > ch->maxSentSeq) {
        // First trip on this channel (withheld while the QoS upgrade was
        // unconfirmed): data, not a re-send.
        ch->maxSentSeq = seq;
        w->touchSent(seq, now);
        ++cb_.stats_.reliable.dataFramesSent;
      } else {
        w->markSent(seq, now);
        ++ch->retransmits;
        if (cb_.tracing())
          cb_.traceEvent(telemetry::TraceEventKind::kRetransmit, now, 0.0, seq,
                         ch->remoteChannelId);
      }
      ch->lastSentSec = now;
    } else if (seq <= w->highestEvicted()) {
      // Evicted by window overflow: the subscriber must skip, or it will
      // NACK this hole forever.
      skipThrough = std::max(skipThrough, w->highestEvicted());
    }
    // Otherwise the frame was pruned because this subscriber already
    // acked it — a stale NACK that crossed our prune in flight; ignore.
  }
  if (skipThrough > 0) {
    cb_.stageToChannel(*ch,
                       encode(WindowAckMsg{ch->remoteChannelId, skipThrough,
                                           /*fromPublisher=*/true}));
  }
}

void CbShard::handlePublisherWindowAck(const WindowAckMsg& m,
                                       const net::NodeAddr& src, double now) {
  // Subscriber side: the publisher cannot retransmit through
  // cumulativeSeq any more — skip the hole instead of waiting forever.
  const auto it = inChannels_.find(m.channelId);
  if (it == inChannels_.end() || it->second.remote != src || !it->second.rq)
    return;
  InChannel& ch = it->second;
  ch.lastActivity = now;
  std::vector<net::ReliableFrame> ready;
  ch.rq->abandonThrough(m.cumulativeSeq, ready);
  deliverReliableReady(ch, ready);
}

void CbShard::handleSubscriberWindowAck(PublicationHandle pub,
                                        const WindowAckMsg& m,
                                        const net::NodeAddr& src, double now) {
  // Publisher side: cumulative delivery progress from the subscriber.
  const auto it = publications_.find(pub);
  if (it == publications_.end()) return;
  PublicationEntry& p = it->second;
  OutChannel* ch = findOutChannelIn(p, src, m.channelId);
  if (ch == nullptr || ch->qos != net::QosClass::kReliableOrdered) return;
  ++cb_.stats_.reliable.windowAcksReceived;
  if (m.echoed) {
    // The subscriber echoed our trace tag: round trip minus its measured
    // hold is the publish→in-order-release latency, entirely on this
    // node's clock (only the ack's return transit inflates it, which is
    // documented as a conservative overestimate).
    const double latency = std::max(0.0, now - m.echoTagSec - m.echoHoldSec);
    cb_.hists_.deliveryLatencySec.record(latency);
    if (cb_.tracing())
      cb_.traceEvent(telemetry::TraceEventKind::kPublisherSpan, m.echoTagSec,
                     latency, m.echoSeq, m.channelId);
  }
  ch->windowAckSeen = true;
  const bool wasConfirmed = ch->qosConfirmed;
  ch->qosConfirmed = true;
  ch->cumAcked = std::max(ch->cumAcked, m.cumulativeSeq);
  ch->lastHeardSec = now;
  if (m.dupReported && m.dupCount > ch->dupReported) {
    // The subscriber's cumulative duplicate count advanced: those
    // retransmits were delivered twice, not lost. The loss estimate
    // subtracts them (reliableLossEstimatePct's third argument), which
    // removes the tail-RTO bias on low-rate streams — a tail re-send
    // racing a slow ack is a duplicate, not path loss.
    cb_.stats_.reliable.peerDuplicatesReported += m.dupCount - ch->dupReported;
    ch->dupReported = m.dupCount;
  }
  if (!wasConfirmed && p.retx) {
    // The QoS upgrade just landed: every frame withheld while the
    // subscriber was QoS-blind leaves NOW, as one burst, instead of
    // dribbling out of the tail-RTO sweep at maxRetransmitPerSweep per
    // timeout. These are first transmissions on this channel — counted
    // as data and excluded from the retransmit tally, or the
    // reliable-layer loss estimate would see a flurry of "re-sends" that
    // were never lost at every publisher-upgraded channel establishment.
    for (std::uint64_t seq = std::max(ch->firstSeq, ch->cumAcked + 1);
         seq < p.nextSeq; ++seq) {
      std::vector<std::uint8_t>* frame = p.retx->frame(seq);
      if (frame == nullptr) continue;  // pruned or evicted
      patchChannelId(*frame, ch->remoteChannelId);
      cb_.stageToChannel(*ch, *frame);
      p.retx->touchSent(seq, now);
      ch->maxSentSeq = std::max(ch->maxSentSeq, seq);
      ++cb_.stats_.reliable.dataFramesSent;
      ch->lastSentSec = now;
    }
  }
  if (ch->splitRetx) ch->splitRetx->pruneThrough(ch->cumAcked);
  compactSendWindow(p);
}

void CbShard::removeInChannel(std::uint32_t channelId, bool sendBye) {
  const auto it = inChannels_.find(channelId);
  if (it == inChannels_.end()) return;
  if (sendBye) {
    // Tell the publisher so its outgoing entry does not linger until the
    // heartbeat timeout; flush that peer (only) immediately for the same
    // reason.
    const auto bytes = encode(ByeMsg{channelId, /*fromPublisher=*/false});
    cb_.stageToChannel(it->second, bytes);
    cb_.flushSlot(cb_.peerBatches_[it->second.batchSlot]);
  }
  cb_.releaseBatchSlot(it->second.batchSlot);
  cb_.unregisterInChannel(channelId);
  inChannels_.erase(it);
}

bool CbShard::update(PublicationEntry& pub, const AttributeSet& attrs,
                     double timestamp) {
  const std::uint64_t seq = pub.nextSeq;
  const bool network = !pub.channels.empty();
  bool sampled = false;
  if (network) {
    // Serialize the frame once; only the 4-byte channel id differs between
    // channels, so fan-out patches it in place instead of re-encoding the
    // whole payload per channel. The attribute set is encoded straight
    // into the reusable frame (no intermediate payload vector), so the
    // steady-state hot path is allocation-free. Encoding precedes the
    // fast path because the kBlockPublisher gate needs the frame's size.
    net::WireWriter w(std::move(cb_.updateFrame_));
    const std::size_t blobStart = beginUpdateFrame(w, seq, timestamp);
    attrs.encodeInto(w);
    w.endBlob(blobStart);
    // Latency sampling: every traceSampleEvery-th update on a reliable
    // publication carries the publish-time tag. It is appended BEFORE the
    // frame is stored in the retransmit window, so a retransmitted sample
    // measures retransmit-inclusive latency. Sampling off (the default)
    // appends nothing — the frame is byte-identical.
    sampled = cb_.cfg_.traceSampleEvery > 0 && pub.retx != nullptr &&
              seq % cb_.cfg_.traceSampleEvery == 0;
    if (sampled) appendUpdateTraceTag(w, cb_.now_);
    cb_.updateFrame_ = w.take();
    if (pub.retx &&
        pub.retx->overflowPolicy() == net::OverflowPolicy::kBlockPublisher &&
        pub.retx->wouldOverflow(cb_.updateFrame_.size())) {
      // Refused before the sequence number is consumed or anything is
      // delivered (local subscribers included — they must not run ahead
      // of a stream the publisher will retry). Split laggards do not
      // block: the gate watches only the shared window.
      ++cb_.stats_.reliable.updatesBlocked;
      return false;
    }
  }
  pub.nextSeq = seq + 1;

  // Local fast path: same-computer subscribers get the update without the
  // network round trip (§2.1 — one or many LPs can run on a computer).
  // Handles whose subscription has been resigned are erased eagerly so the
  // table cannot accumulate dead links (and channelCount stays truthful).
  auto& locals = pub.localSubscribers;
  std::size_t kept = 0;
  for (const SubscriptionHandle sh : locals) {
    const auto sit = subscriptions_.find(sh);
    if (sit == subscriptions_.end()) continue;  // stale: dropped below
    locals[kept++] = sh;
    Reflection r{pub.className, attrs, timestamp, seq};
    enqueueReflection(sit->second, std::move(r));
    ++cb_.stats_.updatesLocalFastPath;
  }
  locals.resize(kept);

  if (network) {
    if (sampled && cb_.tracing())
      cb_.traceEvent(telemetry::TraceEventKind::kUpdatePublished, cb_.now_,
                     0.0, seq);
    bool buffered = false;
    // The frame enters the staging arena once for the whole fan-out (on
    // the first channel that actually sends); each channel then stages a
    // 16-byte descriptor whose flush-time spans swap in that channel's id
    // — no per-channel patch-and-copy of the frame bytes.
    std::uint32_t fanOff = 0;
    bool fanStaged = false;
    for (OutChannel& ch : pub.channels) {
      if (ch.qos == net::QosClass::kReliableOrdered) {
        if (!buffered) {
          // One buffered copy serves every shared-window reliable channel;
          // the channel id is re-patched at retransmit time.
          if (pub.retx) pub.retx->store(seq, cb_.updateFrame_, cb_.now_);
          buffered = true;
        }
        // A split laggard buffers its own copy: its private window ages
        // and evicts on the laggard's pace alone.
        if (ch.splitRetx)
          ch.splitRetx->store(seq, cb_.updateFrame_, cb_.now_);
      }
      if (!ch.qosConfirmed) continue;  // held back until the upgrade lands
      if (ch.qos == net::QosClass::kBestEffort && ch.sendFactor < 1.0 &&
          !pub.thinExempt) {
        // Backpressure thinning (newest-wins channels only): accumulate
        // the skip fraction and drop evenly. The skipped update is simply
        // superseded — exactly the QoS contract of a best-effort channel.
        ch.thinDebt += 1.0 - ch.sendFactor;
        if (ch.thinDebt >= 1.0) {
          ch.thinDebt -= 1.0;
          ++cb_.stats_.updatesThinned;
          continue;
        }
      }
      if (!fanStaged) {
        fanOff = cb_.arenaAppend(cb_.updateFrame_);
        fanStaged = true;
      }
      cb_.stagePatchedToChannel(
          ch, fanOff, static_cast<std::uint32_t>(cb_.updateFrame_.size()));
      ch.lastSentSec = cb_.now_;
      ++cb_.stats_.updatesSent;
      if (ch.qos == net::QosClass::kReliableOrdered) {
        ++cb_.stats_.reliable.dataFramesSent;
        ch.maxSentSeq = seq;
      }
    }
    if (pub.retx) advertiseDegradeSkips(pub);
    if (cb_.cfg_.batch.flushReliableUpdates && pub.retx) {
      // Latency escape hatch: reliable command streams leave now rather
      // than riding the end-of-tick flush.
      for (const OutChannel& ch : pub.channels) {
        if (ch.qos == net::QosClass::kReliableOrdered &&
            ch.batchSlot != kNoBatchSlot)
          cb_.flushSlot(cb_.peerBatches_[ch.batchSlot]);
      }
    }
  }
  return true;
}

void CbShard::setPeerSendFactor(const net::NodeAddr& peer, double factor) {
  const double f = std::clamp(factor, 0.0, 1.0);
  for (auto& [h, pub] : publications_) {
    for (OutChannel& ch : pub.channels) {
      if (!(ch.remote == peer)) continue;
      ch.sendFactor = f;
      if (f >= 1.0) ch.thinDebt = 0.0;
    }
  }
}

void CbShard::subscriptionTimer(SubscriptionHandle h, double now) {
  SubscriptionEntry& sub = subscriptions_.find(h)->second;
  if (now < sub.nextBroadcast) return;
  const bool hasLive = sourceCount(h) > 0;
  if (hasLive && cb_.cfg_.refreshIntervalSec <= 0.0) {
    sub.nextBroadcast = 1e300;  // paper-literal: stop once acknowledged
    return;
  }
  const SubscriptionMsg msg{sub.id, sub.className};
  const auto bytes = encode(msg);
  cb_.transport_->broadcast(cb_.address().port, bytes);
  ++cb_.stats_.broadcastsSent;
  if (!cb_.cfg_.localFastPath) {
    // A socket does not hear its own broadcast; feed it back so two LPs
    // on one computer still connect when the fast path is disabled. The
    // class lives on this shard by construction, so no re-route.
    handleSubscription(msg, cb_.address(), now);
  }
  sub.nextBroadcast = now + (hasLive ? cb_.cfg_.refreshIntervalSec
                                     : cb_.cfg_.broadcastIntervalSec);
}

bool CbShard::inChannelTimer(std::uint32_t channelId, double now,
                             std::vector<std::uint8_t>& subHeartbeat) {
  const auto cit = inChannels_.find(channelId);
  if (cit == inChannels_.end()) return false;
  InChannel& ch = cit->second;
  // A reliable channel needs the CHANNEL_ACK itself (it carries the base
  // sequence), so inbound data marking the channel live is not enough to
  // stop the connection retries.
  const bool needsAck = !ch.live || (ch.rq && !ch.rq->baseKnown());
  if (needsAck && now - ch.lastConnectSent >= cb_.cfg_.connectRetrySec) {
    const auto sit = subscriptions_.find(ch.subscription);
    if (sit != subscriptions_.end()) {
      const ChannelConnectionMsg connect{ch.subscription,
                                         ch.remotePublicationId, ch.channelId,
                                         sit->second.className,
                                         sit->second.qos};
      cb_.stageSend(ch.remote, encode(connect));
      ch.lastConnectSent = now;
    }
  }
  if (ch.rq) {
    // Receiver half of the reliable layer: NACK persistent gaps and
    // acknowledge cumulative progress. Both coalesce with whatever else
    // this tick owes the publisher (heartbeats included).
    const auto missing = ch.rq->collectNacks(now);
    if (!missing.empty()) {
      cb_.stageToChannel(ch, encode(NackMsg{ch.channelId, missing}));
      if (cb_.tracing())
        cb_.traceEvent(telemetry::TraceEventKind::kNackSent, now, 0.0,
                       missing.size(), ch.channelId);
    }
    if (const auto cum = ch.rq->collectAck(now)) {
      WindowAckMsg ack{ch.channelId, *cum, /*fromPublisher=*/false};
      attachTraceEcho(ch, ack, now);
      attachDupReport(ch, ack);
      cb_.stageToChannel(ch, encode(ack));
      // The ack doubles as a keep-alive on this direction.
      ch.lastHeartbeatSent = now;
    }
  }
  if (ch.live && now - ch.lastHeartbeatSent >= cb_.cfg_.heartbeatIntervalSec) {
    // Subscriber keep-alive so the publisher can garbage-collect dead
    // channels (we may never send anything else on this direction).
    if (subHeartbeat.empty())
      subHeartbeat = encode(HeartbeatMsg{0, now, /*fromPublisher=*/false});
    patchChannelId(subHeartbeat, ch.channelId);
    cb_.stageToChannel(ch, subHeartbeat);
    ch.lastHeartbeatSent = now;
    if (cb_.cfg_.batch.enabled && ch.rq) {
      // Piggyback the cumulative ack on the keep-alive that is leaving
      // anyway: a quiet reliable link keeps the publisher's window
      // pruned without ever paying a separate control datagram.
      if (const auto cum = ch.rq->piggybackAck(now)) {
        WindowAckMsg ack{ch.channelId, *cum, /*fromPublisher=*/false};
        attachTraceEcho(ch, ack, now);
        attachDupReport(ch, ack);
        cb_.stageToChannel(ch, encode(ack));
      }
    }
  }
  return now - ch.lastActivity > cb_.cfg_.channelTimeoutSec;
}

void CbShard::dropTimedOutInChannel(std::uint32_t channelId, double now) {
  const auto it = inChannels_.find(channelId);
  if (it == inChannels_.end()) return;
  const SubscriptionHandle sh = it->second.subscription;
  removeInChannel(channelId, /*sendBye=*/false);
  ++cb_.stats_.channelsTimedOut;
  // Resume fast discovery for the orphaned subscription.
  const auto sit = subscriptions_.find(sh);
  if (sit != subscriptions_.end()) sit->second.nextBroadcast = now;
}

void CbShard::publicationTimer(PublicationHandle h, double now,
                               std::vector<std::uint8_t>& pubHeartbeat) {
  PublicationEntry& pub = publications_.find(h)->second;
  auto& chans = pub.channels;
  for (OutChannel& ch : chans) {
    if (ch.qos == net::QosClass::kReliableOrdered && !ch.windowAckSeen &&
        now - ch.lastAckResendSec >= cb_.cfg_.connectRetrySec) {
      // Until the first WINDOW_ACK arrives the subscriber may not know
      // this channel is reliable (its CHANNEL_ACK can be lost while
      // data keeps it live): repeat the ack with the original base.
      cb_.stageToChannel(ch, encode(ChannelAckMsg{ch.remoteChannelId, pub.id,
                                                  ch.qos, ch.firstSeq}));
      ch.lastAckResendSec = now;
    }
    if (now - ch.lastSentSec >= cb_.cfg_.heartbeatIntervalSec) {
      if (pubHeartbeat.empty())
        pubHeartbeat = encode(HeartbeatMsg{0, now, /*fromPublisher=*/true});
      patchChannelId(pubHeartbeat, ch.remoteChannelId);
      cb_.stageToChannel(ch, pubHeartbeat);
      ch.lastSentSec = now;
    }
  }
  // Split/merge decisions before the sweeps, so a channel split this
  // tick is already excluded from the shared sweep below.
  runWindowSplitTimer(pub, now);
  const double stalledAfterSec = 2.0 * cb_.cfg_.heartbeatIntervalSec;
  const auto stalled = [&](const OutChannel& ch) {
    return now - ch.lastHeardSec > stalledAfterSec;
  };
  if (pub.retx && !pub.retx->empty()) {
    // Unprompted retransmit of frames unacked beyond the timeout: loss
    // of the last frame of a burst leaves no gap for the receiver to
    // NACK, so the sender must cover the tail.
    //
    // The sweep skips *stalled* channels — no heartbeat or ack from the
    // subscriber for two keep-alive intervals. Such a peer is either
    // dead (its channel is riding out channelTimeoutSec) or cut off,
    // and resending every unacked frame to it each RTO would both waste
    // datagrams and poison the reliable-layer loss estimate with
    // "retransmits" that were never actually lost — the multi-process
    // UDP soak's ±5pp loss-tracking check caught exactly this during a
    // kill/restart window. Nothing is given up: the frames stay in the
    // window, and the moment the peer speaks again lastHeardSec
    // refreshes and the sweep resumes where it left off.
    std::uint64_t minUnacked = std::numeric_limits<std::uint64_t>::max();
    for (const OutChannel& ch : chans) {
      // Unconfirmed channels receive nothing yet, so sweeping for them
      // would only churn the frame timers. Split channels sweep their
      // own window below.
      if (ch.qos == net::QosClass::kReliableOrdered && ch.qosConfirmed &&
          !ch.splitRetx && !stalled(ch))
        minUnacked = std::min(minUnacked, ch.cumAcked + 1);
    }
    for (const std::uint64_t seq :
         pub.retx->takeTailRetransmits(minUnacked, now)) {
      std::vector<std::uint8_t>* frame = pub.retx->frame(seq);
      if (frame == nullptr) continue;
      for (OutChannel& ch : chans) {
        if (ch.qos != net::QosClass::kReliableOrdered || !ch.qosConfirmed ||
            ch.splitRetx || ch.cumAcked >= seq || seq < ch.firstSeq ||
            stalled(ch))
          continue;
        patchChannelId(*frame, ch.remoteChannelId);
        cb_.stageToChannel(ch, *frame);
        ch.lastSentSec = now;
        if (seq > ch.maxSentSeq) {
          // First transmission on this channel: frames window-buffered
          // while the QoS upgrade was unconfirmed leave through this
          // sweep, and counting them as retransmits would inflate the
          // loss estimate with re-sends that were never lost.
          ch.maxSentSeq = seq;
          ++cb_.stats_.reliable.dataFramesSent;
        } else {
          ++ch.retransmits;
          // Per channel staged, matching dataFramesSent's unit (the
          // NACK path counts the same way through markSent).
          ++cb_.stats_.reliable.retransmitsSent;
          if (cb_.tracing())
            cb_.traceEvent(telemetry::TraceEventKind::kRetransmit, now, 0.0,
                           seq, ch.remoteChannelId);
        }
      }
    }
  }
  // Tail sweep of each split channel's private window — same contract,
  // one channel per window, the laggard's own cumulative ack as floor.
  for (OutChannel& ch : chans) {
    if (!ch.splitRetx || ch.splitRetx->empty() || stalled(ch)) continue;
    for (const std::uint64_t seq :
         ch.splitRetx->takeTailRetransmits(ch.cumAcked + 1, now)) {
      std::vector<std::uint8_t>* frame = ch.splitRetx->frame(seq);
      if (frame == nullptr || ch.cumAcked >= seq || seq < ch.firstSeq)
        continue;
      patchChannelId(*frame, ch.remoteChannelId);
      cb_.stageToChannel(ch, *frame);
      ch.lastSentSec = now;
      if (seq > ch.maxSentSeq) {
        ch.maxSentSeq = seq;
        ++cb_.stats_.reliable.dataFramesSent;
      } else {
        ++ch.retransmits;
        ++cb_.stats_.reliable.retransmitsSent;
        if (cb_.tracing())
          cb_.traceEvent(telemetry::TraceEventKind::kRetransmit, now, 0.0,
                         seq, ch.remoteChannelId);
      }
    }
  }
  const std::size_t before = chans.size();
  chans.erase(std::remove_if(chans.begin(), chans.end(),
                             [&](const OutChannel& ch) {
                               if (now - ch.lastHeardSec <=
                                   cb_.cfg_.channelTimeoutSec)
                                 return false;
                               cb_.releaseBatchSlot(ch.batchSlot);
                               cb_.unregisterOutChannel(
                                   ch.remote, ch.remoteChannelId, pub.id);
                               return true;
                             }),
              chans.end());
  if (chans.size() != before) {
    cb_.stats_.channelsTimedOut += before - chans.size();
    compactSendWindow(pub);
  }
}

}  // namespace cod::core
