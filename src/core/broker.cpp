#include "core/broker.hpp"

#include <algorithm>

namespace cod::core {

namespace {

std::vector<std::uint8_t> encodeControl(BrokerMsgType t,
                                        const std::string& className) {
  net::WireWriter w;
  w.u8(static_cast<std::uint8_t>(t));
  w.str(className);
  return w.take();
}

std::vector<std::uint8_t> encodeUpdate(BrokerMsgType t,
                                       const std::string& className,
                                       double timestamp,
                                       std::span<const std::uint8_t> payload) {
  net::WireWriter w;
  w.u8(static_cast<std::uint8_t>(t));
  w.str(className);
  w.f64(timestamp);
  w.blob(payload);
  return w.take();
}

}  // namespace

BrokerServer::BrokerServer(std::unique_ptr<net::Transport> transport)
    : transport_(std::move(transport)) {}

void BrokerServer::tick(double /*now*/) {
  while (auto d = transport_->receive()) {
    net::WireReader r(d->payload);
    const auto type = r.u8();
    auto className = r.str();
    if (!type || !className) continue;
    switch (static_cast<BrokerMsgType>(*type)) {
      case BrokerMsgType::kSubscribe: {
        auto& subs = subscribers_[*className];
        if (std::find(subs.begin(), subs.end(), d->src) == subs.end())
          subs.push_back(d->src);
        break;
      }
      case BrokerMsgType::kPublishDecl:
        // The broker routes by class; publisher identity is not needed.
        break;
      case BrokerMsgType::kUpdate: {
        const auto ts = r.f64();
        const auto payload = r.blob();
        if (!ts || !payload) break;
        const auto it = subscribers_.find(*className);
        if (it == subscribers_.end()) break;
        const auto fwd = encodeUpdate(BrokerMsgType::kForward, *className, *ts,
                                      *payload);
        for (const net::NodeAddr& sub : it->second) {
          if (sub == d->src) continue;  // no self-echo
          transport_->send(sub, fwd);
          ++updatesRelayed_;
        }
        break;
      }
      case BrokerMsgType::kForward:
        break;  // clients never send forwards
    }
  }
}

std::size_t BrokerServer::subscriberCount(const std::string& className) const {
  const auto it = subscribers_.find(className);
  return it != subscribers_.end() ? it->second.size() : 0;
}

BrokerClient::BrokerClient(std::unique_ptr<net::Transport> transport,
                           net::NodeAddr serverAddr)
    : transport_(std::move(transport)), server_(serverAddr) {}

void BrokerClient::subscribe(const std::string& className) {
  transport_->send(server_, encodeControl(BrokerMsgType::kSubscribe, className));
}

void BrokerClient::declarePublish(const std::string& className) {
  transport_->send(server_,
                   encodeControl(BrokerMsgType::kPublishDecl, className));
}

void BrokerClient::update(const std::string& className,
                          const AttributeSet& attrs, double timestamp) {
  transport_->send(server_, encodeUpdate(BrokerMsgType::kUpdate, className,
                                         timestamp, attrs.encode()));
}

void BrokerClient::tick(double /*now*/) {
  while (auto d = transport_->receive()) {
    net::WireReader r(d->payload);
    const auto type = r.u8();
    auto className = r.str();
    const auto ts = r.f64();
    const auto payload = r.blob();
    if (!type || !className || !ts || !payload) continue;
    if (static_cast<BrokerMsgType>(*type) != BrokerMsgType::kForward) continue;
    auto attrs = AttributeSet::decode(*payload);
    if (!attrs) continue;
    mailbox_.push_back({std::move(*className), std::move(*attrs), *ts});
  }
}

std::optional<BrokerClient::Delivery> BrokerClient::poll() {
  if (mailbox_.empty()) return std::nullopt;
  Delivery d = std::move(mailbox_.front());
  mailbox_.pop_front();
  return d;
}

}  // namespace cod::core
