// Typed attribute values and attribute sets — the payload vocabulary of the
// Communication Backbone, modelled on HLA attribute updates: an object class
// is a named bag of attributes, and an update carries a subset of them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "math/vec.hpp"
#include "net/wire.hpp"

namespace cod::core {

/// One attribute value. The variant covers every type the simulator's
/// object models exchange (dashboard signals, poses, events, blobs).
class AttributeValue {
 public:
  using Storage = std::variant<bool, std::int64_t, double, std::string,
                               math::Vec3, std::vector<std::uint8_t>>;

  AttributeValue() : v_(false) {}
  AttributeValue(bool b) : v_(b) {}
  AttributeValue(std::int64_t i) : v_(i) {}
  AttributeValue(int i) : v_(static_cast<std::int64_t>(i)) {}
  AttributeValue(double d) : v_(d) {}
  AttributeValue(std::string s) : v_(std::move(s)) {}
  AttributeValue(const char* s) : v_(std::string(s)) {}
  AttributeValue(math::Vec3 v) : v_(v) {}
  AttributeValue(std::vector<std::uint8_t> b) : v_(std::move(b)) {}

  bool isBool() const { return std::holds_alternative<bool>(v_); }
  bool isInt() const { return std::holds_alternative<std::int64_t>(v_); }
  bool isDouble() const { return std::holds_alternative<double>(v_); }
  bool isString() const { return std::holds_alternative<std::string>(v_); }
  bool isVec3() const { return std::holds_alternative<math::Vec3>(v_); }
  bool isBlob() const {
    return std::holds_alternative<std::vector<std::uint8_t>>(v_);
  }

  bool asBool(bool fallback = false) const;
  std::int64_t asInt(std::int64_t fallback = 0) const;
  /// Numeric coercion: returns the value for double *or* int storage.
  double asDouble(double fallback = 0.0) const;
  const std::string& asString() const;
  math::Vec3 asVec3(math::Vec3 fallback = {}) const;
  const std::vector<std::uint8_t>& asBlob() const;

  void encode(net::WireWriter& w) const;
  static std::optional<AttributeValue> decode(net::WireReader& r);

  bool operator==(const AttributeValue&) const = default;

 private:
  Storage v_;
};

/// An ordered name → value map: the payload of one attribute update.
class AttributeSet {
 public:
  AttributeSet() = default;
  AttributeSet(std::initializer_list<std::pair<const std::string, AttributeValue>> init)
      : attrs_(init) {}

  void set(const std::string& name, AttributeValue v) {
    attrs_[name] = std::move(v);
  }
  bool has(const std::string& name) const { return attrs_.contains(name); }
  /// Null if absent.
  const AttributeValue* find(const std::string& name) const;

  bool getBool(const std::string& name, bool fallback = false) const;
  std::int64_t getInt(const std::string& name, std::int64_t fallback = 0) const;
  double getDouble(const std::string& name, double fallback = 0.0) const;
  std::string getString(const std::string& name,
                        const std::string& fallback = {}) const;
  math::Vec3 getVec3(const std::string& name, math::Vec3 fallback = {}) const;

  std::size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }
  auto begin() const { return attrs_.begin(); }
  auto end() const { return attrs_.end(); }

  std::vector<std::uint8_t> encode() const;
  /// Append the encoding to `w` without an intermediate buffer — the
  /// zero-copy path updateAttributeValues uses to write the payload
  /// straight into the reusable UPDATE frame. Bytes are identical to
  /// encode().
  void encodeInto(net::WireWriter& w) const;
  static std::optional<AttributeSet> decode(std::span<const std::uint8_t> bytes);

  bool operator==(const AttributeSet&) const = default;

 private:
  std::map<std::string, AttributeValue> attrs_;
};

}  // namespace cod::core
