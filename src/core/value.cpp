#include "core/value.hpp"

namespace cod::core {

namespace {
// Wire type tags; stable across versions.
enum class Tag : std::uint8_t {
  kBool = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kVec3 = 4,
  kBlob = 5,
};

const std::string kEmptyString;
const std::vector<std::uint8_t> kEmptyBlob;
}  // namespace

bool AttributeValue::asBool(bool fallback) const {
  if (const bool* b = std::get_if<bool>(&v_)) return *b;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) return *i != 0;
  return fallback;
}

std::int64_t AttributeValue::asInt(std::int64_t fallback) const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) return *i;
  if (const double* d = std::get_if<double>(&v_))
    return static_cast<std::int64_t>(*d);
  if (const bool* b = std::get_if<bool>(&v_)) return *b ? 1 : 0;
  return fallback;
}

double AttributeValue::asDouble(double fallback) const {
  if (const double* d = std::get_if<double>(&v_)) return *d;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_))
    return static_cast<double>(*i);
  return fallback;
}

const std::string& AttributeValue::asString() const {
  if (const std::string* s = std::get_if<std::string>(&v_)) return *s;
  return kEmptyString;
}

math::Vec3 AttributeValue::asVec3(math::Vec3 fallback) const {
  if (const math::Vec3* v = std::get_if<math::Vec3>(&v_)) return *v;
  return fallback;
}

const std::vector<std::uint8_t>& AttributeValue::asBlob() const {
  if (const auto* b = std::get_if<std::vector<std::uint8_t>>(&v_)) return *b;
  return kEmptyBlob;
}

void AttributeValue::encode(net::WireWriter& w) const {
  if (const bool* b = std::get_if<bool>(&v_)) {
    w.u8(static_cast<std::uint8_t>(Tag::kBool));
    w.boolean(*b);
  } else if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) {
    w.u8(static_cast<std::uint8_t>(Tag::kInt));
    w.i64(*i);
  } else if (const double* d = std::get_if<double>(&v_)) {
    w.u8(static_cast<std::uint8_t>(Tag::kDouble));
    w.f64(*d);
  } else if (const std::string* s = std::get_if<std::string>(&v_)) {
    w.u8(static_cast<std::uint8_t>(Tag::kString));
    w.str(*s);
  } else if (const math::Vec3* v = std::get_if<math::Vec3>(&v_)) {
    w.u8(static_cast<std::uint8_t>(Tag::kVec3));
    w.f64(v->x);
    w.f64(v->y);
    w.f64(v->z);
  } else if (const auto* blob = std::get_if<std::vector<std::uint8_t>>(&v_)) {
    w.u8(static_cast<std::uint8_t>(Tag::kBlob));
    w.blob(*blob);
  }
}

std::optional<AttributeValue> AttributeValue::decode(net::WireReader& r) {
  const auto tag = r.u8();
  if (!tag) return std::nullopt;
  switch (static_cast<Tag>(*tag)) {
    case Tag::kBool: {
      const auto v = r.boolean();
      if (!v) return std::nullopt;
      return AttributeValue(*v);
    }
    case Tag::kInt: {
      const auto v = r.i64();
      if (!v) return std::nullopt;
      return AttributeValue(*v);
    }
    case Tag::kDouble: {
      const auto v = r.f64();
      if (!v) return std::nullopt;
      return AttributeValue(*v);
    }
    case Tag::kString: {
      auto v = r.str();
      if (!v) return std::nullopt;
      return AttributeValue(std::move(*v));
    }
    case Tag::kVec3: {
      const auto x = r.f64();
      const auto y = r.f64();
      const auto z = r.f64();
      if (!x || !y || !z) return std::nullopt;
      return AttributeValue(math::Vec3{*x, *y, *z});
    }
    case Tag::kBlob: {
      auto v = r.blob();
      if (!v) return std::nullopt;
      return AttributeValue(std::move(*v));
    }
  }
  return std::nullopt;
}

const AttributeValue* AttributeSet::find(const std::string& name) const {
  const auto it = attrs_.find(name);
  return it != attrs_.end() ? &it->second : nullptr;
}

bool AttributeSet::getBool(const std::string& name, bool fallback) const {
  const AttributeValue* v = find(name);
  return v != nullptr ? v->asBool(fallback) : fallback;
}

std::int64_t AttributeSet::getInt(const std::string& name,
                                  std::int64_t fallback) const {
  const AttributeValue* v = find(name);
  return v != nullptr ? v->asInt(fallback) : fallback;
}

double AttributeSet::getDouble(const std::string& name, double fallback) const {
  const AttributeValue* v = find(name);
  return v != nullptr ? v->asDouble(fallback) : fallback;
}

std::string AttributeSet::getString(const std::string& name,
                                    const std::string& fallback) const {
  const AttributeValue* v = find(name);
  return v != nullptr && v->isString() ? v->asString() : fallback;
}

math::Vec3 AttributeSet::getVec3(const std::string& name,
                                 math::Vec3 fallback) const {
  const AttributeValue* v = find(name);
  return v != nullptr ? v->asVec3(fallback) : fallback;
}

std::vector<std::uint8_t> AttributeSet::encode() const {
  net::WireWriter w;
  encodeInto(w);
  return w.take();
}

void AttributeSet::encodeInto(net::WireWriter& w) const {
  w.u16(static_cast<std::uint16_t>(attrs_.size()));
  for (const auto& [name, value] : attrs_) {
    w.str(name);
    value.encode(w);
  }
}

std::optional<AttributeSet> AttributeSet::decode(
    std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  const auto n = r.u16();
  if (!n) return std::nullopt;
  AttributeSet set;
  for (std::uint16_t i = 0; i < *n; ++i) {
    auto name = r.str();
    if (!name) return std::nullopt;
    auto value = AttributeValue::decode(r);
    if (!value) return std::nullopt;
    set.set(std::move(*name), std::move(*value));
  }
  return set;
}

}  // namespace cod::core
