#include "platform/stewart.hpp"

#include <algorithm>
#include <cmath>

namespace cod::platform {

using math::Quat;
using math::Vec3;

namespace {

std::array<Vec3, 6> anchorRing(double radius, double pairHalfAngle,
                               double phase) {
  // Three pairs at 120 degrees; each pair split by +-pairHalfAngle.
  std::array<Vec3, 6> a;
  for (int k = 0; k < 3; ++k) {
    const double center = phase + 2.0 * math::kPi * k / 3.0;
    a[2 * k] = {radius * std::cos(center - pairHalfAngle),
                radius * std::sin(center - pairHalfAngle), 0.0};
    a[2 * k + 1] = {radius * std::cos(center + pairHalfAngle),
                    radius * std::sin(center + pairHalfAngle), 0.0};
  }
  return a;
}

}  // namespace

std::array<Vec3, 6> StewartGeometry::baseAnchors() const {
  return anchorRing(baseRadiusM, basePairHalfAngle, 0.0);
}

std::array<Vec3, 6> StewartGeometry::platformAnchors() const {
  // Platform ring rotated 60 degrees so legs cross — the classic 6-6 layout.
  return anchorRing(platformRadiusM, platformPairHalfAngle, math::kPi / 3.0);
}

StewartPlatform::StewartPlatform(StewartGeometry geom)
    : geom_(geom), plat_(geom.platformAnchors()) {
  // Leg i connects base anchor (i+1) mod 6 to platform anchor i: each leg
  // spans the same angular gap, so the level home pose has six equal legs
  // (and the legs cross, which is what stiffens a 6-6 Stewart platform).
  const std::array<math::Vec3, 6> ring = geom.baseAnchors();
  for (int i = 0; i < 6; ++i) base_[i] = ring[(i + 1) % 6];
}

Pose StewartPlatform::homePose() const {
  return {{0.0, 0.0, geom_.homeHeightM}, Quat{}};
}

LegSolution StewartPlatform::inverseKinematics(const Pose& pose) const {
  LegSolution sol;
  sol.strokeMargin = 1e300;
  for (int i = 0; i < 6; ++i) {
    const Vec3 anchorWorld =
        pose.position + pose.orientation.rotate(plat_[i]);
    const double len = (anchorWorld - base_[i]).norm();
    sol.lengths[i] = len;
    const double margin =
        std::min(len - geom_.legMinM, geom_.legMaxM - len);
    sol.strokeMargin = std::min(sol.strokeMargin, margin);
    if (margin < 0.0) sol.reachable = false;
  }
  return sol;
}

Pose StewartPlatform::clampToWorkspace(const Pose& desired) const {
  if (reachable(desired)) return desired;
  const Pose home = homePose();
  // Bisect the blend factor between home (always reachable) and desired.
  double lo = 0.0;  // home
  double hi = 1.0;  // desired (unreachable)
  for (int iter = 0; iter < 32; ++iter) {
    const double mid = (lo + hi) * 0.5;
    Pose p;
    p.position = math::lerp(home.position, desired.position, mid);
    p.orientation = math::slerp(home.orientation, desired.orientation, mid);
    if (reachable(p)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  Pose p;
  p.position = math::lerp(home.position, desired.position, lo);
  p.orientation = math::slerp(home.orientation, desired.orientation, lo);
  return p;
}

}  // namespace cod::platform
