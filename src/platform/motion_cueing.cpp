#include "platform/motion_cueing.hpp"

#include <algorithm>
#include <cmath>

namespace cod::platform {

using math::Quat;
using math::Vec3;

PoseInterpolator::PoseInterpolator(const Pose& initial)
    : from_(initial), target_(initial), current_(initial) {}

void PoseInterpolator::setTarget(const Pose& target, double intervalSec) {
  from_ = current_;
  target_ = target;
  interval_ = std::max(1e-6, intervalSec);
  t_ = 0.0;
}

Pose PoseInterpolator::advance(double dt) {
  t_ = std::min(1.0, t_ + dt / interval_);
  // Smoothstep easing keeps velocity continuous at segment joins, which is
  // what "smoothly transform the posture between consecutive statuses"
  // requires of a motion base.
  const double s = t_ * t_ * (3.0 - 2.0 * t_);
  current_.position = math::lerp(from_.position, target_.position, s);
  current_.orientation = math::slerp(from_.orientation, target_.orientation, s);
  return current_;
}

WashoutFilter::WashoutFilter(WashoutParams params) : params_(params) {}

Pose WashoutFilter::map(const Pose& home, double vehiclePitch,
                        double vehicleRoll, double longitudinalAccel,
                        double lateralAccel, double dt) {
  // Acceleration cue: lean the platform and shift it slightly, then let the
  // offset wash out so the stroke is available for the next onset cue.
  offset_.x += params_.positionScale * longitudinalAccel * dt;
  offset_.y += params_.positionScale * lateralAccel * dt;
  const double decay = std::exp(-params_.recentreRate * dt);
  offset_ *= decay;
  offset_.x = math::clamp(offset_.x, -params_.maxOffsetM, params_.maxOffsetM);
  offset_.y = math::clamp(offset_.y, -params_.maxOffsetM, params_.maxOffsetM);

  const double pitch = math::clamp(params_.angleScale * vehiclePitch,
                                   -params_.maxTiltRad, params_.maxTiltRad);
  const double roll = math::clamp(params_.angleScale * vehicleRoll,
                                  -params_.maxTiltRad, params_.maxTiltRad);
  Pose p;
  p.position = home.position + offset_;
  p.orientation = Quat::fromEuler(roll, pitch, 0.0);
  return p;
}

VibrationGenerator::VibrationGenerator(double amplitudeM, double cutoffHz,
                                       std::uint64_t seed)
    : amplitudeM_(amplitudeM), cutoffHz_(cutoffHz), rng_(seed) {}

double VibrationGenerator::sample(double dt) {
  if (!enabled_ || dt <= 0.0) return enabled_ ? state_ * amplitudeM_ : 0.0;
  // One-pole low-pass over white noise: band-limited "engine rumble".
  const double alpha =
      1.0 - std::exp(-2.0 * math::kPi * cutoffHz_ * dt);
  state_ += alpha * (rng_.normal() - state_);
  return state_ * amplitudeM_;
}

}  // namespace cod::platform
