// Motion cueing for the platform controller module (§3.4).
//
// Three responsibilities the paper calls out:
//  1. smooth interpolation of the platform posture between consecutive
//     target statuses, at a frequency synchronized with the visual display
//     ("otherwise the user may visually see the crane going downhill while
//     the motion platform is still in uphill posture");
//  2. scaling the (unbounded) vehicle motion into the platform's small
//     workspace, with a washout that re-centres the platform slowly enough
//     not to be felt;
//  3. a constant random up-and-down vibration while the engine is ignited —
//     the crane is a heavy industrial machine.
#pragma once

#include "math/rng.hpp"
#include "platform/stewart.hpp"

namespace cod::platform {

/// Interpolates platform pose between consecutive target statuses.
class PoseInterpolator {
 public:
  explicit PoseInterpolator(const Pose& initial = Pose::identity());

  /// Feed the next target status and the interval over which to reach it
  /// (typically one display frame, so motion and vision stay in phase).
  void setTarget(const Pose& target, double intervalSec);

  /// Advance by dt and return the smoothly interpolated pose.
  Pose advance(double dt);

  const Pose& current() const { return current_; }
  const Pose& target() const { return target_; }
  /// Remaining fraction of the current interval in [0, 1].
  double progress() const { return math::clamp(t_, 0.0, 1.0); }

 private:
  Pose from_;
  Pose target_;
  Pose current_;
  double t_ = 1.0;         // normalized progress
  double interval_ = 1.0;  // seconds
};

/// Classical washout: scale vehicle motion into the workspace and decay the
/// platform back to neutral so sustained cues do not saturate the stroke.
struct WashoutParams {
  double positionScale = 0.08;   // m of platform per m/s^2 of accel cue
  double angleScale = 0.7;       // platform tilt per vehicle tilt
  double recentreRate = 0.35;    // 1/s exponential pull toward home
  double maxTiltRad = 0.30;
  double maxOffsetM = 0.25;
};

class WashoutFilter {
 public:
  explicit WashoutFilter(WashoutParams params = {});

  /// Map a vehicle state sample (specific forces + attitude) to a platform
  /// pose target around `home`.
  Pose map(const Pose& home, double vehiclePitch, double vehicleRoll,
           double longitudinalAccel, double lateralAccel, double dt);

  const WashoutParams& params() const { return params_; }

 private:
  WashoutParams params_;
  math::Vec3 offset_;  // persistent, washed-out translation state
};

/// Engine-idle vibration: band-limited random vertical bounce (§3.4).
class VibrationGenerator {
 public:
  VibrationGenerator(double amplitudeM, double cutoffHz, std::uint64_t seed);

  /// Next vertical offset sample; returns 0 when disabled.
  double sample(double dt);

  void setEnabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  double amplitude() const { return amplitudeM_; }

 private:
  double amplitudeM_;
  double cutoffHz_;
  math::Rng rng_;
  double state_ = 0.0;  // one-pole low-pass of white noise
  bool enabled_ = true;
};

}  // namespace cod::platform
