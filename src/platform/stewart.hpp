// Stewart-platform-based manipulator (paper §3.4, after Stewart 1965).
//
// Six prismatic legs connect a fixed base to the moving platform. Motion
// cueing only needs the *inverse* kinematics — given the desired platform
// pose, each leg length is the distance between its base and platform
// anchors — plus stroke limits defining the reachable workspace.
#pragma once

#include <array>
#include <optional>

#include "math/mat.hpp"
#include "math/quat.hpp"
#include "math/vec.hpp"

namespace cod::platform {

/// A rigid pose of the moving platform relative to the base frame.
struct Pose {
  math::Vec3 position;  // platform centre, metres (z up)
  math::Quat orientation;

  static Pose identity() { return {}; }
};

/// Geometry of a 6-6 Stewart platform with paired anchor points.
struct StewartGeometry {
  double baseRadiusM = 1.6;
  double platformRadiusM = 1.1;
  /// Half-angle between the two anchors of each pair, radians.
  double basePairHalfAngle = 0.12;
  double platformPairHalfAngle = 0.35;
  /// Actuator stroke limits.
  double legMinM = 1.3;
  double legMaxM = 2.2;
  /// Neutral platform height above the base plane.
  double homeHeightM = 1.7;

  /// Anchor layouts (computed from the radii/angles).
  std::array<math::Vec3, 6> baseAnchors() const;
  std::array<math::Vec3, 6> platformAnchors() const;
};

/// Result of one inverse-kinematics solve.
struct LegSolution {
  std::array<double, 6> lengths{};
  bool reachable = true;  // all legs within [legMin, legMax]
  /// Worst-case margin to the nearer stroke limit (negative if violated).
  double strokeMargin = 0.0;
};

class StewartPlatform {
 public:
  explicit StewartPlatform(StewartGeometry geom = {});

  const StewartGeometry& geometry() const { return geom_; }

  /// Neutral (home) pose: level platform at homeHeight.
  Pose homePose() const;

  /// Inverse kinematics: leg lengths for a platform pose.
  LegSolution inverseKinematics(const Pose& pose) const;

  /// Clamp a desired pose into the reachable workspace by shrinking its
  /// offset from home until all legs are within stroke (bisection).
  Pose clampToWorkspace(const Pose& desired) const;

  /// True if the pose is reachable.
  bool reachable(const Pose& pose) const {
    return inverseKinematics(pose).reachable;
  }

 private:
  StewartGeometry geom_;
  std::array<math::Vec3, 6> base_;
  std::array<math::Vec3, 6> plat_;
};

}  // namespace cod::platform
