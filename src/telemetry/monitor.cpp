#include "telemetry/monitor.hpp"

#include <algorithm>
#include <cstdio>

namespace cod::telemetry {

namespace {

/// Counter rate with restart protection: a publisher that restarted
/// (counters back to zero) must not produce a huge unsigned wraparound.
double rate(std::uint64_t cur, std::uint64_t prev, double dtSec) {
  if (cur < prev || dtSec <= 0.0) return 0.0;
  return static_cast<double>(cur - prev) / dtSec;
}

std::uint64_t delta(std::uint64_t cur, std::uint64_t prev) {
  return cur >= prev ? cur - prev : 0;
}

}  // namespace

double reliableLossEstimatePct(std::uint64_t dataFramesSent,
                               std::uint64_t retransmitsSent) {
  return reliableLossEstimatePct(dataFramesSent, retransmitsSent, 0);
}

double reliableLossEstimatePct(std::uint64_t dataFramesSent,
                               std::uint64_t retransmitsSent,
                               std::uint64_t duplicatesReported) {
  const std::uint64_t attempts = dataFramesSent + retransmitsSent;
  const std::uint64_t losses = retransmitsSent > duplicatesReported
                                   ? retransmitsSent - duplicatesReported
                                   : 0;
  return attempts == 0 ? 0.0
                       : 100.0 * static_cast<double>(losses) /
                             static_cast<double>(attempts);
}

const char* alarmKindName(HealthAlarm::Kind k) {
  switch (k) {
    case HealthAlarm::Kind::kNodeSilent: return "NODE_SILENT";
    case HealthAlarm::Kind::kNodeRecovered: return "NODE_RECOVERED";
    case HealthAlarm::Kind::kLossSpike: return "LOSS_SPIKE";
    case HealthAlarm::Kind::kRetransmitStorm: return "RETX_STORM";
    case HealthAlarm::Kind::kMailboxOverflow: return "MAILBOX_OVERFLOW";
    case HealthAlarm::Kind::kLossCleared: return "LOSS_CLEARED";
    case HealthAlarm::Kind::kRetransmitCleared: return "RETX_CLEARED";
    case HealthAlarm::Kind::kOverflowCleared: return "OVERFLOW_CLEARED";
    case HealthAlarm::Kind::kChannelWindowPinned: return "CHAN_WINDOW_PINNED";
    case HealthAlarm::Kind::kChannelRetransmitStorm: return "CHAN_RETX_STORM";
    case HealthAlarm::Kind::kChannelWindowCleared: return "CHAN_WINDOW_CLEARED";
    case HealthAlarm::Kind::kChannelRetransmitCleared:
      return "CHAN_RETX_CLEARED";
    case HealthAlarm::Kind::kLatencySpike: return "LATENCY_SPIKE";
    case HealthAlarm::Kind::kLatencyCleared: return "LATENCY_CLEARED";
  }
  return "UNKNOWN";
}

HealthAlarm::Severity alarmSeverity(HealthAlarm::Kind k) {
  switch (k) {
    // Data has stopped flowing (or the node itself is gone): critical.
    case HealthAlarm::Kind::kNodeSilent:
    case HealthAlarm::Kind::kChannelWindowPinned:
      return HealthAlarm::Severity::kCritical;
    // Degraded but still moving: warning.
    case HealthAlarm::Kind::kLossSpike:
    case HealthAlarm::Kind::kRetransmitStorm:
    case HealthAlarm::Kind::kMailboxOverflow:
    case HealthAlarm::Kind::kChannelRetransmitStorm:
    case HealthAlarm::Kind::kLatencySpike:
      return HealthAlarm::Severity::kWarning;
    // Recoveries and falling edges: informational.
    case HealthAlarm::Kind::kNodeRecovered:
    case HealthAlarm::Kind::kLossCleared:
    case HealthAlarm::Kind::kRetransmitCleared:
    case HealthAlarm::Kind::kOverflowCleared:
    case HealthAlarm::Kind::kChannelWindowCleared:
    case HealthAlarm::Kind::kChannelRetransmitCleared:
    case HealthAlarm::Kind::kLatencyCleared:
      return HealthAlarm::Severity::kInfo;
  }
  return HealthAlarm::Severity::kWarning;
}

const char* severityName(HealthAlarm::Severity s) {
  switch (s) {
    case HealthAlarm::Severity::kInfo: return "INFO";
    case HealthAlarm::Severity::kWarning: return "WARN";
    case HealthAlarm::Severity::kCritical: return "CRIT";
  }
  return "WARN";
}

HealthMonitor::HealthMonitor(MonitorConfig cfg)
    : core::LogicalProcess("health-monitor"), cfg_(cfg) {}

void HealthMonitor::bind(core::CommunicationBackbone& cb) {
  cb_ = &cb;
  cb.attach(*this);
  sub_ = cb.subscribeObjectClass(*this, kTelemetryClass);
}

void HealthMonitor::reflectAttributeValues(const std::string& className,
                                           const core::AttributeSet& attrs,
                                           double /*timestamp*/) {
  if (className != kTelemetryClass) return;
  const core::AttributeValue* v = attrs.find(kTelemetryAttr);
  if (v == nullptr || !v->isBlob()) {
    ++undecodable_;
    return;
  }
  const std::vector<std::uint8_t>& bytes = v->asBlob();
  const auto header = peekTelemetryHeader(bytes);
  if (!header) {
    ++undecodable_;
    return;
  }
  if (header->baseSeq.has_value()) {
    // Delta: decode against the sender's stored keyframe. A delta whose
    // keyframe we missed (loss, or we joined mid-stream) still proves the
    // node is alive — refresh its liveness but apply no counters; the
    // next keyframe heals the chain. A delta whose base we DO hold but
    // whose body will not decode is corruption, not keyframe loss, and
    // must be counted as such or an operator chasing corrupt telemetry
    // would be pointed at packet loss instead.
    NodeState& st = nodes_[header->node];
    NodeHealth& h = st.health;
    const bool baseMatches =
        st.keyframe && st.keyframe->seq == *header->baseSeq;
    std::optional<NodeTelemetry> t;
    if (baseMatches) t = decodeTelemetry(bytes, &*st.keyframe);
    if (!t) {
      if (baseMatches) {
        ++undecodable_;
      } else {
        ++h.deltasRejected;
      }
      // Nothing applied, but the node proved alive: archive that fact
      // (before the recovered edge below, so a replayer processes the
      // ping — and raises its own matching edge — at this moment).
      if (archive_ != nullptr)
        archive_->appendLivenessPing(header->node, now_);
      h.lastHeardSec = now_;
      if (h.silent) {
        h.silent = false;
        raise(HealthAlarm::Kind::kNodeRecovered, header->node,
              "node is back (awaiting keyframe)");
      }
      return;
    }
    applySnapshot(std::move(*t), /*isKeyframe=*/false);
    return;
  }
  auto t = decodeTelemetry(bytes);
  if (!t) {
    ++undecodable_;
    return;
  }
  applySnapshot(std::move(*t), /*isKeyframe=*/true);
}

void HealthMonitor::applySnapshot(NodeTelemetry&& t, bool isKeyframe) {
  // A keyframe this far behind the node's last applied sequence is a
  // publisher restart, not reordering: at snapshot cadence (~1 Hz) a
  // record delayed by several whole intervals is effectively impossible
  // on a LAN, while a restarted publisher whose literal seq-1 keyframe
  // was lost (telemetry is best effort) would otherwise be stale-dropped
  // until its new sequence caught the old one — a frozen health row for
  // however long the dead process had been up.
  constexpr std::uint64_t kRestartSeqGap = 3;
  NodeState& st = nodes_[t.node];
  NodeHealth& h = st.health;
  if (h.snapshotsApplied > 0) {
    const bool restarted =
        t.seq < h.last.seq &&
        (t.seq == 1 || (isKeyframe && t.seq + kRestartSeqGap < h.last.seq));
    if (restarted) {
      // Previous counters belong to a dead process — but a node that was
      // flagged SILENT and came back as a new process still owes the feed
      // its RECOVERED edge, so the flag survives the reset.
      const bool wasSilent = h.silent;
      st = NodeState{};
      h.silent = wasSilent;
    } else if (t.seq <= h.last.seq) {
      ++h.staleDropped;  // reordered or duplicated snapshot
      return;
    }
  }
  if (h.snapshotsApplied > 0) {
    // The interval length every rate this snapshot produces divides by,
    // computed ONCE from the seq-paired publisher clocks. The sequence
    // check above guarantees cur is newer than prev, so a non-positive dt
    // means the publisher clock itself went backwards — a restart whose
    // seq-reset keyframe was lost (telemetry is best effort). Deriving
    // rates from that pair would divide counter deltas of two different
    // processes; reset instead, exactly like an announced restart.
    const double dt = t.nodeTimeSec - h.last.nodeTimeSec;
    if (dt <= 0.0) {
      const bool wasSilent = h.silent;
      st = NodeState{};
      h.silent = wasSilent;
    } else {
      deriveRates(st, h.last, t, dt);
    }
  }
  if (h.silent) {
    h.silent = false;
    raise(HealthAlarm::Kind::kNodeRecovered, t.node, "node is back");
  }
  h.lastHeardSec = now_;
  ++h.snapshotsApplied;
  if (isKeyframe) st.keyframe = t;
  // Archive the applied state re-encoded as a KEYFRAME (self-contained:
  // a delta's base might land in a rotated-away segment), stamped with
  // this monitor's clock — replaying against these timestamps reproduces
  // its silence judgement exactly.
  if (archive_ != nullptr) archive_->appendSnapshot(encodeTelemetry(t), now_);
  h.last = std::move(t);
}

void HealthMonitor::deriveRates(NodeState& st, const NodeTelemetry& prev,
                                const NodeTelemetry& cur, double dtSec) {
  NodeHealth& h = st.health;
  const double dt = dtSec;
  h.updatesPerSec = rate(cur.cb.updatesSent, prev.cb.updatesSent, dt);
  h.retransmitsPerSec =
      rate(cur.cb.reliable.retransmitsSent, prev.cb.reliable.retransmitsSent,
           dt);
  const std::uint64_t dDropped =
      delta(cur.transport.framesDropped, prev.transport.framesDropped);
  const std::uint64_t dReceived =
      delta(cur.transport.framesReceived, prev.transport.framesReceived);
  h.lossPct = (dDropped + dReceived) == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(dDropped) /
                        static_cast<double>(dDropped + dReceived);
  // Real sockets cannot attribute drops (framesDropped pinned at 0), so
  // loss there must be inferred from the reliable layer's own counters.
  // Duplicate-corrected: subscriber-reported duplicates in the interval
  // are retransmits whose originals arrived — not losses.
  h.reliableLossPct = reliableLossEstimatePct(
      delta(cur.cb.reliable.dataFramesSent, prev.cb.reliable.dataFramesSent),
      delta(cur.cb.reliable.retransmitsSent,
            prev.cb.reliable.retransmitsSent),
      delta(cur.cb.reliable.peerDuplicatesReported,
            prev.cb.reliable.peerDuplicatesReported));
  const std::uint64_t dBytes =
      delta(cur.transport.bytesSent, prev.transport.bytesSent);
  const std::uint64_t dPackets =
      delta(cur.transport.packetsSent, prev.transport.packetsSent);
  h.bytesPerDatagram = dPackets == 0 ? 0.0
                                     : static_cast<double>(dBytes) /
                                           static_cast<double>(dPackets);
  if (h.effectiveLossPct() > peakLossPct_) {
    peakLossPct_ = h.effectiveLossPct();
    peakLossNode_ = cur.node;
  }

  // Interval delivery-latency percentiles: diff the cumulative histogram
  // exactly as rates diff the counters.
  constexpr std::size_t kLat = CbHistograms::kDeliveryLatencyIdx;
  const HistogramSnapshot dLat =
      LogHistogram::diff(cur.hists[kLat], prev.hists[kLat]);
  const double lowest = CbHistograms::lowestOf(kLat);
  h.latencySamples = dLat.count;
  if (dLat.count > 0) {
    h.latencyP50Ms = LogHistogram::percentile(dLat, 0.50, lowest) * 1e3;
    h.latencyP90Ms = LogHistogram::percentile(dLat, 0.90, lowest) * 1e3;
    h.latencyP99Ms = LogHistogram::percentile(dLat, 0.99, lowest) * 1e3;
    h.latencyMaxMs = dLat.max * 1e3;
  } else {
    h.latencyP50Ms = h.latencyP90Ms = h.latencyP99Ms = h.latencyMaxMs = 0.0;
  }

  // Per-phase interval p99s and the hot phase (where the interval's tick
  // time actually went — judged by summed duration, not p99, so one
  // outlier doesn't crown a quiet phase) from the v5 phase block.
  h.phaseP99Ms.fill(0.0);
  h.hotPhase = -1;
  if (cur.phaseProfiling) {
    double hotSum = 0.0;
    for (std::size_t i = 0; i < kTickPhaseCount; ++i) {
      const HistogramSnapshot dPhase =
          LogHistogram::diff(cur.phases[i], prev.phases[i]);
      if (dPhase.count > 0)
        h.phaseP99Ms[i] = LogHistogram::percentile(
                              dPhase, 0.99, TickPhaseHistograms::lowestOf(i)) *
                          1e3;
      if (dPhase.sum > hotSum) {
        hotSum = dPhase.sum;
        h.hotPhase = static_cast<int>(i);
      }
    }
  }

  // Threshold alarms, edge-triggered per node. Loss judges the effective
  // figure: frame accounting where the transport attributes drops, the
  // reliable-layer estimate on real sockets.
  char buf[96];
  if (h.effectiveLossPct() >= cfg_.lossSpikePct) {
    if (!st.lossAlarm) {
      st.lossAlarm = true;
      std::snprintf(buf, sizeof(buf), "inbound loss %.1f%% (threshold %.1f%%)",
                    h.effectiveLossPct(), cfg_.lossSpikePct);
      raise(HealthAlarm::Kind::kLossSpike, cur.node, buf);
    }
  } else if (st.lossAlarm) {
    st.lossAlarm = false;
    std::snprintf(buf, sizeof(buf), "inbound loss back to %.1f%% (threshold %.1f%%)",
                  h.effectiveLossPct(), cfg_.lossSpikePct);
    raise(HealthAlarm::Kind::kLossCleared, cur.node, buf);
  }
  if (h.retransmitsPerSec >= cfg_.retransmitStormPerSec) {
    if (!st.retxAlarm) {
      st.retxAlarm = true;
      std::snprintf(buf, sizeof(buf), "%.1f retransmits/s (threshold %.1f)",
                    h.retransmitsPerSec, cfg_.retransmitStormPerSec);
      raise(HealthAlarm::Kind::kRetransmitStorm, cur.node, buf);
    }
  } else if (st.retxAlarm) {
    st.retxAlarm = false;
    std::snprintf(buf, sizeof(buf), "back to %.1f retransmits/s (threshold %.1f)",
                  h.retransmitsPerSec, cfg_.retransmitStormPerSec);
    raise(HealthAlarm::Kind::kRetransmitCleared, cur.node, buf);
  }
  const std::uint64_t dOverflow =
      delta(cur.cb.mailboxOverflows, prev.cb.mailboxOverflows);
  if (cfg_.alarmOnMailboxOverflow && dOverflow > 0) {
    if (!st.overflowAlarm) {
      st.overflowAlarm = true;
      std::snprintf(buf, sizeof(buf),
                    "%llu reflections dropped on full mailboxes",
                    static_cast<unsigned long long>(dOverflow));
      raise(HealthAlarm::Kind::kMailboxOverflow, cur.node, buf);
    }
  } else if (st.overflowAlarm) {
    st.overflowAlarm = false;
    raise(HealthAlarm::Kind::kOverflowCleared, cur.node,
          "mailboxes draining again");
  }
  // Latency spike, edge-triggered like the others. Intervals with fewer
  // than latencyMinSamples are not judged either way — sparse sampling
  // must neither raise on one outlier nor clear on an empty interval.
  if (h.latencySamples >= cfg_.latencyMinSamples) {
    if (h.latencyP99Ms >= cfg_.latencySpikeP99Ms) {
      if (!st.latencyAlarm) {
        st.latencyAlarm = true;
        std::snprintf(buf, sizeof(buf),
                      "delivery p99 %.1fms over %llu samples (threshold %.1fms)",
                      h.latencyP99Ms,
                      static_cast<unsigned long long>(h.latencySamples),
                      cfg_.latencySpikeP99Ms);
        raise(HealthAlarm::Kind::kLatencySpike, cur.node, buf);
      }
    } else if (st.latencyAlarm) {
      st.latencyAlarm = false;
      std::snprintf(buf, sizeof(buf),
                    "delivery p99 back to %.1fms (threshold %.1fms)",
                    h.latencyP99Ms, cfg_.latencySpikeP99Ms);
      raise(HealthAlarm::Kind::kLatencyCleared, cur.node, buf);
    }
  }

  deriveChannelAlarms(st, prev, cur, dt);
}

void HealthMonitor::deriveChannelAlarms(NodeState& st,
                                        const NodeTelemetry& prev,
                                        const NodeTelemetry& cur,
                                        double dtSec) {
  const double dt = dtSec;
  // Previous retransmit counters by channel id, for per-channel rates.
  std::map<std::uint32_t, std::uint64_t> prevRetx;
  for (const core::CbChannelHealth& c : prev.channels)
    if (c.outbound) prevRetx[c.channelId] = c.retransmits;

  char buf[128];
  std::map<std::uint32_t, bool> seen;
  for (const core::CbChannelHealth& c : cur.channels) {
    // Only live outbound reliable channels have a send window and a
    // retransmit path worth alarming on.
    if (!c.outbound || c.qos != net::QosClass::kReliableOrdered) continue;
    seen[c.channelId] = true;
    ChannelAlarmState& cs = st.channelAlarms[c.channelId];

    const bool pinnedNow = c.live && c.windowFrames >= cfg_.windowPinnedFrames;
    if (pinnedNow && cs.pinnedPrev) {
      if (!cs.windowAlarm) {
        cs.windowAlarm = true;
        std::snprintf(buf, sizeof(buf),
                      "channel %u (%s): window pinned at %llu frames",
                      c.channelId, c.className.c_str(),
                      static_cast<unsigned long long>(c.windowFrames));
        raise(HealthAlarm::Kind::kChannelWindowPinned, cur.node, buf);
      }
    } else if (!pinnedNow && cs.windowAlarm) {
      cs.windowAlarm = false;
      std::snprintf(buf, sizeof(buf),
                    "channel %u (%s): window draining (%llu frames)",
                    c.channelId, c.className.c_str(),
                    static_cast<unsigned long long>(c.windowFrames));
      raise(HealthAlarm::Kind::kChannelWindowCleared, cur.node, buf);
    }
    cs.pinnedPrev = pinnedNow;

    const auto pit = prevRetx.find(c.channelId);
    const double retxPerSec =
        pit == prevRetx.end() ? 0.0 : rate(c.retransmits, pit->second, dt);
    if (retxPerSec >= cfg_.channelRetransmitStormPerSec) {
      if (!cs.retxAlarm) {
        cs.retxAlarm = true;
        std::snprintf(buf, sizeof(buf),
                      "channel %u (%s): %.1f retransmits/s (threshold %.1f)",
                      c.channelId, c.className.c_str(), retxPerSec,
                      cfg_.channelRetransmitStormPerSec);
        raise(HealthAlarm::Kind::kChannelRetransmitStorm, cur.node, buf);
      }
    } else if (cs.retxAlarm) {
      cs.retxAlarm = false;
      std::snprintf(buf, sizeof(buf),
                    "channel %u (%s): back to %.1f retransmits/s", c.channelId,
                    c.className.c_str(), retxPerSec);
      raise(HealthAlarm::Kind::kChannelRetransmitCleared, cur.node, buf);
    }
  }

  // Channels that left the snapshot (subscriber gone, channel torn down)
  // take their edge state with them — a reappearing id starts clean.
  for (auto it = st.channelAlarms.begin(); it != st.channelAlarms.end();) {
    if (seen.find(it->first) == seen.end())
      it = st.channelAlarms.erase(it);
    else
      ++it;
  }
}

void HealthMonitor::noteLiveness(const std::string& node) {
  NodeHealth& h = nodes_[node].health;
  h.lastHeardSec = now_;
  if (h.silent) {
    h.silent = false;
    raise(HealthAlarm::Kind::kNodeRecovered, node,
          "node is back (awaiting keyframe)");
  }
}

void HealthMonitor::step(double now) {
  now_ = std::max(now_, now);
  const double silentAfter =
      cfg_.silentAfterIntervals * cfg_.expectedIntervalSec;
  for (auto& [name, st] : nodes_) {
    NodeHealth& h = st.health;
    if (!h.silent && now_ - h.lastHeardSec > silentAfter) {
      h.silent = true;
      char buf[96];
      std::snprintf(buf, sizeof(buf), "no snapshot for %.1fs (expected every %.1fs)",
                    now_ - h.lastHeardSec, cfg_.expectedIntervalSec);
      raise(HealthAlarm::Kind::kNodeSilent, name, buf);
    }
  }
}

void HealthMonitor::attachFlightRecorder(TraceRecorder* recorder,
                                         std::string dumpPath) {
  recorder_ = recorder;
  recorderDumpPath_ = std::move(dumpPath);
  if (recorder_ != nullptr)
    recorderLane_ = recorder_->registerLane("health-monitor");
}

std::string HealthMonitor::flightDumpPath(const std::string& base,
                                          std::uint64_t seq) {
  if (seq == 0) return base;
  // Insert ".N" before the last extension ("x.trace.json" ->
  // "x.trace.2.json") so tooling globbing on the extension still finds
  // every dump; no extension (or a dotted directory) appends instead.
  const auto slash = base.find_last_of('/');
  const auto dot = base.find_last_of('.');
  std::string suffix(1, '.');
  suffix += std::to_string(seq + 1);
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return base + suffix;
  return base.substr(0, dot) + suffix + base.substr(dot);
}

void HealthMonitor::raise(HealthAlarm::Kind kind, const std::string& nodeName,
                          std::string detail) {
  const HealthAlarm::Severity sev = alarmSeverity(kind);
  alarms_.push_back(HealthAlarm{kind, sev, now_, nodeName, std::move(detail)});
  if (archive_ != nullptr) {
    const HealthAlarm& a = alarms_.back();
    archive_->appendAlarm(static_cast<std::uint8_t>(a.kind),
                          static_cast<std::uint8_t>(a.severity), a.timeSec,
                          a.node, a.detail, now_);
  }
  if (recorder_ == nullptr) return;
  // Alarm edges land in the flight recorder's timeline: kInfo kinds are
  // all falling edges / recoveries, everything else is an onset.
  const auto ev = sev == HealthAlarm::Severity::kInfo
                      ? TraceEventKind::kAlarmCleared
                      : TraceEventKind::kAlarmRaised;
  recorder_->record(ev, recorderLane_, now_, 0.0,
                    static_cast<std::uint64_t>(kind));
  if (sev == HealthAlarm::Severity::kCritical && !recorderDumpPath_.empty()) {
    // The moment data stopped flowing is the moment the preceding seconds
    // of hot-path history matter most: dump the ring now, while it still
    // holds them. Each incident gets its own numbered file (first at the
    // configured path, then .2, .3, ... before the extension) so a later
    // CRIT cannot destroy the evidence of an earlier one — but no more
    // often than flightDumpMinIntervalSec: each dump is megabytes of
    // synchronous I/O on the monitor's tick path, and a flapping CRIT
    // edge must not turn the monitor itself into the cluster's slowest
    // node.
    if (flightDumps_ == 0 ||
        now_ - lastFlightDumpSec_ >= cfg_.flightDumpMinIntervalSec) {
      const std::string path =
          flightDumpPath(recorderDumpPath_, flightDumps_);
      if (recorder_->dumpToFile(path)) {
        ++flightDumps_;
        lastFlightDumpSec_ = now_;
        if (archive_ != nullptr) archive_->appendTraceDumpMarker(path, now_);
      }
    }
  }
}

std::vector<std::string> HealthMonitor::nodeNames() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& [name, st] : nodes_) names.push_back(name);
  return names;
}

const NodeHealth* HealthMonitor::node(const std::string& name) const {
  const auto it = nodes_.find(name);
  return it != nodes_.end() ? &it->second.health : nullptr;
}

std::string HealthMonitor::renderTable() const {
  // loss% is transport frame accounting (0 on real sockets), rloss% the
  // reliable-layer estimate — side by side so an operator sees at once
  // which observable their deployment actually has. p99ms is the interval
  // delivery-latency p99 from the v3 histogram block (0.0 until sampled
  // updates flow). The hot column (the phase most interval tick time went
  // to, v5 phase block) appears only when some node runs the profiler.
  //
  // Column widths are computed from content: a long node name widens its
  // column instead of shearing every figure out of alignment.
  bool anyPhases = false;
  for (const auto& [name, st] : nodes_)
    if (st.health.hotPhase >= 0) anyPhases = true;

  std::vector<std::string> headers = {"node",   "seq",    "age",
                                      "upd/s",  "loss%",  "rloss%",
                                      "retx/s", "B/dg",   "p99ms"};
  if (anyPhases) headers.push_back("hot");
  headers.push_back("state");
  const std::size_t cols = headers.size();

  char buf[160];
  auto fmt = [&buf](const char* f, double v) {
    std::snprintf(buf, sizeof(buf), f, v);
    return std::string(buf);
  };
  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, st] : nodes_) {
    const NodeHealth& h = st.health;
    const char* state = h.silent        ? "SILENT"
                        : st.lossAlarm  ? "LOSSY"
                        : st.retxAlarm  ? "RETX"
                        : st.latencyAlarm ? "LAT"
                                          : "OK";
    std::vector<std::string> row;
    row.push_back(name);
    row.push_back(std::to_string(h.last.seq));
    row.push_back(fmt("%.1f", now_ - h.lastHeardSec));
    row.push_back(fmt("%.1f", h.updatesPerSec));
    row.push_back(fmt("%.1f", h.lossPct));
    row.push_back(fmt("%.1f", h.reliableLossPct));
    row.push_back(fmt("%.1f", h.retransmitsPerSec));
    row.push_back(fmt("%.0f", h.bytesPerDatagram));
    row.push_back(fmt("%.1f", h.latencyP99Ms));
    if (anyPhases)
      row.push_back(h.hotPhase >= 0 ? TickPhaseHistograms::shortName(
                                          static_cast<std::size_t>(h.hotPhase))
                                    : "-");
    row.push_back(state);
    rows.push_back(std::move(row));
  }

  std::vector<std::size_t> widths(cols);
  for (std::size_t i = 0; i < cols; ++i) widths[i] = headers[i].size();
  for (const auto& row : rows)
    for (std::size_t i = 0; i < cols; ++i)
      widths[i] = std::max(widths[i], row[i].size());

  // node is left-aligned (names scan better flush left), the trailing
  // hot/state labels too; every figure is right-aligned under its header.
  auto renderRow = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t i = 0; i < cols; ++i) {
      const bool left = i == 0 || i >= cols - (anyPhases ? 2u : 1u);
      line += ' ';
      if (left) {
        line += row[i];
        line.append(widths[i] - row[i].size(), ' ');
      } else {
        line.append(widths[i] - row[i].size(), ' ');
        line += row[i];
      }
    }
    line += " |\n";
    return line;
  };

  const std::string header = renderRow(headers);
  const std::size_t lineWidth = header.size() - 1;  // sans newline
  auto borderWith = [lineWidth](const std::string& title) {
    std::string line(lineWidth, '-');
    line.front() = line.back() = '+';
    if (!title.empty() && title.size() + 4 <= lineWidth) {
      const std::size_t at = (lineWidth - title.size()) / 2;
      line.replace(at, title.size(), title);
    }
    return line + "\n";
  };
  auto padLine = [lineWidth](std::string line) {
    if (line.size() < lineWidth - 1)
      line.append(lineWidth - 1 - line.size(), ' ');
    return line + "|\n";
  };

  std::string out = borderWith(" CLUSTER HEALTH ");
  out += header;
  std::size_t rowIdx = 0;
  for (const auto& [name, st] : nodes_) {
    const NodeHealth& h = st.health;
    out += renderRow(rows[rowIdx++]);
    // Shard-balance line: per-shard routing-table entries from the v3
    // shard-load block, so a skewed class→shard hash shows up in the
    // health table instead of only in tests. Single-shard nodes have
    // nothing to balance.
    if (h.last.shardLoad.size() > 1) {
      std::string line = "|   shards ";
      std::size_t total = 0, peak = 0, shown = 0;
      for (const core::CbShardLoad& l : h.last.shardLoad) {
        const std::size_t entries = l.publications + l.subscriptions +
                                    l.inChannels + l.outChannels;
        total += entries;
        peak = std::max(peak, entries);
        if (shown < 12) {
          if (shown > 0) line += '/';
          std::snprintf(buf, sizeof(buf), "%zu", entries);
          line += buf;
        } else if (shown == 12) {
          line += "/..";
        }
        ++shown;
      }
      const double mean =
          static_cast<double>(total) /
          static_cast<double>(h.last.shardLoad.size());
      std::snprintf(buf, sizeof(buf), "  (n=%zu, peak/mean %.2f)",
                    h.last.shardLoad.size(),
                    mean > 0.0 ? static_cast<double>(peak) / mean : 1.0);
      line += buf;
      out += padLine(std::move(line));
    }
  }
  if (nodes_.empty()) out += padLine("| (no nodes heard from yet)");
  out += borderWith("");
  return out;
}

std::string HealthMonitor::renderAlarms(std::size_t maxRows) const {
  std::string out = "ALARMS";
  if (alarms_.empty()) return out + ": (none)\n";
  out += ":\n";
  const std::size_t first =
      alarms_.size() > maxRows ? alarms_.size() - maxRows : 0;
  char buf[192];
  for (std::size_t i = first; i < alarms_.size(); ++i) {
    const HealthAlarm& a = alarms_[i];
    std::snprintf(buf, sizeof(buf), "  [t=%8.2f] %-4s %-19s %-14s %s\n",
                  a.timeSec, severityName(a.severity), alarmKindName(a.kind),
                  a.node.c_str(), a.detail.c_str());
    out += buf;
  }
  return out;
}

}  // namespace cod::telemetry
