#include "telemetry/hist.hpp"

#include <algorithm>
#include <cmath>

namespace cod::telemetry {

std::size_t LogHistogram::bucketOf(double v, double lowest) {
  if (!(v > lowest)) return 0;  // also catches NaN
  // Smallest i with lowest * 2^(i/4) >= v, i.e. i = ceil(4 * log2(v/l)).
  const double i = std::ceil(static_cast<double>(kHistSubBuckets) *
                             std::log2(v / lowest));
  if (i >= static_cast<double>(kHistBuckets - 1)) return kHistBuckets - 1;
  return static_cast<std::size_t>(i);
}

double LogHistogram::bucketUpperBound(std::size_t idx, double lowest) {
  return lowest * std::exp2(static_cast<double>(idx) /
                            static_cast<double>(kHistSubBuckets));
}

void LogHistogram::record(double v) {
  if (!(v > 0.0)) v = 0.0;  // clamp negatives and NaN
  ++snap_.buckets[bucketOf(v, lowest_)];
  snap_.sum += v;
  snap_.min = snap_.count == 0 ? v : std::min(snap_.min, v);
  snap_.max = std::max(snap_.max, v);
  ++snap_.count;
}

HistogramSnapshot LogHistogram::diff(const HistogramSnapshot& cur,
                                     const HistogramSnapshot& prev) {
  HistogramSnapshot d;
  d.count = cur.count >= prev.count ? cur.count - prev.count : 0;
  d.sum = cur.sum >= prev.sum ? cur.sum - prev.sum : 0.0;
  // Interval min/max are not derivable from cumulative snapshots; the
  // bucket array is, and percentile(d, 0/1) recovers bounds from it.
  d.min = 0.0;
  d.max = cur.max;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    d.buckets[i] = cur.buckets[i] >= prev.buckets[i]
                       ? cur.buckets[i] - prev.buckets[i]
                       : 0;
  }
  return d;
}

double LogHistogram::percentile(const HistogramSnapshot& s, double p,
                                double lowest) {
  if (s.count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target sample, 1-based; p=1 lands on the last sample.
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(s.count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    seen += s.buckets[i];
    if (seen >= target) return bucketUpperBound(i, lowest);
  }
  return bucketUpperBound(kHistBuckets - 1, lowest);
}

LogHistogram& CbHistograms::at(std::size_t i) {
  switch (i) {
    case 0: return deliveryLatencySec;
    case 1: return tickDurationSec;
    case 2: return flushBytes;
    default: return retransmitDelaySec;
  }
}

const LogHistogram& CbHistograms::at(std::size_t i) const {
  return const_cast<CbHistograms*>(this)->at(i);
}

const char* CbHistograms::name(std::size_t i) {
  switch (i) {
    case 0: return "latency.deliverySec";
    case 1: return "cb.tickDurationSec";
    case 2: return "batch.flushBytes";
    default: return "reliable.retxDelaySec";
  }
}

double CbHistograms::lowestOf(std::size_t i) {
  switch (i) {
    case 0: return 1e-5;
    case 1: return 1e-6;
    case 2: return 16.0;
    default: return 1e-4;
  }
}

LogHistogram& TickPhaseHistograms::at(std::size_t i) {
  switch (i) {
    case 0: return pollDecodeSec;
    case 1: return routeSec;
    case 2: return timersSec;
    case 3: return stageSec;
    default: return flushSec;
  }
}

const LogHistogram& TickPhaseHistograms::at(std::size_t i) const {
  return const_cast<TickPhaseHistograms*>(this)->at(i);
}

const char* TickPhaseHistograms::name(std::size_t i) {
  switch (i) {
    case 0: return "phase.pollDecodeSec";
    case 1: return "phase.routeSec";
    case 2: return "phase.timersSec";
    case 3: return "phase.stageSec";
    default: return "phase.flushSec";
  }
}

const char* TickPhaseHistograms::shortName(std::size_t i) {
  switch (i) {
    case 0: return "poll";
    case 1: return "route";
    case 2: return "timer";
    case 3: return "stage";
    default: return "flush";
  }
}

}  // namespace cod::telemetry
