// TelemetryArchive — the cluster's black box (flight-data recorder).
//
// Everything the live stack observes evaporates when the process exits:
// the health table is a terminal scroll, the trace ring holds seconds,
// and a failed nightly soak leaves only whatever happened to be printed.
// The archive makes the monitor's view durable: an append-only binary
// log of every applied telemetry snapshot plus the monitor's own alarm
// edges and flight-recorder dump markers, written on the monitor host so
// ONE file records the whole cluster (the paper's instructor station is
// the natural recorder). `cod_inspect` (tools/inspect/) replays it
// offline — alarm timeline, counter evolution, CSV/JSON export — and the
// soak driver re-verifies its live verdict against the replay.
//
// File format (one segment):
//
//   [4B magic "CODA"][u8 format version]
//   repeated records:
//     [u32 payload length][u32 CRC-32 of payload][payload]
//   payload:
//     [u8 record type][f64 monoSec][f64 wallSec][type-specific body]
//
// All integers little-endian (net/wire.hpp). Bodies:
//   kSnapshot        raw encoded NodeTelemetry KEYFRAME bytes (to payload
//                    end) — self-contained, decodeTelemetry() replays it
//                    with no base, whatever encoding it arrived in live.
//   kAlarmEdge       [u8 kind][u8 severity][f64 alarm time][str node]
//                    [str detail]
//   kTraceDumpMarker [str dump path] — a flight-recorder ring was frozen
//                    to that file at this moment.
//   kLivenessPing    [str node] — the node proved alive without an
//                    applicable snapshot (delta with a lost keyframe
//                    base); replayers must refresh its liveness.
//
// Durability contract: a writer killed at ANY byte (SIGKILL mid-fwrite)
// must never poison the file. The reader treats a truncated trailer —
// fewer bytes than one record header, or fewer than the header's length
// claims — as the end of the segment (a torn tail, counted, not an
// error), and a CRC mismatch with a plausible length as one corrupt
// record to skip. An implausible length (beyond kMaxRecordBytes) means
// the framing itself is gone; the reader stops there rather than walk
// garbage.
//
// Size bound: the writer rotates segments. The active segment is
// `path`; when it crosses Config::segmentBytes it is renamed to
// `path.<n>` (n monotonically increasing) and a fresh active segment
// starts. At most Config::maxSegments rotated segments are kept — the
// oldest is deleted — so the archive is a ring of files, newest data
// always present, disk use bounded by ~(maxSegments+1)*segmentBytes.
// The reader walks `path.<n>` in ascending n, then `path`.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

namespace cod::telemetry {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes` —
/// the frame check of every archive record. Exposed for tests and any
/// future framed file format.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// First bytes of every segment file.
inline constexpr std::uint8_t kArchiveMagic[4] = {'C', 'O', 'D', 'A'};
inline constexpr std::uint8_t kArchiveFormatVersion = 1;
/// A record claiming a payload beyond this is framing corruption, not a
/// big record — the reader stops instead of seeking into garbage.
inline constexpr std::uint32_t kMaxArchiveRecordBytes = 16u << 20;

enum class ArchiveRecordType : std::uint8_t {
  kSnapshot = 1,
  kAlarmEdge = 2,
  kTraceDumpMarker = 3,
  /// A record proved a node alive without an applicable snapshot (a
  /// delta whose keyframe base the monitor lost still refreshes
  /// liveness). Without these, an offline replay would judge silence
  /// from applied snapshots alone and could raise NODE_SILENT edges the
  /// live monitor never did. Body: [str node].
  kLivenessPing = 4,
};

/// One decoded archive record. Which fields are meaningful depends on
/// `type`; the rest stay default.
struct ArchiveRecord {
  ArchiveRecordType type = ArchiveRecordType::kSnapshot;
  /// Writer's monotonic clock at append time — the monitor's own clock,
  /// so replaying against these timestamps reproduces its judgement.
  double monoSec = 0.0;
  /// Wall clock (Unix epoch seconds) at append time, for humans lining
  /// the archive up with external logs.
  double wallSec = 0.0;
  /// kSnapshot: encoded NodeTelemetry keyframe (decodeTelemetry-ready).
  std::vector<std::uint8_t> snapshot;
  /// kAlarmEdge: the monitor's HealthAlarm, flattened (kind/severity as
  /// their wire bytes so this header needs no monitor include).
  std::uint8_t alarmKind = 0;
  std::uint8_t alarmSeverity = 0;
  double alarmTimeSec = 0.0;
  std::string node;
  /// kAlarmEdge: alarm detail text. kTraceDumpMarker: the dump path.
  std::string text;
};

/// Append-side of the archive. Not thread-safe (the monitor owns it and
/// appends from its own tick path). Every append is fwrite+fflush so the
/// kernel holds the bytes the moment the call returns — a SIGKILL can
/// tear at most the record being written, which the reader tolerates.
class TelemetryArchive {
 public:
  struct Config {
    std::string path;  // active segment; rotations become path.<n>
    /// Rotate the active segment once it crosses this many bytes.
    std::size_t segmentBytes = 8u << 20;
    /// Rotated segments kept (oldest deleted beyond this). The active
    /// segment is extra, so worst-case disk is (maxSegments+1) segments.
    std::size_t maxSegments = 4;
  };

  explicit TelemetryArchive(Config cfg);
  ~TelemetryArchive();
  TelemetryArchive(const TelemetryArchive&) = delete;
  TelemetryArchive& operator=(const TelemetryArchive&) = delete;

  /// False if the active segment could not be opened — appends become
  /// no-ops (an unwritable archive must not take the monitor down).
  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return cfg_.path; }

  /// Append one encoded telemetry KEYFRAME (`encodeTelemetry` output).
  /// `monoSec` is the caller's monotonic clock; the wall clock is
  /// stamped here.
  void appendSnapshot(std::span<const std::uint8_t> bytes, double monoSec);
  void appendAlarm(std::uint8_t kind, std::uint8_t severity,
                   double alarmTimeSec, const std::string& node,
                   const std::string& detail, double monoSec);
  void appendTraceDumpMarker(const std::string& dumpPath, double monoSec);
  void appendLivenessPing(const std::string& node, double monoSec);
  /// Fully-controlled append (tests stamp their own wall clock).
  void append(const ArchiveRecord& rec);

  std::uint64_t recordsWritten() const { return recordsWritten_; }
  std::uint64_t bytesWritten() const { return bytesWritten_; }
  std::uint64_t segmentsRotated() const { return segmentsRotated_; }

  void close();

 private:
  void rotateIfNeeded();

  Config cfg_;
  std::FILE* file_ = nullptr;
  std::size_t activeBytes_ = 0;
  std::uint64_t recordsWritten_ = 0;
  std::uint64_t bytesWritten_ = 0;
  std::uint64_t segmentsRotated_ = 0;
  /// Next rotation suffix; continues past segments already on disk so a
  /// reopened archive (victim restart) never overwrites history.
  std::uint64_t nextSegmentSeq_ = 1;
};

/// Read-side: decodes a whole archive (rotated segments in order, then
/// the active one) with the torn-tail/CRC-skip tolerance documented in
/// the file header comment.
class ArchiveReader {
 public:
  explicit ArchiveReader(std::string basePath) : basePath_(std::move(basePath)) {}

  /// Every decodable record across all segments, in write order.
  std::vector<ArchiveRecord> readAll();

  /// Diagnostics from the last readAll() walk.
  std::uint64_t segmentsRead() const { return segmentsRead_; }
  std::uint64_t recordsRead() const { return recordsRead_; }
  /// Records skipped for a CRC mismatch or an undecodable body.
  std::uint64_t recordsSkipped() const { return recordsSkipped_; }
  /// Segments that ended in a partial record (writer killed mid-append).
  std::uint64_t tornTails() const { return tornTails_; }

 private:
  void readSegment(const std::string& path, std::vector<ArchiveRecord>& out);

  std::string basePath_;
  std::uint64_t segmentsRead_ = 0;
  std::uint64_t recordsRead_ = 0;
  std::uint64_t recordsSkipped_ = 0;
  std::uint64_t tornTails_ = 0;
};

}  // namespace cod::telemetry
