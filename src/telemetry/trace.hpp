// In-memory flight recorder: a fixed-capacity ring of timestamped trace
// events recorded from the CB/reliable/batch hot paths, dumped as Chrome
// `trace_event` JSON (load in chrome://tracing or https://ui.perfetto.dev)
// on demand, on SIGUSR2 (the soak node wires the signal), or automatically
// when the HealthMonitor raises a CRIT alarm.
//
// Design constraints, in order:
//  * recording must be allocation-free and cheap enough to leave compiled
//    into release builds — every hot-path call site is guarded by
//    `enabled()` and the record itself is a bounded-copy under an
//    uncontended spinlock (the CB is single-threaded; the lock exists so
//    a dump from a signal-adjacent path or a second CB sharing the
//    recorder can never tear an event);
//  * the ring holds the *last* capacity() events — a flight recorder
//    explains the seconds before an alarm, not the whole run;
//  * timestamps are the CB tick clock (seconds; virtual in tests, wall in
//    the soak), so spans line up with the sampled-update trace tags.
//
// This header is std-only so src/core and src/net can hold a recorder
// pointer without an include cycle.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cod::telemetry {

/// What happened. The dump maps kinds to Chrome trace phases: span kinds
/// render as complete slices ("X"), the rest as instants.
enum class TraceEventKind : std::uint8_t {
  kTickBegin = 0,     // instant: reserved (the kTickEnd span covers the
                      // tick; the CB no longer emits this on the hot path)
  kTickEnd,           // span: one CB tick (dur = wall duration)
  kFrameStaged,       // instant: reserved (the flush event carries the
                      // frame count; not emitted per staged frame)
  kBatchFlush,        // instant: coalescer flushed a peer — this IS the
                      // datagram send of the container (a = bytes, b = frames)
  kDatagramSend,      // instant: un-coalesced datagram handed to the
                      // transport (a = bytes)
  kDatagramRecv,      // instant: datagram received (a = bytes)
  kNackSent,          // instant: NACK emitted (a = missing count, b = channel)
  kNackReceived,      // instant: NACK handled (a = missing count, b = channel)
  kRetransmit,        // instant: frame re-staged (a = seq, b = channel)
  kInOrderRelease,    // instant: reliable frame released (a = seq, b = channel)
  kAlarmRaised,       // instant: HealthMonitor alarm edge (a = kind)
  kAlarmCleared,      // instant: HealthMonitor falling edge (a = kind)
  kUpdatePublished,   // instant: sampled update tagged at publish (a = seq)
  kSubscriberSpan,    // span: sampled update arrival -> in-order release
  kPublisherSpan,     // span: sampled update publish -> release (echo-derived)
};
inline constexpr std::size_t kTraceEventKinds = 15;

const char* traceEventName(TraceEventKind k);

/// One recorded event. `a`/`b` are kind-specific payloads (see the enum);
/// spans carry their duration in `durSec`.
struct TraceEvent {
  double tsSec = 0.0;
  double durSec = 0.0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint16_t lane = 0;  // registerLane() id; renders as the tid/track
  TraceEventKind kind = TraceEventKind::kTickBegin;
};

class TraceRecorder {
 public:
  /// `capacity` is rounded up to the next power of two (at least 16) so
  /// the ring index is a mask, not a divide; the ring is preallocated
  /// here so record() never touches the heap.
  explicit TraceRecorder(std::size_t capacity = 16384);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Hot paths check this before paying for a record() call.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Name a lane (one per CB, typically the node name); events recorded
  /// with the returned id render as their own named track in the viewer.
  /// Setup-time only (allocates).
  std::uint16_t registerLane(const std::string& name);

  /// Record one event (no-op while disabled). Thread-safe; allocation-free.
  void record(TraceEventKind kind, std::uint16_t lane, double tsSec,
              double durSec = 0.0, std::uint64_t a = 0, std::uint64_t b = 0);

  /// The retained events, oldest first. Thread-safe.
  std::vector<TraceEvent> snapshotEvents() const;

  /// Chrome trace_event JSON of the retained events (plus lane-name
  /// metadata). Loads in chrome://tracing and Perfetto.
  std::string dumpJson() const;

  /// dumpJson() to a file; false on I/O failure.
  bool dumpToFile(const std::string& path) const;

  std::size_t capacity() const { return ring_.size(); }
  /// Events ever recorded (>= capacity means the ring has wrapped).
  std::uint64_t recorded() const;

 private:
  void lock() const;
  void unlock() const;

  mutable std::atomic_flag busy_ = ATOMIC_FLAG_INIT;
  std::atomic<bool> enabled_{true};
  std::vector<TraceEvent> ring_;  // size is a power of two
  std::uint64_t mask_ = 0;        // ring_.size() - 1
  std::uint64_t head_ = 0;  // total recorded; next slot = head_ & mask_
  std::vector<std::string> lanes_;
};

}  // namespace cod::telemetry
