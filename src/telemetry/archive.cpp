#include "telemetry/archive.hpp"

#include <dirent.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "net/wire.hpp"

namespace cod::telemetry {

namespace {

/// Fixed payload prefix every record type shares:
/// [u8 type][f64 monoSec][f64 wallSec].
constexpr std::size_t kPayloadHeaderBytes = 1 + 8 + 8;
/// [u32 length][u32 crc] ahead of every payload.
constexpr std::size_t kFrameHeaderBytes = 8;

double wallNowSec() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

const std::array<std::uint32_t, 256>& crcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// Split `basePath` into directory + filename (for the segment scan).
void splitPath(const std::string& basePath, std::string& dir,
               std::string& file) {
  const auto slash = basePath.find_last_of('/');
  if (slash == std::string::npos) {
    dir = ".";
    file = basePath;
  } else {
    dir = slash == 0 ? "/" : basePath.substr(0, slash);
    file = basePath.substr(slash + 1);
  }
}

/// Rotated segments of `basePath` on disk (`<basePath>.<n>`), as
/// (sequence, full path), ascending by sequence. Suffixes may be sparse —
/// the writer deletes the oldest past its keep bound.
std::vector<std::pair<std::uint64_t, std::string>> listRotatedSegments(
    const std::string& basePath) {
  std::string dir, file;
  splitPath(basePath, dir, file);
  std::vector<std::pair<std::uint64_t, std::string>> segs;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return segs;
  const std::string prefix = file + ".";
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0)
      continue;
    const std::string suffix = name.substr(prefix.size());
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos)
      continue;
    try {
      segs.emplace_back(std::stoull(suffix), dir + "/" + name);
    } catch (const std::exception&) {
      // Suffix of digits too long for u64 — not one of ours.
    }
  }
  ::closedir(d);
  std::sort(segs.begin(), segs.end());
  return segs;
}

void encodePayloadHeader(net::WireWriter& w, const ArchiveRecord& rec) {
  w.u8(static_cast<std::uint8_t>(rec.type));
  w.f64(rec.monoSec);
  w.f64(rec.wallSec);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  const auto& table = crcTable();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

TelemetryArchive::TelemetryArchive(Config cfg) : cfg_(std::move(cfg)) {
  // Continue rotation numbering past whatever a previous incarnation left
  // on disk, and rotate (never truncate) a non-empty active segment a
  // crashed writer left behind — restart must not erase the history it
  // exists to explain.
  const auto existing = listRotatedSegments(cfg_.path);
  if (!existing.empty()) nextSegmentSeq_ = existing.back().first + 1;
  if (std::FILE* old = std::fopen(cfg_.path.c_str(), "rb")) {
    std::fseek(old, 0, SEEK_END);
    const long size = std::ftell(old);
    std::fclose(old);
    if (size > 0) {
      const std::string rotated =
          cfg_.path + "." + std::to_string(nextSegmentSeq_++);
      std::rename(cfg_.path.c_str(), rotated.c_str());
    }
  }
  file_ = std::fopen(cfg_.path.c_str(), "wb");
  if (file_ == nullptr) return;
  std::fwrite(kArchiveMagic, 1, sizeof(kArchiveMagic), file_);
  std::fputc(kArchiveFormatVersion, file_);
  std::fflush(file_);
  activeBytes_ = sizeof(kArchiveMagic) + 1;
}

TelemetryArchive::~TelemetryArchive() { close(); }

void TelemetryArchive::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void TelemetryArchive::appendSnapshot(std::span<const std::uint8_t> bytes,
                                      double monoSec) {
  ArchiveRecord rec;
  rec.type = ArchiveRecordType::kSnapshot;
  rec.monoSec = monoSec;
  rec.wallSec = wallNowSec();
  rec.snapshot.assign(bytes.begin(), bytes.end());
  append(rec);
}

void TelemetryArchive::appendAlarm(std::uint8_t kind, std::uint8_t severity,
                                   double alarmTimeSec,
                                   const std::string& node,
                                   const std::string& detail, double monoSec) {
  ArchiveRecord rec;
  rec.type = ArchiveRecordType::kAlarmEdge;
  rec.monoSec = monoSec;
  rec.wallSec = wallNowSec();
  rec.alarmKind = kind;
  rec.alarmSeverity = severity;
  rec.alarmTimeSec = alarmTimeSec;
  rec.node = node;
  rec.text = detail;
  append(rec);
}

void TelemetryArchive::appendTraceDumpMarker(const std::string& dumpPath,
                                             double monoSec) {
  ArchiveRecord rec;
  rec.type = ArchiveRecordType::kTraceDumpMarker;
  rec.monoSec = monoSec;
  rec.wallSec = wallNowSec();
  rec.text = dumpPath;
  append(rec);
}

void TelemetryArchive::appendLivenessPing(const std::string& node,
                                          double monoSec) {
  ArchiveRecord rec;
  rec.type = ArchiveRecordType::kLivenessPing;
  rec.monoSec = monoSec;
  rec.wallSec = wallNowSec();
  rec.node = node;
  append(rec);
}

void TelemetryArchive::append(const ArchiveRecord& rec) {
  if (file_ == nullptr) return;
  net::WireWriter payload;
  encodePayloadHeader(payload, rec);
  switch (rec.type) {
    case ArchiveRecordType::kSnapshot:
      payload.raw(rec.snapshot);
      break;
    case ArchiveRecordType::kAlarmEdge:
      payload.u8(rec.alarmKind);
      payload.u8(rec.alarmSeverity);
      payload.f64(rec.alarmTimeSec);
      payload.str(rec.node);
      payload.str(rec.text);
      break;
    case ArchiveRecordType::kTraceDumpMarker:
      payload.str(rec.text);
      break;
    case ArchiveRecordType::kLivenessPing:
      payload.str(rec.node);
      break;
  }
  // One fwrite for the whole frame, then fflush: after append() returns
  // the kernel owns the bytes, so SIGKILL can tear only the record that
  // was mid-write — the torn tail the reader is built to stop at.
  net::WireWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(crc32(payload.bytes()));
  frame.raw(payload.bytes());
  const auto& bytes = frame.bytes();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    // Disk full / IO error: stop archiving rather than take the monitor
    // down or write an unreadable interleaving.
    close();
    return;
  }
  std::fflush(file_);
  activeBytes_ += bytes.size();
  bytesWritten_ += bytes.size();
  ++recordsWritten_;
  rotateIfNeeded();
}

void TelemetryArchive::rotateIfNeeded() {
  if (activeBytes_ < cfg_.segmentBytes || file_ == nullptr) return;
  std::fclose(file_);
  file_ = nullptr;
  const std::uint64_t seq = nextSegmentSeq_++;
  const std::string rotated = cfg_.path + "." + std::to_string(seq);
  if (std::rename(cfg_.path.c_str(), rotated.c_str()) != 0) return;
  ++segmentsRotated_;
  if (seq > cfg_.maxSegments) {
    // Delete everything at or below the keep horizon, not just the one
    // sequence this rotation pushes out: sequences are sparse after a
    // restart continued past deleted history.
    const std::uint64_t horizon = seq - cfg_.maxSegments;
    for (const auto& [oldSeq, oldPath] : listRotatedSegments(cfg_.path))
      if (oldSeq <= horizon && oldSeq != seq) std::remove(oldPath.c_str());
  }
  file_ = std::fopen(cfg_.path.c_str(), "wb");
  if (file_ == nullptr) return;
  std::fwrite(kArchiveMagic, 1, sizeof(kArchiveMagic), file_);
  std::fputc(kArchiveFormatVersion, file_);
  std::fflush(file_);
  activeBytes_ = sizeof(kArchiveMagic) + 1;
}

std::vector<ArchiveRecord> ArchiveReader::readAll() {
  segmentsRead_ = recordsRead_ = recordsSkipped_ = tornTails_ = 0;
  std::vector<ArchiveRecord> out;
  for (const auto& [seq, path] : listRotatedSegments(basePath_))
    readSegment(path, out);
  readSegment(basePath_, out);
  return out;
}

void ArchiveReader::readSegment(const std::string& path,
                                std::vector<ArchiveRecord>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return;
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 64 * 1024> chunk;
  std::size_t n;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0)
    bytes.insert(bytes.end(), chunk.begin(), chunk.begin() + n);
  std::fclose(f);

  if (bytes.size() < sizeof(kArchiveMagic) + 1 ||
      std::memcmp(bytes.data(), kArchiveMagic, sizeof(kArchiveMagic)) != 0 ||
      bytes[sizeof(kArchiveMagic)] != kArchiveFormatVersion)
    return;  // not an archive segment (or a future format): contribute nothing
  ++segmentsRead_;

  std::size_t pos = sizeof(kArchiveMagic) + 1;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeaderBytes) {
      ++tornTails_;  // writer died inside the frame header
      return;
    }
    net::WireReader hdr(
        std::span<const std::uint8_t>(bytes).subspan(pos, kFrameHeaderBytes));
    const std::uint32_t length = *hdr.u32();
    const std::uint32_t crc = *hdr.u32();
    if (length < kPayloadHeaderBytes || length > kMaxArchiveRecordBytes) {
      // Framing itself is implausible: stop, don't walk garbage.
      ++recordsSkipped_;
      return;
    }
    if (bytes.size() - pos - kFrameHeaderBytes < length) {
      ++tornTails_;  // writer died inside the payload
      return;
    }
    const auto payload = std::span<const std::uint8_t>(bytes).subspan(
        pos + kFrameHeaderBytes, length);
    pos += kFrameHeaderBytes + length;
    if (crc32(payload) != crc) {
      ++recordsSkipped_;  // one corrupt record; the framing still walks
      continue;
    }
    net::WireReader r(payload);
    ArchiveRecord rec;
    const auto type = r.u8();
    const auto mono = r.f64();
    const auto wall = r.f64();
    if (!type || !mono || !wall) {
      ++recordsSkipped_;
      continue;
    }
    rec.type = static_cast<ArchiveRecordType>(*type);
    rec.monoSec = *mono;
    rec.wallSec = *wall;
    bool bodyOk = true;
    switch (rec.type) {
      case ArchiveRecordType::kSnapshot: {
        const auto body = payload.subspan(kPayloadHeaderBytes);
        rec.snapshot.assign(body.begin(), body.end());
        break;
      }
      case ArchiveRecordType::kAlarmEdge: {
        const auto kind = r.u8();
        const auto sev = r.u8();
        const auto at = r.f64();
        auto node = r.str();
        auto detail = r.str();
        if (!kind || !sev || !at || !node || !detail || !r.atEnd()) {
          bodyOk = false;
          break;
        }
        rec.alarmKind = *kind;
        rec.alarmSeverity = *sev;
        rec.alarmTimeSec = *at;
        rec.node = std::move(*node);
        rec.text = std::move(*detail);
        break;
      }
      case ArchiveRecordType::kTraceDumpMarker: {
        auto text = r.str();
        if (!text || !r.atEnd()) {
          bodyOk = false;
          break;
        }
        rec.text = std::move(*text);
        break;
      }
      case ArchiveRecordType::kLivenessPing: {
        auto node = r.str();
        if (!node || !r.atEnd()) {
          bodyOk = false;
          break;
        }
        rec.node = std::move(*node);
        break;
      }
      default:
        // CRC-valid record of a type this reader predates: skip it, keep
        // walking — forward compatibility for future record kinds.
        bodyOk = false;
        break;
    }
    if (!bodyOk) {
      ++recordsSkipped_;
      continue;
    }
    ++recordsRead_;
    out.push_back(std::move(rec));
  }
}

}  // namespace cod::telemetry
