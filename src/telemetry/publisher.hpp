// TelemetryPublisher — a Logical Process that exports its computer's
// health over the Communication Backbone itself.
//
// Dogfooding is the point: the snapshot is an ordinary attribute update on
// a reserved object class (cod.telemetry), discovered and routed like any
// other publication, and staged through the same per-peer send coalescer —
// so at the default 1 Hz cadence telemetry adds at most one datagram per
// subscribed peer per interval, and usually zero extra datagrams because
// the record rides a kBatch container that was leaving anyway.
//
// Snapshots alternate between keyframes (full counter table) and deltas
// against the last keyframe (see node_telemetry.hpp for why the base is
// the keyframe and not the previous snapshot). The channel is best effort
// by design: a lost snapshot is superseded by the next one, and
// retransmitting last second's counters would only add traffic exactly
// when the network is already in trouble.
#pragma once

#include <cstdint>
#include <optional>

#include "core/cb.hpp"
#include "telemetry/registry.hpp"

namespace cod::telemetry {

/// Knobs of one node's telemetry export. Embedded by application configs
/// (e.g. CraneSimulatorApp::Config::telemetry).
struct TelemetryConfig {
  /// Master off-switch. Disabled, bind() is a no-op: no publication, no
  /// discovery replies, no snapshots — wire traffic is byte-identical to
  /// a build without telemetry (asserted in tests/test_telemetry.cpp).
  bool enabled = true;
  /// Snapshot cadence. ~1 Hz is plenty for a human-watched health table
  /// and keeps the overhead unmeasurable next to 16 fps state traffic.
  double intervalSec = 1.0;
  /// Every Nth snapshot is a keyframe; the rest are deltas against the
  /// last keyframe. 1 disables deltas entirely.
  std::uint32_t keyframeInterval = 10;
};

class TelemetryPublisher : public core::LogicalProcess {
 public:
  explicit TelemetryPublisher(TelemetryConfig cfg = {});

  /// Attach to the node's CB and publish the reserved class. No-op when
  /// disabled (see TelemetryConfig::enabled).
  void bind(core::CommunicationBackbone& cb);

  void step(double now) override;

  /// Force one snapshot out now regardless of cadence (exam start/stop
  /// markers, tests).
  void publishNow(double now);

  /// Teardown snapshot: force one final KEYFRAME out now and flush it.
  /// Call right before the node stops ticking (shutdown, BYE): the
  /// closing counters must be decodable on their own — a trailing delta
  /// would be worthless to any monitor that lost its keyframe, and no
  /// later snapshot will ever heal it.
  void publishFinal(double now);

  std::uint64_t snapshotsPublished() const { return published_; }
  std::uint64_t keyframesPublished() const { return keyframes_; }
  const TelemetryConfig& config() const { return cfg_; }

 private:
  TelemetryConfig cfg_;
  core::CommunicationBackbone* cb_ = nullptr;
  std::optional<StatRegistry> registry_;
  core::PublicationHandle pub_ = core::kInvalidHandle;
  std::optional<NodeTelemetry> lastKeyframe_;
  std::uint32_t sinceKeyframe_ = 0;
  std::size_t lastFanOut_ = 0;
  std::uint64_t lastEstablished_ = 0;
  double lastPublishSec_ = -1e300;
  std::uint64_t published_ = 0;
  std::uint64_t keyframes_ = 0;
};

}  // namespace cod::telemetry
