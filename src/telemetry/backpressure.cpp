#include "telemetry/backpressure.hpp"

#include <algorithm>

namespace cod::telemetry {

BackpressureGovernor::BackpressureGovernor(HealthMonitor& monitor,
                                           BackpressureConfig cfg)
    : core::LogicalProcess("backpressure"), mon_(&monitor), cfg_(cfg) {}

void BackpressureGovernor::bind(core::CommunicationBackbone& cb) {
  cb_ = &cb;
  cb.attach(*this);
}

void BackpressureGovernor::apply(const std::string& node, PeerState& st) {
  // The alarm names a node; the CB thins an endpoint. The monitor's
  // latest snapshot for that node carries its address — until one has
  // arrived there is nothing to thin anyway (no snapshot means no
  // channel carrying our updates has been confirmed via telemetry).
  const NodeHealth* h = mon_->node(node);
  if (h == nullptr) return;
  cb_->setPeerSendFactor(h->last.addr, st.factor);
}

void BackpressureGovernor::step(double now) {
  if (cb_ == nullptr) return;
  const std::vector<HealthAlarm>& feed = mon_->alarms();
  for (; alarmCursor_ < feed.size(); ++alarmCursor_) {
    const HealthAlarm& a = feed[alarmCursor_];
    if (a.node == cb_->name()) continue;  // never thin toward ourselves
    bool onset = false;
    bool cleared = false;
    switch (a.kind) {
      case HealthAlarm::Kind::kMailboxOverflow: {
        PeerState& st = peers_[a.node];
        onset = !st.overflow;
        st.overflow = true;
        break;
      }
      case HealthAlarm::Kind::kRetransmitStorm: {
        PeerState& st = peers_[a.node];
        onset = !st.retxStorm;
        st.retxStorm = true;
        break;
      }
      case HealthAlarm::Kind::kLatencySpike: {
        PeerState& st = peers_[a.node];
        onset = !st.latency;
        st.latency = true;
        break;
      }
      case HealthAlarm::Kind::kOverflowCleared: {
        const auto it = peers_.find(a.node);
        if (it != peers_.end()) {
          it->second.overflow = false;
          cleared = true;
        }
        break;
      }
      case HealthAlarm::Kind::kRetransmitCleared: {
        const auto it = peers_.find(a.node);
        if (it != peers_.end()) {
          it->second.retxStorm = false;
          cleared = true;
        }
        break;
      }
      case HealthAlarm::Kind::kLatencyCleared: {
        const auto it = peers_.find(a.node);
        if (it != peers_.end()) {
          it->second.latency = false;
          cleared = true;
        }
        break;
      }
      default:
        break;  // silence, loss spikes and channel alarms: not actuated
    }
    if (onset) {
      PeerState& st = peers_[a.node];
      st.factor = std::max(cfg_.minSendFactor, st.factor * cfg_.thinStep);
      st.lastStepSec = now;
      ++thinSteps_;
      apply(a.node, st);
    } else if (cleared) {
      PeerState& st = peers_[a.node];
      // The hysteresis clock starts when the LAST trigger kind clears.
      if (!st.anyActive()) st.clearedAtSec = now;
    }
  }
  // Stepped recovery for peers that have stayed clear long enough.
  for (auto& [node, st] : peers_) {
    if (st.factor >= 1.0 || st.anyActive()) continue;
    if (now - st.clearedAtSec < cfg_.recoverHoldSec) continue;
    if (now - st.lastStepSec < cfg_.recoverIntervalSec) continue;
    st.factor = std::min(1.0, st.factor * cfg_.recoverStep);
    st.lastStepSec = now;
    ++recoverSteps_;
    apply(node, st);
  }
}

const BackpressureGovernor::PeerState* BackpressureGovernor::peer(
    const std::string& node) const {
  const auto it = peers_.find(node);
  return it == peers_.end() ? nullptr : &it->second;
}

}  // namespace cod::telemetry
