// StatRegistry — where a node's scattered counters become one record.
//
// The CB keeps CbStats (with the reliable-layer and send-coalescer
// blocks), the transport keeps its own TransportStats, and per-channel
// health lives in the CB's channel tables. The registry is the one place
// that knows how to gather all of them into a NodeTelemetry snapshot with
// the node's identity and a monotonic sequence number — the publisher
// encodes what the registry returns, nothing more.
#pragma once

#include "core/cb.hpp"
#include "telemetry/node_telemetry.hpp"

namespace cod::telemetry {

class StatRegistry {
 public:
  /// The registry observes the CB (and through it the transport); it
  /// never mutates either. The CB must outlive the registry.
  explicit StatRegistry(const core::CommunicationBackbone& cb) : cb_(&cb) {}

  /// Snapshot everything now. Sequence numbers start at 1 and increment
  /// per call, so a monitor can order snapshots and spot publisher
  /// restarts (the sequence resets).
  NodeTelemetry snapshot(double now);

  std::uint64_t lastSeq() const { return nextSeq_ - 1; }

 private:
  const core::CommunicationBackbone* cb_;
  std::uint64_t nextSeq_ = 1;
};

}  // namespace cod::telemetry
