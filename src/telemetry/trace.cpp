#include "telemetry/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cod::telemetry {

const char* traceEventName(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kTickBegin: return "tick begin";
    case TraceEventKind::kTickEnd: return "tick";
    case TraceEventKind::kFrameStaged: return "frame staged";
    case TraceEventKind::kBatchFlush: return "batch flush";
    case TraceEventKind::kDatagramSend: return "datagram send";
    case TraceEventKind::kDatagramRecv: return "datagram recv";
    case TraceEventKind::kNackSent: return "nack sent";
    case TraceEventKind::kNackReceived: return "nack received";
    case TraceEventKind::kRetransmit: return "retransmit";
    case TraceEventKind::kInOrderRelease: return "in-order release";
    case TraceEventKind::kAlarmRaised: return "alarm raised";
    case TraceEventKind::kAlarmCleared: return "alarm cleared";
    case TraceEventKind::kUpdatePublished: return "update published";
    case TraceEventKind::kSubscriberSpan: return "update hold+release";
    case TraceEventKind::kPublisherSpan: return "update e2e";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity) {
  std::size_t cap = 16;
  while (cap < capacity) cap <<= 1;
  ring_.resize(cap);
  mask_ = cap - 1;
}

void TraceRecorder::lock() const {
  while (busy_.test_and_set(std::memory_order_acquire)) {
    // Spin: the critical sections are a ~48-byte copy or a bounded read;
    // contention is test-only (the CB is single-threaded per recorder).
  }
}

void TraceRecorder::unlock() const { busy_.clear(std::memory_order_release); }

std::uint16_t TraceRecorder::registerLane(const std::string& name) {
  lock();
  lanes_.push_back(name);
  const auto id = static_cast<std::uint16_t>(lanes_.size() - 1);
  unlock();
  return id;
}

void TraceRecorder::record(TraceEventKind kind, std::uint16_t lane,
                           double tsSec, double durSec, std::uint64_t a,
                           std::uint64_t b) {
  if (!enabled()) return;
  lock();
  TraceEvent& e = ring_[head_ & mask_];
  e.tsSec = tsSec;
  e.durSec = durSec;
  e.a = a;
  e.b = b;
  e.lane = lane;
  e.kind = kind;
  ++head_;
  unlock();
}

std::uint64_t TraceRecorder::recorded() const {
  lock();
  const std::uint64_t n = head_;
  unlock();
  return n;
}

std::vector<TraceEvent> TraceRecorder::snapshotEvents() const {
  lock();
  const std::uint64_t n = head_;
  const std::size_t cap = ring_.size();
  const std::size_t kept = static_cast<std::size_t>(std::min<std::uint64_t>(n, cap));
  std::vector<TraceEvent> out;
  out.reserve(kept);
  for (std::size_t i = 0; i < kept; ++i)
    out.push_back(ring_[(n - kept + i) % cap]);
  unlock();
  return out;
}

std::string TraceRecorder::dumpJson() const {
  const std::vector<TraceEvent> events = snapshotEvents();
  lock();
  const std::vector<std::string> lanes = lanes_;
  unlock();

  std::string out;
  out.reserve(128 + events.size() * 96);
  out += "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  const auto append = [&](const char* s) {
    if (!first) out += ',';
    first = false;
    out += s;
  };
  // Lane names as thread_name metadata so the viewer labels the tracks.
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    std::string name = lanes[i];
    // Trace-viewer JSON: keep lane names printable-ASCII-safe.
    for (char& c : name)
      if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
        c = '_';
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%zu,\"args\":{\"name\":\"%s\"}}",
                  i, name.c_str());
    append(buf);
  }
  for (const TraceEvent& e : events) {
    // Sanitize: a recorder shared across threads can in principle hold a
    // half-initialized tail slot; never emit an event the viewer chokes on.
    if (static_cast<std::uint8_t>(e.kind) >= kTraceEventKinds) continue;
    if (!std::isfinite(e.tsSec) || !std::isfinite(e.durSec)) continue;
    const double ts = e.tsSec * 1e6;  // trace_event ts is microseconds
    const bool span = e.kind == TraceEventKind::kTickEnd ||
                      e.kind == TraceEventKind::kSubscriberSpan ||
                      e.kind == TraceEventKind::kPublisherSpan;
    if (span) {
      const double dur = std::max(e.durSec, 0.0) * 1e6;
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                    "\"pid\":1,\"tid\":%u,\"args\":{\"a\":%llu,\"b\":%llu}}",
                    traceEventName(e.kind), ts, dur, e.lane,
                    static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(e.b));
    } else {
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"s\":\"t\","
                    "\"pid\":1,\"tid\":%u,\"args\":{\"a\":%llu,\"b\":%llu}}",
                    traceEventName(e.kind), ts, e.lane,
                    static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(e.b));
    }
    append(buf);
  }
  out += "]}";
  return out;
}

bool TraceRecorder::dumpToFile(const std::string& path) const {
  const std::string json = dumpJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

}  // namespace cod::telemetry
