#include "telemetry/registry.hpp"

namespace cod::telemetry {

NodeTelemetry StatRegistry::snapshot(double now) {
  NodeTelemetry t;
  t.seq = nextSeq_++;
  t.node = cb_->name();
  t.addr = cb_->address();
  t.nodeTimeSec = now;
  t.cb = cb_->stats();
  if (const net::TransportStats* ts = cb_->transportStats()) t.transport = *ts;
  t.channels = cb_->channelHealth();
  for (std::size_t i = 0; i < CbHistograms::kCount; ++i)
    t.hists[i] = cb_->histograms().at(i).snapshot();
  t.shardLoad.reserve(cb_->shardCount());
  for (std::size_t i = 0; i < cb_->shardCount(); ++i)
    t.shardLoad.push_back(cb_->shardLoad(static_cast<std::uint32_t>(i)));
  if (cb_->config().phaseProfile) {
    t.phaseProfiling = true;  // record encodes as wire v5 (v6 if async)
    for (std::size_t i = 0; i < kTickPhaseCount; ++i)
      t.phases[i] = cb_->phaseHistograms().at(i).snapshot();
  }
  if (const net::AsyncTransport* eng = cb_->asyncEngine()) {
    t.asyncNet = true;  // record encodes as wire v6
    const net::AsyncEngineStats es = eng->engineStats();
    for (std::size_t i = 0; i < net::kEngineCounterCount; ++i)
      t.engine[i] = net::engineCounterValue(es, i);
  }
  return t;
}

}  // namespace cod::telemetry
