#include "telemetry/registry.hpp"

namespace cod::telemetry {

NodeTelemetry StatRegistry::snapshot(double now) {
  NodeTelemetry t;
  t.seq = nextSeq_++;
  t.node = cb_->name();
  t.addr = cb_->address();
  t.nodeTimeSec = now;
  t.cb = cb_->stats();
  if (const net::TransportStats* ts = cb_->transportStats()) t.transport = *ts;
  t.channels = cb_->channelHealth();
  return t;
}

}  // namespace cod::telemetry
