#include "telemetry/publisher.hpp"

namespace cod::telemetry {

TelemetryPublisher::TelemetryPublisher(TelemetryConfig cfg)
    : core::LogicalProcess("telemetry"), cfg_(cfg) {}

void TelemetryPublisher::bind(core::CommunicationBackbone& cb) {
  if (!cfg_.enabled) return;
  cb_ = &cb;
  cb.attach(*this);
  registry_.emplace(cb);
  pub_ = cb.publishObjectClass(*this, kTelemetryClass);
  // The export is the control plane of the backpressure loop: a governor
  // on this node may thin best-effort traffic toward a struggling peer,
  // but never THIS stream — a thinned telemetry feed can phase-lock
  // against the keyframe cadence and starve the peer's monitors of
  // decodable snapshots exactly when they matter most.
  cb.setPublicationThinningExempt(pub_, true);
}

void TelemetryPublisher::step(double now) {
  if (pub_ == core::kInvalidHandle) return;
  if (now - lastPublishSec_ < cfg_.intervalSec) return;
  publishNow(now);
}

void TelemetryPublisher::publishNow(double now) {
  if (pub_ == core::kInvalidHandle) return;
  // The snapshot is taken before this update perturbs the counters, so a
  // record never counts its own datagram.
  NodeTelemetry t = registry_->snapshot(now);
  // A subscriber that just connected has no keyframe to decode deltas
  // against — it would stay blind until the schedule produced one. Any
  // change in the fan-out forces a keyframe instead; the cumulative
  // established-channel counter additionally catches a subscriber *swap*
  // (one leaves, another joins between publishes), which leaves the net
  // count unchanged. (The counter is CB-wide, so unrelated publications
  // connecting cost at worst a spurious keyframe — harmless.)
  const std::size_t fanOut = cb_->channelCount(pub_);
  const std::uint64_t established = cb_->stats().channelsEstablishedOut;
  const bool newSubscriber =
      fanOut != lastFanOut_ || established > lastEstablished_;
  lastFanOut_ = fanOut;
  lastEstablished_ = established;
  const bool keyframe = !lastKeyframe_ || cfg_.keyframeInterval <= 1 ||
                        sinceKeyframe_ >= cfg_.keyframeInterval - 1 ||
                        newSubscriber;
  std::vector<std::uint8_t> bytes =
      keyframe ? encodeTelemetry(t) : encodeTelemetryDelta(t, *lastKeyframe_);
  if (keyframe) {
    lastKeyframe_ = std::move(t);
    sinceKeyframe_ = 0;
    ++keyframes_;
  } else {
    ++sinceKeyframe_;
  }
  core::AttributeSet attrs;
  attrs.set(kTelemetryAttr, std::move(bytes));
  cb_->updateAttributeValues(pub_, attrs, now);
  lastPublishSec_ = now;
  ++published_;
}

void TelemetryPublisher::publishFinal(double now) {
  if (pub_ == core::kInvalidHandle) return;
  // Dropping the keyframe base forces publishNow onto the keyframe path
  // (a publisher cannot delta against a base it no longer holds).
  lastKeyframe_.reset();
  publishNow(now);
  // The record must actually leave: there may be no next tick to flush
  // the coalescer for us.
  cb_->flushBatches();
}

}  // namespace cod::telemetry
