#include "telemetry/node_telemetry.hpp"

#include <algorithm>
#include <array>

#include "net/wire.hpp"

namespace cod::telemetry {

namespace {

/// One row of the flattened counter table. The accessor returns a
/// reference into the record, so the same table serves get, set and name.
struct CounterField {
  const char* name;
  std::uint64_t& (*ref)(NodeTelemetry&);
};

#define COD_COUNTER(label, expr)                              \
  CounterField {                                              \
    label, +[](NodeTelemetry& t) -> std::uint64_t& { return t.expr; } \
  }

/// The wire order. Append-only within a version: inserting or reordering
/// rows silently re-labels every counter on the wire, so any change here
/// must bump kTelemetryVersion.
constexpr std::array kCounterFields{
    COD_COUNTER("cb.broadcastsSent", cb.broadcastsSent),
    COD_COUNTER("cb.acknowledgesSent", cb.acknowledgesSent),
    COD_COUNTER("cb.channelsEstablishedOut", cb.channelsEstablishedOut),
    COD_COUNTER("cb.channelsEstablishedIn", cb.channelsEstablishedIn),
    COD_COUNTER("cb.updatesSent", cb.updatesSent),
    COD_COUNTER("cb.updatesDelivered", cb.updatesDelivered),
    COD_COUNTER("cb.updatesLocalFastPath", cb.updatesLocalFastPath),
    COD_COUNTER("cb.duplicatesDropped", cb.duplicatesDropped),
    COD_COUNTER("cb.unknownChannelDrops", cb.unknownChannelDrops),
    COD_COUNTER("cb.malformedDrops", cb.malformedDrops),
    COD_COUNTER("cb.channelsTimedOut", cb.channelsTimedOut),
    COD_COUNTER("cb.mailboxOverflows", cb.mailboxOverflows),
    // v4: flow control / backpressure.
    COD_COUNTER("cb.updatesThinned", cb.updatesThinned),
    COD_COUNTER("reliable.framesBuffered", cb.reliable.framesBuffered),
    COD_COUNTER("reliable.framesPruned", cb.reliable.framesPruned),
    COD_COUNTER("reliable.sendWindowEvictions",
                cb.reliable.sendWindowEvictions),
    COD_COUNTER("reliable.retransmitsSent", cb.reliable.retransmitsSent),
    COD_COUNTER("reliable.dataFramesSent", cb.reliable.dataFramesSent),
    COD_COUNTER("reliable.nacksReceived", cb.reliable.nacksReceived),
    COD_COUNTER("reliable.windowAcksReceived",
                cb.reliable.windowAcksReceived),
    COD_COUNTER("reliable.nacksSent", cb.reliable.nacksSent),
    COD_COUNTER("reliable.windowAcksSent", cb.reliable.windowAcksSent),
    COD_COUNTER("reliable.outOfOrderBuffered",
                cb.reliable.outOfOrderBuffered),
    COD_COUNTER("reliable.gapsHealed", cb.reliable.gapsHealed),
    COD_COUNTER("reliable.duplicatesDropped", cb.reliable.duplicatesDropped),
    COD_COUNTER("reliable.reorderOverflows", cb.reliable.reorderOverflows),
    COD_COUNTER("reliable.gapsAbandoned", cb.reliable.gapsAbandoned),
    // v4: flow control / backpressure.
    COD_COUNTER("reliable.updatesBlocked", cb.reliable.updatesBlocked),
    COD_COUNTER("reliable.degradeSkipsSent", cb.reliable.degradeSkipsSent),
    COD_COUNTER("reliable.windowSplits", cb.reliable.windowSplits),
    COD_COUNTER("reliable.windowMerges", cb.reliable.windowMerges),
    COD_COUNTER("reliable.peerDuplicatesReported",
                cb.reliable.peerDuplicatesReported),
    COD_COUNTER("batch.datagramsCoalesced", cb.batch.datagramsCoalesced),
    COD_COUNTER("batch.framesCoalesced", cb.batch.framesCoalesced),
    COD_COUNTER("batch.soloFlushes", cb.batch.soloFlushes),
    COD_COUNTER("batch.oversizeSends", cb.batch.oversizeSends),
    COD_COUNTER("batch.budgetFlushes", cb.batch.budgetFlushes),
    COD_COUNTER("batch.containerBytesSent", cb.batch.containerBytesSent),
    COD_COUNTER("batch.datagramsUnpacked", cb.batch.datagramsUnpacked),
    COD_COUNTER("batch.framesUnpacked", cb.batch.framesUnpacked),
    COD_COUNTER("batch.peerSlotsReclaimed", cb.batch.peerSlotsReclaimed),
    // v4: flow control / backpressure.
    COD_COUNTER("batch.adaptiveFlushes", cb.batch.adaptiveFlushes),
    COD_COUNTER("transport.packetsSent", transport.packetsSent),
    COD_COUNTER("transport.bytesSent", transport.bytesSent),
    COD_COUNTER("transport.packetsReceived", transport.packetsReceived),
    COD_COUNTER("transport.bytesReceived", transport.bytesReceived),
    COD_COUNTER("transport.packetsDropped", transport.packetsDropped),
    COD_COUNTER("transport.framesSent", transport.framesSent),
    COD_COUNTER("transport.framesReceived", transport.framesReceived),
    COD_COUNTER("transport.framesDropped", transport.framesDropped),
};

#undef COD_COUNTER

constexpr std::uint8_t kFlagDelta = 0x01;
/// v6 only: the tick-phase block is present. In v4/v5 phase presence is
/// implied by the version byte; v6 (async engine on) must carry either
/// combination of engine + phases, so phases became a flag there.
constexpr std::uint8_t kFlagPhases = 0x02;

/// Channel flags byte: direction, QoS and liveness packed together.
constexpr std::uint8_t kChanOutbound = 0x01;
constexpr std::uint8_t kChanReliable = 0x02;
constexpr std::uint8_t kChanLive = 0x04;

void encodeHeader(net::WireWriter& w, const NodeTelemetry& t,
                  std::uint8_t flags) {
  // The phase-profiler block is the only v4 -> v5 delta, so a record
  // without phase data IS a v4 record — byte-identical to what a v4
  // encoder emits. An async-engine node emits v6 (engine block at the
  // end, phase block flagged). Mixed clusters interop as long as
  // profiling/async nodes' monitors are current.
  if (t.asyncNet) {
    w.u8(kTelemetryVersionAsync);
    if (t.phaseProfiling) flags |= kFlagPhases;
  } else {
    w.u8(t.phaseProfiling ? kTelemetryVersion : kTelemetryVersionPhaseless);
  }
  w.u8(flags);
  w.u64(t.seq);
  w.str(t.node);
  w.u32(t.addr.host);
  w.u16(t.addr.port);
  w.f64(t.nodeTimeSec);
}

void encodeChannels(net::WireWriter& w, const NodeTelemetry& t) {
  w.u16(static_cast<std::uint16_t>(
      std::min<std::size_t>(t.channels.size(), 0xFFFF)));
  std::size_t n = 0;
  for (const core::CbChannelHealth& ch : t.channels) {
    if (n++ == 0xFFFF) break;
    w.u32(ch.channelId);
    w.str(ch.className);
    std::uint8_t flags = 0;
    if (ch.outbound) flags |= kChanOutbound;
    if (ch.qos == net::QosClass::kReliableOrdered) flags |= kChanReliable;
    if (ch.live) flags |= kChanLive;
    w.u8(flags);
    w.f64(ch.ageSec);
    w.u64(ch.windowFrames);
    w.u64(ch.retransmits);
    w.u64(ch.cumAcked);
  }
}

// ---- v3 histogram block --------------------------------------------------
//
// Per histogram: the scalar summary in full, then the bucket array as a
// sparse (index, count) list — most of the 96 buckets of a log histogram
// are empty, and in a delta only the buckets that changed since the base
// keyframe are listed. Indices are strictly ascending on the wire so a
// decoder can reject duplicates and garbage in one pass.

void encodeHistogram(net::WireWriter& w, const HistogramSnapshot& s,
                     const HistogramSnapshot* base) {
  w.u64(s.count);
  w.f64(s.sum);
  w.f64(s.min);
  w.f64(s.max);
  std::uint16_t listed = 0;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    const std::uint64_t prev = base != nullptr ? base->buckets[i] : 0;
    if (s.buckets[i] != prev) ++listed;
  }
  w.u16(listed);
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    const std::uint64_t prev = base != nullptr ? base->buckets[i] : 0;
    if (s.buckets[i] == prev) continue;
    w.u16(static_cast<std::uint16_t>(i));
    w.u64(s.buckets[i]);
  }
}

bool decodeHistogram(net::WireReader& r, HistogramSnapshot& s,
                     const HistogramSnapshot* base) {
  const auto count = r.u64();
  const auto sum = r.f64();
  const auto min = r.f64();
  const auto max = r.f64();
  const auto listed = r.u16();
  if (!count || !sum || !min || !max || !listed) return false;
  s = base != nullptr ? *base : HistogramSnapshot{};
  s.count = *count;
  s.sum = *sum;
  s.min = *min;
  s.max = *max;
  std::uint32_t lastIdx = 0;
  bool first = true;
  for (std::uint16_t i = 0; i < *listed; ++i) {
    const auto idx = r.u16();
    const auto cnt = r.u64();
    if (!idx || !cnt) return false;
    if (*idx >= kHistBuckets) return false;
    if (!first && *idx <= lastIdx) return false;  // must ascend strictly
    first = false;
    lastIdx = *idx;
    s.buckets[*idx] = *cnt;
  }
  return true;
}

void encodeHistograms(net::WireWriter& w, const NodeTelemetry& t,
                      const NodeTelemetry* base) {
  w.u16(static_cast<std::uint16_t>(CbHistograms::kCount));
  for (std::size_t i = 0; i < CbHistograms::kCount; ++i)
    encodeHistogram(w, t.hists[i], base != nullptr ? &base->hists[i] : nullptr);
}

bool decodeHistograms(net::WireReader& r, NodeTelemetry& t,
                      const NodeTelemetry* base) {
  const auto count = r.u16();
  // This version defines the histogram set exactly, like the counter table.
  if (!count || *count != CbHistograms::kCount) return false;
  for (std::size_t i = 0; i < CbHistograms::kCount; ++i) {
    if (!decodeHistogram(r, t.hists[i],
                         base != nullptr ? &base->hists[i] : nullptr))
      return false;
  }
  return true;
}

// ---- v5 tick-phase block -------------------------------------------------
//
// Same sparse layout as the v3 histogram block, kTickPhaseCount entries
// in TickPhase order. Present iff the record's version byte is 5.

void encodePhases(net::WireWriter& w, const NodeTelemetry& t,
                  const NodeTelemetry* base) {
  w.u16(static_cast<std::uint16_t>(kTickPhaseCount));
  for (std::size_t i = 0; i < kTickPhaseCount; ++i)
    encodeHistogram(w, t.phases[i],
                    base != nullptr ? &base->phases[i] : nullptr);
}

bool decodePhases(net::WireReader& r, NodeTelemetry& t,
                  const NodeTelemetry* base) {
  const auto count = r.u16();
  // v5 defines the phase set exactly, like the v3 histogram set.
  if (!count || *count != kTickPhaseCount) return false;
  for (std::size_t i = 0; i < kTickPhaseCount; ++i) {
    if (!decodeHistogram(r, t.phases[i],
                         base != nullptr ? &base->phases[i] : nullptr))
      return false;
  }
  return true;
}

// ---- v3 shard-load block -------------------------------------------------

void encodeShardLoad(net::WireWriter& w, const NodeTelemetry& t) {
  w.u16(static_cast<std::uint16_t>(
      std::min<std::size_t>(t.shardLoad.size(), 0xFFFF)));
  std::size_t n = 0;
  for (const core::CbShardLoad& l : t.shardLoad) {
    if (n++ == 0xFFFF) break;
    w.u32(static_cast<std::uint32_t>(l.publications));
    w.u32(static_cast<std::uint32_t>(l.subscriptions));
    w.u32(static_cast<std::uint32_t>(l.inChannels));
    w.u32(static_cast<std::uint32_t>(l.outChannels));
  }
}

bool decodeShardLoad(net::WireReader& r, NodeTelemetry& t) {
  const auto count = r.u16();
  if (!count) return false;
  t.shardLoad.clear();
  t.shardLoad.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    const auto pubs = r.u32();
    const auto subs = r.u32();
    const auto inCh = r.u32();
    const auto outCh = r.u32();
    if (!pubs || !subs || !inCh || !outCh) return false;
    t.shardLoad.push_back(core::CbShardLoad{*pubs, *subs, *inCh, *outCh});
  }
  return true;
}

// ---- v6 async-engine block -----------------------------------------------
//
// [u16 count][u64 x count] in net::engineCounterName order, always in
// full — nine words is cheaper than delta bookkeeping. Present iff the
// version byte is 6, always at the very end of the record.

void encodeEngine(net::WireWriter& w, const NodeTelemetry& t) {
  w.u16(static_cast<std::uint16_t>(net::kEngineCounterCount));
  for (std::size_t i = 0; i < net::kEngineCounterCount; ++i) w.u64(t.engine[i]);
}

bool decodeEngine(net::WireReader& r, NodeTelemetry& t) {
  const auto count = r.u16();
  // v6 defines the engine counter set exactly, like the counter table.
  if (!count || *count != net::kEngineCounterCount) return false;
  for (std::size_t i = 0; i < net::kEngineCounterCount; ++i) {
    const auto v = r.u64();
    if (!v) return false;
    t.engine[i] = *v;
  }
  return true;
}

bool decodeChannels(net::WireReader& r, NodeTelemetry& t) {
  const auto count = r.u16();
  if (!count) return false;
  t.channels.clear();
  t.channels.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    core::CbChannelHealth ch;
    const auto id = r.u32();
    auto cls = r.str();
    const auto flags = r.u8();
    const auto age = r.f64();
    const auto window = r.u64();
    const auto retx = r.u64();
    const auto acked = r.u64();
    if (!id || !cls || !flags || !age || !window || !retx || !acked)
      return false;
    ch.channelId = *id;
    ch.className = std::move(*cls);
    ch.outbound = (*flags & kChanOutbound) != 0;
    ch.qos = (*flags & kChanReliable) != 0 ? net::QosClass::kReliableOrdered
                                           : net::QosClass::kBestEffort;
    ch.live = (*flags & kChanLive) != 0;
    ch.ageSec = *age;
    ch.windowFrames = *window;
    ch.retransmits = *retx;
    ch.cumAcked = *acked;
    t.channels.push_back(std::move(ch));
  }
  return true;
}

}  // namespace

std::size_t counterCount() { return kCounterFields.size(); }

const char* counterName(std::size_t i) {
  return i < kCounterFields.size() ? kCounterFields[i].name : nullptr;
}

std::uint64_t counterValue(const NodeTelemetry& t, std::size_t i) {
  // The table stores mutable accessors; reading through them is safe.
  return kCounterFields[i].ref(const_cast<NodeTelemetry&>(t));
}

void setCounterValue(NodeTelemetry& t, std::size_t i, std::uint64_t v) {
  kCounterFields[i].ref(t) = v;
}

std::vector<std::uint8_t> encodeTelemetry(const NodeTelemetry& t) {
  net::WireWriter w;
  encodeHeader(w, t, 0);
  w.u16(static_cast<std::uint16_t>(kCounterFields.size()));
  for (std::size_t i = 0; i < kCounterFields.size(); ++i)
    w.u64(counterValue(t, i));
  encodeChannels(w, t);
  encodeHistograms(w, t, nullptr);
  encodeShardLoad(w, t);
  if (t.phaseProfiling) encodePhases(w, t, nullptr);
  if (t.asyncNet) encodeEngine(w, t);
  return w.take();
}

std::vector<std::uint8_t> encodeTelemetryDelta(const NodeTelemetry& t,
                                               const NodeTelemetry& base) {
  net::WireWriter w;
  encodeHeader(w, t, kFlagDelta);
  w.u64(base.seq);
  std::uint16_t changed = 0;
  for (std::size_t i = 0; i < kCounterFields.size(); ++i)
    if (counterValue(t, i) != counterValue(base, i)) ++changed;
  w.u16(changed);
  for (std::size_t i = 0; i < kCounterFields.size(); ++i) {
    if (counterValue(t, i) == counterValue(base, i)) continue;
    w.u16(static_cast<std::uint16_t>(i));
    w.u64(counterValue(t, i));
  }
  encodeChannels(w, t);
  encodeHistograms(w, t, &base);
  encodeShardLoad(w, t);
  if (t.phaseProfiling) encodePhases(w, t, &base);
  if (t.asyncNet) encodeEngine(w, t);
  return w.take();
}

std::optional<TelemetryHeader> peekTelemetryHeader(
    std::span<const std::uint8_t> bytes) {
  net::WireReader r(bytes);
  const auto version = r.u8();
  const auto flags = r.u8();
  if (!version || !flags) return std::nullopt;
  if (*version != kTelemetryVersion &&
      *version != kTelemetryVersionPhaseless &&
      *version != kTelemetryVersionAsync)
    return std::nullopt;
  const std::uint8_t known = *version == kTelemetryVersionAsync
                                 ? (kFlagDelta | kFlagPhases)
                                 : kFlagDelta;
  if ((*flags & ~known) != 0) return std::nullopt;
  const auto seq = r.u64();
  auto node = r.str();
  const auto host = r.u32();
  const auto port = r.u16();
  const auto time = r.f64();
  if (!seq || !node || !host || !port || !time) return std::nullopt;
  TelemetryHeader h;
  h.seq = *seq;
  h.node = std::move(*node);
  h.addr = {*host, *port};
  h.nodeTimeSec = *time;
  if ((*flags & kFlagDelta) != 0) {
    const auto baseSeq = r.u64();
    if (!baseSeq) return std::nullopt;
    h.baseSeq = *baseSeq;
  }
  return h;
}

std::optional<NodeTelemetry> decodeTelemetry(
    std::span<const std::uint8_t> bytes, const NodeTelemetry* base) {
  net::WireReader r(bytes);
  const auto version = r.u8();
  const auto flags = r.u8();
  if (!version || !flags) return std::nullopt;
  if (*version != kTelemetryVersion &&
      *version != kTelemetryVersionPhaseless &&
      *version != kTelemetryVersionAsync)
    return std::nullopt;
  const bool async = *version == kTelemetryVersionAsync;
  if ((*flags & ~(async ? (kFlagDelta | kFlagPhases) : kFlagDelta)) != 0)
    return std::nullopt;
  const bool delta = (*flags & kFlagDelta) != 0;
  const bool hasPhases = async ? (*flags & kFlagPhases) != 0
                               : *version == kTelemetryVersion;

  NodeTelemetry t;
  const auto seq = r.u64();
  auto node = r.str();
  const auto host = r.u32();
  const auto port = r.u16();
  const auto time = r.f64();
  if (!seq || !node || !host || !port || !time) return std::nullopt;
  t.seq = *seq;
  t.node = std::move(*node);
  t.addr = {*host, *port};
  t.nodeTimeSec = *time;

  if (delta) {
    const auto baseSeq = r.u64();
    if (!baseSeq) return std::nullopt;
    // A delta without its base is undecodable by construction — the
    // monitor waits for the next keyframe rather than inventing counters.
    if (base == nullptr || base->seq != *baseSeq) return std::nullopt;
    t.cb = base->cb;
    t.transport = base->transport;
    const auto changed = r.u16();
    if (!changed) return std::nullopt;
    for (std::uint16_t i = 0; i < *changed; ++i) {
      const auto idx = r.u16();
      const auto value = r.u64();
      if (!idx || !value) return std::nullopt;
      if (*idx >= kCounterFields.size()) return std::nullopt;
      setCounterValue(t, *idx, *value);
    }
  } else {
    const auto count = r.u16();
    // Version 1 defines the counter table exactly; a keyframe claiming a
    // different size is from no encoder of this version.
    if (!count || *count != kCounterFields.size()) return std::nullopt;
    for (std::size_t i = 0; i < kCounterFields.size(); ++i) {
      const auto value = r.u64();
      if (!value) return std::nullopt;
      setCounterValue(t, i, *value);
    }
  }

  if (!decodeChannels(r, t)) return std::nullopt;
  if (!decodeHistograms(r, t, delta ? base : nullptr)) return std::nullopt;
  if (!decodeShardLoad(r, t)) return std::nullopt;
  if (hasPhases) {
    t.phaseProfiling = true;
    if (!decodePhases(r, t, delta ? base : nullptr)) return std::nullopt;
  }
  if (async) {
    t.asyncNet = true;
    if (!decodeEngine(r, t)) return std::nullopt;
  }
  // Trailing bytes mean corruption (or a newer, larger format lying about
  // its version): reject wholesale.
  if (!r.atEnd()) return std::nullopt;
  return t;
}

}  // namespace cod::telemetry
