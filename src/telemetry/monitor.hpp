// HealthMonitor — the cluster-wide aggregation end of the telemetry
// subsystem.
//
// A monitor is a Logical Process that subscribes to the reserved
// cod.telemetry class, so it can run on any computer of the cluster (the
// instructor station runs one for its health table; the scenario computer
// runs one to annotate the exam debrief). From each node's snapshot
// stream it tracks liveness/staleness, reassembles delta records against
// their keyframes, derives rates from successive snapshots (updates/s,
// inbound loss %, retransmits/s, bytes per datagram) and raises
// threshold alarms:
//
//   kNodeSilent         no snapshot for N publish intervals
//   kNodeRecovered      a silent node spoke again
//   kLossSpike          inbound frame loss between snapshots over threshold
//   kRetransmitStorm    reliable retransmit rate over threshold
//   kMailboxOverflow    a node dropped reflections on a full mailbox
//   kChannelWindowPinned     one channel's retransmit window sat at the
//                            configured cap across two snapshots
//   kChannelRetransmitStorm  one channel's retransmit rate over threshold
//
// Alarms are edge-triggered (one per onset, not one per interval), carry
// a severity, and every onset kind has a matching *Cleared kind raised on
// the condition's falling edge — so a consumer tailing the feed sees the
// full envelope of an incident, not just its start. The feed is
// append-only; consumers drain by index.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/cb.hpp"
#include "telemetry/archive.hpp"
#include "telemetry/node_telemetry.hpp"
#include "telemetry/trace.hpp"

namespace cod::telemetry {

/// Alarm thresholds and the publish cadence staleness is judged against.
struct MonitorConfig {
  /// The publishers' TelemetryConfig::intervalSec, as expected here.
  double expectedIntervalSec = 1.0;
  /// A node is silent after this many expected intervals without a
  /// snapshot.
  double silentAfterIntervals = 3.0;
  /// Inbound frame loss between two snapshots that counts as a spike, %.
  double lossSpikePct = 10.0;
  /// Reliable retransmit rate that counts as a storm, frames/second.
  double retransmitStormPerSec = 50.0;
  /// Raise on any mailbox overflow growth (off: overflows only show in
  /// the table).
  bool alarmOnMailboxOverflow = true;
  /// A reliable channel whose send window holds at least this many frames
  /// across two consecutive snapshots is "pinned": its subscriber is not
  /// acking and the publisher is about to stall. Matches the reliable
  /// layer's default window cap.
  std::uint32_t windowPinnedFrames = 512;
  /// Per-channel retransmit rate that counts as a channel storm,
  /// frames/second. Lower than the node-wide storm threshold: one channel
  /// carrying all of a node's retransmits is a routing/path problem even
  /// when the node total looks tolerable.
  double channelRetransmitStormPerSec = 20.0;
  /// Interval delivery-latency p99 (milliseconds) that counts as a
  /// latency spike. The figure comes from diffing the node's cumulative
  /// delivery-latency histogram between snapshots.
  double latencySpikeP99Ms = 250.0;
  /// Minimum latency samples in the interval before the p99 is judged at
  /// all — 1-in-N sampling makes a single outlier meaningless.
  std::uint64_t latencyMinSamples = 10;
  /// Automatic CRIT-triggered flight-recorder dumps are spaced at least
  /// this far apart. A flapping CRIT (a slow node oscillating around the
  /// silence threshold) would otherwise dump the ring — megabytes of
  /// synchronous file I/O — on every edge, stalling the monitor's own
  /// tick loop hard enough to storm its reliable channels.
  double flightDumpMinIntervalSec = 5.0;
};

struct HealthAlarm {
  enum class Kind : std::uint8_t {
    kNodeSilent = 0,
    kNodeRecovered = 1,
    kLossSpike = 2,
    kRetransmitStorm = 3,
    kMailboxOverflow = 4,
    // Falling edges of the threshold alarms above.
    kLossCleared = 5,
    kRetransmitCleared = 6,
    kOverflowCleared = 7,
    // Per-channel health, from the channel block each snapshot ships.
    kChannelWindowPinned = 8,
    kChannelRetransmitStorm = 9,
    kChannelWindowCleared = 10,
    kChannelRetransmitCleared = 11,
    // Interval delivery-latency p99 over threshold (v3 histogram block).
    kLatencySpike = 12,
    kLatencyCleared = 13,
  };
  /// How urgently the instructor station should surface an alarm. Clears
  /// and recoveries are kInfo; threshold breaches are kWarning; a silent
  /// node or a pinned window (both mean data has stopped flowing) are
  /// kCritical.
  enum class Severity : std::uint8_t {
    kInfo = 0,
    kWarning = 1,
    kCritical = 2,
  };
  Kind kind = Kind::kNodeSilent;
  Severity severity = Severity::kWarning;
  double timeSec = 0.0;  // monitor clock at detection
  std::string node;
  std::string detail;
};

const char* alarmKindName(HealthAlarm::Kind k);
/// The fixed kind → severity mapping (what raise() stamps).
HealthAlarm::Severity alarmSeverity(HealthAlarm::Kind k);
const char* severityName(HealthAlarm::Severity s);

/// Loss estimate from reliable-layer counters alone: the fraction of data
/// transmissions that had to be re-sent. Every lost reliable attempt is
/// eventually retransmitted (NACK-driven for gaps, tail timeout for burst
/// ends), so retx / (data + retx) converges on the path's datagram loss
/// rate. This is the only loss observable a real-socket deployment has —
/// a kernel UDP socket cannot attribute drops, so transport.framesDropped
/// stays 0 there and the frame-accounting estimate reads a meaningless
/// 0%. Both arguments are counters (cumulative or interval deltas).
double reliableLossEstimatePct(std::uint64_t dataFramesSent,
                               std::uint64_t retransmitsSent);

/// Duplicate-corrected loss estimate. Subscribers report (WINDOW_ACK dup
/// blocks → reliable.peerDuplicatesReported) how many frames arrived
/// twice: each of those retransmits was a tail-RTO or NACK race that the
/// original actually survived, not a loss. Subtracting them removes the
/// bias that overstates loss on low-rate streams, where a frame's ack
/// routinely loses the race against the retransmit timeout:
///   losses  = retransmitsSent − duplicatesReported   (floored at 0)
///   percent = 100 × losses / (dataFramesSent + retransmitsSent)
/// All arguments are counters (cumulative or interval deltas, but all
/// three from the same interval).
double reliableLossEstimatePct(std::uint64_t dataFramesSent,
                               std::uint64_t retransmitsSent,
                               std::uint64_t duplicatesReported);

/// What the monitor knows about one node.
struct NodeHealth {
  NodeTelemetry last;          // latest applied snapshot
  double lastHeardSec = 0.0;   // monitor clock when it arrived
  bool silent = false;
  std::uint64_t snapshotsApplied = 0;
  std::uint64_t deltasRejected = 0;  // lost their keyframe; healed later
  std::uint64_t staleDropped = 0;    // out-of-order or repeated sequence
  /// Rates over the last pair of applied snapshots (0 until two arrive).
  double updatesPerSec = 0.0;
  /// Inbound loss from transport frame accounting. Exact on SimNetwork
  /// (the omniscient LAN attributes every dropped frame); pinned at 0 on
  /// real sockets, where drops cannot be attributed.
  double lossPct = 0.0;
  /// Loss inferred from the node's reliable-layer counters over the same
  /// interval (reliableLossEstimatePct) — the real-socket observable.
  double reliableLossPct = 0.0;
  double retransmitsPerSec = 0.0;
  double bytesPerDatagram = 0.0;
  /// Interval delivery-latency percentiles (milliseconds) from diffing
  /// the node's cumulative latency histogram between the last two
  /// snapshots; 0 until an interval contains samples.
  double latencyP50Ms = 0.0;
  double latencyP90Ms = 0.0;
  double latencyP99Ms = 0.0;
  double latencyMaxMs = 0.0;
  std::uint64_t latencySamples = 0;  // samples in that interval
  /// Interval p99 (milliseconds) of each tick phase, TickPhase order,
  /// from diffing the node's v5 phase histograms between snapshots.
  /// All-zero for nodes not running the phase profiler.
  std::array<double, kTickPhaseCount> phaseP99Ms{};
  /// The phase the node spent most interval time in
  /// (TickPhaseHistograms::shortName index), -1 without phase data.
  int hotPhase = -1;
  /// The loss figure alarms and the peak-loss annotation use: frame
  /// accounting where the transport attributes drops, else the
  /// reliable-layer estimate.
  double effectiveLossPct() const { return std::max(lossPct, reliableLossPct); }
};

class HealthMonitor : public core::LogicalProcess {
 public:
  explicit HealthMonitor(MonitorConfig cfg = {});

  /// Attach to a CB and subscribe cluster-wide.
  void bind(core::CommunicationBackbone& cb);

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet& attrs,
                              double timestamp) override;
  void step(double now) override;

  /// Replay hook (cod_inspect feeds archive kLivenessPing records here):
  /// `node` proved alive at the monitor's current clock without an
  /// applicable snapshot — refresh its liveness, raising the recovered
  /// edge if it was silent, exactly as the live rejected-delta path does.
  void noteLiveness(const std::string& node);

  /// Names of every node heard from so far, in name order (the display
  /// order of the health table).
  std::vector<std::string> nodeNames() const;
  std::size_t nodeCount() const { return nodes_.size(); }
  /// Health of one node, null if never heard from.
  const NodeHealth* node(const std::string& name) const;

  /// Append-only alarm feed; consumers remember the index they drained to.
  const std::vector<HealthAlarm>& alarms() const { return alarms_; }

  /// Worst inbound loss observed on any node between two snapshots, and
  /// which node it was — the exam debrief's "peak loss" annotation.
  double peakLossPct() const { return peakLossPct_; }
  const std::string& peakLossNode() const { return peakLossNode_; }

  /// Snapshots that failed to decode outright (corruption); rejected
  /// deltas are tracked per node instead.
  std::uint64_t undecodableDropped() const { return undecodable_; }

  /// ASCII health table (one row per node) for the instructor station.
  std::string renderTable() const;
  /// The newest `maxRows` alarms, oldest first.
  std::string renderAlarms(std::size_t maxRows = 8) const;

  /// Wire a flight recorder to the alarm feed: every alarm edge is
  /// recorded as a trace event, and a CRITICAL onset automatically dumps
  /// the recorder's ring to `dumpPath` (Chrome trace JSON) — the moment
  /// an operator most wants the preceding seconds of hot-path history.
  /// Pass an empty path to record edges without auto-dumping.
  void attachFlightRecorder(TraceRecorder* recorder, std::string dumpPath);
  /// How many CRIT-triggered dumps were written (test/tooling hook).
  std::uint64_t flightRecorderDumps() const { return flightDumps_; }
  /// Path CRIT dump number `seq` (0-based) is written to: the configured
  /// path for the first, then a ".2", ".3", ... inserted before the last
  /// extension so earlier incidents' dumps survive later ones.
  static std::string flightDumpPath(const std::string& base,
                                    std::uint64_t seq);

  /// Wire a flight-data archive (not owned) to this monitor: every
  /// applied snapshot is re-encoded as a keyframe and appended, along
  /// with every alarm edge and CRIT dump marker — the durable record
  /// cod_inspect replays offline. Null detaches.
  void attachArchive(TelemetryArchive* archive) { archive_ = archive; }

 private:
  /// Edge-trigger state for one channel of one node (keyed by channel id
  /// in NodeState). `pinnedPrev` implements the two-consecutive-snapshot
  /// requirement for window-pinned: a single full window is normal under
  /// bursty load, a window that never drains is not.
  struct ChannelAlarmState {
    bool pinnedPrev = false;
    bool windowAlarm = false;
    bool retxAlarm = false;
  };

  struct NodeState {
    NodeHealth health;
    std::optional<NodeTelemetry> keyframe;  // delta base
    bool lossAlarm = false;
    bool retxAlarm = false;
    bool overflowAlarm = false;
    bool latencyAlarm = false;
    std::map<std::uint32_t, ChannelAlarmState> channelAlarms;
  };

  void applySnapshot(NodeTelemetry&& t, bool isKeyframe);
  /// `dtSec` is the snapshot-interval length, computed ONCE in
  /// applySnapshot from the seq-paired nodeTimeSec of the two snapshots
  /// being diffed — never recomputed per derivation, so every rate in one
  /// interval divides by the same (positive) denominator.
  void deriveRates(NodeState& st, const NodeTelemetry& prev,
                   const NodeTelemetry& cur, double dtSec);
  /// Per-channel window/retransmit alarms from two successive channel
  /// blocks; prunes state for channels that vanished.
  void deriveChannelAlarms(NodeState& st, const NodeTelemetry& prev,
                           const NodeTelemetry& cur, double dtSec);
  void raise(HealthAlarm::Kind kind, const std::string& nodeName,
             std::string detail);

  MonitorConfig cfg_;
  core::CommunicationBackbone* cb_ = nullptr;
  core::SubscriptionHandle sub_ = core::kInvalidHandle;
  std::map<std::string, NodeState> nodes_;
  std::vector<HealthAlarm> alarms_;
  double now_ = 0.0;
  double peakLossPct_ = 0.0;
  std::string peakLossNode_;
  std::uint64_t undecodable_ = 0;
  TraceRecorder* recorder_ = nullptr;  // not owned
  std::string recorderDumpPath_;
  std::uint16_t recorderLane_ = 0;
  std::uint64_t flightDumps_ = 0;
  double lastFlightDumpSec_ = 0.0;
  TelemetryArchive* archive_ = nullptr;  // not owned
};

}  // namespace cod::telemetry
