// Log-bucketed HDR-style histograms for the latency/size observables the
// telemetry record exports (wire v3): delivery latency, tick duration,
// flush size and retransmit delay.
//
// A LogHistogram buckets values geometrically — 4 sub-buckets per octave,
// kHistBuckets buckets total — above a per-histogram lowest bound, so a
// fixed 96-counter array resolves p50/p90/p99 within ~19% relative error
// across a ~10^7 dynamic range. Recording is allocation-free and branch-
// light (one log2 on a double), cheap enough for the CB hot paths that
// feed it every tick.
//
// Snapshots are cumulative, like the telemetry counters: the monitor
// derives *interval* percentiles by diffing the bucket arrays of two
// consecutive snapshots (LogHistogram::diff), exactly as it derives rates
// from counter deltas.
//
// This header is deliberately std-only (no core/net/telemetry includes)
// so any layer — src/net's reliable window, src/core's tick loop — can
// hold a histogram pointer without an include cycle.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace cod::telemetry {

/// Bucket count of every histogram on the wire and in memory. Fixed so
/// the v3 telemetry block has one layout; 96 buckets at 4 per octave span
/// 24 octaves (~1.7e7x) above the lowest bound.
inline constexpr std::size_t kHistBuckets = 96;

/// Sub-buckets per octave (power of two ratio 2^(1/4) between bucket
/// upper edges).
inline constexpr std::size_t kHistSubBuckets = 4;

/// One histogram state, cumulative since process start — the type that
/// rides in the telemetry record and is diffed by the monitor.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 while count == 0
  double max = 0.0;
  std::array<std::uint64_t, kHistBuckets> buckets{};

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Log-bucketed histogram with a fixed lowest bound. Values at or below
/// `lowest` land in bucket 0; bucket i holds values in
/// (lowest*2^((i-1)/4), lowest*2^(i/4)].
class LogHistogram {
 public:
  explicit LogHistogram(double lowest) : lowest_(lowest) {}

  /// Record one sample. Negative values are clamped to 0 (a skewed clock
  /// must not corrupt the distribution).
  void record(double v);

  const HistogramSnapshot& snapshot() const { return snap_; }
  double lowest() const { return lowest_; }
  std::uint64_t count() const { return snap_.count; }

  /// Upper edge of bucket `idx` for a histogram with `lowest` bound — the
  /// conservative (never-underestimating) value a bucket represents.
  static double bucketUpperBound(std::size_t idx, double lowest);

  /// Bucket index for value `v` (the smallest bucket whose upper edge is
  /// >= v, clamped to the top bucket).
  static std::size_t bucketOf(double v, double lowest);

  /// Interval histogram: `cur` minus `prev`, counts clamped at zero (a
  /// restarted publisher resets its counters; the monitor resets its base
  /// on restart detection, so clamping only guards corrupt input).
  static HistogramSnapshot diff(const HistogramSnapshot& cur,
                                const HistogramSnapshot& prev);

  /// Value at quantile `p` in [0,1] from a snapshot's buckets (upper edge
  /// of the bucket where the cumulative count crosses p*count; p=1 gives
  /// the highest non-empty bucket's edge). 0 when the snapshot is empty.
  static double percentile(const HistogramSnapshot& s, double p,
                           double lowest);

 private:
  double lowest_;
  HistogramSnapshot snap_;
};

/// The CB's histogram set, one instance per CommunicationBackbone,
/// exported in the v3 telemetry record in this fixed order (append-only,
/// like the counter table — decoders key on index).
struct CbHistograms {
  /// Publish -> in-order-release latency of sampled reliable updates, as
  /// measured by the publisher from the WINDOW_ACK echo (includes the
  /// echo's return-path transit — a documented overestimate).
  LogHistogram deliveryLatencySec{1e-5};
  /// Wall-clock duration of CommunicationBackbone::tick().
  LogHistogram tickDurationSec{1e-6};
  /// Datagram sizes leaving the send coalescer (solo and container).
  LogHistogram flushBytes{16.0};
  /// Sender-side delay between successive (re)transmissions of the same
  /// reliable frame — how long a loss went unrepaired.
  LogHistogram retransmitDelaySec{1e-4};

  static constexpr std::size_t kCount = 4;
  /// Index of deliveryLatencySec in at()/the wire order — the histogram
  /// the monitor's latency column and LATENCY_SPIKE alarm read.
  static constexpr std::size_t kDeliveryLatencyIdx = 0;

  LogHistogram& at(std::size_t i);
  const LogHistogram& at(std::size_t i) const;
  /// Stable wire/table name of histogram `i`.
  static const char* name(std::size_t i);
  /// Lowest bound of histogram `i` — decoders need it to turn bucket
  /// indices back into values.
  static double lowestOf(std::size_t i);
};

/// The measured phases one CommunicationBackbone::tick splits into when
/// Config::phaseProfile is on. Fixed wire order (telemetry v5 phase
/// block) — append-only, like the counter table.
enum class TickPhase : std::size_t {
  kPollDecode = 0,  // transport receive loop minus routing time
  kRoute = 1,       // dispatchMessage: decode routing + table updates
  kTimers = 2,      // runTimers: broadcasts, retransmits, keep-alives
  kStage = 3,       // mailbox delivery + LP step (update staging)
  kFlush = 4,       // flushBatches: coalesced sends
};

inline constexpr std::size_t kTickPhaseCount = 5;

/// Per-phase wall-clock histograms, one set per CommunicationBackbone.
/// All share one lowest bound (phases are all sub-tick durations) so the
/// v5 phase block needs no per-phase bound on the wire.
struct TickPhaseHistograms {
  static constexpr double kLowest = 1e-7;

  LogHistogram pollDecodeSec{kLowest};
  LogHistogram routeSec{kLowest};
  LogHistogram timersSec{kLowest};
  LogHistogram stageSec{kLowest};
  LogHistogram flushSec{kLowest};

  LogHistogram& at(std::size_t i);
  const LogHistogram& at(std::size_t i) const;
  /// Stable wire/table name of phase `i`.
  static const char* name(std::size_t i);
  /// Short label for dense table columns ("poll", "route", ...).
  static const char* shortName(std::size_t i);
  static double lowestOf(std::size_t) { return kLowest; }
};

}  // namespace cod::telemetry
