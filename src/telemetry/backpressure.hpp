// BackpressureGovernor — closes the telemetry loop into flow control.
//
// The telemetry subsystem already tells every node how its peers are
// doing: each node publishes its counters on cod.telemetry, and a
// HealthMonitor raises edge-triggered alarms when a node degrades
// (MAILBOX_OVERFLOW: it is dropping reflections on a full mailbox;
// RETX_STORM: its reliable channels are churning re-sends; LATENCY_SPIKE:
// its interval delivery p99 blew the threshold). Until now those alarms
// only informed humans. The governor is the actuator: a Logical Process
// that tails the monitor's alarm feed and, for each struggling peer,
// thins this node's best-effort update rate toward it
// (CommunicationBackbone::setPeerSendFactor) — publishing less AT a node
// that cannot keep up, instead of burying it deeper.
//
// Only best-effort (newest-wins) channels are thinned: skipping one of
// those updates is exactly the QoS contract (the next update supersedes
// it), while a reliable stream's ordering contract is protected by the
// overflow policy and the per-channel window split instead
// (net/reliable.hpp).
//
// The response is stepped with hysteresis, mirroring the alarm feed's
// edge-triggering:
//   * each onset alarm multiplies the peer's send factor by `thinStep`,
//     floored at `minSendFactor` (never silence a peer entirely — its
//     recovery is detected through the same telemetry stream);
//   * recovery starts only after every trigger kind has raised its
//     paired CLEARED alarm AND `recoverHoldSec` has passed since the
//     last clear (a peer that flaps between overflow and clear must not
//     be re-flooded on every clear edge);
//   * recovery is also stepped: the factor multiplies by `recoverStep`
//     every `recoverIntervalSec` until it reaches 1.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/cb.hpp"
#include "telemetry/monitor.hpp"

namespace cod::telemetry {

/// Tunables of the alarm→send-rate control loop.
struct BackpressureConfig {
  /// Floor of the per-peer send factor: thinning never goes below this,
  /// so a struggling peer keeps receiving (thinned) state and its
  /// recovery stays observable.
  double minSendFactor = 0.25;
  /// Multiplier applied to the peer's factor on each trigger-alarm
  /// onset (MAILBOX_OVERFLOW / RETX_STORM / LATENCY_SPIKE).
  double thinStep = 0.5;
  /// Hysteresis: recovery begins only this long after the last trigger
  /// kind cleared. Guards against re-flooding a flapping peer.
  double recoverHoldSec = 2.0;
  /// Stepped recovery: factor multiplier per recovery step, and the
  /// spacing between steps.
  double recoverStep = 2.0;
  double recoverIntervalSec = 0.5;
};

class BackpressureGovernor : public core::LogicalProcess {
 public:
  explicit BackpressureGovernor(HealthMonitor& monitor,
                                BackpressureConfig cfg = {});

  /// Attach to the node's CB (the one whose send rates this governor
  /// actuates). The monitor may be bound to the same CB or another one
  /// on this node.
  void bind(core::CommunicationBackbone& cb);

  void step(double now) override;

  /// Control-loop state for one remote peer, keyed by node name.
  struct PeerState {
    double factor = 1.0;  // current best-effort send factor
    /// Which trigger kinds are currently raised (onset seen, CLEARED
    /// not yet). Recovery requires all three false.
    bool overflow = false;
    bool retxStorm = false;
    bool latency = false;
    double clearedAtSec = 0.0;  // when the last trigger kind cleared
    double lastStepSec = 0.0;   // last thin/recover application
    bool anyActive() const { return overflow || retxStorm || latency; }
  };

  /// State for `node`, or null if no alarm ever targeted it.
  const PeerState* peer(const std::string& node) const;
  /// Thinning steps applied / recovery steps applied (test + soak hooks).
  std::uint64_t thinSteps() const { return thinSteps_; }
  std::uint64_t recoverSteps() const { return recoverSteps_; }

 private:
  /// Push `st.factor` into the CB for `node`'s endpoint (no-op until
  /// the monitor has a snapshot to resolve the address from).
  void apply(const std::string& node, PeerState& st);

  HealthMonitor* mon_;
  BackpressureConfig cfg_;
  core::CommunicationBackbone* cb_ = nullptr;
  std::size_t alarmCursor_ = 0;  // drained prefix of mon_->alarms()
  std::map<std::string, PeerState> peers_;
  std::uint64_t thinSteps_ = 0;
  std::uint64_t recoverSteps_ = 0;
};

}  // namespace cod::telemetry
