// NodeTelemetry — the compact, versioned wire record one computer's
// telemetry publisher exports every interval (ROADMAP "Instrumentation").
//
// A record is a point-in-time snapshot of everything a cluster-health
// monitor needs about one node: identity (CB name + endpoint address), a
// monotonic snapshot sequence, the CB's counters (CbStats including the
// reliable-layer and send-coalescer blocks), the node's own transport
// counters, and a per-channel health list (age since last frame,
// retransmits, window occupancy).
//
// Two encodings share one decoder:
//   * keyframe — every counter, self-contained;
//   * delta    — only the counters that changed since a base keyframe,
//     referenced by sequence number. Telemetry rides best-effort channels
//     (a lost snapshot is superseded, retransmitting stale stats would be
//     absurd), so deltas are encoded against the last *keyframe*, not the
//     previous delta: any number of lost deltas heals at the next arrival,
//     and a lost keyframe costs at most one keyframe interval of data.
// The channel list is always encoded in full — it is small, and its shape
// (channels appearing and vanishing) is exactly what must not be guessed
// from a diff.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/cb.hpp"
#include "net/engine.hpp"
#include "net/transport.hpp"
#include "telemetry/hist.hpp"

namespace cod::telemetry {

/// Wire-format version, first byte of every record. Decoders reject
/// anything else (a mixed-version cluster must fail loudly, not
/// misinterpret counters).
/// v2: reliable.dataFramesSent joined the counter table (the sender-side
/// denominator of the real-socket loss estimate).
/// v3: histogram block (delivery latency, tick duration, flush size,
/// retransmit delay — sparse buckets, delta-encoded like the counters)
/// and the per-shard load block appended after the channel list.
/// v4: flow-control counters joined the table — cb.updatesThinned,
/// reliable.{updatesBlocked, degradeSkipsSent, windowSplits,
/// windowMerges, peerDuplicatesReported} and batch.adaptiveFlushes.
/// v5: tick-phase profiler block (kTickPhaseCount sparse histograms,
/// same encoding as the v3 block) appended after the shard-load block.
/// A node with the profiler OFF (`Config::phaseProfile == false`, the
/// default) still emits version 4 — byte-identical to a v4 peer — so v5
/// is only on the wire when there is phase data to carry. Decoders
/// accept both.
/// v6: async-engine block (net/engine.hpp ring/syscall counters,
/// [u16 count][u64 x count], always in full) appended at the very end.
/// Emitted only by nodes running `Config::asyncNet`; since such a node
/// may or may not also profile phases, v6 is the one layout whose phase
/// block is flagged (kFlagPhases) rather than implied by the version
/// byte. Sync nodes keep emitting v4/v5 exactly as before.
inline constexpr std::uint8_t kTelemetryVersion = 5;
/// The version emitted (and still accepted) when the phase profiler is
/// off: the v4 layout, unchanged.
inline constexpr std::uint8_t kTelemetryVersionPhaseless = 4;
/// The version emitted when the async network engine is on (see above).
inline constexpr std::uint8_t kTelemetryVersionAsync = 6;

/// Reserved object class the publishers publish on and monitors subscribe
/// to — "cod." prefixed so no simulator module class can collide.
inline const std::string kTelemetryClass = "cod.telemetry";
/// The single attribute carrying the encoded record.
inline const std::string kTelemetryAttr = "t";

/// One node's snapshot (see file comment). `channels` reuses the CB's own
/// health export type.
struct NodeTelemetry {
  std::uint64_t seq = 0;  // monotonic per publisher; resets on restart
  std::string node;       // CB name
  net::NodeAddr addr;     // CB endpoint (node identity with `node`)
  double nodeTimeSec = 0.0;  // publisher clock at snapshot time
  core::CbStats cb;          // includes .reliable and .batch
  net::TransportStats transport;
  std::vector<core::CbChannelHealth> channels;
  /// Cumulative histogram snapshots, indexed like CbHistograms::at()
  /// (names from CbHistograms::name()). Monitors diff consecutive
  /// snapshots to derive interval percentiles.
  std::array<HistogramSnapshot, CbHistograms::kCount> hists{};
  /// Per-shard routing-table sizes, for the shard-balance line in the
  /// cluster-health table. Always encoded in full (it is tiny and its
  /// shape — the shard count — must not be guessed from a diff).
  std::vector<core::CbShardLoad> shardLoad;
  /// True when this node runs the tick-phase profiler: `phases` is
  /// meaningful and the record encodes as wire v5. False encodes the
  /// exact v4 bytes (phase block absent), keeping profiler-off nodes
  /// byte-identical to v4 peers.
  bool phaseProfiling = false;
  /// Cumulative per-phase tick histograms, indexed like
  /// TickPhaseHistograms::at(). All-zero unless `phaseProfiling`.
  std::array<HistogramSnapshot, kTickPhaseCount> phases{};
  /// True when this node runs the async network engine: `engine` is
  /// meaningful and the record encodes as wire v6 (phase block flagged).
  bool asyncNet = false;
  /// Engine ring/syscall counters in net::engineCounterName order.
  /// All-zero unless `asyncNet`.
  std::array<std::uint64_t, net::kEngineCounterCount> engine{};
};

/// The flattened counter table: every std::uint64_t in CbStats (with its
/// reliable and batch sub-blocks) and TransportStats, in a fixed order
/// that *is* the wire format — appending is a version bump.
std::size_t counterCount();
/// Dotted diagnostic name of counter `i` ("cb.updatesSent",
/// "transport.framesDropped", ...). Null if out of range.
const char* counterName(std::size_t i);
std::uint64_t counterValue(const NodeTelemetry& t, std::size_t i);
void setCounterValue(NodeTelemetry& t, std::size_t i, std::uint64_t v);

/// Encode a self-contained keyframe snapshot.
std::vector<std::uint8_t> encodeTelemetry(const NodeTelemetry& t);
/// Encode `t` as a delta against `base` (a keyframe the receiver should
/// hold): identity, time and channels in full, counters only where they
/// differ from `base`.
std::vector<std::uint8_t> encodeTelemetryDelta(const NodeTelemetry& t,
                                               const NodeTelemetry& base);

/// Identity header of a record, readable without the base a delta would
/// need: lets a monitor route the record to the right node's keyframe and
/// distinguish "waiting for a keyframe" from corruption.
struct TelemetryHeader {
  std::uint64_t seq = 0;
  std::string node;
  net::NodeAddr addr;
  double nodeTimeSec = 0.0;
  /// Set iff the record is a delta: the keyframe sequence it requires.
  std::optional<std::uint64_t> baseSeq;
};

std::optional<TelemetryHeader> peekTelemetryHeader(
    std::span<const std::uint8_t> bytes);

/// Decode either encoding. Delta records require `base` with the matching
/// sequence; keyframes ignore `base`. Rejects (nullopt) truncated input,
/// trailing bytes, bad version, unknown counter indices, or a delta whose
/// base is absent/mismatched — a monitor must drop, never guess.
std::optional<NodeTelemetry> decodeTelemetry(
    std::span<const std::uint8_t> bytes,
    const NodeTelemetry* base = nullptr);

}  // namespace cod::telemetry
