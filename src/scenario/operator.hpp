// Scripted trainee — replaces the human in the mockup.
//
// A deterministic controller that drives the course and works the boom
// through the licensure exam. Two proficiency profiles exist so the scoring
// path is exercised both ways: a careful operator clears the bars; a sloppy
// one carries the cargo too low and collects deductions.
#pragma once

#include "crane/state.hpp"
#include "math/vec.hpp"
#include "scenario/course.hpp"
#include "scenario/exam.hpp"

namespace cod::scenario {

/// Everything the operator can see (trainee's situational awareness).
struct OperatorObservation {
  double timeSec = 0.0;
  ExamPhase phase = ExamPhase::kDriveToSite;
  std::size_t nextWaypoint = 0;
  // Carrier.
  math::Vec2 carrierPosition;
  double carrierHeadingRad = 0.0;
  double carrierSpeedMps = 0.0;
  // Crane joints.
  double slewAngleRad = 0.0;
  double boomPitchRad = 0.0;
  double boomLengthM = 0.0;
  double cableLengthM = 0.0;
  double workingRadiusM = 0.0;
  math::Vec3 boomTip;
  math::Vec3 hookPosition;
  // Cargo.
  math::Vec3 cargoPosition;
  bool cargoAttached = false;
  // Outriggers (pads must be set before lifting).
  bool outriggersDeployed = false;
};

struct OperatorProfile {
  /// Height the cargo is carried at during traverse (m above ground).
  double carryHeightM = 2.6;
  double driveGain = 1.5;
  double slewGain = 2.0;
  double telescopeGain = 1.2;
  double hoistGain = 1.5;
  double cruiseThrottle = 0.8;
  /// Slew-lever cap while cargo hangs on the hook. A good operator slews
  /// gently so the load does not pump up into a pendulum.
  double slewCapWithCargo = 0.3;

  static OperatorProfile careful() { return {}; }
  static OperatorProfile sloppy() {
    OperatorProfile p;
    p.carryHeightM = 1.1;       // below the tallest bar: will clip it
    p.slewGain = 3.5;           // jerky slewing, bigger hook swing
    p.slewCapWithCargo = 1.0;   // full-rate slewing with a suspended load
    return p;
  }
};

class ScriptedOperator {
 public:
  ScriptedOperator(Course course, OperatorProfile profile);

  /// Compute the control outputs for this instant.
  crane::CraneControls decide(const OperatorObservation& obs);

  const OperatorProfile& profile() const { return profile_; }

 private:
  crane::CraneControls drive(const OperatorObservation& obs) const;
  crane::CraneControls work(const OperatorObservation& obs);

  /// Slew/telescope the boom so the point under the tip approaches
  /// `target2`; hoist the hook toward `hookZTarget`.
  void aimBoom(crane::CraneControls& c, const OperatorObservation& obs,
               const math::Vec2& target2, double hookZTarget) const;

  Course course_;
  OperatorProfile profile_;
  std::size_t pathIdx_ = 0;     // cargo-path waypoint during traverse
  bool returning_ = false;
  bool released_ = false;       // SetDown latch-off is final
};

}  // namespace cod::scenario
