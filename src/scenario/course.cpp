#include "scenario/course.hpp"

#include <cmath>

namespace cod::scenario {

double Course::driveDistance() const {
  double d = 0.0;
  math::Vec2 prev = startPosition;
  for (const Waypoint& w : driveRoute) {
    d += (w.position - prev).norm();
    prev = w.position;
  }
  return d;
}

Course standardLicensureCourse() {
  Course c;
  c.startPosition = {10.0, 10.0};
  c.startHeadingRad = 0.0;
  // A dog-leg drive to the testing ground (Fig. 8's route from the
  // starting point to the designated location).
  c.driveRoute = {
      {{40.0, 10.0}, 3.0},
      {{70.0, 25.0}, 3.0},
      {{95.0, 45.0}, 3.0},
      {{110.0, 60.0}, 3.5},
  };
  c.craneParkPosition = {110.0, 60.0};
  c.craneParkHeadingRad = 0.0;
  // Lift zone ~8 m left of the park spot; drop zone ~8 m right (Fig. 9:
  // lift in the white circle at the left, carry to the right and back).
  c.pickZone = {{110.0, 68.0}, 1.5};
  c.dropZone = {{110.0, 52.0}, 1.5};
  // Cargo trajectory: an arc from pick to drop passing over the bars.
  c.cargoPath = {
      {110.0, 68.0}, {113.0, 66.0}, {115.0, 60.0}, {113.0, 54.0},
      {110.0, 52.0},
  };
  // Three bars obstruct the arc.
  c.bars = {
      {{113.2, 65.2}, math::deg2rad(30.0), 4.0, 1.3, 0.06},
      {{115.2, 60.0}, math::deg2rad(90.0), 4.0, 1.5, 0.06},
      {{113.2, 54.8}, math::deg2rad(150.0), 4.0, 1.3, 0.06},
  };
  c.cargoMassKg = 800.0;
  c.timeLimitSec = 600.0;
  return c;
}

Course compactCourse() {
  Course c;
  c.startPosition = {5.0, 5.0};
  c.startHeadingRad = 0.0;
  c.driveRoute = {{{25.0, 5.0}, 2.5}, {{40.0, 15.0}, 3.0}};
  c.craneParkPosition = {40.0, 15.0};
  c.craneParkHeadingRad = 0.0;
  c.pickZone = {{40.0, 23.0}, 1.5};
  c.dropZone = {{40.0, 7.0}, 1.5};
  c.cargoPath = {{40.0, 23.0}, {43.0, 15.0}, {40.0, 7.0}};
  c.bars = {{{43.2, 15.0}, math::deg2rad(90.0), 4.0, 1.4, 0.06}};
  c.cargoMassKg = 500.0;
  c.timeLimitSec = 300.0;
  return c;
}

}  // namespace cod::scenario
