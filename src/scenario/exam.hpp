// Exam state machine and scoring (§3.5).
//
// "Score will be deducted if the bar is collided, and the score will be
// dynamically displayed on the status window." The module consumes crane
// state and collision events, tracks exam phase progression, and produces a
// running score sheet that the instructor monitor subscribes to.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "math/vec.hpp"
#include "scenario/course.hpp"

namespace cod::scenario {

enum class ExamPhase : std::uint8_t {
  kDriveToSite = 0,   // drive the route to the testing ground
  kLiftCargo = 1,     // pick the cargo from the white circle
  kTraverseOut = 2,   // carry it along the trajectory to the drop zone
  kReturnCargo = 3,   // and bring it back
  kSetDown = 4,       // lower it into the original zone
  kPassed = 5,
  kFailed = 6,
};

const char* phaseName(ExamPhase p);

/// One scoring event.
struct Deduction {
  double timeSec = 0.0;
  std::string reason;
  double points = 0.0;
};

/// One non-scoring note attached to the run — cluster-health alarms and
/// peak-loss figures from the telemetry monitor, exam markers, anything a
/// debrief should show alongside the deductions without moving the score.
struct Annotation {
  double timeSec = 0.0;
  std::string note;
};

struct ScoreSheet {
  double total = 100.0;
  std::vector<Deduction> deductions;
  std::vector<Annotation> annotations;
  double elapsedSec = 0.0;
  ExamPhase phase = ExamPhase::kDriveToSite;
  bool finished() const {
    return phase == ExamPhase::kPassed || phase == ExamPhase::kFailed;
  }
};

/// Deduction schedule.
struct ScoringRules {
  double barCollision = 10.0;
  double alarmRaised = 2.0;       // per newly raised alarm lamp
  double missedWaypoint = 5.0;
  double overTimePerMinute = 5.0;
  double passThreshold = 70.0;
  double dropOutsideZone = 20.0;
};

/// Inputs the exam consumes each tick.
struct ExamObservation {
  double timeSec = 0.0;
  math::Vec2 carrierPosition;
  double carrierSpeedMps = 0.0;
  math::Vec3 hookPosition;
  math::Vec3 cargoPosition;
  bool cargoAttached = false;
  std::uint32_t alarmBits = 0;
  /// Ids of bars the cargo hit this tick (edge events, not level).
  std::vector<std::size_t> barHits;
};

class Exam {
 public:
  Exam(Course course, ScoringRules rules = {});

  const Course& course() const { return course_; }
  const ScoreSheet& score() const { return sheet_; }
  ExamPhase phase() const { return sheet_.phase; }
  std::size_t nextWaypoint() const { return waypointIdx_; }

  /// Monotone counter of sheet events (deductions, phase transitions and
  /// annotations). The scenario module publishes a status update whenever
  /// it advances, and streams the score over a reliable channel — a
  /// monitor must never miss a deduction, so the score stream cannot be
  /// newest-wins like the 16 fps view state.
  std::uint64_t revision() const { return revision_; }

  /// Advance the exam with one observation.
  void observe(const ExamObservation& obs);

  /// Attach a non-scoring note to the sheet (cluster-health alarms, peak
  /// loss, markers). Bumps the revision so the debrief stream carries it
  /// out immediately over the reliable status channel.
  void annotate(double t, std::string note);

 private:
  void deduct(double t, const std::string& reason, double points);
  void finish(double t);

  Course course_;
  ScoringRules rules_;
  ScoreSheet sheet_;
  std::size_t waypointIdx_ = 0;
  std::uint32_t lastAlarmBits_ = 0;
  bool reachedDropZone_ = false;
  double phaseEnteredAt_ = 0.0;
  std::uint64_t revision_ = 0;
};

}  // namespace cod::scenario
