// Training-course description (paper §3.5, Figs. 8 & 9).
//
// The scenario: drive the crane from the starting point to the testing
// ground, lift the cargo out of the white circular zone, carry it along a
// bar-obstructed trajectory to the far zone, and bring it back. Bars placed
// on the path deduct points when the cargo collides with them.
#pragma once

#include <string>
#include <vector>

#include "math/vec.hpp"

namespace cod::scenario {

/// A driving waypoint with an acceptance radius.
struct Waypoint {
  math::Vec2 position;
  double radiusM = 3.0;
};

/// A circular cargo zone painted on the ground (the "white circular zone").
struct CargoZone {
  math::Vec2 center;
  double radiusM = 1.5;
};

/// One obstructing bar: a horizontal beam on two posts the cargo must clear.
struct Bar {
  math::Vec2 position;   // centre of the beam, ground plane
  double headingRad = 0; // beam direction
  double lengthM = 4.0;
  double heightM = 1.2;  // top of the beam above ground
  double barRadiusM = 0.06;
};

/// The whole course.
struct Course {
  math::Vec2 startPosition;
  double startHeadingRad = 0.0;
  std::vector<Waypoint> driveRoute;   // start → testing ground
  math::Vec2 craneParkPosition;       // where to park for the lift
  double craneParkHeadingRad = 0.0;
  CargoZone pickZone;                 // cargo initial position (Fig. 9 left)
  CargoZone dropZone;                 // far end of the trajectory
  std::vector<math::Vec2> cargoPath;  // nominal trajectory of the cargo
  std::vector<Bar> bars;              // obstructions along the path
  double cargoMassKg = 800.0;
  double timeLimitSec = 600.0;

  /// Total drive distance along the route.
  double driveDistance() const;
};

/// The standard licensure course used throughout tests, benches and
/// examples — Fig. 8/9 re-expressed in metres.
Course standardLicensureCourse();

/// A shorter variant for quick tests (same structure, fewer bars).
Course compactCourse();

}  // namespace cod::scenario
