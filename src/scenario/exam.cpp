#include "scenario/exam.hpp"

#include <bit>
#include <cmath>

namespace cod::scenario {

const char* phaseName(ExamPhase p) {
  switch (p) {
    case ExamPhase::kDriveToSite: return "DRIVE TO SITE";
    case ExamPhase::kLiftCargo: return "LIFT CARGO";
    case ExamPhase::kTraverseOut: return "TRAVERSE OUT";
    case ExamPhase::kReturnCargo: return "RETURN CARGO";
    case ExamPhase::kSetDown: return "SET DOWN";
    case ExamPhase::kPassed: return "PASSED";
    case ExamPhase::kFailed: return "FAILED";
  }
  return "?";
}

Exam::Exam(Course course, ScoringRules rules)
    : course_(std::move(course)), rules_(rules) {}

void Exam::deduct(double t, const std::string& reason, double points) {
  sheet_.deductions.push_back({t, reason, points});
  sheet_.total = std::max(0.0, sheet_.total - points);
  ++revision_;
}

void Exam::annotate(double t, std::string note) {
  sheet_.annotations.push_back({t, std::move(note)});
  ++revision_;
}

void Exam::finish(double t) {
  sheet_.elapsedSec = t;
  if (t > course_.timeLimitSec) {
    const double over = (t - course_.timeLimitSec) / 60.0;
    deduct(t, "over time limit", rules_.overTimePerMinute * std::ceil(over));
  }
  sheet_.phase = sheet_.total >= rules_.passThreshold ? ExamPhase::kPassed
                                                      : ExamPhase::kFailed;
}

void Exam::observe(const ExamObservation& obs) {
  if (sheet_.finished()) return;
  const ExamPhase phaseAtEntry = sheet_.phase;
  sheet_.elapsedSec = obs.timeSec;

  // Event deductions apply in every phase.
  for (const std::size_t barIdx : obs.barHits) {
    deduct(obs.timeSec, "bar " + std::to_string(barIdx) + " collision",
           rules_.barCollision);
  }
  // Newly raised alarm lamps (edge-triggered on the bit set).
  const std::uint32_t newAlarms = obs.alarmBits & ~lastAlarmBits_;
  if (newAlarms != 0) {
    deduct(obs.timeSec, "alarm raised",
           rules_.alarmRaised * std::popcount(newAlarms));
  }
  lastAlarmBits_ = obs.alarmBits;

  switch (sheet_.phase) {
    case ExamPhase::kDriveToSite: {
      if (waypointIdx_ < course_.driveRoute.size()) {
        const Waypoint& w = course_.driveRoute[waypointIdx_];
        if ((obs.carrierPosition - w.position).norm() <= w.radiusM)
          ++waypointIdx_;
      }
      if (waypointIdx_ >= course_.driveRoute.size()) {
        sheet_.phase = ExamPhase::kLiftCargo;
        phaseEnteredAt_ = obs.timeSec;
      }
      break;
    }
    case ExamPhase::kLiftCargo: {
      // Cargo must be attached and lifted clear of the ground.
      if (obs.cargoAttached && obs.cargoPosition.z > 0.8) {
        sheet_.phase = ExamPhase::kTraverseOut;
        phaseEnteredAt_ = obs.timeSec;
      }
      break;
    }
    case ExamPhase::kTraverseOut: {
      const math::Vec2 cargo2{obs.cargoPosition.x, obs.cargoPosition.y};
      if ((cargo2 - course_.dropZone.center).norm() <=
          course_.dropZone.radiusM + 0.5) {
        reachedDropZone_ = true;
        sheet_.phase = ExamPhase::kReturnCargo;
        phaseEnteredAt_ = obs.timeSec;
      }
      break;
    }
    case ExamPhase::kReturnCargo: {
      const math::Vec2 cargo2{obs.cargoPosition.x, obs.cargoPosition.y};
      if ((cargo2 - course_.pickZone.center).norm() <=
          course_.pickZone.radiusM + 0.5) {
        sheet_.phase = ExamPhase::kSetDown;
        phaseEnteredAt_ = obs.timeSec;
      }
      break;
    }
    case ExamPhase::kSetDown: {
      if (!obs.cargoAttached) {
        const math::Vec2 cargo2{obs.cargoPosition.x, obs.cargoPosition.y};
        const double miss = (cargo2 - course_.pickZone.center).norm();
        if (miss > course_.pickZone.radiusM)
          deduct(obs.timeSec, "cargo set down outside zone",
                 rules_.dropOutsideZone);
        finish(obs.timeSec);
      }
      break;
    }
    case ExamPhase::kPassed:
    case ExamPhase::kFailed:
      break;
  }

  // Hard timeout: twice the limit aborts the attempt.
  if (!sheet_.finished() && obs.timeSec > 2.0 * course_.timeLimitSec) {
    deduct(obs.timeSec, "exam aborted (time)", 100.0);
    finish(obs.timeSec);
  }

  if (sheet_.phase != phaseAtEntry) ++revision_;
}

}  // namespace cod::scenario
