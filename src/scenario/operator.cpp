#include "scenario/operator.hpp"

#include <algorithm>
#include <cmath>

namespace cod::scenario {

using crane::CraneControls;
using math::Vec2;
using math::Vec3;

ScriptedOperator::ScriptedOperator(Course course, OperatorProfile profile)
    : course_(std::move(course)), profile_(profile) {}

CraneControls ScriptedOperator::decide(const OperatorObservation& obs) {
  CraneControls c;
  c.ignition = true;
  switch (obs.phase) {
    case ExamPhase::kDriveToSite:
      return drive(obs);
    case ExamPhase::kLiftCargo:
    case ExamPhase::kTraverseOut:
    case ExamPhase::kReturnCargo:
    case ExamPhase::kSetDown:
      return work(obs);
    case ExamPhase::kPassed:
    case ExamPhase::kFailed: {
      c.brake = 1.0;
      c.ignition = false;
      return c;
    }
  }
  return c;
}

CraneControls ScriptedOperator::drive(const OperatorObservation& obs) const {
  CraneControls c;
  c.ignition = true;
  const std::size_t idx =
      std::min(obs.nextWaypoint, course_.driveRoute.size() - 1);
  const Vec2 target = course_.driveRoute[idx].position;
  const Vec2 delta = target - obs.carrierPosition;
  const double bearing = std::atan2(delta.y, delta.x);
  const double err = math::angleDiff(bearing, obs.carrierHeadingRad);
  c.steering = math::clamp(profile_.driveGain * err, -1.0, 1.0);
  const bool lastLeg = obs.nextWaypoint + 1 >= course_.driveRoute.size();
  const double dist = delta.norm();
  if (lastLeg && dist < 8.0) {
    // Roll gently into the park spot.
    c.throttle = dist > 3.0 ? 0.25 : 0.0;
    c.brake = dist > 3.0 ? 0.0 : 1.0;
  } else if (std::abs(err) > 0.6) {
    c.throttle = 0.3;  // tight turn: slow down
  } else {
    c.throttle = profile_.cruiseThrottle;
  }
  return c;
}

void ScriptedOperator::aimBoom(CraneControls& c,
                               const OperatorObservation& obs,
                               const Vec2& target2,
                               double hookZTarget) const {
  // Close the loop on the boom-tip ground projection: the tip is where the
  // cable hangs from, it is swing-free (unlike the hook), and referencing
  // both tip and target to the carrier cancels the slew-axis offset.
  const Vec2 base = obs.carrierPosition;
  const Vec2 tip2{obs.boomTip.x, obs.boomTip.y};
  const Vec2 toTarget = target2 - base;
  const Vec2 toTip = tip2 - base;

  const double azErr = math::angleDiff(std::atan2(toTarget.y, toTarget.x),
                                       std::atan2(toTip.y, toTip.x));
  c.joystickSlew = math::clamp(profile_.slewGain * azErr, -1.0, 1.0);

  // Luff controls the working radius (it always has authority: raising the
  // boom pulls the tip in even at minimum telescope length)...
  const double radiusErr = toTarget.norm() - toTip.norm();
  c.joystickLuff = math::clamp(-1.5 * radiusErr, -1.0, 1.0);

  // ...while the telescope is slaved to keep the luff near 45 deg, where
  // it retains authority in both directions.
  const double desiredLen = math::clamp(
      toTarget.norm() / std::cos(math::deg2rad(45.0)), 9.0, 26.0);
  c.joystickTelescope = math::clamp(
      profile_.telescopeGain * (desiredLen - obs.boomLengthM), -1.0, 1.0);

  // Hoist toward the requested hook height (positive pays cable out).
  const double cableTarget = obs.boomTip.z - hookZTarget;
  const double cableErr = cableTarget - obs.cableLengthM;
  c.joystickHoist = math::clamp(profile_.hoistGain * cableErr, -1.0, 1.0);
}

CraneControls ScriptedOperator::work(const OperatorObservation& obs) {
  CraneControls c;
  c.ignition = true;
  c.brake = 1.0;  // parked at the testing ground
  c.outriggersDeploy = true;  // pads go down as soon as we stop driving
  const double cargoHalf = 0.5;

  switch (obs.phase) {
    case ExamPhase::kLiftCargo: {
      returning_ = false;
      pathIdx_ = 0;
      const Vec2 pick = course_.pickZone.center;
      const Vec2 hook2{obs.hookPosition.x, obs.hookPosition.y};
      const double horizErr = (hook2 - pick).norm();
      if (!obs.cargoAttached) {
        // Swing over the cargo, then come down on it and latch.
        const double hookZ = horizErr < 0.6
                                 ? obs.cargoPosition.z + cargoHalf + 0.15
                                 : 2.5;
        aimBoom(c, obs, pick, hookZ);
        const double vertGap =
            obs.hookPosition.z - (obs.cargoPosition.z + cargoHalf);
        // Never take the load before the pads are set (§3.3-style alarm).
        if (horizErr < 0.7 && vertGap < 0.4 && obs.outriggersDeployed)
          c.hookLatch = true;
      } else {
        // Hoist clear of the ground.
        aimBoom(c, obs, pick, profile_.carryHeightM + cargoHalf);
        c.hookLatch = true;
      }
      return c;
    }
    case ExamPhase::kTraverseOut:
    case ExamPhase::kReturnCargo: {
      c.hookLatch = true;
      const bool outbound = obs.phase == ExamPhase::kTraverseOut;
      if (outbound == returning_) {
        // Phase flipped since the last call: restart along the path.
        returning_ = !outbound;
        pathIdx_ = 0;
      }
      std::vector<Vec2> path = course_.cargoPath;
      if (!outbound) std::reverse(path.begin(), path.end());
      if (pathIdx_ < path.size()) {
        const Vec2 cargo2{obs.cargoPosition.x, obs.cargoPosition.y};
        if ((cargo2 - path[pathIdx_]).norm() < 1.2) ++pathIdx_;
      }
      const Vec2 target = pathIdx_ < path.size() ? path[pathIdx_] : path.back();
      aimBoom(c, obs, target, profile_.carryHeightM + cargoHalf);
      // Do not start traversing until the cargo hangs at carry height —
      // swinging it low through the bars is exactly what costs points.
      const double carryCenterZ = profile_.carryHeightM + cargoHalf - 0.65;
      if (obs.cargoPosition.z < carryCenterZ - 0.45) {
        c.joystickSlew = 0.0;
        c.joystickTelescope = 0.0;
      }
      // Gentle slewing with a suspended load keeps the pendulum quiet.
      c.joystickSlew = math::clamp(c.joystickSlew, -profile_.slewCapWithCargo,
                                   profile_.slewCapWithCargo);
      return c;
    }
    case ExamPhase::kSetDown: {
      const Vec2 pick = course_.pickZone.center;
      const Vec2 cargo2{obs.cargoPosition.x, obs.cargoPosition.y};
      const bool centred = (cargo2 - pick).norm() < 0.8;
      // Lower onto the ground, then release — and stay released (no
      // re-latch flapping while the status update is in flight).
      aimBoom(c, obs, pick, centred ? cargoHalf - 0.05 : 1.2);
      if (released_ ||
          (centred && obs.cargoPosition.z < cargoHalf + 0.12)) {
        released_ = true;
      }
      c.hookLatch = !released_;
      return c;
    }
    default:
      return c;
  }
}

}  // namespace cod::scenario
