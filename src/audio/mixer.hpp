// Software mixing console + the audio module's engine (§3.7).
//
// The Mixer renders N channels (looping beds, one-shot effects, each with
// its own gain and playback rate) into an output PCM block; AudioEngine
// binds named sounds to simulator events (collision, engine ignition) the
// audio LP receives over the CB.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audio/pcm.hpp"

namespace cod::audio {

using ChannelId = std::uint32_t;

class Mixer {
 public:
  explicit Mixer(int sampleRate = 48000);

  int sampleRate() const { return rate_; }

  /// Start playing a buffer. `rate` resamples (1.0 = native pitch).
  ChannelId play(std::shared_ptr<const PcmBuffer> buf, double gain = 1.0,
                 bool loop = false, double rate = 1.0);
  void stop(ChannelId id);
  void setGain(ChannelId id, double gain);
  void setRate(ChannelId id, double rate);
  bool playing(ChannelId id) const;
  std::size_t activeChannels() const;

  void setMasterGain(double g) { master_ = g; }

  /// Mix the next `frames` samples into `out` (resized). Finished one-shot
  /// channels free themselves. Output is soft-clipped to [-1, 1].
  void mix(std::vector<float>& out, std::size_t frames);

  std::uint64_t framesMixed() const { return framesMixed_; }

 private:
  struct Channel {
    std::shared_ptr<const PcmBuffer> buf;
    double pos = 0.0;   // fractional read cursor (frames)
    double gain = 1.0;
    double rate = 1.0;  // playback-rate ratio
    bool loop = false;
    bool done = false;
  };

  int rate_;
  double master_ = 1.0;
  std::map<ChannelId, Channel> channels_;
  ChannelId nextId_ = 1;
  std::uint64_t framesMixed_ = 0;
};

/// Event-driven audio engine: named sound registry + simulator bindings.
class AudioEngine {
 public:
  explicit AudioEngine(int sampleRate = 48000, std::uint64_t seed = 99);

  /// Register a sound under a name (replacing any previous one).
  void registerSound(const std::string& name,
                     std::shared_ptr<const PcmBuffer> buf);
  bool hasSound(const std::string& name) const;

  /// Fire a one-shot event sound ("collision", "alarm", ...). Returns the
  /// channel, or nullopt if the name is unknown.
  std::optional<ChannelId> playEvent(const std::string& name,
                                     double gain = 1.0);

  /// Engine loop follows ignition state and RPM (pitch via playback rate).
  void setEngine(bool on, double rpm);
  /// Looping background bed (construction-site noise).
  void setBackground(bool on, double gain = 0.3);

  Mixer& mixer() { return mixer_; }
  const Mixer& mixer() const { return mixer_; }

  /// Pump `dt` seconds of audio; returns the mixed block.
  std::vector<float> pump(double dt);

  std::uint64_t eventsPlayed() const { return eventsPlayed_; }

 private:
  Mixer mixer_;
  std::map<std::string, std::shared_ptr<const PcmBuffer>> sounds_;
  std::optional<ChannelId> engineChannel_;
  std::optional<ChannelId> backgroundChannel_;
  double engineBaseRpm_ = 900.0;
  std::uint64_t eventsPlayed_ = 0;
};

}  // namespace cod::audio
