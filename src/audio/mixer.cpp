#include "audio/mixer.hpp"

#include <algorithm>
#include <cmath>

namespace cod::audio {

Mixer::Mixer(int sampleRate) : rate_(sampleRate) {}

ChannelId Mixer::play(std::shared_ptr<const PcmBuffer> buf, double gain,
                      bool loop, double rate) {
  if (!buf || buf->frames() == 0) return 0;
  Channel ch;
  ch.buf = std::move(buf);
  ch.gain = gain;
  ch.loop = loop;
  ch.rate = std::max(0.01, rate);
  const ChannelId id = nextId_++;
  channels_.emplace(id, std::move(ch));
  return id;
}

void Mixer::stop(ChannelId id) { channels_.erase(id); }

void Mixer::setGain(ChannelId id, double gain) {
  const auto it = channels_.find(id);
  if (it != channels_.end()) it->second.gain = gain;
}

void Mixer::setRate(ChannelId id, double rate) {
  const auto it = channels_.find(id);
  if (it != channels_.end()) it->second.rate = std::max(0.01, rate);
}

bool Mixer::playing(ChannelId id) const { return channels_.contains(id); }

std::size_t Mixer::activeChannels() const { return channels_.size(); }

void Mixer::mix(std::vector<float>& out, std::size_t frames) {
  out.assign(frames, 0.0f);
  for (auto& [id, ch] : channels_) {
    const std::size_t len = ch.buf->frames();
    const double step =
        ch.rate * ch.buf->sampleRate() / static_cast<double>(rate_);
    for (std::size_t i = 0; i < frames; ++i) {
      if (ch.done) break;
      // Linear-interpolated resample.
      const std::size_t i0 = static_cast<std::size_t>(ch.pos);
      const double frac = ch.pos - static_cast<double>(i0);
      const std::size_t i1 = i0 + 1 < len ? i0 + 1 : (ch.loop ? 0 : i0);
      const double s = (1.0 - frac) * ch.buf->sample(i0) +
                       frac * ch.buf->sample(i1);
      out[i] += static_cast<float>(ch.gain * s);
      ch.pos += step;
      if (ch.pos >= static_cast<double>(len)) {
        if (ch.loop) {
          ch.pos = std::fmod(ch.pos, static_cast<double>(len));
        } else {
          ch.done = true;
        }
      }
    }
  }
  std::erase_if(channels_, [](const auto& kv) { return kv.second.done; });
  // Master gain + soft clip (tanh keeps summed channels inside [-1, 1]).
  for (float& s : out)
    s = static_cast<float>(std::tanh(master_ * static_cast<double>(s)));
  framesMixed_ += frames;
}

AudioEngine::AudioEngine(int sampleRate, std::uint64_t seed)
    : mixer_(sampleRate) {
  // Built-in procedural bank; callers may override any entry.
  registerSound("collision", std::make_shared<PcmBuffer>(makeCollisionBurst(
                                 sampleRate, 0.6, seed ^ 0x1)));
  registerSound("alarm", std::make_shared<PcmBuffer>(
                             makeSine(sampleRate, 880.0, 0.4, 0.6)));
  registerSound("engine", std::make_shared<PcmBuffer>(makeEngineLoop(
                              sampleRate, engineBaseRpm_, 1.0, seed ^ 0x2)));
  registerSound("background", std::make_shared<PcmBuffer>(makeNoise(
                                  sampleRate, 1.0, 0.25, seed ^ 0x3)));
}

void AudioEngine::registerSound(const std::string& name,
                                std::shared_ptr<const PcmBuffer> buf) {
  sounds_[name] = std::move(buf);
}

bool AudioEngine::hasSound(const std::string& name) const {
  return sounds_.contains(name);
}

std::optional<ChannelId> AudioEngine::playEvent(const std::string& name,
                                                double gain) {
  const auto it = sounds_.find(name);
  if (it == sounds_.end()) return std::nullopt;
  ++eventsPlayed_;
  return mixer_.play(it->second, gain, /*loop=*/false);
}

void AudioEngine::setEngine(bool on, double rpm) {
  if (!on) {
    if (engineChannel_) {
      mixer_.stop(*engineChannel_);
      engineChannel_.reset();
    }
    return;
  }
  if (!engineChannel_) {
    engineChannel_ = mixer_.play(sounds_.at("engine"), 0.8, /*loop=*/true);
  }
  // Pitch tracks RPM relative to the baked loop's base RPM.
  mixer_.setRate(*engineChannel_, std::max(0.2, rpm / engineBaseRpm_));
}

void AudioEngine::setBackground(bool on, double gain) {
  if (!on) {
    if (backgroundChannel_) {
      mixer_.stop(*backgroundChannel_);
      backgroundChannel_.reset();
    }
    return;
  }
  if (!backgroundChannel_) {
    backgroundChannel_ =
        mixer_.play(sounds_.at("background"), gain, /*loop=*/true);
  } else {
    mixer_.setGain(*backgroundChannel_, gain);
  }
}

std::vector<float> AudioEngine::pump(double dt) {
  std::vector<float> out;
  const auto frames =
      static_cast<std::size_t>(std::max(0.0, dt) * mixer_.sampleRate());
  mixer_.mix(out, frames);
  return out;
}

}  // namespace cod::audio
