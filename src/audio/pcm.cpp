#include "audio/pcm.hpp"

#include <cmath>
#include <stdexcept>

#include "math/vec.hpp"

namespace cod::audio {

PcmBuffer::PcmBuffer(int sampleRate, std::vector<float> samples)
    : rate_(sampleRate), samples_(std::move(samples)) {
  if (sampleRate <= 0) throw std::invalid_argument("PcmBuffer: bad rate");
}

float PcmBuffer::peak() const {
  float p = 0.0f;
  for (const float s : samples_) p = std::max(p, std::abs(s));
  return p;
}

double PcmBuffer::rms() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (const float s : samples_) acc += static_cast<double>(s) * s;
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

PcmBuffer makeSine(int sampleRate, double freqHz, double durationSec,
                   double gain) {
  const auto n = static_cast<std::size_t>(sampleRate * durationSec);
  std::vector<float> s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<float>(
        gain * std::sin(2.0 * math::kPi * freqHz * i / sampleRate));
  }
  return {sampleRate, std::move(s)};
}

PcmBuffer makeNoise(int sampleRate, double durationSec, double gain,
                    std::uint64_t seed) {
  math::Rng rng(seed);
  const auto n = static_cast<std::size_t>(sampleRate * durationSec);
  std::vector<float> s(n);
  for (std::size_t i = 0; i < n; ++i)
    s[i] = static_cast<float>(gain * rng.uniform(-1.0, 1.0));
  return {sampleRate, std::move(s)};
}

PcmBuffer makeEngineLoop(int sampleRate, double rpm, double durationSec,
                         std::uint64_t seed) {
  math::Rng rng(seed);
  // Six-cylinder four-stroke firing frequency: rpm / 60 * cylinders / 2.
  const double f0 = rpm / 60.0 * 3.0;
  const auto n = static_cast<std::size_t>(sampleRate * durationSec);
  std::vector<float> s(n);
  double flutter = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / sampleRate;
    flutter += 0.001 * (rng.uniform(-1.0, 1.0) - flutter);
    const double a = 1.0 + 2.0 * flutter;
    double v = 0.5 * std::sin(2 * math::kPi * f0 * t) +
               0.25 * std::sin(2 * math::kPi * 2 * f0 * t) +
               0.12 * std::sin(2 * math::kPi * 3 * f0 * t) +
               0.05 * rng.uniform(-1.0, 1.0);
    s[i] = static_cast<float>(math::clamp(0.6 * a * v, -1.0, 1.0));
  }
  return {sampleRate, std::move(s)};
}

PcmBuffer makeCollisionBurst(int sampleRate, double durationSec,
                             std::uint64_t seed) {
  math::Rng rng(seed);
  const auto n = static_cast<std::size_t>(sampleRate * durationSec);
  std::vector<float> s(n);
  double lp = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / sampleRate;
    const double env = std::exp(-9.0 * t);
    lp += 0.35 * (rng.uniform(-1.0, 1.0) - lp);  // metallic-ish colour
    const double ring = 0.4 * std::sin(2 * math::kPi * 640.0 * t) +
                        0.25 * std::sin(2 * math::kPi * 1030.0 * t);
    s[i] = static_cast<float>(math::clamp(env * (0.7 * lp + ring), -1.0, 1.0));
  }
  return {sampleRate, std::move(s)};
}

}  // namespace cod::audio
