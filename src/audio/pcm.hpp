// PCM sample buffers and procedural sound generators.
//
// Stands in for the DirectSound assets of the paper's audio module (§3.7):
// static sounds (background noise) and dynamic effects (collision sounds,
// motor working noise) are synthesized deterministically so tests can
// assert on the mixed output.
#pragma once

#include <cstdint>
#include <vector>

#include "math/rng.hpp"

namespace cod::audio {

/// Mono float PCM in [-1, 1].
class PcmBuffer {
 public:
  PcmBuffer() = default;
  PcmBuffer(int sampleRate, std::vector<float> samples);

  int sampleRate() const { return rate_; }
  std::size_t frames() const { return samples_.size(); }
  double durationSec() const {
    return rate_ > 0 ? static_cast<double>(samples_.size()) / rate_ : 0.0;
  }
  float sample(std::size_t i) const { return samples_[i]; }
  const std::vector<float>& samples() const { return samples_; }

  float peak() const;
  double rms() const;

 private:
  int rate_ = 48000;
  std::vector<float> samples_;
};

/// Pure tone.
PcmBuffer makeSine(int sampleRate, double freqHz, double durationSec,
                   double gain = 0.8);

/// Seeded white noise (the "background noise" bed).
PcmBuffer makeNoise(int sampleRate, double durationSec, double gain,
                    std::uint64_t seed);

/// Engine loop: fundamental + harmonics with a slow amplitude flutter.
/// `rpm` maps to the firing frequency of a big diesel.
PcmBuffer makeEngineLoop(int sampleRate, double rpm, double durationSec,
                         std::uint64_t seed);

/// Collision burst: exponentially decaying filtered noise "clang".
PcmBuffer makeCollisionBurst(int sampleRate, double durationSec,
                             std::uint64_t seed);

}  // namespace cod::audio
