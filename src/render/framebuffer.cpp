#include "render/framebuffer.hpp"

#include <fstream>
#include <limits>
#include <stdexcept>

namespace cod::render {

Framebuffer::Framebuffer(int width, int height) : w_(width), h_(height) {
  if (width <= 0 || height <= 0)
    throw std::invalid_argument("Framebuffer: non-positive size");
  color_.assign(static_cast<std::size_t>(w_) * h_, 0);
  depth_.assign(static_cast<std::size_t>(w_) * h_,
                std::numeric_limits<double>::infinity());
}

void Framebuffer::clear(Color c) {
  const std::uint32_t packed = c.packed();
  std::fill(color_.begin(), color_.end(), packed);
  std::fill(depth_.begin(), depth_.end(),
            std::numeric_limits<double>::infinity());
}

void Framebuffer::plot(int x, int y, double z, Color c) {
  if (x < 0 || x >= w_ || y < 0 || y >= h_) return;
  const std::size_t i = static_cast<std::size_t>(y) * w_ + x;
  if (z >= depth_[i]) return;
  depth_[i] = z;
  color_[i] = c.packed();
}

double Framebuffer::coverage() const {
  std::size_t written = 0;
  for (const double d : depth_)
    if (d != std::numeric_limits<double>::infinity()) ++written;
  return static_cast<double>(written) / static_cast<double>(depth_.size());
}

bool Framebuffer::writePpm(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << "P6\n" << w_ << ' ' << h_ << "\n255\n";
  for (const std::uint32_t p : color_) {
    const char rgb[3] = {static_cast<char>((p >> 16) & 0xFF),
                         static_cast<char>((p >> 8) & 0xFF),
                         static_cast<char>(p & 0xFF)};
    f.write(rgb, 3);
  }
  return static_cast<bool>(f);
}

}  // namespace cod::render
