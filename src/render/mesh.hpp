// Renderable triangle meshes and procedural builders.
//
// The virtual scene of the paper's simulator (training ground, crane, cargo,
// bars) is assembled from these meshes; the headline experiment renders
// "3235 polygons" of them per frame.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "math/geometry.hpp"
#include "math/vec.hpp"

namespace cod::render {

/// Packed RGB color.
struct Color {
  std::uint8_t r = 200, g = 200, b = 200;

  std::uint32_t packed() const {
    return (static_cast<std::uint32_t>(r) << 16) |
           (static_cast<std::uint32_t>(g) << 8) | b;
  }
  /// Scale brightness by `k` in [0, 1].
  Color shaded(double k) const;
};

class Mesh {
 public:
  Mesh(std::vector<math::Vec3> vertices,
       std::vector<std::array<std::uint32_t, 3>> triangles, Color color);

  static std::shared_ptr<Mesh> box(const math::Vec3& size, Color c);
  static std::shared_ptr<Mesh> cylinder(double radius, double height,
                                        int segments, Color c);
  /// Flat ground plane `w` × `d`, subdivided so the polygon count is
  /// controllable (frame-rate sweeps need scenes of a given size).
  static std::shared_ptr<Mesh> plane(double w, double d, int subdiv, Color c);

  const std::vector<math::Vec3>& vertices() const { return verts_; }
  const std::vector<std::array<std::uint32_t, 3>>& triangles() const {
    return tris_;
  }
  std::size_t triangleCount() const { return tris_.size(); }
  Color color() const { return color_; }
  const math::Sphere& boundingSphere() const { return sphere_; }

 private:
  std::vector<math::Vec3> verts_;
  std::vector<std::array<std::uint32_t, 3>> tris_;
  Color color_;
  math::Sphere sphere_;
};

}  // namespace cod::render
