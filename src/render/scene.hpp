// A scene: mesh instances with rigid transforms.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "math/mat.hpp"
#include "render/mesh.hpp"

namespace cod::render {

struct SceneObject {
  std::uint32_t id = 0;
  std::string name;
  std::shared_ptr<Mesh> mesh;
  math::Mat4 transform;
  bool visible = true;
};

class Scene {
 public:
  std::uint32_t add(const std::string& name, std::shared_ptr<Mesh> mesh,
                    const math::Mat4& transform = math::Mat4::identity());
  void setTransform(std::uint32_t id, const math::Mat4& t);
  void setVisible(std::uint32_t id, bool visible);
  SceneObject* find(std::uint32_t id);

  const std::vector<SceneObject>& objects() const { return objects_; }

  /// Total triangles across visible objects — the paper's "polygons inside
  /// the virtual scene" figure.
  std::size_t polygonCount() const;

 private:
  std::vector<SceneObject> objects_;
  std::uint32_t nextId_ = 1;
};

}  // namespace cod::render
