// Offscreen color + depth target for the software rasterizer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "render/mesh.hpp"

namespace cod::render {

class Framebuffer {
 public:
  Framebuffer(int width, int height);

  int width() const { return w_; }
  int height() const { return h_; }

  void clear(Color c = {40, 60, 90});  // sky

  std::uint32_t pixel(int x, int y) const {
    return color_[static_cast<std::size_t>(y) * w_ + x];
  }
  double depth(int x, int y) const {
    return depth_[static_cast<std::size_t>(y) * w_ + x];
  }
  void plot(int x, int y, double z, Color c);

  /// Fraction of pixels whose depth was written this frame.
  double coverage() const;

  /// Save as binary PPM (examples dump screenshots with this).
  bool writePpm(const std::string& path) const;

 private:
  int w_;
  int h_;
  std::vector<std::uint32_t> color_;
  std::vector<double> depth_;
};

}  // namespace cod::render
