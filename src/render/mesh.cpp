#include "render/mesh.hpp"

#include <cmath>
#include <stdexcept>

namespace cod::render {

using math::Vec3;

Color Color::shaded(double k) const {
  k = math::clamp(k, 0.0, 1.0);
  return {static_cast<std::uint8_t>(r * k), static_cast<std::uint8_t>(g * k),
          static_cast<std::uint8_t>(b * k)};
}

Mesh::Mesh(std::vector<Vec3> vertices,
           std::vector<std::array<std::uint32_t, 3>> triangles, Color color)
    : verts_(std::move(vertices)), tris_(std::move(triangles)), color_(color) {
  if (verts_.empty() || tris_.empty())
    throw std::invalid_argument("Mesh: empty geometry");
  for (const auto& t : tris_)
    for (const std::uint32_t i : t)
      if (i >= verts_.size()) throw std::out_of_range("Mesh: bad index");
  sphere_ = math::Sphere::fromPoints(verts_);
}

std::shared_ptr<Mesh> Mesh::box(const Vec3& size, Color c) {
  const Vec3 h = size * 0.5;
  std::vector<Vec3> v = {
      {-h.x, -h.y, -h.z}, {h.x, -h.y, -h.z}, {h.x, h.y, -h.z},
      {-h.x, h.y, -h.z},  {-h.x, -h.y, h.z}, {h.x, -h.y, h.z},
      {h.x, h.y, h.z},    {-h.x, h.y, h.z}};
  std::vector<std::array<std::uint32_t, 3>> t = {
      {0, 2, 1}, {0, 3, 2}, {4, 5, 6}, {4, 6, 7}, {0, 1, 5}, {0, 5, 4},
      {2, 3, 7}, {2, 7, 6}, {1, 2, 6}, {1, 6, 5}, {3, 0, 4}, {3, 4, 7}};
  return std::make_shared<Mesh>(std::move(v), std::move(t), c);
}

std::shared_ptr<Mesh> Mesh::cylinder(double radius, double height,
                                     int segments, Color c) {
  if (segments < 3) throw std::invalid_argument("Mesh::cylinder: segments<3");
  std::vector<Vec3> v;
  const double h = height * 0.5;
  for (int i = 0; i < segments; ++i) {
    const double a = 2.0 * math::kPi * i / segments;
    v.push_back({radius * std::cos(a), radius * std::sin(a), -h});
    v.push_back({radius * std::cos(a), radius * std::sin(a), h});
  }
  const auto bc = static_cast<std::uint32_t>(v.size());
  v.push_back({0, 0, -h});
  const auto tc = static_cast<std::uint32_t>(v.size());
  v.push_back({0, 0, h});
  std::vector<std::array<std::uint32_t, 3>> t;
  for (int i = 0; i < segments; ++i) {
    const auto b0 = static_cast<std::uint32_t>(2 * i);
    const auto t0 = b0 + 1;
    const auto b1 = static_cast<std::uint32_t>(2 * ((i + 1) % segments));
    const auto t1 = b1 + 1;
    t.push_back({b0, b1, t1});
    t.push_back({b0, t1, t0});
    t.push_back({bc, b1, b0});
    t.push_back({tc, t0, t1});
  }
  return std::make_shared<Mesh>(std::move(v), std::move(t), c);
}

std::shared_ptr<Mesh> Mesh::plane(double w, double d, int subdiv, Color c) {
  if (subdiv < 1) throw std::invalid_argument("Mesh::plane: subdiv<1");
  std::vector<Vec3> v;
  const int n = subdiv + 1;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      v.push_back({-w / 2 + w * i / subdiv, -d / 2 + d * j / subdiv, 0.0});
  std::vector<std::array<std::uint32_t, 3>> t;
  for (int j = 0; j < subdiv; ++j) {
    for (int i = 0; i < subdiv; ++i) {
      const auto a = static_cast<std::uint32_t>(j * n + i);
      const auto b = a + 1;
      const auto cc = a + n;
      const auto dd = cc + 1;
      t.push_back({a, b, dd});
      t.push_back({a, dd, cc});
    }
  }
  return std::make_shared<Mesh>(std::move(v), std::move(t), c);
}

}  // namespace cod::render
