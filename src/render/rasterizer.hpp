// Z-buffered software rasterizer.
//
// Stands in for the paper's TNT2 M64 graphics cards: frame cost genuinely
// scales with the polygon and pixel load, so the frame-rate experiments
// (E1/E2) measure a real rendering workload. Pipeline per frame:
// per-object frustum cull (bounding sphere) → vertex transform → near-plane
// clip → perspective divide → viewport map → flat-shaded two-sided
// z-buffer triangle fill.
#pragma once

#include <cstdint>

#include "render/camera.hpp"
#include "render/framebuffer.hpp"
#include "render/scene.hpp"

namespace cod::render {

struct RenderStats {
  std::uint64_t objectsSubmitted = 0;
  std::uint64_t objectsCulled = 0;
  std::uint64_t trianglesSubmitted = 0;
  std::uint64_t trianglesClipped = 0;  // rejected by clip-space tests
  std::uint64_t trianglesDrawn = 0;
  std::uint64_t pixelsShaded = 0;

  void reset() { *this = {}; }
};

class Rasterizer {
 public:
  /// Directional light (world space, normalized internally).
  void setLightDirection(const math::Vec3& dir);

  /// Render one frame of `scene` from `camera` into `fb`.
  void render(const Scene& scene, const Camera& camera, Framebuffer& fb);

  const RenderStats& stats() const { return stats_; }
  void resetStats() { stats_.reset(); }

 private:
  void drawTriangle(Framebuffer& fb, const math::Vec4 clip[3], Color c);

  math::Vec3 light_{-0.4, 0.3, -0.85};
  RenderStats stats_;
};

}  // namespace cod::render
