// Perspective camera, view frustum, and the three-channel surround rig.
//
// The paper drives three monitors giving ~120 degrees of surround view
// (§3.7, Fig. 10); each monitor is one camera of the rig, yawed ±40° from
// the centre channel.
#pragma once

#include <array>
#include <vector>

#include "math/geometry.hpp"
#include "math/mat.hpp"
#include "math/quat.hpp"

namespace cod::render {

class Camera {
 public:
  Camera();

  void setPose(const math::Vec3& eye, const math::Quat& orientation);
  void lookAt(const math::Vec3& eye, const math::Vec3& target,
              const math::Vec3& up = {0, 0, 1});
  void setPerspective(double fovYRad, double aspect, double zNear, double zFar);

  const math::Vec3& eye() const { return eye_; }
  double fovY() const { return fovY_; }
  double aspect() const { return aspect_; }
  double zNear() const { return zNear_; }
  double zFar() const { return zFar_; }

  const math::Mat4& view() const { return view_; }
  const math::Mat4& projection() const { return proj_; }
  math::Mat4 viewProjection() const { return proj_ * view_; }

  /// The six frustum planes in world space (normals pointing inward) —
  /// used for per-object bounding-sphere culling.
  std::array<math::Plane, 6> frustumPlanes() const;

  /// Conservative sphere-in-frustum test.
  bool sphereVisible(const math::Sphere& s) const;

 private:
  math::Vec3 eye_;
  math::Mat4 view_;
  math::Mat4 proj_;
  double fovY_ = math::deg2rad(50.0);
  double aspect_ = 4.0 / 3.0;
  double zNear_ = 0.3;
  double zFar_ = 600.0;
};

/// Three synchronized channels spanning ~120° (paper Fig. 10).
class SurroundRig {
 public:
  /// `channelFovYRad` vertical FOV per monitor; horizontal span follows the
  /// aspect; `yawStepRad` between adjacent channels (default 40°).
  SurroundRig(double channelFovYRad = math::deg2rad(35.0),
              double aspect = 4.0 / 3.0,
              double yawStepRad = math::deg2rad(40.0));

  /// Pose the whole rig (vehicle cab position and orientation).
  void setPose(const math::Vec3& eye, const math::Quat& orientation);

  std::size_t channels() const { return cams_.size(); }
  const Camera& channel(std::size_t i) const { return cams_.at(i); }

  /// Total horizontal coverage of the rig, radians.
  double horizontalCoverage() const;

 private:
  std::vector<Camera> cams_;
  double yawStep_;
  double fovY_;
  double aspect_;
};

}  // namespace cod::render
