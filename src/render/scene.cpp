#include "render/scene.hpp"

namespace cod::render {

std::uint32_t Scene::add(const std::string& name, std::shared_ptr<Mesh> mesh,
                         const math::Mat4& transform) {
  SceneObject obj;
  obj.id = nextId_++;
  obj.name = name;
  obj.mesh = std::move(mesh);
  obj.transform = transform;
  objects_.push_back(std::move(obj));
  return objects_.back().id;
}

void Scene::setTransform(std::uint32_t id, const math::Mat4& t) {
  if (SceneObject* o = find(id)) o->transform = t;
}

void Scene::setVisible(std::uint32_t id, bool visible) {
  if (SceneObject* o = find(id)) o->visible = visible;
}

SceneObject* Scene::find(std::uint32_t id) {
  for (SceneObject& o : objects_)
    if (o.id == id) return &o;
  return nullptr;
}

std::size_t Scene::polygonCount() const {
  std::size_t n = 0;
  for (const SceneObject& o : objects_)
    if (o.visible && o.mesh) n += o.mesh->triangleCount();
  return n;
}

}  // namespace cod::render
