#include "render/camera.hpp"

#include <cmath>

namespace cod::render {

using math::Mat4;
using math::Plane;
using math::Quat;
using math::Vec3;
using math::Vec4;

Camera::Camera() {
  setPerspective(fovY_, aspect_, zNear_, zFar_);
  lookAt({0, 0, 1.7}, {1, 0, 1.7});
}

void Camera::setPose(const Vec3& eye, const Quat& orientation) {
  eye_ = eye;
  // Camera convention: forward is +X of the body frame, up is +Z.
  const Vec3 fwd = orientation.rotate({1, 0, 0});
  const Vec3 up = orientation.rotate({0, 0, 1});
  view_ = Mat4::lookAt(eye, eye + fwd, up);
}

void Camera::lookAt(const Vec3& eye, const Vec3& target, const Vec3& up) {
  eye_ = eye;
  view_ = Mat4::lookAt(eye, target, up);
}

void Camera::setPerspective(double fovYRad, double aspect, double zNear,
                            double zFar) {
  fovY_ = fovYRad;
  aspect_ = aspect;
  zNear_ = zNear;
  zFar_ = zFar;
  proj_ = Mat4::perspective(fovYRad, aspect, zNear, zFar);
}

std::array<Plane, 6> Camera::frustumPlanes() const {
  // Gribb–Hartmann extraction from the combined matrix (row-major).
  const Mat4 m = viewProjection();
  auto row = [&](int i) {
    return Vec4{m.m[i][0], m.m[i][1], m.m[i][2], m.m[i][3]};
  };
  const Vec4 r0 = row(0), r1 = row(1), r2 = row(2), r3 = row(3);
  auto toPlane = [](const Vec4& v) {
    const Vec3 n = v.xyz();
    const double len = n.norm();
    return len > 0 ? Plane{n / len, v.w / len} : Plane{};
  };
  return {
      toPlane(r3 + r0),  // left
      toPlane(r3 - r0),  // right
      toPlane(r3 + r1),  // bottom
      toPlane(r3 - r1),  // top
      toPlane(r3 + r2),  // near
      toPlane(r3 - r2),  // far
  };
}

bool Camera::sphereVisible(const math::Sphere& s) const {
  for (const Plane& p : frustumPlanes()) {
    if (p.signedDistance(s.center) < -s.radius) return false;
  }
  return true;
}

SurroundRig::SurroundRig(double channelFovYRad, double aspect,
                         double yawStepRad)
    : yawStep_(yawStepRad), fovY_(channelFovYRad), aspect_(aspect) {
  cams_.resize(3);
  for (Camera& c : cams_) c.setPerspective(fovY_, aspect_, 0.3, 600.0);
  setPose({0, 0, 1.7}, Quat{});
}

void SurroundRig::setPose(const Vec3& eye, const Quat& orientation) {
  // Channel order: left, centre, right.
  const double yaws[3] = {yawStep_, 0.0, -yawStep_};
  for (std::size_t i = 0; i < cams_.size(); ++i) {
    const Quat q = orientation * Quat::fromAxisAngle({0, 0, 1}, yaws[i]);
    cams_[i].setPose(eye, q);
  }
}

double SurroundRig::horizontalCoverage() const {
  const double hFov = 2.0 * std::atan(std::tan(fovY_ / 2.0) * aspect_);
  return hFov + 2.0 * yawStep_;
}

}  // namespace cod::render
