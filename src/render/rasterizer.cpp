#include "render/rasterizer.hpp"

#include <algorithm>
#include <cmath>

namespace cod::render {

using math::Mat4;
using math::Vec3;
using math::Vec4;

void Rasterizer::setLightDirection(const Vec3& dir) {
  light_ = dir.normalized();
}

namespace {

/// Sutherland–Hodgman clip of a triangle against the near plane z + w > 0.
/// Writes up to 4 vertices; returns the count.
int clipNear(const Vec4 in[3], Vec4 out[4]) {
  int n = 0;
  for (int i = 0; i < 3; ++i) {
    const Vec4& a = in[i];
    const Vec4& b = in[(i + 1) % 3];
    const double da = a.z + a.w;
    const double db = b.z + b.w;
    if (da >= 0.0) out[n++] = a;
    if ((da >= 0.0) != (db >= 0.0)) {
      const double t = da / (da - db);
      out[n++] = a + (b - a) * t;
    }
    if (n >= 4) break;
  }
  return n;
}

}  // namespace

void Rasterizer::drawTriangle(Framebuffer& fb, const Vec4 clip[3], Color c) {
  // Perspective divide → NDC → viewport.
  double sx[3], sy[3], sz[3];
  for (int i = 0; i < 3; ++i) {
    const double invW = 1.0 / clip[i].w;
    const double nx = clip[i].x * invW;
    const double ny = clip[i].y * invW;
    sz[i] = clip[i].z * invW;
    sx[i] = (nx + 1.0) * 0.5 * fb.width();
    sy[i] = (1.0 - ny) * 0.5 * fb.height();
  }
  const double area = (sx[1] - sx[0]) * (sy[2] - sy[0]) -
                      (sx[2] - sx[0]) * (sy[1] - sy[0]);
  if (std::abs(area) < 1e-9) return;
  const int x0 = std::max(0, static_cast<int>(std::floor(
                                 std::min({sx[0], sx[1], sx[2]}))));
  const int x1 = std::min(fb.width() - 1,
                          static_cast<int>(std::ceil(
                              std::max({sx[0], sx[1], sx[2]}))));
  const int y0 = std::max(0, static_cast<int>(std::floor(
                                 std::min({sy[0], sy[1], sy[2]}))));
  const int y1 = std::min(fb.height() - 1,
                          static_cast<int>(std::ceil(
                              std::max({sy[0], sy[1], sy[2]}))));
  if (x0 > x1 || y0 > y1) return;
  const double invArea = 1.0 / area;
  ++stats_.trianglesDrawn;
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const double px = x + 0.5;
      const double py = y + 0.5;
      const double w0 = ((sx[1] - px) * (sy[2] - py) -
                         (sx[2] - px) * (sy[1] - py)) * invArea;
      const double w1 = ((sx[2] - px) * (sy[0] - py) -
                         (sx[0] - px) * (sy[2] - py)) * invArea;
      const double w2 = 1.0 - w0 - w1;
      if (w0 < 0.0 || w1 < 0.0 || w2 < 0.0) continue;
      const double z = w0 * sz[0] + w1 * sz[1] + w2 * sz[2];
      fb.plot(x, y, z, c);
      ++stats_.pixelsShaded;
    }
  }
}

void Rasterizer::render(const Scene& scene, const Camera& camera,
                        Framebuffer& fb) {
  const Mat4 vp = camera.viewProjection();
  for (const SceneObject& obj : scene.objects()) {
    if (!obj.visible || !obj.mesh) continue;
    ++stats_.objectsSubmitted;
    // Per-object cull: world bounding sphere vs frustum.
    math::Sphere ws;
    ws.center = obj.transform.transformPoint(obj.mesh->boundingSphere().center);
    ws.radius = obj.mesh->boundingSphere().radius;
    if (!camera.sphereVisible(ws)) {
      ++stats_.objectsCulled;
      continue;
    }
    const Mat4 mvp = vp * obj.transform;
    const auto& verts = obj.mesh->vertices();
    const auto& tris = obj.mesh->triangles();
    for (const auto& tri : tris) {
      ++stats_.trianglesSubmitted;
      const Vec3& a = verts[tri[0]];
      const Vec3& b = verts[tri[1]];
      const Vec3& cpos = verts[tri[2]];
      // Flat shade from the world-space normal.
      const Vec3 wa = obj.transform.transformPoint(a);
      const Vec3 wb = obj.transform.transformPoint(b);
      const Vec3 wc = obj.transform.transformPoint(cpos);
      const Vec3 n = (wb - wa).cross(wc - wa).normalized();
      const double k = 0.25 + 0.75 * std::abs(n.dot(light_));
      const Color shadedColor = obj.mesh->color().shaded(k);

      const Vec4 clip[3] = {mvp * Vec4{a, 1.0}, mvp * Vec4{b, 1.0},
                            mvp * Vec4{cpos, 1.0}};
      // Quick reject: all vertices outside one clip half-space.
      auto allOutside = [&](auto pred) {
        return pred(clip[0]) && pred(clip[1]) && pred(clip[2]);
      };
      if (allOutside([](const Vec4& v) { return v.x < -v.w; }) ||
          allOutside([](const Vec4& v) { return v.x > v.w; }) ||
          allOutside([](const Vec4& v) { return v.y < -v.w; }) ||
          allOutside([](const Vec4& v) { return v.y > v.w; }) ||
          allOutside([](const Vec4& v) { return v.z > v.w; })) {
        ++stats_.trianglesClipped;
        continue;
      }
      Vec4 poly[4];
      const int nVerts = clipNear(clip, poly);
      if (nVerts < 3) {
        ++stats_.trianglesClipped;
        continue;
      }
      // Fan-triangulate the clipped polygon (two-sided fill).
      for (int i = 1; i + 1 < nVerts; ++i) {
        const Vec4 fan[3] = {poly[0], poly[i], poly[i + 1]};
        drawTriangle(fb, fan, shadedColor);
      }
    }
  }
}

}  // namespace cod::render
