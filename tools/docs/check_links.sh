#!/usr/bin/env bash
# Verify every intra-repo markdown link resolves to a real file.
#
#   usage: tools/docs/check_links.sh [repo-root]
#
# Scans every tracked *.md outside build trees for inline links
# [text](target), skips external schemes (http/https/mailto) and
# pure-anchor links (#section), strips #anchors from file targets, and
# resolves the rest relative to the linking file (or the repo root for
# /absolute-style targets). Exits non-zero listing every broken link —
# CI runs this so a docs reorganization cannot silently orphan the
# cross-references that make the docs navigable.
set -uo pipefail

ROOT="${1:-.}"
cd "${ROOT}" || exit 1

broken=0
checked=0

# Markdown files: prefer git's view (tracked files only); fall back to
# find for exported trees without .git.
if git rev-parse --git-dir >/dev/null 2>&1; then
  mapfile -t files < <(git ls-files '*.md')
else
  mapfile -t files < <(find . -name '*.md' -not -path './build*/*' \
                       -not -path './.git/*' | sed 's|^\./||')
fi

if [[ "${#files[@]}" -eq 0 ]]; then
  echo "error: no markdown files found under ${ROOT}" >&2
  exit 1
fi

for f in "${files[@]}"; do
  # The paper-retrieval archives carry figure links into assets that were
  # never vendored; they are source material, not navigable docs.
  case "${f}" in
    PAPER.md|PAPERS.md|SNIPPETS.md) continue ;;
  esac
  dir="$(dirname "${f}")"
  # Inline links only (reference-style defs are rare here); one per line
  # via grep -o so multiple links on a line are all seen. The pattern
  # deliberately rejects targets with spaces/parens — our docs do not
  # use them, and anything weirder should fail loudly anyway.
  while IFS= read -r target; do
    case "${target}" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [[ -z "${path}" ]] && continue
    if [[ "${path}" = /* ]]; then
      resolved=".${path}"
    else
      resolved="${dir}/${path}"
    fi
    checked=$((checked + 1))
    if [[ ! -e "${resolved}" ]]; then
      echo "BROKEN: ${f}: (${target}) -> ${resolved}" >&2
      broken=$((broken + 1))
    fi
  done < <(grep -o '\[[^][]*\]([^()[:space:]]*)' "${f}" 2>/dev/null \
           | sed 's/^\[[^][]*\](//; s/)$//')
done

echo "checked ${checked} intra-repo links across ${#files[@]} markdown files"
if [[ "${broken}" -ne 0 ]]; then
  echo "error: ${broken} broken link(s)" >&2
  exit 1
fi
