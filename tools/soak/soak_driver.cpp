// soak_driver — orchestrator and judge of the multi-process UDP soak.
//
// Spawns N soak_node processes on loopback (dynamics, scenario,
// instructor, displays), all under the same injected impairment, lets
// them run for --duration seconds, SIGKILLs --victim at --kill-at and
// restarts it at --restart-at (exercising channel timeout → rediscovery
// end to end on real sockets), then reads every node's report and exits
// non-zero unless:
//
//   1. every node process exited 0 and wrote a complete report;
//   2. every reliable probe stream was delivered 100% in order: one
//      gapless segment per publisher incarnation, final segment ending
//      exactly at the publisher's last published sequence (a SIGKILLed
//      first incarnation is owed only a clean in-order prefix — its
//      unacked tail died with the process, which no protocol can fix);
//   3. the monitor host's HealthMonitor raised NODE_SILENT and then
//      NODE_RECOVERED for the victim;
//   4. the monitor's reliable-counter loss estimate tracks the injected
//      rate within --tolerance-pp for every node with enough samples
//      (real sockets cannot attribute drops, so this estimate is the
//      deployment's only loss observable — it had better be honest);
//   5. the monitor's last telemetry view of every node's core counters
//      matches the node's own StatRegistry dump within
//      --stat-tolerance-pct (telemetry that silently diverges from
//      ground truth is worse than none).
//
// Two alternate rack shapes:
//   --mass-connect     N identical `mass` nodes (default 10) open a
//                      C-class two-publishers-per-class matrix —
//                      C*2*(N-1) reliable network channels (>= 1000 at
//                      the defaults). The verdict additionally requires
//                      every node's mass channel counts to match the
//                      topology exactly, every class delivered from both
//                      publishers, and the monitor (on mass-0) to see the
//                      same channel matrix through telemetry. Kill/
//                      restart is off by default (it is a connect storm,
//                      not a failover drill).
//   --rack=display-heavy  dynamics + dynamics-b (two publishers of every
//                      crane class), scenario, instructor, and displays
//                      on the remaining nodes.
//
// Failure drills on top of either shape:
//   --starve-node=<n>  run node <n> under much harsher duplex impairment
//                      (--starve-loss / --starve-delay-ms) than the rest
//                      of the rack. Combined with --flow (the adaptive
//                      flow-control stack) and --min-publish-rate, the
//                      verdict demands the starved node still converge to
//                      100% in-order delivery AND the healthy nodes keep
//                      their nominal publish rate — survival, not just
//                      eventual delivery.
//
// Node stdout/stderr land in --out/<name>.log; reports in
// --out/<name>.report. CI uploads the directory as an artifact when the
// verdict fails.
#include <dirent.h>
#include <fcntl.h>
#include <libgen.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/udp.hpp"
#include "tools/soak/soak_common.hpp"

namespace {

using namespace cod;

using soak::Segment;
using soak::wallSec;

struct NodeSpec {
  std::string name;
  std::string role;
  int host = 0;
  int displayChannel = 0;
  int massIndex = 0;
};

struct Report {
  bool present = false;
  bool exitOk = false;
  std::uint64_t published = 0;
  std::map<std::string, std::vector<Segment>> streams;
  std::map<std::string, std::uint64_t> dups;
  std::vector<std::pair<std::string, std::string>> alarms;  // kind, node
  struct LossEst {
    double pct = 0.0;
    std::uint64_t data = 0, retx = 0;
  };
  std::map<std::string, LossEst> lossEst;
  struct Counters {
    bool present = false;
    std::uint64_t updates = 0, data = 0, retx = 0;
  };
  Counters self;                                // self-counters
  std::map<std::string, Counters> monCounters;  // mon-counters, by node
  struct ChannelCount {
    bool present = false;
    std::uint64_t out = 0, in = 0, live = 0;
  };
  ChannelCount massChannels;                         // channels-mass
  std::map<std::string, ChannelCount> monChannels;   // mon-channels
  // mass-class → (reflections, distinct sources)
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> massClasses;
  struct Latency {
    bool present = false;
    double p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;  // milliseconds
    std::uint64_t samples = 0;
  };
  Latency latency;  // whole-run delivery latency (sampling on only)
};

std::uint64_t kvU64(const std::string& token, const std::string& key) {
  const auto v = soak::kvToken(token, key);
  return v ? std::stoull(*v) : 0;
}

void parseLine(const std::string& line, Report& r) {
  std::istringstream ls(line);
  std::string kind;
  ls >> kind;
  if (kind == "probe-published") {
    ls >> r.published;
  } else if (kind == "probe") {
    std::string peer, word, tok;
    std::size_t idx = 0;
    ls >> peer >> word >> idx;
    Segment seg;
    while (ls >> tok) {
      if (auto v = soak::kvToken(tok, "first")) seg.first = std::stoull(*v);
      if (auto v = soak::kvToken(tok, "last")) seg.last = std::stoull(*v);
      if (auto v = soak::kvToken(tok, "count")) seg.count = std::stoull(*v);
      if (auto v = soak::kvToken(tok, "gaps")) seg.gaps = std::stoull(*v);
    }
    r.streams[peer].push_back(seg);
  } else if (kind == "probe-summary") {
    std::string peer, tok;
    ls >> peer;
    while (ls >> tok) r.dups[peer] += kvU64(tok, "dups");
  } else if (kind == "alarm") {
    std::string alarmKind, node;
    ls >> alarmKind >> node;
    r.alarms.emplace_back(alarmKind, node);
  } else if (kind == "loss-est") {
    std::string node, tok;
    Report::LossEst est;
    ls >> node >> est.pct;
    while (ls >> tok) {
      if (auto v = soak::kvToken(tok, "data")) est.data = std::stoull(*v);
      if (auto v = soak::kvToken(tok, "retx")) est.retx = std::stoull(*v);
    }
    r.lossEst[node] = est;
  } else if (kind == "self-counters" || kind == "mon-counters") {
    std::string node, tok;
    if (kind == "mon-counters") ls >> node;
    Report::Counters c;
    c.present = true;
    while (ls >> tok) {
      if (auto v = soak::kvToken(tok, "updates")) c.updates = std::stoull(*v);
      if (auto v = soak::kvToken(tok, "data")) c.data = std::stoull(*v);
      if (auto v = soak::kvToken(tok, "retx")) c.retx = std::stoull(*v);
    }
    if (kind == "mon-counters")
      r.monCounters[node] = c;
    else
      r.self = c;
  } else if (kind == "channels-mass" || kind == "mon-channels") {
    std::string node, tok;
    if (kind == "mon-channels") ls >> node;
    Report::ChannelCount c;
    c.present = true;
    while (ls >> tok) {
      if (auto v = soak::kvToken(tok, "out")) c.out = std::stoull(*v);
      if (auto v = soak::kvToken(tok, "in")) c.in = std::stoull(*v);
      if (auto v = soak::kvToken(tok, "live")) c.live = std::stoull(*v);
    }
    if (kind == "mon-channels")
      r.monChannels[node] = c;
    else
      r.massChannels = c;
  } else if (kind == "mass-class") {
    std::string cls, tok;
    ls >> cls;
    std::uint64_t refl = 0, src = 0;
    while (ls >> tok) {
      if (auto v = soak::kvToken(tok, "reflections")) refl = std::stoull(*v);
      if (auto v = soak::kvToken(tok, "sources")) src = std::stoull(*v);
    }
    r.massClasses[cls] = {refl, src};
  } else if (kind == "latency") {
    std::string tok;
    r.latency.present = true;
    while (ls >> tok) {
      if (auto v = soak::kvToken(tok, "p50")) r.latency.p50 = std::stod(*v);
      if (auto v = soak::kvToken(tok, "p90")) r.latency.p90 = std::stod(*v);
      if (auto v = soak::kvToken(tok, "p99")) r.latency.p99 = std::stod(*v);
      if (auto v = soak::kvToken(tok, "max")) r.latency.max = std::stod(*v);
      if (auto v = soak::kvToken(tok, "samples"))
        r.latency.samples = std::stoull(*v);
    }
  } else if (kind == "exit") {
    std::string status;
    ls >> status;
    r.exitOk = status == "ok";
  }
}

Report parseReport(const std::string& path) {
  Report r;
  std::ifstream in(path);
  if (!in) return r;
  r.present = true;
  std::string line;
  while (std::getline(in, line)) {
    try {
      parseLine(line, r);
    } catch (const std::exception& e) {
      // A truncated or garbled line (e.g. the driver's collect-phase
      // SIGKILL landed mid-flush) must not abort the whole verdict — the
      // missing "exit ok" trailer already fails this node's report check,
      // and every other node still gets its diagnostics printed.
      std::fprintf(stderr, "soak_driver: %s: unparsable line \"%s\" (%s)\n",
                   path.c_str(), line.c_str(), e.what());
    }
  }
  return r;
}

class Driver {
 public:
  explicit Driver(const soak::Args& args) : args_(args) {
    outDir_ = args.str("out", "soak-out");
    nodeBin_ = args.str("node-bin", "");
    duration_ = args.num("duration", 75.0);
    lossPct_ = args.num("loss", 25.0);
    massConnect_ = args.has("mass-connect");
    massClasses_ = static_cast<int>(args.integer("mass-classes", 56));
    rack_ = args.str("rack", "standard");
    killAt_ = args.num("kill-at", duration_ * 0.33);
    restartAt_ = args.num("restart-at", duration_ * 0.44);
    tolerancePp_ = args.num("tolerance-pp", 5.0);
    statTolerancePct_ = args.num("stat-tolerance-pct", 10.0);
    minLossSamples_ =
        static_cast<std::uint64_t>(args.integer("min-loss-samples", 400));
    maxP99Ms_ = args.num("max-p99-ms", 0.0);  // 0 = latency gate off
    // The starved-node drill: one node runs under much harsher duplex
    // impairment than the rest (its transport drops and delays both
    // directions), and the verdict still demands full in-order probe
    // delivery plus — via --min-publish-rate — that the HEALTHY nodes'
    // publish rates were not dragged down with it.
    starveNode_ = args.str("starve-node", "");
    starveLossPct_ = args.num("starve-loss", 40.0);
    starveDelayMs_ = args.num("starve-delay-ms", 100.0);
    minPublishRate_ = args.num("min-publish-rate", 0.0);  // 0 = gate off
    // --archive: the monitor host records the run's flight-data archive,
    // and the verdict re-runs its own post-mortem checks by replaying the
    // file through cod_inspect — the offline judgement must agree with
    // the live one.
    archiveEnabled_ = args.has("archive");
    archivePath_ = outDir_ + "/soak.archive";
    const int nodes =
        static_cast<int>(args.integer("nodes", massConnect_ ? 10 : 4));
    if (massConnect_) {
      // The 1000-LP bar needs the channel matrix C*2*(N-1) >= 1000.
      if (nodes < 8)
        throw std::invalid_argument("--mass-connect needs --nodes >= 8");
      if (massClasses_ < 1)
        throw std::invalid_argument("--mass-classes must be >= 1");
      for (int i = 0; i < nodes; ++i)
        specs_.push_back(
            {"mass-" + std::to_string(i), "mass", i, 0, i});
      monitorNode_ = "mass-0";
      // A connect storm, not a failover drill: kill/restart only when
      // explicitly requested.
      if (!args.has("kill-at")) killAt_ = duration_ + 1.0;
      victim_ = args.str("victim", specs_.back().name);
    } else if (rack_ == "display-heavy") {
      // Two dynamics publishers of every crane class, and every spare
      // node a display — the fan-out-heavy shape of a licensure rack.
      if (nodes < 5)
        throw std::invalid_argument("--rack=display-heavy needs --nodes >= 5");
      specs_.push_back({"dynamics", "dynamics", 0, 0, 0});
      specs_.push_back({"dynamics-b", "dynamics", 1, 0, 0});
      specs_.push_back({"scenario", "scenario", 2, 0, 0});
      specs_.push_back({"instructor", "instructor", 3, 0, 0});
      for (int i = 4; i < nodes; ++i)
        specs_.push_back({"display-" + std::to_string(i - 4), "display", i,
                          (i - 4) % 3, 0});
      monitorNode_ = "instructor";
      victim_ = args.str("victim", "display-0");
    } else {
      if (nodes < 4)
        throw std::invalid_argument("--nodes must be >= 4 (one per core role)");
      specs_.push_back({"dynamics", "dynamics", 0, 0, 0});
      specs_.push_back({"scenario", "scenario", 1, 0, 0});
      specs_.push_back({"instructor", "instructor", 2, 0, 0});
      for (int i = 3; i < nodes; ++i)
        specs_.push_back({"display-" + std::to_string(i - 3), "display", i,
                          (i - 3) % 3, 0});
      monitorNode_ = "instructor";
      victim_ = args.str("victim", "display-0");
    }
    // A typo'd victim must die here: at kill time an unknown name would
    // default-insert pid 0 into the table and ::kill(0, SIGKILL) would
    // take out the driver's whole process group.
    if (specFor(victim_) == nullptr)
      throw std::invalid_argument("--victim=" + victim_ +
                                  " names no spawned node");
    if (!starveNode_.empty() && specFor(starveNode_) == nullptr)
      throw std::invalid_argument("--starve-node=" + starveNode_ +
                                  " names no spawned node");
  }

  int run(char** argv) {
    ::mkdir(outDir_.c_str(), 0777);
    if (archiveEnabled_) {
      // One driver run is one flight. The archive writer deliberately
      // rotates (never truncates) segments a previous incarnation left —
      // right for a victim restart INSIDE a run, wrong across runs: a
      // re-run in the same --out would replay last run's alarms
      // concatenated with this one's and fail the replay gate on a
      // backwards-jumping clock. Scrub soak.archive and every rotated
      // soak.archive.<n> before spawning.
      if (DIR* d = ::opendir(outDir_.c_str())) {
        const std::string base = "soak.archive";
        while (const dirent* e = ::readdir(d)) {
          const std::string name = e->d_name;
          if (name == base || name.compare(0, base.size() + 1, base + ".") == 0)
            std::remove((outDir_ + "/" + name).c_str());
        }
        ::closedir(d);
      }
    }
    if (nodeBin_.empty()) {
      // Default: soak_node next to this binary.
      std::vector<char> self(argv[0], argv[0] + std::strlen(argv[0]) + 1);
      nodeBin_ = std::string(::dirname(self.data())) + "/soak_node";
    }
    inspectBin_ = args_.str("inspect-bin", "");
    if (inspectBin_.empty()) {
      // Default: cod_inspect in the sibling tools/inspect build dir.
      std::vector<char> self(argv[0], argv[0] + std::strlen(argv[0]) + 1);
      inspectBin_ =
          std::string(::dirname(self.data())) + "/../inspect/cod_inspect";
    }

    // The whole address plan is sized to the node count and anchored on a
    // kernel-assigned ephemeral port — parallel CI lanes cannot collide
    // on a constant the way fixed-port plans do.
    portsPerHost_ = 4;
    maxHosts_ = static_cast<int>(specs_.size());
    basePort_ = static_cast<std::uint16_t>(args_.integer("base-port", 0));
    if (basePort_ == 0)
      basePort_ = net::pickEphemeralBasePort(
          static_cast<std::uint16_t>(maxHosts_ * portsPerHost_),
          args_.str("bind-ip", "127.0.0.1"));
    std::printf("soak_driver: %zu nodes, base port %u, %.0f s at %.0f%% loss, "
                "kill %s @ %.1fs, restart @ %.1fs\n",
                specs_.size(), basePort_, duration_, lossPct_, victim_.c_str(),
                killAt_, restartAt_);

    const double start = wallSec();
    const double endAt = start + duration_;
    for (const NodeSpec& s : specs_) pids_[s.name] = spawn(s, duration_);

    // ---- Supervise: kill, restart, watch for early deaths ---------------
    // Supervision stops shy of the end: nodes measure their own duration
    // from their own start, so a node exiting right on time must not be
    // mistaken for an early death by a racing WNOHANG.
    bool killed = false, restarted = false;
    bool earlyDeath = false;
    while (wallSec() < endAt - 1.0) {
      const double t = wallSec() - start;
      if (!killed && t >= killAt_) {
        killed = true;
        std::printf("soak_driver: t=%.1f SIGKILL %s (pid %d)\n", t,
                    victim_.c_str(), pids_[victim_]);
        std::fflush(stdout);
        ::kill(pids_[victim_], SIGKILL);
        ::waitpid(pids_[victim_], nullptr, 0);
        pids_.erase(victim_);
      }
      if (killed && !restarted && t >= restartAt_) {
        restarted = true;
        const NodeSpec* spec = specFor(victim_);
        const double remaining = endAt - wallSec();
        std::printf("soak_driver: t=%.1f restart %s (%.1f s remaining)\n", t,
                    victim_.c_str(), remaining);
        std::fflush(stdout);
        pids_[victim_] = spawn(*spec, remaining);
      }
      // Any other child exiting before the end is a failure on its own.
      for (const auto& [name, pid] : pids_) {
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid) {
          std::fprintf(stderr, "soak_driver: %s (pid %d) died early: %s=%d\n",
                       name.c_str(), pid,
                       WIFSIGNALED(status) ? "signal" : "status",
                       WIFSIGNALED(status) ? WTERMSIG(status)
                                           : WEXITSTATUS(status));
          pids_.erase(name);
          earlyDeath = true;
          break;
        }
      }
      if (earlyDeath) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    // ---- Collect children (grace period, then SIGKILL) ------------------
    bool exitFailure = earlyDeath;
    const double reapDeadline = wallSec() + 20.0;
    for (auto& [name, pid] : pids_) {
      int status = 0;
      pid_t got = 0;
      while ((got = ::waitpid(pid, &status, WNOHANG)) == 0 &&
             wallSec() < reapDeadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (got == 0) {
        std::fprintf(stderr, "soak_driver: %s hung; SIGKILL\n", name.c_str());
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        exitFailure = true;
      } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "soak_driver: %s exited abnormally (%d)\n",
                     name.c_str(), status);
        exitFailure = true;
      }
    }

    return verdict(exitFailure) ? 0 : 1;
  }

 private:
  const NodeSpec* specFor(const std::string& name) const {
    for (const NodeSpec& s : specs_)
      if (s.name == name) return &s;
    return nullptr;
  }

  std::string peersCsv(const std::string& self) const {
    std::string csv;
    for (const NodeSpec& s : specs_) {
      if (s.name == self) continue;
      if (!csv.empty()) csv += ",";
      csv += s.name;
    }
    return csv;
  }

  pid_t spawn(const NodeSpec& s, double duration) {
    std::vector<std::string> argStrs{
        nodeBin_,
        "--name=" + s.name,
        "--role=" + s.role,
        "--host=" + std::to_string(s.host),
        "--base-port=" + std::to_string(basePort_),
        "--ports-per-host=" + std::to_string(portsPerHost_),
        "--max-hosts=" + std::to_string(maxHosts_),
        "--peers=" + peersCsv(s.name),
        "--report=" + outDir_ + "/" + s.name + ".report",
        "--duration=" + std::to_string(duration),
        "--display-channel=" + std::to_string(s.displayChannel),
    };
    // Loss is driver-owned (the verdict compares estimates against it);
    // the remaining knobs pass through to the node untouched.
    argStrs.push_back("--loss=" + std::to_string(lossPct_));
    for (const char* key :
         {"dup", "reorder", "delay-ms", "jitter-ms", "seed", "probe-hz",
          "quiesce", "telemetry-interval", "silent-after", "channel-timeout",
          "heartbeat", "ack-interval", "shards", "mass-hz",
          "keyframe-interval", "bind-ip", "host-ips", "trace-sample", "flow",
          "send-window-bytes", "tick-flush-bytes", "split-lag-frames",
          "phase-profile", "async-net"}) {
      if (args_.has(key))
        argStrs.push_back("--" + std::string(key) + "=" +
                          args_.str(key, ""));
    }
    // The starved node's harsher impairment overrides the rack-wide
    // settings (soak::Args keeps the LAST occurrence of a repeated key,
    // so appending after the passthroughs wins).
    if (s.name == starveNode_) {
      argStrs.push_back("--loss=" + std::to_string(starveLossPct_));
      argStrs.push_back("--delay-ms=" + std::to_string(starveDelayMs_));
      argStrs.push_back("--impair-rx=1");  // duplex: its whole link is bad
    }
    // Tracing on means every node keeps a flight recorder; route its dump
    // (exit-time, SIGUSR2, or CRIT-alarm-triggered) into the out dir so a
    // failing CI run uploads the rings alongside logs and reports.
    if (args_.has("trace-sample"))
      argStrs.push_back("--trace-dump=" + outDir_ + "/" + s.name +
                        ".trace.json");
    if (s.role == "mass") {
      argStrs.push_back("--mass-classes=" + std::to_string(massClasses_));
      argStrs.push_back("--mass-nodes=" + std::to_string(specs_.size()));
      argStrs.push_back("--mass-index=" + std::to_string(s.massIndex));
    }
    // The monitor host: the instructor role brings its own; any other
    // shape (mass-0) gets an explicit monitor.
    if (s.name == monitorNode_ && s.role != "instructor")
      argStrs.push_back("--monitor=1");
    // The monitor host is also the flight-data recorder: one archive
    // records the whole cluster's health feed.
    if (archiveEnabled_ && s.name == monitorNode_)
      argStrs.push_back("--archive=" + archivePath_);

    const std::string logPath = outDir_ + "/" + s.name + ".log";
    const pid_t pid = ::fork();
    if (pid < 0) throw std::system_error(errno, std::generic_category(), "fork");
    if (pid == 0) {
      // Child: stdout+stderr → append to the node's log (a restarted
      // victim continues the same file, with the banner marking the new
      // incarnation).
      const int fd =
          ::open(logPath.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        ::close(fd);
      }
      std::vector<char*> argvChild;
      argvChild.reserve(argStrs.size() + 1);
      for (std::string& a : argStrs) argvChild.push_back(a.data());
      argvChild.push_back(nullptr);
      ::execv(nodeBin_.c_str(), argvChild.data());
      std::fprintf(stderr, "execv %s: %s\n", nodeBin_.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    return pid;
  }

  // ---- Verdict ----------------------------------------------------------

  bool check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) failures_++;
    return ok;
  }

  bool verdict(bool exitFailure) {
    std::printf("\n== SOAK VERDICT (%zu nodes, %.0f s, %.0f%% loss) ==\n",
                specs_.size(), duration_, lossPct_);
    check(!exitFailure, "all node processes ran to completion and exited 0");

    std::map<std::string, Report> reports;
    for (const NodeSpec& s : specs_) {
      reports[s.name] = parseReport(outDir_ + "/" + s.name + ".report");
      check(reports[s.name].present && reports[s.name].exitOk,
            "report complete: " + s.name);
    }

    // Reliable probe streams: 100% in-order delivery. (The mass rack
    // runs no probes — delivery is judged per mass class instead.)
    if (!massConnect_) {
      for (const NodeSpec& sub : specs_) {
        const Report& r = reports[sub.name];
        for (const NodeSpec& pub : specs_) {
          if (pub.name == sub.name) continue;
          const auto it = r.streams.find(pub.name);
          std::ostringstream what;
          what << "stream " << pub.name << " -> " << sub.name;
          if (it == r.streams.end()) {
            check(false, what.str() + ": never connected");
            continue;
          }
          const std::vector<Segment>& segs = it->second;
          std::uint64_t gaps = 0, delivered = 0;
          for (const Segment& seg : segs) {
            gaps += seg.gaps;
            delivered += seg.count;
          }
          const std::uint64_t dups =
              r.dups.count(pub.name) ? r.dups.at(pub.name) : 0;
          const bool isVictimPub = pub.name == victim_;
          // A publisher that lived to the end is owed delivery through its
          // final sequence; a SIGKILLed incarnation only through the last
          // frame its successor's report cannot know — so judge the final
          // segment against the final incarnation's published count.
          const std::uint64_t expectLast = reports[pub.name].published;
          const std::size_t maxSegs =
              isVictimPub && sub.name != victim_ ? 2 : 1;
          const Segment& lastSeg = segs.back();
          std::ostringstream detail;
          detail << what.str() << ": " << delivered << " frames, "
                 << segs.size() << " segment(s), gaps=" << gaps
                 << " dups=" << dups << " last=" << lastSeg.last << "/"
                 << expectLast;
          check(segs.size() <= maxSegs && gaps == 0 && dups == 0 &&
                    lastSeg.last == expectLast,
                detail.str());
        }
      }
    }

    // The mass-connect matrix: exact channel counts per node, every
    // class delivered from both of its publishers, and the monitor's
    // telemetry view agreeing with the topology.
    const Report& instr = reports[monitorNode_];
    if (massConnect_) {
      const int n = static_cast<int>(specs_.size());
      const int c = massClasses_;
      std::uint64_t totalNetworkChannels = 0;
      for (const NodeSpec& s : specs_) {
        const Report& r = reports[s.name];
        // Same assignment rule as MassLp::publishes — class k is owned
        // by nodes k%N and (k+1)%N.
        std::uint64_t pubs = 0;
        for (int k = 0; k < c; ++k)
          if (k % n == s.massIndex || (k + 1) % n == s.massIndex) ++pubs;
        const std::uint64_t expectOut = pubs * (n - 1);
        const std::uint64_t expectIn = 2ull * c - pubs;
        totalNetworkChannels += expectOut;
        std::ostringstream what;
        what << "channels " << s.name << ": out=" << r.massChannels.out << "/"
             << expectOut << " in=" << r.massChannels.in << "/" << expectIn
             << " live=" << r.massChannels.live << "/"
             << expectOut + expectIn;
        check(r.massChannels.present && r.massChannels.out == expectOut &&
                  r.massChannels.in == expectIn &&
                  r.massChannels.live == expectOut + expectIn,
              what.str());
        std::uint64_t delivered = 0;
        bool deliveryOk = r.massClasses.size() == static_cast<std::size_t>(c);
        for (const auto& [cls, refSrc] : r.massClasses) {
          if (refSrc.first == 0 || refSrc.second != 2) deliveryOk = false;
          delivered += refSrc.first;
        }
        std::ostringstream dwhat;
        dwhat << "delivery " << s.name << ": " << r.massClasses.size() << "/"
              << c << " classes from both publishers, " << delivered
              << " reflections";
        check(deliveryOk, dwhat.str());
        const auto mit = instr.monChannels.find(s.name);
        std::ostringstream twhat;
        twhat << "telemetry sees " << s.name << "'s channel matrix";
        if (mit == instr.monChannels.end()) {
          check(false, twhat.str() + ": no mon-channels record");
        } else {
          twhat << ": out=" << mit->second.out << "/" << expectOut
                << " in=" << mit->second.in << "/" << expectIn;
          check(mit->second.out == expectOut && mit->second.in == expectIn,
                twhat.str());
        }
      }
      std::ostringstream what;
      what << "mass rack opens >= 1000 network channels ("
           << totalNetworkChannels << ")";
      check(totalNetworkChannels >= 1000, what.str());
    }

    // Victim lifecycle alarms from the monitor host (skipped when the
    // kill was disabled — nothing went silent by design).
    if (killAt_ <= duration_) {
      std::size_t silentIdx = instr.alarms.size();
      bool recoveredAfter = false;
      for (std::size_t i = 0; i < instr.alarms.size(); ++i) {
        const auto& [kind, node] = instr.alarms[i];
        if (node != victim_) continue;
        if (kind == "NODE_SILENT" && silentIdx == instr.alarms.size())
          silentIdx = i;
        if (kind == "NODE_RECOVERED" && silentIdx < i) recoveredAfter = true;
      }
      check(silentIdx < instr.alarms.size(),
            "monitor raised NODE_SILENT for " + victim_);
      check(recoveredAfter, "monitor raised NODE_RECOVERED for " + victim_);
    }

    // Archive replay: feed the recorded flight data back through
    // cod_inspect and require the OFFLINE monitor to reproduce the live
    // one's judgement — per-node alarm sequences, final counters, and
    // (when the kill ran) the victim's SILENT→RECOVERED arc.
    if (archiveEnabled_) {
      std::fflush(stdout);
      check(replayArchive() == 0,
            "archive replay (cod_inspect) reproduces the live judgement");
    }

    // Reliable-counter loss estimate vs injected ground truth — every
    // rack shape, including mass mode: its 2–4 Hz tail-dominated streams
    // once biased the estimate far above the injected rate (the tail
    // RTO's spurious retransmits of already-delivered frames counted as
    // losses), but receivers now report duplicates back on WINDOW_ACK and
    // the estimator subtracts them, so the estimate is accountable at any
    // stream cadence. The starved rack is the one shape still skipped:
    // its per-node impairment is deliberately asymmetric, so no single
    // injected rate exists for a node's aggregate outbound traffic
    // (healthy nodes' frames toward the starved peer die at ITS receive
    // side and inflate their estimates by design).
    if (starveNode_.empty()) {
      for (const NodeSpec& s : specs_) {
        const auto it = instr.lossEst.find(s.name);
        std::ostringstream what;
        if (it == instr.lossEst.end()) {
          check(false, "loss estimate present for " + s.name);
          continue;
        }
        const Report::LossEst& est = it->second;
        const std::uint64_t samples = est.data + est.retx;
        what << "loss-est " << s.name << " " << est.pct << "% vs injected "
             << lossPct_ << "% (" << samples << " attempts)";
        if (samples < minLossSamples_) {
          std::printf("  [SKIP] %s: below %llu attempts\n", what.str().c_str(),
                      static_cast<unsigned long long>(minLossSamples_));
          continue;
        }
        check(std::fabs(est.pct - lossPct_) <= tolerancePp_, what.str());
      }
    } else {
      std::printf("  [SKIP] loss-est gate: per-node impairment is asymmetric "
                  "under --starve-node\n");
    }

    // Healthy-publisher throughput gate (--min-publish-rate): a starved
    // peer must not drag the rest of the rack down. Every healthy node's
    // probe publish count must reach the given fraction of the nominal
    // rate (probe-hz over the publishing window). The victim and the
    // starved node judge survival through the in-order delivery gate
    // instead — the victim's count restarts mid-run, and the starved
    // node's own publishing is exactly what backpressure may thin.
    if (minPublishRate_ > 0.0 && !massConnect_) {
      const double probeHz = args_.num("probe-hz", 40.0);
      const double quiesce = args_.num("quiesce", 5.0);
      const double nominal = probeHz * (duration_ - quiesce);
      for (const NodeSpec& s : specs_) {
        if (s.name == victim_ && killAt_ <= duration_) continue;
        if (s.name == starveNode_) continue;
        const double published =
            static_cast<double>(reports[s.name].published);
        std::ostringstream what;
        what << "publish rate " << s.name << ": " << published << " >= "
             << minPublishRate_ * 100.0 << "% of nominal " << nominal;
        check(published >= minPublishRate_ * nominal, what.str());
      }
    }

    // Telemetry counters vs node-local ground truth: the monitor's last
    // view of each node must match the node's own exit-time StatRegistry
    // dump. The monitor's snapshot is up to one telemetry interval older
    // than the dump, so an absolute floor plus a relative tolerance
    // absorbs the final interval's traffic — anything beyond that is
    // telemetry corrupting counters in flight.
    for (const NodeSpec& s : specs_) {
      const Report& r = reports[s.name];
      const auto it = instr.monCounters.find(s.name);
      std::ostringstream what;
      what << "telemetry counters track ground truth for " << s.name;
      if (!r.self.present || it == instr.monCounters.end()) {
        check(false, what.str() + ": record missing");
        continue;
      }
      const Report::Counters& mon = it->second;
      const auto close = [&](std::uint64_t self, std::uint64_t seen) {
        const double tol =
            std::max(20.0, static_cast<double>(self) * statTolerancePct_ /
                               100.0);
        return std::fabs(static_cast<double>(self) -
                         static_cast<double>(seen)) <= tol;
      };
      what << ": updates " << mon.updates << "/" << r.self.updates << " data "
           << mon.data << "/" << r.self.data << " retx " << mon.retx << "/"
           << r.self.retx << " (tol " << statTolerancePct_ << "%)";
      check(close(r.self.updates, mon.updates) &&
                close(r.self.data, mon.data) && close(r.self.retx, mon.retx),
            what.str());
    }

    // End-to-end delivery-latency gate (--max-p99-ms): each node's
    // whole-run p99 of sampled publish->release latency must stay under
    // the bound. Nodes with too few samples to make a p99 meaningful are
    // skipped individually, but at least one node must clear the sample
    // floor — a gate that silently measured nothing must not pass.
    if (maxP99Ms_ > 0.0) {
      constexpr std::uint64_t kMinLatencySamples = 20;
      std::size_t gated = 0;
      for (const NodeSpec& s : specs_) {
        const Report::Latency& lat = reports[s.name].latency;
        std::ostringstream what;
        what << "latency " << s.name << " p99=" << lat.p99 << "ms (p50="
             << lat.p50 << " max=" << lat.max << ", " << lat.samples
             << " samples) <= " << maxP99Ms_ << "ms";
        if (!lat.present || lat.samples < kMinLatencySamples) {
          std::printf("  [SKIP] %s: below %llu samples\n", what.str().c_str(),
                      static_cast<unsigned long long>(kMinLatencySamples));
          continue;
        }
        ++gated;
        check(lat.p99 <= maxP99Ms_, what.str());
      }
      check(gated > 0, "latency gate measured at least one node");
    }

    std::printf("VERDICT: %s (%d failure%s)\n", failures_ == 0 ? "PASS" : "FAIL",
                failures_, failures_ == 1 ? "" : "s");
    return failures_ == 0;
  }

  /// Run `cod_inspect --replay` over the recorded archive, output to
  /// <out>/inspect.log (echoed on failure). Returns the tool's exit code
  /// (0 replay matched, 1 mismatch, 2 unusable archive), -1 on spawn
  /// trouble.
  int replayArchive() {
    std::vector<std::string> argStrs{
        inspectBin_, "--archive=" + archivePath_, "--replay", "--timeline",
        "--expected-interval=" +
            std::to_string(args_.num("telemetry-interval", 1.0)),
        "--silent-after=" + std::to_string(args_.num("silent-after", 3.0))};
    if (killAt_ <= duration_)
      argStrs.push_back("--verify-victim=" + victim_);
    const std::string logPath = outDir_ + "/inspect.log";
    const pid_t pid = ::fork();
    if (pid < 0) return -1;
    if (pid == 0) {
      const int fd =
          ::open(logPath.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        ::close(fd);
      }
      std::vector<char*> argvChild;
      argvChild.reserve(argStrs.size() + 1);
      for (std::string& a : argStrs) argvChild.push_back(a.data());
      argvChild.push_back(nullptr);
      ::execv(inspectBin_.c_str(), argvChild.data());
      std::fprintf(stderr, "execv %s: %s\n", inspectBin_.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    const int rc =
        WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
    if (rc != 0) {
      // Surface the replay's own mismatch report in the driver log (CI
      // shows the driver's output; the file is an artifact either way).
      std::ifstream in(logPath);
      std::string line;
      while (std::getline(in, line))
        std::printf("    inspect| %s\n", line.c_str());
    }
    return rc;
  }

  soak::Args args_;
  std::vector<NodeSpec> specs_;
  std::map<std::string, pid_t> pids_;
  std::string outDir_, nodeBin_, victim_, rack_, monitorNode_;
  bool massConnect_ = false;
  int massClasses_ = 56;
  double duration_ = 0.0, lossPct_ = 0.0, killAt_ = 0.0, restartAt_ = 0.0;
  double tolerancePp_ = 5.0, statTolerancePct_ = 10.0;
  std::uint64_t minLossSamples_ = 400;
  double maxP99Ms_ = 0.0;
  std::string starveNode_;
  double starveLossPct_ = 40.0, starveDelayMs_ = 100.0;
  double minPublishRate_ = 0.0;
  bool archiveEnabled_ = false;
  std::string archivePath_, inspectBin_;
  std::uint16_t basePort_ = 0;
  int portsPerHost_ = 4, maxHosts_ = 0;
  int failures_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    return Driver(soak::Args(argc, argv)).run(argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "soak_driver: %s\n", e.what());
    return 2;
  }
}
