// soak_driver — orchestrator and judge of the multi-process UDP soak.
//
// Spawns N soak_node processes on loopback (dynamics, scenario,
// instructor, displays), all under the same injected impairment, lets
// them run for --duration seconds, SIGKILLs --victim at --kill-at and
// restarts it at --restart-at (exercising channel timeout → rediscovery
// end to end on real sockets), then reads every node's report and exits
// non-zero unless:
//
//   1. every node process exited 0 and wrote a complete report;
//   2. every reliable probe stream was delivered 100% in order: one
//      gapless segment per publisher incarnation, final segment ending
//      exactly at the publisher's last published sequence (a SIGKILLed
//      first incarnation is owed only a clean in-order prefix — its
//      unacked tail died with the process, which no protocol can fix);
//   3. the instructor's HealthMonitor raised NODE_SILENT and then
//      NODE_RECOVERED for the victim;
//   4. the monitor's reliable-counter loss estimate tracks the injected
//      rate within --tolerance-pp for every node with enough samples
//      (real sockets cannot attribute drops, so this estimate is the
//      deployment's only loss observable — it had better be honest).
//
// Node stdout/stderr land in --out/<name>.log; reports in
// --out/<name>.report. CI uploads the directory as an artifact when the
// verdict fails.
#include <fcntl.h>
#include <libgen.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/udp.hpp"
#include "tools/soak/soak_common.hpp"

namespace {

using namespace cod;

using soak::Segment;
using soak::wallSec;

struct NodeSpec {
  std::string name;
  std::string role;
  int host = 0;
  int displayChannel = 0;
};

struct Report {
  bool present = false;
  bool exitOk = false;
  std::uint64_t published = 0;
  std::map<std::string, std::vector<Segment>> streams;
  std::map<std::string, std::uint64_t> dups;
  std::vector<std::pair<std::string, std::string>> alarms;  // kind, node
  struct LossEst {
    double pct = 0.0;
    std::uint64_t data = 0, retx = 0;
  };
  std::map<std::string, LossEst> lossEst;
};

std::uint64_t kvU64(const std::string& token, const std::string& key) {
  const auto v = soak::kvToken(token, key);
  return v ? std::stoull(*v) : 0;
}

void parseLine(const std::string& line, Report& r) {
  std::istringstream ls(line);
  std::string kind;
  ls >> kind;
  if (kind == "probe-published") {
    ls >> r.published;
  } else if (kind == "probe") {
    std::string peer, word, tok;
    std::size_t idx = 0;
    ls >> peer >> word >> idx;
    Segment seg;
    while (ls >> tok) {
      if (auto v = soak::kvToken(tok, "first")) seg.first = std::stoull(*v);
      if (auto v = soak::kvToken(tok, "last")) seg.last = std::stoull(*v);
      if (auto v = soak::kvToken(tok, "count")) seg.count = std::stoull(*v);
      if (auto v = soak::kvToken(tok, "gaps")) seg.gaps = std::stoull(*v);
    }
    r.streams[peer].push_back(seg);
  } else if (kind == "probe-summary") {
    std::string peer, tok;
    ls >> peer;
    while (ls >> tok) r.dups[peer] += kvU64(tok, "dups");
  } else if (kind == "alarm") {
    std::string alarmKind, node;
    ls >> alarmKind >> node;
    r.alarms.emplace_back(alarmKind, node);
  } else if (kind == "loss-est") {
    std::string node, tok;
    Report::LossEst est;
    ls >> node >> est.pct;
    while (ls >> tok) {
      if (auto v = soak::kvToken(tok, "data")) est.data = std::stoull(*v);
      if (auto v = soak::kvToken(tok, "retx")) est.retx = std::stoull(*v);
    }
    r.lossEst[node] = est;
  } else if (kind == "exit") {
    std::string status;
    ls >> status;
    r.exitOk = status == "ok";
  }
}

Report parseReport(const std::string& path) {
  Report r;
  std::ifstream in(path);
  if (!in) return r;
  r.present = true;
  std::string line;
  while (std::getline(in, line)) {
    try {
      parseLine(line, r);
    } catch (const std::exception& e) {
      // A truncated or garbled line (e.g. the driver's collect-phase
      // SIGKILL landed mid-flush) must not abort the whole verdict — the
      // missing "exit ok" trailer already fails this node's report check,
      // and every other node still gets its diagnostics printed.
      std::fprintf(stderr, "soak_driver: %s: unparsable line \"%s\" (%s)\n",
                   path.c_str(), line.c_str(), e.what());
    }
  }
  return r;
}

class Driver {
 public:
  explicit Driver(const soak::Args& args) : args_(args) {
    outDir_ = args.str("out", "soak-out");
    nodeBin_ = args.str("node-bin", "");
    duration_ = args.num("duration", 75.0);
    lossPct_ = args.num("loss", 25.0);
    killAt_ = args.num("kill-at", duration_ * 0.33);
    restartAt_ = args.num("restart-at", duration_ * 0.44);
    victim_ = args.str("victim", "display-0");
    tolerancePp_ = args.num("tolerance-pp", 5.0);
    minLossSamples_ =
        static_cast<std::uint64_t>(args.integer("min-loss-samples", 400));
    const int nodes = static_cast<int>(args.integer("nodes", 4));
    specs_.push_back({"dynamics", "dynamics", 0, 0});
    specs_.push_back({"scenario", "scenario", 1, 0});
    specs_.push_back({"instructor", "instructor", 2, 0});
    for (int i = 3; i < nodes; ++i)
      specs_.push_back({"display-" + std::to_string(i - 3), "display", i,
                        (i - 3) % 3});
    if (nodes < 4)
      throw std::invalid_argument("--nodes must be >= 4 (one per core role)");
    // A typo'd victim must die here: at kill time an unknown name would
    // default-insert pid 0 into the table and ::kill(0, SIGKILL) would
    // take out the driver's whole process group.
    if (specFor(victim_) == nullptr)
      throw std::invalid_argument("--victim=" + victim_ +
                                  " names no spawned node");
  }

  int run(char** argv) {
    ::mkdir(outDir_.c_str(), 0777);
    if (nodeBin_.empty()) {
      // Default: soak_node next to this binary.
      std::vector<char> self(argv[0], argv[0] + std::strlen(argv[0]) + 1);
      nodeBin_ = std::string(::dirname(self.data())) + "/soak_node";
    }

    // The whole address plan is sized to the node count and anchored on a
    // kernel-assigned ephemeral port — parallel CI lanes cannot collide
    // on a constant the way fixed-port plans do.
    portsPerHost_ = 4;
    maxHosts_ = static_cast<int>(specs_.size());
    basePort_ = static_cast<std::uint16_t>(args_.integer("base-port", 0));
    if (basePort_ == 0)
      basePort_ = net::pickEphemeralBasePort(
          static_cast<std::uint16_t>(maxHosts_ * portsPerHost_));
    std::printf("soak_driver: %zu nodes, base port %u, %.0f s at %.0f%% loss, "
                "kill %s @ %.1fs, restart @ %.1fs\n",
                specs_.size(), basePort_, duration_, lossPct_, victim_.c_str(),
                killAt_, restartAt_);

    const double start = wallSec();
    const double endAt = start + duration_;
    for (const NodeSpec& s : specs_) pids_[s.name] = spawn(s, duration_);

    // ---- Supervise: kill, restart, watch for early deaths ---------------
    // Supervision stops shy of the end: nodes measure their own duration
    // from their own start, so a node exiting right on time must not be
    // mistaken for an early death by a racing WNOHANG.
    bool killed = false, restarted = false;
    bool earlyDeath = false;
    while (wallSec() < endAt - 1.0) {
      const double t = wallSec() - start;
      if (!killed && t >= killAt_) {
        killed = true;
        std::printf("soak_driver: t=%.1f SIGKILL %s (pid %d)\n", t,
                    victim_.c_str(), pids_[victim_]);
        std::fflush(stdout);
        ::kill(pids_[victim_], SIGKILL);
        ::waitpid(pids_[victim_], nullptr, 0);
        pids_.erase(victim_);
      }
      if (killed && !restarted && t >= restartAt_) {
        restarted = true;
        const NodeSpec* spec = specFor(victim_);
        const double remaining = endAt - wallSec();
        std::printf("soak_driver: t=%.1f restart %s (%.1f s remaining)\n", t,
                    victim_.c_str(), remaining);
        std::fflush(stdout);
        pids_[victim_] = spawn(*spec, remaining);
      }
      // Any other child exiting before the end is a failure on its own.
      for (const auto& [name, pid] : pids_) {
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid) {
          std::fprintf(stderr, "soak_driver: %s (pid %d) died early: %s=%d\n",
                       name.c_str(), pid,
                       WIFSIGNALED(status) ? "signal" : "status",
                       WIFSIGNALED(status) ? WTERMSIG(status)
                                           : WEXITSTATUS(status));
          pids_.erase(name);
          earlyDeath = true;
          break;
        }
      }
      if (earlyDeath) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    // ---- Collect children (grace period, then SIGKILL) ------------------
    bool exitFailure = earlyDeath;
    const double reapDeadline = wallSec() + 20.0;
    for (auto& [name, pid] : pids_) {
      int status = 0;
      pid_t got = 0;
      while ((got = ::waitpid(pid, &status, WNOHANG)) == 0 &&
             wallSec() < reapDeadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (got == 0) {
        std::fprintf(stderr, "soak_driver: %s hung; SIGKILL\n", name.c_str());
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        exitFailure = true;
      } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "soak_driver: %s exited abnormally (%d)\n",
                     name.c_str(), status);
        exitFailure = true;
      }
    }

    return verdict(exitFailure) ? 0 : 1;
  }

 private:
  const NodeSpec* specFor(const std::string& name) const {
    for (const NodeSpec& s : specs_)
      if (s.name == name) return &s;
    return nullptr;
  }

  std::string peersCsv(const std::string& self) const {
    std::string csv;
    for (const NodeSpec& s : specs_) {
      if (s.name == self) continue;
      if (!csv.empty()) csv += ",";
      csv += s.name;
    }
    return csv;
  }

  pid_t spawn(const NodeSpec& s, double duration) {
    std::vector<std::string> argStrs{
        nodeBin_,
        "--name=" + s.name,
        "--role=" + s.role,
        "--host=" + std::to_string(s.host),
        "--base-port=" + std::to_string(basePort_),
        "--ports-per-host=" + std::to_string(portsPerHost_),
        "--max-hosts=" + std::to_string(maxHosts_),
        "--peers=" + peersCsv(s.name),
        "--report=" + outDir_ + "/" + s.name + ".report",
        "--duration=" + std::to_string(duration),
        "--display-channel=" + std::to_string(s.displayChannel),
    };
    // Loss is driver-owned (the verdict compares estimates against it);
    // the remaining knobs pass through to the node untouched.
    argStrs.push_back("--loss=" + std::to_string(lossPct_));
    for (const char* key :
         {"dup", "reorder", "delay-ms", "jitter-ms", "seed", "probe-hz",
          "quiesce", "telemetry-interval", "silent-after", "channel-timeout",
          "heartbeat", "ack-interval"}) {
      if (args_.has(key))
        argStrs.push_back("--" + std::string(key) + "=" +
                          args_.str(key, ""));
    }

    const std::string logPath = outDir_ + "/" + s.name + ".log";
    const pid_t pid = ::fork();
    if (pid < 0) throw std::system_error(errno, std::generic_category(), "fork");
    if (pid == 0) {
      // Child: stdout+stderr → append to the node's log (a restarted
      // victim continues the same file, with the banner marking the new
      // incarnation).
      const int fd =
          ::open(logPath.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        ::close(fd);
      }
      std::vector<char*> argvChild;
      argvChild.reserve(argStrs.size() + 1);
      for (std::string& a : argStrs) argvChild.push_back(a.data());
      argvChild.push_back(nullptr);
      ::execv(nodeBin_.c_str(), argvChild.data());
      std::fprintf(stderr, "execv %s: %s\n", nodeBin_.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    return pid;
  }

  // ---- Verdict ----------------------------------------------------------

  bool check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) failures_++;
    return ok;
  }

  bool verdict(bool exitFailure) {
    std::printf("\n== SOAK VERDICT (%zu nodes, %.0f s, %.0f%% loss) ==\n",
                specs_.size(), duration_, lossPct_);
    check(!exitFailure, "all node processes ran to completion and exited 0");

    std::map<std::string, Report> reports;
    for (const NodeSpec& s : specs_) {
      reports[s.name] = parseReport(outDir_ + "/" + s.name + ".report");
      check(reports[s.name].present && reports[s.name].exitOk,
            "report complete: " + s.name);
    }

    // Reliable probe streams: 100% in-order delivery.
    for (const NodeSpec& sub : specs_) {
      const Report& r = reports[sub.name];
      for (const NodeSpec& pub : specs_) {
        if (pub.name == sub.name) continue;
        const auto it = r.streams.find(pub.name);
        std::ostringstream what;
        what << "stream " << pub.name << " -> " << sub.name;
        if (it == r.streams.end()) {
          check(false, what.str() + ": never connected");
          continue;
        }
        const std::vector<Segment>& segs = it->second;
        std::uint64_t gaps = 0, delivered = 0;
        for (const Segment& seg : segs) {
          gaps += seg.gaps;
          delivered += seg.count;
        }
        const std::uint64_t dups =
            r.dups.count(pub.name) ? r.dups.at(pub.name) : 0;
        const bool isVictimPub = pub.name == victim_;
        // A publisher that lived to the end is owed delivery through its
        // final sequence; a SIGKILLed incarnation only through the last
        // frame its successor's report cannot know — so judge the final
        // segment against the final incarnation's published count.
        const std::uint64_t expectLast = reports[pub.name].published;
        const std::size_t maxSegs = isVictimPub && sub.name != victim_ ? 2 : 1;
        const Segment& lastSeg = segs.back();
        std::ostringstream detail;
        detail << what.str() << ": " << delivered << " frames, "
               << segs.size() << " segment(s), gaps=" << gaps
               << " dups=" << dups << " last=" << lastSeg.last << "/"
               << expectLast;
        check(segs.size() <= maxSegs && gaps == 0 && dups == 0 &&
                  lastSeg.last == expectLast,
              detail.str());
      }
    }

    // Victim lifecycle alarms from the instructor's monitor.
    const Report& instr = reports["instructor"];
    std::size_t silentIdx = instr.alarms.size();
    bool recoveredAfter = false;
    for (std::size_t i = 0; i < instr.alarms.size(); ++i) {
      const auto& [kind, node] = instr.alarms[i];
      if (node != victim_) continue;
      if (kind == "NODE_SILENT" && silentIdx == instr.alarms.size())
        silentIdx = i;
      if (kind == "NODE_RECOVERED" && silentIdx < i) recoveredAfter = true;
    }
    check(silentIdx < instr.alarms.size(),
          "monitor raised NODE_SILENT for " + victim_);
    check(recoveredAfter, "monitor raised NODE_RECOVERED for " + victim_);

    // Reliable-counter loss estimate vs injected ground truth.
    for (const NodeSpec& s : specs_) {
      const auto it = instr.lossEst.find(s.name);
      std::ostringstream what;
      if (it == instr.lossEst.end()) {
        check(false, "loss estimate present for " + s.name);
        continue;
      }
      const Report::LossEst& est = it->second;
      const std::uint64_t samples = est.data + est.retx;
      what << "loss-est " << s.name << " " << est.pct << "% vs injected "
           << lossPct_ << "% (" << samples << " attempts)";
      if (samples < minLossSamples_) {
        std::printf("  [SKIP] %s: below %llu attempts\n", what.str().c_str(),
                    static_cast<unsigned long long>(minLossSamples_));
        continue;
      }
      check(std::fabs(est.pct - lossPct_) <= tolerancePp_, what.str());
    }

    std::printf("VERDICT: %s (%d failure%s)\n", failures_ == 0 ? "PASS" : "FAIL",
                failures_, failures_ == 1 ? "" : "s");
    return failures_ == 0;
  }

  soak::Args args_;
  std::vector<NodeSpec> specs_;
  std::map<std::string, pid_t> pids_;
  std::string outDir_, nodeBin_, victim_;
  double duration_ = 0.0, lossPct_ = 0.0, killAt_ = 0.0, restartAt_ = 0.0;
  double tolerancePp_ = 5.0;
  std::uint64_t minLossSamples_ = 400;
  std::uint16_t basePort_ = 0;
  int portsPerHost_ = 4, maxHosts_ = 0;
  int failures_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    return Driver(soak::Args(argc, argv)).run(argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "soak_driver: %s\n", e.what());
    return 2;
  }
}
