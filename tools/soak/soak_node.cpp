// soak_node — one computer of the paper's rack as a real OS process.
//
// Runs one CraneSimulatorApp role (dynamics / scenario / display /
// instructor, selected by --role) on its own CommunicationBackbone over a
// real UdpTransport on loopback, wrapped in net::ImpairedTransport so the
// process lives on a genuinely lossy, reordering network. The extra role
// `mass` runs no sim module: it is the 1000-channel mass-connect
// exercise, publishing/subscribing a dense mass.c<k> class matrix
// (--mass-classes / --mass-nodes / --mass-index). Every node also runs:
//   * a TelemetryPublisher — its cod.telemetry feed, like every computer
//     of a production rack;
//   * (all but mass) a probe LP publishing a reliable soak.probe.<name>
//     stream (one monotonic sequence per process lifetime) and
//     subscribing to every peer's, recording exactly what arrived for the
//     driver's 100%-in-order verdict;
//   * (instructor, or any node given --monitor) a HealthMonitor
//     aggregating the cluster — the rig watches itself, with loss derived
//     from reliable-layer counters because real sockets cannot attribute
//     drops.
//
// --shards sets CommunicationBackbone::Config::shards, so the soak drives
// the sharded routing core exactly as a production rack would.
//
// The node ticks on the wall clock until --duration, stops publishing
// probes --quiesce seconds early (so retransmits can drain), then writes
// its report (soak_common.hpp grammar) and exits 0. The driver owns all
// pass/fail judgement; this binary only records.
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <system_error>
#include <thread>
#include <vector>

#include "core/cb.hpp"
#include "net/impair.hpp"
#include "net/udp.hpp"
#include "scenario/course.hpp"
#include "sim/display_module.hpp"
#include "sim/dynamics_module.hpp"
#include "sim/instructor_module.hpp"
#include "sim/scenario_module.hpp"
#include "telemetry/backpressure.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/publisher.hpp"
#include "telemetry/registry.hpp"
#include "tools/soak/soak_common.hpp"

namespace {

using namespace cod;

using soak::Segment;
using soak::wallSec;

/// SIGUSR2 asks for a flight-recorder dump at the next loop iteration —
/// the only async-signal-safe thing a handler may do is set a flag.
volatile std::sig_atomic_t gTraceDumpRequested = 0;
void onSigUsr2(int) { gTraceDumpRequested = 1; }

struct PeerStream {
  std::vector<Segment> segments;
  std::uint64_t duplicates = 0;  // app-level dups (CB must dedup; expect 0)
  std::int64_t lastIncarnation = 0;
};

class ProbeLp final : public core::LogicalProcess {
 public:
  ProbeLp(std::string nodeName, double hz)
      : core::LogicalProcess("probe-" + nodeName),
        nodeName_(std::move(nodeName)),
        intervalSec_(hz > 0.0 ? 1.0 / hz : 0.0) {}

  void bind(core::CommunicationBackbone& cb,
            const std::vector<std::string>& peers) {
    cb_ = &cb;
    cb.attach(*this);
    pub_ = cb.publishObjectClass(*this, soak::kProbeClassPrefix + nodeName_,
                                 net::QosClass::kReliableOrdered);
    for (const std::string& p : peers)
      cb.subscribeObjectClass(*this, soak::kProbeClassPrefix + p,
                              net::QosClass::kReliableOrdered);
  }

  void stopPublishing() { publishing_ = false; }
  std::uint64_t published() const { return published_; }
  const std::map<std::string, PeerStream>& streams() const { return streams_; }

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet& attrs,
                              double /*timestamp*/) override {
    if (className.rfind(soak::kProbeClassPrefix, 0) != 0) return;
    const std::string peer = className.substr(soak::kProbeClassPrefix.size());
    const core::AttributeValue* v = attrs.find("seq");
    if (v == nullptr) return;
    const std::uint64_t seq = static_cast<std::uint64_t>(v->asInt());
    // Incarnation token (the publisher's pid): a restarted process must
    // open a new segment even when its first delivered sequence happens
    // to run past the old segment's last — detecting restarts from a
    // backwards sequence alone would fold that case into the old segment
    // as phantom gaps.
    const core::AttributeValue* iv = attrs.find("inc");
    const std::int64_t inc = iv != nullptr ? iv->asInt() : 0;
    PeerStream& st = streams_[peer];
    const bool sameIncarnation =
        !st.segments.empty() && inc == st.lastIncarnation;
    if (sameIncarnation && seq == st.segments.back().last) {
      ++st.duplicates;
      return;
    }
    if (!sameIncarnation || seq < st.segments.back().last) {
      st.lastIncarnation = inc;
      st.segments.push_back(Segment{seq, seq, 1, 0});
      return;
    }
    Segment& seg = st.segments.back();
    seg.gaps += seq - seg.last - 1;  // 0 on the strict +1 path
    seg.last = seq;
    ++seg.count;
  }

  void step(double now) override {
    if (!publishing_ || intervalSec_ <= 0.0) return;
    if (now - lastPublish_ < intervalSec_) return;
    lastPublish_ = now;
    core::AttributeSet a;
    a.set("seq", static_cast<std::int64_t>(++published_));
    a.set("inc", static_cast<std::int64_t>(::getpid()));
    cb_->updateAttributeValues(pub_, a, now);
  }

 private:
  std::string nodeName_;
  double intervalSec_;
  core::CommunicationBackbone* cb_ = nullptr;
  core::PublicationHandle pub_ = core::kInvalidHandle;
  bool publishing_ = true;
  double lastPublish_ = -1e300;
  std::uint64_t published_ = 0;
  std::map<std::string, PeerStream> streams_;
};

/// The mass-connect exercise: one LP standing in for dozens of small
/// simulation objects. It subscribes to every mass.c<k> class of the rack
/// and publishes the slice this node owns — class k is published by nodes
/// k%N and (k+1)%N, two publishers per class — all reliable, so a C-class
/// N-node rack opens C*2*(N-1) network channels plus local fast-path
/// links. Per class it records reflections and the set of distinct source
/// nodes, for the driver's every-channel-delivers verdict. The class
/// names share prefixes and spread across the CB's routing shards by
/// classNameHash, so this is also the sharded core's torture test.
class MassLp final : public core::LogicalProcess {
 public:
  MassLp(std::uint32_t classes, std::uint32_t nodes, std::uint32_t index,
         double hz)
      : core::LogicalProcess("mass-" + std::to_string(index)),
        classes_(classes),
        nodes_(nodes),
        index_(index),
        intervalSec_(hz > 0.0 ? 1.0 / hz : 0.0) {}

  static std::string className(std::uint32_t k) {
    return soak::kMassClassPrefix + std::to_string(k);
  }
  /// The driver derives per-node channel expectations from this same
  /// assignment — keep the two in lockstep (soak_common.hpp documents it).
  bool publishes(std::uint32_t k) const {
    return k % nodes_ == index_ || (k + 1) % nodes_ == index_;
  }

  void bind(core::CommunicationBackbone& cb) {
    cb_ = &cb;
    cb.attach(*this);
    for (std::uint32_t k = 0; k < classes_; ++k) {
      cb.subscribeObjectClass(*this, className(k),
                              net::QosClass::kReliableOrdered);
      if (publishes(k))
        pubs_.push_back(cb.publishObjectClass(*this, className(k),
                                              net::QosClass::kReliableOrdered));
    }
  }

  void stopPublishing() { publishing_ = false; }

  struct ClassRecord {
    std::uint64_t reflections = 0;
    std::set<std::int64_t> sources;  // publisher node indices seen
  };
  const std::map<std::string, ClassRecord>& records() const { return records_; }

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet& attrs,
                              double /*timestamp*/) override {
    if (className.rfind(soak::kMassClassPrefix, 0) != 0) return;
    ClassRecord& rec = records_[className];
    ++rec.reflections;
    if (const core::AttributeValue* v = attrs.find("src"))
      rec.sources.insert(v->asInt());
  }

  void step(double now) override {
    if (!publishing_ || intervalSec_ <= 0.0) return;
    if (now - lastPublish_ < intervalSec_) return;
    lastPublish_ = now;
    core::AttributeSet a;
    a.set("seq", static_cast<std::int64_t>(++seq_));
    a.set("src", static_cast<std::int64_t>(index_));
    for (const core::PublicationHandle h : pubs_)
      cb_->updateAttributeValues(h, a, now);
  }

 private:
  std::uint32_t classes_, nodes_, index_;
  double intervalSec_;
  core::CommunicationBackbone* cb_ = nullptr;
  std::vector<core::PublicationHandle> pubs_;
  bool publishing_ = true;
  double lastPublish_ = -1e300;
  std::uint64_t seq_ = 0;
  std::map<std::string, ClassRecord> records_;
};

int run(int argc, char** argv) {
  const soak::Args args(argc, argv);
  const std::string name = args.required("name");
  const std::string role = args.required("role");
  const std::string reportPath = args.required("report");
  const auto peers = soak::splitCsv(args.str("peers", ""));

  net::UdpConfig ucfg;
  ucfg.bindIp = args.str("bind-ip", "127.0.0.1");
  // --host-ips=ip0,ip1,... spreads the rack across several interfaces
  // (loopback aliases in CI); host h binds and is reached at the h-th
  // entry, past the end falls back to --bind-ip.
  ucfg.hostIps = soak::splitCsv(args.str("host-ips", ""));
  ucfg.basePort = static_cast<std::uint16_t>(
      std::stoul(args.required("base-port")));
  ucfg.portsPerHost = static_cast<std::uint16_t>(args.integer("ports-per-host", 4));
  ucfg.maxHosts = static_cast<std::uint16_t>(args.integer("max-hosts", 16));
  const auto host = static_cast<net::HostId>(args.integer("host", 0));
  const auto cbPort = static_cast<std::uint16_t>(args.integer("cb-port", 1));

  const double duration = args.num("duration", 60.0);
  const double quiesce = args.num("quiesce", 5.0);
  const double probeHz = args.num("probe-hz", 40.0);

  net::ImpairmentConfig icfg;
  icfg.lossPct = args.num("loss", 0.0);
  icfg.duplicatePct = args.num("dup", 0.0);
  icfg.reorderPct = args.num("reorder", 0.0);
  icfg.delayMinSec = args.num("delay-ms", 0.0) / 1000.0;
  icfg.delayMaxSec = icfg.delayMinSec + args.num("jitter-ms", 0.0) / 1000.0;
  icfg.seed = static_cast<std::uint64_t>(args.integer("seed", 1)) * 1000003u +
              host;
  // --impair-rx makes the impairment duplex (loss+delay on inbound
  // datagrams too) — the starved-node drill's whole-link-is-bad shape.
  icfg.impairReceive = args.has("impair-rx");

  // A restarted victim can find its just-vacated port transiently claimed
  // (a parallel lane's ephemeral probe can win the race while the port
  // sat unbound during the kill window); the plan is ours by contract, so
  // wait the squatter out instead of dying on EADDRINUSE.
  std::unique_ptr<net::UdpTransport> udp;
  const double bindDeadline = wallSec() + 10.0;
  for (;;) {
    try {
      udp = std::make_unique<net::UdpTransport>(ucfg, host, cbPort);
      break;
    } catch (const std::system_error& e) {
      if (e.code().value() != EADDRINUSE || wallSec() >= bindDeadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  std::printf("[%s] %s bound %s:%u (host %u) loss=%.1f%% dup=%.1f%% "
              "reorder=%.1f%% delay=%.1f-%.1fms\n",
              name.c_str(), role.c_str(), ucfg.bindIp.c_str(),
              udp->boundUdpPort(), host,
              icfg.lossPct, icfg.duplicatePct, icfg.reorderPct,
              icfg.delayMinSec * 1e3, icfg.delayMaxSec * 1e3);
  auto transport =
      std::make_unique<net::ImpairedTransport>(std::move(udp), icfg);

  core::CommunicationBackbone::Config cbCfg;
  cbCfg.broadcastIntervalSec = 0.05;
  cbCfg.refreshIntervalSec = 0.5;
  cbCfg.heartbeatIntervalSec = args.num("heartbeat", 0.5);
  cbCfg.channelTimeoutSec = args.num("channel-timeout", 3.0);
  // Frequent cumulative acks keep the tail-RTO path honest under loss:
  // spurious retransmits of already-delivered frames would bias the
  // reliable-layer loss estimate upward.
  cbCfg.reliable.ackIntervalSec = args.num("ack-interval", 0.05);
  cbCfg.shards = static_cast<std::uint32_t>(args.integer("shards", 1));
  // --phase-profile arms the tick-phase profiler: per-phase duration
  // histograms and telemetry wire v5 (peers stay v4-compatible; the
  // encoder only emits the phase block when this is on).
  cbCfg.phaseProfile = args.has("phase-profile");
  // --async-net moves this node's socket work onto the threaded engine
  // (recv/send threads + SPSC rings, mmsg syscall bursts) and ships the
  // engine health counters as telemetry wire v6. Default off: the
  // single-threaded path stays byte-identical to earlier builds.
  cbCfg.asyncNet = args.has("async-net");
  // --flow arms the adaptive flow-control stack end to end: byte-budgeted
  // reliable send windows with per-channel split/re-merge, the adaptive
  // mid-tick flush, and a BackpressureGovernor fed by a HealthMonitor on
  // EVERY node (the governor actuates this node's send rates, so it needs
  // the cluster's alarm feed wherever it runs, not just on the monitor
  // host). The window budget defaults generous — the soak's gate is that
  // the machinery survives a starved peer, not that eviction fires.
  const bool flow = args.has("flow");
  if (flow) {
    cbCfg.reliable.sendWindowBytes = static_cast<std::size_t>(
        args.integer("send-window-bytes", 256 * 1024));
    cbCfg.reliable.perChannelWindowSplit = true;
    cbCfg.reliable.splitLagFrames =
        static_cast<std::uint32_t>(args.integer("split-lag-frames", 64));
    cbCfg.batch.tickFlushByteBudget = static_cast<std::size_t>(
        args.integer("tick-flush-bytes", 48 * 1024));
  }
  // Flight recorder + latency sampling: --trace-sample tags every Nth
  // reliable update, --trace-dump names the Chrome-trace JSON written at
  // exit, on SIGUSR2, and automatically when the monitor raises a CRIT
  // alarm. Neither flag given → no recorder, no sampling, zero overhead.
  const auto traceSample =
      static_cast<std::uint32_t>(args.integer("trace-sample", 0));
  const std::string traceDump = args.str("trace-dump", "");
  std::unique_ptr<telemetry::TraceRecorder> recorder;
  if (traceSample > 0 || !traceDump.empty()) {
    recorder = std::make_unique<telemetry::TraceRecorder>(1 << 15);
    cbCfg.trace = recorder.get();
    cbCfg.traceSampleEvery = traceSample;
    std::signal(SIGUSR2, onSigUsr2);
  }
  core::CommunicationBackbone cb(name, std::move(transport), cbCfg);

  // The role module (the real thing, not a mock — the soak rig must push
  // the same update streams the rack does).
  const scenario::Course course = scenario::standardLicensureCourse();
  std::unique_ptr<sim::DynamicsModule> dynamics;
  std::unique_ptr<sim::ScenarioModule> scenarioLp;
  std::unique_ptr<sim::VisualDisplayModule> display;
  std::unique_ptr<sim::InstructorModule> instructor;
  std::unique_ptr<telemetry::HealthMonitor> monitor;
  std::unique_ptr<MassLp> mass;
  if (role == "mass") {
    mass = std::make_unique<MassLp>(
        static_cast<std::uint32_t>(args.integer("mass-classes", 56)),
        static_cast<std::uint32_t>(args.integer("mass-nodes", 1)),
        static_cast<std::uint32_t>(args.integer("mass-index", 0)),
        args.num("mass-hz", 2.0));
    mass->bind(cb);
  } else if (role == "dynamics") {
    sim::DynamicsModule::Config dc;
    dc.course = course;
    dynamics = std::make_unique<sim::DynamicsModule>(dc);
    dynamics->bind(cb);
  } else if (role == "scenario") {
    scenarioLp = std::make_unique<sim::ScenarioModule>(course);
    scenarioLp->bind(cb);
  } else if (role == "display") {
    sim::VisualDisplayModule::Config dc;
    dc.channel = static_cast<int>(args.integer("display-channel", 0));
    dc.fbWidth = 64;
    dc.fbHeight = 48;
    dc.useSyncServer = false;  // no sync-server node in the soak rack
    display = std::make_unique<sim::VisualDisplayModule>(course, dc);
    display->bind(cb);
  } else if (role == "instructor") {
    instructor = std::make_unique<sim::InstructorModule>();
    instructor->bind(cb);
    telemetry::MonitorConfig mc;
    mc.expectedIntervalSec = args.num("telemetry-interval", 1.0);
    mc.silentAfterIntervals = args.num("silent-after", 3.0);
    monitor = std::make_unique<telemetry::HealthMonitor>(mc);
    monitor->bind(cb);
    instructor->attachClusterMonitor(monitor.get());
  } else {
    std::fprintf(stderr, "unknown --role=%s\n", role.c_str());
    return 2;
  }
  // Any node can host the cluster monitor (--monitor); the instructor
  // role always does. In the mass-connect rack mass-0 takes the duty,
  // and --flow puts one on every node to feed its governor.
  if (monitor == nullptr && (args.has("monitor") || flow)) {
    telemetry::MonitorConfig mc;
    mc.expectedIntervalSec = args.num("telemetry-interval", 1.0);
    mc.silentAfterIntervals = args.num("silent-after", 3.0);
    monitor = std::make_unique<telemetry::HealthMonitor>(mc);
    monitor->bind(cb);
  }
  // A CRIT alarm freezes the preceding seconds of hot-path history to
  // disk the moment they matter, not at exit when the ring has moved on.
  if (monitor && recorder)
    monitor->attachFlightRecorder(recorder.get(), traceDump);
  // --archive=<path> makes this node's monitor the cluster's black box:
  // every applied snapshot, alarm edge, liveness ping, and dump marker
  // goes to an append-only CRC-framed log cod_inspect can replay.
  std::unique_ptr<telemetry::TelemetryArchive> archive;
  const std::string archivePath = args.str("archive", "");
  if (monitor && !archivePath.empty()) {
    telemetry::TelemetryArchive::Config acfg;
    acfg.path = archivePath;
    archive = std::make_unique<telemetry::TelemetryArchive>(acfg);
    if (archive->ok()) {
      monitor->attachArchive(archive.get());
    } else {
      std::fprintf(stderr, "[%s] cannot open archive %s (continuing)\n",
                   name.c_str(), archivePath.c_str());
    }
  }
  // Telemetry-closed backpressure: the governor tails this node's alarm
  // feed and thins best-effort sends toward struggling peers.
  std::unique_ptr<telemetry::BackpressureGovernor> governor;
  if (flow && monitor) {
    governor = std::make_unique<telemetry::BackpressureGovernor>(*monitor);
    governor->bind(cb);
  }

  telemetry::TelemetryConfig tcfg;
  tcfg.intervalSec = args.num("telemetry-interval", 1.0);
  tcfg.keyframeInterval =
      static_cast<std::uint32_t>(args.integer("keyframe-interval", 10));
  telemetry::TelemetryPublisher tpub(tcfg);
  tpub.bind(cb);

  // The mass role keeps its channel matrix pure: no probe streams, so the
  // driver's channel-count expectations stay exact.
  std::unique_ptr<ProbeLp> probe;
  if (role != "mass") {
    probe = std::make_unique<ProbeLp>(name, probeHz);
    probe->bind(cb, peers);
  }

  // ---- Main loop: wall clock, ~1 ms tick cadence ------------------------
  const double stopProbesAt = duration - quiesce;
  double nextStatus = 5.0;
  double now = 0.0;
  // The mass channel matrix is sampled when publishing stops, not at
  // exit: every node is still alive at the quiesce boundary, while at
  // exit time slightly-earlier-finishing peers have already sent their
  // BYEs and torn half the matrix down.
  std::vector<core::CbChannelHealth> massMatrix;
  bool massMatrixSampled = false;
  // The monitor's view of each peer's mass matrix, as the *peak* counts
  // seen across the run — the final snapshot would race peer teardown the
  // same way the node's own exit-time sample does.
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> monPeak;
  double nextMonSample = 0.0;
  // The closing counters must reach the monitor host before this process
  // stops ticking: force one final KEYFRAME out shortly before the end
  // (a teardown delta would be undecodable by a monitor that lost its
  // base, and no later snapshot would ever heal it). 0.75 s leaves the
  // datagram a real chance to land and be applied while peers still tick.
  const double finalSnapshotAt = duration - 0.75;
  bool finalSnapshotSent = false;
  while ((now = wallSec()) < duration) {
    if (!finalSnapshotSent && now >= finalSnapshotAt) {
      finalSnapshotSent = true;
      tpub.publishFinal(now);
    }
    if (now >= stopProbesAt) {
      if (probe) probe->stopPublishing();
      if (mass) mass->stopPublishing();
      if (mass && !massMatrixSampled) {
        massMatrixSampled = true;
        massMatrix = cb.channelHealth();
      }
    }
    cb.tick(now);
    if (monitor && mass && now >= nextMonSample) {
      nextMonSample = now + 0.25;
      for (const std::string& n : monitor->nodeNames()) {
        const telemetry::NodeHealth* h = monitor->node(n);
        if (h == nullptr) continue;
        std::uint64_t o = 0, i = 0;
        for (const core::CbChannelHealth& c : h->last.channels) {
          if (c.className.rfind(soak::kMassClassPrefix, 0) != 0) continue;
          ++(c.outbound ? o : i);
        }
        auto& peak = monPeak[n];
        peak.first = std::max(peak.first, o);
        peak.second = std::max(peak.second, i);
      }
    }
    if (gTraceDumpRequested) {
      gTraceDumpRequested = 0;
      if (recorder && !traceDump.empty()) {
        recorder->dumpToFile(traceDump);
        std::printf("[%s] flight recorder dumped to %s (SIGUSR2)\n",
                    name.c_str(), traceDump.c_str());
      }
    }
    if (now >= nextStatus) {
      nextStatus += 5.0;
      std::printf("[%s] t=%5.1f updates=%llu retx=%llu timedOut=%llu\n",
                  name.c_str(), now,
                  static_cast<unsigned long long>(cb.stats().updatesSent),
                  static_cast<unsigned long long>(
                      cb.stats().reliable.retransmitsSent),
                  static_cast<unsigned long long>(cb.stats().channelsTimedOut));
      if (instructor) {
        std::fputs(instructor->renderClusterText().c_str(), stdout);
      } else if (monitor) {
        std::fputs(monitor->renderTable().c_str(), stdout);
        std::fputs(monitor->renderAlarms().c_str(), stdout);
      }
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // ---- Report -----------------------------------------------------------
  std::ofstream out(reportPath);
  if (!out) {
    std::fprintf(stderr, "[%s] cannot write report %s\n", name.c_str(),
                 reportPath.c_str());
    return 3;
  }
  out << "node " << name << "\n";
  out << "role " << role << "\n";
  if (probe) {
    out << "probe-published " << probe->published() << "\n";
    for (const auto& [peer, st] : probe->streams()) {
      std::size_t idx = 0;
      for (const Segment& seg : st.segments) {
        out << "probe " << peer << " segment " << idx++
            << " first=" << seg.first << " last=" << seg.last
            << " count=" << seg.count << " gaps=" << seg.gaps << "\n";
      }
      out << "probe-summary " << peer << " segments=" << st.segments.size()
          << " dups=" << st.duplicates << "\n";
    }
  }
  if (mass) {
    if (!massMatrixSampled) massMatrix = cb.channelHealth();
    std::uint64_t outCh = 0, inCh = 0, liveCh = 0;
    for (const core::CbChannelHealth& c : massMatrix) {
      if (c.className.rfind(soak::kMassClassPrefix, 0) != 0) continue;
      ++(c.outbound ? outCh : inCh);
      if (c.live) ++liveCh;
    }
    out << "channels-mass out=" << outCh << " in=" << inCh
        << " live=" << liveCh << "\n";
    for (const auto& [cls, rec] : mass->records())
      out << "mass-class " << cls << " reflections=" << rec.reflections
          << " sources=" << rec.sources.size() << "\n";
  }
  // Ground truth for the driver's telemetry diff: the same StatRegistry
  // record the telemetry publisher ships, taken at exit.
  {
    telemetry::StatRegistry registry(cb);
    const telemetry::NodeTelemetry t = registry.snapshot(now);
    out << "self-counters updates=" << t.cb.updatesSent
        << " data=" << t.cb.reliable.dataFramesSent
        << " retx=" << t.cb.reliable.retransmitsSent << "\n";
    // Flow-control observability: what the adaptive machinery actually
    // did this run (all zero when --flow is off — the features are
    // config-gated and the driver asserts nothing fired unarmed).
    out << "flow thinned=" << t.cb.updatesThinned
        << " blocked=" << t.cb.reliable.updatesBlocked
        << " splits=" << t.cb.reliable.windowSplits
        << " merges=" << t.cb.reliable.windowMerges
        << " degrade-skips=" << t.cb.reliable.degradeSkipsSent
        << " adaptive-flushes=" << t.cb.batch.adaptiveFlushes
        << " peer-dups=" << t.cb.reliable.peerDuplicatesReported;
    if (governor)
      out << " thin-steps=" << governor->thinSteps()
          << " recover-steps=" << governor->recoverSteps();
    out << "\n";
  }
  // Whole-run delivery-latency percentiles (milliseconds) from this
  // node's own cumulative histogram — what the driver's --max-p99-ms
  // verdict judges. Only present when sampling was on and produced data.
  {
    constexpr std::size_t kLat = telemetry::CbHistograms::kDeliveryLatencyIdx;
    const telemetry::HistogramSnapshot& s =
        cb.histograms().at(kLat).snapshot();
    if (s.count > 0) {
      const double lowest = telemetry::CbHistograms::lowestOf(kLat);
      char lbuf[160];
      std::snprintf(lbuf, sizeof(lbuf),
                    "latency p50=%.3f p90=%.3f p99=%.3f max=%.3f samples=%llu",
                    telemetry::LogHistogram::percentile(s, 0.50, lowest) * 1e3,
                    telemetry::LogHistogram::percentile(s, 0.90, lowest) * 1e3,
                    telemetry::LogHistogram::percentile(s, 0.99, lowest) * 1e3,
                    s.max * 1e3, static_cast<unsigned long long>(s.count));
      out << lbuf << "\n";
    }
  }
  if (instructor) out << "status-updates " << instructor->statusUpdatesSeen() << "\n";
  if (monitor) {
    for (const telemetry::HealthAlarm& a : monitor->alarms())
      out << "alarm " << telemetry::alarmKindName(a.kind) << " " << a.node
          << "\n";
    for (const std::string& n : monitor->nodeNames()) {
      const telemetry::NodeHealth* h = monitor->node(n);
      if (h == nullptr) continue;
      // Whole-run loss estimate from the node's *cumulative* reliable
      // counters (latest applied snapshot) — interval rates are noisy at
      // 1 Hz, the lifetime ratio is what must track the injected rate.
      const auto& r = h->last.cb.reliable;
      out << "loss-est " << n << " "
          << telemetry::reliableLossEstimatePct(r.dataFramesSent,
                                                r.retransmitsSent,
                                                r.peerDuplicatesReported)
          << " data=" << r.dataFramesSent << " retx=" << r.retransmitsSent
          << " dups=" << r.peerDuplicatesReported << "\n";
      // The monitor-side view of the same counters the node dumps in its
      // own self-counters line; the driver diffs the two.
      out << "mon-counters " << n << " updates=" << h->last.cb.updatesSent
          << " data=" << r.dataFramesSent << " retx=" << r.retransmitsSent
          << "\n";
      const auto pk = monPeak.find(n);
      if (pk != monPeak.end())
        out << "mon-channels " << n << " out=" << pk->second.first
            << " in=" << pk->second.second << "\n";
    }
  }
  out << "exit ok\n";
  if (recorder && !traceDump.empty()) recorder->dumpToFile(traceDump);
  if (archive) {
    archive->close();
    std::printf("[%s] archive %s: %llu records, %llu bytes, %llu rotations\n",
                name.c_str(), archivePath.c_str(),
                static_cast<unsigned long long>(archive->recordsWritten()),
                static_cast<unsigned long long>(archive->bytesWritten()),
                static_cast<unsigned long long>(archive->segmentsRotated()));
  }
  std::printf("[%s] done: updates=%llu report=%s\n", name.c_str(),
              static_cast<unsigned long long>(cb.stats().updatesSent),
              reportPath.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "soak_node: %s\n", e.what());
    return 2;
  }
}
