// Shared vocabulary of the multi-process UDP soak harness: the flag
// parser, the probe object-class naming and the report grammar both
// binaries agree on.
//
// A soak *node* (soak_node.cpp) is one computer of the paper's rack as a
// real OS process on real loopback sockets; the *driver*
// (soak_driver.cpp) spawns N of them, injects a mid-run failure, and
// turns their end-of-run reports into a pass/fail verdict. The report is
// a line-oriented text file (first token = record kind) so a human can
// read exactly what the driver judged:
//
//   node <name>
//   role <role>
//   probe-published <finalSeq>      (all roles but mass)
//   probe <peer> segment <idx> first=<f> last=<l> count=<c> gaps=<g>
//   probe-summary <peer> segments=<n> dups=<d>
//   channels-mass out=<o> in=<i> live=<l>     (mass only: this node's
//                                              mass.* channels at exit)
//   mass-class <class> reflections=<n> sources=<s>  (mass only)
//   self-counters updates=<u> data=<d> retx=<r>  (ground truth: the
//                                              node's own StatRegistry
//                                              snapshot at exit)
//   flow thinned=<n> blocked=<n> splits=<n> merges=<n> degrade-skips=<n>
//        adaptive-flushes=<n> peer-dups=<n> [thin-steps=<n>
//        recover-steps=<n>]         (what the adaptive flow-control
//                                    machinery did; all zero unless the
//                                    node ran with --flow)
//   status-updates <n>              (instructor only)
//   alarm <KIND> <node>             (monitor host only, feed order)
//   loss-est <node> <pct> data=<d> retx=<r> dups=<n>  (monitor host only;
//                                    pct is duplicate-corrected: losses =
//                                    retx - dups reported by receivers)
//   mon-counters <node> updates=<u> data=<d> retx=<r>  (monitor host:
//                                              the monitor's last view of
//                                              <node>'s self-counters)
//   mon-channels <node> out=<o> in=<i>        (monitor host: peak count
//                                              of <node>'s mass.*
//                                              channels seen through
//                                              telemetry over the run)
//   latency p50=<ms> p90=<ms> p99=<ms> max=<ms> samples=<n>
//                                   (whole-run sampled publish->release
//                                    latency; only when --trace-sample
//                                    produced samples)
//   exit ok                         (always last: truncation marker)
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace cod::soak {

/// Reliable probe streams: every node publishes kProbeClassPrefix + its
/// own name and subscribes to each peer's. The driver's 100%-in-order
/// verdict is computed over these streams.
inline const std::string kProbeClassPrefix = "soak.probe.";

/// Mass-connect object classes: kMassClassPrefix + <k> for k in
/// [0, --mass-classes). Class k is published by nodes k%N and (k+1)%N of
/// an N-node mass rack and subscribed by every node, so the rack opens
/// exactly C*2*(N-1) network channels — the node's MassLp and the
/// driver's expected-channel-count verdict both derive from this one
/// assignment rule.
inline const std::string kMassClassPrefix = "mass.c";

/// One publisher incarnation of a probe stream, as the subscriber saw it:
/// the record behind the report's `probe ... segment` lines, written by
/// the node and parsed back by the driver — one definition so the two
/// sides cannot drift. A publisher restart shows up as a sequence drop,
/// which opens a new segment; within a segment a reliable channel owes
/// strict +1 increments (gaps counts every missing number).
struct Segment {
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  std::uint64_t count = 0;
  std::uint64_t gaps = 0;
};

/// Monotonic wall-clock seconds since the process's first call.
inline double wallSec() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Minimal `--key=value` flag parser (no bare values, no short options —
/// the driver composes child command lines, so the grammar stays trivial).
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0)
        throw std::invalid_argument("expected --key=value, got: " + arg);
      // Assignments via assign(): GCC 12's -Werror=restrict false-fires
      // on operator=(const char*) after substr (GCC PR105329).
      const std::size_t eq = arg.find('=');
      std::string key, value;
      if (eq == std::string::npos) {
        key.assign(arg, 2, std::string::npos);
        value.push_back('1');  // boolean flag
      } else {
        key.assign(arg, 2, eq - 2);
        value.assign(arg, eq + 1, std::string::npos);
      }
      values_[key] = value;
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::string required(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end())
      throw std::invalid_argument("missing required flag --" + key);
    return it->second;
  }

  double num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  std::int64_t integer(const std::string& key, std::int64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

inline std::vector<std::string> splitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? csv.size() - start
                                                     : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// "key=value" token → value; nullopt when the token has a different key.
inline std::optional<std::string> kvToken(const std::string& token,
                                          const std::string& key) {
  if (token.rfind(key + "=", 0) != 0) return std::nullopt;
  return token.substr(key.size() + 1);
}

}  // namespace cod::soak
