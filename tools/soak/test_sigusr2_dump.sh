#!/usr/bin/env bash
# SIGUSR2 mid-run must freeze the soak_node flight-recorder ring to the
# --trace-dump file immediately — while the process is still alive, not
# at exit — and the dump must be well-formed Chrome trace JSON.
#
# Usage: test_sigusr2_dump.sh <soak_node binary> <out dir>
set -eu

NODE_BIN="$1"
OUT_DIR="$2"
mkdir -p "$OUT_DIR"
DUMP="$OUT_DIR/usr2.trace.json"
LOG="$OUT_DIR/usr2.log"
rm -f "$DUMP"

# Ephemeral-ish port derived from our pid so parallel ctest lanes don't
# collide on a constant.
PORT=$((21000 + ($$ % 20000)))

"$NODE_BIN" --name=usr2 --role=dynamics --report="$OUT_DIR/usr2.report" \
  --base-port="$PORT" --host=0 --duration=10 --quiesce=1 \
  --trace-sample=8 --trace-dump="$DUMP" >"$LOG" 2>&1 &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true' EXIT

# Let the node start ticking and record some events, then poke it.
sleep 3
kill -USR2 "$PID"

# The dump is written from the main loop within a tick or two.
for _ in $(seq 1 50); do
  [ -s "$DUMP" ] && break
  sleep 0.1
done
if ! [ -s "$DUMP" ]; then
  echo "FAIL: no dump file after SIGUSR2"
  cat "$LOG"
  exit 1
fi

# It must be THIS dump, not the exit-time one: the node is still running.
if ! kill -0 "$PID" 2>/dev/null; then
  echo "FAIL: node exited before the mid-run dump could be attributed"
  cat "$LOG"
  exit 1
fi

# Well-formed: a complete Chrome-trace JSON object.
grep -q '"traceEvents"' "$DUMP" || { echo "FAIL: no traceEvents key"; exit 1; }
case "$(tail -c 2 "$DUMP" | tr -d '[:space:]')" in
  *}) ;;
  *) echo "FAIL: dump does not end with }"; exit 1 ;;
esac

# The node logs the SIGUSR2 attribution line from its main loop.
for _ in $(seq 1 50); do
  grep -q 'SIGUSR2' "$LOG" && break
  sleep 0.1
done
grep -q 'SIGUSR2' "$LOG" || { echo "FAIL: no SIGUSR2 log line"; exit 1; }

# Clean exit still works after the mid-run dump.
wait "$PID"
trap - EXIT
echo "PASS: SIGUSR2 produced a well-formed mid-run dump"
