// cod_inspect — offline analysis of a TelemetryArchive (the cluster's
// flight-data recorder, src/telemetry/archive.hpp).
//
// The archive holds everything the live HealthMonitor saw: every applied
// snapshot (re-encoded as a keyframe), every alarm edge, liveness pings
// and flight-dump markers, all stamped with the monitor's own monotonic
// clock. This tool answers the post-mortem questions a failed soak (or a
// failed training session) leaves behind:
//
//   cod_inspect --archive=run.archive                      summary
//   cod_inspect --archive=run.archive --timeline           alarm timeline
//   cod_inspect --archive=run.archive --nodes              per-node evolution
//   cod_inspect --archive=run.archive --csv=out.csv        counter export
//   cod_inspect --archive=run.archive --json=out.json      full export
//   cod_inspect --archive=a.archive --diff=b.archive       compare two runs
//   cod_inspect --archive=run.archive --replay
//               [--expected-interval=S] [--silent-after=N]
//               [--verify-victim=NODE]
//
// --replay feeds the archived records through a fresh HealthMonitor (no
// network — reflectAttributeValues and step work unbound) with the
// monitor clock driven by the recorded monoSec stamps, then requires the
// replayed per-node alarm kind sequences to equal the recorded ones and
// the replayed final counters to equal the last archived snapshot of
// every node. --verify-victim additionally requires that node's sequence
// to contain NODE_SILENT before NODE_RECOVERED — the soak driver's
// failover post-mortem, reproduced from the file alone. Exit 0 iff every
// requested check holds, so drivers can gate on the exit code.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/value.hpp"
#include "telemetry/archive.hpp"
#include "telemetry/hist.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/node_telemetry.hpp"
#include "tools/soak/soak_common.hpp"

namespace {

using namespace cod;
using telemetry::ArchiveReader;
using telemetry::ArchiveRecord;
using telemetry::ArchiveRecordType;
using telemetry::HealthAlarm;
using telemetry::NodeTelemetry;

/// Decoded per-node view of an archive's snapshot stream.
struct NodeStream {
  std::vector<const ArchiveRecord*> records;  // kSnapshot, in order
  std::vector<NodeTelemetry> decoded;         // 1:1 with records
};

struct Loaded {
  std::vector<ArchiveRecord> records;
  std::map<std::string, NodeStream> nodes;
  std::vector<const ArchiveRecord*> alarms;  // kAlarmEdge, in order
  std::vector<const ArchiveRecord*> dumps;   // kTraceDumpMarker
  std::uint64_t undecodableSnapshots = 0;
  ArchiveReader reader;

  explicit Loaded(const std::string& path) : reader(path) {
    records = reader.readAll();
    for (const ArchiveRecord& rec : records) {
      switch (rec.type) {
        case ArchiveRecordType::kSnapshot: {
          auto t = telemetry::decodeTelemetry(rec.snapshot);
          if (!t) {
            ++undecodableSnapshots;
            break;
          }
          NodeStream& ns = nodes[t->node];
          ns.records.push_back(&rec);
          ns.decoded.push_back(std::move(*t));
          break;
        }
        case ArchiveRecordType::kAlarmEdge:
          alarms.push_back(&rec);
          break;
        case ArchiveRecordType::kTraceDumpMarker:
          dumps.push_back(&rec);
          break;
        case ArchiveRecordType::kLivenessPing:
          break;
      }
    }
  }
};

void printSummary(const std::string& path, const Loaded& a) {
  std::printf("archive %s\n", path.c_str());
  std::printf("  segments=%llu records=%llu skipped=%llu torn-tails=%llu\n",
              static_cast<unsigned long long>(a.reader.segmentsRead()),
              static_cast<unsigned long long>(a.reader.recordsRead()),
              static_cast<unsigned long long>(a.reader.recordsSkipped()),
              static_cast<unsigned long long>(a.reader.tornTails()));
  double t0 = 0.0, t1 = 0.0;
  if (!a.records.empty()) {
    t0 = a.records.front().monoSec;
    t1 = a.records.back().monoSec;
  }
  std::printf("  span %.2fs (t=%.2f .. %.2f), %zu nodes, %zu alarms, "
              "%zu trace dumps, %llu undecodable snapshots\n",
              t1 - t0, t0, t1, a.nodes.size(), a.alarms.size(),
              a.dumps.size(),
              static_cast<unsigned long long>(a.undecodableSnapshots));
  for (const auto& [name, ns] : a.nodes) {
    const NodeTelemetry& last = ns.decoded.back();
    std::printf("  node %-16s snapshots=%-5zu seq %llu..%llu%s\n",
                name.c_str(), ns.decoded.size(),
                static_cast<unsigned long long>(ns.decoded.front().seq),
                static_cast<unsigned long long>(last.seq),
                last.phaseProfiling ? " [phase-profiled]" : "");
  }
  std::map<std::string, std::size_t> byKind;
  for (const ArchiveRecord* rec : a.alarms)
    ++byKind[alarmKindName(static_cast<HealthAlarm::Kind>(rec->alarmKind))];
  for (const auto& [kind, n] : byKind)
    std::printf("  alarm %-22s x%zu\n", kind.c_str(), n);
}

void printTimeline(const Loaded& a) {
  std::printf("alarm timeline:\n");
  for (const ArchiveRecord* rec : a.alarms) {
    const auto kind = static_cast<HealthAlarm::Kind>(rec->alarmKind);
    const auto sev = static_cast<HealthAlarm::Severity>(rec->alarmSeverity);
    std::printf("  [t=%8.2f] %-4s %-19s %-14s %s\n", rec->alarmTimeSec,
                severityName(sev), alarmKindName(kind), rec->node.c_str(),
                rec->text.c_str());
  }
  for (const ArchiveRecord* rec : a.dumps)
    std::printf("  [t=%8.2f] DUMP flight recorder -> %s\n", rec->monoSec,
                rec->text.c_str());
  if (a.alarms.empty() && a.dumps.empty()) std::printf("  (none)\n");
}

void printNodes(const Loaded& a) {
  using telemetry::CbHistograms;
  using telemetry::HistogramSnapshot;
  using telemetry::LogHistogram;
  using telemetry::TickPhaseHistograms;
  for (const auto& [name, ns] : a.nodes) {
    std::printf("node %s\n", name.c_str());
    std::printf("  %8s %6s %10s %10s %8s %8s %6s\n", "t", "seq", "updSent",
                "updDlvd", "retx", "p99ms", "hot");
    const NodeTelemetry* prev = nullptr;
    for (std::size_t i = 0; i < ns.decoded.size(); ++i) {
      const NodeTelemetry& cur = ns.decoded[i];
      double p99Ms = 0.0;
      std::string hot = "-";
      if (prev != nullptr && cur.seq > prev->seq) {
        constexpr std::size_t kLat = CbHistograms::kDeliveryLatencyIdx;
        const HistogramSnapshot d =
            LogHistogram::diff(cur.hists[kLat], prev->hists[kLat]);
        if (d.count > 0)
          p99Ms = LogHistogram::percentile(d, 0.99,
                                           CbHistograms::lowestOf(kLat)) *
                  1e3;
        if (cur.phaseProfiling) {
          double hotSum = 0.0;
          for (std::size_t p = 0; p < telemetry::kTickPhaseCount; ++p) {
            const HistogramSnapshot dp =
                LogHistogram::diff(cur.phases[p], prev->phases[p]);
            if (dp.sum > hotSum) {
              hotSum = dp.sum;
              hot = TickPhaseHistograms::shortName(p);
            }
          }
        }
      }
      std::printf("  %8.2f %6llu %10llu %10llu %8llu %8.1f %6s\n",
                  ns.records[i]->monoSec,
                  static_cast<unsigned long long>(cur.seq),
                  static_cast<unsigned long long>(cur.cb.updatesSent),
                  static_cast<unsigned long long>(cur.cb.updatesDelivered),
                  static_cast<unsigned long long>(
                      cur.cb.reliable.retransmitsSent),
                  p99Ms, hot.c_str());
      prev = &cur;
    }
  }
}

bool exportCsv(const Loaded& a, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "monoSec,wallSec,node,seq");
  for (std::size_t i = 0; i < telemetry::counterCount(); ++i)
    std::fprintf(f, ",%s", telemetry::counterName(i));
  std::fprintf(f, "\n");
  for (const auto& [name, ns] : a.nodes) {
    for (std::size_t i = 0; i < ns.decoded.size(); ++i) {
      const NodeTelemetry& t = ns.decoded[i];
      std::fprintf(f, "%.6f,%.6f,%s,%llu", ns.records[i]->monoSec,
                   ns.records[i]->wallSec, name.c_str(),
                   static_cast<unsigned long long>(t.seq));
      for (std::size_t c = 0; c < telemetry::counterCount(); ++c)
        std::fprintf(f, ",%llu", static_cast<unsigned long long>(
                                     telemetry::counterValue(t, c)));
      std::fprintf(f, "\n");
    }
  }
  std::fclose(f);
  return true;
}

void jsonEscape(std::FILE* f, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\')
      std::fprintf(f, "\\%c", c);
    else if (static_cast<unsigned char>(c) < 0x20)
      std::fprintf(f, "\\u%04x", c);
    else
      std::fputc(c, f);
  }
}

bool exportJson(const Loaded& a, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"snapshots\": [\n");
  bool firstRow = true;
  for (const auto& [name, ns] : a.nodes) {
    for (std::size_t i = 0; i < ns.decoded.size(); ++i) {
      const NodeTelemetry& t = ns.decoded[i];
      std::fprintf(f, "%s    {\"t\": %.6f, \"wall\": %.6f, \"node\": \"",
                   firstRow ? "" : ",\n", ns.records[i]->monoSec,
                   ns.records[i]->wallSec);
      firstRow = false;
      jsonEscape(f, name);
      std::fprintf(f, "\", \"seq\": %llu, \"counters\": {",
                   static_cast<unsigned long long>(t.seq));
      for (std::size_t c = 0; c < telemetry::counterCount(); ++c)
        std::fprintf(f, "%s\"%s\": %llu", c == 0 ? "" : ", ",
                     telemetry::counterName(c),
                     static_cast<unsigned long long>(
                         telemetry::counterValue(t, c)));
      std::fprintf(f, "}}");
    }
  }
  std::fprintf(f, "\n  ],\n  \"alarms\": [\n");
  for (std::size_t i = 0; i < a.alarms.size(); ++i) {
    const ArchiveRecord* rec = a.alarms[i];
    std::fprintf(f, "%s    {\"t\": %.6f, \"kind\": \"%s\", \"severity\": "
                 "\"%s\", \"node\": \"",
                 i == 0 ? "" : ",\n", rec->alarmTimeSec,
                 alarmKindName(static_cast<HealthAlarm::Kind>(rec->alarmKind)),
                 severityName(
                     static_cast<HealthAlarm::Severity>(rec->alarmSeverity)));
    jsonEscape(f, rec->node);
    std::fprintf(f, "\", \"detail\": \"");
    jsonEscape(f, rec->text);
    std::fprintf(f, "\"}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return true;
}

void printDiff(const std::string& pathA, const Loaded& a,
               const std::string& pathB, const Loaded& b) {
  std::printf("diff %s -> %s\n", pathA.c_str(), pathB.c_str());
  for (const auto& [name, nsA] : a.nodes) {
    const auto itB = b.nodes.find(name);
    if (itB == b.nodes.end()) {
      std::printf("  node %-16s only in %s\n", name.c_str(), pathA.c_str());
      continue;
    }
    const NodeTelemetry& fa = nsA.decoded.back();
    const NodeTelemetry& fb = itB->second.decoded.back();
    bool headed = false;
    for (std::size_t c = 0; c < telemetry::counterCount(); ++c) {
      const std::uint64_t va = telemetry::counterValue(fa, c);
      const std::uint64_t vb = telemetry::counterValue(fb, c);
      if (va == vb) continue;
      if (!headed) {
        std::printf("  node %s (final counters, A vs B):\n", name.c_str());
        headed = true;
      }
      std::printf("    %-34s %12llu -> %-12llu (%+lld)\n",
                  telemetry::counterName(c),
                  static_cast<unsigned long long>(va),
                  static_cast<unsigned long long>(vb),
                  static_cast<long long>(vb) - static_cast<long long>(va));
    }
    if (!headed)
      std::printf("  node %-16s final counters identical\n", name.c_str());
  }
  for (const auto& [name, nsB] : b.nodes)
    if (a.nodes.find(name) == a.nodes.end())
      std::printf("  node %-16s only in %s\n", name.c_str(), pathB.c_str());
  std::map<std::string, std::pair<std::size_t, std::size_t>> alarmCounts;
  for (const ArchiveRecord* rec : a.alarms)
    ++alarmCounts[alarmKindName(static_cast<HealthAlarm::Kind>(
                      rec->alarmKind))]
          .first;
  for (const ArchiveRecord* rec : b.alarms)
    ++alarmCounts[alarmKindName(static_cast<HealthAlarm::Kind>(
                      rec->alarmKind))]
          .second;
  for (const auto& [kind, counts] : alarmCounts)
    if (counts.first != counts.second)
      std::printf("  alarm %-22s x%zu -> x%zu\n", kind.c_str(), counts.first,
                  counts.second);
}

/// Replay the archive through a fresh HealthMonitor and verify the
/// offline judgement matches the recorded (live) one. Returns true iff
/// every check holds.
bool replay(const Loaded& a, const soak::Args& args) {
  telemetry::MonitorConfig mc;
  mc.expectedIntervalSec = args.num("expected-interval", 1.0);
  mc.silentAfterIntervals = args.num("silent-after", 3.0);
  telemetry::HealthMonitor mon(mc);

  for (const ArchiveRecord& rec : a.records) {
    // Drive the replayed monitor's clock to each record's timestamp —
    // the live monitor's own clock at that moment — so silence edges
    // fire at the same points in the stream.
    mon.step(rec.monoSec);
    if (rec.type == ArchiveRecordType::kSnapshot) {
      core::AttributeSet attrs;
      attrs.set(telemetry::kTelemetryAttr, core::AttributeValue(rec.snapshot));
      mon.reflectAttributeValues(telemetry::kTelemetryClass, attrs,
                                 rec.monoSec);
    } else if (rec.type == ArchiveRecordType::kLivenessPing) {
      mon.noteLiveness(rec.node);
    }
  }

  // Recorded vs replayed alarm kind sequences, per node. Global order is
  // not compared: two nodes crossing the silence threshold in the same
  // inter-record window can legitimately swap places.
  std::map<std::string, std::vector<HealthAlarm::Kind>> recorded, replayed;
  for (const ArchiveRecord* rec : a.alarms)
    recorded[rec->node].push_back(
        static_cast<HealthAlarm::Kind>(rec->alarmKind));
  for (const HealthAlarm& al : mon.alarms())
    replayed[al.node].push_back(al.kind);

  bool ok = true;
  std::vector<std::string> nodes;
  for (const auto& [n, k] : recorded) nodes.push_back(n);
  for (const auto& [n, k] : replayed)
    if (recorded.find(n) == recorded.end()) nodes.push_back(n);
  for (const std::string& n : nodes) {
    const auto& rec = recorded[n];
    const auto& rep = replayed[n];
    if (rec == rep) continue;
    ok = false;
    std::printf("replay MISMATCH node %s: recorded", n.c_str());
    for (const auto k : rec) std::printf(" %s", alarmKindName(k));
    std::printf(" | replayed");
    for (const auto k : rep) std::printf(" %s", alarmKindName(k));
    std::printf("\n");
  }
  std::printf("replay: %zu alarm(s) recorded, %zu replayed, per-node "
              "sequences %s\n",
              a.alarms.size(), mon.alarms().size(),
              ok ? "MATCH" : "MISMATCH");

  // Final counters: the replayed monitor's last view of every node must
  // be exactly the last archived snapshot — proves the offline apply
  // path (decode, stale-drop, restart detection) agrees with live.
  for (const auto& [name, ns] : a.nodes) {
    const telemetry::NodeHealth* h = mon.node(name);
    if (h == nullptr) {
      std::printf("replay MISMATCH node %s: never materialized\n",
                  name.c_str());
      ok = false;
      continue;
    }
    const NodeTelemetry& want = ns.decoded.back();
    if (h->last.seq != want.seq) {
      std::printf("replay MISMATCH node %s: final seq %llu != archived %llu\n",
                  name.c_str(),
                  static_cast<unsigned long long>(h->last.seq),
                  static_cast<unsigned long long>(want.seq));
      ok = false;
      continue;
    }
    for (std::size_t c = 0; c < telemetry::counterCount(); ++c) {
      if (telemetry::counterValue(h->last, c) !=
          telemetry::counterValue(want, c)) {
        std::printf("replay MISMATCH node %s: final %s differs\n",
                    name.c_str(), telemetry::counterName(c));
        ok = false;
        break;
      }
    }
  }

  const std::string victim = args.str("verify-victim", "");
  if (!victim.empty()) {
    // The soak driver's failover post-mortem, from the file alone: the
    // victim must have gone NODE_SILENT and then NODE_RECOVERED, in that
    // order, in the REPLAYED feed.
    const auto& seq = replayed[victim];
    std::size_t silentIdx = seq.size();
    bool recovered = false;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (seq[i] == HealthAlarm::Kind::kNodeSilent && silentIdx == seq.size())
        silentIdx = i;
      if (seq[i] == HealthAlarm::Kind::kNodeRecovered && silentIdx < i)
        recovered = true;
    }
    const bool victimOk = silentIdx < seq.size() && recovered;
    std::printf("replay victim %s: NODE_SILENT->NODE_RECOVERED %s\n",
                victim.c_str(), victimOk ? "ok" : "MISSING");
    ok = ok && victimOk;
  }
  std::printf("replay verdict: %s\n", ok ? "PASS" : "FAIL");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const soak::Args args(argc, argv);
    const std::string path = args.required("archive");
    Loaded a(path);
    if (a.records.empty() && a.reader.segmentsRead() == 0) {
      std::fprintf(stderr, "cod_inspect: %s: not a readable archive\n",
                   path.c_str());
      return 2;
    }
    printSummary(path, a);
    if (args.has("timeline")) printTimeline(a);
    if (args.has("nodes")) printNodes(a);
    const std::string csv = args.str("csv", "");
    if (!csv.empty() && !exportCsv(a, csv)) {
      std::fprintf(stderr, "cod_inspect: cannot write %s\n", csv.c_str());
      return 2;
    }
    const std::string json = args.str("json", "");
    if (!json.empty() && !exportJson(a, json)) {
      std::fprintf(stderr, "cod_inspect: cannot write %s\n", json.c_str());
      return 2;
    }
    const std::string other = args.str("diff", "");
    if (!other.empty()) {
      Loaded b(other);
      if (b.records.empty() && b.reader.segmentsRead() == 0) {
        std::fprintf(stderr, "cod_inspect: %s: not a readable archive\n",
                     other.c_str());
        return 2;
      }
      printDiff(path, a, other, b);
    }
    if (args.has("replay") || args.has("verify-victim")) {
      if (!replay(a, args)) return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cod_inspect: %s\n", e.what());
    return 2;
  }
}
